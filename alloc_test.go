package gameauthority_test

import (
	"context"
	"testing"

	ga "gameauthority"
)

// Allocation budgets per driver, enforced by TestAllocsPerPlay. The pure
// driver's budget is the headline: a fully audited play — choice,
// commitment, reveal, SHA-256 verification, best-response audit,
// publication, history recording — without a single heap allocation. The
// other budgets are pinned at measured+10% (mixed 14, RRA 56, distributed
// 112 as of the PR 9 arena work) so a real regression trips the gate
// instead of drifting inside slack. The distributed residue is entirely
// phase-boundary work — evidence encode/decode, commitments, the retained
// outcome profile — while the per-pulse engine itself is allocation-free
// (see TestICEnginePhaseZeroAlloc in internal/bap).
const (
	pureAllocBudget  = 0
	mixedAllocBudget = 16
	rraAllocBudget   = 62
	distAllocBudget  = 124
	// playNOverheadBudget bounds the fixed cost of one PlayN call beyond
	// its rounds' own budgets: the lock-once loop may allocate for its
	// play closure but must not allocate per round, so a whole pure batch
	// stays within this constant regardless of batch size.
	playNOverheadBudget = 2
)

func TestAllocsPerPlayPure(t *testing.T) {
	ctx := context.Background()
	s, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithHistoryLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, 64); err != nil { // warm scratch + ring
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Play(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > pureAllocBudget {
		t.Fatalf("pure play allocates %v times, budget %d", allocs, pureAllocBudget)
	}
}

// TestAllocsPerPlayNPure gates the batched hot path: a 16-round pure
// PlayN — 16 fully audited plays plus the batch loop itself — must stay
// within the fixed per-call overhead, i.e. zero allocations per round.
func TestAllocsPerPlayNPure(t *testing.T) {
	ctx := context.Background()
	s, err := ga.New(ga.PrisonersDilemma(), ga.WithSeed(1),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithHistoryLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	sink := func(ga.RoundResult) error { return nil }
	if _, err := s.PlayN(ctx, 64, sink); err != nil { // warm scratch + ring
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.PlayN(ctx, 16, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > playNOverheadBudget {
		t.Fatalf("16-round pure PlayN allocates %v times, budget %d", allocs, playNOverheadBudget)
	}
	t.Logf("16-round pure PlayN: %v allocs (budget %d)", allocs, playNOverheadBudget)
}

func TestAllocsPerPlayMixed(t *testing.T) {
	ctx := context.Background()
	strategies := ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	s, err := ga.New(ga.MatchingPennies(),
		ga.WithStrategies(func(int, ga.Profile) ga.MixedProfile { return strategies }),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithAudit(ga.AuditPerRound),
		ga.WithSeed(1),
		ga.WithHistoryLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, 64); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Play(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > mixedAllocBudget {
		t.Fatalf("mixed play allocates %v times, budget %d", allocs, mixedAllocBudget)
	}
	t.Logf("mixed play: %v allocs (budget %d)", allocs, mixedAllocBudget)
}

func TestAllocsPerPlayRRA(t *testing.T) {
	ctx := context.Background()
	s, err := ga.New(nil, ga.WithRRA(8, 4),
		ga.WithPunishment(ga.NewDisconnectScheme(8, 0)),
		ga.WithSeed(1),
		ga.WithHistoryLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, 64); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Play(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > rraAllocBudget {
		t.Fatalf("RRA play allocates %v times, budget %d", allocs, rraAllocBudget)
	}
	t.Logf("RRA play: %v allocs (budget %d)", allocs, rraAllocBudget)
}

func TestAllocsPerPlayDistributed(t *testing.T) {
	ctx := context.Background()
	g4, err := ga.PublicGoods(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ga.New(g4, ga.WithDistributed(4, 1, nil),
		ga.WithPulseWorkers(1), // lockstep: measure protocol allocations, not scheduler noise
		ga.WithSeed(1),
		ga.WithHistoryLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(ctx, 8); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Play(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > distAllocBudget {
		t.Fatalf("distributed play allocates %v times, budget %d", allocs, distAllocBudget)
	}
	t.Logf("distributed play: %v allocs (budget %d)", allocs, distAllocBudget)
}
