// Package gameauthority is a from-scratch Go implementation of the game
// authority middleware of Dolev, Schiller, Spirakis and Tsigas — "Game
// authority for robust and scalable distributed selfish-computer systems"
// (PODC 2007 brief announcement; full version in Theoretical Computer
// Science 411 (2010) 2459–2466).
//
// The middleware secures the execution of any complete-information game
// among selfish (and partly Byzantine) computers through three services:
// a legislative service that lets the honest majority elect the rules of
// the game, a judicial service that audits every play (commitments make
// choices private and simultaneous; revealed actions are checked for
// legitimacy, best-response honesty, and — for mixed strategies — fidelity
// to a committed pseudo-random stream), and an executive service that
// publishes outcomes and punishes convicted agents.
//
// The package offers three levels of entry:
//
//   - Game analysis: strategic-form games, best responses, pure and mixed
//     Nash equilibria, and the cost metrics the paper studies (price of
//     anarchy/stability/malice, multi-round anarchy cost).
//   - Authority sessions: New builds a uniform Session — trusted
//     pure-strategy or mixed-strategy supervised play at simulation speed,
//     the §6 repeated resource allocation harness, or the full distributed
//     protocol over a synchronous Byzantine network (self-stabilizing clock
//     synchronization scheduling interactive-consistency agreements for
//     every phase of every play) — selected by functional options and
//     observable through an event stream (Subscribe, Events).
//   - Multi-session hosting: an Authority hosts many independent sessions
//     keyed by ID behind a sync-safe registry; NewServer exposes it as an
//     HTTP/JSON API (see cmd/gameauthd -serve).
//
// The four historical constructors (NewPureSession, NewMixedSession,
// NewSupervisedRRA, NewDistributedSession) remain as deprecated wrappers
// around the same drivers; New with the same seed replays their results
// exactly.
//
// All randomness is seeded and replayable; see DESIGN.md for the system
// inventory, the new API surface, and the constructor→option migration
// table, and EXPERIMENTS.md for the reproduced results.
package gameauthority

import (
	"io"

	"gameauthority/internal/audit"
	"gameauthority/internal/core"
	"gameauthority/internal/deviate"
	"gameauthority/internal/game"
	"gameauthority/internal/metrics"
	"gameauthority/internal/obs"
	"gameauthority/internal/punish"
	"gameauthority/internal/sim"
	"gameauthority/internal/voting"
)

// --- Observability ----------------------------------------------------------

// TraceRingDefault is the span capacity EnableTracing uses for
// ringSize <= 0.
const TraceRingDefault = obs.DefaultTraceRing

// EnableTracing arms the process-wide play tracer: every layer's spans
// (HTTP/WS decode, shard dispatch, driver phases, per-pulse protocol
// steps, WAL and commit-epoch writes) start recording into a fixed ring
// of ringSize completed spans (<= 0 means TraceRingDefault). sample
// admits one play in sample (<= 1 traces every play). Tracing is off by
// default and costs one atomic load per span site while disabled.
func EnableTracing(ringSize, sample int) { obs.DefaultTracer.Enable(ringSize, sample) }

// DisableTracing stops span recording; the captured ring remains
// available to WriteTrace.
func DisableTracing() { obs.DefaultTracer.Disable() }

// TracingEnabled reports whether the play tracer is recording.
func TracingEnabled() bool { return obs.DefaultTracer.Enabled() }

// TracedPlays reports completed root (play-level) spans since
// EnableTracing — the progress signal for bounded captures.
func TracedPlays() uint64 { return obs.DefaultTracer.RootCount() }

// TracedSpans reports the spans currently held in the capture ring.
// Drives of the protocol below the Session layer (the gameauthd trace
// CLI) record pulse and phase spans with no play root, so this — not
// TracedPlays — is their capture-size signal.
func TracedSpans() int { return obs.DefaultTracer.Len() }

// WriteTrace dumps the captured span ring as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto.
func WriteTrace(w io.Writer) error { return obs.DefaultTracer.WriteJSON(w) }

// WriteObsMetrics renders every registered histogram and gauge of the
// observability plane in Prometheus text format — the same series
// GET /metrics appends after the host counters.
func WriteObsMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// PlayLatencyQuantile reports the q-quantile (0..1) of the server-side
// play latency histogram merged across drivers, plus the number of
// recorded plays. It returns (0, 0) before any play has been recorded.
func PlayLatencyQuantile(q float64) (seconds float64, count uint64) {
	ns, n := obs.Default.HistogramQuantile("gameauthority_play_latency_seconds", q)
	return ns / 1e9, n
}

// --- Strategic-form games ----------------------------------------------------

// Game is a finite strategic-form game with cost functions that agents
// minimize (the paper's §2 convention).
type Game = game.Game

// Profile is a pure strategy profile: Profile[i] is player i's action.
type Profile = game.Profile

// Mixed is a mixed strategy (a probability distribution over actions).
type Mixed = game.Mixed

// MixedProfile assigns a mixed strategy to every player.
type MixedProfile = game.MixedProfile

// Bimatrix is a two-player game stored as dense cost matrices.
type Bimatrix = game.Bimatrix

// NewBimatrix constructs a two-player game from cost matrices.
func NewBimatrix(name string, costA, costB [][]float64) (*Bimatrix, error) {
	return game.NewBimatrix(name, costA, costB)
}

// FromPayoffs constructs a two-player game from payoff matrices (negating
// into cost form). The paper's Fig. 1 is stated in payoffs.
func FromPayoffs(name string, payA, payB [][]float64) (*Bimatrix, error) {
	return game.FromPayoffs(name, payA, payB)
}

// MatchingPennies returns the classical matching pennies game (§5).
func MatchingPennies() *Bimatrix { return game.MatchingPennies() }

// MatchingPenniesManipulated returns the paper's Fig. 1 game: matching
// pennies extended with agent B's hidden "Manipulate" strategy.
func MatchingPenniesManipulated() *Bimatrix { return game.MatchingPenniesManipulated() }

// ManipulateAction is the index of the hidden manipulation strategy in
// MatchingPenniesManipulated.
const ManipulateAction = game.ManipulateAction

// PrisonersDilemma returns the classical prisoner's dilemma in cost form.
func PrisonersDilemma() *Bimatrix { return game.PrisonersDilemma() }

// CoordinationGame returns a 2×2 coordination game with equilibria of
// different social cost (PoA vs PoS demonstrations).
func CoordinationGame() *Bimatrix { return game.CoordinationGame() }

// RRA is the repeated resource allocation game of §6.
type RRA = game.RRA

// NewRRA creates an RRA instance with n agents and b resources.
func NewRRA(n, b int) (*RRA, error) { return game.NewRRA(n, b) }

// OptMaxLoad returns OPT(k) = ⌈nk/b⌉, the centralistic optimum of the RRA
// game after k rounds.
func OptMaxLoad(n, b, k int) int64 { return game.OptMaxLoad(n, b, k) }

// TableGame is a general n-player strategic-form game with dense cost
// tables.
type TableGame = game.TableGame

// NewTableGame allocates an n-player game with the given action-count
// shape; fill costs with SetCost or Fill.
func NewTableGame(name string, shape []int) (*TableGame, error) {
	return game.NewTableGame(name, shape)
}

// MinorityGame returns the classical n-player minority game (odd n).
func MinorityGame(n int) (*TableGame, error) { return game.MinorityGame(n) }

// PublicGoods returns an n-player public-goods game (free riding dominates;
// contribution is socially optimal).
func PublicGoods(n int, benefit float64) (*TableGame, error) {
	return game.PublicGoods(n, benefit)
}

// --- Scenario catalog ---------------------------------------------------------

// CongestionGame returns a symmetric singleton congestion game: n players
// pick among len(rates) facilities with linear load-dependent latency.
// PNEs are the rate-weighted load-balanced assignments.
func CongestionGame(n int, rates []float64) (*TableGame, error) {
	return game.CongestionGame(n, rates)
}

// BraessRouting returns the n-player discrete Braess routing game
// (Up/Down/Zig over the shortcut network); all-Zig is a PNE and PoA = 4/3
// at even n — the canonical price-of-anarchy scenario.
func BraessRouting(n int) (*TableGame, error) { return game.BraessRouting(n) }

// PublicGoodsPunish returns the public-goods game with a fine charged to
// free riders; fine > 1 − benefit/n makes all-contribute the unique PNE.
func PublicGoodsPunish(n int, benefit, fine float64) (*TableGame, error) {
	return game.PublicGoodsPunish(n, benefit, fine)
}

// FirstPriceAuction returns the first-price sealed-bid auction among
// len(values) bidders on a discrete bid grid, in strategic form.
func FirstPriceAuction(values []float64, bids int) (*TableGame, error) {
	return game.FirstPriceAuction(values, bids)
}

// SecondPriceAuction returns the Vickrey auction on the same grid;
// truthful bidding is weakly dominant, so the truthful profile is a PNE.
func SecondPriceAuction(values []float64, bids int) (*TableGame, error) {
	return game.SecondPriceAuction(values, bids)
}

// PrisonersDilemmaParams returns a parameterized prisoner's dilemma in
// cost form with the dilemma ordering t < r < p < s; the unique PNE is
// mutual defection.
func PrisonersDilemmaParams(t, r, p, s float64) (*Bimatrix, error) {
	return game.PrisonersDilemmaParams(t, r, p, s)
}

// CoordinationN returns an n-player, k-action consensus game whose PNEs
// are exactly the k consensus profiles (PoA = k, PoS = 1).
func CoordinationN(n, k int) (*TableGame, error) { return game.CoordinationN(n, k) }

// CatalogEntry describes one scenario family of the catalog: registry
// name, sizing rule, builder, and known equilibrium structure.
type CatalogEntry = game.CatalogEntry

// Catalog returns the scenario catalog with default parameterizations —
// the families cmd/loadgen mixes and the HTTP API resolves by name.
func Catalog() []CatalogEntry { return game.Catalog() }

// ScenarioByName resolves a catalog entry by its registry name.
func ScenarioByName(name string) (CatalogEntry, bool) { return game.ByName(name) }

// Inoculation is the virus inoculation game of Moscibroda et al. [21], the
// vehicle for the paper's price-of-malice results.
type Inoculation = game.Inoculation

// NewInoculation builds a w×h grid inoculation game with inoculation cost c
// and infection loss l.
func NewInoculation(w, h int, c, l float64) (*Inoculation, error) {
	return game.NewInoculation(w, h, c, l)
}

// --- Game analysis -------------------------------------------------------------

// BestResponse returns player i's cost-minimizing action against profile.
func BestResponse(g Game, player int, profile Profile) int {
	return game.BestResponse(g, player, profile)
}

// IsBestResponse reports whether action is a best response — the judicial
// service's §3.2 foul-play test for pure strategies.
func IsBestResponse(g Game, player, action int, profile Profile) bool {
	return game.IsBestResponse(g, player, action, profile)
}

// IsPureNash reports whether profile is a pure Nash equilibrium of g.
func IsPureNash(g Game, p Profile) bool { return game.IsPureNash(g, p) }

// BestResponseDynamics runs round-robin best-response updates from start
// for at most maxSteps player-updates, returning the final profile and
// whether it is a PNE. Congestion-style games converge; matching pennies
// cycles.
func BestResponseDynamics(g Game, start Profile, maxSteps int) (Profile, bool) {
	return game.BestResponseDynamics(g, start, maxSteps)
}

// PureNashEquilibria enumerates the game's pure Nash equilibria.
func PureNashEquilibria(g Game, limit int) ([]Profile, error) {
	return game.PureNashEquilibria(g, limit)
}

// MixedNashEquilibria2P computes mixed equilibria of a two-player game by
// support enumeration.
func MixedNashEquilibria2P(g Game, tol float64) []MixedProfile {
	return game.MixedNashEquilibria2P(g, tol)
}

// ExpectedCost returns a player's expected cost under a mixed profile.
func ExpectedCost(g Game, player int, mp MixedProfile) float64 {
	return game.ExpectedCost(g, player, mp)
}

// SocialCost sums the costs of the given players (nil = all).
func SocialCost(g Game, p Profile, honest []int) float64 {
	return game.SocialCost(g, p, honest)
}

// Uniform returns the uniform mixed strategy over k actions.
func Uniform(k int) Mixed { return game.Uniform(k) }

// --- Cost metrics ---------------------------------------------------------------

// PriceOfAnarchy returns worst-PNE social cost over the optimum [18,17].
func PriceOfAnarchy(g Game, limit int) (float64, error) {
	return metrics.PriceOfAnarchy(g, limit)
}

// PriceOfStability returns best-PNE social cost over the optimum [3].
func PriceOfStability(g Game, limit int) (float64, error) {
	return metrics.PriceOfStability(g, limit)
}

// PriceOfMalice returns the [21] ratio between the honest agents' social
// cost with and without malicious participants.
func PriceOfMalice(costWith, costWithout float64) (float64, error) {
	return metrics.PriceOfMalice(costWith, costWithout)
}

// MultiRoundAnarchyCost returns the paper's R(k) criterion for repeated
// games (§6).
func MultiRoundAnarchyCost(expectedMax float64, opt int64) (float64, error) {
	return metrics.MultiRoundAnarchyCost(expectedMax, opt)
}

// Theorem5Bound returns the paper's bound 1 + 2b/k on R(k).
func Theorem5Bound(b, k int) float64 { return metrics.Theorem5Bound(b, k) }

// --- Punishment schemes (executive service, §3.4) --------------------------------

// PunishmentScheme is the executive service's sanction policy.
type PunishmentScheme = punish.Scheme

// NewDisconnectScheme bars an agent once its offences exhaust the strike
// budget (≤ 0 means one strike). The paper's default for Byzantine agents.
func NewDisconnectScheme(n int, budget float64) PunishmentScheme {
	return punish.NewDisconnect(n, budget)
}

// NewReputationScheme decays reputation per offence and excludes below the
// threshold; honest rounds regenerate.
func NewReputationScheme(n int, decay, threshold, regen float64) PunishmentScheme {
	return punish.NewReputation(n, decay, threshold, regen)
}

// NewDepositScheme fines a real-money escrow per offence and excludes when
// it is exhausted.
func NewDepositScheme(n int, escrow, fine float64) PunishmentScheme {
	return punish.NewDeposit(n, escrow, fine)
}

// --- Authority sessions -----------------------------------------------------------

// Agent is an application-layer participant's behaviour in a pure-strategy
// session: what to play, and (optionally) how to cheat.
type Agent = core.Agent

// HonestPure returns an honest best-response agent for the elected game.
func HonestPure(g Game, id int) *Agent { return core.HonestPure(g, id) }

// PureSession is the trusted driver for repeated pure-strategy supervised
// play (§3.3).
type PureSession = core.PureSession

// RoundResult records one audited play of a PureSession.
type RoundResult = core.RoundResult

// NewPureSession builds a supervised repeated-play session. scheme may be
// nil for an unsupervised baseline.
//
// Deprecated: use New(g, WithAgents(agents...), WithPunishment(scheme),
// WithSeed(seed)) — same driver, same seeded results, plus context support
// and the observer stream.
func NewPureSession(g Game, agents []*Agent, scheme PunishmentScheme, seed uint64) (*PureSession, error) {
	return core.NewPureSession(g, agents, scheme, seed)
}

// MixedAgent is a participant's behaviour in a mixed-strategy session (§5).
type MixedAgent = core.MixedAgent

// MixedConfig configures a mixed-strategy session.
type MixedConfig = core.MixedConfig

// MixedSession is the trusted driver for repeated mixed-strategy play with
// committed-randomness auditing (§5.3).
type MixedSession = core.MixedSession

// Audit modes for MixedConfig.
const (
	// AuditOff disables the authority (price-of-malice baselines).
	AuditOff = core.AuditOff
	// AuditPerRound audits every play (the paper's base design).
	AuditPerRound = core.AuditPerRound
	// AuditBatched commits one seed per epoch and audits at epoch end
	// (the §5.3 efficiency extension).
	AuditBatched = core.AuditBatched
	// AuditSampled spot-checks each round with probability SampleProb
	// (the §1.1 "auditing, rather than constant monitoring" extension).
	AuditSampled = core.AuditSampled
	// AuditStatistical screens action frequencies against declared
	// strategies without any commitments (the §5.2 detection problem).
	AuditStatistical = core.AuditStatistical
)

// NewMixedSession builds a mixed-strategy session.
//
// Deprecated: use New(elected, WithStrategies(...), WithMixedAgents(...),
// WithActual(actual), WithPunishment(scheme), WithAudit(mode, ...),
// WithSeed(seed)) — same driver, same seeded results.
func NewMixedSession(cfg MixedConfig) (*MixedSession, error) {
	return core.NewMixedSession(cfg)
}

// SupervisedRRA runs the §6 repeated resource allocation game under the
// authority.
type SupervisedRRA = core.RRASupervised

// NewSupervisedRRA builds the Theorem 5 harness. supervise=false with a nil
// scheme is the unsupervised baseline.
//
// Deprecated: use New(nil, WithRRA(n, b), WithPunishment(scheme),
// WithSeed(seed)) — supervision is on exactly when a punishment scheme is
// installed; AsRRA recovers the harness for load measurements.
func NewSupervisedRRA(n, b int, seed uint64, scheme PunishmentScheme, supervise bool) (*SupervisedRRA, error) {
	return core.NewRRASupervised(n, b, seed, scheme, supervise)
}

// HogChooser returns the malicious RRA behaviour that always loads the
// most-loaded resource.
func HogChooser() func(agent int, loads []int64) int { return game.HogChooser() }

// FixedChooser returns the malicious RRA behaviour that camps one resource.
func FixedChooser(a int) func(agent int, loads []int64) int { return game.FixedChooser(a) }

// --- Deviation catalog (profit verification) -----------------------------------------

// DeviantStrategy is a player-level selfish strategy pluggable into any
// driver via WithDeviant; see internal/deviate for the catalog and the
// profit auditor that measures whether a deviation ever beats honesty.
type DeviantStrategy = core.Deviant

// AlwaysDefect camps the highest-index action every round, ignoring the
// best-response duty.
func AlwaysDefect() DeviantStrategy { return deviate.AlwaysDefect() }

// BestResponseLiar best-responds to a one-step-lookahead prediction of
// the other players instead of to the previous outcome (the §3.2 duty) —
// a deviation that can genuinely profit without an authority.
func BestResponseLiar() DeviantStrategy { return deviate.BestResponseLiar() }

// CommitmentCheat reveals a different value than it committed to — the
// equivocation the Blum commitments exist to catch.
func CommitmentCheat() DeviantStrategy { return deviate.CommitmentCheat() }

// DistributionSkewer plays honestly except with the given probability,
// when it swaps in its myopic favourite — the probe for the sampled and
// statistical audit disciplines. Out-of-range probabilities default to
// 0.5.
func DistributionSkewer(prob float64) DeviantStrategy { return deviate.DistributionSkewer(prob) }

// Freerider never reveals, free-riding on everyone else's auditability.
func Freerider() DeviantStrategy { return deviate.Freerider() }

// DeviantStrategies returns the full deviation catalog with default
// parameterizations (the strategies cmd/loadgen's chaos mode mixes in).
func DeviantStrategies() []DeviantStrategy { return deviate.Registry() }

// DeviantByName resolves a catalog strategy by its registry name
// ("always-defect", "best-response-liar", "commitment-cheat",
// "distribution-skewer", "freerider").
func DeviantByName(name string) (DeviantStrategy, bool) { return deviate.ByName(name) }

// --- Distributed authority ----------------------------------------------------------

// DistributedSession is the full middleware over a synchronous Byzantine
// network: self-stabilizing clock + interactive consistency per phase.
type DistributedSession = core.DistSession

// Adversary rewrites a Byzantine processor's outgoing traffic.
type Adversary = sim.Adversary

// SilentAdversary drops all outgoing traffic (a crashed processor).
func SilentAdversary() Adversary { return sim.SilentAdversary() }

// DropAdversary drops each outgoing message independently with
// probability p on a seeded stream.
func DropAdversary(seed uint64, p float64) Adversary { return sim.DropAdversary(seed, p) }

// ReplayAdversary sends the previous pulse's outbox instead of the
// current one.
func ReplayAdversary() Adversary { return sim.ReplayAdversary() }

// NewDistributedSession wires n processors (behaviours[i] nil = honest)
// over a full mesh; byz installs network-level adversaries.
//
// Deprecated: use New(g, WithDistributed(n, f, byz), WithAgents(...),
// WithSeed(seed)) — AsDistributed recovers the network session for fault
// injection and consistency checks.
func NewDistributedSession(n, f int, g Game, behaviors []*Agent, seed uint64, byz map[int]Adversary) (*DistributedSession, error) {
	return core.NewDistSession(n, f, g, behaviors, seed, byz)
}

// PulsesPerPlay returns how many network pulses one play takes in the
// distributed driver.
func PulsesPerPlay(f int) int { return core.PulsesPerPlay(f) }

// --- Legislative service --------------------------------------------------------------

// Candidate pairs a game with a ballot description.
type Candidate = core.Candidate

// Voter supplies an agent's preferences over candidates.
type Voter = core.Voter

// ElectionOutcome reports a legislative decision.
type ElectionOutcome = core.ElectionOutcome

// NaiveElection is the unprotected baseline (§3.1 threat model): open
// sequential ballots, manipulators react to earlier votes.
func NaiveElection(candidates []Candidate, voters []Voter) (ElectionOutcome, error) {
	return core.NaiveElection(candidates, voters)
}

// RobustElection is the authority's commit-reveal election.
func RobustElection(candidates []Candidate, voters []Voter, seed uint64) (ElectionOutcome, error) {
	return core.RobustElection(candidates, voters, seed)
}

// ReelectionConfig configures the §3.1 repeated-reelection extension:
// every legislative term the agents re-elect the game under their current
// (possibly drifted) preferences.
type ReelectionConfig = core.ReelectionConfig

// TermResult records one legislative term's election and play cost.
type TermResult = core.TermResult

// ReelectionSeries runs one robust election per term with drifting
// preferences.
func ReelectionSeries(cfg ReelectionConfig, terms int) ([]ElectionOutcome, error) {
	return core.ReelectionSeries(cfg, terms)
}

// PlayTerms runs the full legislate-then-play loop across terms.
func PlayTerms(cfg ReelectionConfig, terms int) ([]TermResult, error) {
	return core.PlayTerms(cfg, terms)
}

// VotingRule selects a tally method for standalone tallies.
type VotingRule = voting.Rule

// Supported voting rules.
const (
	Plurality = voting.Plurality
	Borda     = voting.Borda
	Approval  = voting.Approval
	Condorcet = voting.Condorcet
)

// --- Judicial primitives ----------------------------------------------------------------

// FoulReason classifies a detected foul play.
type FoulReason = audit.Reason

// Foul reasons the judicial service reports.
const (
	FoulIllegitimateAction     = audit.ReasonIllegitimateAction
	FoulCommitMismatch         = audit.ReasonCommitMismatch
	FoulMissingReveal          = audit.ReasonMissingReveal
	FoulNotBestResponse        = audit.ReasonNotBestResponse
	FoulSeedMismatch           = audit.ReasonSeedMismatch
	FoulSuspiciousDistribution = audit.ReasonSuspiciousDistribution
)

// Verdict is the judicial service's finding for one audited play.
type Verdict = audit.Verdict

// FrequencyCheck is the §5.2 statistical screen: it scores how far an
// action histogram deviates from a declared mixed strategy.
func FrequencyCheck(strategy Mixed, actions []int, threshold float64) (statistic float64, suspicious bool, err error) {
	return audit.FrequencyCheck(strategy, actions, threshold)
}
