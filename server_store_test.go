package gameauthority_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	ga "gameauthority"
)

// storeServer builds a store-backed authority behind an httptest server.
func storeServer(t *testing.T, st ga.Store) (*ga.Authority, *httptest.Server) {
	t.Helper()
	a := ga.NewAuthority(ga.WithStore(st))
	srv := httptest.NewServer(ga.NewServer(a))
	t.Cleanup(srv.Close)
	return a, srv
}

func durPost(t *testing.T, url string, body any, want int) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(payload)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, want, data)
	}
	return data
}

func durGet(t *testing.T, url string, want int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, want, data)
	}
	return data
}

// TestServerSnapshotEndpoints drives the full durable HTTP surface:
// create, play, snapshot, list snapshots.
func TestServerSnapshotEndpoints(t *testing.T) {
	_, srv := storeServer(t, ga.NewMemStore())

	durPost(t, srv.URL+"/sessions", ga.CreateSessionRequest{ID: "snap-1", Game: "pd", Seed: 4}, http.StatusCreated)
	durPost(t, srv.URL+"/sessions/snap-1/play", map[string]int{"rounds": 5}, http.StatusOK)

	var snap struct {
		ID        string `json:"id"`
		Kind      string `json:"kind"`
		Rounds    int    `json:"rounds"`
		Digest    string `json:"digest"`
		Persisted bool   `json:"persisted"`
	}
	if err := json.Unmarshal(durPost(t, srv.URL+"/sessions/snap-1/snapshot", nil, http.StatusOK), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != "snap-1" || snap.Kind != "pure" || snap.Rounds != 5 || snap.Digest == "" || !snap.Persisted {
		t.Fatalf("snapshot response: %+v", snap)
	}

	var listing []struct {
		ID     string `json:"id"`
		Rounds int    `json:"rounds"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(durGet(t, srv.URL+"/snapshots", http.StatusOK), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 1 || listing[0].ID != "snap-1" || listing[0].Rounds != 5 || listing[0].Digest != snap.Digest {
		t.Fatalf("snapshot listing: %+v", listing)
	}

	// Unknown sessions 404 even with a store attached.
	durPost(t, srv.URL+"/sessions/nope/snapshot", nil, http.StatusNotFound)
}

// TestCreateFromSpecPreservesJournaledLedger: re-creating an id that a
// crashed predecessor journaled must refuse with a conflict and leave
// the old ledger intact — never scrub acknowledged plays.
func TestCreateFromSpecPreservesJournaledLedger(t *testing.T) {
	ctx := context.Background()
	st := ga.NewMemStore()
	a1 := ga.NewAuthority(ga.WithStore(st))
	h, err := a1.CreateFromSpec(ga.CreateSessionRequest{ID: "keep", Game: "pd", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(ctx, 5); err != nil {
		t.Fatal(err)
	}
	a1.DetachStore() // crash: registry gone, ledger stays

	a2 := ga.NewAuthority(ga.WithStore(st))
	defer a2.Close()
	// No Recover ran: the registry misses the id, the store has it.
	if _, err := a2.CreateFromSpec(ga.CreateSessionRequest{ID: "keep", Game: "pd", Seed: 99}); !errors.Is(err, ga.ErrSessionExists) {
		t.Fatalf("duplicate durable create: err = %v, want ErrSessionExists", err)
	}
	// The refused create must not have scrubbed the journal.
	got, err := a2.GetOrRecover(ctx, "keep")
	if err != nil {
		t.Fatalf("ledger lost after refused create: %v", err)
	}
	if rounds := got.Stats().Rounds; rounds != 5 {
		t.Fatalf("recovered %d rounds, want 5", rounds)
	}
}

// TestGetOrRecoverSurvivesLeaderCancellation: the singleflight replay is
// shared by every waiter, so a leader whose client disconnected (its
// request context canceled) must not poison the restore — the replay
// runs detached and the session comes back for everyone.
func TestGetOrRecoverSurvivesLeaderCancellation(t *testing.T) {
	st := ga.NewMemStore()
	a1 := ga.NewAuthority(ga.WithStore(st))
	h, err := a1.CreateFromSpec(ga.CreateSessionRequest{ID: "gone", Game: "pd", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	a1.DetachStore() // crash: registry gone, ledger stays

	a2 := ga.NewAuthority(ga.WithStore(st))
	defer a2.Close()
	canceled, cancel := context.WithCancel(context.Background())
	cancel() // the leader's client hung up before the replay even started
	got, err := a2.GetOrRecover(canceled, "gone")
	if err != nil {
		t.Fatalf("restore under a canceled leader context: %v", err)
	}
	if rounds := got.Stats().Rounds; rounds != 6 {
		t.Fatalf("recovered %d rounds, want 6", rounds)
	}
}

// TestCreateFromSpecAutoNameSkipsPredecessorIDs: a restarted host whose
// auto-id counter restarted must hop over ids the dead predecessor
// journaled instead of failing client creates with conflicts.
func TestCreateFromSpecAutoNameSkipsPredecessorIDs(t *testing.T) {
	st := ga.NewMemStore()
	a1 := ga.NewAuthority(ga.WithStore(st))
	for i := 0; i < 3; i++ { // predecessor journals s-1..s-3
		if _, err := a1.CreateFromSpec(ga.CreateSessionRequest{Game: "pd", Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	a1.DetachStore()

	a2 := ga.NewAuthority(ga.WithStore(st)) // fresh counter, no Recover
	defer a2.Close()
	h, err := a2.CreateFromSpec(ga.CreateSessionRequest{Game: "pd", Seed: 9})
	if err != nil {
		t.Fatalf("auto-named create collided with predecessor ids: %v", err)
	}
	if h.ID() == "s-1" || h.ID() == "s-2" || h.ID() == "s-3" {
		t.Fatalf("auto-named create reused journaled id %s", h.ID())
	}
	// The predecessor's ledgers are untouched and still recoverable.
	states, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("store has %d sessions, want 4 (3 predecessor + 1 new)", len(states))
	}
}

// TestServerMetricsEndpoint pins the Prometheus exposition: counters
// exist, carry the right names, and move with traffic.
func TestServerMetricsEndpoint(t *testing.T) {
	_, srv := storeServer(t, ga.NewMemStore())
	durPost(t, srv.URL+"/sessions", ga.CreateSessionRequest{ID: "m-1", Game: "pd", Seed: 1}, http.StatusCreated)
	durPost(t, srv.URL+"/sessions/m-1/play", map[string]int{"rounds": 3}, http.StatusOK)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"gameauthority_sessions 1",
		"gameauthority_sessions_created_total 1",
		"gameauthority_plays_total 3",
		"gameauthority_wal_records_total 3",
		"# TYPE gameauthority_recoveries_total counter",
		"# TYPE gameauthority_convictions_total counter",
		"# TYPE gameauthority_snapshots_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestServerRestoreOnMiss: a second server over the same store answers
// for a session only the crashed first server ever hosted.
func TestServerRestoreOnMiss(t *testing.T) {
	st := ga.NewMemStore()
	a1, srv1 := storeServer(t, st)
	durPost(t, srv1.URL+"/sessions", ga.CreateSessionRequest{ID: "lost", Game: "congestion", Players: 4, Seed: 9}, http.StatusCreated)
	durPost(t, srv1.URL+"/sessions/lost/play", map[string]int{"rounds": 6}, http.StatusOK)
	var statsBefore struct {
		Rounds         int       `json:"rounds"`
		CumulativeCost []float64 `json:"cumulative_cost"`
	}
	if err := json.Unmarshal(durGet(t, srv1.URL+"/sessions/lost", http.StatusOK), &statsBefore); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	a1.DetachStore() // SIGKILL-style: nothing synced, nothing closed

	_, srv2 := storeServer(t, st)
	// The registry is empty; stats must restore the session on the miss.
	var statsAfter struct {
		Rounds         int       `json:"rounds"`
		CumulativeCost []float64 `json:"cumulative_cost"`
	}
	if err := json.Unmarshal(durGet(t, srv2.URL+"/sessions/lost", http.StatusOK), &statsAfter); err != nil {
		t.Fatal(err)
	}
	if statsAfter.Rounds != statsBefore.Rounds {
		t.Fatalf("restored rounds %d, want %d", statsAfter.Rounds, statsBefore.Rounds)
	}
	if fmt.Sprint(statsAfter.CumulativeCost) != fmt.Sprint(statsBefore.CumulativeCost) {
		t.Fatalf("restored costs %v, want %v", statsAfter.CumulativeCost, statsBefore.CumulativeCost)
	}
	// And it keeps playing.
	durPost(t, srv2.URL+"/sessions/lost/play", map[string]int{"rounds": 2}, http.StatusOK)

	// Deleting it removes the ledger: a third host sees nothing.
	req, err := http.NewRequest(http.MethodDelete, srv2.URL+"/sessions/lost", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	durGet(t, srv2.URL+"/sessions/lost", http.StatusNotFound)
}
