package gameauthority

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"gameauthority/internal/core"
	"gameauthority/internal/obs"
	"gameauthority/internal/store"
)

// Host-layer telemetry: whole-batch latency for PlayN calls and
// restore/replay duration for crash recovery. The per-round play
// latency lives in the drivers (internal/core); see DESIGN.md §14.
var (
	playNBatchLatency = obs.NewHistogram("gameauthority_playn_batch_seconds",
		"Latency of one PlayN batch (all rounds + the coalesced journal append).")
	restoreLatency = obs.NewHistogram("gameauthority_restore_seconds",
		"Duration of one session restore: journal load + deterministic replay.")
)

// Store is the authority's pluggable persistence backend: a per-session
// write-ahead log of plays/verdicts/convictions plus periodically
// compacted snapshots. See NewMemStore and NewFileStore.
type Store = store.Store

// Record is one WAL entry in a Store's per-session journal. Exported so
// external Store decorators (middleware, fault injectors, tests) can
// implement the interface without importing internal packages.
type Record = store.Record

// SessionSnapshot is a session's durable state summary: the replay
// watermark, counters, and the canonical state digest that proves a
// restored session is byte-identical. See Session.Snapshot.
type SessionSnapshot = core.SessionSnapshot

// RestoreTarget tells RestoreSession how far to replay and what to
// verify (journaled play hashes and the final state digest).
type RestoreTarget = core.RestoreTarget

// ErrNoStore is returned by durability operations on an authority built
// without WithStore.
var ErrNoStore = errors.New("gameauthority: authority has no store")

// ErrStoreClosed is returned by store operations after the store (or the
// authority owning it) was closed.
var ErrStoreClosed = store.ErrClosed

// ErrDurability marks server-side persistence failures (journal or
// snapshot writes): the request was valid but the durable store could
// not record it. The HTTP layer maps it to 503.
var ErrDurability = errors.New("gameauthority: durable store operation failed")

// ErrRestore reports that recovery replayed a session whose state did not
// match the journal — the spec, seed, or engine semantics changed since
// the state was written.
var ErrRestore = core.ErrRestore

// ErrBreakerOpen is returned by Play while a session's circuit breaker
// is open: repeated consecutive journal failures tripped it, and until
// the cooldown elapses plays fail fast without touching the session or
// the degraded store. Clients should back off and retry; the first play
// after the cooldown probes the store and closes the breaker on success.
var ErrBreakerOpen = errors.New("gameauthority: circuit breaker open (store failing)")

// Circuit-breaker defaults: five consecutive journal failures open a
// session's breaker for 500ms. See WithBreaker.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 500 * time.Millisecond
)

// WithBreaker tunes the per-session circuit breaker: failures
// consecutive journal failures open it for cooldown, during which plays
// fail fast with ErrBreakerOpen instead of hammering a degraded store.
// failures < 0 disables the breaker; failures/cooldown of 0 keep the
// defaults (5 failures, 500ms).
func WithBreaker(failures int, cooldown time.Duration) AuthorityOption {
	return func(a *Authority) {
		if failures != 0 {
			a.breakerThreshold = failures
		}
		if cooldown > 0 {
			a.breakerCooldown = cooldown
		}
	}
}

// defaultSnapshotEvery is the default compaction cadence: a durable
// session's WAL is folded into a snapshot every this many journaled
// plays, bounding log length (and recovery verification work) on
// long-lived sessions.
const defaultSnapshotEvery = 256

// NewMemStore creates the in-memory store backend: full WAL/snapshot
// semantics with no I/O. It outlives any Authority that writes it, so
// crash-simulation harnesses can abandon a host and recover a fresh one
// from the same store; it does not survive the process.
func NewMemStore() Store { return store.NewMem() }

// NewFileStore opens (creating if needed) the file store backend rooted
// at dir: one spec/WAL/snapshot file triple per session under
// dir/sessions, CRC-guarded WAL lines, atomically-replaced snapshots.
// See DESIGN.md §9 for the on-disk format.
func NewFileStore(dir string) (Store, error) { return store.NewFile(dir) }

// AuthorityOption configures NewAuthority.
type AuthorityOption func(*Authority)

// WithStore attaches a durable store to the authority: sessions created
// from a serializable spec (CreateFromSpec — the POST /sessions path) are
// journaled play-by-play and survive a host crash via Recover. Sessions
// built from in-process closures (Create, Host) stay volatile — a closure
// cannot be journaled.
func WithStore(st Store) AuthorityOption {
	return func(a *Authority) { a.store.Store(&storeBox{st: st}) }
}

// WithSnapshotEvery sets the compaction cadence: every n journaled plays
// a durable session's WAL is folded into a compacted snapshot. n ≤ 0
// disables periodic compaction (snapshots still happen on close and on
// explicit SnapshotSession calls). The default is 256.
func WithSnapshotEvery(n int) AuthorityOption {
	return func(a *Authority) { a.snapshotEvery = n }
}

// WithGroupCommit enables WAL group commit on a file-backed store:
// journal appends from every durable session park on a shared commit
// ticket, and a single background committer fsyncs all dirty session
// logs once per epoch — so every acknowledged append is OS-crash
// durable at a per-play fsync cost amortized over the whole epoch. An
// epoch flushes every window or as soon as maxBatch appends are parked
// on it, whichever comes first (maxBatch ≤ 0 means window-only). The
// option is a no-op on backends without a committer (the in-memory
// store, custom decorators) and composes with WithFaultPlan in either
// order: faults are injected above the committer, so an injected append
// failure never reaches the fsync path. Epoch and fsync counts surface
// on /metrics as gameauthority_commit_epochs_total and
// gameauthority_fsyncs_total.
func WithGroupCommit(window time.Duration, maxBatch int) AuthorityOption {
	return func(a *Authority) {
		a.gcWindow = window
		a.gcMaxBatch = maxBatch
	}
}

// --- Durable session lifecycle --------------------------------------------------

// CreateFromSpec builds and hosts a session from its serializable wire
// spec — the same translation POST /sessions performs. On a store-backed
// authority the spec is journaled first and the session becomes durable:
// every play appends a WAL record and the session survives a host crash.
func (a *Authority) CreateFromSpec(req CreateSessionRequest) (*HostedSession, error) {
	g, opts, err := req.build()
	if err != nil {
		return nil, err
	}
	autoNamed := req.ID == ""
	for {
		h, err := a.Create(req.ID, g, opts...)
		if err != nil {
			return nil, err
		}
		st := a.getStore()
		if st == nil {
			return h, nil
		}
		req.ID = h.ID() // record the assigned id for auto-named sessions
		spec, err := json.Marshal(req)
		if err == nil {
			// The spec journal and the durable flip are one critical
			// section under the journal lock, mutually exclusive with
			// Remove's ledger decision: Remove sees either a volatile
			// session that will never journal (the dropped check below) or
			// a durable one whose ledger it then owns deleting.
			h.jmu.Lock()
			if h.dropped.Load() {
				// A Remove won between hosting and journaling: nothing was
				// journaled and nothing will be (Remove also scrubbed any
				// unowned predecessor ledger under this id). The create
				// itself succeeded — the session was simply removed right
				// after, which Remove already reported to its caller.
				h.jmu.Unlock()
				return h, nil
			}
			if err = st.CreateSession(h.ID(), spec); err == nil {
				h.durable.Store(true)
			}
			h.jmu.Unlock()
		}
		if err == nil {
			return h, nil
		}
		// Never host a session the ledger cannot recover: a durable create
		// that cannot journal is a failed create.
		if errors.Is(err, store.ErrSessionExists) {
			// The id is journaled by a previous host whose registry entry
			// was lost to a crash. Its ledger must NOT be scrubbed by this
			// cleanup (unhost leaves the store alone; only an explicit
			// Remove may delete it). An auto-named create simply skips
			// past the predecessor's ids (the counter is monotone, so this
			// terminates); an explicit id is a conflict — recover it
			// instead of re-creating.
			if a.unhost(h) {
				_ = h.Close()
			}
			if autoNamed {
				req.ID = ""
				continue
			}
			return nil, fmt.Errorf("%w: %q (journaled by a previous host; recover it instead of re-creating)",
				ErrSessionExists, h.ID())
		}
		// Scrub any partial journal (an orphaned spec would poison the id
		// and resurrect a phantom session at the next recovery) while the
		// id is still hosted: once the registry entry is gone a newer
		// create could journal the same id, and this delete would destroy
		// that ledger instead.
		_ = st.Delete(h.ID())
		if a.unhost(h) {
			_ = h.Close()
		}
		return nil, fmt.Errorf("journal create: %w", errors.Join(ErrDurability, err))
	}
}

// Play executes one play on the hosted session, then journals it to the
// durable store (durable sessions) and bumps the host counters. The play
// record carries the canonical transcript hash recovery re-verifies.
// Journaling happens under the session's journal lock, so a play can
// never race Close into appending after the close record. The lock is
// exclusive, not shared: the RoundResult aliases the driver's history
// ring (valid only until its slot is evicted), so the hash and convicted
// list journaled below must be read before another play of this session
// can wrap the ring. Plays of one session serialize on the driver's own
// mutex anyway; this only keeps the journal append inside that window.
// When the authority routes plays through shard loops (WithShards), Play
// enqueues onto the session's pinned loop and waits; playDirect is the
// body that actually runs there (and is what the WebSocket hub calls —
// its commands are already on the right loop).
func (h *HostedSession) Play(ctx context.Context) (RoundResult, error) {
	if h.a != nil && h.a.loopsRoute.Load() {
		if sp := h.a.loops.Load(); sp != nil {
			type playOut struct {
				res RoundResult
				err error
			}
			ch := make(chan playOut, 1)
			if sp.Submit(h.id, func() {
				res, err := h.playDirect(ctx)
				ch <- playOut{res, err}
			}) {
				select {
				case out := <-ch:
					return out.res, out.err
				case <-ctx.Done():
					return RoundResult{}, ctx.Err()
				}
			}
			// Pool closed (authority shutting down): fall through and play
			// directly so shutdown-time plays still drain correctly.
		}
	}
	return h.playDirect(ctx)
}

func (h *HostedSession) playDirect(ctx context.Context) (RoundResult, error) {
	// Root trace span for the end-to-end play: breaker gate → driver →
	// journal. Transport layers (HTTP route, WS round trip) wrap it from
	// outside; the distributed driver's phase/pulse spans nest inside.
	span := obs.DefaultTracer.BeginRoot("play", "play", 0, 0)
	defer span.End()
	if err := h.breakerGate(); err != nil {
		return RoundResult{}, err
	}
	h.jmu.Lock()
	defer h.jmu.Unlock()
	res, err := h.Session.Play(ctx)
	if err != nil || h.a == nil {
		return res, err
	}
	c := &h.a.counters
	c.Plays.Add(1)
	if n := len(res.Verdict.Fouls); n > 0 {
		c.Fouls.Add(int64(n))
	}
	if n := len(res.Convicted); n > 0 {
		c.Convictions.Add(int64(n))
	}
	if jerr := h.a.journalPlay(h, res); jerr != nil {
		h.breakerRecord(true)
		// The play happened; reporting the journal failure tells the
		// caller durability is degraded without losing the result.
		return res, jerr
	}
	if h.durable.Load() {
		h.breakerRecord(false)
	}
	return res, nil
}

// PlayN executes n plays on the hosted session under a single journal
// (and driver) lock acquisition, journaling the whole batch as ONE WAL
// record — the batched-play fast path that closes the per-play
// durability tax. State evolution is identical to n sequential Play
// calls (the drivers' PlayN is lock + the same play body in a loop);
// only the journaling is coalesced. sink, when non-nil, observes every
// completed round in order before the next round runs — results may
// alias driver scratch, so sink must copy or hash what it keeps, and on
// a routed authority (WithShards) it runs on the session's shard loop.
// On a mid-batch error the completed prefix is journaled and the last
// completed result returned with the error; a journal failure after a
// clean batch surfaces as ErrDurability with the last result, exactly
// like Play.
func (h *HostedSession) PlayN(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error) {
	if h.a != nil && h.a.loopsRoute.Load() {
		if sp := h.a.loops.Load(); sp != nil {
			type playOut struct {
				res RoundResult
				err error
			}
			ch := make(chan playOut, 1)
			if sp.Submit(h.id, func() {
				res, err := h.playNDirect(ctx, n, sink)
				ch <- playOut{res, err}
			}) {
				select {
				case out := <-ch:
					return out.res, out.err
				case <-ctx.Done():
					return RoundResult{}, ctx.Err()
				}
			}
			// Pool closed (authority shutting down): fall through, as Play.
		}
	}
	return h.playNDirect(ctx, n, sink)
}

// playNDirect is the body of PlayN (what the WebSocket hub calls — its
// commands already run on the right shard loop).
func (h *HostedSession) playNDirect(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error) {
	if n <= 0 {
		// Reject here rather than inside the driver so the batch buffer
		// below never sizes from a negative n.
		return RoundResult{}, fmt.Errorf("%w: non-positive batch size %d", ErrConfig, n)
	}
	span := obs.DefaultTracer.BeginRoot("play.batch", "play", 0, int64(n))
	defer span.End()
	t0 := time.Now()
	defer func() { playNBatchLatency.Record(time.Since(t0)) }()
	if err := h.breakerGate(); err != nil {
		return RoundResult{}, err
	}
	h.jmu.Lock()
	defer h.jmu.Unlock()
	// The batch record is assembled inside the sink: each round's hash and
	// convicted list are read before the next play can reuse the driver's
	// scratch or wrap its history ring (the same aliasing rule journalPlay
	// relies on, held per round instead of per lock acquisition).
	journaling := h.a != nil && h.durable.Load() && !h.dropped.Load() && h.a.getStore() != nil
	var batch []store.BatchPlay
	if journaling {
		batch = make([]store.BatchPlay, 0, n)
	}
	var completed, fouls, convictions int64
	inner := func(res RoundResult) error {
		completed++
		fouls += int64(len(res.Verdict.Fouls))
		convictions += int64(len(res.Convicted))
		if journaling {
			bp := store.BatchPlay{
				Round: res.Round,
				Hash:  core.HashResult(res),
				Fouls: len(res.Verdict.Fouls),
			}
			if len(res.Convicted) > 0 {
				bp.Convicted = append([]int(nil), res.Convicted...)
			}
			batch = append(batch, bp)
		}
		if sink != nil {
			return sink(res)
		}
		return nil
	}
	res, err := h.Session.PlayN(ctx, n, inner)
	if h.a == nil {
		return res, err
	}
	c := &h.a.counters
	if completed > 0 {
		c.Plays.Add(completed)
	}
	if fouls > 0 {
		c.Fouls.Add(fouls)
	}
	if convictions > 0 {
		c.Convictions.Add(convictions)
	}
	// Journal whatever completed — on a mid-batch error the prefix stands,
	// exactly as n sequential Play calls would have journaled it.
	if jerr := h.a.journalBatch(h, batch); jerr != nil {
		h.breakerRecord(true)
		return res, errors.Join(err, jerr)
	}
	if h.durable.Load() && completed > 0 {
		h.breakerRecord(false)
	}
	return res, err
}

// breakerGate fails fast with ErrBreakerOpen while the session's breaker
// is open. When the cooldown has elapsed it moves the breaker half-open:
// the next play probes the store, and one more failure re-opens it.
func (h *HostedSession) breakerGate() error {
	if h.a == nil || h.a.breakerThreshold < 0 {
		return nil
	}
	until := h.breakerUntil.Load()
	if until == 0 {
		return nil
	}
	if time.Now().UnixNano() < until {
		return ErrBreakerOpen
	}
	if h.breakerUntil.CompareAndSwap(until, 0) {
		// Half-open: leave the counter one failure short of the threshold
		// so a failed probe trips the breaker again immediately while a
		// successful one resets it.
		h.breakerFails.Store(int64(h.a.breakerThreshold) - 1)
	}
	return nil
}

// breakerRecord tracks consecutive journal failures and opens the
// breaker at the threshold.
func (h *HostedSession) breakerRecord(failed bool) {
	a := h.a
	if a == nil || a.breakerThreshold < 0 {
		return
	}
	if !failed {
		h.breakerFails.Store(0)
		return
	}
	if h.breakerFails.Add(1) >= int64(a.breakerThreshold) {
		h.breakerUntil.Store(time.Now().Add(a.breakerCooldown).UnixNano())
		a.counters.BreakerOpens.Add(1)
	}
}

// Run executes rounds plays through Play, so every play of a durable
// session is journaled (the embedded Session.Run would bypass the WAL).
func (h *HostedSession) Run(ctx context.Context, rounds int) (RoundResult, error) {
	var last RoundResult
	for i := 0; i < rounds; i++ {
		res, err := h.Play(ctx)
		if err != nil {
			return last, err
		}
		last = res
	}
	return last, nil
}

// Close finalizes the hosted session and, for durable sessions, journals
// a close record carrying the post-close state digest plus a final
// compacted snapshot. Idempotent like the underlying Session.Close. The
// journal write-lock excludes in-flight plays, so the close record's
// digest never covers a play whose own record has not landed yet.
func (h *HostedSession) Close() error {
	h.jmu.Lock()
	defer h.jmu.Unlock()
	if err := h.Session.Close(); err != nil {
		return err
	}
	if h.a == nil || !h.durable.Load() || h.dropped.Load() || h.closeLogged.Swap(true) {
		return nil
	}
	st := h.a.getStore()
	if st == nil {
		return nil
	}
	snap := h.Session.Snapshot()
	if err := st.Append(h.id, store.Record{Type: store.RecordClose, Digest: snap.Digest}); err != nil {
		// Un-latch so a retried Close re-attempts the close record instead
		// of falsely reporting success with an open-looking journal.
		h.closeLogged.Store(false)
		return fmt.Errorf("journal close: %w", errors.Join(ErrDurability, err))
	}
	h.a.counters.WALRecords.Add(1)
	// Best-effort final compaction; the close record above already makes
	// recovery exact.
	_, _, _ = h.a.snapshotHosted(h, snap)
	return nil
}

// journalPlay appends the play's WAL record and triggers cadence-based
// compaction.
func (a *Authority) journalPlay(h *HostedSession, res RoundResult) error {
	st := a.getStore()
	if st == nil || !h.durable.Load() || h.dropped.Load() {
		// dropped: a Remove is deleting the ledger — appending would only
		// manufacture a spurious ErrDurability for a play that succeeded.
		return nil
	}
	rec := store.Record{
		Type:  store.RecordPlay,
		Round: res.Round,
		Hash:  core.HashResult(res),
		Fouls: len(res.Verdict.Fouls),
	}
	if len(res.Convicted) > 0 {
		rec.Convicted = res.Convicted // Append serializes synchronously; no clone needed
	}
	if err := st.Append(h.id, rec); err != nil {
		return fmt.Errorf("journal play: %w", errors.Join(ErrDurability, err))
	}
	a.counters.WALRecords.Add(1)
	if every := a.snapshotEvery; every > 0 {
		// Claim the counter before compacting so concurrent plays past the
		// threshold do not queue redundant full-WAL rewrites behind one
		// another; on failure the claim is returned, so the WAL stays
		// intact and a later play retries the compaction.
		if n := h.walPlays.Add(1); n >= int64(every) && h.walPlays.CompareAndSwap(n, 0) {
			if _, ok, err := a.snapshotHosted(h, h.Session.Snapshot()); err != nil || !ok {
				h.walPlays.Add(n)
			}
		}
	}
	return nil
}

// journalBatch appends one batch WAL record covering every completed
// play of a PlayN call. The batch is a single CRC-guarded journal line,
// so it is atomic on disk: a crash persists all of its plays or none
// (repairWAL truncates a torn line whole), and recovery unpacks the
// per-play hashes exactly as if each had its own record. The compaction
// cadence advances by the batch size.
func (a *Authority) journalBatch(h *HostedSession, plays []store.BatchPlay) error {
	st := a.getStore()
	if st == nil || len(plays) == 0 || !h.durable.Load() || h.dropped.Load() {
		return nil
	}
	if err := st.Append(h.id, store.Record{Type: store.RecordBatch, Plays: plays}); err != nil {
		return fmt.Errorf("journal batch: %w", errors.Join(ErrDurability, err))
	}
	a.counters.WALRecords.Add(1)
	a.counters.BatchedPlays.Add(int64(len(plays)))
	if every := a.snapshotEvery; every > 0 {
		// Same claim discipline as journalPlay, advanced by the batch size.
		if n := h.walPlays.Add(int64(len(plays))); n >= int64(every) && h.walPlays.CompareAndSwap(n, 0) {
			if _, ok, err := a.snapshotHosted(h, h.Session.Snapshot()); err != nil || !ok {
				h.walPlays.Add(n)
			}
		}
	}
	return nil
}

// snapshotHosted persists one session's snapshot, compacting its WAL and
// resetting the compaction cadence. persisted is false (with a nil
// error) for volatile sessions.
func (a *Authority) snapshotHosted(h *HostedSession, snap SessionSnapshot) (SessionSnapshot, bool, error) {
	st := a.getStore()
	if st == nil || !h.durable.Load() || h.dropped.Load() {
		return snap, false, nil
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return snap, false, fmt.Errorf("gameauthority: snapshot: %w", err)
	}
	// Claim the cadence counter atomically rather than zeroing it after
	// the write: plays journaled concurrently with the compaction keep
	// their counts, so the next compaction is not pushed out by up to a
	// full snapshotEvery window, and two concurrent snapshots cannot
	// double-subtract. (On the journalPlay CAS path the threshold batch
	// was already claimed; anything swapped out here is newer.)
	claimed := h.walPlays.Swap(0)
	if err := st.PutSnapshot(h.id, snap.Rounds, payload); err != nil {
		h.walPlays.Add(claimed) // return the claim; the WAL is intact
		return snap, false, fmt.Errorf("snapshot: %w", errors.Join(ErrDurability, err))
	}
	a.counters.Snapshots.Add(1)
	return snap, true, nil
}

// SnapshotSession captures the session's state summary and, when the
// session is durable, persists it as the compacted snapshot (the POST
// /sessions/{id}/snapshot operation). persisted reports whether the store
// was updated.
func (a *Authority) SnapshotSession(id string) (snap SessionSnapshot, persisted bool, err error) {
	h, err := a.Get(id)
	if err != nil {
		return SessionSnapshot{}, false, err
	}
	return a.snapshotHosted(h, h.Session.Snapshot())
}

// SnapshotAll snapshots every hosted durable session (graceful-shutdown
// compaction), returning how many snapshots were persisted and the first
// error encountered.
func (a *Authority) SnapshotAll() (int, error) {
	var first error
	persisted := 0
	for _, h := range a.Sessions() {
		if _, ok, err := a.snapshotHosted(h, h.Session.Snapshot()); err != nil {
			if first == nil {
				first = err
			}
		} else if ok {
			persisted++
		}
	}
	return persisted, first
}

// DetachStore removes and returns the authority's store without syncing
// or closing it — the SIGKILL simulation crash harnesses use to abandon a
// host: the detached instance stops journaling immediately, and whatever
// reached the store stays exactly as a real crash would leave it.
func (a *Authority) DetachStore() Store {
	if b := a.store.Swap(nil); b != nil {
		return b.st
	}
	return nil
}

// --- Recovery -------------------------------------------------------------------

// RecoveryReport summarizes one Recover pass.
type RecoveryReport struct {
	// Sessions is the number of sessions restored and re-hosted.
	Sessions int
	// Rounds is the total number of plays replayed across them.
	Rounds int
	// Elapsed is the wall-clock recovery time (the replay lag).
	Elapsed time.Duration
	// Failed lists "id: reason" for sessions that could not be restored
	// (corrupt spec, verification mismatch); they stay in the store for
	// inspection.
	Failed []string
}

// Recover restores every persisted session from the durable store:
// concurrent workers rebuild each session from its journaled spec,
// deterministically replay it to its WAL watermark (verifying play hashes
// and state digests), and re-host it under its original id. Sessions that
// fail verification are reported in the RecoveryReport and left in the
// store. Safe to call on a freshly built authority at startup.
func (a *Authority) Recover(ctx context.Context) (RecoveryReport, error) {
	start := time.Now()
	st := a.getStore()
	if st == nil {
		return RecoveryReport{}, ErrNoStore
	}
	ids, err := st.IDs()
	if err != nil {
		return RecoveryReport{}, err
	}
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		report RecoveryReport
	)
	sem := make(chan struct{}, workers)
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(id string) {
			defer func() { <-sem; wg.Done() }()
			// Each worker loads its own session's state, so journal I/O
			// overlaps replay and memory holds only in-flight sessions.
			state, ok, err := st.LoadSession(id)
			var rounds int
			var restored bool
			if err == nil && ok {
				rounds, restored, err = a.restoreOne(ctx, state)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				report.Failed = append(report.Failed, fmt.Sprintf("%s: %v", id, err))
				return
			}
			if restored {
				report.Sessions++
				report.Rounds += rounds
			}
		}(id)
	}
	wg.Wait()
	sort.Strings(report.Failed)
	report.Elapsed = time.Since(start)
	return report, ctx.Err()
}

// storeHas is a cheap existence probe: backends exposing Has (both
// built-ins do) answer with a stat or map lookup; others fall back to a
// full LoadSession.
func storeHas(st Store, id string) (bool, error) {
	if h, ok := st.(interface{ Has(string) (bool, error) }); ok {
		return h.Has(id)
	}
	_, ok, err := st.LoadSession(id)
	return ok, err
}

// restoreCall tracks one in-flight restore-on-miss so concurrent
// requests for the same lost id share a single replay (singleflight).
type restoreCall struct {
	done chan struct{}
	err  error
}

// GetOrRecover returns the hosted session with the given id, lazily
// restoring it from the durable store on a registry miss (the HTTP
// restore-on-miss path: a request for a session the crashed predecessor
// hosted revives it on demand). Concurrent misses on the same id share
// one replay: followers wait for the leader instead of each paying the
// full deterministic replay only to lose the Host race.
func (a *Authority) GetOrRecover(ctx context.Context, id string) (*HostedSession, error) {
	h, err := a.Get(id)
	if err == nil {
		return h, nil
	}
	st := a.getStore()
	if st == nil {
		return nil, err
	}

	a.restoreMu.Lock()
	if ferr, failed := a.restoreFailed[id]; failed {
		// The replay failed deterministically before (diverged digest,
		// unbuildable spec): the ledger has not changed, so re-paying the
		// full replay would only re-derive the same failure. Remove — the
		// one API remedy, which deletes the ledger — clears this memo.
		a.restoreMu.Unlock()
		return nil, ferr
	}
	if a.restoring == nil {
		a.restoring = make(map[string]*restoreCall)
	}
	if c, inflight := a.restoring[id]; inflight {
		a.restoreMu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if c.err != nil {
			return nil, c.err
		}
		return a.Get(id)
	}
	c := &restoreCall{done: make(chan struct{})}
	a.restoring[id] = c
	a.restoreMu.Unlock()
	defer func() {
		a.restoreMu.Lock()
		delete(a.restoring, id)
		a.restoreMu.Unlock()
		close(c.done)
	}()

	state, ok, lerr := st.LoadSession(id)
	if lerr != nil {
		// A degraded store must not masquerade as "session never existed":
		// the ledger may be intact. Surface the server-side condition.
		c.err = fmt.Errorf("load %q: %w", id, errors.Join(ErrDurability, lerr))
		return nil, c.err
	}
	if !ok {
		c.err = err // the original ErrSessionNotFound
		return nil, err
	}
	// The replay is shared by every waiter on c.done, so it must not die
	// with the leader's request: a leader disconnect mid-replay would
	// otherwise surface as an ErrDurability 503 to followers of a healthy
	// store. The replay is finite (bounded by the WAL watermark), so
	// running it to completion without the request's cancellation is safe.
	if _, _, rerr := a.restoreOne(context.WithoutCancel(ctx), state); rerr != nil {
		// The ledger exists but could not be revived (diverged digest,
		// unbuildable spec). That is a damaged-store condition, not "never
		// existed" — report it as such, with the cause inspectable. The
		// replay is deterministic, so memoize the failure rather than
		// re-paying it on every request for the poisoned id.
		c.err = fmt.Errorf("restore %q: %w", id, errors.Join(ErrDurability, rerr))
		a.restoreMu.Lock()
		// Memoize only while the ledger still exists: a Remove that raced
		// the replay deleted it — and its memo clear, which serializes on
		// restoreMu, must not be outrun by this write (a stale memo would
		// 503 a session that is simply gone).
		if has, herr := storeHas(st, id); herr == nil && has {
			if a.restoreFailed == nil {
				a.restoreFailed = make(map[string]error)
			}
			a.restoreFailed[id] = c.err
		}
		a.restoreMu.Unlock()
		return nil, c.err
	}
	return a.Get(id)
}

// restoreOne rebuilds, replays, verifies, and re-hosts one journaled
// session. restored is false (with a nil error) when the id was already
// hosted — nothing was recovered, and nothing is counted.
func (a *Authority) restoreOne(ctx context.Context, state store.SessionState) (rounds int, restored bool, err error) {
	if _, err := a.Get(state.ID); err == nil {
		// Already hosted (a second Recover pass, or a GetOrRecover that
		// beat us): skip before paying for the replay.
		return 0, false, nil
	}
	t0 := time.Now()
	defer func() {
		if restored {
			restoreLatency.Record(time.Since(t0))
		}
	}()
	var req CreateSessionRequest
	if err := json.Unmarshal(state.Spec, &req); err != nil {
		return 0, false, fmt.Errorf("corrupt spec: %w", err)
	}
	g, opts, err := req.build()
	if err != nil {
		return 0, false, fmt.Errorf("spec no longer builds: %w", err)
	}
	target, err := restoreTargetFor(state)
	if err != nil {
		return 0, false, err
	}
	s, err := RestoreSession(ctx, g, target, opts...)
	if err != nil {
		return 0, false, err
	}
	h, err := a.Host(state.ID, s)
	if errors.Is(err, ErrSessionExists) {
		// A concurrent recovery of the same id won; use its session.
		_ = s.Close()
		return 0, false, nil
	}
	if err != nil {
		_ = s.Close()
		return 0, false, err
	}
	if st := a.getStore(); st != nil {
		if has, herr := storeHas(st, state.ID); herr == nil && !has {
			// A Remove deleted the ledger while we were replaying: honor
			// the delete instead of hosting a zombie with no journal.
			h.dropped.Store(true)
			_ = a.Remove(state.ID)
			return 0, false, nil
		}
	}
	h.jmu.Lock()
	if h.dropped.Load() {
		// A Remove claimed the freshly hosted session before the durable
		// flip: under this same lock it saw the journaled ledger and
		// deleted it. Honor the removal.
		h.jmu.Unlock()
		return 0, false, nil
	}
	h.durable.Store(true)
	h.jmu.Unlock()
	if target.Closed {
		h.closeLogged.Store(true)
	}
	// Seed the cadence counter with the un-compacted tail so long tails
	// compact soon after recovery.
	h.walPlays.Store(int64(len(target.Hashes)))
	a.counters.Recoveries.Add(1)
	a.counters.ReplayedRounds.Add(int64(target.Rounds))
	return target.Rounds, true, nil
}

// restoreTargetFor derives the replay target from a journaled state: the
// snapshot gives the base watermark and digest, the WAL tail extends the
// watermark and supplies per-play hashes, and a close record (or a
// close-time snapshot) closes the restored session with its post-close
// digest.
func restoreTargetFor(state store.SessionState) (RestoreTarget, error) {
	target := RestoreTarget{Rounds: state.SnapshotRounds, Closed: state.Closed}
	snapDigest := ""
	if len(state.Snapshot) > 0 {
		var snap SessionSnapshot
		if err := json.Unmarshal(state.Snapshot, &snap); err != nil {
			return target, fmt.Errorf("corrupt snapshot: %w", err)
		}
		if snap.Rounds > target.Rounds {
			target.Rounds = snap.Rounds
		}
		snapDigest = snap.Digest
		if snap.Closed {
			target.Closed = true
		}
	}
	lastPlay := -1
	record := func(round int, hash string) {
		if target.Hashes == nil {
			target.Hashes = make(map[int]string, len(state.Tail))
		}
		target.Hashes[round] = hash
		if round > lastPlay {
			lastPlay = round
		}
	}
	for _, rec := range state.Tail {
		switch rec.Type {
		case store.RecordPlay:
			record(rec.Round, rec.Hash)
		case store.RecordBatch:
			// A batch unpacks into per-play hashes; entries below the
			// snapshot watermark (a batch straddling a compaction) are
			// harmless — replay starts at round zero and just verifies them
			// too.
			for _, bp := range rec.Plays {
				record(bp.Round, bp.Hash)
			}
		}
	}
	if lastPlay+1 > target.Rounds {
		target.Rounds = lastPlay + 1
	}
	switch {
	case state.Closed && state.CloseDigest != "":
		target.Digest = state.CloseDigest
	case lastPlay < state.SnapshotRounds && snapDigest != "":
		// No plays beyond the snapshot: its digest is the final state.
		target.Digest = snapDigest
	}
	return target, nil
}

// RestoreSession rebuilds a session from the same game+options New takes
// and deterministically replays it to the target (see core.Restore). The
// restored session's retained state is byte-identical to the journaled
// one; any verification mismatch fails with ErrRestore.
func RestoreSession(ctx context.Context, g Game, target RestoreTarget, opts ...Option) (Session, error) {
	cfg := core.SessionConfig{Game: g}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.Restore(ctx, cfg, target)
}
