package gameauthority_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ga "gameauthority"
	"gameauthority/internal/hub"
	"gameauthority/internal/wire"
)

// wsTestServer stands up an authority (with shard loops) behind a full
// NewServer and dials one streaming client against it.
func wsTestServer(t *testing.T, opts ...ga.AuthorityOption) (*ga.Authority, *httptest.Server, *hub.Client) {
	t.Helper()
	a := ga.NewAuthority(opts...)
	t.Cleanup(func() { a.Close() })
	srv := httptest.NewServer(ga.NewServer(a))
	t.Cleanup(srv.Close)
	c, err := hub.Dial(srv.URL)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return a, srv, c
}

// TestCrossTransportDeterminism: the same spec and seed must reach a
// byte-identical state digest whether the session is driven in process,
// over the HTTP JSON API, or over the binary streaming transport — the
// transport is a view, never an input, of the deterministic replay
// invariant.
func TestCrossTransportDeterminism(t *testing.T) {
	specs := []map[string]any{
		{"id": "det", "game": "pd", "seed": 7},
		{"id": "det", "game": "publicgoods-punish", "players": 4, "seed": 11},
		{"id": "det", "game": "minority", "players": 5, "seed": 13},
		{"id": "det", "game": "congestion", "kind": "mixed", "seed": 17},
		{"id": "det", "rra": map[string]any{"agents": 6, "resources": 3}, "seed": 19},
		{"id": "det", "game": "publicgoods", "players": 4, "distributed": map[string]any{"n": 4, "f": 1}, "seed": 23},
	}
	const rounds = 20

	for _, spec := range specs {
		name, _ := spec["game"].(string)
		if name == "" {
			name = "rra"
		}
		if _, dist := spec["distributed"]; dist {
			name += "-distributed"
		}
		t.Run(name, func(t *testing.T) {
			body, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}

			// In process: decode the same JSON the transports carry.
			var req ga.CreateSessionRequest
			if err := json.Unmarshal(body, &req); err != nil {
				t.Fatal(err)
			}
			inproc := ga.NewAuthority()
			defer inproc.Close()
			h, err := inproc.CreateFromSpec(req)
			if err != nil {
				t.Fatalf("in-process create: %v", err)
			}
			if _, err := h.Run(context.Background(), rounds); err != nil {
				t.Fatalf("in-process run: %v", err)
			}
			wantDigest := h.Snapshot().Digest
			if wantDigest == "" {
				t.Fatal("in-process digest empty")
			}

			// HTTP JSON transport.
			httpAuthority := ga.NewAuthority()
			defer httpAuthority.Close()
			httpSrv := httptest.NewServer(ga.NewServer(httpAuthority))
			defer httpSrv.Close()
			httpDigest, httpRounds := playOverHTTP(t, httpSrv.URL, body, rounds)

			// Binary streaming transport, with plays routed through the
			// shard loops.
			_, _, client := wsTestServer(t, ga.WithShards(2))
			ref, _, err := client.Create(body)
			if err != nil {
				t.Fatalf("ws create: %v", err)
			}
			out, err := client.Play(ref, rounds)
			if err != nil {
				t.Fatalf("ws play: %v", err)
			}
			if out.Completed != rounds {
				t.Fatalf("ws completed %d rounds, want %d", out.Completed, rounds)
			}
			snap, err := client.Snapshot(ref)
			if err != nil {
				t.Fatalf("ws snapshot: %v", err)
			}

			if httpRounds != rounds || snap.Rounds != rounds {
				t.Fatalf("rounds: http %d ws %d want %d", httpRounds, snap.Rounds, rounds)
			}
			if httpDigest != wantDigest {
				t.Errorf("HTTP digest %s != in-process %s", httpDigest, wantDigest)
			}
			if snap.Digest != wantDigest {
				t.Errorf("WS digest %s != in-process %s", snap.Digest, wantDigest)
			}
		})
	}
}

// playOverHTTP creates a session from spec, plays it, and returns the
// snapshot digest and round count.
func playOverHTTP(t *testing.T, base string, spec []byte, rounds int) (string, uint64) {
	t.Helper()
	post := func(path string, body []byte, want int) map[string]any {
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d (%v)", path, resp.StatusCode, want, out)
		}
		return out
	}
	created := post("/sessions", spec, http.StatusCreated)
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("create reply without id: %v", created)
	}
	post("/sessions/"+id+"/play", fmt.Appendf(nil, `{"rounds":%d}`, rounds), http.StatusOK)
	snap := post("/sessions/"+id+"/snapshot", nil, http.StatusOK)
	digest, _ := snap["digest"].(string)
	r, _ := snap["rounds"].(float64)
	return digest, uint64(r)
}

// TestStreamHammer drives the hub from many goroutines over several
// connections while HTTP plays hit the same authority — the -race build
// is the real assertion: session ownership must hold when the shard
// loops, the SSE path, and direct HTTP plays interleave.
func TestStreamHammer(t *testing.T) {
	a, srv, shared := wsTestServer(t, ga.WithShards(4))

	// A shared session driven concurrently over both transports.
	sharedSpec := []byte(`{"id":"shared","game":"pd","seed":1}`)
	sharedRef, _, err := shared.Create(sharedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := shared.Subscribe(sharedRef, func(ev wire.Event, lag uint64) {}); err != nil {
		t.Fatal(err)
	}

	clients := make([]*hub.Client, 3)
	for i := range clients {
		c, err := hub.Dial(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// WS workers: session lifecycle churn across all shards.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w%len(clients)]
			for i := 0; i < 4; i++ {
				id := fmt.Sprintf("hammer-%d-%d", w, i)
				spec := fmt.Appendf(nil, `{"id":%q,"game":"pd","seed":%d}`, id, w*100+i+1)
				ref, _, err := c.Create(spec)
				if err != nil {
					fail("create %s: %v", id, err)
					return
				}
				if err := c.Subscribe(ref, func(ev wire.Event, lag uint64) {}); err != nil {
					fail("subscribe %s: %v", id, err)
					return
				}
				if out, err := c.Play(ref, 3); err != nil || out.Completed != 3 {
					fail("play %s: %+v %v", id, out, err)
					return
				}
				if _, err := c.Stats(ref); err != nil {
					fail("stats %s: %v", id, err)
					return
				}
				if err := c.CloseSession(ref); err != nil {
					fail("close %s: %v", id, err)
					return
				}
			}
		}(w)
	}

	// Two more WS workers attach to the shared session and play it.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w%len(clients)]
			ref, err := c.Attach("shared")
			if err != nil {
				fail("attach shared: %v", err)
				return
			}
			for i := 0; i < 8; i++ {
				if _, err := c.Play(ref, 1); err != nil {
					fail("shared ws play: %v", err)
					return
				}
			}
		}(w)
	}

	// HTTP workers pound the same shared session through the JSON API.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Post(srv.URL+"/sessions/shared/play",
					"application/json", strings.NewReader(`{"rounds":1}`))
				if err != nil {
					fail("http play: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("http play status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Every transport saw the same session: 16 WS + 16 HTTP shared plays
	// plus the initial subscribe must be visible in one coherent count.
	st, err := shared.Stats(sharedRef)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 32 {
		t.Fatalf("shared session rounds = %d, want 32", st.Rounds)
	}

	// Closing the authority under a live hub must not hang: the shard
	// loops drain, then connections tear down.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Play(sharedRef, 1); err == nil {
		t.Fatal("play succeeded after authority close")
	}
}
