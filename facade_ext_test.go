package gameauthority_test

import (
	"testing"

	ga "gameauthority"
)

func TestFacadeTableGames(t *testing.T) {
	mg, err := ga.MinorityGame(5)
	if err != nil {
		t.Fatal(err)
	}
	if mg.NumPlayers() != 5 || mg.NumActions(0) != 2 {
		t.Fatal("minority game shape wrong")
	}
	pg, err := ga.PublicGoods(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := ga.PureNashEquilibria(pg, 0)
	if err != nil || len(pnes) != 1 {
		t.Fatalf("public goods PNEs = %v, %v", pnes, err)
	}
	tg, err := ga.NewTableGame("custom", []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.SetCost(0, ga.Profile{1, 1}, 3); err != nil {
		t.Fatal(err)
	}
	if tg.Cost(0, ga.Profile{1, 1}) != 3 {
		t.Fatal("table cost not stored")
	}
}

func TestFacadeSampledAudit(t *testing.T) {
	manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
	s, err := ga.NewMixedSession(ga.MixedConfig{
		Elected: ga.MatchingPennies(),
		Actual:  ga.MatchingPenniesManipulated(),
		Strategies: func(int, ga.Profile) ga.MixedProfile {
			return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
		},
		Agents:     []*ga.MixedAgent{nil, manip},
		Scheme:     ga.NewDisconnectScheme(2, 0),
		Mode:       ga.AuditSampled,
		SampleProb: 0.5,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(100); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatal("sampled audit never caught the manipulator through the facade")
	}
}

func TestFacadeStatisticalAudit(t *testing.T) {
	biased := &ga.MixedAgent{Override: func(int, int) int { return 0 }}
	s, err := ga.NewMixedSession(ga.MixedConfig{
		Elected: ga.MatchingPennies(),
		Strategies: func(int, ga.Profile) ga.MixedProfile {
			return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
		},
		Agents:       []*ga.MixedAgent{nil, biased},
		Scheme:       ga.NewReputationScheme(2, 0.5, 0.4, 0),
		Mode:         ga.AuditStatistical,
		Window:       50,
		ChiThreshold: 6.63,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(600); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatal("statistical audit never flagged the biased player through the facade")
	}
}

func TestFacadeReelection(t *testing.T) {
	cfg := ga.ReelectionConfig{
		Candidates: []ga.Candidate{
			{Game: ga.PrisonersDilemma(), Description: "pd"},
			{Game: ga.CoordinationGame(), Description: "coord"},
		},
		Voters: 3,
		Prefs: func(term, voter int) []int {
			if term == 0 {
				return []int{0, 1}
			}
			return []int{1, 0}
		},
		TermLength: 4,
		Seed:       5,
	}
	outcomes, err := ga.ReelectionSeries(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Winner != 0 || outcomes[1].Winner != 1 {
		t.Fatalf("winners = %d,%d; want 0,1", outcomes[0].Winner, outcomes[1].Winner)
	}
	terms, err := ga.PlayTerms(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || terms[0].SocialCost <= 0 {
		t.Fatalf("terms = %+v", terms)
	}
}

func TestFacadeFrequencyCheck(t *testing.T) {
	stat, suspicious, err := ga.FrequencyCheck(ga.Uniform(2), []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 6.63)
	if err != nil {
		t.Fatal(err)
	}
	if !suspicious || stat <= 6.63 {
		t.Fatalf("10 heads vs uniform not flagged: stat=%v", stat)
	}
}

func TestFacadePunishmentSchemes(t *testing.T) {
	for _, s := range []ga.PunishmentScheme{
		ga.NewDisconnectScheme(2, 0),
		ga.NewReputationScheme(2, 0.5, 0.2, 0.01),
		ga.NewDepositScheme(2, 3, 1),
	} {
		if s.Excluded(0) {
			t.Fatalf("%s: fresh agent excluded", s.Name())
		}
		if err := s.Punish(0, 0, 1); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestFacadeFoulReasonNames(t *testing.T) {
	for _, r := range []ga.FoulReason{
		ga.FoulIllegitimateAction, ga.FoulCommitMismatch, ga.FoulMissingReveal,
		ga.FoulNotBestResponse, ga.FoulSeedMismatch, ga.FoulSuspiciousDistribution,
	} {
		if r.String() == "" || r.Severity() <= 0 {
			t.Fatalf("reason %d badly exported", r)
		}
	}
}
