package gameauthority

import (
	"sync"

	"gameauthority/internal/core"
	"gameauthority/internal/game"
)

// Session is the uniform authority-session interface: one audited play per
// Play call, driven by whichever driver the options selected (pure, mixed,
// RRA, or distributed). Sessions are safe for concurrent use and emit an
// observer stream of plays, verdicts, convictions, elections, and clock
// recoveries. See New.
type Session = core.Session

// SessionStats is a point-in-time snapshot of a session's counters.
type SessionStats = core.SessionStats

// SessionKind identifies a session's driver.
type SessionKind = core.SessionKind

// Session kinds (see New for how options select a driver).
const (
	KindPure        = core.KindPure
	KindMixed       = core.KindMixed
	KindRRA         = core.KindRRA
	KindDistributed = core.KindDistributed
)

// AuditMode selects the judicial service's auditing discipline (§5.3).
type AuditMode = core.AuditMode

// Event is one entry in a session's observer stream.
type Event = core.Event

// EventKind classifies observer-stream events.
type EventKind = core.EventKind

// Observer receives session events; ObserverFunc adapts plain functions.
type (
	Observer     = core.Observer
	ObserverFunc = core.ObserverFunc
)

// Observer-stream event kinds.
const (
	EventPlay          = core.EventPlay
	EventVerdict       = core.EventVerdict
	EventConviction    = core.EventConviction
	EventElection      = core.EventElection
	EventClockRecovery = core.EventClockRecovery
)

// ErrPulseBudget is returned by distributed sessions when a play did not
// complete within the pulse budget (see WithPulseBudget). It is
// recoverable: the next Play keeps stepping the network.
var ErrPulseBudget = core.ErrPulseBudget

// ErrConfig reports an invalid session configuration (conflicting or
// malformed options passed to New).
var ErrConfig = core.ErrConfig

// ErrClosed is returned by Play on a session that was Closed. Close is
// idempotent and terminal: Results, ResultAt and Stats keep answering on
// a closed session, but no further plays run.
var ErrClosed = core.ErrClosed

// Option configures a Session built by New.
type Option func(*core.SessionConfig)

// AuditOption refines WithAudit.
type AuditOption func(*core.SessionConfig)

// New builds an authority session for the elected game g. The options
// select the driver:
//
//   - default: the trusted pure-strategy driver (§3.3) with honest
//     best-response agents; customize with WithAgents;
//   - WithStrategies (plus WithMixedAgents, WithAudit, WithActual): the
//     mixed-strategy driver with committed-randomness auditing (§5);
//   - WithRRA: the §6 repeated resource allocation harness (pass a nil
//     game — the harness builds its own);
//   - WithDistributed: the full middleware over the synchronous Byzantine
//     network — self-stabilizing clock plus interactive consistency for
//     every phase of every play (§3.3, §4).
//
// WithElection replaces g (pass nil) with a robust commit-reveal election
// among candidate games. WithPunishment installs the executive service's
// sanction policy on any driver.
//
// The four legacy constructors (NewPureSession, NewMixedSession,
// NewSupervisedRRA, NewDistributedSession) remain as deprecated wrappers;
// a session built here with the same seed replays their results exactly.
func New(g Game, opts ...Option) (Session, error) {
	cfg := core.SessionConfig{Game: g}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewSession(cfg)
}

// WithSeed sets the root seed for all commitments, honest sampling, and
// clocks. Sessions are deterministic in (configuration, seed).
func WithSeed(seed uint64) Option {
	return func(c *core.SessionConfig) { c.Seed = seed }
}

// WithHistoryLimit bounds the session's retained play history to the most
// recent limit plays (0, the default, retains everything). Bounded
// sessions record plays into a reused ring buffer, so long-running
// sessions stop growing and the play hot path stops allocating; evicted
// plays disappear from Results and ResultAt while Stats keeps counting
// every play. Results returned by Play/ResultAt on a bounded session alias
// session-owned buffers and stay valid until their round is evicted; Clone
// them (or use Results, which deep-copies) to keep them longer.
func WithHistoryLimit(limit int) Option {
	return func(c *core.SessionConfig) { c.HistoryLimit = limit }
}

// WithAgents installs pure-strategy behaviours (pure and distributed
// drivers). Nil entries mean honest best-response agents.
func WithAgents(agents ...*Agent) Option {
	return func(c *core.SessionConfig) { c.Agents = agents }
}

// WithPunishment installs the executive service's punishment scheme. On
// the distributed driver the scheme is a prototype: every processor's
// executive replica gets its own fresh copy.
func WithPunishment(scheme PunishmentScheme) Option {
	return func(c *core.SessionConfig) { c.Scheme = scheme }
}

// WithDeviant attaches a player-level selfish strategy to the given
// player: the strategy compiles itself into whichever driver the session
// resolves to (pure, mixed, RRA, or distributed), replacing the player's
// honest behaviour. Use it with the deviation catalog (AlwaysDefect,
// BestResponseLiar, CommitmentCheat, DistributionSkewer, Freerider) to
// probe whether deviation ever beats honesty under the installed
// punishment scheme; it composes with network-level adversaries on the
// distributed driver. A player cannot carry both an explicit agent and a
// deviant.
func WithDeviant(player int, strategy DeviantStrategy) Option {
	return func(c *core.SessionConfig) {
		if c.Deviants == nil {
			c.Deviants = make(map[int]core.Deviant)
		}
		c.Deviants[player] = strategy
	}
}

// WithElection runs the legislative service first: the voters elect the
// session's game from the candidates via a robust commit-reveal election
// (§3.1). Pass a nil game to New. Subscribers receive the EventElection
// even when they subscribe after New returns.
func WithElection(candidates []Candidate, voters []Voter) Option {
	return func(c *core.SessionConfig) {
		c.Election = &core.ElectionSpec{Candidates: candidates, Voters: voters}
	}
}

// --- Mixed-strategy options (§5) ----------------------------------------------

// WithStrategies selects the mixed-strategy driver and supplies the
// common-knowledge equilibrium strategies for each round (they may depend
// on the agreed previous outcome).
func WithStrategies(strategies func(round int, prev Profile) MixedProfile) Option {
	return func(c *core.SessionConfig) {
		c.Strategies = func(round int, prev game.Profile) game.MixedProfile {
			return strategies(round, prev)
		}
	}
}

// WithMixedAgents installs mixed-strategy behaviours; nil entries mean
// honest samplers of the committed PRG stream. Requires WithStrategies.
func WithMixedAgents(agents ...*MixedAgent) Option {
	return func(c *core.SessionConfig) { c.MixedAgents = agents }
}

// WithActual sets the true cost structure when it secretly extends the
// elected game (hidden manipulative strategies, Fig. 1).
func WithActual(g Game) Option {
	return func(c *core.SessionConfig) { c.Actual = g }
}

// WithAudit selects the judicial service's auditing discipline. Without
// it, mixed sessions default to AuditPerRound when a punishment scheme is
// installed and AuditOff otherwise.
//
//	ga.WithAudit(ga.AuditBatched, ga.EpochLen(16))
//	ga.WithAudit(ga.AuditSampled, ga.SampleProb(0.2))
//	ga.WithAudit(ga.AuditStatistical, ga.Window(50), ga.ChiThreshold(6.63))
func WithAudit(mode AuditMode, opts ...AuditOption) Option {
	return func(c *core.SessionConfig) {
		c.Mode = mode
		for _, opt := range opts {
			opt(c)
		}
	}
}

// EpochLen sets the batch size for AuditBatched (§5.3).
func EpochLen(rounds int) AuditOption {
	return func(c *core.SessionConfig) { c.EpochLen = rounds }
}

// SampleProb sets the per-round spot-check probability for AuditSampled.
func SampleProb(p float64) AuditOption {
	return func(c *core.SessionConfig) { c.SampleProb = p }
}

// Window sets the screening window for AuditStatistical (§5.2).
func Window(rounds int) AuditOption {
	return func(c *core.SessionConfig) { c.Window = rounds }
}

// ChiThreshold sets the chi-square-style threshold for AuditStatistical.
func ChiThreshold(t float64) AuditOption {
	return func(c *core.SessionConfig) { c.ChiThreshold = t }
}

// --- RRA options (§6) ----------------------------------------------------------

// WithRRA selects the repeated resource allocation driver: n agents share
// b resources and honest agents sample the committed water-filling
// equilibrium. Pass a nil game to New. Supervision (seed audits plus
// executive restriction) is on exactly when WithPunishment is set.
func WithRRA(n, b int) Option {
	return func(c *core.SessionConfig) {
		c.RRAAgents = n
		c.RRAResources = b
	}
}

// WithRRAByzantine overrides one RRA agent's choices (e.g. HogChooser or
// FixedChooser).
func WithRRAByzantine(agent int, choose func(agent int, loads []int64) int) Option {
	return func(c *core.SessionConfig) {
		if c.RRAByz == nil {
			c.RRAByz = make(map[int]func(int, []int64) int)
		}
		c.RRAByz[agent] = choose
	}
}

// --- Distributed options (§3.3, §4) --------------------------------------------

// WithDistributed selects the full distributed middleware: n processors
// (one player each, n > 3f) over a synchronous full mesh, with a
// self-stabilizing Byzantine clock scheduling interactive-consistency
// agreements for every phase of every play. byz installs network-level
// adversaries and may be nil.
func WithDistributed(n, f int, byz map[int]Adversary) Option {
	return func(c *core.SessionConfig) {
		c.DistProcs = n
		c.DistFaults = f
		// Copy rather than alias the caller's map: WithNetworkAdversary
		// merges into the session's map, and writing through to a map
		// the caller may reuse for other sessions would leak adversaries
		// across them.
		if len(byz) > 0 && c.DistByz == nil {
			c.DistByz = make(map[int]Adversary, len(byz))
		}
		for proc, adv := range byz {
			c.DistByz[proc] = adv
		}
	}
}

// WithNetworkAdversary installs a network-level adversary on one
// processor of a distributed session, merging into the same adversary
// map WithDistributed's byz argument populates. Options apply in order,
// so when both configure the same processor the later option wins. It
// composes with WithDeviant: one session can carry an application-layer
// selfish deviant on one processor and wire-level Byzantine behaviour on
// another — the loadgen chaos mix.
func WithNetworkAdversary(proc int, adv Adversary) Option {
	return func(c *core.SessionConfig) {
		if c.DistByz == nil {
			c.DistByz = make(map[int]Adversary)
		}
		c.DistByz[proc] = adv
	}
}

// WithPulseBudget bounds how many network pulses one Play may consume
// waiting for a distributed play to complete (0 = a generous default).
// Exhaustion returns ErrPulseBudget; the next Play keeps stepping, which
// lets callers observe §4 recovery in progress.
func WithPulseBudget(pulses int) Option {
	return func(c *core.SessionConfig) { c.DistPulseBudget = pulses }
}

// WithPulseWorkers selects the distributed session's pulse engine: 0 (the
// default) parallelizes each pulse across min(GOMAXPROCS, n) workers when
// more than one core is available; 1 pins the lockstep reference engine;
// w > 1 forces a worker pool of that width. Both engines produce
// identical executions — a property test proves it — so this is purely a
// scheduling choice.
func WithPulseWorkers(workers int) Option {
	return func(c *core.SessionConfig) { c.DistWorkers = workers }
}

// --- Accessors and helpers ------------------------------------------------------

// AsPure returns the pure-strategy driver behind s, or nil if s is not a
// pure session.
func AsPure(s Session) *PureSession {
	if d, ok := s.(interface{ Pure() *core.PureSession }); ok {
		return d.Pure()
	}
	return nil
}

// AsMixed returns the mixed-strategy driver behind s, or nil.
func AsMixed(s Session) *MixedSession {
	if d, ok := s.(interface{ Mixed() *core.MixedSession }); ok {
		return d.Mixed()
	}
	return nil
}

// AsRRA returns the RRA harness behind s, or nil.
func AsRRA(s Session) *SupervisedRRA {
	if d, ok := s.(interface{ Harness() *core.RRASupervised }); ok {
		return d.Harness()
	}
	return nil
}

// AsDistributed returns the network session behind s (for fault injection
// and replica-consistency checks), or nil.
func AsDistributed(s Session) *DistributedSession {
	if d, ok := s.(interface{ Dist() *core.DistSession }); ok {
		return d.Dist()
	}
	return nil
}

// Events subscribes a buffered channel to s's observer stream. Events are
// dropped (never blocking the session) when the channel is full; size the
// buffer for the expected burst. The returned cancel function unsubscribes
// and closes the channel.
func Events(s Session, buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Event, buffer)
	var mu sync.Mutex
	closed := false
	unsubscribe := s.Subscribe(ObserverFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		select {
		case ch <- e:
		default: // drop rather than stall the authority loop
		}
	}))
	cancel := func() {
		unsubscribe()
		mu.Lock()
		defer mu.Unlock()
		if !closed {
			closed = true
			close(ch)
		}
	}
	return ch, cancel
}
