package gameauthority

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gameauthority/internal/hub"
	"gameauthority/internal/metrics"
	"gameauthority/internal/obs"
	"gameauthority/internal/store"
)

// Authority-host errors.
var (
	// ErrSessionExists is returned when creating a session under an ID
	// that is already hosted.
	ErrSessionExists = errors.New("gameauthority: session id already hosted")
	// ErrSessionNotFound is returned for lookups of unknown session IDs.
	ErrSessionNotFound = errors.New("gameauthority: session not found")
	// ErrSessionID is returned for malformed session IDs (see Host).
	ErrSessionID = errors.New("gameauthority: invalid session id")
)

// validSessionID restricts registry keys so every hosted session stays
// addressable by the single-segment HTTP routes (/sessions/{id}): 1–64
// characters from [A-Za-z0-9._-].
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	// "." and ".." survive the character class but are path-cleaned away
	// by net/http routing.
	if id == "." || id == ".." {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// authorityShards is the registry's shard count (a power of two, so the
// hash maps to a shard with a mask). 64 shards keep create/get/remove
// contention negligible at thousands of concurrent sessions while the
// idle footprint stays a few kilobytes.
const authorityShards = 64

// Authority hosts many independent authority sessions keyed by ID behind
// a sharded, sync-safe registry — the middleware as a long-lived
// multi-tenant service rather than a one-shot driver. IDs hash onto
// authorityShards independently locked shards, so session create/get/play
// never serialize behind one registry lock under load (the many-session
// regime cmd/loadgen drives). All methods are safe for concurrent use,
// and hosted sessions may be played concurrently (each session serializes
// its own plays).
type Authority struct {
	shards [authorityShards]authorityShard
	nextID atomic.Uint64

	// store is the optional durable backend (WithStore); swapped
	// atomically so DetachStore can simulate crashes without racing the
	// play path.
	store atomic.Pointer[storeBox]
	// snapshotEvery is the compaction cadence: a durable session's WAL is
	// folded into a snapshot every snapshotEvery journaled plays
	// (WithSnapshotEvery; ≤ 0 disables periodic compaction).
	snapshotEvery int
	// counters are the host's operational counters (GET /metrics).
	counters metrics.Counters
	// restoring singleflights restore-on-miss replays per session id;
	// restoreFailed memoizes ids whose replay failed deterministically
	// (diverged digest, unbuildable spec) so every later request does not
	// re-pay the full replay just to fail again. Remove clears the memo
	// when it deletes the ledger.
	restoreMu     sync.Mutex
	restoring     map[string]*restoreCall
	restoreFailed map[string]error
	// storeClosed latches after the first Close so a second Close stays
	// idempotent (the store is synced and closed exactly once).
	storeClosed atomic.Bool

	// faultPlan is the optional chaos schedule (WithFaultPlan): applied
	// after options by NewAuthority, wrapping the durable store.
	faultPlan *FaultPlan
	// gcWindow/gcMaxBatch configure WAL group commit (WithGroupCommit):
	// enabled by NewAuthority on the unwrapped store, before any fault
	// decorator, when the backend supports it.
	gcWindow   time.Duration
	gcMaxBatch int
	// breakerThreshold/breakerCooldown tune the per-session circuit
	// breaker on repeated store failures (WithBreaker; threshold < 0
	// disables it).
	breakerThreshold int
	breakerCooldown  time.Duration

	// loops is the pool of authoritative shard loops (internal/hub):
	// sessions are pinned onto a loop by id hash, and all plays for a
	// session execute on that loop's goroutine. WithShards installs the
	// pool up front and sets loopsRoute, which makes HostedSession.Play
	// enqueue instead of playing inline; otherwise the pool is created
	// lazily the first time the WebSocket transport needs it, and the
	// HTTP/in-process play path stays direct.
	loops      atomic.Pointer[hub.Shards]
	loopsRoute atomic.Bool
	loopsMu    sync.Mutex
}

// storeBox wraps the store interface for atomic.Pointer.
type storeBox struct{ st store.Store }

// getStore returns the attached store, or nil.
func (a *Authority) getStore() store.Store {
	if b := a.store.Load(); b != nil {
		return b.st
	}
	return nil
}

// authorityShard is one lock's worth of the registry.
type authorityShard struct {
	mu       sync.RWMutex
	sessions map[string]*HostedSession
}

// HostedSession is a Session registered with an Authority under an ID.
// Sessions created from a serializable spec on a store-backed authority
// are durable: their plays are journaled to the write-ahead log and they
// survive a crash of the host (see Authority.Recover).
type HostedSession struct {
	Session
	id string
	a  *Authority

	// jmu orders journaling against close and removal: each play journals
	// under the lock (exclusively — its RoundResult aliases the driver's
	// history ring, which the next play may wrap), Close journals its
	// close record under it, and Remove decides the ledger's fate under
	// it, so a play that completed before Close always reaches the WAL
	// before the close record (whose digest covers it) is written.
	jmu sync.Mutex

	// durable marks sessions journaled in the authority's store. It flips
	// under jmu, in the same critical section as the spec journal write,
	// so a Remove deciding the ledger's fate under jmu sees either a
	// durable session (whose ledger it then owns deleting) or a volatile
	// one that — having observed dropped — will never journal.
	durable atomic.Bool
	// dropped marks sessions being removed: Close skips the close-record
	// journal because Remove deletes the whole ledger.
	dropped atomic.Bool
	// closeLogged latches the close record so idempotent Close journals
	// it exactly once.
	closeLogged atomic.Bool
	// walPlays counts plays journaled since the last compacted snapshot.
	walPlays atomic.Int64

	// breakerFails counts consecutive journal failures; breakerUntil is
	// the unix-nano deadline while the session's circuit breaker is open
	// (0 = closed). See playDirect.
	breakerFails atomic.Int64
	breakerUntil atomic.Int64
}

// ID returns the session's registry key.
func (h *HostedSession) ID() string { return h.id }

// NewAuthority creates an empty host. Options attach a durable store
// (WithStore) and tune the snapshot cadence (WithSnapshotEvery).
func NewAuthority(opts ...AuthorityOption) *Authority {
	a := &Authority{
		snapshotEvery:    defaultSnapshotEvery,
		breakerThreshold: defaultBreakerThreshold,
		breakerCooldown:  defaultBreakerCooldown,
	}
	for i := range a.shards {
		a.shards[i].sessions = make(map[string]*HostedSession)
	}
	for _, opt := range opts {
		opt(a)
	}
	// Enable group commit on the raw store before any fault decorator
	// wraps it (WithGroupCommit and WithStore compose in either order; a
	// backend without a committer — Mem, custom decorators — is a no-op).
	if a.gcWindow > 0 {
		if st, ok := a.getStore().(interface {
			SetGroupCommit(time.Duration, int, func(synced, parked int))
		}); ok {
			st.SetGroupCommit(a.gcWindow, a.gcMaxBatch, func(synced, parked int) {
				a.counters.CommitEpochs.Add(1)
				a.counters.Fsyncs.Add(int64(synced))
			})
		}
	}
	// Arm the fault plan after all options so WithFaultPlan and WithStore
	// compose in either order.
	if a.faultPlan != nil {
		a.faultPlan.AttachCounters(&a.counters)
		if st := a.getStore(); st != nil {
			a.store.Store(&storeBox{st: a.faultPlan.Store(st)})
		}
	}
	a.registerGauges()
	return a
}

// registerGauges publishes this authority's scrape-time gauges: live
// sessions per registry shard, open circuit breakers, and the process
// runtime stats. Registration replaces by name+labels, so the newest
// authority owns the series (the semantics tests want when they build
// many short-lived authorities) and the hot paths pay nothing — every
// value is computed at scrape time.
func (a *Authority) registerGauges() {
	for i := range a.shards {
		sh := &a.shards[i]
		obs.RegisterGaugeFunc("gameauthority_shard_sessions",
			"Live sessions hosted per registry shard.",
			func() float64 {
				sh.mu.RLock()
				n := len(sh.sessions)
				sh.mu.RUnlock()
				return float64(n)
			}, obs.Label{Key: "shard", Value: strconv.Itoa(i)})
	}
	obs.RegisterGaugeFunc("gameauthority_breaker_open_sessions",
		"Sessions whose journal circuit breaker is currently open.",
		func() float64 {
			open := 0
			for i := range a.shards {
				sh := &a.shards[i]
				sh.mu.RLock()
				for _, h := range sh.sessions {
					if h.breakerUntil.Load() != 0 {
						open++
					}
				}
				sh.mu.RUnlock()
			}
			return float64(open)
		})
	obs.RegisterRuntimeGauges(obs.Default)
}

// shardFor maps a session ID onto its shard (FNV-1a over the ID bytes;
// IDs are short, so inlining the hash beats hash/fnv's allocation).
func (a *Authority) shardFor(id string) *authorityShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &a.shards[h&(authorityShards-1)]
}

// Create builds a session with New and hosts it under id. An empty id is
// assigned automatically ("s-1", "s-2", ...). Creating over an existing
// id fails with ErrSessionExists.
func (a *Authority) Create(id string, g Game, opts ...Option) (*HostedSession, error) {
	// Check the ID before paying for session construction (a distributed
	// session builds a whole processor mesh). Host re-checks under the
	// shard's write lock, so a lost race still fails cleanly with
	// ErrSessionExists.
	if id != "" {
		if !validSessionID(id) {
			return nil, fmt.Errorf("%w: %q (want 1-64 characters from [A-Za-z0-9._-])", ErrSessionID, id)
		}
		sh := a.shardFor(id)
		sh.mu.RLock()
		_, taken := sh.sessions[id]
		sh.mu.RUnlock()
		if taken {
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		}
	}
	s, err := New(g, opts...)
	if err != nil {
		return nil, err
	}
	h, err := a.Host(id, s)
	if err != nil {
		// A concurrent Create won the ID between the pre-check and the
		// shard lock; release the freshly built session (a distributed one
		// owns a worker pool) instead of leaking it.
		_ = s.Close()
		return nil, err
	}
	return h, nil
}

// Host registers an existing session under id (empty = auto-assigned).
// IDs are restricted to 1–64 characters from [A-Za-z0-9._-] so every
// session stays addressable over HTTP.
func (a *Authority) Host(id string, s Session) (*HostedSession, error) {
	if id == "" {
		// The counter is monotone, so each candidate is fresh; a collision
		// only happens when a caller hand-registered "s-<k>" ahead of the
		// counter, in which case the loop simply skips past it.
		for {
			id = fmt.Sprintf("s-%d", a.nextID.Add(1))
			h, err := a.hostAt(a.shardFor(id), id, s)
			if err == nil {
				return h, nil
			}
			if !errors.Is(err, ErrSessionExists) {
				return nil, err
			}
		}
	}
	if !validSessionID(id) {
		return nil, fmt.Errorf("%w: %q (want 1-64 characters from [A-Za-z0-9._-])", ErrSessionID, id)
	}
	return a.hostAt(a.shardFor(id), id, s)
}

// hostAt installs the session into one shard under the shard lock.
func (a *Authority) hostAt(sh *authorityShard, id string, s Session) (*HostedSession, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, taken := sh.sessions[id]; taken {
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	h := &HostedSession{Session: s, id: id, a: a}
	sh.sessions[id] = h
	a.counters.Sessions.Add(1)
	a.counters.SessionsCreated.Add(1)
	return h, nil
}

// Get returns the hosted session with the given ID.
func (a *Authority) Get(id string) (*HostedSession, error) {
	sh := a.shardFor(id)
	sh.mu.RLock()
	h, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return h, nil
}

// Remove closes and unregisters the session with the given ID, deleting
// its durable ledger (a removed session is gone, not recoverable). The
// ledger is deleted *before* the registry entry so a concurrent
// restore-on-miss cannot revive the session from a ledger that is about
// to vanish (restoreOne re-checks the ledger after hosting, and the
// registry-miss path below re-checks the registry after deleting,
// closing both halves of that race). A session the registry lost to a
// crash but the store still journals is likewise deleted without being
// revived.
func (a *Authority) Remove(id string) error {
	st := a.getStore()
	deleted := false
	for attempt := 0; ; attempt++ {
		sh := a.shardFor(id)
		sh.mu.RLock()
		h, ok := sh.sessions[id]
		sh.mu.RUnlock()
		if !ok {
			if st == nil {
				return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
			}
			journaled, lerr := storeHas(st, id)
			if errors.Is(lerr, store.ErrClosed) {
				// A closed store (the authority shut down) cannot be
				// consulted; report the id not found. Trade-off: a real
				// journaled session caught by a shutdown also reads as 404
				// here — its ledger is intact and the next host recovers
				// it, so the delete must be retried there.
				return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
			}
			if lerr == nil && !journaled {
				// No ledger: make sure no stale restore-failure memo
				// outlives it (a racing GetOrRecover may have memoized a
				// ledger this or an earlier Remove deleted).
				a.clearRestoreMemo(id)
				if deleted {
					return nil // a prior pass deleted the ledger; the removal stands
				}
				return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
			}
			// Journaled (a damaged ledger still probes as present) — or
			// the probe itself failed. Either way the ledger files are
			// exactly what the caller wants gone; DELETE is the one API
			// remedy for a poisoned id, so a probe failure must not block
			// it.
			if derr := st.Delete(id); derr != nil {
				return fmt.Errorf("gameauthority: remove %q: %w", id, errors.Join(ErrDurability, derr))
			}
			deleted = true
			a.clearRestoreMemo(id)
			// A recovery may have re-hosted the session between the
			// registry miss above and the ledger delete (its post-host
			// ledger re-check can pass just before the delete lands): take
			// another pass to remove the now-ledgerless session rather
			// than leaving a zombie whose every play fails journaling.
			if attempt == 0 {
				if _, err := a.Get(id); err == nil {
					continue
				}
			}
			return nil
		}
		h.dropped.Store(true) // stop journaling before the ledger goes away
		var first error
		if st != nil {
			// Decide the ledger's fate under the journal lock, mutually
			// exclusive with CreateFromSpec's journal step, restoreOne's
			// durable flip, and in-flight plays: a durable session's
			// ledger is deleted here; a volatile one has journaled nothing
			// and — having observed dropped — never will, but the id may
			// still carry a ledger no live session owns (journaled by a
			// crashed predecessor while this entry is a newer transient,
			// or mid-restore), which this delete honors too.
			h.jmu.Lock()
			if h.durable.Load() {
				if derr := st.Delete(id); derr != nil {
					first = fmt.Errorf("gameauthority: remove %q: %w", id, errors.Join(ErrDurability, derr))
				}
			} else if derr := st.Delete(id); derr != nil && !errors.Is(derr, store.ErrClosed) {
				// Delete tolerates an absent ledger, so no existence probe
				// is needed: absent is a no-op, journaled or damaged is
				// scrubbed. A closed store is skipped — a volatile session
				// needs no store work to be removed.
				first = fmt.Errorf("gameauthority: remove %q: %w", id, errors.Join(ErrDurability, derr))
			}
			h.jmu.Unlock()
			if first == nil {
				a.clearRestoreMemo(id) // the ledger is gone; a fresh id may journal anew
			}
		}
		if a.unhost(h) {
			// The goroutine that unhosted the entry owns the close; a
			// concurrent Remove that lost the race changes nothing.
			if cerr := h.Close(); cerr != nil && first == nil {
				first = cerr
			}
		}
		return first
	}
}

// clearRestoreMemo drops the restore-failure memo for id after its
// ledger was deleted (see Authority.restoreFailed).
func (a *Authority) clearRestoreMemo(id string) {
	a.restoreMu.Lock()
	delete(a.restoreFailed, id)
	a.restoreMu.Unlock()
}

// unhost removes h's registry entry if this session still owns it,
// decrementing the gauge; it reports whether the caller won the removal
// (the winner runs Close). The store is never touched — ledger fate is
// the caller's business.
func (a *Authority) unhost(h *HostedSession) bool {
	sh := a.shardFor(h.id)
	sh.mu.Lock()
	cur, present := sh.sessions[h.id]
	owned := present && cur == h
	if owned {
		delete(sh.sessions, h.id)
	}
	sh.mu.Unlock()
	if owned {
		a.counters.Sessions.Add(-1)
	}
	return owned
}

// Len returns the number of hosted sessions.
func (a *Authority) Len() int {
	n := 0
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// Sessions returns the hosted sessions sorted by ID. The listing is a
// consistent snapshot per shard, not across shards — sessions created or
// removed concurrently may or may not appear, exactly as with the
// single-lock registry observed at a slightly different instant.
func (a *Authority) Sessions() []*HostedSession {
	var out []*HostedSession
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.RLock()
		for _, h := range sh.sessions {
			out = append(out, h)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Close shuts the host down: every hosted session is closed in-memory,
// then the durable store is synced and closed, so everything journaled
// is on disk before Close returns. Shutdown does NOT journal session
// close records — a session closed by a host restart is not a session
// that ended, and recovery must restore it open and playable (only an
// explicit HostedSession.Close marks a session durably closed). A second
// Close stays idempotent: it finds no sessions and does not touch the
// already-closed store.
func (a *Authority) Close() error {
	var first error
	// Stop the shard loops first so every play they already accepted
	// finishes (and journals) before sessions close and the store syncs.
	// Plays submitted after this point fall back to the direct path.
	if sp := a.loops.Load(); sp != nil {
		sp.Close()
	}
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		sessions := sh.sessions
		sh.sessions = make(map[string]*HostedSession)
		sh.mu.Unlock()
		for _, h := range sessions {
			a.counters.Sessions.Add(-1)
			// Latch the close journal shut: this is host shutdown, not a
			// session close.
			h.closeLogged.Store(true)
			if err := h.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if st := a.getStore(); st != nil && !a.storeClosed.Swap(true) {
		if err := st.Sync(); err != nil && first == nil {
			first = err
		}
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
