package gameauthority

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Authority-host errors.
var (
	// ErrSessionExists is returned when creating a session under an ID
	// that is already hosted.
	ErrSessionExists = errors.New("gameauthority: session id already hosted")
	// ErrSessionNotFound is returned for lookups of unknown session IDs.
	ErrSessionNotFound = errors.New("gameauthority: session not found")
	// ErrSessionID is returned for malformed session IDs (see Host).
	ErrSessionID = errors.New("gameauthority: invalid session id")
)

// validSessionID restricts registry keys so every hosted session stays
// addressable by the single-segment HTTP routes (/sessions/{id}): 1–64
// characters from [A-Za-z0-9._-].
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	// "." and ".." survive the character class but are path-cleaned away
	// by net/http routing.
	if id == "." || id == ".." {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Authority hosts many independent authority sessions keyed by ID behind
// a sync-safe registry — the middleware as a long-lived multi-tenant
// service rather than a one-shot driver. All methods are safe for
// concurrent use, and hosted sessions may be played concurrently (each
// session serializes its own plays).
type Authority struct {
	mu       sync.RWMutex
	sessions map[string]*HostedSession
	nextID   uint64
}

// HostedSession is a Session registered with an Authority under an ID.
type HostedSession struct {
	Session
	id string
}

// ID returns the session's registry key.
func (h *HostedSession) ID() string { return h.id }

// NewAuthority creates an empty host.
func NewAuthority() *Authority {
	return &Authority{sessions: make(map[string]*HostedSession)}
}

// Create builds a session with New and hosts it under id. An empty id is
// assigned automatically ("s-1", "s-2", ...). Creating over an existing
// id fails with ErrSessionExists.
func (a *Authority) Create(id string, g Game, opts ...Option) (*HostedSession, error) {
	// Check the ID before paying for session construction (a distributed
	// session builds a whole processor mesh). Host re-checks under the
	// write lock, so a lost race still fails cleanly with ErrSessionExists.
	if id != "" {
		if !validSessionID(id) {
			return nil, fmt.Errorf("%w: %q (want 1-64 characters from [A-Za-z0-9._-])", ErrSessionID, id)
		}
		a.mu.RLock()
		_, taken := a.sessions[id]
		a.mu.RUnlock()
		if taken {
			return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
		}
	}
	s, err := New(g, opts...)
	if err != nil {
		return nil, err
	}
	return a.Host(id, s)
}

// Host registers an existing session under id (empty = auto-assigned).
// IDs are restricted to 1–64 characters from [A-Za-z0-9._-] so every
// session stays addressable over HTTP.
func (a *Authority) Host(id string, s Session) (*HostedSession, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if id == "" {
		for {
			a.nextID++
			id = fmt.Sprintf("s-%d", a.nextID)
			if _, taken := a.sessions[id]; !taken {
				break
			}
		}
	} else if !validSessionID(id) {
		return nil, fmt.Errorf("%w: %q (want 1-64 characters from [A-Za-z0-9._-])", ErrSessionID, id)
	} else if _, taken := a.sessions[id]; taken {
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, id)
	}
	h := &HostedSession{Session: s, id: id}
	a.sessions[id] = h
	return h, nil
}

// Get returns the hosted session with the given ID.
func (a *Authority) Get(id string) (*HostedSession, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	h, ok := a.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return h, nil
}

// Remove closes and unregisters the session with the given ID.
func (a *Authority) Remove(id string) error {
	a.mu.Lock()
	h, ok := a.sessions[id]
	delete(a.sessions, id)
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return h.Close()
}

// Len returns the number of hosted sessions.
func (a *Authority) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.sessions)
}

// Sessions returns the hosted sessions sorted by ID.
func (a *Authority) Sessions() []*HostedSession {
	a.mu.RLock()
	out := make([]*HostedSession, 0, len(a.sessions))
	for _, h := range a.sessions {
		out = append(out, h)
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Close removes every hosted session, returning the first close error.
func (a *Authority) Close() error {
	a.mu.Lock()
	sessions := a.sessions
	a.sessions = make(map[string]*HostedSession)
	a.mu.Unlock()
	var first error
	for _, h := range sessions {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
