package gameauthority_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	ga "gameauthority"
)

// roundTripCase builds one (game, options) pair freshly on every call so
// twin sessions never share stateful schemes or deviants.
type roundTripCase struct {
	name  string
	build func() (ga.Game, []ga.Option, error)
}

// roundTripCases covers every catalog game on the pure driver (honest and
// deviant variants) plus one case per remaining driver — the satellite
// property: Snapshot → Restore → Play^k equals uninterrupted Play^k
// everywhere, including mid-punishment and post-conviction states.
func roundTripCases(t *testing.T) []roundTripCase {
	t.Helper()
	var cases []roundTripCase
	for _, entry := range ga.Catalog() {
		entry := entry
		n := entry.Players(4)
		cases = append(cases, roundTripCase{
			name: "pure-" + entry.Name,
			build: func() (ga.Game, []ga.Option, error) {
				g, err := entry.Build(n)
				if err != nil {
					return nil, nil, err
				}
				return g, []ga.Option{
					ga.WithSeed(31),
					ga.WithPunishment(ga.NewDisconnectScheme(n, 0)),
				}, nil
			},
		})
		cases = append(cases, roundTripCase{
			// The commitment cheat is detected and convicted on the pure
			// driver, so snapshots land mid-punishment (player 0 excluded)
			// and post-conviction.
			name: "deviant-" + entry.Name,
			build: func() (ga.Game, []ga.Option, error) {
				g, err := entry.Build(n)
				if err != nil {
					return nil, nil, err
				}
				return g, []ga.Option{
					ga.WithSeed(31),
					ga.WithPunishment(ga.NewDisconnectScheme(n, 0)),
					ga.WithDeviant(0, ga.CommitmentCheat()),
				}, nil
			},
		})
	}
	uniform := func(g ga.Game) func(int, ga.Profile) ga.MixedProfile {
		mp := make(ga.MixedProfile, g.NumPlayers())
		for i := range mp {
			mp[i] = ga.Uniform(g.NumActions(i))
		}
		return func(int, ga.Profile) ga.MixedProfile { return mp }
	}
	cases = append(cases,
		roundTripCase{
			name: "mixed-pennies-withholder",
			build: func() (ga.Game, []ga.Option, error) {
				g := ga.MatchingPennies()
				return g, []ga.Option{
					ga.WithSeed(13),
					ga.WithStrategies(uniform(g)),
					ga.WithMixedAgents(&ga.MixedAgent{Withhold: func(round int) bool { return round == 1 }}, nil),
					ga.WithAudit(ga.AuditPerRound),
					ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
				}, nil
			},
		},
		roundTripCase{
			name: "mixed-batched",
			build: func() (ga.Game, []ga.Option, error) {
				g := ga.MatchingPennies()
				return g, []ga.Option{
					ga.WithSeed(13),
					ga.WithStrategies(uniform(g)),
					ga.WithAudit(ga.AuditBatched, ga.EpochLen(4)),
					ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
				}, nil
			},
		},
		roundTripCase{
			name: "rra-skewer",
			build: func() (ga.Game, []ga.Option, error) {
				return nil, []ga.Option{
					ga.WithSeed(17),
					ga.WithRRA(6, 3),
					ga.WithPunishment(ga.NewDisconnectScheme(6, 0)),
					ga.WithDeviant(0, ga.DistributionSkewer(0.9)),
				}, nil
			},
		},
		roundTripCase{
			name: "distributed-publicgoods",
			build: func() (ga.Game, []ga.Option, error) {
				g, err := ga.PublicGoods(4, 2)
				if err != nil {
					return nil, nil, err
				}
				return g, []ga.Option{
					ga.WithSeed(23),
					ga.WithDistributed(4, 1, nil),
					ga.WithPulseWorkers(1),
				}, nil
			},
		},
		roundTripCase{
			name: "pure-bounded-history",
			build: func() (ga.Game, []ga.Option, error) {
				g, err := ga.CoordinationN(3, 2)
				if err != nil {
					return nil, nil, err
				}
				return g, []ga.Option{
					ga.WithSeed(41),
					ga.WithHistoryLimit(2),
					ga.WithPunishment(ga.NewDisconnectScheme(3, 0)),
				}, nil
			},
		},
	)
	return cases
}

// TestSnapshotRestoreProperty is the satellite property test: for every
// case and several snapshot points j, a session restored from its
// snapshot plays the next k rounds exactly as the uninterrupted original.
func TestSnapshotRestoreProperty(t *testing.T) {
	ctx := context.Background()
	const k = 4
	snapshotPoints := []int{0, 2, 5}
	if testing.Short() {
		snapshotPoints = []int{3}
	}
	sawConviction, sawExclusion := false, false
	for _, tc := range roundTripCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, j := range snapshotPoints {
				plays := j
				if isDistributed(tc.name) && plays > 2 {
					plays = 2 // keep the expensive driver cheap; 2 plays cross a full protocol period
				}
				g, opts, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				orig, err := ga.New(g, opts...)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < plays; i++ {
					if _, err := orig.Play(ctx); err != nil {
						t.Fatal(err)
					}
				}
				snap := orig.Snapshot()
				if snap.Convictions > 0 {
					sawConviction = true
				}
				for _, ex := range snap.Excluded {
					if ex {
						sawExclusion = true
					}
				}

				g2, opts2, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := ga.RestoreSession(ctx, g2,
					ga.RestoreTarget{Rounds: snap.Rounds, Digest: snap.Digest}, opts2...)
				if err != nil {
					t.Fatalf("restore at j=%d: %v", plays, err)
				}
				for i := 0; i < k; i++ {
					want, err := orig.Play(ctx)
					if err != nil {
						t.Fatal(err)
					}
					got, err := restored.Play(ctx)
					if err != nil {
						t.Fatal(err)
					}
					wc, gc := want.Clone(), got.Clone()
					if !reflect.DeepEqual(wc, gc) {
						t.Fatalf("j=%d future play %d diverged:\noriginal: %+v\nrestored: %+v", plays, i, wc, gc)
					}
				}
				if w, g := orig.Snapshot().Digest, restored.Snapshot().Digest; w != g {
					t.Fatalf("j=%d final digests diverged", plays)
				}
				if err := orig.Close(); err != nil {
					t.Fatal(err)
				}
				if err := restored.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	// The property must have crossed the states the satellite names.
	if !sawConviction || !sawExclusion {
		t.Fatalf("property sweep never hit post-conviction (%t) / mid-punishment (%t) states",
			sawConviction, sawExclusion)
	}
}

func isDistributed(name string) bool {
	return name == "distributed-publicgoods"
}

// TestRestoreSessionRejectsTamperedDigest pins the façade-level failure
// mode: a digest from a different history must not restore.
func TestRestoreSessionRejectsTamperedDigest(t *testing.T) {
	ctx := context.Background()
	g := ga.PrisonersDilemma()
	s, err := ga.New(g, ga.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(ctx, 3); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if _, err := ga.RestoreSession(ctx, g,
		ga.RestoreTarget{Rounds: snap.Rounds, Digest: "deadbeef"}, ga.WithSeed(1)); !errors.Is(err, ga.ErrRestore) {
		t.Fatalf("err = %v, want ErrRestore", err)
	}
}
