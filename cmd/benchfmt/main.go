// Command benchfmt turns `go test -bench` output into a persisted JSON
// baseline. It tees stdin through to stdout (so the human-readable bench
// table still prints) while parsing every Benchmark line into a machine-
// readable artifact:
//
//	go test -run '^$' -bench '^BenchmarkPlay' -benchmem . | go run ./cmd/benchfmt -out BENCH_PR2.json
//
// The artifact records ns/op, B/op, allocs/op, and any custom
// b.ReportMetric pairs per benchmark, plus the host fingerprint lines
// (goos/goarch/cpu) and the GOMAXPROCS the run used — without that
// context a baseline number is meaningless. `make bench` is the canonical
// invocation; see DESIGN.md §"Performance model" for how to read the file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the whole artifact.
type Baseline struct {
	Schema     string            `json:"schema"`
	Command    string            `json:"command"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "BENCH_PR2.json", "path of the JSON baseline to write")
	command := flag.String("command", "make bench", "canonical invocation recorded in the artifact")
	flag.Parse()

	base := Baseline{
		Schema:     "gameauthority-bench/v1",
		Command:    *command,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Result{},
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable table
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2][1:]); err == nil {
				base.GOMAXPROCS = p
			}
		}
		// The measurement tail alternates "<value> <unit>" pairs.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		base.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: read: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchfmt: bench run failed; not writing a baseline")
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark lines found on stdin")
		os.Exit(1)
	}

	data, err := marshalStable(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: encode: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchfmt: wrote %s (%s)\n", *out, strings.Join(names, ", "))
}

// marshalStable renders the baseline with indentation (Go's encoder
// already sorts map keys, so the artifact diffs cleanly between runs).
func marshalStable(b Baseline) ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
