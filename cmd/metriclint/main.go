// Command metriclint enforces the repository's metric naming
// conventions (make obs-smoke). It stands up a real in-process server —
// so every package-level registration and every Authority/store/hub
// gauge is live — scrapes GET /metrics, and asserts for every declared
// family:
//
//   - the name starts with the gameauthority_ prefix;
//   - counters end in _total;
//   - histograms' base names end in _seconds (latencies are seconds);
//   - gauges do not end in _total (that suffix is reserved for
//     monotonic counters).
//
// A violation prints every offending family and exits non-zero, so a
// new metric with a nonconforming name fails CI rather than shipping.
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	ga "gameauthority"
)

func main() {
	body, err := scrape()
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}
	problems, families := lint(body)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metriclint: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metric families conform\n", families)
}

// scrape builds a durable, sharded authority behind the HTTP server and
// returns one /metrics exposition — the union of the host counters and
// the observability registry.
func scrape() (string, error) {
	dir, err := os.MkdirTemp("", "metriclint-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	st, err := ga.NewFileStore(dir)
	if err != nil {
		return "", err
	}
	authority := ga.NewAuthority(
		ga.WithStore(st),
		ga.WithGroupCommit(time.Millisecond, 64),
		ga.WithShards(2),
	)
	defer authority.Close()
	srv := httptest.NewServer(ga.NewServer(authority))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("scrape: status %d", resp.StatusCode)
	}
	return string(body), nil
}

// lint applies the naming rules to every `# TYPE name type` declaration
// and checks each sample line belongs to a declared family.
func lint(body string) (problems []string, families int) {
	types := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				problems = append(problems, fmt.Sprintf("malformed TYPE line %q", line))
				continue
			}
			name, typ := fields[2], fields[3]
			if prev, ok := types[name]; ok && prev != typ {
				problems = append(problems, fmt.Sprintf("%s declared as both %s and %s", name, prev, typ))
			}
			types[name] = typ
		case strings.HasPrefix(line, "#"):
			problems = append(problems, fmt.Sprintf("unrecognized comment line %q", line))
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if t, ok := strings.CutSuffix(name, suffix); ok && types[t] == "histogram" {
					base = t
					break
				}
			}
			if _, ok := types[base]; !ok {
				problems = append(problems, fmt.Sprintf("series %s has no TYPE declaration", name))
			}
		}
	}
	for name, typ := range types {
		if !strings.HasPrefix(name, "gameauthority_") {
			problems = append(problems, fmt.Sprintf("%s lacks the gameauthority_ prefix", name))
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				problems = append(problems, fmt.Sprintf("counter %s must end in _total", name))
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") {
				problems = append(problems, fmt.Sprintf("histogram %s must end in _seconds", name))
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				problems = append(problems, fmt.Sprintf("gauge %s must not end in _total (reserved for counters)", name))
			}
		default:
			problems = append(problems, fmt.Sprintf("%s has unsupported type %s", name, typ))
		}
	}
	return problems, len(types)
}
