// Command loadgen is the many-session load harness: it spins up thousands
// of concurrent authority sessions across a weighted mix of scenario-
// catalog families and all four drivers (pure, mixed, RRA, distributed),
// plays every session concurrently, and reports throughput (plays/s) and
// play-latency percentiles (p50/p99).
//
// Two transports exercise the same Authority host:
//
//   - in-process (default): sessions are created with Authority.Create and
//     played directly — this measures the sharded registry and the play
//     hot paths with no wire in between;
//   - HTTP: -http http://host:port drives a running `gameauthd -serve`
//     over the JSON API (-selfserve starts a loopback server in-process,
//     so the HTTP path is measurable hermetically).
//
// Output is go-bench formatted on stdout so it pipes straight into
// cmd/benchfmt for the tracked artifact:
//
//	go run ./cmd/loadgen | go run ./cmd/benchfmt -command "make loadgen" -out BENCH_PR3.json
//
// `make loadgen` is the canonical invocation (1000 sessions); `make
// loadgen-smoke` is the CI-sized variant. See DESIGN.md §7 for how to
// read the numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	ga "gameauthority"
	"gameauthority/internal/metrics"
)

func main() {
	cfg := defaultConfig()
	flag.IntVar(&cfg.sessions, "sessions", 1000, "number of concurrent sessions to host")
	flag.IntVar(&cfg.plays, "plays", 20, "plays per session (heavy drivers play a documented fraction)")
	flag.IntVar(&cfg.batch, "batch", 0,
		"plays per batched request: >1 drives PlayN batches (one session lock, one WAL batch record per batch) and, in durable runs, enables WAL group commit")
	flag.StringVar(&cfg.mix, "mix", "", "override scenario weights, e.g. congestion=4,rra=1 (default: built-in mix over every family)")
	flag.StringVar(&cfg.httpBase, "http", "", "drive a running gameauthd -serve at this base URL instead of in-process")
	flag.BoolVar(&cfg.selfserve, "selfserve", false, "start a loopback HTTP server in-process and drive it (hermetic wire mode)")
	flag.StringVar(&cfg.transport, "transport", "",
		"transport to drive: inproc, http, or ws (default: http when -http/-selfserve is set, else inproc)")
	flag.IntVar(&cfg.conns, "conns", 16, "ws transport: number of multiplexed WebSocket connections")
	flag.IntVar(&cfg.pulseWorkers, "pulse-workers", 0,
		"distributed pulse engine width: 0 driver default, 1 lockstep, >1 worker pool (needs GOMAXPROCS>1 to pay off)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "root seed; session i uses seed+i")
	flag.Float64Var(&cfg.deviants, "deviants", 0,
		"fraction of sessions carrying one selfish deviant player (0..1); strategies rotate through the deviation catalog")
	flag.BoolVar(&cfg.chaos, "chaos", false,
		"install network-level adversaries on distributed sessions (in-process only; composes with -deviants)")
	flag.IntVar(&cfg.crash, "crash", 0,
		"crash/recover cycles: SIGKILL-style drop the authority mid-run and recover it from the write-ahead log this many times (in-process only)")
	flag.StringVar(&cfg.dataDir, "data-dir", "",
		"durable store directory for -crash (default: a throwaway temp dir)")
	flag.Float64Var(&cfg.chaosDisk, "chaos-disk", 0,
		"chaos acceptance mode: seeded disk-fault rate in [0,1] injected under the store (setting this flag, even to 0, switches to the chaos harness)")
	flag.Float64Var(&cfg.chaosNet, "chaos-net", 0,
		"chaos acceptance mode: seeded network-fault rate in [0,1] injected under every client connection (setting this flag, even to 0, switches to the chaos harness)")
	flag.BoolVar(&cfg.obs, "obs", false,
		"report server-side play-latency percentiles from the observability histograms next to the client-side numbers (in-process and -selfserve runs share the process with the server)")
	flag.Parse()
	// Setting either chaos rate — including explicitly to 0, for the
	// fault-free baseline row — selects the acceptance harness.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "chaos-disk" || f.Name == "chaos-net" {
			cfg.chaosMode = true
		}
	})
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	sessions  int
	plays     int
	batch     int // >1: play in PlayN batches of this size
	mix       string
	httpBase  string
	selfserve bool
	transport string
	conns     int
	seed      uint64
	deviants  float64
	chaos     bool
	chaosMode bool    // -chaos-disk/-chaos-net was set: run the chaos acceptance harness
	chaosDisk float64 // seeded disk-fault rate for chaos mode
	chaosNet  float64 // seeded network-fault rate for chaos mode
	crash     int
	dataDir   string
	// pulseWorkers overrides the distributed sessions' pulse engine width
	// (0 keeps the driver default).
	pulseWorkers int
	// obs reports server-side latency percentiles from the in-process
	// observability histograms alongside the client-side numbers.
	obs  bool
	out  io.Writer // bench lines (stdout in main)
	info io.Writer // human summary (stderr in main)
}

func defaultConfig() config {
	return config{out: os.Stdout, info: os.Stderr}
}

// scenario is one entry of the load mix: how to build the session both
// in-process and over the wire, its default weight, and how to scale the
// per-session play count for heavy drivers.
type scenario struct {
	name   string
	driver string // pure | mixed | rra | distributed
	weight int
	// players is the session's actual participant count (after catalog
	// canonicalization) — deviant sessions size their punishment scheme
	// from it.
	players int
	// punished reports whether build installs (or the driver defaults
	// to) an executive scheme; deviant sessions on unpunished scenarios
	// get the paper's disconnection scheme so convictions can happen.
	punished bool
	// playsDiv divides the -plays budget (the distributed driver costs
	// ~300× a pure play; equal budgets would make it the whole run).
	playsDiv int
	build    func(seed uint64) (ga.Game, []ga.Option, error)
	request  func(id string, seed uint64) ga.CreateSessionRequest
}

// loadMix returns the built-in weighted scenario mix: every catalog
// family on the pure driver plus one scenario per remaining driver, so a
// default run exercises the full driver matrix.
func loadMix() []scenario {
	mix := []scenario{
		catalogScenario("congestion", 4, 4),
		catalogScenario("braess", 4, 3),
		catalogScenario("coordination-n", 3, 3),
		catalogScenario("publicgoods-punish", 4, 3),
		catalogScenario("minority", 5, 3),
		catalogScenario("firstprice", 3, 2),
		catalogScenario("secondprice", 3, 2),
		catalogScenario("pd", 2, 3),
		{
			name:     "mixed-pennies",
			driver:   "mixed",
			weight:   4,
			players:  2,
			punished: true,
			build: func(seed uint64) (ga.Game, []ga.Option, error) {
				g := ga.MatchingPennies()
				return g, []ga.Option{
					ga.WithStrategies(uniformStrategies(g)),
					ga.WithAudit(ga.AuditPerRound),
					ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
				}, nil
			},
			request: func(id string, seed uint64) ga.CreateSessionRequest {
				return ga.CreateSessionRequest{ID: id, Seed: seed, Game: "matchingpennies",
					Kind: "mixed", Audit: "per-round"}
			},
		},
		{
			name:     "rra",
			driver:   "rra",
			weight:   3,
			players:  8,
			punished: true,
			build: func(seed uint64) (ga.Game, []ga.Option, error) {
				return nil, []ga.Option{
					ga.WithRRA(8, 4),
					ga.WithPunishment(ga.NewDisconnectScheme(8, 0)),
				}, nil
			},
			request: func(id string, seed uint64) ga.CreateSessionRequest {
				req := ga.CreateSessionRequest{ID: id, Seed: seed,
					Punishment: &ga.PunishmentSpec{Scheme: "disconnect"}}
				req.RRA = &struct {
					Agents    int `json:"agents"`
					Resources int `json:"resources"`
				}{Agents: 8, Resources: 4}
				return req
			},
		},
		{
			name:   "dist-publicgoods",
			driver: "distributed",
			weight: 1,
			// The distributed driver defaults its executive replicas to
			// one-strike disconnection when no scheme is configured.
			players:  4,
			punished: true,
			playsDiv: 4,
			build: func(seed uint64) (ga.Game, []ga.Option, error) {
				g, err := ga.PublicGoods(4, 2)
				if err != nil {
					return nil, nil, err
				}
				return g, []ga.Option{
					ga.WithDistributed(4, 1, nil),
					ga.WithPulseBudget(1000 * ga.PulsesPerPlay(1)),
				}, nil
			},
			request: func(id string, seed uint64) ga.CreateSessionRequest {
				req := ga.CreateSessionRequest{ID: id, Seed: seed, Game: "publicgoods",
					Players: 4, PulseBudget: 1000 * ga.PulsesPerPlay(1)}
				req.Distributed = &struct {
					N int `json:"n"`
					F int `json:"f"`
				}{N: 4, F: 1}
				return req
			},
		},
		// The Byzantine scenario families run on the driver they model:
		// fork-choice and committee attestation replicated over interactive
		// consistency with one tolerated fault.
		distScenario("dist-mining", "mining", 4, 1, 1),
		distScenario("dist-committee", "validator-committee", 4, 1, 1),
	}
	return mix
}

// distScenario lifts a scenario-catalog family onto the distributed
// driver: n replicated processors agree on every play via interactive
// consistency, tolerating f Byzantine faults.
func distScenario(label, game string, n, f, weight int) scenario {
	return scenario{
		name:     label,
		driver:   "distributed",
		weight:   weight,
		players:  n,
		punished: true, // the distributed driver defaults to one-strike disconnection
		playsDiv: 4,
		build: func(seed uint64) (ga.Game, []ga.Option, error) {
			e, ok := ga.ScenarioByName(game)
			if !ok {
				return nil, nil, fmt.Errorf("unknown catalog scenario %q", game)
			}
			g, err := e.Build(n)
			if err != nil {
				return nil, nil, err
			}
			return g, []ga.Option{
				ga.WithDistributed(n, f, nil),
				ga.WithPulseBudget(1000 * ga.PulsesPerPlay(f)),
			}, nil
		},
		request: func(id string, seed uint64) ga.CreateSessionRequest {
			req := ga.CreateSessionRequest{ID: id, Seed: seed, Game: game,
				Players: n, PulseBudget: 1000 * ga.PulsesPerPlay(f)}
			req.Distributed = &struct {
				N int `json:"n"`
				F int `json:"f"`
			}{N: n, F: f}
			return req
		},
	}
}

// applyPulseWorkers overrides the pulse engine width on every distributed
// scenario in the mix, both in-process (option) and over the wire
// (request field). workers ≤ 0 leaves the mix untouched.
func applyPulseWorkers(mix []scenario, workers int) []scenario {
	if workers <= 0 {
		return mix
	}
	for i := range mix {
		if mix[i].driver != "distributed" {
			continue
		}
		sc := mix[i]
		mix[i].build = func(seed uint64) (ga.Game, []ga.Option, error) {
			g, opts, err := sc.build(seed)
			if err != nil {
				return nil, nil, err
			}
			return g, append(opts, ga.WithPulseWorkers(workers)), nil
		}
		mix[i].request = func(id string, seed uint64) ga.CreateSessionRequest {
			req := sc.request(id, seed)
			req.PulseWorkers = workers
			return req
		}
	}
	return mix
}

// catalogScenario lifts a scenario-catalog family onto the pure driver.
func catalogScenario(name string, players, weight int) scenario {
	actual := players
	if e, ok := ga.ScenarioByName(name); ok {
		actual = e.Players(players)
	}
	return scenario{
		name:    name,
		driver:  "pure",
		weight:  weight,
		players: actual,
		build: func(seed uint64) (ga.Game, []ga.Option, error) {
			e, ok := ga.ScenarioByName(name)
			if !ok {
				return nil, nil, fmt.Errorf("unknown catalog scenario %q", name)
			}
			g, err := e.Build(e.Players(players))
			if err != nil {
				return nil, nil, err
			}
			return g, nil, nil
		},
		request: func(id string, seed uint64) ga.CreateSessionRequest {
			return ga.CreateSessionRequest{ID: id, Seed: seed, Game: name, Players: players}
		},
	}
}

// applyMix overrides scenario weights from a "name=weight,..." spec.
// Weight 0 drops a scenario from the mix.
func applyMix(mix []scenario, spec string) ([]scenario, error) {
	if spec == "" {
		return mix, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q must be a non-negative integer", val)
		}
		found := false
		for _, sc := range mix {
			if sc.name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("mix names unknown scenario %q", name)
		}
		weights[name] = w
	}
	out := mix[:0]
	for _, sc := range mix {
		if w, ok := weights[sc.name]; ok {
			sc.weight = w
		}
		if sc.weight > 0 {
			out = append(out, sc)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q leaves no scenarios", spec)
	}
	return out, nil
}

// sessionCounts apportions the session budget over the mix proportionally
// to weight; every scenario with positive weight gets at least one
// session, and rounding remainders go to the heaviest scenarios so the
// total is exact.
func sessionCounts(mix []scenario, sessions int) []int {
	total := 0
	for _, sc := range mix {
		total += sc.weight
	}
	counts := make([]int, len(mix))
	assigned := 0
	for i, sc := range mix {
		counts[i] = sessions * sc.weight / total
		if counts[i] == 0 {
			counts[i] = 1
		}
		assigned += counts[i]
	}
	// Distribute (or claw back) the rounding difference by weight order.
	order := make([]int, len(mix))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return mix[order[a]].weight > mix[order[b]].weight })
	for i := 0; assigned != sessions; i = (i + 1) % len(order) {
		j := order[i]
		if assigned < sessions {
			counts[j]++
			assigned++
		} else if counts[j] > 1 {
			counts[j]--
			assigned--
		}
	}
	return counts
}

// deviance configures one session's chaos ingredients: a deviation
// strategy (empty = honest) and whether to add a network adversary
// (distributed driver, in-process only).
type deviance struct {
	strategy string
	chaos    bool
}

// outcome is a deviant session's post-run audit summary.
type outcome struct {
	fouls       int
	convictions int
	excluded    bool // the deviant player (0) ended the run excluded
}

// player is one hosted session under load, on either transport.
type player interface {
	play(ctx context.Context) error
	// playN plays n rounds as one batched request: one session lock, one
	// WAL batch record, one wire round trip.
	playN(ctx context.Context, n int) error
	stats() (outcome, error)
	close() error
}

// transport creates players for scenarios.
type transport interface {
	create(id string, sc scenario, seed uint64, dev deviance) (player, error)
	shutdown() error
}

func run(cfg config) error {
	if cfg.chaosMode {
		return runChaos(cfg)
	}
	if cfg.sessions < 1 || cfg.plays < 1 {
		return fmt.Errorf("-sessions and -plays must be positive")
	}
	if cfg.httpBase != "" && cfg.selfserve {
		return fmt.Errorf("-http and -selfserve are mutually exclusive")
	}
	tmode := cfg.transport
	if tmode == "" {
		if cfg.httpBase != "" || cfg.selfserve {
			tmode = "http"
		} else {
			tmode = "inproc"
		}
	}
	switch tmode {
	case "inproc", "http", "ws":
	default:
		return fmt.Errorf("-transport %q must be inproc, http, or ws", cfg.transport)
	}
	if tmode == "inproc" && (cfg.httpBase != "" || cfg.selfserve) {
		return fmt.Errorf("-transport inproc cannot combine with -http/-selfserve")
	}
	if tmode != "inproc" && cfg.httpBase == "" && !cfg.selfserve {
		return fmt.Errorf("-transport %s needs a server: set -http or -selfserve", tmode)
	}
	if tmode == "ws" && cfg.conns < 1 {
		return fmt.Errorf("-conns %d must be positive", cfg.conns)
	}
	if cfg.deviants < 0 || cfg.deviants > 1 {
		return fmt.Errorf("-deviants %v must be in [0,1]", cfg.deviants)
	}
	if cfg.batch < 0 {
		return fmt.Errorf("-batch %d must be non-negative", cfg.batch)
	}
	if cfg.chaos && (cfg.httpBase != "" || cfg.selfserve) {
		return fmt.Errorf("-chaos installs in-process network adversaries; it cannot ride the HTTP transport")
	}
	if cfg.crash < 0 {
		return fmt.Errorf("-crash %d must be non-negative", cfg.crash)
	}
	if (cfg.crash > 0 || cfg.dataDir != "") && (cfg.httpBase != "" || cfg.selfserve) {
		return fmt.Errorf("-crash/-data-dir drive the in-process authority; they cannot ride the HTTP transport")
	}
	if cfg.crash > 0 && cfg.chaos {
		return fmt.Errorf("-crash cannot compose with -chaos: network adversaries are in-process closures a recovered session cannot rebuild from its journaled spec")
	}
	if cfg.pulseWorkers < 0 {
		return fmt.Errorf("-pulse-workers %d must be non-negative", cfg.pulseWorkers)
	}
	mix, err := applyMix(loadMix(), cfg.mix)
	if err != nil {
		return err
	}
	if cfg.sessions < len(mix) {
		// Every scenario in the mix gets at least one session; fewer
		// sessions than scenarios cannot be apportioned.
		return fmt.Errorf("-sessions %d is below the mix's %d scenarios; raise -sessions or narrow -mix",
			cfg.sessions, len(mix))
	}
	mix = applyPulseWorkers(mix, cfg.pulseWorkers)

	durable := cfg.crash > 0 || cfg.dataDir != ""
	var tr transport
	mode := "in-process"
	base := cfg.httpBase
	var closeSrv func()
	if cfg.selfserve {
		// One loopback server backs both wire transports, so WS-vs-HTTP
		// comparisons hit identical server code.
		srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
		base, closeSrv = srv.URL, srv.Close
	}
	switch {
	case tmode == "ws":
		wt, err := newWSTransport(base, cfg.conns)
		if err != nil {
			if closeSrv != nil {
				closeSrv()
			}
			return err
		}
		wt.onShutdown = closeSrv
		tr = wt
		mode = fmt.Sprintf("ws %s (%d conns)", base, cfg.conns)
	case tmode == "http":
		ht := newHTTPTransport(base)
		ht.onShutdown = closeSrv
		tr = ht
		mode = "http " + base
	case durable:
		dir := cfg.dataDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-wal-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		st, err := ga.NewFileStore(dir)
		if err != nil {
			return err
		}
		// Batched durable runs amortize the fsync: appends from every
		// session coalesce into shared group-commit epochs. extraOpts is
		// carried so crash recovery rebuilds the same write path.
		it := &inprocTransport{durable: true}
		if cfg.batch > 1 {
			it.extraOpts = []ga.AuthorityOption{ga.WithGroupCommit(groupCommitWindow, groupCommitMaxBatch)}
		}
		it.authority = ga.NewAuthority(append([]ga.AuthorityOption{ga.WithStore(st)}, it.extraOpts...)...)
		tr = it
		mode = "in-process durable (" + dir + ")"
		if cfg.batch > 1 {
			mode = fmt.Sprintf("in-process durable group-commit (%s, batch=%d)", dir, cfg.batch)
		}
	default:
		tr = &inprocTransport{authority: ga.NewAuthority()}
	}
	defer tr.shutdown()

	// Row names carry the write-path shape so volatile, durable, and
	// durable-batched runs land as distinct rows in one BENCH artifact.
	label := "Loadgen/transport=" + tmode
	if durable {
		label += "/durable"
	}
	if cfg.batch > 1 {
		label += fmt.Sprintf("/batch=%d", cfg.batch)
	}
	if cfg.pulseWorkers > 0 {
		label += fmt.Sprintf("/pulse-workers=%d", cfg.pulseWorkers)
	}
	if cfg.obs {
		label += "/obs"
	}

	counts := sessionCounts(mix, cfg.sessions)

	// Phase 1 — create every session concurrently. All of them stay hosted
	// (and playable) together: this is the "N concurrent sessions" claim.
	// Deviant slots are spread evenly over the run (Bresenham on the slot
	// index) and rotate through the deviation catalog.
	type slot struct {
		scenario int
		player   player
		plays    int
		dev      deviance
		lat      []float64 // per-play latency, ns
	}
	strategies := deviantNames()
	isDeviant := func(k int) bool {
		if cfg.deviants <= 0 {
			return false
		}
		return int(float64(k+1)*cfg.deviants) > int(float64(k)*cfg.deviants)
	}
	slots := make([]*slot, 0, cfg.sessions)
	deviantOrdinal := 0
	for i, c := range counts {
		for j := 0; j < c; j++ {
			plays := cfg.plays
			if d := mix[i].playsDiv; d > 1 {
				if plays = cfg.plays / d; plays == 0 {
					plays = 1
				}
			}
			s := &slot{scenario: i, plays: plays}
			if isDeviant(len(slots)) {
				// Rotate by deviant ordinal, not slot index: a slot
				// stride that divides the catalog size would otherwise
				// pin every deviant to one strategy.
				s.dev.strategy = strategies[deviantOrdinal%len(strategies)]
				deviantOrdinal++
			}
			s.dev.chaos = cfg.chaos
			slots = append(slots, s)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(slots))
	createStart := time.Now()
	for k, s := range slots {
		wg.Add(1)
		go func(k int, s *slot) {
			defer wg.Done()
			sc := mix[s.scenario]
			id := fmt.Sprintf("lg-%s-%d", sc.name, k)
			p, err := tr.create(id, sc, cfg.seed+uint64(k), s.dev)
			if err != nil {
				errCh <- fmt.Errorf("create %s: %w", id, err)
				return
			}
			s.player = p
		}(k, s)
	}
	wg.Wait()
	createDur := time.Since(createStart)
	if err := firstError(errCh); err != nil {
		return err
	}

	// Phase 2 — play every session concurrently, one goroutine per
	// session, timing each play. With -crash N the play budget splits into
	// N+1 segments: after each non-final segment the authority is
	// SIGKILL-dropped and a fresh one recovers every session from the
	// write-ahead log before play resumes. playDur sums only the play
	// segments, so throughput stays comparable to non-crash runs; the
	// recovery cost is reported separately as replay lag.
	ctx := context.Background()
	segments := cfg.crash + 1
	var playDur time.Duration
	var recov struct {
		cycles   int
		sessions int
		rounds   int
		dur      time.Duration
		lat      []float64 // recovery wall time per cycle, ns
	}
	for _, s := range slots {
		s.lat = make([]float64, 0, s.plays)
	}
	for seg := 0; seg < segments; seg++ {
		segStart := time.Now()
		for _, s := range slots {
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				from, to := segmentBounds(s.plays, segments, seg)
				for r := from; r < to; {
					// Batched mode plays chunks of -batch rounds per call
					// (the segment tail takes what remains) and books the
					// amortized per-round latency for each round, so ns/op
					// stays comparable across batch sizes.
					n := 1
					if cfg.batch > 1 {
						if n = cfg.batch; r+n > to {
							n = to - r
						}
					}
					t0 := time.Now()
					var err error
					if n == 1 {
						err = s.player.play(ctx)
					} else {
						err = s.player.playN(ctx, n)
					}
					if err != nil {
						errCh <- fmt.Errorf("play %s: %w", mix[s.scenario].name, err)
						return
					}
					per := float64(time.Since(t0).Nanoseconds()) / float64(n)
					for i := 0; i < n; i++ {
						s.lat = append(s.lat, per)
					}
					r += n
				}
			}(s)
		}
		wg.Wait()
		playDur += time.Since(segStart)
		if err := firstError(errCh); err != nil {
			return err
		}
		if seg == segments-1 {
			break
		}
		it, ok := tr.(*inprocTransport)
		if !ok {
			return fmt.Errorf("crash mode supports only the in-process transport")
		}
		report, err := it.crashRecover(ctx)
		if err != nil {
			return fmt.Errorf("crash cycle %d: %w", seg+1, err)
		}
		if report.Sessions != len(slots) {
			return fmt.Errorf("crash cycle %d: recovered %d of %d sessions", seg+1, report.Sessions, len(slots))
		}
		for _, s := range slots {
			if err := it.rebind(s.player); err != nil {
				return fmt.Errorf("crash cycle %d: %w", seg+1, err)
			}
		}
		recov.cycles++
		recov.sessions += report.Sessions
		recov.rounds += report.Rounds
		recov.dur += report.Elapsed
		recov.lat = append(recov.lat, float64(report.Elapsed.Nanoseconds()))
	}

	// Phase 3 — audit the deviant sessions, then teardown and report.
	deviantSessions, detected, convicted := 0, 0, 0
	var deviantLat []float64
	for _, s := range slots {
		if s.dev.strategy != "" {
			out, err := s.player.stats()
			if err != nil {
				return fmt.Errorf("stats %s: %w", mix[s.scenario].name, err)
			}
			deviantSessions++
			if out.fouls > 0 {
				detected++
			}
			if out.convictions > 0 || out.excluded {
				convicted++
			}
			deviantLat = append(deviantLat, s.lat...)
		}
	}
	for _, s := range slots {
		if err := s.player.close(); err != nil {
			return fmt.Errorf("close: %w", err)
		}
	}

	perScenario := make([][]float64, len(mix))
	sessionsPer := make([]int, len(mix))
	var all []float64
	for _, s := range slots {
		perScenario[s.scenario] = append(perScenario[s.scenario], s.lat...)
		sessionsPer[s.scenario]++
		all = append(all, s.lat...)
	}

	fmt.Fprintf(cfg.info, "loadgen: %s, %d concurrent sessions over %d scenarios, %d plays total\n",
		mode, len(slots), len(mix), len(all))
	fmt.Fprintf(cfg.info, "loadgen: created in %v, played in %v (%.0f plays/s)\n",
		createDur.Round(time.Millisecond), playDur.Round(time.Millisecond),
		float64(len(all))/playDur.Seconds())

	// Bench names carry the transport label so WS-vs-HTTP runs land as
	// separate rows with their own p50/p99 split in the BENCH_*.json
	// artifacts.
	fmt.Fprintf(cfg.out, "goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
	for i, sc := range mix {
		writeBenchLine(cfg.out, label+"/scenario="+sc.name+"/driver="+sc.driver,
			perScenario[i], sessionsPer[i], playDur)
	}
	writeBenchLine(cfg.out, label+"/total", all, len(slots), playDur)
	if cfg.obs {
		// Server-side view of the same run: the driver-level play-latency
		// histograms /metrics exposes, read in-process. A remote -http
		// target records into its own process, so nothing shows up here.
		p50, n := ga.PlayLatencyQuantile(0.50)
		p99, _ := ga.PlayLatencyQuantile(0.99)
		if n == 0 {
			fmt.Fprintln(cfg.info, "loadgen: -obs: no server-side play latency in this process (a remote -http target records into its own)")
		} else {
			fmt.Fprintf(cfg.info, "loadgen: server-side play latency over %d plays: p50 %v, p99 %v\n",
				n, time.Duration(p50*1e9).Round(time.Microsecond), time.Duration(p99*1e9).Round(time.Microsecond))
			fmt.Fprintf(cfg.out, "Benchmark%s/server-%d\t%d\t%.0f ns/op\t%.0f p50-ns/op\t%.0f p99-ns/op\n",
				label, runtime.GOMAXPROCS(0), n, p50*1e9, p50*1e9, p99*1e9)
		}
	}
	if deviantSessions > 0 {
		detectionRate := float64(detected) / float64(deviantSessions)
		convictionRate := float64(convicted) / float64(deviantSessions)
		fmt.Fprintf(cfg.info, "loadgen: %d deviant sessions (%.0f%% of run): detection %.1f%%, conviction %.1f%%\n",
			deviantSessions, 100*cfg.deviants, 100*detectionRate, 100*convictionRate)
		sort.Float64s(deviantLat)
		s := metrics.SummarizeSorted(deviantLat)
		fmt.Fprintf(cfg.out, "BenchmarkLoadgen/deviants-%d\t%d\t%.0f ns/op\t%.3f detection-rate\t%.3f conviction-rate\t%d deviant-sessions\n",
			runtime.GOMAXPROCS(0), s.N, s.Mean, detectionRate, convictionRate, deviantSessions)
	}
	if recov.cycles > 0 {
		perCycle := recov.dur / time.Duration(recov.cycles)
		fmt.Fprintf(cfg.info, "loadgen: %d crash/recover cycles: %d sessions recovered, %d rounds replayed, replay lag %v/cycle\n",
			recov.cycles, recov.sessions, recov.rounds, perCycle.Round(time.Millisecond))
		sort.Float64s(recov.lat)
		s := metrics.SummarizeSorted(recov.lat)
		replayRate := float64(recov.rounds) / recov.dur.Seconds()
		crashName := "BenchmarkLoadgen/crash"
		if cfg.batch > 1 {
			crashName += fmt.Sprintf("/batch=%d", cfg.batch)
		}
		fmt.Fprintf(cfg.out, "%s-%d\t%d\t%.0f ns/op\t%.1f recovered-sessions\t%.1f replayed-rounds\t%.1f replayed-rounds/s\n",
			crashName, runtime.GOMAXPROCS(0), recov.cycles, s.Mean,
			float64(recov.sessions)/float64(recov.cycles), float64(recov.rounds)/float64(recov.cycles), replayRate)
	}
	return nil
}

// segmentBounds splits a session's play budget over crash segments as
// evenly as possible (earlier segments take the remainder).
func segmentBounds(plays, segments, seg int) (from, to int) {
	base, rem := plays/segments, plays%segments
	from = seg * base
	if seg < rem {
		from += seg
	} else {
		from += rem
	}
	to = from + base
	if seg < rem {
		to++
	}
	return from, to
}

// deviantNames returns the deviation-catalog strategy names the chaos
// mix rotates through.
func deviantNames() []string {
	reg := ga.DeviantStrategies()
	out := make([]string, len(reg))
	for i, d := range reg {
		out[i] = d.Name()
	}
	return out
}

// writeBenchLine emits one go-bench formatted line: iterations = plays,
// ns/op = mean latency, plus plays/s throughput over the concurrent play
// window, latency percentiles, and the session count as custom metrics —
// exactly what cmd/benchfmt parses into the BENCH_*.json artifact.
func writeBenchLine(w io.Writer, name string, lat []float64, sessions int, window time.Duration) {
	if len(lat) == 0 {
		return
	}
	// The latency slices are report-phase-owned by this point; sorting in
	// place spares one copy of the full sample per row.
	sort.Float64s(lat)
	s := metrics.SummarizeSorted(lat)
	fmt.Fprintf(w, "Benchmark%s-%d\t%d\t%.0f ns/op\t%.1f plays/s\t%.0f p50-ns/op\t%.0f p99-ns/op\t%d sessions\n",
		name, runtime.GOMAXPROCS(0), s.N, s.Mean,
		float64(s.N)/window.Seconds(), s.P50, s.P99, sessions)
}

func firstError(errCh chan error) error {
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

func uniformStrategies(g ga.Game) func(int, ga.Profile) ga.MixedProfile {
	mp := make(ga.MixedProfile, g.NumPlayers())
	for i := range mp {
		mp[i] = ga.Uniform(g.NumActions(i))
	}
	return func(int, ga.Profile) ga.MixedProfile { return mp }
}
