package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	ga "gameauthority"
	"gameauthority/internal/hub"
)

// historyLimit bounds every load session's retained history: the harness
// only measures latency, so rings keep 1000+ long-running sessions at a
// flat memory footprint.
const historyLimit = 8

// Group-commit shape for batched durable runs: a short coalescing window
// keeps per-batch latency low while still merging appends from hundreds
// of concurrent sessions into shared fsync epochs.
const (
	groupCommitWindow   = time.Millisecond
	groupCommitMaxBatch = 256
)

// --- In-process transport -----------------------------------------------------

// inprocTransport hosts sessions directly on a sharded Authority — the
// registry and the play hot paths with no wire in between. With durable
// set (crash mode), sessions are created from their serializable wire
// specs so the authority journals them to the write-ahead log and a
// recovered authority can rebuild them.
type inprocTransport struct {
	authority *ga.Authority
	durable   bool
	// extraOpts re-applies write-path options (group commit) to every
	// authority rebuilt across a crash/recover cycle.
	extraOpts []ga.AuthorityOption
}

func (t *inprocTransport) create(id string, sc scenario, seed uint64, dev deviance) (player, error) {
	if t.durable {
		return t.createDurable(id, sc, seed, dev)
	}
	g, opts, err := sc.build(seed)
	if err != nil {
		return nil, err
	}
	opts = append(opts, ga.WithSeed(seed), ga.WithHistoryLimit(historyLimit))
	if dev.strategy != "" {
		strategy, ok := ga.DeviantByName(dev.strategy)
		if !ok {
			return nil, fmt.Errorf("unknown deviant strategy %q", dev.strategy)
		}
		opts = append(opts, ga.WithDeviant(0, strategy))
		if !sc.punished {
			// Unpunished scenarios get the paper's disconnection scheme
			// so the executive can convict what the judicial detects.
			opts = append(opts, ga.WithPunishment(ga.NewDisconnectScheme(sc.players, 0)))
		}
	}
	if dev.chaos && sc.driver == "distributed" {
		// Wire-level chaos on top: processor 1 (never the deviant's slot
		// 0) drops a third of its traffic — inside the f-tolerance, so
		// plays still complete while the network misbehaves.
		opts = append(opts, ga.WithNetworkAdversary(1, ga.DropAdversary(seed, 0.3)))
	}
	h, err := t.authority.Create(id, g, opts...)
	if err != nil {
		return nil, err
	}
	return &inprocPlayer{h: h, authority: t.authority}, nil
}

// createDurable builds the session from the same wire spec the HTTP
// transport posts, so the spec is journaled and the session survives a
// crash of the authority.
func (t *inprocTransport) createDurable(id string, sc scenario, seed uint64, dev deviance) (player, error) {
	req := sc.request(id, seed)
	req.HistoryLimit = historyLimit
	if dev.strategy != "" {
		req.Deviant = &ga.DeviantSpec{Player: 0, Strategy: dev.strategy}
		if !sc.punished && req.Punishment == nil {
			req.Punishment = &ga.PunishmentSpec{Scheme: "disconnect"}
		}
	}
	h, err := t.authority.CreateFromSpec(req)
	if err != nil {
		return nil, err
	}
	return &inprocPlayer{h: h, authority: t.authority}, nil
}

// crashRecover SIGKILL-drops the current authority and recovers a fresh
// one from the detached store: the old instance is abandoned un-synced
// (exactly what a kill leaves behind), recovery replays every journaled
// session, and only then is the corpse closed to free its worker pools —
// the close journals nothing because the store is already detached.
func (t *inprocTransport) crashRecover(ctx context.Context) (ga.RecoveryReport, error) {
	old := t.authority
	st := old.DetachStore()
	if st == nil {
		return ga.RecoveryReport{}, fmt.Errorf("crash mode needs a store-backed authority")
	}
	next := ga.NewAuthority(append([]ga.AuthorityOption{ga.WithStore(st)}, t.extraOpts...)...)
	report, err := next.Recover(ctx)
	if err != nil {
		return report, err
	}
	if len(report.Failed) > 0 {
		return report, fmt.Errorf("recovery failed for %d sessions (first: %s)", len(report.Failed), report.Failed[0])
	}
	_ = old.Close()
	t.authority = next
	return report, nil
}

// rebind points a player at its recovered session on the new authority.
func (t *inprocTransport) rebind(p player) error {
	ip, ok := p.(*inprocPlayer)
	if !ok {
		return fmt.Errorf("crash mode supports only the in-process transport")
	}
	h, err := t.authority.Get(ip.h.ID())
	if err != nil {
		return fmt.Errorf("session lost across the crash: %w", err)
	}
	ip.h, ip.authority = h, t.authority
	return nil
}

func (t *inprocTransport) shutdown() error { return t.authority.Close() }

type inprocPlayer struct {
	h         *ga.HostedSession
	authority *ga.Authority
}

func (p *inprocPlayer) play(ctx context.Context) error {
	_, err := p.h.Play(ctx)
	return err
}

func (p *inprocPlayer) playN(ctx context.Context, n int) error {
	_, err := p.h.PlayN(ctx, n, nil)
	return err
}

func (p *inprocPlayer) stats() (outcome, error) {
	st := p.h.Stats()
	out := outcome{fouls: st.Fouls, convictions: st.Convictions}
	if len(st.Excluded) > 0 {
		out.excluded = st.Excluded[0]
	}
	return out, nil
}

func (p *inprocPlayer) close() error { return p.authority.Remove(p.h.ID()) }

// --- HTTP transport -----------------------------------------------------------

// httpTransport drives a gameauthd -serve instance over the JSON API, one
// POST per play, so latencies include the full wire round trip.
type httpTransport struct {
	base       string
	client     *http.Client
	onShutdown func()
}

func newHTTPTransport(base string) *httpTransport {
	// The default transport keeps 2 idle conns per host — a thousand
	// concurrent players would churn through ephemeral ports. Keep one
	// warm connection per in-flight session instead.
	inner := &http.Transport{
		MaxIdleConns:        2048,
		MaxIdleConnsPerHost: 2048,
	}
	return &httpTransport{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Transport: inner, Timeout: 2 * time.Minute},
	}
}

func (t *httpTransport) create(id string, sc scenario, seed uint64, dev deviance) (player, error) {
	req := sc.request(id, seed)
	req.HistoryLimit = historyLimit
	if dev.strategy != "" {
		req.Deviant = &ga.DeviantSpec{Player: 0, Strategy: dev.strategy}
		if !sc.punished && req.Punishment == nil {
			req.Punishment = &ga.PunishmentSpec{Scheme: "disconnect"}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := t.do(http.MethodPost, "/sessions", body, http.StatusCreated); err != nil {
		return nil, err
	}
	return &httpPlayer{t: t, id: id}, nil
}

func (t *httpTransport) shutdown() error {
	t.client.CloseIdleConnections()
	if t.onShutdown != nil {
		t.onShutdown()
	}
	return nil
}

// do runs one request and checks the status, returning the server's
// error payload on mismatch.
func (t *httpTransport) do(method, path string, body []byte, want int) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("%s %s: status %d (want %d): %s",
			method, path, resp.StatusCode, want, strings.TrimSpace(string(payload)))
	}
	// Drain so the connection returns to the idle pool.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

type httpPlayer struct {
	t  *httpTransport
	id string
}

var playBody = []byte(`{"rounds":1}`)

func (p *httpPlayer) play(context.Context) error {
	return p.t.do(http.MethodPost, "/sessions/"+p.id+"/play", playBody, http.StatusOK)
}

func (p *httpPlayer) playN(_ context.Context, n int) error {
	return p.t.do(http.MethodPost, fmt.Sprintf("/sessions/%s/play?n=%d", p.id, n), nil, http.StatusOK)
}

func (p *httpPlayer) stats() (outcome, error) {
	resp, err := p.t.client.Get(p.t.base + "/sessions/" + p.id)
	if err != nil {
		return outcome{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return outcome{}, fmt.Errorf("GET /sessions/%s: status %d: %s",
			p.id, resp.StatusCode, strings.TrimSpace(string(payload)))
	}
	var st struct {
		Fouls       int    `json:"fouls"`
		Convictions int    `json:"convictions"`
		Excluded    []bool `json:"excluded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return outcome{}, err
	}
	out := outcome{fouls: st.Fouls, convictions: st.Convictions}
	if len(st.Excluded) > 0 {
		out.excluded = st.Excluded[0]
	}
	return out, nil
}

func (p *httpPlayer) close() error {
	return p.t.do(http.MethodDelete, "/sessions/"+p.id, nil, http.StatusNoContent)
}

// --- WebSocket transport ------------------------------------------------------

// wsTransport drives the /ws binary streaming endpoint: all sessions are
// multiplexed over a small fixed set of connections (-conns), so 100k+
// concurrent sessions ride a few dozen sockets. Sessions are assigned to
// connections round-robin at create time and stay pinned (the ref is
// connection-local).
type wsTransport struct {
	clients    []*hub.Client
	next       atomic.Uint64
	onShutdown func()
}

func newWSTransport(base string, conns int) (*wsTransport, error) {
	t := &wsTransport{clients: make([]*hub.Client, 0, conns)}
	for i := 0; i < conns; i++ {
		c, err := hub.Dial(base + "/ws")
		if err != nil {
			for _, prev := range t.clients {
				prev.Close()
			}
			return nil, fmt.Errorf("ws dial %d/%d: %w", i+1, conns, err)
		}
		t.clients = append(t.clients, c)
	}
	return t, nil
}

func (t *wsTransport) create(id string, sc scenario, seed uint64, dev deviance) (player, error) {
	req := sc.request(id, seed)
	req.HistoryLimit = historyLimit
	if dev.strategy != "" {
		req.Deviant = &ga.DeviantSpec{Player: 0, Strategy: dev.strategy}
		if !sc.punished && req.Punishment == nil {
			req.Punishment = &ga.PunishmentSpec{Scheme: "disconnect"}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c := t.clients[int(t.next.Add(1))%len(t.clients)]
	ref, _, err := c.Create(body)
	if err != nil {
		return nil, err
	}
	return &wsPlayer{c: c, ref: ref}, nil
}

func (t *wsTransport) shutdown() error {
	for _, c := range t.clients {
		c.Close()
	}
	if t.onShutdown != nil {
		t.onShutdown()
	}
	return nil
}

type wsPlayer struct {
	c   *hub.Client
	ref uint64
}

func (p *wsPlayer) play(context.Context) error {
	_, err := p.c.Play(p.ref, 1)
	return err
}

func (p *wsPlayer) playN(_ context.Context, n int) error {
	_, err := p.c.PlayBatch(p.ref, n)
	return err
}

func (p *wsPlayer) stats() (outcome, error) {
	st, err := p.c.Stats(p.ref)
	if err != nil {
		return outcome{}, err
	}
	out := outcome{fouls: st.Fouls, convictions: st.Convictions}
	for _, i := range st.Excluded {
		if i == 0 {
			out.excluded = true
		}
	}
	return out, nil
}

func (p *wsPlayer) close() error { return p.c.CloseSession(p.ref) }
