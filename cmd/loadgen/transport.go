package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	ga "gameauthority"
)

// historyLimit bounds every load session's retained history: the harness
// only measures latency, so rings keep 1000+ long-running sessions at a
// flat memory footprint.
const historyLimit = 8

// --- In-process transport -----------------------------------------------------

// inprocTransport hosts sessions directly on a sharded Authority — the
// registry and the play hot paths with no wire in between.
type inprocTransport struct {
	authority *ga.Authority
}

func (t *inprocTransport) create(id string, sc scenario, seed uint64) (player, error) {
	g, opts, err := sc.build(seed)
	if err != nil {
		return nil, err
	}
	opts = append(opts, ga.WithSeed(seed), ga.WithHistoryLimit(historyLimit))
	h, err := t.authority.Create(id, g, opts...)
	if err != nil {
		return nil, err
	}
	return &inprocPlayer{h: h, authority: t.authority}, nil
}

func (t *inprocTransport) shutdown() error { return t.authority.Close() }

type inprocPlayer struct {
	h         *ga.HostedSession
	authority *ga.Authority
}

func (p *inprocPlayer) play(ctx context.Context) error {
	_, err := p.h.Play(ctx)
	return err
}

func (p *inprocPlayer) close() error { return p.authority.Remove(p.h.ID()) }

// --- HTTP transport -----------------------------------------------------------

// httpTransport drives a gameauthd -serve instance over the JSON API, one
// POST per play, so latencies include the full wire round trip.
type httpTransport struct {
	base       string
	client     *http.Client
	onShutdown func()
}

func newHTTPTransport(base string) *httpTransport {
	// The default transport keeps 2 idle conns per host — a thousand
	// concurrent players would churn through ephemeral ports. Keep one
	// warm connection per in-flight session instead.
	inner := &http.Transport{
		MaxIdleConns:        2048,
		MaxIdleConnsPerHost: 2048,
	}
	return &httpTransport{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Transport: inner, Timeout: 2 * time.Minute},
	}
}

func (t *httpTransport) create(id string, sc scenario, seed uint64) (player, error) {
	req := sc.request(id, seed)
	req.HistoryLimit = historyLimit
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := t.do(http.MethodPost, "/sessions", body, http.StatusCreated); err != nil {
		return nil, err
	}
	return &httpPlayer{t: t, id: id}, nil
}

func (t *httpTransport) shutdown() error {
	t.client.CloseIdleConnections()
	if t.onShutdown != nil {
		t.onShutdown()
	}
	return nil
}

// do runs one request and checks the status, returning the server's
// error payload on mismatch.
func (t *httpTransport) do(method, path string, body []byte, want int) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("%s %s: status %d (want %d): %s",
			method, path, resp.StatusCode, want, strings.TrimSpace(string(payload)))
	}
	// Drain so the connection returns to the idle pool.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

type httpPlayer struct {
	t  *httpTransport
	id string
}

var playBody = []byte(`{"rounds":1}`)

func (p *httpPlayer) play(context.Context) error {
	return p.t.do(http.MethodPost, "/sessions/"+p.id+"/play", playBody, http.StatusOK)
}

func (p *httpPlayer) close() error {
	return p.t.do(http.MethodDelete, "/sessions/"+p.id, nil, http.StatusNoContent)
}
