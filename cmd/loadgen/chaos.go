package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ga "gameauthority"
	"gameauthority/internal/hub"
	"gameauthority/internal/wire"
)

// Chaos acceptance mode (-chaos-disk / -chaos-net): a hermetic run that
// injects seeded disk and network faults underneath the WebSocket
// transport and then proves the self-healing stack absorbed them:
//
//   - zero verdict loss: every session's plays are driven one round at a
//     time through self-healing clients, and each acknowledged result must
//     carry exactly the next round index — a round delivered twice or
//     skipped fails the run;
//   - convergence: after the run, every session's server-side round count
//     must equal the requested play budget exactly;
//   - determinism: every session's final state digest must be identical to
//     a fault-free twin session built from the same wire spec at the same
//     seed on a pristine authority;
//   - liveness of subscriptions: resumed event streams must stay
//     sequence-monotonic across reconnects.
//
// The same path runs at rate 0 so the fault-free row lands in the bench
// artifact next to the faulty ones.

// chaosRetryCap bounds consecutive no-progress retries of one command
// before the run is declared stuck (each retry sleeps chaosRetryPause, so
// the cap is also a per-round time budget that comfortably spans breaker
// cooldowns).
const (
	chaosRetryCap   = 2000
	chaosRetryPause = 5 * time.Millisecond
)

// chaosSub tracks one session's resumed event stream.
type chaosSub struct {
	events     atomic.Uint64
	lag        atomic.Uint64
	lastSeq    atomic.Uint64
	violations atomic.Uint64
}

func (s *chaosSub) handle(ev wire.Event, lag uint64) {
	if ev.Seq > 0 && ev.Seq <= s.lastSeq.Load() {
		s.violations.Add(1)
		return
	}
	s.lastSeq.Store(ev.Seq)
	s.events.Add(1)
	s.lag.Add(lag)
}

// chaosSlot is one session under chaos: its spec (shared with the twin),
// its self-healing client binding, and its verified progress.
type chaosSlot struct {
	scenario int
	id       string
	req      ga.CreateSessionRequest
	plays    int
	client   *hub.Client
	ref      uint64
	sub      *chaosSub
	deduped  uint64
	lat      []float64 // per-round acknowledge latency, ns
}

func runChaos(cfg config) error {
	if cfg.chaosDisk < 0 || cfg.chaosDisk > 1 || cfg.chaosNet < 0 || cfg.chaosNet > 1 {
		return fmt.Errorf("-chaos-disk %v / -chaos-net %v must be rates in [0,1]", cfg.chaosDisk, cfg.chaosNet)
	}
	if cfg.sessions < 1 || cfg.plays < 1 {
		return fmt.Errorf("-sessions and -plays must be positive")
	}
	if cfg.httpBase != "" {
		return fmt.Errorf("chaos mode is hermetic: it starts its own server and cannot ride -http")
	}
	if cfg.transport != "" && cfg.transport != "ws" {
		return fmt.Errorf("chaos mode drives the ws transport; -transport %q cannot apply", cfg.transport)
	}
	if cfg.crash > 0 || cfg.chaos || cfg.deviants > 0 {
		return fmt.Errorf("chaos mode does not compose with -crash/-chaos/-deviants")
	}
	if cfg.conns < 1 {
		return fmt.Errorf("-conns %d must be positive", cfg.conns)
	}
	if cfg.batch < 0 {
		return fmt.Errorf("-batch %d must be non-negative", cfg.batch)
	}
	if cfg.batch > historyLimit {
		// A lost batch ack is healed by replaying the orphaned rounds from
		// the history ring; a batch larger than the ring could not be
		// deduplicated whole.
		return fmt.Errorf("-batch %d exceeds the chaos history ring (%d)", cfg.batch, historyLimit)
	}
	mix, err := applyMix(loadMix(), cfg.mix)
	if err != nil {
		return err
	}
	if cfg.sessions < len(mix) {
		return fmt.Errorf("-sessions %d is below the mix's %d scenarios; raise -sessions or narrow -mix",
			cfg.sessions, len(mix))
	}
	if cfg.pulseWorkers < 0 {
		return fmt.Errorf("-pulse-workers %d must be non-negative", cfg.pulseWorkers)
	}
	mix = applyPulseWorkers(mix, cfg.pulseWorkers)

	// The faulty server: a memory-backed durable authority whose store is
	// wrapped by a seeded disk plan, behind a loopback HTTP server whose
	// client connections are wrapped by a seeded network plan.
	diskPlan := ga.NewFaultPlan(ga.DiskFaultConfig(cfg.seed, cfg.chaosDisk))
	netPlan := ga.NewFaultPlan(ga.NetFaultConfig(cfg.seed, cfg.chaosNet))
	opts := []ga.AuthorityOption{ga.WithStore(ga.NewMemStore()), ga.WithFaultPlan(diskPlan)}
	if cfg.batch > 1 {
		// Batched chaos drives the real group-commit write path: a
		// file-backed WAL whose fsync epochs coalesce batch records while
		// the disk plan drops and tears them underneath.
		dir, err := os.MkdirTemp("", "loadgen-chaos-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, err := ga.NewFileStore(dir)
		if err != nil {
			return err
		}
		opts = []ga.AuthorityOption{ga.WithStore(st), ga.WithFaultPlan(diskPlan),
			ga.WithGroupCommit(groupCommitWindow, groupCommitMaxBatch)}
	}
	auth := ga.NewAuthority(opts...)
	srv := httptest.NewServer(ga.NewServer(auth))
	defer srv.Close()

	// The fault-free twin: same specs, same seeds, no store, no faults.
	twin := ga.NewAuthority()
	defer twin.Close()

	clients := make([]*hub.Client, cfg.conns)
	for i := range clients {
		c, err := chaosDial(srv.URL+"/ws", cfg.seed+uint64(i), netPlan)
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Phase 1 — create every session concurrently with ack-loss recovery
	// (a create whose reply was cut may have landed: treat CodeExists as
	// success and re-attach by id).
	counts := sessionCounts(mix, cfg.sessions)
	slots := make([]*chaosSlot, 0, cfg.sessions)
	for i, c := range counts {
		for j := 0; j < c; j++ {
			plays := cfg.plays
			if d := mix[i].playsDiv; d > 1 {
				if plays = cfg.plays / d; plays == 0 {
					plays = 1
				}
			}
			k := len(slots)
			id := fmt.Sprintf("lg-chaos-%s-%d", mix[i].name, k)
			req := mix[i].request(id, cfg.seed+uint64(k))
			req.HistoryLimit = historyLimit
			slots = append(slots, &chaosSlot{
				scenario: i,
				id:       id,
				req:      req,
				plays:    plays,
				client:   clients[k%len(clients)],
			})
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(slots))
	createStart := time.Now()
	for _, s := range slots {
		wg.Add(1)
		go func(s *chaosSlot) {
			defer wg.Done()
			if err := chaosCreate(s); err != nil {
				errCh <- fmt.Errorf("create %s: %w", s.id, err)
			}
		}(s)
	}
	wg.Wait()
	createDur := time.Since(createStart)
	if err := firstError(errCh); err != nil {
		return err
	}

	// A quarter of the sessions also stream events, proving subscriptions
	// survive reconnects with monotone sequence numbers.
	for k, s := range slots {
		if k%4 != 0 {
			continue
		}
		s.sub = &chaosSub{}
		if err := s.client.Subscribe(s.ref, s.sub.handle); err != nil {
			return fmt.Errorf("subscribe %s: %w", s.id, err)
		}
	}

	// Phase 2 — play one round at a time, asserting each acknowledged
	// result carries exactly the next round index.
	ctx := context.Background()
	playStart := time.Now()
	for _, s := range slots {
		wg.Add(1)
		go func(s *chaosSlot) {
			defer wg.Done()
			if err := chaosPlay(s, cfg.batch); err != nil {
				errCh <- fmt.Errorf("play %s: %w", s.id, err)
			}
		}(s)
	}
	wg.Wait()
	playDur := time.Since(playStart)
	if err := firstError(errCh); err != nil {
		return err
	}

	// Phase 3 — convergence and determinism audit against the twin.
	for _, s := range slots {
		wg.Add(1)
		go func(s *chaosSlot) {
			defer wg.Done()
			if err := chaosAudit(ctx, twin, s); err != nil {
				errCh <- err
			}
		}(s)
	}
	wg.Wait()
	if err := firstError(errCh); err != nil {
		return err
	}

	var events, lag, violations, deduped uint64
	for _, s := range slots {
		deduped += s.deduped
		if s.sub == nil {
			continue
		}
		events += s.sub.events.Load()
		lag += s.sub.lag.Load()
		violations += s.sub.violations.Load()
	}
	if violations > 0 {
		return fmt.Errorf("chaos: %d event-sequence regressions across resumed subscriptions", violations)
	}
	for _, s := range slots {
		if err := chaosRetry(func() error { return s.client.CloseSession(s.ref) }); err != nil {
			return fmt.Errorf("close %s: %w", s.id, err)
		}
	}

	var cc hub.ClientCounters
	for _, c := range clients {
		got := c.Counters()
		cc.Reconnects += got.Reconnects
		cc.ResumedSubscriptions += got.ResumedSubscriptions
		cc.DedupedRounds += got.DedupedRounds
	}
	faults := diskPlan.Injected() + netPlan.Injected()
	breakerOpens := scrapeCounter(srv.URL, "gameauthority_breaker_opens_total")

	var all []float64
	rounds := 0
	for _, s := range slots {
		all = append(all, s.lat...)
		rounds += s.plays
	}
	shape := ""
	if cfg.batch > 1 {
		shape = fmt.Sprintf(" (batch=%d, group commit)", cfg.batch)
	}
	fmt.Fprintf(cfg.info, "loadgen: chaos disk=%g net=%g%s, %d sessions over %d conns, %d rounds verified\n",
		cfg.chaosDisk, cfg.chaosNet, shape, len(slots), len(clients), rounds)
	fmt.Fprintf(cfg.info, "loadgen: created in %v, played in %v; %d faults injected, %d reconnects, %d resumed subscriptions, %d deduped rounds, %d breaker opens\n",
		createDur.Round(time.Millisecond), playDur.Round(time.Millisecond),
		faults, cc.Reconnects, cc.ResumedSubscriptions, deduped, breakerOpens)
	fmt.Fprintf(cfg.info, "loadgen: zero verdict loss; all %d digests match the fault-free twin; %d events streamed (%d lagged)\n",
		len(slots), events, lag)

	name := fmt.Sprintf("LoadgenChaos/disk=%g/net=%g", cfg.chaosDisk, cfg.chaosNet)
	if cfg.batch > 1 {
		name += fmt.Sprintf("/batch=%d", cfg.batch)
	}
	fmt.Fprintf(cfg.out, "goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
	writeBenchLine(cfg.out, name+"/total", all, len(slots), playDur)
	fmt.Fprintf(cfg.out, "Benchmark%s/heal-%d\t%d\t%.0f ns/op\t%d faults-injected\t%d reconnects\t%d resumed-subscriptions\t%d deduped-rounds\t%d breaker-opens\t%d verdict-loss\t%d digest-mismatches\n",
		name, runtime.GOMAXPROCS(0), rounds, float64(playDur.Nanoseconds())/float64(rounds),
		faults, cc.Reconnects, cc.ResumedSubscriptions, deduped, breakerOpens, 0, 0)
	return nil
}

// chaosDial dials one self-healing client, retrying the initial dial —
// the network plan wraps the raw connection, so even the opening
// handshake can be cut.
func chaosDial(url string, seed uint64, netPlan *ga.FaultPlan) (*hub.Client, error) {
	opts := hub.DialOptions{
		Reconnect:        true,
		ConnectTimeout:   5 * time.Second,
		HandshakeTimeout: 5 * time.Second,
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       250 * time.Millisecond,
		PingInterval:     time.Second,
		Seed:             seed,
		WrapConn:         netPlan.Conn,
	}
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var c *hub.Client
		if c, err = hub.DialWith(url, opts); err == nil {
			return c, nil
		}
		time.Sleep(chaosRetryPause)
	}
	return nil, fmt.Errorf("ws dial: %w", err)
}

// chaosTransient reports whether err is an expected, retryable chaos
// casualty: an injected durability failure, an open circuit breaker, or a
// connection that died before the reply.
func chaosTransient(err error) bool {
	if errors.Is(err, hub.ErrConnLost) {
		return true
	}
	var re *hub.RemoteError
	if errors.As(err, &re) {
		return re.Code == wire.CodeUnavailable || re.Code == wire.CodeBreakerOpen
	}
	return false
}

// chaosRetry runs op until it succeeds or exhausts the no-progress cap.
func chaosRetry(op func() error) error {
	var err error
	for attempt := 0; attempt < chaosRetryCap; attempt++ {
		if err = op(); err == nil || !chaosTransient(err) {
			return err
		}
		time.Sleep(chaosRetryPause)
	}
	return fmt.Errorf("gave up after %d attempts: %w", chaosRetryCap, err)
}

// chaosCreate hosts the slot's session. Create is not idempotent: when a
// cut connection loses the ack, the session may have landed anyway, so a
// CodeExists on retry (or a lost-connection error) falls back to Attach.
func chaosCreate(s *chaosSlot) error {
	body, err := json.Marshal(s.req)
	if err != nil {
		return err
	}
	return chaosRetry(func() error {
		ref, _, err := s.client.Create(body)
		if err == nil {
			s.ref = ref
			return nil
		}
		var re *hub.RemoteError
		if errors.Is(err, hub.ErrConnLost) || (errors.As(err, &re) && re.Code == wire.CodeExists) {
			ref, aerr := s.client.Attach(s.id)
			if aerr == nil {
				s.ref = ref
				return nil
			}
			var are *hub.RemoteError
			if !errors.As(aerr, &are) || are.Code != wire.CodeNotFound {
				return aerr
			}
			// Attach says the create never landed: retry the create.
			return &hub.RemoteError{Code: wire.CodeUnavailable, Detail: "create ack lost"}
		}
		return err
	})
}

// chaosPlay drives the slot one request at a time — single rounds by
// default, PlayN batches with -batch — and verifies every acknowledged
// result lands exactly on the next expected round index: a duplicate or a
// gap is verdict loss and fails the run. Injected failures retry; the
// session's watermark makes the retries idempotent, batched or not.
func chaosPlay(s *chaosSlot, batch int) error {
	s.lat = make([]float64, 0, s.plays)
	done := 0
	stuck := 0
	for done < s.plays {
		n := 1
		if batch > 1 {
			if n = batch; done+n > s.plays {
				n = s.plays - done
			}
		}
		t0 := time.Now()
		var out hub.PlayOutcome
		var err error
		if n == 1 {
			out, err = s.client.Play(s.ref, 1)
		} else {
			out, err = s.client.PlayBatch(s.ref, n)
		}
		if out.Completed > 0 {
			done += out.Completed
			s.deduped += uint64(out.Deduped)
			if out.Last.Round != done-1 {
				return fmt.Errorf("verdict loss: round %d acknowledged where %d was expected", out.Last.Round, done-1)
			}
			per := float64(time.Since(t0).Nanoseconds()) / float64(out.Completed)
			for i := 0; i < out.Completed; i++ {
				s.lat = append(s.lat, per)
			}
			stuck = 0
		}
		if err != nil {
			if !chaosTransient(err) {
				return err
			}
			if stuck++; stuck >= chaosRetryCap {
				return fmt.Errorf("no progress after %d attempts: %w", stuck, err)
			}
			time.Sleep(chaosRetryPause)
		} else if out.Completed == 0 {
			if stuck++; stuck >= chaosRetryCap {
				return fmt.Errorf("play made no progress after %d attempts", stuck)
			}
		}
	}
	return nil
}

// chaosAudit checks the slot converged exactly — the server-side round
// count equals the play budget and the state digest matches a fault-free
// twin session grown from the same spec.
func chaosAudit(ctx context.Context, twin *ga.Authority, s *chaosSlot) error {
	var st wire.Stats
	err := chaosRetry(func() error {
		var err error
		st, err = s.client.Stats(s.ref)
		return err
	})
	if err != nil {
		return fmt.Errorf("stats %s: %w", s.id, err)
	}
	if st.Rounds != s.plays {
		return fmt.Errorf("%s: server played %d rounds, want exactly %d", s.id, st.Rounds, s.plays)
	}
	var snap wire.SnapshotReply
	err = chaosRetry(func() error {
		var err error
		snap, err = s.client.Snapshot(s.ref)
		return err
	})
	if err != nil {
		return fmt.Errorf("snapshot %s: %w", s.id, err)
	}
	th, err := twin.CreateFromSpec(s.req)
	if err != nil {
		return fmt.Errorf("twin create %s: %w", s.id, err)
	}
	defer twin.Remove(s.id)
	if _, err := th.Run(ctx, s.plays); err != nil {
		return fmt.Errorf("twin play %s: %w", s.id, err)
	}
	want := th.Snapshot()
	if snap.Rounds != uint64(want.Rounds) || snap.Digest != want.Digest {
		return fmt.Errorf("%s: chaos digest %s@%d diverges from fault-free twin %s@%d",
			s.id, snap.Digest, snap.Rounds, want.Digest, want.Rounds)
	}
	return nil
}

// scrapeCounter reads one counter from the server's Prometheus endpoint
// (0 when absent or unreachable — the bench row is best-effort here).
func scrapeCounter(base, name string) int64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
