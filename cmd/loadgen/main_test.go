package main

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestLoadMixCoversAllDriversAndFamilies(t *testing.T) {
	mix := loadMix()
	drivers := map[string]bool{}
	families := 0
	for _, sc := range mix {
		drivers[sc.driver] = true
		if sc.driver == "pure" {
			families++
		}
		if sc.weight <= 0 {
			t.Fatalf("%s: non-positive default weight", sc.name)
		}
	}
	for _, d := range []string{"pure", "mixed", "rra", "distributed"} {
		if !drivers[d] {
			t.Fatalf("default mix misses driver %q", d)
		}
	}
	if families < 5 {
		t.Fatalf("default mix has %d catalog families, want ≥ 5", families)
	}
}

func TestApplyMix(t *testing.T) {
	mix, err := applyMix(loadMix(), "congestion=9,rra=0")
	if err != nil {
		t.Fatal(err)
	}
	foundCongestion := false
	for _, sc := range mix {
		if sc.name == "rra" {
			t.Fatal("weight 0 must drop the scenario")
		}
		if sc.name == "congestion" {
			foundCongestion = true
			if sc.weight != 9 {
				t.Fatalf("congestion weight = %d, want 9", sc.weight)
			}
		}
	}
	if !foundCongestion {
		t.Fatal("congestion missing after override")
	}

	for _, bad := range []string{"nope=1", "congestion", "congestion=-1", "congestion=x"} {
		if _, err := applyMix(loadMix(), bad); err == nil {
			t.Fatalf("applyMix(%q) should fail", bad)
		}
	}
	// Zeroing one scenario is fine; zeroing every scenario is an error.
	var allZero []string
	for _, sc := range loadMix() {
		allZero = append(allZero, sc.name+"=0")
	}
	if _, err := applyMix(loadMix(), strings.Join(allZero, ",")); err == nil {
		t.Fatal("an all-zero mix should fail")
	}
}

func TestSessionCountsExactAndPositive(t *testing.T) {
	mix := loadMix()
	for _, sessions := range []int{len(mix), 50, 1000, 1001} {
		counts := sessionCounts(mix, sessions)
		total := 0
		for i, c := range counts {
			if c < 1 {
				t.Fatalf("sessions=%d: scenario %s got %d sessions", sessions, mix[i].name, c)
			}
			total += c
		}
		if total != sessions {
			t.Fatalf("sessions=%d: counts sum to %d", sessions, total)
		}
	}
	// Skewed weights force the claw-back path.
	skew := []scenario{
		{name: "a", weight: 100},
		{name: "b", weight: 1},
		{name: "c", weight: 1},
	}
	counts := sessionCounts(skew, 3)
	if counts[0]+counts[1]+counts[2] != 3 {
		t.Fatalf("skewed counts %v do not sum to 3", counts)
	}
}

// benchLine is cmd/benchfmt's parser pattern; loadgen's output must stay
// machine-readable by it.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(.*)$`)

func TestWriteBenchLineParseableByBenchfmt(t *testing.T) {
	var buf bytes.Buffer
	writeBenchLine(&buf, "Loadgen/scenario=x/driver=pure", []float64{100, 200, 300}, 2, time.Second)
	line := strings.TrimSuffix(buf.String(), "\n")
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("bench line %q does not match benchfmt's pattern", line)
	}
	if m[3] != "3" {
		t.Fatalf("iterations = %s, want 3 plays", m[3])
	}
	for _, unit := range []string{"ns/op", "plays/s", "p50-ns/op", "p99-ns/op", "sessions"} {
		if !strings.Contains(m[4], unit) {
			t.Fatalf("bench line %q misses unit %s", line, unit)
		}
	}
	// Empty samples must emit nothing rather than a 0-iteration line.
	buf.Reset()
	writeBenchLine(&buf, "Loadgen/empty", nil, 0, time.Second)
	if buf.Len() != 0 {
		t.Fatalf("empty sample produced %q", buf.String())
	}
}

// TestRunInProcessMini drives the full harness end to end at CI size:
// every scenario family, every driver, real sessions, real plays.
func TestRunInProcessMini(t *testing.T) {
	var out bytes.Buffer
	cfg := config{sessions: 16, plays: 2, seed: 11, out: &out, info: io.Discard}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkLoadgen/transport=inproc/total") {
		t.Fatalf("no total line in output:\n%s", got)
	}
	for _, sc := range loadMix() {
		if !strings.Contains(got, "scenario="+sc.name+"/") {
			t.Fatalf("scenario %s missing from output:\n%s", sc.name, got)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "Benchmark") && benchLine.FindStringSubmatch(line) == nil {
			t.Fatalf("unparseable bench line %q", line)
		}
	}
}

// TestRunSelfserveMini exercises the HTTP transport hermetically.
func TestRunSelfserveMini(t *testing.T) {
	var out bytes.Buffer
	cfg := config{sessions: 16, plays: 1, seed: 3, selfserve: true, out: &out, info: io.Discard}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BenchmarkLoadgen/transport=http/total") {
		t.Fatalf("no total line in output:\n%s", out.String())
	}
}

// TestRunWSMini exercises the streaming transport hermetically: the full
// mix multiplexed over two WebSocket connections.
func TestRunWSMini(t *testing.T) {
	var out bytes.Buffer
	cfg := config{sessions: 16, plays: 2, seed: 5, selfserve: true,
		transport: "ws", conns: 2, out: &out, info: io.Discard}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkLoadgen/transport=ws/total") {
		t.Fatalf("no total line in output:\n%s", got)
	}
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "Benchmark") && benchLine.FindStringSubmatch(line) == nil {
			t.Fatalf("unparseable bench line %q", line)
		}
	}
}

// TestRunPulseWorkersMini drives every distributed scenario through the
// worker-pool pulse engine and pins the /pulse-workers row label that
// keeps multi-core rows distinct in the BENCH artifacts.
func TestRunPulseWorkersMini(t *testing.T) {
	var out bytes.Buffer
	cfg := config{sessions: 16, plays: 2, seed: 17, pulseWorkers: 2, out: &out, info: io.Discard}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkLoadgen/transport=inproc/pulse-workers=2/total") {
		t.Fatalf("no pulse-workers total line in output:\n%s", got)
	}
	for _, sc := range []string{"dist-publicgoods", "dist-mining", "dist-committee"} {
		if !strings.Contains(got, "scenario="+sc+"/") {
			t.Fatalf("scenario %s missing from output:\n%s", sc, got)
		}
	}
	cfg = config{sessions: 16, plays: 1, pulseWorkers: -1, out: io.Discard, info: io.Discard}
	if err := run(cfg); err == nil {
		t.Fatal("negative -pulse-workers must be rejected")
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	for _, cfg := range []config{
		{sessions: 0, plays: 1},
		{sessions: 1, plays: 0},
		{sessions: 4, plays: 1}, // below the mix size
		{sessions: 100, plays: 1, httpBase: "http://x", selfserve: true}, // exclusive transports
		{sessions: 100, plays: 1, mix: "nope=1"},
		{sessions: 100, plays: 1, crash: -1},
		{sessions: 100, plays: 1, crash: 1, selfserve: true}, // crash is in-process only
		{sessions: 100, plays: 1, dataDir: "x", selfserve: true},
		{sessions: 100, plays: 1, crash: 1, chaos: true}, // closures cannot be journaled
		{sessions: 100, plays: 1, batch: -1},
		// A chaos batch must fit the history ring: a lost batch ack is
		// healed by replaying orphaned rounds from it.
		{sessions: 100, plays: 1, chaosMode: true, conns: 1, batch: historyLimit + 1},
	} {
		cfg.out, cfg.info = io.Discard, io.Discard
		if err := run(cfg); err == nil {
			t.Fatalf("run(%+v) should fail", cfg)
		}
	}
}

// TestRunCrashMini drives the durable harness through two SIGKILL-style
// crash/recover cycles at CI size: every scenario family and driver must
// be recovered from the write-ahead log with nothing lost, and the crash
// bench line must stay benchfmt-parseable.
func TestRunCrashMini(t *testing.T) {
	var out bytes.Buffer
	cfg := config{sessions: 16, plays: 4, seed: 7, crash: 2, deviants: 0.25, out: &out, info: io.Discard}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkLoadgen/crash") {
		t.Fatalf("no crash line in output:\n%s", got)
	}
	for _, unit := range []string{"recovered-sessions", "replayed-rounds", "replayed-rounds/s"} {
		if !strings.Contains(got, unit) {
			t.Fatalf("crash line misses %s:\n%s", unit, got)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "Benchmark") && benchLine.FindStringSubmatch(line) == nil {
			t.Fatalf("unparseable bench line %q", line)
		}
	}
}

// TestRunBatchDurableMini drives the batched durable harness: every
// scenario plays in PlayN batches journaled as single WAL records under
// group commit, crosses one crash/recover cycle, and the bench rows carry
// the /batch= label so volatile and batched artifacts stay distinct.
func TestRunBatchDurableMini(t *testing.T) {
	var out bytes.Buffer
	cfg := config{sessions: 16, plays: 6, seed: 13, batch: 3, crash: 1, out: &out, info: io.Discard}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkLoadgen/transport=inproc/durable/batch=3/total",
		"BenchmarkLoadgen/crash/batch=3",
		"recovered-sessions",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output misses %q:\n%s", want, got)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if strings.HasPrefix(line, "Benchmark") && benchLine.FindStringSubmatch(line) == nil {
			t.Fatalf("unparseable bench line %q", line)
		}
	}
}

// TestSegmentBounds pins the crash-segment split: exact cover, no
// overlap, remainders to early segments.
func TestSegmentBounds(t *testing.T) {
	for _, tc := range []struct{ plays, segments int }{
		{20, 1}, {20, 3}, {7, 3}, {2, 3}, {0, 2}, {1, 4},
	} {
		covered := 0
		prevTo := 0
		for seg := 0; seg < tc.segments; seg++ {
			from, to := segmentBounds(tc.plays, tc.segments, seg)
			if from != prevTo || to < from {
				t.Fatalf("plays=%d segments=%d seg=%d: bounds [%d,%d) after %d", tc.plays, tc.segments, seg, from, to, prevTo)
			}
			covered += to - from
			prevTo = to
		}
		if covered != tc.plays {
			t.Fatalf("plays=%d segments=%d: covered %d", tc.plays, tc.segments, covered)
		}
	}
}
