// Command covergate enforces per-package coverage floors over a merged
// Go cover profile. The CI coverage gate runs the whole test suite with
// -coverpkg over the audited packages and fails the build when any of
// them dips under the floor:
//
//	go test -short -coverprofile=cover.out \
//	    -coverpkg=./internal/core,./internal/punish,./internal/audit,./internal/deviate ./...
//	go run ./cmd/covergate -profile cover.out -min 70 \
//	    gameauthority/internal/core gameauthority/internal/punish \
//	    gameauthority/internal/audit gameauthority/internal/deviate
//
// A merged profile repeats blocks once per test binary, so covergate
// dedups blocks and counts a statement covered when any run hit it —
// exactly how `go tool cover -func` reads the same data.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "merged cover profile")
	min := flag.Float64("min", 70, "minimum percent of statements covered per package")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "covergate: no packages to gate")
		os.Exit(2)
	}
	if err := run(*profile, *min, pkgs); err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(1)
	}
}

type block struct {
	stmts   int
	covered bool
}

func run(profile string, min float64, pkgs []string) error {
	f, err := os.Open(profile)
	if err != nil {
		return err
	}
	defer f.Close()

	// blocks[key] dedups "file:range" entries across test binaries.
	blocks := make(map[string]*block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// Format: path/file.go:sl.sc,el.ec numStmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || !strings.ContainsRune(fields[0], ':') {
			return fmt.Errorf("malformed profile line %q", line)
		}
		key := fields[0]
		b := blocks[key]
		if b == nil {
			b = &block{stmts: stmts}
			blocks[key] = b
		}
		if count > 0 {
			b.covered = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	failed := false
	for _, pkg := range pkgs {
		var total, covered int
		prefix := pkg + "/"
		for key, b := range blocks {
			file := key[:strings.IndexByte(key, ':')]
			if !strings.HasPrefix(file, prefix) {
				continue
			}
			// Only the package's own files, not subpackages.
			if strings.ContainsRune(strings.TrimPrefix(file, prefix), '/') {
				continue
			}
			total += b.stmts
			if b.covered {
				covered += b.stmts
			}
		}
		if total == 0 {
			fmt.Printf("covergate: %-40s no statements in profile\n", pkg)
			failed = true
			continue
		}
		pct := 100 * float64(covered) / float64(total)
		status := "ok  "
		if pct < min {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("covergate: %s %-40s %5.1f%% (floor %.0f%%)\n", status, pkg, pct, min)
	}
	if failed {
		return fmt.Errorf("coverage below the %.0f%% floor", min)
	}
	return nil
}
