// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	go run ./cmd/experiments              # run everything
//	go run ./cmd/experiments -e E-T5      # one experiment
//	go run ./cmd/experiments -quick       # reduced sweeps (CI-sized)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	ga "gameauthority"
	"gameauthority/internal/bap"
	"gameauthority/internal/game"
	"gameauthority/internal/metrics"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
	"gameauthority/internal/ssba"
)

func main() {
	var (
		only  = flag.String("e", "", "run only this experiment id (e.g. E-T5)")
		quick = flag.Bool("quick", false, "reduced sweeps")
	)
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		run  func(quick bool)
	}{
		{"E-F1", "Fig. 1 — hidden manipulation in matching pennies", runEF1},
		{"E-T1", "Theorem 1 — self-stabilizing Byzantine agreement", runET1},
		{"E-L2", "Lemma 2 — convergence pulses from arbitrary states", runEL2},
		{"E-L3", "Lemma 3 — closure over long executions", runEL3},
		{"E-T5", "Theorem 5 — multi-round anarchy cost of supervised RRA", runET5},
		{"E-PoM", "Price of malice — virus inoculation with/without authority", runEPoM},
		{"E-AUD", "§5.3 ablation — per-round vs batched auditing", runEAUD},
		{"E-PUN", "§3.4 ablation — punishment schemes", runEPUN},
		{"E-VOTE", "§3.1 ablation — naive vs robust legislative voting", runEVOTE},
		{"E-BAP", "Substrate — EIG agreement scaling", runEBAP},
		{"E-EXT", "Extensions — sampled/statistical auditing and re-election", runEEXT},
	}

	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.name)
		e.run(*quick)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

func runEF1(quick bool) {
	rounds := 20000
	if quick {
		rounds = 2000
	}
	g := ga.MatchingPenniesManipulated()
	fmt.Println("payoff matrix (paper Fig. 1):")
	fmt.Println("  A\\B        Heads     Tails  Manipulate")
	for i := 0; i < 2; i++ {
		fmt.Printf("  %-8s", g.ActionName(0, i))
		for j := 0; j < 3; j++ {
			p := ga.Profile{i, j}
			fmt.Printf("  (%+.0f,%+.0f) ", g.Payoff(0, p), g.Payoff(1, p))
		}
		fmt.Println()
	}
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	run := func(opts ...ga.Option) (float64, float64, bool) {
		// Only Stats are read: bound the history so 2000-round sweeps
		// stop growing (and stop allocating on the play hot path).
		opts = append(opts, ga.WithHistoryLimit(8))
		s, err := ga.New(ga.MatchingPennies(), opts...)
		fatal(err)
		_, err = s.Run(context.Background(), rounds)
		fatal(err)
		st := s.Stats()
		return -st.CumulativeCost[0] / float64(rounds), -st.CumulativeCost[1] / float64(rounds), st.Excluded[1]
	}
	manip := func() *ga.MixedAgent {
		return &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
	}
	a0, b0, _ := run(
		ga.WithActual(g), ga.WithStrategies(strategies), ga.WithMixedAgents(nil, manip()),
		ga.WithAudit(ga.AuditOff), ga.WithSeed(1),
	)
	a1, b1, excl := run(
		ga.WithActual(g), ga.WithStrategies(strategies), ga.WithMixedAgents(nil, manip()),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)), ga.WithAudit(ga.AuditPerRound), ga.WithSeed(2),
	)
	fmt.Printf("\n  %-22s %12s %12s\n", "configuration", "A payoff/rd", "B payoff/rd")
	fmt.Printf("  %-22s %+12.3f %+12.3f   (paper: 0 → −4 / 0 → +4)\n", "no authority", a0, b0)
	fmt.Printf("  %-22s %+12.3f %+12.3f   (manipulator excluded: %v)\n", "game authority", a1, b1, excl)
}

func runET1(quick bool) {
	periods := 30
	if quick {
		periods = 10
	}
	evil := prng.New(3)
	byz := map[int]sim.Adversary{3: sim.EquivocateAdversary(func(to int, payload any) any {
		msg, ok := payload.(ssba.Msg)
		if !ok {
			return payload
		}
		msg.Tick = int(evil.Uint64() % 8)
		return msg
	})}
	fmt.Printf("  %-10s %-10s %-12s %-10s\n", "n", "f", "agreements", "violations")
	for _, n := range []int{4, 7} {
		f := (n - 1) / 3
		var adv map[int]sim.Adversary
		if n == 4 {
			adv = byz
		}
		h, err := ssba.NewHarness(n, f, 0, 17, func(id, pulse int) bap.Value { return "motion" }, adv)
		fatal(err)
		h.Net.Run(periods * h.Procs[0].M())
		got := len(h.Procs[h.Honest[0]].Decisions())
		violations := len(h.CheckDecisions(periods - 2))
		fmt.Printf("  %-10d %-10d %-12d %-10d\n", n, f, got, violations)
	}
	fmt.Println("  (termination/validity/agreement hold in every period — Theorem 1)")
}

func runEL2(quick bool) {
	trials := 30
	if quick {
		trials = 8
	}
	fmt.Printf("  %-6s %-6s %-14s %-10s %-10s\n", "n", "f", "mean pulses", "p95", "max")
	for _, cfg := range []struct{ n, f int }{{4, 0}, {4, 1}, {7, 1}, {7, 2}} {
		var xs []float64
		for trial := 0; trial < trials; trial++ {
			h, err := ssba.NewHarness(cfg.n, cfg.f, 0, uint64(100+trial), func(id, pulse int) bap.Value { return "v" }, nil)
			fatal(err)
			ent := prng.New(uint64(9000 + trial*31))
			p := h.ConvergencePulses(ent.Uint64, 2, 500000)
			xs = append(xs, float64(p))
		}
		s := metrics.Summarize(xs)
		fmt.Printf("  %-6d %-6d %-14.1f %-10.1f %-10.0f\n", cfg.n, cfg.f, s.Mean, s.P95, s.Max)
	}
	fmt.Println("  (finite convergence from every corrupted start — Lemma 2; grows with n, f)")
}

func runEL3(quick bool) {
	periods := 200
	if quick {
		periods = 50
	}
	h, err := ssba.NewHarness(4, 1, 0, 5, func(id, pulse int) bap.Value { return "steady" }, nil)
	fatal(err)
	ent := prng.New(6)
	if p := h.ConvergencePulses(ent.Uint64, 2, 500000); p > 500000 {
		fatal(fmt.Errorf("no convergence"))
	}
	before := len(h.Procs[0].Decisions())
	h.Net.Run(periods * h.Procs[0].M())
	agreements := len(h.Procs[0].Decisions()) - before
	violations := len(h.CheckDecisions(periods - 2))
	fmt.Printf("  periods=%d agreements=%d (exactly one per period) violations=%d\n",
		periods, agreements, violations)
}

func runET5(quick bool) {
	seeds := 20
	maxK := 10000
	if quick {
		seeds = 5
		maxK = 1000
	}
	ks := []int{1, 4, 16, 64, 256, 1024, 4096, 10000}
	fmt.Printf("  %-8s %-8s %-8s", "n", "b", "k")
	fmt.Printf(" %-10s %-10s %-8s\n", "E[R(k)]", "1+2b/k", "ok")
	for _, cfg := range []struct{ n, b int }{{4, 2}, {8, 4}, {16, 8}} {
		for _, k := range ks {
			if k > maxK {
				continue
			}
			var ratios []float64
			for seed := 0; seed < seeds; seed++ {
				s, err := ga.New(nil,
					ga.WithRRA(cfg.n, cfg.b),
					ga.WithPunishment(ga.NewDisconnectScheme(cfg.n, 0)),
					ga.WithSeed(uint64(seed)),
					ga.WithHistoryLimit(8)) // k reaches 1000; only MaxLoad is read
				fatal(err)
				_, err = s.Run(context.Background(), k)
				fatal(err)
				r, err := ga.MultiRoundAnarchyCost(float64(ga.AsRRA(s).RRA().MaxLoad()), ga.OptMaxLoad(cfg.n, cfg.b, k))
				fatal(err)
				ratios = append(ratios, r)
			}
			mean := metrics.Summarize(ratios).Mean
			bound := ga.Theorem5Bound(cfg.b, k)
			ok := "✓"
			if mean > bound+0.05 {
				ok = "✗"
			}
			fmt.Printf("  %-8d %-8d %-8d %-10.4f %-10.4f %-8s\n", cfg.n, cfg.b, k, mean, bound, ok)
		}
	}
	fmt.Println("  (R(k) ≤ 1+2b/k and R(k) → 1 — Theorem 5)")
}

func runEPoM(quick bool) {
	grid := 24
	if quick {
		grid = 12
	}
	const c, l = 1.0, 64.0
	fmt.Printf("  grid %dx%d, C=%.0f, L=%.0f\n", grid, grid, c, l)
	fmt.Printf("  %-8s %-16s %-14s %-14s\n", "byz", "PoM(no auth)", "PoM(auth)", "liars cut")
	for _, byzCount := range []int{0, 2, 4, 8, 12} {
		base, err := game.NewInoculation(grid, grid, c, l)
		fatal(err)
		secure, _ := base.Equilibrium(1, 400)
		costBase := base.SocialCost(secure, base.HonestNodes())

		var ids []int
		for i := 0; i < byzCount; i++ {
			// Scatter along two rows to bridge components, wrapping the
			// column within the grid.
			row := 4 + 7*(i%2)
			col := (3 + (i/2)*2) % grid
			ids = append(ids, row*grid+col)
		}
		withByz, err := game.NewInoculation(grid, grid, c, l)
		fatal(err)
		withByz.SetByzantine(ids...)
		secureB, _ := withByz.Equilibrium(1, 400)
		costWith := withByz.SocialCost(secureB, withByz.HonestNodes())

		auth, err := game.NewInoculation(grid, grid, c, l)
		fatal(err)
		auth.SetByzantine(ids...)
		secureA, _ := auth.Equilibrium(1, 400)
		liars := auth.AuditByzantine(secureA)
		if len(liars) > 0 {
			// Executive disconnects the liars; honest nodes
			// re-equilibrate on the truthful residual network.
			for _, id := range liars {
				auth.Disconnect(id)
			}
			secureA, _ = auth.Equilibrium(1, 400)
		}
		costAuth := auth.SocialCost(secureA, auth.HonestNodes())

		pomNo := costWith / costBase
		pomAuth := costAuth / costBase
		fmt.Printf("  %-8d %-16.3f %-14.3f %-14d\n", byzCount, pomNo, pomAuth, len(liars))
	}
	fmt.Println("  (the authority pushes PoM back toward 1 for every byz > 0 — §5.4)")
}

func runEAUD(quick bool) {
	rounds := 256
	if quick {
		rounds = 64
	}
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	fmt.Printf("  %-16s %-14s %-14s %-16s %-18s\n", "discipline", "commitments", "agreements", "agreements/rd", "est. messages")
	runMode := func(label string, audit ga.Option) {
		s, err := ga.New(ga.MatchingPennies(),
			ga.WithStrategies(strategies),
			ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
			audit, ga.WithSeed(1),
			ga.WithHistoryLimit(8)) // only protocol counters are read
		fatal(err)
		_, err = s.Run(context.Background(), rounds)
		fatal(err)
		fatal(s.Close()) // audits the trailing partial epoch in batched mode
		st := s.Stats().Protocol
		fmt.Printf("  %-16s %-14d %-14d %-16.3f %-18d\n", label,
			st.Commitments, st.Agreements, float64(st.Agreements)/float64(rounds), st.MessageEstimate)
	}
	runMode("per-round", ga.WithAudit(ga.AuditPerRound))
	for _, t := range []int{2, 4, 8, 16, 32, 64} {
		runMode(fmt.Sprintf("batched T=%d", t), ga.WithAudit(ga.AuditBatched, ga.EpochLen(t)))
	}
	fmt.Println("  (batched epoch audits amortize the §5.3 overhead roughly as 3/T)")
}

func runEPUN(quick bool) {
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	fmt.Printf("  %-14s %-20s %-18s\n", "scheme", "rounds to exclude", "damage (B's gain)")
	ctx := context.Background()
	for _, mk := range []func() ga.PunishmentScheme{
		func() ga.PunishmentScheme { return ga.NewDisconnectScheme(2, 0) },
		func() ga.PunishmentScheme { return ga.NewReputationScheme(2, 0.5, 0.2, 0) },
		func() ga.PunishmentScheme { return ga.NewDepositScheme(2, 3, 1) },
	} {
		scheme := mk()
		manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
		s, err := ga.New(ga.MatchingPennies(),
			ga.WithActual(ga.MatchingPenniesManipulated()),
			ga.WithStrategies(strategies), ga.WithMixedAgents(nil, manip),
			ga.WithPunishment(scheme), ga.WithAudit(ga.AuditPerRound), ga.WithSeed(9),
			ga.WithHistoryLimit(8)) // only exclusion flags and costs are read
		fatal(err)
		excludedAt := -1
		for r := 1; r <= 200; r++ {
			_, err := s.Play(ctx)
			fatal(err)
			if s.Stats().Excluded[1] {
				excludedAt = r
				break
			}
		}
		_, err = s.Run(ctx, 100) // post-exclusion tail
		fatal(err)
		fmt.Printf("  %-14s %-20d %-18.2f\n", scheme.Name(), excludedAt, -s.Stats().CumulativeCost[1])
	}
	fmt.Println("  (harsher schemes bound the manipulation damage sooner — §3.4)")
}

func runEVOTE(quick bool) {
	candidates := []ga.Candidate{
		{Game: ga.MatchingPennies(), Description: "matching pennies"},
		{Game: ga.PrisonersDilemma(), Description: "prisoner's dilemma"},
		{Game: ga.CoordinationGame(), Description: "coordination"},
	}
	voters := []ga.Voter{
		{Prefs: []int{0, 1, 2}}, {Prefs: []int{0, 1, 2}},
		{Prefs: []int{1, 0, 2}}, {Prefs: []int{1, 0, 2}},
		{Prefs: []int{2, 1, 0}, Manipulative: true},
	}
	naive, err := ga.NaiveElection(candidates, voters)
	fatal(err)
	robust, err := ga.RobustElection(candidates, voters, 3)
	fatal(err)
	fmt.Printf("  %-10s winner=%d (%s) scores=%v\n", "naive", naive.Winner, candidates[naive.Winner].Description, naive.Scores)
	fmt.Printf("  %-10s winner=%d (%s) scores=%v cheaters=%v\n", "robust", robust.Winner, candidates[robust.Winner].Description, robust.Scores, robust.Cheaters)
	fmt.Println("  (commit-reveal forecloses last-mover manipulation — §3.1)")
}

func runEBAP(quick bool) {
	fmt.Printf("  %-6s %-6s %-10s %-14s %-12s\n", "n", "f", "rounds", "messages", "agreement")
	for _, cfg := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}} {
		if quick && cfg.n > 10 {
			continue
		}
		procs := make([]sim.Process, cfg.n)
		raws := make([]*bap.Proc, cfg.n)
		for j := 0; j < cfg.n; j++ {
			p, err := bap.NewProc(j, cfg.n, cfg.f, "v")
			fatal(err)
			raws[j] = p
			procs[j] = p
		}
		nw, err := sim.NewNetwork(procs, nil)
		fatal(err)
		evil := prng.New(uint64(cfg.n))
		for k := 0; k < cfg.f; k++ {
			nw.SetByzantine(cfg.n-1-k, sim.EquivocateAdversary(func(to int, payload any) any {
				_ = evil.Uint64()
				return payload
			}))
		}
		nw.Run(bap.Rounds(cfg.f) + 2)
		agreed := true
		var val bap.Value
		first := true
		for j := 0; j < cfg.n-cfg.f; j++ {
			v, err := raws[j].Decision()
			fatal(err)
			if first {
				val, first = v, false
			} else if v != val {
				agreed = false
			}
		}
		fmt.Printf("  %-6d %-6d %-10d %-14d %-12v\n", cfg.n, cfg.f, bap.Rounds(cfg.f), nw.Stats.MessagesSent, agreed)
	}
	fmt.Println("  (EIG: f+1 rounds, message count grows exponentially in f — the [16] trade-off)")
}

func runEEXT(quick bool) {
	rounds := 400
	trials := 10
	if quick {
		rounds = 200
		trials = 4
	}
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}

	// --- Sampled auditing (§1.1): detection latency vs overhead ------------
	fmt.Println("  sampled auditing (§1.1 extension): Fig. 1 manipulator, varying spot-check rate")
	fmt.Printf("  %-10s %-22s %-18s %-14s\n", "p", "mean rounds to catch", "agreements/rd", "reveals/rd")
	ctx := context.Background()
	for _, p := range []float64{1.0, 0.5, 0.2, 0.05} {
		var latencies []float64
		var agreements, reveals float64
		for trial := 0; trial < trials; trial++ {
			manip := &ga.MixedAgent{Override: func(int, int) int { return ga.ManipulateAction }}
			s, err := ga.New(ga.MatchingPennies(),
				ga.WithActual(ga.MatchingPenniesManipulated()),
				ga.WithStrategies(strategies), ga.WithMixedAgents(nil, manip),
				ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
				ga.WithAudit(ga.AuditSampled, ga.SampleProb(p)),
				ga.WithSeed(uint64(trial*131)),
				ga.WithHistoryLimit(8)) // detection latency only needs Stats
			fatal(err)
			caught := float64(rounds + 1)
			for r := 1; r <= rounds; r++ {
				_, err := s.Play(ctx)
				fatal(err)
				if s.Stats().Excluded[1] {
					caught = float64(r)
					break
				}
			}
			latencies = append(latencies, caught)
			st := s.Stats()
			agreements += float64(st.Protocol.Agreements) / float64(st.Rounds)
			reveals += float64(st.Protocol.Reveals) / float64(st.Rounds)
		}
		fmt.Printf("  %-10.2f %-22.1f %-18.2f %-14.2f\n",
			p, metrics.Summarize(latencies).Mean, agreements/float64(trials), reveals/float64(trials))
	}

	// --- Statistical screening (§5.2) ---------------------------------------
	fmt.Println("\n  statistical screening (§5.2): biased player vs declared uniform strategy")
	biased := &ga.MixedAgent{Override: func(int, int) int { return 0 }}
	s, err := ga.New(ga.MatchingPennies(),
		ga.WithStrategies(strategies), ga.WithMixedAgents(nil, biased),
		ga.WithPunishment(ga.NewReputationScheme(2, 0.5, 0.4, 0)),
		ga.WithAudit(ga.AuditStatistical, ga.Window(50), ga.ChiThreshold(6.63)),
		ga.WithSeed(17),
		ga.WithHistoryLimit(8)) // 600-round screen; only Stats are read
	fatal(err)
	caught := -1
	for r := 1; r <= 600; r++ {
		_, err := s.Play(ctx)
		fatal(err)
		if s.Stats().Excluded[1] {
			caught = r
			break
		}
	}
	fmt.Printf("  always-Heads player excluded after %d rounds (window=50, χ² threshold 6.63), zero commitments\n", caught)

	// --- Repeated re-election (§3.1) -----------------------------------------
	fmt.Println("\n  repeated re-election (§3.1 extension): preferences drift after term 1")
	results, err := ga.PlayTerms(ga.ReelectionConfig{
		Candidates: []ga.Candidate{
			{Game: ga.PrisonersDilemma(), Description: "prisoner's dilemma"},
			{Game: ga.CoordinationGame(), Description: "coordination"},
		},
		Voters: 5,
		Prefs: func(term, voter int) []int {
			if term < 2 || voter == 0 {
				return []int{0, 1}
			}
			return []int{1, 0}
		},
		TermLength: 10,
		Seed:       23,
	}, 4)
	fatal(err)
	fmt.Printf("  %-8s %-10s %-22s %-14s\n", "term", "winner", "game", "social cost")
	names := []string{"prisoner's dilemma", "coordination"}
	for _, r := range results {
		fmt.Printf("  %-8d %-10d %-22s %-14.1f\n", r.Term, r.Election.Winner, names[r.Election.Winner], r.SocialCost)
	}
	fmt.Println("  (the society reelects a cheaper game once its preferences shift)")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
