// Command obssmoke is the CI acceptance check of the observability
// plane (make obs-smoke). It builds a durable, sharded in-process
// authority behind the real HTTP server, drives plays on the pure and
// distributed drivers over single and batched requests, then asserts:
//
//   - GET /metrics renders a parseable Prometheus exposition containing
//     every expected histogram and gauge family, with the play-latency
//     histograms actually populated and every histogram carrying a
//     cumulative +Inf bucket consistent with its _count;
//   - GET /debug/trace captures a distributed play end-to-end as valid
//     Chrome trace_event JSON containing the per-pulse protocol spans
//     (clock sync, Dolev–Strong, EIG resolve) and the store spans.
//
// It exits non-zero on the first violation; it never fails on timing.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	ga "gameauthority"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: metrics exposition and trace capture OK")
}

// histogramFamilies are the latency histograms the plane must expose
// regardless of workload (all register at package init or server build).
var histogramFamilies = []string{
	"gameauthority_play_latency_seconds",
	"gameauthority_playn_batch_seconds",
	"gameauthority_restore_seconds",
	"gameauthority_wal_append_seconds",
	"gameauthority_fsync_seconds",
	"gameauthority_commit_epoch_seconds",
	"gameauthority_http_request_seconds",
	"gameauthority_ws_roundtrip_seconds",
}

// gaugeFamilies are the gauges the smoke authority must expose (store,
// shards, hub, breaker, and runtime).
var gaugeFamilies = []string{
	"gameauthority_group_commit_queue_depth",
	"gameauthority_shard_sessions",
	"gameauthority_shard_loop_queue_depth",
	"gameauthority_breaker_open_sessions",
	"gameauthority_hub_outbox_depth",
	"gameauthority_goroutines",
	"gameauthority_heap_alloc_bytes",
	"gameauthority_heap_objects",
	"gameauthority_gc_cycles",
	"gameauthority_gc_pause_total_seconds",
}

// pulseSpans are the per-pulse protocol spans a distributed-play trace
// must contain.
var pulseSpans = []string{"pulse.clock-sync", "pulse.dolev-strong", "pulse.eig-resolve"}

func run() error {
	dir, err := os.MkdirTemp("", "obssmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := ga.NewFileStore(dir)
	if err != nil {
		return err
	}
	authority := ga.NewAuthority(
		ga.WithStore(st),
		ga.WithGroupCommit(time.Millisecond, 64),
		ga.WithShards(2),
	)
	defer authority.Close()
	srv := httptest.NewServer(ga.NewServer(authority, ga.WithDebug(true)))
	defer srv.Close()

	if err := createSession(srv.URL, `{"id":"obs-pure","game":"congestion"}`); err != nil {
		return err
	}
	if err := createSession(srv.URL,
		`{"id":"obs-dist","game":"publicgoods","players":4,"kind":"distributed","distributed":{"n":4,"f":1}}`); err != nil {
		return err
	}

	// A batched request populates the PlayN histogram; the single plays
	// populate the per-driver latencies and the WAL/commit-epoch series.
	if err := play(srv.URL, "obs-pure/play?n=8", 0); err != nil {
		return err
	}
	if err := play(srv.URL, "obs-pure/play", 4); err != nil {
		return err
	}

	// Trace capture races the plays on purpose — that is how an operator
	// uses it. The capture arms the tracer, the play loop below feeds it,
	// and plays=2 completes the response.
	traceCh := make(chan result, 1)
	go func() {
		traceCh <- get(srv.URL + "/debug/trace?plays=2&wait=30s")
	}()
	var traceBody []byte
	for traceBody == nil {
		if err := play(srv.URL, "obs-dist/play", 1); err != nil {
			return err
		}
		select {
		case res := <-traceCh:
			if res.err != nil {
				return fmt.Errorf("trace capture: %w", res.err)
			}
			traceBody = res.body
		default:
		}
	}
	if err := checkTrace(traceBody); err != nil {
		return err
	}

	res := get(srv.URL + "/metrics")
	if res.err != nil {
		return fmt.Errorf("scrape: %w", res.err)
	}
	return checkScrape(res.body)
}

type result struct {
	body []byte
	err  error
}

func get(url string) result {
	resp, err := http.Get(url)
	if err != nil {
		return result{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return result{err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return result{err: fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, body)}
	}
	return result{body: body}
}

func createSession(base, spec string) error {
	resp, err := http.Post(base+"/sessions", "application/json", strings.NewReader(spec))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, body)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func play(base, target string, rounds int) error {
	body := "{}"
	if rounds > 0 {
		body = fmt.Sprintf(`{"rounds":%d}`, rounds)
	}
	resp, err := http.Post(base+"/sessions/"+target, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("play %s: status %d: %s", target, resp.StatusCode, out)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// checkScrape validates the exposition: parseable lines, every expected
// family present with the right TYPE, populated play histograms, and
// internally consistent histogram series (+Inf bucket == _count).
func checkScrape(body []byte) error {
	types := map[string]string{}
	samples := map[string]float64{} // full series line key (name+labels+suffix) -> value
	families := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			return fmt.Errorf("malformed sample line %q", line)
		}
		series, raw := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		samples[series] = v
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		families[name] = true
	}
	for _, name := range histogramFamilies {
		if types[name] != "histogram" {
			return fmt.Errorf("family %s: want TYPE histogram, got %q", name, types[name])
		}
		if !families[name+"_count"] {
			return fmt.Errorf("family %s renders no _count series", name)
		}
	}
	for _, name := range gaugeFamilies {
		if types[name] != "gauge" {
			return fmt.Errorf("family %s: want TYPE gauge, got %q", name, types[name])
		}
		if !families[name] {
			return fmt.Errorf("family %s declared but renders no series", name)
		}
	}
	// Histogram internal consistency: every _count series has a matching
	// +Inf bucket holding the same value.
	for series, count := range samples {
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
		}
		base, ok := strings.CutSuffix(name, "_count")
		if !ok || types[base] != "histogram" {
			continue
		}
		inf := base + "_bucket"
		if labels == "" {
			inf += `{le="+Inf"}`
		} else {
			inf += strings.TrimSuffix(labels, "}") + `,le="+Inf"}`
		}
		infCount, ok := samples[inf]
		if !ok {
			return fmt.Errorf("histogram series %s lacks a +Inf bucket", series)
		}
		if infCount != count {
			return fmt.Errorf("histogram series %s: +Inf bucket %v != count %v", series, infCount, count)
		}
	}
	// The workload above must actually have landed in the play paths.
	for _, populated := range []string{
		`gameauthority_play_latency_seconds_count{driver="pure"}`,
		`gameauthority_play_latency_seconds_count{driver="distributed"}`,
		`gameauthority_playn_batch_seconds_count`,
		`gameauthority_wal_append_seconds_count`,
		`gameauthority_commit_epoch_seconds_count`,
		`gameauthority_http_request_seconds_count{route="POST /sessions/{id}/play"}`,
	} {
		if samples[populated] == 0 {
			return fmt.Errorf("series %s recorded nothing under load", populated)
		}
	}
	return nil
}

// traceFile is the Chrome trace_event shape GET /debug/trace emits.
type traceFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

// checkTrace validates the capture: well-formed JSON, complete events,
// a root play span, and the per-pulse protocol spans of the distributed
// driver.
func checkTrace(body []byte) error {
	if !json.Valid(body) {
		return fmt.Errorf("trace is not valid JSON")
	}
	var tf traceFile
	if err := json.Unmarshal(body, &tf); err != nil {
		return fmt.Errorf("trace shape: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("trace capture holds no spans")
	}
	seen := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			return fmt.Errorf("span %q: want complete-event phase X, got %q", ev.Name, ev.Ph)
		}
		seen[ev.Name] = true
	}
	if !seen["play"] {
		return fmt.Errorf("trace lacks the root play span")
	}
	for _, name := range pulseSpans {
		if !seen[name] {
			return fmt.Errorf("trace lacks the per-pulse span %q", name)
		}
	}
	if !seen["wal.append"] {
		return fmt.Errorf("trace lacks the store span wal.append")
	}
	return nil
}
