// Command gameauthd runs a simulated distributed game-authority cluster and
// prints a play-by-play trace: n processors, a self-stabilizing Byzantine
// clock scheduling the §3.3 protocol phases, interactive consistency for
// every agreement, judicial audits, and executive punishments.
//
// Usage examples:
//
//	go run ./cmd/gameauthd                          # 4 honest processors
//	go run ./cmd/gameauthd -n 4 -f 1 -cheat 2       # processor 2 plays outside Π
//	go run ./cmd/gameauthd -corrupt 3 -plays 12     # transient fault after play 3
package main

import (
	"flag"
	"fmt"
	"os"

	ga "gameauthority"
	"gameauthority/internal/core"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 4, "number of processors (= players)")
		f       = flag.Int("f", 1, "Byzantine fault bound (n > 3f)")
		plays   = flag.Int("plays", 8, "number of plays to run")
		cheat   = flag.Int("cheat", -1, "processor id that plays an illegitimate action (-1: none)")
		corrupt = flag.Int("corrupt", -1, "inject a transient fault after this play (-1: never)")
		seed    = flag.Uint64("seed", 7, "root seed")
	)
	flag.Parse()

	if *n <= 3**f {
		fmt.Fprintf(os.Stderr, "gameauthd: need n > 3f (got n=%d f=%d)\n", *n, *f)
		os.Exit(2)
	}

	// The elected game: an n-player public-goods game (defection dominates,
	// cooperation is socially optimal) — a natural "society" workload.
	g, err := game.PublicGoods(*n, 2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("gameauthd: n=%d f=%d game=%s plays=%d (pulses/play=%d)\n",
		*n, *f, g.Name(), *plays, ga.PulsesPerPlay(*f))

	behaviors := make([]*ga.Agent, *n)
	byz := map[int]sim.Adversary{}
	if *cheat >= 0 && *cheat < *n {
		behaviors[*cheat] = &ga.Agent{Choose: func(int, ga.Profile) int { return 99 }}
		byz[*cheat] = sim.PassthroughAdversary()
		fmt.Printf("gameauthd: processor %d will play outside its action set\n", *cheat)
	}

	s, err := core.NewDistSession(*n, *f, g, behaviors, *seed, byz)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
		os.Exit(1)
	}

	seen := 0
	pulseBudget := (*plays + 40) * ga.PulsesPerPlay(*f) // slack for recovery
	corrupted := false
	for pulse := 0; pulse < pulseBudget && seen < *plays; pulse++ {
		s.Net.StepLockstep()
		ref := s.Procs[s.Honest[0]].Results()
		for seen < len(ref) {
			r := ref[seen]
			fmt.Printf("play %2d @pulse %4d  outcome=%v", seen, r.Pulse, r.Outcome)
			if len(r.Guilty) > 0 {
				fmt.Printf("  CONVICTED=%v (disconnected by the executive)", r.Guilty)
			}
			fmt.Println()
			seen++
			if *corrupt >= 0 && seen == *corrupt && !corrupted {
				corrupted = true
				fmt.Println("--- transient fault: corrupting every processor's state ---")
				ent := prng.New(*seed ^ 0xFA11)
				s.Net.Corrupt(ent.Uint64)
			}
		}
	}

	if err := s.ConsistentResults(seen); err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: HONEST REPLICA DIVERGENCE: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("gameauthd: %d plays, all honest replicas consistent; %d messages exchanged\n",
		seen, s.Net.Stats.MessagesSent)
}
