// Command gameauthd runs the game-authority middleware in one of two modes.
//
// Trace mode (default) simulates one distributed cluster and prints a
// play-by-play trace: n processors, a self-stabilizing Byzantine clock
// scheduling the §3.3 protocol phases, interactive consistency for every
// agreement, judicial audits, and executive punishments.
//
// Serve mode (-serve) hosts many independent authority sessions behind the
// HTTP/JSON API (POST /sessions, POST /sessions/{id}/play,
// GET /sessions/{id}/events, ...). With -data-dir the host is durable:
// sessions journal every play to a per-session write-ahead log under the
// directory, startup recovers whatever a previous (even killed) instance
// hosted, and SIGINT/SIGTERM snapshot every session and sync the store
// before exiting.
//
// Usage examples:
//
//	go run ./cmd/gameauthd                          # 4 honest processors
//	go run ./cmd/gameauthd -n 4 -f 1 -cheat 2       # processor 2 plays outside Π
//	go run ./cmd/gameauthd -corrupt 3 -plays 12     # transient fault after play 3
//	go run ./cmd/gameauthd -serve :8080             # multi-session HTTP host
//	go run ./cmd/gameauthd -serve :8080 -data-dir /var/lib/gameauthd  # durable host
//	go run ./cmd/gameauthd -serve :8080 -shards -1  # plays routed onto GOMAXPROCS shard loops
//	go run ./cmd/gameauthd -serve :8080 -pprof      # live profiling at /debug/pprof/
//	go run ./cmd/gameauthd -trace-out trace.json    # Chrome trace of the run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	ga "gameauthority"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func main() {
	var (
		n         = flag.Int("n", 4, "number of processors (= players)")
		f         = flag.Int("f", 1, "Byzantine fault bound (n > 3f)")
		plays     = flag.Int("plays", 8, "number of plays to run")
		cheat     = flag.Int("cheat", -1, "processor id that plays an illegitimate action (-1: none)")
		corrupt   = flag.Int("corrupt", -1, "inject a transient fault after this play (-1: never)")
		seed      = flag.Uint64("seed", 7, "root seed")
		serve     = flag.String("serve", "", "host the multi-session HTTP API on this address instead of tracing")
		dataDir   = flag.String("data-dir", "", "durable store directory (serve mode): journal sessions, recover on startup, snapshot on shutdown")
		ws        = flag.Bool("ws", true, "serve mode: mount the /ws binary streaming transport")
		shards    = flag.Int("shards", 0, "serve mode: route every play through this many authoritative shard loops (0: direct HTTP plays, lazy loops for /ws; -1: GOMAXPROCS)")
		chaosDisk = flag.Float64("chaos-disk", 0, "serve mode: inject seeded disk faults into the durable store at this base rate [0,1]")
		chaosNet  = flag.Float64("chaos-net", 0, "serve mode: inject seeded network faults into accepted connections at this base rate [0,1]")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (serve mode: boot to shutdown)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file after the run (serve mode: at drain shutdown)")
		pprofOn   = flag.Bool("pprof", false, "serve mode: mount live profiling and trace capture under /debug/")
		traceOut  = flag.String("trace-out", "", "record play spans and write a Chrome trace_event JSON file at exit")
	)
	flag.Parse()

	if *serve != "" {
		// Trace flags do not configure served sessions (those come from
		// POST /sessions bodies) — reject them loudly instead of silently
		// ignoring them.
		var stray []string
		flag.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "serve", "data-dir", "ws", "shards", "chaos-disk", "chaos-net", "seed",
				"pprof", "trace-out", "cpuprofile", "memprofile":
			default:
				stray = append(stray, "-"+fl.Name)
			}
		})
		if len(stray) > 0 {
			fmt.Fprintf(os.Stderr, "gameauthd: %v only apply to trace mode; sessions are configured via POST /sessions\n", stray)
			os.Exit(2)
		}
		err := serveAPI(*serve, serveOptions{
			dataDir:   *dataDir,
			ws:        *ws,
			shards:    *shards,
			seed:      *seed,
			chaosDisk: *chaosDisk,
			chaosNet:  *chaosNet,
			pprof:     *pprofOn,
			traceOut:  *traceOut,
			cpuProf:   *cpuProf,
			memProf:   *memProf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *dataDir != "" {
		fmt.Fprintln(os.Stderr, "gameauthd: -data-dir only applies to serve mode (-serve)")
		os.Exit(2)
	}
	strayServe := false
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "ws", "shards", "chaos-disk", "chaos-net", "pprof":
			strayServe = true
		}
	})
	if strayServe {
		fmt.Fprintln(os.Stderr, "gameauthd: -ws, -shards, -chaos-disk, -chaos-net and -pprof only apply to serve mode (-serve)")
		os.Exit(2)
	}
	if err := validateFlags(*n, *f, *plays, *cheat); err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
		os.Exit(2)
	}
	stopCPU, err := startCPUProfile(*cpuProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
		os.Exit(2)
	}
	if *traceOut != "" {
		// Trace every play of the run: the trace-mode workload is small and
		// deterministic, so no sampling is wanted.
		ga.EnableTracing(0, 1)
	}
	traceErr := trace(*n, *f, *plays, *cheat, *corrupt, *seed)
	stopCPU()
	if *cpuProf != "" {
		fmt.Printf("gameauthd: CPU profile written to %s\n", *cpuProf)
	}
	if *traceOut != "" {
		ga.DisableTracing()
		if err := writeTraceFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
		} else {
			// The trace CLI drives the pulse protocol below the Session
			// layer, so the ring holds pulse/phase spans, not play roots.
			fmt.Printf("gameauthd: trace (%d spans) written to %s\n", ga.TracedSpans(), *traceOut)
		}
	}
	memErr := writeMemProfile(*memProf)
	// Report both failures; the trace failure decides the exit code (the
	// documented non-zero pulse-budget contract) ahead of the profile one.
	if memErr != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", memErr)
	} else if *memProf != "" {
		fmt.Printf("gameauthd: heap profile written to %s\n", *memProf)
	}
	if traceErr != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", traceErr)
		os.Exit(1)
	}
	if memErr != nil {
		os.Exit(2)
	}
}

// serveOptions collects the serve-mode configuration.
type serveOptions struct {
	dataDir   string
	ws        bool
	shards    int
	seed      uint64
	chaosDisk float64
	chaosNet  float64
	pprof     bool
	traceOut  string
	cpuProf   string
	memProf   string
}

// serveAPI hosts the multi-session HTTP API, optionally durable. With a
// data directory the startup sequence is recover-then-listen (journaled
// sessions answer requests from the first accepted connection), and the
// shutdown sequence is drain → snapshot-all → fsync-and-close: everything
// journaled is compacted and on disk before the process exits. A kill
// that skips shutdown loses nothing either — that is what the
// write-ahead log is for.
func serveAPI(addr string, o serveOptions) error {
	var opts []ga.AuthorityOption
	if o.dataDir != "" {
		st, err := ga.NewFileStore(o.dataDir)
		if err != nil {
			return err
		}
		opts = append(opts, ga.WithStore(st))
	}
	if o.shards != 0 {
		// Route every play (HTTP included) through the authoritative
		// shard loops; the loops also back the /ws transport.
		opts = append(opts, ga.WithShards(o.shards))
	}
	if o.chaosDisk > 0 {
		opts = append(opts, ga.WithFaultPlan(ga.NewFaultPlan(ga.DiskFaultConfig(o.seed, o.chaosDisk))))
		fmt.Printf("gameauthd: CHAOS disk faults armed at rate %g (seed %d)\n", o.chaosDisk, o.seed)
	}
	var netPlan *ga.FaultPlan
	if o.chaosNet > 0 {
		netPlan = ga.NewFaultPlan(ga.NetFaultConfig(o.seed, o.chaosNet))
		fmt.Printf("gameauthd: CHAOS network faults armed at rate %g (seed %d)\n", o.chaosNet, o.seed)
	}
	stopCPU, err := startCPUProfile(o.cpuProf)
	if err != nil {
		return err
	}
	if o.traceOut != "" {
		// Record every play until shutdown; the ring keeps the most recent
		// window, so the dump shows the tail of the serve run.
		ga.EnableTracing(0, 1)
		fmt.Printf("gameauthd: tracing plays; trace will be written to %s on shutdown\n", o.traceOut)
	}
	authority := ga.NewAuthority(opts...)
	if o.dataDir != "" {
		report, err := authority.Recover(context.Background())
		if err != nil {
			return fmt.Errorf("recover %s: %w", o.dataDir, err)
		}
		fmt.Printf("gameauthd: recovered %d sessions (%d plays replayed in %v) from %s\n",
			report.Sessions, report.Rounds, report.Elapsed.Round(time.Millisecond), o.dataDir)
		for _, failure := range report.Failed {
			fmt.Fprintf(os.Stderr, "gameauthd: recovery skipped %s\n", failure)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Addr:    addr,
		Handler: ga.NewServer(authority, ga.WithWebSocket(o.ws), ga.WithDebug(o.pprof)),
	}
	errCh := make(chan error, 1)
	go func() {
		if netPlan == nil {
			errCh <- srv.ListenAndServe()
			return
		}
		// Network chaos wraps the listener so every accepted connection
		// sees the plan's latency, drops, and mid-frame cuts.
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			errCh <- err
			return
		}
		errCh <- srv.Serve(netPlan.Listener(ln))
	}()
	if o.ws {
		fmt.Printf("gameauthd: serving the authority API on %s (streaming transport at /ws)\n", addr)
	} else {
		fmt.Printf("gameauthd: serving the authority API on %s\n", addr)
	}
	if o.pprof {
		fmt.Printf("gameauthd: live profiling at http://%s/debug/pprof/ (trace capture at /debug/trace)\n", addr)
	}

	select {
	case err := <-errCh:
		stopCPU()
		return err
	case <-ctx.Done():
	}
	fmt.Println("gameauthd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: drain: %v\n", err)
	}
	if o.dataDir != "" {
		if n, err := authority.SnapshotAll(); err != nil {
			fmt.Fprintf(os.Stderr, "gameauthd: snapshot: %v\n", err)
		} else {
			fmt.Printf("gameauthd: %d snapshots persisted\n", n)
		}
	}
	// Drain-shutdown observability hooks: the drained-but-live process is
	// the honest heap/trace to capture, so dump before Close tears the
	// authority down. Profile failures are reported, never fatal — the
	// snapshot-and-close contract above matters more.
	if o.traceOut != "" {
		ga.DisableTracing()
		if err := writeTraceFile(o.traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
		} else {
			fmt.Printf("gameauthd: trace (%d plays) written to %s\n", ga.TracedPlays(), o.traceOut)
		}
	}
	stopCPU()
	if o.cpuProf != "" {
		fmt.Printf("gameauthd: CPU profile written to %s\n", o.cpuProf)
	}
	if err := writeMemProfile(o.memProf); err != nil {
		fmt.Fprintf(os.Stderr, "gameauthd: %v\n", err)
	} else if o.memProf != "" {
		fmt.Printf("gameauthd: heap profile written to %s\n", o.memProf)
	}
	return authority.Close()
}

// writeTraceFile dumps the captured span ring as Chrome trace_event JSON.
func writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := ga.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return nil
}

// startCPUProfile begins CPU profiling into path ("" = disabled) and
// returns the stop function.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile dumps the post-run heap profile to path ("" = disabled).
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// validateFlags rejects invalid trace-mode configurations loudly instead
// of silently ignoring them.
func validateFlags(n, f, plays, cheat int) error {
	if n <= 3*f {
		return fmt.Errorf("need n > 3f (got n=%d f=%d)", n, f)
	}
	if plays <= 0 {
		return fmt.Errorf("-plays must be positive (got %d)", plays)
	}
	if cheat != -1 && (cheat < 0 || cheat >= n) {
		return fmt.Errorf("-cheat must be a processor id in [0,%d) or -1 (got %d)", n, cheat)
	}
	return nil
}

// trace runs one distributed cluster and prints every play. It fails when
// the pulse budget is exhausted before the requested plays complete.
func trace(n, f, plays, cheat, corrupt int, seed uint64) error {
	// The elected game: an n-player public-goods game (defection dominates,
	// cooperation is socially optimal) — a natural "society" workload.
	g, err := ga.PublicGoods(n, 2)
	if err != nil {
		return err
	}
	fmt.Printf("gameauthd: n=%d f=%d game=%s plays=%d (pulses/play=%d)\n",
		n, f, g.Name(), plays, ga.PulsesPerPlay(f))

	var byz map[int]ga.Adversary
	opts := []ga.Option{
		ga.WithSeed(seed),
		// Each play gets a budget with recovery slack; a play exceeding it
		// (a wedged cluster) is a hard failure below.
		ga.WithPulseBudget((plays + 40) * ga.PulsesPerPlay(f)),
	}
	if cheat >= 0 {
		behaviors := make([]*ga.Agent, n)
		behaviors[cheat] = &ga.Agent{Choose: func(int, ga.Profile) int { return 99 }}
		byz = map[int]ga.Adversary{cheat: sim.PassthroughAdversary()}
		opts = append(opts, ga.WithAgents(behaviors...))
		fmt.Printf("gameauthd: processor %d will play outside its action set\n", cheat)
	}
	opts = append(opts, ga.WithDistributed(n, f, byz))

	s, err := ga.New(g, opts...)
	if err != nil {
		return err
	}
	unsubscribe := s.Subscribe(ga.ObserverFunc(func(e ga.Event) {
		switch e.Kind {
		case ga.EventPlay:
			fmt.Printf("play %2d @pulse %4d  outcome=%v\n", e.Round, e.Pulse, e.Outcome)
		case ga.EventConviction:
			fmt.Printf("          CONVICTED agent %d (disconnected by the executive)\n", e.Agent)
		case ga.EventClockRecovery:
			fmt.Printf("          clock recovered: %s\n", e.Detail)
		}
	}))
	defer unsubscribe()

	dist := ga.AsDistributed(s)
	ctx := context.Background()
	for seen := 0; seen < plays; seen++ {
		if _, err := s.Play(ctx); err != nil {
			if errors.Is(err, ga.ErrPulseBudget) {
				return fmt.Errorf("pulse budget exhausted after %d of %d plays: %w", seen, plays, err)
			}
			return err
		}
		if corrupt >= 0 && seen+1 == corrupt {
			fmt.Println("--- transient fault: corrupting every processor's state ---")
			ent := prng.New(seed ^ 0xFA11)
			dist.Net.Corrupt(ent.Uint64)
		}
	}

	done := s.Stats().Rounds
	if err := dist.ConsistentResults(done); err != nil {
		return fmt.Errorf("HONEST REPLICA DIVERGENCE: %w", err)
	}
	fmt.Printf("gameauthd: %d plays, all honest replicas consistent; %d messages exchanged\n",
		done, dist.Net.Stats.MessagesSent)
	return nil
}
