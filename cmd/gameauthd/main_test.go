package main

import (
	"os"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name               string
		n, f, plays, cheat int
		wantErr            bool
	}{
		{"defaults", 4, 1, 8, -1, false},
		{"cheater in range", 4, 1, 8, 2, false},
		{"n too small for f", 4, 2, 8, -1, true},
		{"zero plays", 4, 1, 0, -1, true},
		{"negative plays", 4, 1, -3, -1, true},
		{"cheat out of range high", 4, 1, 8, 4, true},
		{"cheat out of range low", 4, 1, 8, -2, true},
		{"f zero", 2, 0, 1, -1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.n, tc.f, tc.plays, tc.cheat)
			if (err != nil) != tc.wantErr {
				t.Fatalf("validateFlags(%d,%d,%d,%d) = %v, wantErr=%v",
					tc.n, tc.f, tc.plays, tc.cheat, err, tc.wantErr)
			}
		})
	}
}

// TestTraceCompletes runs a tiny trace end to end, including the
// budget-exhaustion error path.
func TestTraceCompletes(t *testing.T) {
	if err := trace(4, 1, 2, -1, -1, 7); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := trace(4, 1, 2, 2, -1, 7); err != nil {
		t.Fatalf("trace with cheater: %v", err)
	}
}

// TestProfileHelpers exercises the -cpuprofile/-memprofile plumbing: both
// must produce non-empty pprof files around a trace run, and bad paths
// must error instead of silently dropping the profile.
func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.prof"
	mem := dir + "/mem.prof"
	stop, err := startCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace(4, 1, 1, -1, -1, 7); err != nil {
		t.Fatalf("trace under profile: %v", err)
	}
	stop()
	if err := writeMemProfile(mem); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	if _, err := startCPUProfile(dir + "/no/such/dir/cpu.prof"); err == nil {
		t.Fatal("bad cpuprofile path accepted")
	}
	if err := writeMemProfile(dir + "/no/such/dir/mem.prof"); err == nil {
		t.Fatal("bad memprofile path accepted")
	}
	// Disabled profiles are no-ops.
	stop, err = startCPUProfile("")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := writeMemProfile(""); err != nil {
		t.Fatal(err)
	}
}
