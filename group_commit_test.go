package gameauthority_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	ga "gameauthority"
	"gameauthority/internal/store"
)

// TestGroupCommitFsyncGate is the durability-tax regression gate: K
// concurrent sessions each playing M batches of B rounds under group
// commit must finish with the committer's epoch count bounded by the
// issue formula ceil(elapsed/window)+K, with fsyncs bounded per-handle
// accounting (each epoch fsyncs at most one handle per dirty session),
// and — the amortization that pays for the whole subsystem — far fewer
// fsyncs than durable plays. Two of the three bounds are timing-free:
// an epoch only exists when at least one append parked on it, so epochs
// can never exceed the K*M appends no matter how slow the box is.
func TestGroupCommitFsyncGate(t *testing.T) {
	const (
		k      = 8  // concurrent sessions
		m      = 10 // batches per session
		b      = 10 // rounds per batch
		window = time.Millisecond
	)
	ctx := context.Background()
	st, err := ga.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, ok := st.(*store.File)
	if !ok {
		t.Fatalf("NewFileStore returned %T, want *store.File", st)
	}
	a := ga.NewAuthority(ga.WithStore(st),
		ga.WithGroupCommit(window, 1<<20), // window-only epochs: maxBatch kicks never fire
		ga.WithSnapshotEvery(0))
	defer a.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, k)
	sessions := make([]*ga.HostedSession, k)
	for i := range sessions {
		h, err := a.CreateFromSpec(ga.CreateSessionRequest{
			ID:   fmt.Sprintf("gate-%02d", i),
			Game: "pd",
			Seed: uint64(7000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = h
	}
	start := time.Now()
	for _, h := range sessions {
		wg.Add(1)
		go func(h *ga.HostedSession) {
			defer wg.Done()
			for j := 0; j < m; j++ {
				if _, err := h.PlayN(ctx, b, nil); err != nil {
					errCh <- err
					return
				}
			}
		}(h)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	epochs := f.CommitEpochs()
	fsyncs := f.Fsyncs()
	plays := int64(k * m * b)
	appends := int64(k * m)
	t.Logf("%d plays in %d batch appends: %d epochs, %d fsyncs over %v (window %v)",
		plays, appends, epochs, fsyncs, elapsed, window)

	if epochs == 0 {
		t.Fatal("group committer flushed no epochs — appends never parked")
	}
	// The issue's gate: epochs bounded by the elapsed commit windows plus
	// one slack per session.
	ceil := int64((elapsed + window - 1) / window)
	if epochs > ceil+k {
		t.Errorf("commit epochs %d exceed ceil(%v/%v)+%d = %d", epochs, elapsed, window, k, ceil+k)
	}
	// Timing-free backstop: an epoch exists only if an append parked on
	// it, so epochs can never exceed the number of batch appends.
	if epochs > appends {
		t.Errorf("commit epochs %d exceed the %d batch appends", epochs, appends)
	}
	// Per-handle accounting: each epoch fsyncs at most one handle per
	// session, and every handle can be fsynced at most once more by
	// eviction before Close.
	if fsyncs > epochs*k+k {
		t.Errorf("fsyncs %d exceed epochs(%d)*K(%d)+K", fsyncs, epochs, k)
	}
	// The durability tax actually amortized: one fsync per *batch append*
	// at the very worst, never one per play.
	if fsyncs > appends {
		t.Errorf("fsyncs %d exceed batch appends %d — group commit amortized nothing", fsyncs, appends)
	}
	if fsyncs >= plays {
		t.Errorf("fsyncs %d not below the %d durable plays", fsyncs, plays)
	}

	// The counters surfaced on /metrics must mirror the store's own.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
