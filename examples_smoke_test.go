package gameauthority_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds and briefly runs every examples/* main,
// so the documented snippets cannot rot: an example that stops compiling,
// exits non-zero, or hangs fails the suite. Every example is written to
// terminate on its own in well under a minute.
func TestExamplesBuildAndRun(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH; cannot run examples")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("examples directory: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}

	bin := t.TempDir()
	for _, name := range dirs {
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command(goTool, "build", "-o", exe, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			run := exec.CommandContext(ctx, exe)
			out, err := run.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example did not terminate within the deadline\n%s", out)
			}
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
