package gameauthority_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ga "gameauthority"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, decoded
}

// TestServerHostsConcurrentSessions drives the HTTP/JSON API end to end:
// two independent sessions created over HTTP, played concurrently, with a
// live event stream on one of them.
func TestServerHostsConcurrentSessions(t *testing.T) {
	srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{
		ID: "alpha", Game: "prisonersdilemma", Seed: 1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create alpha: %d %v", resp.StatusCode, body)
	}
	if body["kind"] != "pure" {
		t.Fatalf("alpha kind = %v", body["kind"])
	}
	resp, body = postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{
		ID: "beta", Game: "matchingpennies", Audit: "per-round", Seed: 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create beta: %d %v", resp.StatusCode, body)
	}
	if body["kind"] != "mixed" {
		t.Fatalf("beta kind = %v", body["kind"])
	}

	// Subscribe to beta's event stream before playing.
	events, err := http.Get(srv.URL + "/sessions/beta/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	if ct := events.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	lines := make(chan string, 64)
	go func() {
		scanner := bufio.NewScanner(events.Body)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
		close(lines)
	}()
	// The handler announces the subscription before any event flows.
	select {
	case line := <-lines:
		if !strings.HasPrefix(line, ": subscribed") {
			t.Fatalf("first stream line = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event stream never opened")
	}

	// Play both sessions concurrently.
	const rounds = 10
	var wg sync.WaitGroup
	for _, id := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, body := postJSON(t, fmt.Sprintf("%s/sessions/%s/play", srv.URL, id),
				map[string]int{"rounds": rounds})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("play %s: %d %v", id, resp.StatusCode, body)
				return
			}
			results, ok := body["results"].([]any)
			if !ok || len(results) != rounds {
				t.Errorf("play %s returned %d results", id, len(results))
			}
		}(id)
	}
	wg.Wait()

	// The stream must deliver beta's play events.
	deadline := time.After(5 * time.Second)
	got := 0
	for got < rounds {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatalf("stream closed after %d events", got)
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var e struct {
				Kind  string `json:"kind"`
				Round int    `json:"round"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
			if e.Kind == "play" {
				got++
			}
		case <-deadline:
			t.Fatalf("only %d play events arrived", got)
		}
	}

	// Stats and listing reflect both sessions.
	statsResp, err := http.Get(srv.URL + "/sessions/alpha")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Rounds  int `json:"rounds"`
		Players int `json:"players"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.Rounds != rounds || stats.Players != 2 {
		t.Fatalf("alpha stats = %+v", stats)
	}

	listResp, err := http.Get(srv.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list) != 2 || list[0].ID != "alpha" || list[1].ID != "beta" {
		t.Fatalf("session list = %v", list)
	}

	// Delete alpha; it disappears from the registry.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/sessions/alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete alpha: %d", delResp.StatusCode)
	}
	gone, err := http.Get(srv.URL + "/sessions/alpha")
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still served: %d", gone.StatusCode)
	}
}

// TestServerCreateValidation exercises the HTTP error paths.
func TestServerCreateValidation(t *testing.T) {
	srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
	defer srv.Close()

	cases := []struct {
		name   string
		req    ga.CreateSessionRequest
		status int
	}{
		{"unknown game", ga.CreateSessionRequest{Game: "chess"}, http.StatusBadRequest},
		{"unknown kind", ga.CreateSessionRequest{Game: "coordination", Kind: "quantum"}, http.StatusBadRequest},
		{"unknown audit", ga.CreateSessionRequest{Game: "matchingpennies", Audit: "psychic"}, http.StatusBadRequest},
		{"rra without spec", ga.CreateSessionRequest{Kind: "rra"}, http.StatusBadRequest},
		{"distributed without spec", ga.CreateSessionRequest{Kind: "distributed"}, http.StatusBadRequest},
		{"distributed n<=3f", ga.CreateSessionRequest{
			Game: "publicgoods", Players: 4,
			Distributed: &struct {
				N int `json:"n"`
				F int `json:"f"`
			}{N: 4, F: 2},
		}, http.StatusBadRequest},
		{"unknown punishment", ga.CreateSessionRequest{
			Game: "coordination", Punishment: &ga.PunishmentSpec{Scheme: "exile"},
		}, http.StatusBadRequest},
		{"unroutable id", ga.CreateSessionRequest{
			ID: "a/b", Game: "coordination",
		}, http.StatusBadRequest},
		{"dot-dot id", ga.CreateSessionRequest{
			ID: "..", Game: "coordination",
		}, http.StatusBadRequest},
		{"audit on an explicitly pure session", ga.CreateSessionRequest{
			Kind: "pure", Game: "prisonersdilemma", Audit: "per-round",
		}, http.StatusBadRequest},
		{"rra object on a distributed session", ga.CreateSessionRequest{
			Game: "publicgoods", Players: 4,
			Distributed: &struct {
				N int `json:"n"`
				F int `json:"f"`
			}{N: 4, F: 1},
			RRA: &struct {
				Agents    int `json:"agents"`
				Resources int `json:"resources"`
			}{Agents: 4, Resources: 2},
		}, http.StatusBadRequest},
		{"pulse budget on a pure session", ga.CreateSessionRequest{
			Game: "coordination", PulseBudget: 50,
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, srv.URL+"/sessions", tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d (%v), want %d", resp.StatusCode, body, tc.status)
			}
		})
	}

	// Duplicate IDs conflict.
	if resp, _ := postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{ID: "dup", Game: "coordination"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{ID: "dup", Game: "coordination"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %d", resp.StatusCode)
	}

	// An RRA session created over HTTP plays rounds.
	resp, _ := postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{
		ID: "rra", Kind: "rra", Seed: 5,
		Punishment: &ga.PunishmentSpec{Scheme: "disconnect"},
		RRA: &struct {
			Agents    int `json:"agents"`
			Resources int `json:"resources"`
		}{Agents: 6, Resources: 3},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create rra: %d", resp.StatusCode)
	}
	playResp, body := postJSON(t, srv.URL+"/sessions/rra/play", map[string]int{"rounds": 5})
	if playResp.StatusCode != http.StatusOK {
		t.Fatalf("play rra: %d %v", playResp.StatusCode, body)
	}

	// A still-converging distributed session reports 503 (retryable), not
	// a server error.
	resp, _ = postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{
		ID: "slow", Game: "publicgoods", Players: 4,
		Distributed: &struct {
			N int `json:"n"`
			F int `json:"f"`
		}{N: 4, F: 1},
		PulseBudget: 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create slow: %d", resp.StatusCode)
	}
	budgetResp, body := postJSON(t, srv.URL+"/sessions/slow/play", map[string]int{"rounds": 1})
	if budgetResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pulse-budget play: %d %v, want 503", budgetResp.StatusCode, body)
	}
}

// TestServerSSEUnaffectedByHistoryEviction creates a history-bounded
// session over HTTP and verifies the SSE stream still delivers every
// play — including plays already evicted from the ring by the time the
// batch finishes — with intact payloads.
func TestServerSSEUnaffectedByHistoryEviction(t *testing.T) {
	srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{
		ID: "ring", Game: "prisonersdilemma", Seed: 4, HistoryLimit: 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}

	events, err := http.Get(srv.URL + "/sessions/ring/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	lines := make(chan string, 64)
	go func() {
		scanner := bufio.NewScanner(events.Body)
		for scanner.Scan() {
			lines <- scanner.Text()
		}
		close(lines)
	}()
	select {
	case line := <-lines:
		if !strings.HasPrefix(line, ": subscribed") {
			t.Fatalf("first stream line = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event stream never opened")
	}

	const rounds = 9 // far past the 2-slot ring
	resp, body = postJSON(t, srv.URL+"/sessions/ring/play", map[string]int{"rounds": rounds})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("play: %d %v", resp.StatusCode, body)
	}

	seen := make(map[int]bool)
	deadline := time.After(5 * time.Second)
	for len(seen) < rounds {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatalf("stream closed after %d events", len(seen))
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var e struct {
				Kind    string `json:"kind"`
				Round   int    `json:"round"`
				Outcome []int  `json:"outcome"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
			if e.Kind != "play" {
				continue
			}
			if seen[e.Round] {
				t.Fatalf("round %d delivered twice", e.Round)
			}
			if len(e.Outcome) != 2 {
				t.Fatalf("round %d event lost its outcome: %+v", e.Round, e)
			}
			seen[e.Round] = true
		case <-deadline:
			t.Fatalf("only %d/%d play events arrived (eviction must not drop SSE deliveries)", len(seen), rounds)
		}
	}
	for r := 0; r < rounds; r++ {
		if !seen[r] {
			t.Fatalf("round %d never delivered", r)
		}
	}
}

// TestServerPlayResultsSurviveEvictionInBatch pins the fix for batched
// /play responses on history-bounded sessions: every round in the
// response must carry its own play's data even after its ring slot was
// reused by a later round in the same request.
func TestServerPlayResultsSurviveEvictionInBatch(t *testing.T) {
	srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
	defer srv.Close()

	mk := func(id string, historyLimit int) []any {
		req := ga.CreateSessionRequest{ID: id, Game: "prisonersdilemma", Seed: 6, HistoryLimit: historyLimit}
		resp, body := postJSON(t, srv.URL+"/sessions", req)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %v", id, resp.StatusCode, body)
		}
		resp, body = postJSON(t, srv.URL+"/sessions/"+id+"/play", map[string]int{"rounds": 6})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("play %s: %d %v", id, resp.StatusCode, body)
		}
		results, ok := body["results"].([]any)
		if !ok || len(results) != 6 {
			t.Fatalf("play %s returned %d results", id, len(results))
		}
		return results
	}
	bounded := mk("bounded", 2)
	unbounded := mk("unbounded", 0)
	for i := range bounded {
		b, u := bounded[i].(map[string]any), unbounded[i].(map[string]any)
		if fmt.Sprint(b["outcome"]) != fmt.Sprint(u["outcome"]) || fmt.Sprint(b["costs"]) != fmt.Sprint(u["costs"]) {
			t.Fatalf("round %d diverges under eviction: bounded %v/%v, unbounded %v/%v",
				i, b["outcome"], b["costs"], u["outcome"], u["costs"])
		}
	}
}

// TestServerRejectsNegativePulseWorkers pins the 400 on malformed
// pulse_workers instead of a silent coercion to the auto engine.
func TestServerRejectsNegativePulseWorkers(t *testing.T) {
	srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
	defer srv.Close()
	resp, body := postJSON(t, srv.URL+"/sessions", ga.CreateSessionRequest{
		ID: "neg", Game: "publicgoods", Players: 4,
		Distributed: &struct {
			N int `json:"n"`
			F int `json:"f"`
		}{N: 4, F: 1},
		PulseWorkers: -4,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative pulse_workers: %d %v, want 400", resp.StatusCode, body)
	}
}

// TestServerResolvesCatalogGames pins the POST /sessions fallback onto
// the scenario catalog: every registry name creates a playable session at
// the requested (canonicalized) size, and unknown names still 400.
func TestServerResolvesCatalogGames(t *testing.T) {
	srv := httptest.NewServer(ga.NewServer(ga.NewAuthority()))
	defer srv.Close()

	for _, e := range ga.Catalog() {
		resp, created := postJSON(t, srv.URL+"/sessions", map[string]any{
			"id": "cat-" + e.Name, "game": e.Name, "players": 5, "seed": 3,
		})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("%s: create status %d (%v)", e.Name, resp.StatusCode, created)
		}
		if got, want := created["players"].(float64), float64(e.Players(5)); got != want {
			t.Fatalf("%s: players = %v, want canonicalized %v", e.Name, got, want)
		}
		resp, played := postJSON(t, srv.URL+"/sessions/cat-"+e.Name+"/play", map[string]any{"rounds": 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: play status %d (%v)", e.Name, resp.StatusCode, played)
		}
		if results := played["results"].([]any); len(results) != 2 {
			t.Fatalf("%s: played %d rounds, want 2", e.Name, len(results))
		}
	}

	// The canonicalizer, not an error, handles sizes a family cannot play
	// at: an even minority request rounds up exactly as in-process.
	resp, created := postJSON(t, srv.URL+"/sessions", map[string]any{
		"id": "odd", "game": "minority", "players": 4,
	})
	if resp.StatusCode != http.StatusCreated || created["players"].(float64) != 5 {
		t.Fatalf("minority players=4: status %d players %v, want 201 with 5", resp.StatusCode, created["players"])
	}

	resp, _ = postJSON(t, srv.URL+"/sessions", map[string]any{"game": "not-a-game"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown game: status %d, want 400", resp.StatusCode)
	}
}
