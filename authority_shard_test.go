package gameauthority

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAuthorityShardedStress hammers the sharded registry from many
// goroutines mixing every registry verb — Create, Get, Play, Remove,
// Host, Sessions, Len — over a shared ID space, so the race detector sees
// every lock interleaving the sharding introduced. Functional invariants:
// no operation may observe a torn registry (Get after a successful Create
// must succeed until some Remove wins it), and the final Len must equal
// creates − removes.
func TestAuthorityShardedStress(t *testing.T) {
	a := NewAuthority()
	defer a.Close()

	const (
		workers = 16
		rounds  = 60
		idSpace = 40 // shared IDs → plenty of cross-goroutine collisions
	)
	var created, removed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("stress-%d", (w*rounds+r*7)%idSpace)
				h, err := a.Create(id, PrisonersDilemma(), WithSeed(uint64(w)), WithHistoryLimit(4))
				switch {
				case err == nil:
					created.Add(1)
					if _, err := h.Play(ctx); err != nil {
						report(fmt.Errorf("play %s: %w", id, err))
					}
					got, err := a.Get(id)
					// A concurrent Remove may have won the ID; any other
					// failure means the registry tore.
					if err != nil && !errors.Is(err, ErrSessionNotFound) {
						report(fmt.Errorf("get %s: %w", id, err))
					}
					if err == nil && got.ID() != id {
						report(fmt.Errorf("get %s returned id %s", id, got.ID()))
					}
					if err := a.Remove(id); err == nil {
						removed.Add(1)
					} else if !errors.Is(err, ErrSessionNotFound) {
						report(fmt.Errorf("remove %s: %w", id, err))
					}
				case errors.Is(err, ErrSessionExists):
					// Lost the race; play whoever holds the ID instead.
					if h, err := a.Get(id); err == nil {
						if _, err := h.Play(ctx); err != nil {
							report(fmt.Errorf("play loser %s: %w", id, err))
						}
					}
				default:
					report(fmt.Errorf("create %s: %w", id, err))
				}
				if r%16 == 0 {
					// Auto-assigned IDs exercise the counter path concurrently.
					h, err := a.Create("", CoordinationGame(), WithSeed(uint64(r)))
					if err != nil {
						report(fmt.Errorf("auto create: %w", err))
						continue
					}
					created.Add(1)
					if err := a.Remove(h.ID()); err != nil {
						report(fmt.Errorf("auto remove %s: %w", h.ID(), err))
					} else {
						removed.Add(1)
					}
				}
				if r%8 == 0 {
					for _, h := range a.Sessions() {
						_ = h.Stats()
					}
					_ = a.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := a.Len(), int(created.Load()-removed.Load()); got != want {
		t.Fatalf("Len() = %d after %d creates − %d removes, want %d",
			got, created.Load(), removed.Load(), want)
	}
}

// TestAuthorityAutoIDSkipsHandRegistered pins the auto-assignment loop:
// hand-hosting an ID ahead of the counter must be skipped, not clobbered
// and not an error.
func TestAuthorityAutoIDSkipsHandRegistered(t *testing.T) {
	a := NewAuthority()
	defer a.Close()

	s, err := New(PrisonersDilemma())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Host("s-1", s); err != nil {
		t.Fatal(err)
	}
	h, err := a.Create("", CoordinationGame())
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "s-1" {
		t.Fatalf("auto-assigned ID clobbered the hand-registered session")
	}
	if h.ID() != "s-2" {
		t.Fatalf("auto ID = %s, want s-2 (skip past the taken s-1)", h.ID())
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

// TestAuthoritySessionsSortedAcrossShards pins that the listing stays
// ID-sorted even though sessions now live in many shard maps.
func TestAuthoritySessionsSortedAcrossShards(t *testing.T) {
	a := NewAuthority()
	defer a.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if _, err := a.Create(fmt.Sprintf("z-%02d", i), PrisonersDilemma()); err != nil {
			t.Fatal(err)
		}
	}
	list := a.Sessions()
	if len(list) != n {
		t.Fatalf("Sessions() returned %d entries, want %d", len(list), n)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID() >= list[i].ID() {
			t.Fatalf("Sessions() not sorted: %s ≥ %s", list[i-1].ID(), list[i].ID())
		}
	}
}
