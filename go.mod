module gameauthority

go 1.24
