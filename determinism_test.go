package gameauthority_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	ga "gameauthority"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/determinism_golden.json from the current engine")

const goldenPath = "testdata/determinism_golden.json"

// determinismScenarios is the cross-driver determinism fixture: one
// representative configuration per driver (plus a deviant variant, so the
// deviation layer is pinned too). Transcripts must be byte-identical
// run-to-run and match the checked-in golden hashes — an engine refactor
// that silently changes play semantics fails here before it ships.
func determinismScenarios(t *testing.T) map[string]func() (ga.Session, int) {
	t.Helper()
	mustNew := func(g ga.Game, opts ...ga.Option) ga.Session {
		s, err := ga.New(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	uniform := func(g ga.Game) func(int, ga.Profile) ga.MixedProfile {
		mp := make(ga.MixedProfile, g.NumPlayers())
		for i := range mp {
			mp[i] = ga.Uniform(g.NumActions(i))
		}
		return func(int, ga.Profile) ga.MixedProfile { return mp }
	}
	braess, err := ga.BraessRouting(4)
	if err != nil {
		t.Fatal(err)
	}
	pennies := ga.MatchingPennies()
	pg, err := ga.PublicGoods(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]func() (ga.Session, int){
		"pure-braess": func() (ga.Session, int) {
			return mustNew(braess, ga.WithSeed(42),
				ga.WithPunishment(ga.NewDisconnectScheme(4, 0))), 16
		},
		"pure-braess-deviant": func() (ga.Session, int) {
			return mustNew(braess, ga.WithSeed(42),
				ga.WithPunishment(ga.NewDisconnectScheme(4, 0)),
				ga.WithDeviant(1, ga.Freerider())), 16
		},
		"mixed-pennies": func() (ga.Session, int) {
			return mustNew(pennies, ga.WithSeed(42),
				ga.WithStrategies(uniform(pennies)),
				ga.WithAudit(ga.AuditPerRound),
				ga.WithPunishment(ga.NewDisconnectScheme(2, 0))), 16
		},
		"rra-8x4": func() (ga.Session, int) {
			return mustNew(nil, ga.WithSeed(42), ga.WithRRA(8, 4),
				ga.WithPunishment(ga.NewDisconnectScheme(8, 0))), 16
		},
		"dist-publicgoods": func() (ga.Session, int) {
			// The lockstep engine is pinned here; the worker pool is
			// proven execution-identical by core's equivalence property
			// tests, so this transcript covers both.
			return mustNew(pg, ga.WithSeed(42),
				ga.WithDistributed(4, 1, nil),
				ga.WithPulseWorkers(1)), 6
		},
	}
}

// transcript renders a session's full history canonically: every field of
// every play, floats in shortest round-trip form, so any semantic drift
// changes the bytes.
func transcript(t *testing.T, s ga.Session, rounds int) string {
	t.Helper()
	if _, err := s.Run(context.Background(), rounds); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, res := range s.Results() {
		fmt.Fprintf(&b, "round=%d outcome=%v convicted=%v excluded=%v pulse=%d", res.Round, res.Outcome, res.Convicted, res.Excluded, res.Pulse)
		b.WriteString(" costs=[")
		for i, c := range res.Costs {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
		}
		b.WriteString("] fouls=[")
		for i, f := range res.Verdict.Fouls {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%s", f.Agent, f.Reason)
		}
		b.WriteString("]\n")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestCrossDriverDeterminism replays every fixture twice and against the
// checked-in golden hash. Regenerate with:
//
//	go test -run TestCrossDriverDeterminism -update .
func TestCrossDriverDeterminism(t *testing.T) {
	scenarios := determinismScenarios(t)

	golden := map[string]string{}
	if data, err := os.ReadFile(goldenPath); err == nil {
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	} else if !*updateGolden {
		t.Fatalf("read %s: %v (run with -update to create it)", goldenPath, err)
	}

	got := map[string]string{}
	for name, build := range scenarios {
		t.Run(name, func(t *testing.T) {
			s1, rounds := build()
			first := transcript(t, s1, rounds)
			s2, _ := build()
			second := transcript(t, s2, rounds)
			if first != second {
				t.Fatalf("run-to-run divergence:\n--- first ---\n%s--- second ---\n%s", first, second)
			}
			if first == "" {
				t.Fatalf("empty transcript")
			}
			sum := sha256.Sum256([]byte(first))
			hash := hex.EncodeToString(sum[:])
			got[name] = hash
			if *updateGolden {
				return
			}
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no golden hash for %q (run with -update)", name)
			}
			if hash != want {
				t.Errorf("transcript hash %s, golden %s — engine semantics changed; if intentional, re-run with -update and review the diff", hash, want)
			}
		})
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(got))
		for name := range got {
			names = append(names, name)
		}
		sort.Strings(names)
		ordered := make(map[string]string, len(got))
		for _, name := range names {
			ordered[name] = got[name]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
	}

	// Stale golden entries indicate a renamed fixture — fail loudly so
	// the golden file cannot rot.
	if !*updateGolden {
		for name := range golden {
			if _, ok := scenarios[name]; !ok {
				t.Errorf("golden entry %q has no fixture (re-run with -update)", name)
			}
		}
	}
}
