package gameauthority

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"gameauthority/internal/audit"
	"gameauthority/internal/metrics"
	"gameauthority/internal/obs"
)

// maxPlayRounds caps rounds per play request on both transports (HTTP
// and WebSocket).
const maxPlayRounds = 100000

// sseWriteTimeout bounds one SSE event write: a subscriber that cannot
// absorb an event within it is considered dead and its connection is
// closed (counted in StreamTimeouts).
const sseWriteTimeout = 10 * time.Second

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

type serverConfig struct {
	webSocket bool
	debug     bool
}

// WithWebSocket enables or disables the /ws streaming endpoint (enabled
// by default).
func WithWebSocket(enabled bool) ServerOption {
	return func(c *serverConfig) { c.webSocket = enabled }
}

// WithDebug mounts the live-profiling plane (disabled by default):
// net/http/pprof under /debug/pprof/ and the tracer capture endpoint at
// GET /debug/trace?plays=N. Enable it only on operator-facing listeners —
// profiles and traces expose internals no public client should see.
func WithDebug(enabled bool) ServerOption {
	return func(c *serverConfig) { c.debug = enabled }
}

// route registers a handler wrapped with a per-route latency histogram.
// The route label is the mux pattern, so series cardinality is fixed at
// the size of the route table. Streaming routes (/ws, SSE events)
// register directly: their "latency" is the connection lifetime.
func route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	hist := obs.NewHistogram("gameauthority_http_request_seconds",
		"HTTP request latency by route.", obs.Label{Key: "route", Value: pattern})
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Record(time.Since(t0))
	})
}

// NewServer exposes an Authority as an HTTP/JSON API:
//
//	POST   /sessions                 create a session (CreateSessionRequest)
//	GET    /sessions                 list hosted sessions
//	GET    /sessions/{id}            session stats (incl. conviction counts)
//	POST   /sessions/{id}/play       run plays ({"rounds": k}, default 1)
//	POST   /sessions/{id}/snapshot   snapshot (and persist) session state
//	GET    /sessions/{id}/events     live event stream (server-sent events)
//	DELETE /sessions/{id}            close and unregister the session
//	GET    /snapshots                list persisted compacted snapshots
//	GET    /deviants                 list the deviation-strategy catalog
//	GET    /metrics                  Prometheus text exposition of host counters
//	GET    /ws                       binary streaming transport (internal/wire
//	                                 over WebSocket; see DESIGN.md §10)
//	GET    /debug/pprof/             live profiling endpoints (WithDebug only)
//	GET    /debug/trace              capture a play trace as Chrome
//	                                 trace_event JSON (WithDebug only)
//
// Sessions are independent and may be created and played concurrently;
// each session serializes its own plays. On a store-backed authority
// (WithStore) created sessions are durable, and a request for a session
// id the registry misses restores it from the store before answering —
// the restore-on-miss path that makes a crashed host's sessions
// addressable again without an explicit recovery pass.
func NewServer(a *Authority, opts ...ServerOption) http.Handler {
	cfg := serverConfig{webSocket: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	if cfg.webSocket {
		mux.Handle("GET /ws", a.streamHub())
	}
	route(mux, "POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		handleCreate(a, w, r)
	})
	route(mux, "GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"sessions": a.Len(),
			"durable":  a.getStore() != nil,
		})
	})
	route(mux, "GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = a.counters.WritePrometheus(w)
		_ = obs.Default.WritePrometheus(w)
	})
	route(mux, "GET /snapshots", func(w http.ResponseWriter, _ *http.Request) {
		handleSnapshotList(a, w)
	})
	route(mux, "POST /sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		withSession(a, w, r, handleSnapshot)
	})
	route(mux, "GET /deviants", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, deviantInfos())
	})
	route(mux, "GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		handleList(a, w)
	})
	route(mux, "GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		withSession(a, w, r, handleStats)
	})
	route(mux, "POST /sessions/{id}/play", func(w http.ResponseWriter, r *http.Request) {
		withSession(a, w, r, handlePlay)
	})
	mux.HandleFunc("GET /sessions/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		withSession(a, w, r, handleEvents)
	})
	route(mux, "DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := a.Remove(r.PathValue("id")); err != nil {
			status := http.StatusNotFound
			if errors.Is(err, ErrDurability) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	if cfg.debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("GET /debug/trace", handleTraceCapture)
	}
	return mux
}

// traceCaptureMu serializes /debug/trace captures: each one owns the
// process-wide tracer for its duration.
var traceCaptureMu sync.Mutex

// handleTraceCapture arms the tracer, waits until ?plays=N sampled root
// plays complete (bounded by ?wait, default 5s; ?sample=K admits one
// play in K), and streams the span ring as Chrome trace_event JSON —
// loadable in chrome://tracing or Perfetto.
func handleTraceCapture(w http.ResponseWriter, r *http.Request) {
	plays := 1
	if raw := r.URL.Query().Get("plays"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid plays %q", raw))
			return
		}
		plays = n
	}
	sample := 1
	if raw := r.URL.Query().Get("sample"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid sample %q", raw))
			return
		}
		sample = n
	}
	wait := 5 * time.Second
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid wait %q", raw))
			return
		}
		wait = d
	}
	if !traceCaptureMu.TryLock() {
		writeError(w, http.StatusConflict, fmt.Errorf("another trace capture is in progress"))
		return
	}
	defer traceCaptureMu.Unlock()
	obs.DefaultTracer.Enable(obs.DefaultTraceRing, sample)
	defer obs.DefaultTracer.Disable()
	deadline := time.Now().Add(wait)
	for obs.DefaultTracer.RootCount() < uint64(plays) && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	obs.DefaultTracer.Disable()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.DefaultTracer.WriteJSON(w)
}

// CreateSessionRequest is the JSON body of POST /sessions. Game names a
// built-in game ("matchingpennies", "matchingpennies-manipulated",
// "prisonersdilemma", "coordination", "publicgoods") or any scenario-
// catalog family ("braess", "congestion", "coordination-n", "firstprice",
// "minority", "pd", "publicgoods-punish", "secondprice"), sized by
// Players (default 4, canonicalized per family — e.g. minority rounds up
// to odd); RRA sessions omit it. Kind is inferred when empty:
// "distributed" if
// Distributed is set, "rra" if RRA is set, "mixed" if Audit is set,
// otherwise "pure". Mixed sessions play the uniform strategy profile.
type CreateSessionRequest struct {
	ID      string  `json:"id,omitempty"`
	Game    string  `json:"game,omitempty"`
	Players int     `json:"players,omitempty"` // publicgoods, minority
	Benefit float64 `json:"benefit,omitempty"` // publicgoods
	Kind    string  `json:"kind,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`

	Punishment *PunishmentSpec `json:"punishment,omitempty"`

	Audit        string  `json:"audit,omitempty"` // off, per-round, batched, sampled, statistical
	EpochLen     int     `json:"epoch_len,omitempty"`
	SampleProb   float64 `json:"sample_prob,omitempty"`
	Window       int     `json:"window,omitempty"`
	ChiThreshold float64 `json:"chi_threshold,omitempty"`

	RRA *struct {
		Agents    int `json:"agents"`
		Resources int `json:"resources"`
	} `json:"rra,omitempty"`

	Distributed *struct {
		N int `json:"n"`
		F int `json:"f"`
	} `json:"distributed,omitempty"`
	// Deviant attaches a player-level selfish strategy from the deviation
	// catalog (GET /deviants) to one player — the HTTP face of
	// WithDeviant. Any session kind accepts it.
	Deviant     *DeviantSpec `json:"deviant,omitempty"`
	PulseBudget int          `json:"pulse_budget,omitempty"`
	// PulseWorkers selects the distributed pulse engine (0 auto, 1
	// lockstep, >1 worker-pool width).
	PulseWorkers int `json:"pulse_workers,omitempty"`
	// HistoryLimit bounds the retained play history (0 = unbounded); any
	// session kind accepts it.
	HistoryLimit int `json:"history_limit,omitempty"`
}

// DeviantSpec selects a deviation strategy over HTTP: Strategy names a
// catalog entry ("always-defect", "best-response-liar",
// "commitment-cheat", "distribution-skewer", "freerider"); Prob
// parameterizes the skewer (0 = its default).
type DeviantSpec struct {
	Player   int     `json:"player"`
	Strategy string  `json:"strategy"`
	Prob     float64 `json:"prob,omitempty"`
}

// deviantInfo is one GET /deviants catalog entry.
type deviantInfo struct {
	Name string `json:"name"`
}

func deviantInfos() []deviantInfo {
	var out []deviantInfo
	for _, d := range DeviantStrategies() {
		out = append(out, deviantInfo{Name: d.Name()})
	}
	return out
}

// PunishmentSpec selects an executive punishment scheme over HTTP.
type PunishmentSpec struct {
	Scheme    string  `json:"scheme"` // disconnect, reputation, deposit
	Budget    float64 `json:"budget,omitempty"`
	Decay     float64 `json:"decay,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Regen     float64 `json:"regen,omitempty"`
	Escrow    float64 `json:"escrow,omitempty"`
	Fine      float64 `json:"fine,omitempty"`
}

type sessionInfo struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Players int    `json:"players"`
	Rounds  int    `json:"rounds"`
}

type statsResponse struct {
	sessionInfo
	CumulativeCost []float64 `json:"cumulative_cost,omitempty"`
	Excluded       []bool    `json:"excluded,omitempty"`
	Fouls          int       `json:"fouls"`
	Convictions    int       `json:"convictions"`
	Commitments    int64     `json:"commitments,omitempty"`
	Reveals        int64     `json:"reveals,omitempty"`
	Agreements     int64     `json:"agreements,omitempty"`
	MaxLoad        int64     `json:"max_load,omitempty"`
	Pulses         int64     `json:"pulses,omitempty"`
	Messages       int64     `json:"messages,omitempty"`
}

type roundResponse struct {
	Round     int        `json:"round"`
	Outcome   []int      `json:"outcome"`
	Fouls     []foulInfo `json:"fouls,omitempty"`
	Convicted []int      `json:"convicted,omitempty"`
	Excluded  []int      `json:"excluded,omitempty"`
	Costs     []float64  `json:"costs,omitempty"`
	Pulse     int        `json:"pulse,omitempty"`
}

type foulInfo struct {
	Agent  int    `json:"agent"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

type eventInfo struct {
	Kind    string     `json:"kind"`
	Round   int        `json:"round"`
	Dropped int64      `json:"dropped,omitempty"`
	Outcome []int      `json:"outcome,omitempty"`
	Costs   []float64  `json:"costs,omitempty"`
	Fouls   []foulInfo `json:"fouls,omitempty"`
	// Agent and Winner are pointers so that agent 0 / candidate 0 survive
	// the wire format: the fields appear exactly on the event kinds that
	// define them (conviction, election).
	Agent  *int   `json:"agent,omitempty"`
	Winner *int   `json:"winner,omitempty"`
	Pulse  int    `json:"pulse,omitempty"`
	Detail string `json:"detail,omitempty"`
}

func handleCreate(a *Authority, w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	// CreateFromSpec journals the spec on a store-backed authority, making
	// the session durable; without a store it is exactly build+Create.
	h, err := a.CreateFromSpec(req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrSessionExists):
			status = http.StatusConflict
		case errors.Is(err, ErrDurability):
			// The request was valid; the durable store could not record
			// it — a server-side condition, not a client error.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, infoFor(h))
}

// Request size caps: the HTTP surface is open to arbitrary clients, so
// session sizing is bounded before any construction cost is paid. The
// in-process API has no such caps (internal/game still guards dense
// table allocations).
const (
	// maxRequestPlayers bounds the game size of table-backed scenarios
	// (dense cost tables grow exponentially in the player count).
	maxRequestPlayers = 20
	// maxRequestProcs bounds the distributed mesh (n² links, n³ messages
	// per agreement pulse).
	maxRequestProcs = 64
	// maxRequestRRA bounds the RRA harness's agents and resources.
	maxRequestRRA = 1 << 16
)

// build translates the wire request into a game plus functional options —
// the HTTP surface is a thin skin over the same New entry point.
func (req *CreateSessionRequest) build() (Game, []Option, error) {
	if req.Players > maxRequestPlayers {
		return nil, nil, fmt.Errorf("players %d exceeds the request cap %d", req.Players, maxRequestPlayers)
	}
	g, err := gameByName(req.Game, req.Players, req.Benefit)
	if err != nil {
		return nil, nil, err
	}
	opts := []Option{WithSeed(req.Seed)}

	kind := strings.ToLower(req.Kind)
	if kind == "" {
		switch {
		case req.Distributed != nil:
			kind = "distributed"
		case req.RRA != nil:
			kind = "rra"
		case req.Audit != "":
			kind = "mixed"
		default:
			kind = "pure"
		}
	}

	players := 0
	if g != nil {
		players = g.NumPlayers()
	}

	// Reject fields that conflict with the resolved kind instead of
	// silently dropping them — a client asking for auditing must not get
	// an unaudited session back.
	reject := func(field, appliesTo string) error {
		return fmt.Errorf("%s only applies to %s sessions (got kind %q)", field, appliesTo, kind)
	}
	if kind != "mixed" && req.Audit != "" {
		return nil, nil, reject("audit", "mixed")
	}
	if kind != "rra" && req.RRA != nil {
		return nil, nil, reject("rra", "rra")
	}
	if kind != "distributed" && req.Distributed != nil {
		return nil, nil, reject("distributed", "distributed")
	}
	if kind != "distributed" && req.PulseBudget != 0 {
		return nil, nil, reject("pulse_budget", "distributed")
	}
	if kind != "distributed" && req.PulseWorkers != 0 {
		return nil, nil, reject("pulse_workers", "distributed")
	}
	if req.HistoryLimit != 0 {
		opts = append(opts, WithHistoryLimit(req.HistoryLimit))
	}

	switch kind {
	case "pure":
	case "mixed":
		if g == nil {
			return nil, nil, fmt.Errorf("mixed sessions require a game")
		}
		opts = append(opts, WithStrategies(uniformStrategies(g)))
		if req.Audit != "" {
			mode, auditOpts, err := auditByName(req)
			if err != nil {
				return nil, nil, err
			}
			opts = append(opts, WithAudit(mode, auditOpts...))
		}
	case "rra":
		if req.RRA == nil {
			return nil, nil, fmt.Errorf("rra sessions require the rra object")
		}
		if g != nil {
			return nil, nil, fmt.Errorf("rra sessions build their own game; omit game")
		}
		if req.RRA.Agents > maxRequestRRA || req.RRA.Resources > maxRequestRRA {
			return nil, nil, fmt.Errorf("rra size %d×%d exceeds the request cap %d",
				req.RRA.Agents, req.RRA.Resources, maxRequestRRA)
		}
		players = req.RRA.Agents
		opts = append(opts, WithRRA(req.RRA.Agents, req.RRA.Resources))
	case "distributed":
		if req.Distributed == nil {
			return nil, nil, fmt.Errorf("distributed sessions require the distributed object")
		}
		if req.Distributed.N > maxRequestProcs {
			return nil, nil, fmt.Errorf("distributed n %d exceeds the request cap %d",
				req.Distributed.N, maxRequestProcs)
		}
		opts = append(opts, WithDistributed(req.Distributed.N, req.Distributed.F, nil))
		if req.PulseBudget > 0 {
			opts = append(opts, WithPulseBudget(req.PulseBudget))
		}
		if req.PulseWorkers != 0 {
			// Pass negatives through too: core rejects them with ErrConfig
			// so the client gets a 400 instead of a silently-coerced engine.
			opts = append(opts, WithPulseWorkers(req.PulseWorkers))
		}
		players = req.Distributed.N
	default:
		return nil, nil, fmt.Errorf("unknown session kind %q", req.Kind)
	}

	scheme, err := schemeFromSpec(req.Punishment, players)
	if err != nil {
		return nil, nil, err
	}
	if scheme == nil && kind == "mixed" && req.Audit != "" && strings.ToLower(req.Audit) != "off" {
		// Auditing without an executive is a configuration error in core;
		// default to the paper's disconnection scheme.
		scheme = NewDisconnectScheme(players, 0)
	}
	if scheme != nil {
		opts = append(opts, WithPunishment(scheme))
	}
	if req.Deviant != nil {
		strategy, err := deviantFromSpec(req.Deviant)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, WithDeviant(req.Deviant.Player, strategy))
	}
	return g, opts, nil
}

// deviantFromSpec resolves a wire deviant spec against the catalog.
// Invalid parameters are rejected, never silently clamped: a client
// probing a specific skew rate must not get a session that behaves
// differently than requested.
func deviantFromSpec(spec *DeviantSpec) (DeviantStrategy, error) {
	name := strings.ToLower(spec.Strategy)
	if spec.Prob != 0 {
		if name != "distribution-skewer" {
			return nil, fmt.Errorf("prob only applies to the distribution-skewer strategy (got %q)", spec.Strategy)
		}
		if spec.Prob < 0 || spec.Prob > 1 {
			return nil, fmt.Errorf("deviant prob %v must be in (0,1]", spec.Prob)
		}
		return DistributionSkewer(spec.Prob), nil
	}
	d, ok := DeviantByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown deviant strategy %q (see GET /deviants)", spec.Strategy)
	}
	return d, nil
}

func gameByName(name string, players int, benefit float64) (Game, error) {
	switch strings.ToLower(name) {
	case "":
		return nil, nil
	case "matchingpennies":
		return MatchingPennies(), nil
	case "matchingpennies-manipulated":
		return MatchingPenniesManipulated(), nil
	case "prisonersdilemma":
		return PrisonersDilemma(), nil
	case "coordination":
		return CoordinationGame(), nil
	case "publicgoods":
		if players <= 0 {
			players = 4
		}
		if benefit <= 0 {
			benefit = 2
		}
		return PublicGoods(players, benefit)
	// "minority" intentionally has no legacy case: the catalog fallback
	// builds it with the same odd-n canonicalization the in-process path
	// uses (default players 4 → 5, matching the old HTTP default).
	default:
		// Fall through to the scenario catalog: any registry name builds at
		// the requested (canonicalized) size.
		if e, ok := ScenarioByName(strings.ToLower(name)); ok {
			if players <= 0 {
				players = 4
			}
			return e.Build(e.Players(players))
		}
		return nil, fmt.Errorf("unknown game %q", name)
	}
}

func auditByName(req *CreateSessionRequest) (AuditMode, []AuditOption, error) {
	var opts []AuditOption
	switch strings.ToLower(req.Audit) {
	case "off":
		return AuditOff, nil, nil
	case "per-round", "perround":
		return AuditPerRound, nil, nil
	case "batched":
		epoch := req.EpochLen
		if epoch <= 0 {
			epoch = 16
		}
		return AuditBatched, append(opts, EpochLen(epoch)), nil
	case "sampled":
		p := req.SampleProb
		if p <= 0 {
			p = 0.2
		}
		return AuditSampled, append(opts, SampleProb(p)), nil
	case "statistical":
		window, chi := req.Window, req.ChiThreshold
		if window <= 0 {
			window = 50
		}
		if chi <= 0 {
			chi = 6.63
		}
		return AuditStatistical, append(opts, Window(window), ChiThreshold(chi)), nil
	default:
		return 0, nil, fmt.Errorf("unknown audit discipline %q", req.Audit)
	}
}

func schemeFromSpec(spec *PunishmentSpec, players int) (PunishmentScheme, error) {
	if spec == nil {
		return nil, nil
	}
	if players <= 0 {
		return nil, fmt.Errorf("punishment scheme needs a player count")
	}
	switch strings.ToLower(spec.Scheme) {
	case "disconnect":
		return NewDisconnectScheme(players, spec.Budget), nil
	case "reputation":
		return NewReputationScheme(players, spec.Decay, spec.Threshold, spec.Regen), nil
	case "deposit":
		return NewDepositScheme(players, spec.Escrow, spec.Fine), nil
	default:
		return nil, fmt.Errorf("unknown punishment scheme %q", spec.Scheme)
	}
}

func uniformStrategies(g Game) func(int, Profile) MixedProfile {
	mp := make(MixedProfile, g.NumPlayers())
	for i := range mp {
		mp[i] = Uniform(g.NumActions(i))
	}
	return func(int, Profile) MixedProfile { return mp }
}

func withSession(a *Authority, w http.ResponseWriter, r *http.Request,
	fn func(*HostedSession, http.ResponseWriter, *http.Request)) {
	// Restore-on-miss: an id the registry lost to a crash is revived from
	// the durable store before the request is answered.
	h, err := a.GetOrRecover(r.Context(), r.PathValue("id"))
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ErrDurability) {
			// The store couldn't answer; the session may well exist.
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	fn(h, w, r)
}

// snapshotResponse is the wire form of a SessionSnapshot.
type snapshotResponse struct {
	ID             string    `json:"id"`
	Kind           string    `json:"kind"`
	Players        int       `json:"players"`
	Rounds         int       `json:"rounds"`
	Fouls          int       `json:"fouls"`
	Convictions    int       `json:"convictions"`
	CumulativeCost []float64 `json:"cumulative_cost,omitempty"`
	Excluded       []bool    `json:"excluded,omitempty"`
	Closed         bool      `json:"closed"`
	Digest         string    `json:"digest"`
	// Persisted reports whether the snapshot was written to the durable
	// store (false on volatile sessions or store-less authorities).
	Persisted bool `json:"persisted"`
}

func snapshotFor(id string, snap SessionSnapshot, persisted bool) snapshotResponse {
	return snapshotResponse{
		ID:             id,
		Kind:           snap.Kind.String(),
		Players:        snap.Players,
		Rounds:         snap.Rounds,
		Fouls:          snap.Fouls,
		Convictions:    snap.Convictions,
		CumulativeCost: snap.CumulativeCost,
		Excluded:       snap.Excluded,
		Closed:         snap.Closed,
		Digest:         snap.Digest,
		Persisted:      persisted,
	}
}

func handleSnapshot(h *HostedSession, w http.ResponseWriter, _ *http.Request) {
	snap, persisted, err := h.a.snapshotHosted(h, h.Session.Snapshot())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotFor(h.ID(), snap, persisted))
}

func handleSnapshotList(a *Authority, w http.ResponseWriter) {
	out := make([]snapshotResponse, 0)
	st := a.getStore()
	if st == nil {
		writeJSON(w, http.StatusOK, out)
		return
	}
	infos, err := st.Snapshots()
	if err != nil {
		// Same degraded-store condition every other route maps to 503.
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("%w: %v", ErrDurability, err))
		return
	}
	for _, info := range infos {
		var snap SessionSnapshot
		if err := json.Unmarshal(info.Payload, &snap); err != nil {
			continue // a torn snapshot never lists; recovery falls back to the WAL
		}
		out = append(out, snapshotFor(info.ID, snap, true))
	}
	writeJSON(w, http.StatusOK, out)
}

func handleList(a *Authority, w http.ResponseWriter) {
	sessions := a.Sessions()
	out := make([]sessionInfo, 0, len(sessions))
	for _, h := range sessions {
		out = append(out, infoFor(h))
	}
	writeJSON(w, http.StatusOK, out)
}

func handleStats(h *HostedSession, w http.ResponseWriter, _ *http.Request) {
	st := h.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		sessionInfo:    infoFor(h),
		CumulativeCost: st.CumulativeCost,
		Excluded:       st.Excluded,
		Fouls:          st.Fouls,
		Convictions:    st.Convictions,
		Commitments:    st.Protocol.Commitments,
		Reveals:        st.Protocol.Reveals,
		Agreements:     st.Protocol.Agreements,
		MaxLoad:        st.MaxLoad,
		Pulses:         st.Pulses,
		Messages:       st.Messages,
	})
}

func handlePlay(h *HostedSession, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Rounds int `json:"rounds"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
			return
		}
	}
	// ?n= selects the batched path: the N rounds execute under one session
	// lock and journal as a single batch WAL record instead of N play
	// records. It overrides any body "rounds" field.
	batched := false
	rounds := req.Rounds
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid batch size %q", raw))
			return
		}
		batched = true
		rounds = n
	}
	if rounds <= 0 {
		rounds = 1
	}
	if rounds > maxPlayRounds {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rounds %d exceeds the per-request cap %d", rounds, maxPlayRounds))
		return
	}
	results := make([]roundResponse, 0, rounds)
	fail := func(err error, partial *RoundResult) {
		if r.Context().Err() != nil {
			return // the client is gone; nothing to report to
		}
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBreakerOpen):
			// The breaker failed the play fast — no round executed, no
			// result to report. The client backs off and retries after
			// the cooldown.
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrPulseBudget):
			// Documented-recoverable: the session is healthy but still
			// re-converging; the client should simply retry.
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrDurability):
			// The play executed — the session advanced a round — but
			// its journal write failed. Report the result so the
			// client's view stays consistent, with 503 marking the
			// degraded store.
			status = http.StatusServiceUnavailable
			if partial != nil {
				results = append(results, roundFor(*partial))
			}
		}
		writeJSON(w, status, map[string]any{
			"error":   err.Error(),
			"results": results,
		})
	}
	if batched {
		_, err := h.PlayN(r.Context(), rounds, func(res RoundResult) error {
			results = append(results, roundFor(res))
			return nil
		})
		if err != nil {
			// The sink already collected every completed round, so a
			// durability failure needs no extra partial result here.
			fail(err, nil)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
		return
	}
	for i := 0; i < rounds; i++ {
		res, err := h.Play(r.Context())
		if err != nil {
			fail(err, &res)
			return
		}
		results = append(results, roundFor(res))
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func handleEvents(h *HostedSession, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": subscribed %s\n\n", h.ID())
	flusher.Flush()

	// Like Events, but counts overflow instead of dropping silently: a
	// slow reader sees a "lag" event naming how many events it missed, so
	// its view of the session is never wrong without it knowing.
	var counters *metrics.Counters
	if h.a != nil {
		counters = &h.a.counters
	}
	events := make(chan Event, 256)
	var mu sync.Mutex
	var dropped int64
	closed := false
	unsubscribe := h.Subscribe(ObserverFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		select {
		case events <- e:
		default:
			dropped++
			if counters != nil {
				counters.EventsDropped.Add(1)
			}
		}
	}))
	defer func() {
		unsubscribe()
		mu.Lock()
		closed = true
		mu.Unlock()
	}()

	// Bound every write: a subscriber only buffers 256 events of lag, and
	// one that cannot absorb a write within the deadline is truly dead —
	// close it instead of letting the handler goroutine linger forever.
	rc := http.NewResponseController(w)
	write := func(info eventInfo) bool {
		payload, err := json.Marshal(info)
		if err != nil {
			return true
		}
		rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
		_, err = fmt.Fprintf(w, "data: %s\n\n", payload)
		if err == nil {
			err = rc.Flush()
		}
		if err == nil {
			return true
		}
		if counters != nil && r.Context().Err() == nil {
			// The reader did not go away cleanly; it stalled past the
			// write deadline.
			counters.StreamTimeouts.Add(1)
		}
		return false
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-events:
			mu.Lock()
			lag := dropped
			dropped = 0
			mu.Unlock()
			if lag > 0 && !write(eventInfo{Kind: "lag", Dropped: lag}) {
				return
			}
			if !write(eventFor(e)) {
				return
			}
		}
	}
}

func infoFor(h *HostedSession) sessionInfo {
	st := h.Stats()
	return sessionInfo{ID: h.ID(), Kind: st.Kind.String(), Players: st.Players, Rounds: st.Rounds}
}

func roundFor(res RoundResult) roundResponse {
	// Clone before accumulating: on a history-bounded session the result's
	// slices alias ring slots that later plays in the same batch reuse.
	res = res.Clone()
	return roundResponse{
		Round:     res.Round,
		Outcome:   res.Outcome,
		Fouls:     foulsFor(res.Verdict.Fouls),
		Convicted: res.Convicted,
		Excluded:  res.Excluded,
		Costs:     res.Costs,
		Pulse:     res.Pulse,
	}
}

func foulsFor(fouls []audit.Foul) []foulInfo {
	out := make([]foulInfo, 0, len(fouls))
	for _, f := range fouls {
		out = append(out, foulInfo{Agent: f.Agent, Reason: f.Reason.String(), Detail: f.Detail})
	}
	return out
}

func eventFor(e Event) eventInfo {
	info := eventInfo{
		Kind:    e.Kind.String(),
		Round:   e.Round,
		Outcome: e.Outcome,
		Costs:   e.Costs,
		Fouls:   foulsFor(e.Fouls),
		Pulse:   e.Pulse,
		Detail:  e.Detail,
	}
	switch e.Kind {
	case EventConviction:
		agent := e.Agent
		info.Agent = &agent
	case EventElection:
		winner := e.Winner
		info.Winner = &winner
	}
	return info
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
