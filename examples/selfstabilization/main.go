// Self(ish)-stabilization (§4) end to end: a distributed authority cluster
// is hit by a transient fault that scrambles every processor's state —
// clocks, agreement instances, evidence, even the punish ledgers. The
// self-stabilizing clock re-converges, the next wrap restarts the §3.3
// protocol cleanly, and every honest replica records identical plays again.
//
// Run with: go run ./examples/selfstabilization
package main

import (
	"fmt"
	"log"

	ga "gameauthority"
	"gameauthority/internal/core"
	"gameauthority/internal/prng"
)

func main() {
	const (
		n, f = 4, 1
	)
	g, err := ga.PublicGoods(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	s, err := core.NewDistSession(n, f, g, make([]*ga.Agent, n), 99, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed authority: n=%d f=%d, %d pulses per play\n\n", n, f, ga.PulsesPerPlay(f))

	report := func(stage string, plays int) {
		s.RunPlays(plays)
		res := s.Procs[s.Honest[0]].Results()
		last := "none"
		if len(res) > 0 {
			last = fmt.Sprintf("%v @pulse %d", res[len(res)-1].Outcome, res[len(res)-1].Pulse)
		}
		consistency := "consistent"
		if err := s.ConsistentResults(3); err != nil {
			consistency = "DIVERGED: " + err.Error()
		}
		fmt.Printf("%-28s plays=%-3d last=%-22s replicas %s\n", stage, len(res), last, consistency)
	}

	report("clean run:", 4)

	fmt.Println("\n>>> transient fault: corrupting clocks, agreement state, evidence, ledgers <<<")
	ent := prng.New(0xFA11)
	s.Net.Corrupt(ent.Uint64)

	// Right after corruption nothing is aligned; run pulse bursts and show
	// the system healing.
	for burst := 1; burst <= 4; burst++ {
		report(fmt.Sprintf("after recovery burst %d:", burst), 3)
	}

	fmt.Println("\nThe §4 property in action: every sequence of plays after the last")
	fmt.Println("transient fault satisfies the task — no manual reset, no coordination.")
}
