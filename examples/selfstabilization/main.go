// Self(ish)-stabilization (§4) end to end: a distributed authority cluster
// is hit by a transient fault that scrambles every processor's state —
// clocks, agreement instances, evidence, even the punish ledgers. The
// self-stabilizing clock re-converges, the next wrap restarts the §3.3
// protocol cleanly, and every honest replica records identical plays again.
//
// Built on the options API: WithDistributed selects the network driver,
// WithPulseBudget bounds how long one Play may wait (so recovery shows up
// as ErrPulseBudget instead of a hang), and the observer stream reports
// the clock-recovery event when plays resume after the fault.
//
// Run with: go run ./examples/selfstabilization
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	ga "gameauthority"
	"gameauthority/internal/prng"
)

func main() {
	const (
		n, f = 4, 1
	)
	g, err := ga.PublicGoods(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	s, err := ga.New(g,
		ga.WithDistributed(n, f, nil),
		ga.WithPulseBudget(4*ga.PulsesPerPlay(f)),
		ga.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}
	dist := ga.AsDistributed(s)
	unsubscribe := s.Subscribe(ga.ObserverFunc(func(e ga.Event) {
		if e.Kind == ga.EventClockRecovery {
			fmt.Printf(">>> %s <<<\n", e.Detail)
		}
	}))
	defer unsubscribe()
	fmt.Printf("distributed authority: n=%d f=%d, %d pulses per play\n\n", n, f, ga.PulsesPerPlay(f))

	ctx := context.Background()
	report := func(stage string, plays int) {
		completed := 0
		var last ga.RoundResult
		for i := 0; i < plays; i++ {
			res, err := s.Play(ctx)
			if errors.Is(err, ga.ErrPulseBudget) {
				break // still re-converging; the next burst keeps stepping
			}
			if err != nil {
				log.Fatal(err)
			}
			last, completed = res, completed+1
		}
		lastStr := "none"
		if completed > 0 {
			lastStr = fmt.Sprintf("%v @pulse %d", last.Outcome, last.Pulse)
		}
		consistency := "consistent"
		if err := dist.ConsistentResults(3); err != nil {
			consistency = "DIVERGED: " + err.Error()
		}
		fmt.Printf("%-28s plays=%-3d last=%-22s replicas %s\n", stage, s.Stats().Rounds, lastStr, consistency)
	}

	report("clean run:", 4)

	fmt.Println("\n>>> transient fault: corrupting clocks, agreement state, evidence, ledgers <<<")
	ent := prng.New(0xFA11)
	dist.Net.Corrupt(ent.Uint64)

	// Right after corruption nothing is aligned; run pulse bursts and show
	// the system healing.
	for burst := 1; burst <= 4; burst++ {
		report(fmt.Sprintf("after recovery burst %d:", burst), 3)
	}

	fmt.Println("\nThe §4 property in action: every sequence of plays after the last")
	fmt.Println("transient fault satisfies the task — no manual reset, no coordination.")
}
