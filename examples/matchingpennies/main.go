// The paper's Fig. 1 scenario end to end: matching pennies with a hidden
// manipulation strategy, with and without the game authority.
//
// Run with: go run ./examples/matchingpennies
package main

import (
	"fmt"
	"log"

	ga "gameauthority"
)

const rounds = 20000

func main() {
	fmt.Println("Fig. 1 — matching pennies with a hidden manipulation (payoffs):")
	g := ga.MatchingPenniesManipulated()
	fmt.Println("  A\\B        Heads     Tails  Manipulate")
	for i := 0; i < 2; i++ {
		fmt.Printf("  %-8s", g.ActionName(0, i))
		for j := 0; j < 3; j++ {
			p := ga.Profile{i, j}
			fmt.Printf("  (%+.0f,%+.0f) ", g.Payoff(0, p), g.Payoff(1, p))
		}
		fmt.Println()
	}

	// The elected game is plain matching pennies; its unique equilibrium
	// is (1/2, 1/2) for both agents.
	eqs := ga.MixedNashEquilibria2P(ga.MatchingPennies(), 0)
	fmt.Printf("\nelected-game equilibrium: A=%v B=%v (expected payoff 0 each)\n",
		eqs[0][0], eqs[0][1])

	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	manipulator := &ga.MixedAgent{Override: func(round, honest int) int { return ga.ManipulateAction }}

	// --- Without the authority -------------------------------------------------
	unsup, err := ga.NewMixedSession(ga.MixedConfig{
		Elected:    ga.MatchingPennies(),
		Actual:     g,
		Strategies: strategies,
		Agents:     []*ga.MixedAgent{nil, manipulator},
		Mode:       ga.AuditOff,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := unsup.Play(rounds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout authority (%d plays):\n", rounds)
	fmt.Printf("  A's average payoff: %+.3f   (paper: 0 → −4)\n", unsup.CumulativePayoff(0)/rounds)
	fmt.Printf("  B's average payoff: %+.3f   (paper: 0 → +4)\n", unsup.CumulativePayoff(1)/rounds)

	// --- With the authority ------------------------------------------------------
	sup, err := ga.NewMixedSession(ga.MixedConfig{
		Elected:    ga.MatchingPennies(),
		Actual:     g,
		Strategies: strategies,
		Agents:     []*ga.MixedAgent{nil, manipulator},
		Scheme:     ga.NewDisconnectScheme(2, 0),
		Mode:       ga.AuditPerRound,
		Seed:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sup.Play(rounds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith authority (%d plays):\n", rounds)
	fmt.Printf("  A's average payoff: %+.3f   (restored to ≈ 0)\n", sup.CumulativePayoff(0)/rounds)
	fmt.Printf("  B's average payoff: %+.3f   (restored to ≈ 0)\n", sup.CumulativePayoff(1)/rounds)
	verdicts := sup.Verdicts()
	if len(verdicts) > 0 && len(verdicts[0].Fouls) > 0 {
		f := verdicts[0].Fouls[0]
		fmt.Printf("  first verdict: agent %d convicted (%s) on play 0 — %s\n", f.Agent, f.Reason, f.Detail)
	}
	fmt.Printf("  manipulator excluded: %v\n", sup.Excluded(1))
}
