// The paper's Fig. 1 scenario end to end: matching pennies with a hidden
// manipulation strategy, with and without the game authority.
//
// Run with: go run ./examples/matchingpennies
package main

import (
	"context"
	"fmt"
	"log"

	ga "gameauthority"
)

const rounds = 20000

func main() {
	fmt.Println("Fig. 1 — matching pennies with a hidden manipulation (payoffs):")
	g := ga.MatchingPenniesManipulated()
	fmt.Println("  A\\B        Heads     Tails  Manipulate")
	for i := 0; i < 2; i++ {
		fmt.Printf("  %-8s", g.ActionName(0, i))
		for j := 0; j < 3; j++ {
			p := ga.Profile{i, j}
			fmt.Printf("  (%+.0f,%+.0f) ", g.Payoff(0, p), g.Payoff(1, p))
		}
		fmt.Println()
	}

	// The elected game is plain matching pennies; its unique equilibrium
	// is (1/2, 1/2) for both agents.
	eqs := ga.MixedNashEquilibria2P(ga.MatchingPennies(), 0)
	fmt.Printf("\nelected-game equilibrium: A=%v B=%v (expected payoff 0 each)\n",
		eqs[0][0], eqs[0][1])

	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	manipulator := &ga.MixedAgent{Override: func(round, honest int) int { return ga.ManipulateAction }}
	ctx := context.Background()

	// --- Without the authority -------------------------------------------------
	unsup, err := ga.New(ga.MatchingPennies(),
		ga.WithActual(g),
		ga.WithStrategies(strategies),
		ga.WithMixedAgents(nil, manipulator),
		ga.WithAudit(ga.AuditOff),
		ga.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := unsup.Run(ctx, rounds); err != nil {
		log.Fatal(err)
	}
	st := unsup.Stats()
	fmt.Printf("\nwithout authority (%d plays):\n", rounds)
	fmt.Printf("  A's average payoff: %+.3f   (paper: 0 → −4)\n", -st.CumulativeCost[0]/rounds)
	fmt.Printf("  B's average payoff: %+.3f   (paper: 0 → +4)\n", -st.CumulativeCost[1]/rounds)

	// --- With the authority ------------------------------------------------------
	sup, err := ga.New(ga.MatchingPennies(),
		ga.WithActual(g),
		ga.WithStrategies(strategies),
		ga.WithMixedAgents(nil, manipulator),
		ga.WithPunishment(ga.NewDisconnectScheme(2, 0)),
		ga.WithAudit(ga.AuditPerRound),
		ga.WithSeed(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sup.Run(ctx, rounds); err != nil {
		log.Fatal(err)
	}
	st = sup.Stats()
	fmt.Printf("\nwith authority (%d plays):\n", rounds)
	fmt.Printf("  A's average payoff: %+.3f   (restored to ≈ 0)\n", -st.CumulativeCost[0]/rounds)
	fmt.Printf("  B's average payoff: %+.3f   (restored to ≈ 0)\n", -st.CumulativeCost[1]/rounds)
	// ResultAt fetches one play without copying the whole history.
	if first, ok := sup.ResultAt(0); ok && len(first.Verdict.Fouls) > 0 {
		f := first.Verdict.Fouls[0]
		fmt.Printf("  first verdict: agent %d convicted (%s) on play 0 — %s\n", f.Agent, f.Reason, f.Detail)
	}
	fmt.Printf("  manipulator excluded: %v\n", st.Excluded[1])
}
