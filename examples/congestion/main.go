// A scenario-catalog game end to end: a 4-player singleton congestion
// game (two fast facilities, one slow) analyzed with the game-analysis
// layer (equilibria, PoA/PoS) and then played under the authority — an
// honest majority converging to a load-balanced equilibrium while the
// judicial service convicts a facility-camper whose choices stop being
// best responses.
//
// Run with: go run ./examples/congestion
package main

import (
	"context"
	"fmt"
	"log"

	ga "gameauthority"
)

func main() {
	const n = 4
	rates := []float64{1, 1, 2} // facilities 0 and 1 are fast, 2 is slow
	g, err := ga.CongestionGame(n, rates)
	if err != nil {
		log.Fatalf("catalog: %v", err)
	}

	// 1. Analysis: the PNEs are exactly the rate-weighted load-balanced
	// assignments (see the catalog's documented equilibrium structure).
	pnes, err := ga.PureNashEquilibria(g, 0)
	if err != nil {
		log.Fatalf("equilibria: %v", err)
	}
	poa, _ := ga.PriceOfAnarchy(g, 0)
	pos, _ := ga.PriceOfStability(g, 0)
	fmt.Printf("congestion game: %d players, rates %v\n", n, rates)
	fmt.Printf("  %d pure Nash equilibria (e.g. %v), PoA=%.3f PoS=%.3f\n",
		len(pnes), pnes[0], poa, pos)

	// 2. Supervised play: agent 3 camps the slow facility no matter its
	// load. Against a balanced rest-profile that is not a best response,
	// so the judicial service convicts and the executive substitutes.
	camper := &ga.Agent{Choose: func(round int, prev ga.Profile) int { return 2 }}
	session, err := ga.New(g,
		ga.WithAgents(nil, nil, nil, camper),
		ga.WithPunishment(ga.NewDisconnectScheme(n, 1)),
		ga.WithSeed(42),
	)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	defer session.Close()

	unsubscribe := session.Subscribe(ga.ObserverFunc(func(e ga.Event) {
		switch e.Kind {
		case ga.EventPlay:
			fmt.Printf("round %d: facilities %v\n", e.Round, e.Outcome)
		case ga.EventVerdict:
			for _, foul := range e.Fouls {
				fmt.Printf("  [foul: agent %d, %s]\n", foul.Agent, foul.Reason)
			}
		case ga.EventConviction:
			fmt.Printf("  [agent %d convicted — executive plays on its behalf]\n", e.Agent)
		}
	}))
	defer unsubscribe()

	if _, err := session.Run(context.Background(), 6); err != nil {
		log.Fatalf("play: %v", err)
	}

	// 3. The authority guarantees audited honesty, not convergence: the
	// symmetric honest agents above herd between the fast facilities
	// (simultaneous best responses cycle). Round-robin best-response
	// dynamics — one player updating at a time — do converge for
	// congestion games, and land in one of the analyzed equilibria.
	stats := session.Stats()
	fmt.Printf("fouls: %d, agent 3 excluded: %v\n", stats.Fouls, stats.Excluded[3])
	last, ok := session.ResultAt(stats.Rounds - 1)
	if !ok {
		log.Fatal("result: last round missing from history")
	}
	settled, isPNE := ga.BestResponseDynamics(g, last.Outcome, 100)
	fmt.Printf("round-robin dynamics from %v settle at %v (PNE: %v, cost %.0f)\n",
		last.Outcome, settled, isPNE, ga.SocialCost(g, settled, nil))
}
