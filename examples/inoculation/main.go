// The price of malice (PoM): the virus inoculation game of Moscibroda,
// Schmid and Wattenhofer (the paper's [21]) with Byzantine liars, with and
// without the game authority's audit-and-disconnect loop (§5.4).
//
// This example uses the game-analysis layer only (equilibria, audits,
// social cost) — it needs no Session; see examples/quickstart for the
// options API (ga.New) that drives repeated supervised play.
//
// Run with: go run ./examples/inoculation
package main

import (
	"fmt"
	"log"

	ga "gameauthority"
)

func main() {
	const (
		w, h = 16, 16
		c    = 1.0  // inoculation cost
		l    = 48.0 // infection loss
	)
	fmt.Printf("virus inoculation on a %dx%d grid (C=%.0f, L=%.0f)\n\n", w, h, c, l)

	// Baseline: selfish-only equilibrium.
	base, err := ga.NewInoculation(w, h, c, l)
	if err != nil {
		log.Fatal(err)
	}
	secure, converged := base.Equilibrium(1, 300)
	if !converged {
		log.Fatal("no equilibrium")
	}
	costBase := base.SocialCost(secure, base.HonestNodes())
	fmt.Printf("selfish only:            honest social cost %.2f\n", costBase)

	// Byzantine liars: insecure nodes claiming to be inoculated, bridging
	// attack components.
	byzIDs := []int{3*w + 4, 3*w + 5, 3*w + 6, 9*w + 4, 9*w + 5, 9*w + 6}
	liars, err := ga.NewInoculation(w, h, c, l)
	if err != nil {
		log.Fatal(err)
	}
	liars.SetByzantine(byzIDs...)
	secureB, _ := liars.Equilibrium(1, 300)
	costByz := liars.SocialCost(secureB, liars.HonestNodes())
	pom, err := ga.PriceOfMalice(costByz, costBase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d Byzantine liars:  honest social cost %.2f  → PoM %.3f\n",
		len(byzIDs), costByz, pom)

	// With the authority: the judicial service audits claims against
	// commitments, convicts the liars, and the executive disconnects them;
	// honest nodes then re-equilibrate on the truthful residual network.
	auth, err := ga.NewInoculation(w, h, c, l)
	if err != nil {
		log.Fatal(err)
	}
	auth.SetByzantine(byzIDs...)
	secureA, _ := auth.Equilibrium(1, 300)
	liarsFound := auth.AuditByzantine(secureA)
	for _, id := range liarsFound {
		auth.Disconnect(id)
	}
	secureA2, _ := auth.Equilibrium(2, 300)
	costAuth := auth.SocialCost(secureA2, auth.HonestNodes())
	pomAuth, err := ga.PriceOfMalice(costAuth, costBase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with game authority:     honest social cost %.2f  → PoM %.3f  (%d liars disconnected)\n",
		costAuth, pomAuth, len(liarsFound))

	fmt.Println("\nthe authority pushes the price of malice back toward 1 (§1.2, §5.4)")
}
