// Quickstart: elect a game, run supervised repeated play, and watch the
// judicial service convict a cheater.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ga "gameauthority"
)

func main() {
	// 1. The legislative service: the agents elect the rules of the game
	// with a robust (commit-reveal) vote.
	candidates := []ga.Candidate{
		{Game: ga.PrisonersDilemma(), Description: "prisoner's dilemma"},
		{Game: ga.CoordinationGame(), Description: "coordination"},
	}
	voters := []ga.Voter{
		{Prefs: []int{0, 1}},
		{Prefs: []int{0, 1}},
		{Prefs: []int{1, 0}},
	}
	elected, err := ga.RobustElection(candidates, voters, 42)
	if err != nil {
		log.Fatalf("election: %v", err)
	}
	g := candidates[elected.Winner].Game
	fmt.Printf("legislative: elected candidate %d (%s), scores %v\n",
		elected.Winner, candidates[elected.Winner].Description, elected.Scores)

	// 2. A supervised session: agent 0 is honest; agent 1 stubbornly
	// cooperates — which, after the first play, is not a best response
	// and therefore foul play under §3.2.
	stubborn := &ga.Agent{Choose: func(round int, prev ga.Profile) int { return 0 }}
	agents := []*ga.Agent{ga.HonestPure(g, 0), stubborn}
	scheme := ga.NewReputationScheme(2, 0.5, 0.2, 0.01)
	session, err := ga.NewPureSession(g, agents, scheme, 7)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	// 3. Play ten audited rounds.
	for round := 0; round < 10; round++ {
		res, err := session.PlayRound()
		if err != nil {
			log.Fatalf("play: %v", err)
		}
		fmt.Printf("round %d: outcome %v", res.Round, res.Outcome)
		for _, foul := range res.Verdict.Fouls {
			fmt.Printf("  [foul: agent %d, %s]", foul.Agent, foul.Reason)
		}
		if len(res.Excluded) > 0 {
			fmt.Printf("  excluded=%v", res.Excluded)
		}
		fmt.Println()
	}
	fmt.Printf("cumulative costs: agent0=%.1f agent1=%.1f\n",
		session.CumulativeCost(0), session.CumulativeCost(1))
	if session.Excluded(1) {
		fmt.Println("the repeat offender has been excluded; the executive now plays on its behalf")
	}
}
