// Quickstart: elect a game, run supervised repeated play, and watch the
// judicial service convict a cheater — all through the unified options
// API: ga.New selects the driver, WithElection runs the legislative
// service, and the observer stream reports plays, verdicts, and
// convictions as they happen.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	ga "gameauthority"
)

func main() {
	// 1. The legislative service: the agents elect the rules of the game
	// with a robust (commit-reveal) vote. WithElection replaces the game
	// argument; the elected winner is announced on the event stream.
	candidates := []ga.Candidate{
		{Game: ga.PrisonersDilemma(), Description: "prisoner's dilemma"},
		{Game: ga.CoordinationGame(), Description: "coordination"},
	}
	voters := []ga.Voter{
		{Prefs: []int{0, 1}},
		{Prefs: []int{0, 1}},
		{Prefs: []int{1, 0}},
	}

	// 2. A supervised session: agent 0 is honest (nil = best response to
	// the elected game); agent 1 stubbornly cooperates — which, after the
	// first play, is not a best response and therefore foul play (§3.2).
	stubborn := &ga.Agent{Choose: func(round int, prev ga.Profile) int { return 0 }}
	session, err := ga.New(nil,
		ga.WithElection(candidates, voters),
		ga.WithAgents(nil, stubborn),
		ga.WithPunishment(ga.NewReputationScheme(2, 0.5, 0.2, 0.01)),
		ga.WithSeed(7),
	)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	// 3. Subscribe to the observer stream. The election event is sticky,
	// so subscribing after New still reports the legislative outcome.
	unsubscribe := session.Subscribe(ga.ObserverFunc(func(e ga.Event) {
		switch e.Kind {
		case ga.EventElection:
			fmt.Printf("legislative: elected candidate %d (%s)\n", e.Winner, e.Detail)
		case ga.EventPlay:
			fmt.Printf("round %d: outcome %v\n", e.Round, e.Outcome)
		case ga.EventVerdict:
			for _, foul := range e.Fouls {
				fmt.Printf("  [foul: agent %d, %s]\n", foul.Agent, foul.Reason)
			}
		case ga.EventConviction:
			fmt.Printf("  [agent %d %s]\n", e.Agent, e.Detail)
		}
	}))
	defer unsubscribe()

	// 4. Play ten audited rounds.
	if _, err := session.Run(context.Background(), 10); err != nil {
		log.Fatalf("play: %v", err)
	}

	stats := session.Stats()
	fmt.Printf("cumulative costs: agent0=%.1f agent1=%.1f\n",
		stats.CumulativeCost[0], stats.CumulativeCost[1])
	if stats.Excluded[1] {
		fmt.Println("the repeat offender has been excluded; the executive now plays on its behalf")
	}
}
