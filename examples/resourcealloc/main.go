// The §6 repeated resource allocation (RRA) game: a consortium shares b
// resources; selfish agents place unit demands each round. This example
// traces the multi-round anarchy cost R(k) against Theorem 5's bound
// 1 + 2b/k, then shows a resource-camping attacker being neutralized.
//
// Run with: go run ./examples/resourcealloc
package main

import (
	"fmt"
	"log"

	ga "gameauthority"
)

func main() {
	const (
		n = 8 // agents
		b = 4 // resources
	)
	fmt.Printf("RRA: n=%d agents, b=%d resources, supervised honest play\n\n", n, b)
	h, err := ga.NewSupervisedRRA(n, b, 1, ga.NewDisconnectScheme(n, 0), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("    k     M(k)   OPT(k)     R(k)   1+2b/k")
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		for h.RRA().Rounds() < k {
			if err := h.PlayRound(); err != nil {
				log.Fatal(err)
			}
		}
		opt := ga.OptMaxLoad(n, b, k)
		r, err := ga.MultiRoundAnarchyCost(float64(h.RRA().MaxLoad()), opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d  %6d  %6d  %7.4f  %7.4f\n", k, h.RRA().MaxLoad(), opt, r, ga.Theorem5Bound(b, k))
	}
	fmt.Printf("\nTheorem 5: R(k) ≤ 1+2b/k and R(k) → 1. Loads: %v (spread %d ≤ 2n−1=%d)\n",
		h.RRA().Loads(), h.RRA().Spread(), 2*n-1)

	// --- A malicious resource camper, with more resources than agents ----------
	const (
		nA = 4
		bA = 8
		k  = 600
	)
	fmt.Printf("\nAttack: agent 0 camps resource 0 (n=%d, b=%d, k=%d)\n", nA, bA, k)
	for _, supervised := range []bool{false, true} {
		var scheme ga.PunishmentScheme
		if supervised {
			scheme = ga.NewDisconnectScheme(nA, 0)
		}
		hh, err := ga.NewSupervisedRRA(nA, bA, 2, scheme, supervised)
		if err != nil {
			log.Fatal(err)
		}
		hh.SetByzantine(0, ga.FixedChooser(0))
		if err := hh.Play(k); err != nil {
			log.Fatal(err)
		}
		r, err := ga.MultiRoundAnarchyCost(float64(hh.RRA().MaxLoad()), ga.OptMaxLoad(nA, bA, k))
		if err != nil {
			log.Fatal(err)
		}
		mode := "unsupervised"
		if supervised {
			mode = "supervised  "
		}
		fmt.Printf("  %s R(k)=%.3f  max load %4d  fouls detected %d  camper excluded: %v\n",
			mode, r, hh.RRA().MaxLoad(), len(hh.Fouls()), hh.Excluded(0))
	}
	fmt.Println("\nThe authority detects the first off-stream action, disconnects the camper,")
	fmt.Println("and the executive plays the equilibrium sample on its behalf thereafter.")
}
