// The §6 repeated resource allocation (RRA) game: a consortium shares b
// resources; selfish agents place unit demands each round. This example
// traces the multi-round anarchy cost R(k) against Theorem 5's bound
// 1 + 2b/k, then shows a resource-camping attacker being neutralized.
//
// Run with: go run ./examples/resourcealloc
package main

import (
	"context"
	"fmt"
	"log"

	ga "gameauthority"
)

func main() {
	const (
		n = 8 // agents
		b = 4 // resources
	)
	ctx := context.Background()
	fmt.Printf("RRA: n=%d agents, b=%d resources, supervised honest play\n\n", n, b)
	s, err := ga.New(nil,
		ga.WithRRA(n, b),
		ga.WithPunishment(ga.NewDisconnectScheme(n, 0)),
		ga.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	h := ga.AsRRA(s)
	fmt.Println("    k     M(k)   OPT(k)     R(k)   1+2b/k")
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		for h.RRA().Rounds() < k {
			if _, err := s.Play(ctx); err != nil {
				log.Fatal(err)
			}
		}
		opt := ga.OptMaxLoad(n, b, k)
		r, err := ga.MultiRoundAnarchyCost(float64(h.RRA().MaxLoad()), opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d  %6d  %6d  %7.4f  %7.4f\n", k, h.RRA().MaxLoad(), opt, r, ga.Theorem5Bound(b, k))
	}
	fmt.Printf("\nTheorem 5: R(k) ≤ 1+2b/k and R(k) → 1. Loads: %v (spread %d ≤ 2n−1=%d)\n",
		h.RRA().Loads(), h.RRA().Spread(), 2*n-1)

	// --- A malicious resource camper, with more resources than agents ----------
	const (
		nA = 4
		bA = 8
		k  = 600
	)
	fmt.Printf("\nAttack: agent 0 camps resource 0 (n=%d, b=%d, k=%d)\n", nA, bA, k)
	for _, supervised := range []bool{false, true} {
		// Supervision is on exactly when a punishment scheme is installed.
		opts := []ga.Option{
			ga.WithRRA(nA, bA),
			ga.WithRRAByzantine(0, ga.FixedChooser(0)),
			ga.WithSeed(2),
		}
		if supervised {
			opts = append(opts, ga.WithPunishment(ga.NewDisconnectScheme(nA, 0)))
		}
		ss, err := ga.New(nil, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ss.Run(ctx, k); err != nil {
			log.Fatal(err)
		}
		hh := ga.AsRRA(ss)
		r, err := ga.MultiRoundAnarchyCost(float64(hh.RRA().MaxLoad()), ga.OptMaxLoad(nA, bA, k))
		if err != nil {
			log.Fatal(err)
		}
		mode := "unsupervised"
		if supervised {
			mode = "supervised  "
		}
		st := ss.Stats()
		fmt.Printf("  %s R(k)=%.3f  max load %4d  fouls detected %d  camper excluded: %v\n",
			mode, r, hh.RRA().MaxLoad(), st.Fouls, st.Excluded[0])
	}
	fmt.Println("\nThe authority detects the first off-stream action, disconnects the camper,")
	fmt.Println("and the executive plays the equilibrium sample on its behalf thereafter.")
}
