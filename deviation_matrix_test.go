package gameauthority_test

import (
	"context"
	"fmt"
	"testing"

	ga "gameauthority"
	"gameauthority/internal/core"
	"gameauthority/internal/deviate"
)

// TestDeviationMatrix is the repo's standing robustness regression: it
// sweeps every scenario-catalog game × driver × punishment scheme ×
// deviation strategy, runs the profit auditor on paired seeded twins,
// and asserts the paper's property — under a game authority, unilateral
// selfish deviation does not profit once punishment engages.
//
// "Profit" is net utility: the deviant's game-cost delta versus its
// honest twin (measured from the second play — the §3.2 best-response
// duty binds from play 2, so the opener is duty-free by construction)
// minus the punishment cost of its sanctions, monetized at
// finePerSeverity × the game's per-round cost scale. That calibration is
// the paper's §3.4 assumption made explicit: an executive whose
// sanctions (deposit fines, real money) outweigh any single play's
// stake. The sweep itself demonstrated why the monetization is
// necessary: restriction-style punishment alone (substituting honest
// play after conviction) cannot claw back a gain the deviant already
// banked by steering the play into a better equilibrium basin — see
// DESIGN.md §8.
//
// Per seeded twin pair:
//
//   - a pair where the deviant was never charged is *legitimate play*
//     (e.g. camping a weakly-dominant action — always a best response,
//     so never a foul): the authority promises nothing about relative
//     payoffs inside the legitimate strategy space, and no profit claim
//     is made;
//   - every charged pair enters the net-profit mean, which must be ≤ 0
//     within tolerance (profitTolerance × baseline scale per round,
//     plus a small epsilon for games whose baseline cost is ~0 —
//     post-conviction trajectories are independent samples, so exact
//     equality only holds for the commitment-level cheats, pinned in
//     internal/deviate's own tests).
//
// Per (game, driver, scheme) group, at least one strategy must be both
// detected and convicted — the judicial/executive pipeline works in
// every cell of the matrix.
//
// The catalog games run on the pure, mixed and distributed drivers; the
// RRA driver elects its own §6 game and enters the matrix as its own
// scenario family. In -short mode the sweep shrinks (fewer rounds and
// seeds) but still covers every cell.
func TestDeviationMatrix(t *testing.T) {
	ctx := context.Background()

	rounds, distRounds := 24, 6
	seeds, distSeeds := []uint64{1, 2, 3}, []uint64{1}
	if testing.Short() {
		rounds, distRounds = 12, 3
		seeds = []uint64{1, 2}
	}

	// Stated tolerances (see the doc comment): net profit per measured
	// round must stay ≤ epsilon + profitTolerance × baseline scale;
	// sanctions cost finePerSeverity × baseline scale per severity unit.
	const (
		profitTolerance = 0.35
		epsilon         = 0.05
		finePerSeverity = 4.0
	)

	schemes := []struct {
		name string
		make func(n int) ga.PunishmentScheme
	}{
		// One proven protocol foul (severity ≥ 0.5) disconnects.
		{"disconnect", func(n int) ga.PunishmentScheme { return ga.NewDisconnectScheme(n, 0.5) }},
		// Aggressive reputation: a severity-1 foul drops the score to
		// 0.1 < 0.5 (instant exclusion); two half-severity fouls do it.
		{"reputation", func(n int) ga.PunishmentScheme { return ga.NewReputationScheme(n, 0.1, 0.5, 0.01) }},
	}

	type cell struct {
		game    string
		driver  string
		players int
		build   func(scheme func(n int) ga.PunishmentScheme) deviate.BuildFunc
	}
	var cells []cell

	for _, entry := range ga.Catalog() {
		entry := entry
		n := entry.Players(4)
		cells = append(cells,
			cell{entry.Name, "pure", n, func(scheme func(int) ga.PunishmentScheme) deviate.BuildFunc {
				return func(seed uint64, d core.Deviant, player int) (core.Session, error) {
					g, err := entry.Build(n)
					if err != nil {
						return nil, err
					}
					opts := []ga.Option{ga.WithSeed(seed), ga.WithPunishment(scheme(n))}
					if d != nil {
						opts = append(opts, ga.WithDeviant(player, d))
					}
					return ga.New(g, opts...)
				}
			}},
			cell{entry.Name, "mixed", n, func(scheme func(int) ga.PunishmentScheme) deviate.BuildFunc {
				return func(seed uint64, d core.Deviant, player int) (core.Session, error) {
					g, err := entry.Build(n)
					if err != nil {
						return nil, err
					}
					opts := []ga.Option{
						ga.WithSeed(seed),
						ga.WithStrategies(uniformProfile(g)),
						ga.WithAudit(ga.AuditPerRound),
						ga.WithPunishment(scheme(n)),
					}
					if d != nil {
						opts = append(opts, ga.WithDeviant(player, d))
					}
					return ga.New(g, opts...)
				}
			}},
			cell{entry.Name, "distributed", n, func(scheme func(int) ga.PunishmentScheme) deviate.BuildFunc {
				return func(seed uint64, d core.Deviant, player int) (core.Session, error) {
					g, err := entry.Build(n)
					if err != nil {
						return nil, err
					}
					f := (n - 1) / 3
					opts := []ga.Option{
						ga.WithSeed(seed),
						ga.WithDistributed(n, f, nil),
						ga.WithPunishment(scheme(n)),
					}
					if d != nil {
						opts = append(opts, ga.WithDeviant(player, d))
					}
					return ga.New(g, opts...)
				}
			}},
		)
	}
	// The RRA driver's own scenario family (6 agents, 3 resources).
	cells = append(cells, cell{"rra", "rra", 6, func(scheme func(int) ga.PunishmentScheme) deviate.BuildFunc {
		return func(seed uint64, d core.Deviant, player int) (core.Session, error) {
			opts := []ga.Option{ga.WithSeed(seed), ga.WithRRA(6, 3), ga.WithPunishment(scheme(6))}
			if d != nil {
				opts = append(opts, ga.WithDeviant(player, d))
			}
			return ga.New(nil, opts...)
		}
	}})

	// Registry-driven completeness: every catalog scenario must appear in
	// the sweep — a new catalog entry extends the matrix automatically, and
	// this guard trips if the sweep is ever rewritten around a hardcoded
	// list. The two Byzantine families are asserted by name so that renaming
	// or dropping them cannot pass silently.
	swept := make(map[string]bool, len(cells))
	for _, c := range cells {
		swept[c.game] = true
	}
	for _, entry := range ga.Catalog() {
		if !swept[entry.Name] {
			t.Errorf("catalog scenario %q is missing from the deviation matrix", entry.Name)
		}
	}
	for _, name := range []string{"mining", "validator-committee"} {
		if !swept[name] {
			t.Errorf("Byzantine scenario %q is missing from the deviation matrix", name)
		}
	}

	strategies := ga.DeviantStrategies()
	for _, c := range cells {
		for _, sch := range schemes {
			groupDetected := false
			for _, strategy := range strategies {
				name := fmt.Sprintf("%s/%s/%s/%s", c.game, c.driver, sch.name, strategy.Name())
				t.Run(name, func(t *testing.T) {
					cellRounds, cellSeeds := rounds, seeds
					if c.driver == "distributed" {
						cellRounds, cellSeeds = distRounds, distSeeds
					}
					rep, err := deviate.ProfitAudit(ctx, deviate.AuditConfig{
						Strategy: strategy,
						Player:   0,
						Rounds:   cellRounds,
						Seeds:    cellSeeds,
						Build:    c.build(sch.make),
					})
					if err != nil {
						t.Fatalf("audit: %v", err)
					}
					fine := finePerSeverity * rep.BaselineScale
					var netSum float64
					charged := 0
					for _, out := range rep.Outcomes {
						if out.Fouls == 0 && !out.Convicted {
							// Legitimate play this seed: no foul, no
							// profit claim (see doc comment).
							continue
						}
						charged++
						netSum += out.Profit - fine*out.PunishmentSeverity
					}
					if charged > 0 {
						netPerRound := netSum / float64(charged) / float64(rep.Measured)
						tol := epsilon + profitTolerance*rep.BaselineScale
						if netPerRound > tol {
							t.Errorf("punished deviation nets +%.4f per round (tolerance %.4f, baseline scale %.4f, detection %.0f%%, conviction %.0f%%, mean sanctions %.2f)",
								netPerRound, tol, rep.BaselineScale,
								100*rep.DetectionRate, 100*rep.ConvictionRate, rep.MeanPunishment)
						}
					}
					if rep.DetectionRate > 0 && rep.ConvictionRate > 0 {
						groupDetected = true
					}
				})
			}
			if !groupDetected {
				t.Errorf("%s/%s/%s: no strategy was both detected and convicted", c.game, c.driver, sch.name)
			}
		}
	}
}

func uniformProfile(g ga.Game) func(int, ga.Profile) ga.MixedProfile {
	mp := make(ga.MixedProfile, g.NumPlayers())
	for i := range mp {
		mp[i] = ga.Uniform(g.NumActions(i))
	}
	return func(int, ga.Profile) ga.MixedProfile { return mp }
}
