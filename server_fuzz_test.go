package gameauthority_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	ga "gameauthority"
)

// FuzzServerSessions throws arbitrary bodies at POST /sessions: malformed
// JSON, huge player counts and history limits, unknown scenario and
// strategy names, conflicting kinds. The server must never panic and
// never accept-and-crash: every response is 201 (created), 400 (rejected)
// or 409 (duplicate id), and a 201 must leave a session the registry can
// list and report stats for.
func FuzzServerSessions(f *testing.F) {
	seeds := []string{
		``,
		`{`,
		`not json at all`,
		`{"game":"congestion","players":4}`,
		`{"game":"braess","players":4,"kind":"mixed","audit":"per-round"}`,
		`{"game":"nosuchgame"}`,
		`{"game":"congestion","players":1000000}`,
		`{"game":"minority","players":-3}`,
		`{"game":"pd","history_limit":2147483647}`,
		`{"game":"pd","history_limit":-1}`,
		`{"kind":"rra","rra":{"agents":8,"resources":4}}`,
		`{"kind":"rra","rra":{"agents":1000000000,"resources":2}}`,
		`{"kind":"distributed","game":"pd","distributed":{"n":1000000,"f":3}}`,
		`{"kind":"distributed","game":"publicgoods","players":4,"distributed":{"n":4,"f":1}}`,
		`{"game":"pd","deviant":{"player":0,"strategy":"freerider"}}`,
		`{"game":"pd","deviant":{"player":99,"strategy":"freerider"}}`,
		`{"game":"pd","deviant":{"player":0,"strategy":"nosuch"}}`,
		`{"game":"pd","deviant":{"player":0,"strategy":"freerider","prob":0.5}}`,
		`{"game":"pd","deviant":{"player":0,"strategy":"distribution-skewer","prob":-3}}`,
		`{"game":"pd","deviant":{"player":0,"strategy":"distribution-skewer","prob":0.25},"punishment":{"scheme":"disconnect"}}`,
		`{"game":"pd","punishment":{"scheme":"deposit","escrow":-5}}`,
		`{"id":"../../etc","game":"pd"}`,
		`{"game":"secondprice","players":20}`,
		`{"game":"pd","audit":"statistical","kind":"mixed","window":-4,"chi_threshold":1e308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		srv := ga.NewServer(ga.NewAuthority())

		req := httptest.NewRequest(http.MethodPost, "/sessions", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusCreated, http.StatusBadRequest, http.StatusConflict:
		default:
			t.Fatalf("POST /sessions returned %d for %q", rec.Code, body)
		}
		if rec.Code != http.StatusCreated {
			return
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil || created.ID == "" {
			t.Fatalf("created session without a usable id: %s (%v)", rec.Body.Bytes(), err)
		}
		// The created session must be listable and report stats without
		// panicking.
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sessions", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /sessions returned %d after a create", rec.Code)
		}
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sessions/"+created.ID, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /sessions/%s returned %d", created.ID, rec.Code)
		}
	})
}

// FuzzServerPlay throws arbitrary session ids and bodies at
// POST /sessions/{id}/play. The server must never panic, must cap the
// requested work (the per-request rounds cap), and must keep the hosted
// session playable afterwards.
func FuzzServerPlay(f *testing.F) {
	f.Add("s", []byte(`{"rounds":2}`))
	f.Add("s", []byte(``))
	f.Add("s", []byte(`{"rounds":-5}`))
	f.Add("s", []byte(`{"rounds":2147483647}`))
	f.Add("s", []byte(`{"rounds":1e309}`))
	f.Add("s", []byte(`{"rounds":"two"}`))
	f.Add("s", []byte(`{`))
	f.Add("nosuch", []byte(`{"rounds":1}`))
	f.Add("../s", []byte(`{"rounds":1}`))
	f.Add("s\x00s", []byte(`{"rounds":1}`))

	f.Fuzz(func(t *testing.T, id string, body []byte) {
		a := ga.NewAuthority()
		if _, err := a.Create("s", ga.PrisonersDilemma(), ga.WithSeed(1), ga.WithHistoryLimit(4)); err != nil {
			t.Fatal(err)
		}
		srv := ga.NewServer(a)

		target := "/sessions/" + id + "/play"
		req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			return // unroutable id — nothing to test
		}
		rec := httptest.NewRecorder()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("play handler panicked for id=%q body=%q: %v", id, body, r)
				}
			}()
			srv.ServeHTTP(rec, req)
		}()
		if rec.Code >= 500 && rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("play returned %d for id=%q body=%q: %s", rec.Code, id, body, rec.Body.Bytes())
		}
		// Whatever happened, the hosted session must still play.
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/sessions/s/play", bytes.NewReader([]byte(`{"rounds":1}`))))
		if rec.Code != http.StatusOK {
			t.Fatalf("session wedged after fuzzed play: %d %s", rec.Code, rec.Body.Bytes())
		}
	})
}
