package gameauthority

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestEventWireZeroValues pins the SSE wire format: agent 0 convictions
// and candidate-0 election wins must keep their fields, and play events
// must not grow spurious agent/winner keys.
func TestEventWireZeroValues(t *testing.T) {
	marshal := func(e Event) string {
		b, err := json.Marshal(eventFor(e))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got := marshal(Event{Kind: EventConviction, Agent: 0}); !strings.Contains(got, `"agent":0`) {
		t.Fatalf("conviction of agent 0 lost its agent field: %s", got)
	}
	if got := marshal(Event{Kind: EventElection, Winner: 0}); !strings.Contains(got, `"winner":0`) {
		t.Fatalf("election of candidate 0 lost its winner field: %s", got)
	}
	got := marshal(Event{Kind: EventPlay, Round: 3})
	if strings.Contains(got, `"agent"`) || strings.Contains(got, `"winner"`) {
		t.Fatalf("play event grew agent/winner keys: %s", got)
	}
}
