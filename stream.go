package gameauthority

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"

	"gameauthority/internal/core"
	"gameauthority/internal/hub"
	"gameauthority/internal/obs"
	"gameauthority/internal/wire"
)

// registerLoopGauge exposes the shard-loop backlog of the most recently
// built pool. Name-keyed replacement in the obs registry means the
// latest pool wins, which is the live one in any real process.
func registerLoopGauge(sp *hub.Shards) {
	obs.RegisterGaugeFunc("gameauthority_shard_loop_queue_depth",
		"Commands queued on authoritative shard-loop inboxes.",
		func() float64 { return float64(sp.QueueDepth()) })
}

// WithShards runs the authority's plays on n authoritative shard loops
// (n < 1 means GOMAXPROCS): each hosted session is pinned onto one loop
// by id hash and every play — HTTP, WebSocket, or in-process — executes
// on that loop's goroutine, turning per-request locking into
// enqueue/dequeue onto shard inboxes. Without this option the HTTP and
// in-process paths play inline as before, and only the WebSocket
// transport uses (lazily created) shard loops.
func WithShards(n int) AuthorityOption {
	return func(a *Authority) {
		sp := hub.NewShards(n)
		a.loops.Store(sp)
		a.loopsRoute.Store(true)
		registerLoopGauge(sp)
	}
}

// shardLoops returns the authority's loop pool, creating a GOMAXPROCS
// pool on first use (the WebSocket transport always dispatches through
// loops; see WithShards for routing everything through them).
func (a *Authority) shardLoops() *hub.Shards {
	if sp := a.loops.Load(); sp != nil {
		return sp
	}
	a.loopsMu.Lock()
	defer a.loopsMu.Unlock()
	if sp := a.loops.Load(); sp != nil {
		return sp
	}
	sp := hub.NewShards(runtime.GOMAXPROCS(0))
	a.loops.Store(sp)
	registerLoopGauge(sp)
	return sp
}

// streamHub lazily builds the WebSocket hub mounted at /ws.
func (a *Authority) streamHub() *hub.Hub {
	return hub.New(wsBackend{a}, hub.Options{
		Shards:    a.shardLoops(),
		Counters:  &a.counters,
		MaxRounds: maxPlayRounds,
	})
}

// wsBackend adapts the Authority to the hub's Backend interface, mapping
// registry errors onto wire error codes.
type wsBackend struct{ a *Authority }

func (b wsBackend) Create(spec []byte) (hub.Handle, error) {
	var req CreateSessionRequest
	if err := json.Unmarshal(spec, &req); err != nil {
		return nil, hub.Coded{Code: wire.CodeBadRequest, Err: fmt.Errorf("invalid session spec: %w", err)}
	}
	h, err := b.a.CreateFromSpec(req)
	if err != nil {
		return nil, hub.Coded{Code: wsErrCode(err, wire.CodeBadRequest), Err: err}
	}
	return wsHandle{h}, nil
}

func (b wsBackend) Attach(ctx context.Context, id string) (hub.Handle, error) {
	h, err := b.a.GetOrRecover(ctx, id)
	if err != nil {
		return nil, hub.Coded{Code: wsErrCode(err, wire.CodeInternal), Err: err}
	}
	return wsHandle{h}, nil
}

func (b wsBackend) Remove(id string) error {
	if err := b.a.Remove(id); err != nil {
		return hub.Coded{Code: wsErrCode(err, wire.CodeInternal), Err: err}
	}
	return nil
}

// wsErrCode maps authority errors onto wire codes, with a fallback for
// errors with no specific mapping.
func wsErrCode(err error, fallback uint64) uint64 {
	switch {
	case errors.Is(err, ErrSessionExists):
		return wire.CodeExists
	case errors.Is(err, ErrSessionNotFound):
		return wire.CodeNotFound
	case errors.Is(err, ErrSessionID):
		return wire.CodeBadRequest
	case errors.Is(err, ErrBreakerOpen):
		return wire.CodeBreakerOpen
	case errors.Is(err, ErrDurability), errors.Is(err, ErrPulseBudget):
		return wire.CodeUnavailable
	case errors.Is(err, ErrClosed):
		return wire.CodeClosed
	default:
		return fallback
	}
}

// wsHandle adapts a hosted session for the hub. Play is the direct form:
// hub commands already execute on the session's shard loop, so routing
// through HostedSession.Play again would deadlock a WithShards authority
// (the loop would wait on itself).
type wsHandle struct{ h *HostedSession }

func (w wsHandle) ID() string { return w.h.ID() }

func (w wsHandle) Play(ctx context.Context) (core.RoundResult, error) {
	res, err := w.h.playDirect(ctx)
	if err != nil {
		return res, hub.Coded{Code: wsErrCode(err, wire.CodeInternal), Err: err}
	}
	return res, nil
}

// PlayN is the hub.BatchHandle surface: like Play it must use the direct
// form, since the hub runs it on the session's shard loop already.
func (w wsHandle) PlayN(ctx context.Context, n int, sink func(core.RoundResult) error) (core.RoundResult, error) {
	res, err := w.h.playNDirect(ctx, n, sink)
	if err != nil {
		return res, hub.Coded{Code: wsErrCode(err, wire.CodeInternal), Err: err}
	}
	return res, nil
}

// ResultAt serves the hub's deduplicated replays of retried plays from
// the session's history ring.
func (w wsHandle) ResultAt(round int) (core.RoundResult, bool) { return w.h.ResultAt(round) }

func (w wsHandle) Subscribe(obs core.Observer) func() { return w.h.Subscribe(obs) }

func (w wsHandle) Stats() core.SessionStats { return w.h.Stats() }

func (w wsHandle) Snapshot() (core.SessionSnapshot, bool, error) {
	snap, persisted, err := w.h.a.snapshotHosted(w.h, w.h.Session.Snapshot())
	if err != nil {
		return snap, persisted, hub.Coded{Code: wire.CodeUnavailable, Err: err}
	}
	return snap, persisted, nil
}
