package gameauthority_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ga "gameauthority"
)

// flakyStore wraps a Store with a switchable append failure, so breaker
// tests can degrade the journal and then heal it on demand.
type flakyStore struct {
	ga.Store
	fail func() bool
}

func (s *flakyStore) Append(id string, rec ga.Record) error {
	if s.fail() {
		return errors.New("flaky: injected append failure")
	}
	return s.Store.Append(id, rec)
}

// httptestServer serves an already-configured authority over HTTP.
func httptestServer(t *testing.T, a *ga.Authority) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(ga.NewServer(a))
	t.Cleanup(srv.Close)
	return srv
}

// TestHealthzEndpoint: GET /healthz reports liveness, the hosted-session
// count, and whether a durable store is attached.
func TestHealthzEndpoint(t *testing.T) {
	_, srv := storeServer(t, ga.NewMemStore())
	durPost(t, srv.URL+"/sessions", ga.CreateSessionRequest{ID: "hz-1", Game: "pd", Seed: 1}, http.StatusCreated)

	body := durGet(t, srv.URL+"/healthz", http.StatusOK)
	text := string(body)
	for _, want := range []string{`"status":"ok"`, `"sessions":1`, `"durable":true`} {
		if !strings.Contains(text, want) {
			t.Fatalf("healthz missing %s in: %s", want, text)
		}
	}

	// A store-less authority is still healthy, just not durable.
	volatile := httptestServer(t, ga.NewAuthority())
	body = durGet(t, volatile.URL+"/healthz", http.StatusOK)
	if !strings.Contains(string(body), `"durable":false`) {
		t.Fatalf("volatile healthz = %s", body)
	}
}

// TestWithFaultPlanWiring: an armed fault plan decorates the attached
// store, plays surface ErrDurability, and injections reach /metrics.
func TestWithFaultPlanWiring(t *testing.T) {
	plan := ga.NewFaultPlan(ga.FaultConfig{Seed: 11, AppendFail: 1})
	a := ga.NewAuthority(
		ga.WithStore(ga.NewMemStore()),
		ga.WithFaultPlan(plan),
		ga.WithBreaker(-1, 0), // isolate fault accounting from the breaker
	)
	srv := httptestServer(t, a)

	h, err := a.CreateFromSpec(ga.CreateSessionRequest{ID: "chaos-1", Game: "pd", Seed: 1})
	if err != nil {
		t.Fatalf("CreateFromSpec: %v", err)
	}
	for i := 0; i < 3; i++ {
		res, perr := h.Play(context.Background())
		if !errors.Is(perr, ga.ErrDurability) {
			t.Fatalf("play %d error = %v, want ErrDurability", i, perr)
		}
		// The play itself executed; only its journal write was lost.
		if res.Round != i {
			t.Fatalf("play %d advanced to round %d", i, res.Round)
		}
	}
	if got := plan.Injected(); got != 3 {
		t.Fatalf("plan injected %d faults, want 3", got)
	}

	body := durGet(t, srv.URL+"/metrics", http.StatusOK)
	if !strings.Contains(string(body), "gameauthority_faults_injected_total 3") {
		t.Fatalf("metrics missing fault counter:\n%s", body)
	}
}

// TestBreakerOpensAndRecovers drives the full circuit: consecutive
// journal failures trip it, plays then fail fast (HTTP 503) without
// advancing the session, and after the cooldown a half-open probe
// against the healed store closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var failing = true
	st := &flakyStore{Store: ga.NewMemStore(), fail: func() bool { return failing }}
	a := ga.NewAuthority(
		ga.WithStore(st),
		ga.WithBreaker(3, 40*time.Millisecond),
	)
	srv := httptestServer(t, a)

	failing = false
	h, err := a.CreateFromSpec(ga.CreateSessionRequest{ID: "brk-1", Game: "pd", Seed: 1})
	if err != nil {
		t.Fatalf("CreateFromSpec: %v", err)
	}
	failing = true

	// Three consecutive journal failures: each play still executes
	// (durability degraded, not lost), and the third trips the breaker.
	for i := 0; i < 3; i++ {
		if _, perr := h.Play(context.Background()); !errors.Is(perr, ga.ErrDurability) {
			t.Fatalf("degraded play %d error = %v, want ErrDurability", i, perr)
		}
	}
	before := h.Stats().Rounds
	if _, perr := h.Play(context.Background()); !errors.Is(perr, ga.ErrBreakerOpen) {
		t.Fatalf("play with open breaker = %v, want ErrBreakerOpen", perr)
	}
	if after := h.Stats().Rounds; after != before {
		t.Fatalf("open breaker still advanced the session: %d -> %d", before, after)
	}

	// The HTTP face fails fast too, and the trip is visible in /metrics.
	durPost(t, srv.URL+"/sessions/brk-1/play", map[string]int{"rounds": 1}, http.StatusServiceUnavailable)
	if body := durGet(t, srv.URL+"/metrics", http.StatusOK); !strings.Contains(string(body), "gameauthority_breaker_opens_total 1") {
		t.Fatalf("metrics missing breaker trip:\n%s", body)
	}

	// Heal the store and wait out the cooldown: the half-open probe play
	// succeeds and closes the breaker for good.
	failing = false
	time.Sleep(60 * time.Millisecond)
	if _, perr := h.Play(context.Background()); perr != nil {
		t.Fatalf("half-open probe failed: %v", perr)
	}
	if _, perr := h.Play(context.Background()); perr != nil {
		t.Fatalf("post-recovery play failed: %v", perr)
	}
	if got := h.Stats().Rounds; got != before+2 {
		t.Fatalf("recovered session at round %d, want %d", got, before+2)
	}
}

// TestBreakerReopensOnFailedProbe: a half-open probe that fails re-trips
// the breaker immediately instead of readmitting a storm of plays.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	var failing = false
	st := &flakyStore{Store: ga.NewMemStore(), fail: func() bool { return failing }}
	a := ga.NewAuthority(ga.WithStore(st), ga.WithBreaker(2, 25*time.Millisecond))

	h, err := a.CreateFromSpec(ga.CreateSessionRequest{ID: "brk-2", Game: "pd", Seed: 1})
	if err != nil {
		t.Fatalf("CreateFromSpec: %v", err)
	}
	failing = true
	for i := 0; i < 2; i++ {
		if _, perr := h.Play(context.Background()); !errors.Is(perr, ga.ErrDurability) {
			t.Fatalf("degraded play %d error = %v", i, perr)
		}
	}
	time.Sleep(40 * time.Millisecond)
	// Probe against the still-broken store: one degraded play, then the
	// breaker is open again without waiting for a fresh failure streak.
	if _, perr := h.Play(context.Background()); !errors.Is(perr, ga.ErrDurability) {
		t.Fatalf("failed probe error = %v, want ErrDurability", perr)
	}
	if _, perr := h.Play(context.Background()); !errors.Is(perr, ga.ErrBreakerOpen) {
		t.Fatalf("post-probe play = %v, want ErrBreakerOpen", perr)
	}
}
