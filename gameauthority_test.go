package gameauthority_test

import (
	"math"
	"testing"

	ga "gameauthority"
)

// TestEndToEndFig1 exercises the full public API on the paper's headline
// scenario: the Fig. 1 hidden manipulation, unsupervised vs supervised.
func TestEndToEndFig1(t *testing.T) {
	const rounds = 5000
	strategies := func(int, ga.Profile) ga.MixedProfile {
		return ga.MixedProfile{ga.Uniform(2), ga.Uniform(2)}
	}
	manipulator := &ga.MixedAgent{Override: func(round, honest int) int { return ga.ManipulateAction }}

	unsup, err := ga.NewMixedSession(ga.MixedConfig{
		Elected:    ga.MatchingPennies(),
		Actual:     ga.MatchingPenniesManipulated(),
		Strategies: strategies,
		Agents:     []*ga.MixedAgent{nil, manipulator},
		Mode:       ga.AuditOff,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := unsup.Play(rounds); err != nil {
		t.Fatal(err)
	}

	sup, err := ga.NewMixedSession(ga.MixedConfig{
		Elected:    ga.MatchingPennies(),
		Actual:     ga.MatchingPenniesManipulated(),
		Strategies: strategies,
		Agents:     []*ga.MixedAgent{nil, manipulator},
		Scheme:     ga.NewDisconnectScheme(2, 0),
		Mode:       ga.AuditPerRound,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Play(rounds); err != nil {
		t.Fatal(err)
	}

	gainUnsup := unsup.CumulativePayoff(1) / rounds
	gainSup := sup.CumulativePayoff(1) / rounds
	if gainUnsup < 3.5 {
		t.Fatalf("unsupervised manipulation gain = %v, want ≈ 4", gainUnsup)
	}
	if math.Abs(gainSup) > 0.1 {
		t.Fatalf("supervised manipulation gain = %v, want ≈ 0", gainSup)
	}
	if !sup.Excluded(1) {
		t.Fatal("supervised session did not exclude the manipulator")
	}
}

// TestEndToEndDistributed runs the full distributed middleware through the
// facade: an agent playing outside Π is convicted by every honest replica.
func TestEndToEndDistributed(t *testing.T) {
	g := ga.PrisonersDilemma()
	behaviors := make([]*ga.Agent, 2)
	// Two-player game on a 4-processor network is not supported (one
	// player per processor), so use the 2-processor degenerate bound:
	// f must be 0 (n > 3f).
	s, err := ga.NewDistributedSession(2, 0, g, behaviors, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(4)
	if err := s.ConsistentResults(3); err != nil {
		t.Fatal(err)
	}
	res := s.Procs[0].Results()
	if len(res) < 3 {
		t.Fatalf("plays completed = %d", len(res))
	}
	// Best-response dynamics land on defect/defect.
	last := res[len(res)-1]
	if !last.Outcome.Equal(ga.Profile{1, 1}) {
		t.Fatalf("distributed PD outcome = %v, want [1 1]", last.Outcome)
	}
}

// TestEndToEndRRATheorem5 sweeps R(k) through the facade and checks the
// Theorem 5 bound.
func TestEndToEndRRATheorem5(t *testing.T) {
	const (
		n, b = 8, 4
		k    = 2000
	)
	h, err := ga.NewSupervisedRRA(n, b, 3, ga.NewDisconnectScheme(n, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Play(k); err != nil {
		t.Fatal(err)
	}
	r, err := ga.MultiRoundAnarchyCost(float64(h.RRA().MaxLoad()), ga.OptMaxLoad(n, b, k))
	if err != nil {
		t.Fatal(err)
	}
	if r > ga.Theorem5Bound(b, k)+0.05 {
		t.Fatalf("R(k)=%v above bound %v", r, ga.Theorem5Bound(b, k))
	}
	if r < 1-1e-9 {
		t.Fatalf("R(k)=%v below 1", r)
	}
}

// TestEndToEndElection verifies the legislative service through the facade.
func TestEndToEndElection(t *testing.T) {
	candidates := []ga.Candidate{
		{Game: ga.MatchingPennies(), Description: "pennies"},
		{Game: ga.PrisonersDilemma(), Description: "pd"},
	}
	voters := []ga.Voter{
		{Prefs: []int{0, 1}}, {Prefs: []int{0, 1}}, {Prefs: []int{1, 0}},
	}
	out, err := ga.RobustElection(candidates, voters, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != 0 {
		t.Fatalf("winner = %d, want 0", out.Winner)
	}
}

// TestEndToEndMetrics sanity-checks the metric helpers via the facade.
func TestEndToEndMetrics(t *testing.T) {
	poa, err := ga.PriceOfAnarchy(ga.PrisonersDilemma(), 0)
	if err != nil || math.Abs(poa-2) > 1e-9 {
		t.Fatalf("PoA = %v, %v", poa, err)
	}
	pom, err := ga.PriceOfMalice(3, 2)
	if err != nil || math.Abs(pom-1.5) > 1e-9 {
		t.Fatalf("PoM = %v, %v", pom, err)
	}
	eqs := ga.MixedNashEquilibria2P(ga.MatchingPennies(), 0)
	if len(eqs) != 1 || math.Abs(eqs[0][0][0]-0.5) > 1e-6 {
		t.Fatalf("matching pennies equilibrium = %v", eqs)
	}
}
