// Package prng provides a small, fully deterministic pseudo-random number
// generator used for private action selection and for replayable audits.
//
// The game authority's judicial service must be able to re-derive an agent's
// entire random action sequence from a revealed seed (paper §5.3). That rules
// out math/rand (whose algorithm may change between Go releases) and any
// sampling path that goes through platform-dependent floating point. This
// package therefore implements SplitMix64 — a tiny, well-studied 64-bit
// generator with a stable specification — and performs categorical sampling
// through fixed-point integer thresholds so that the same seed always yields
// the byte-identical choice sequence on every platform.
package prng
