package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUint64Deterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestUint64KnownVector(t *testing.T) {
	// SplitMix64 reference vector for seed 1234567 (first three outputs),
	// computed from the published algorithm. Pins the implementation so a
	// refactor cannot silently change audit replays.
	s := New(1234567)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	a := New(1234567)
	b := New(1234567)
	for i := range got {
		av, bv := a.Uint64(), b.Uint64()
		if av != bv || av != got[i] {
			t.Fatalf("non-deterministic output at %d", i)
		}
	}
	// Distinct seeds should not produce the same first output.
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("seeds 1 and 2 collide on first output")
	}
}

func TestDeriveOrderSensitive(t *testing.T) {
	ab := Derive(7, 1, 2).Uint64()
	ba := Derive(7, 2, 1).Uint64()
	if ab == ba {
		t.Fatal("Derive must be order sensitive")
	}
	if Derive(7, 1, 2).Uint64() != Derive(7, 1, 2).Uint64() {
		t.Fatal("Derive must be deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(99)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3)
	for n := 0; n < 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestCategoricalErrors(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"allzero", []float64{0, 0}},
		{"negative", []float64{0.5, -0.1}},
		{"nan", []float64{math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCategorical(tc.weights); err == nil {
				t.Fatalf("NewCategorical(%v) succeeded, want error", tc.weights)
			}
		})
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	c := MustCategorical([]float64{0, 1, 0})
	s := New(11)
	for i := 0; i < 1000; i++ {
		if got := c.Sample(s); got != 1 {
			t.Fatalf("degenerate distribution sampled %d, want 1", got)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c := MustCategorical([]float64{1, 3})
	s := New(202)
	n1 := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if c.Sample(s) == 1 {
			n1++
		}
	}
	frac := float64(n1) / trials
	if frac < 0.73 || frac > 0.77 {
		t.Errorf("P(1) measured %v, want ~0.75", frac)
	}
}

func TestCategoricalReplayExact(t *testing.T) {
	// The audit-critical property: replaying the same seed reproduces the
	// identical choice sequence.
	c := MustCategorical([]float64{0.2, 0.5, 0.3})
	run := func(seed uint64) []int {
		s := New(seed)
		out := make([]int, 500)
		for i := range out {
			out[i] = c.Sample(s)
		}
		return out
	}
	a, b := run(77), run(77)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestCategoricalLocateMonotone(t *testing.T) {
	c := MustCategorical([]float64{0.1, 0.2, 0.3, 0.4})
	prev := -1
	for _, v := range []uint64{0, 1 << 20, 1 << 40, 1 << 60, math.MaxUint64 / 2, math.MaxUint64} {
		idx := c.Locate(v)
		if idx < prev {
			t.Fatalf("Locate not monotone: %d after %d", idx, prev)
		}
		prev = idx
	}
	if c.Locate(math.MaxUint64) != 3 {
		t.Fatalf("max value must land in last bucket")
	}
}

func TestQuickCategoricalInRange(t *testing.T) {
	f := func(seed uint64, w1, w2, w3 uint8) bool {
		weights := []float64{float64(w1), float64(w2), float64(w3)}
		c, err := NewCategorical(weights)
		if err != nil {
			// All-zero weights: error is the correct behaviour.
			return w1 == 0 && w2 == 0 && w3 == 0
		}
		s := New(seed)
		for i := 0; i < 50; i++ {
			k := c.Sample(s)
			if k < 0 || k > 2 {
				return false
			}
			if weights[k] == 0 {
				return false // must never sample a zero-weight bucket
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, a, b uint64) bool {
		return Derive(seed, a, b).Uint64() == Derive(seed, a, b).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateSnapshotRestore(t *testing.T) {
	s := New(8)
	s.Uint64()
	saved := s.State()
	a := s.Uint64()
	s.SetState(saved)
	if b := s.Uint64(); a != b {
		t.Fatalf("restore mismatch: %d != %d", a, b)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkCategoricalSample(b *testing.B) {
	c := MustCategorical([]float64{0.1, 0.2, 0.3, 0.4})
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Sample(s)
	}
}

func TestMixMatchesDerive(t *testing.T) {
	cases := [][]uint64{
		{0},
		{7, 0xA6E27},
		{7, 0xA6E27, 3},
		{7, 0xA6E27, 3, 41},
		{1 << 63, 0, 0, 0},
	}
	for _, c := range cases {
		seed, labels := c[0], c[1:]
		state := seed
		for _, l := range labels {
			state = Mix(state, l)
		}
		if want := Derive(seed, labels...).State(); state != want {
			t.Fatalf("Mix chain over %v = %#x, Derive = %#x", c, state, want)
		}
	}
}

func TestMixAllocationFree(t *testing.T) {
	var src Source
	allocs := testing.AllocsPerRun(100, func() {
		src.Seed(Mix(Mix(7, 11), 13))
		_ = src.Uint64()
	})
	if allocs != 0 {
		t.Fatalf("Mix + stack Source allocated %v times per run", allocs)
	}
}
