package prng

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoWeights is returned when a categorical distribution has no positive
// weight to sample from.
var ErrNoWeights = errors.New("prng: distribution has no positive weight")

// goldenGamma is the SplitMix64 increment (2^64/phi, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// Source is a deterministic SplitMix64 stream. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield independent
// looking streams; the mapping is pure (no global state, no time).
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new Source whose stream is a deterministic function of the
// parent seed and the given label. It is used to give each agent, round, and
// protocol instance its own independent stream while keeping everything
// replayable from one root seed.
func Derive(seed uint64, labels ...uint64) *Source {
	s := New(seed)
	for _, l := range labels {
		// Mix each label through the stream so Derive(s, a, b) differs
		// from Derive(s, b, a).
		s.state = mix64(s.state ^ mix64(l))
	}
	return &Source{state: s.state}
}

// Mix folds one derivation label into a seed state, exactly as Derive does.
// It lets hot paths derive child streams without the heap allocation of
// Derive's returned Source: fold the labels with Mix and Seed a
// stack-allocated Source with the result.
//
//	var src Source
//	src.Seed(Mix(Mix(root, agentID), round))
//
// Mix(Mix(seed, a), b) equals Derive(seed, a, b).State() by construction.
func Mix(state, label uint64) uint64 {
	return mix64(state ^ mix64(label))
}

// mix64 is the SplitMix64 output mixing function.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += goldenGamma
	return mix64(s.state)
}

// Seed resets the stream to the given seed.
func (s *Source) Seed(seed uint64) { s.state = seed }

// State returns the internal state, so callers can snapshot and restore
// streams (the fault injector uses this to corrupt state deliberately).
func (s *Source) State() uint64 { return s.state }

// SetState restores a previously captured internal state.
func (s *Source) SetState(state uint64) { s.state = state }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics. Uses rejection sampling to avoid modulo bias, which
// matters because audits compare sequences exactly.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	bound := uint64(n)
	// Largest multiple of bound that fits in a uint64.
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
// Only for statistics/reporting — never used on audit-critical paths.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Shuffle pseudo-randomly permutes the first n elements using swap,
// Fisher-Yates order, deterministically for a given stream position.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Categorical is a discrete distribution over {0..k-1} represented by
// cumulative fixed-point thresholds. Sampling consumes exactly one Uint64
// and involves no floating point, so an auditor who re-runs the same seed
// reproduces the identical index sequence (paper §5.3).
type Categorical struct {
	// cum[i] is the exclusive upper bound (in 2^64 fixed point) of
	// category i. Zero-weight categories get zero-width intervals
	// (cum[i] == cum[i-1]) and are never sampled.
	cum []uint64
	// last is the index of the last positive-weight category; the raw
	// value MaxUint64 maps there so trailing zero-weight categories
	// cannot be selected.
	last int
}

// two64 is 2^64 as a float64, used to scale probabilities to fixed point.
const two64 = 18446744073709551616.0

// NewCategorical builds an exact sampler from non-negative weights.
// Weights are normalized internally; at least one must be positive.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, ErrNoWeights
	}
	var total float64
	last := -1
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("prng: invalid weight %v at index %d", w, i)
		}
		if w > 0 {
			last = i
		}
		total += w
	}
	if total <= 0 || last < 0 {
		return nil, ErrNoWeights
	}
	cum := make([]uint64, len(weights))
	var acc float64
	var prev uint64
	for i, w := range weights {
		acc += w / total
		var c uint64
		switch {
		case i >= last:
			// The last positive-weight category (and any trailing
			// zero-weight ones) end at the top of the range.
			c = math.MaxUint64
		case acc*two64 >= two64:
			c = math.MaxUint64
		default:
			c = uint64(acc * two64)
		}
		if c < prev {
			c = prev // keep thresholds monotone despite FP rounding
		}
		cum[i] = c
		prev = c
	}
	return &Categorical{cum: cum, last: last}, nil
}

// MustCategorical is NewCategorical that panics on error; for literals in
// tests and examples where the weights are known valid.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.cum) }

// Sample draws one category index from the stream.
func (c *Categorical) Sample(s *Source) int {
	return c.Locate(s.Uint64())
}

// Locate maps a raw 64-bit value onto a category. Exposed so that auditors
// can replay a recorded Uint64 trace without a Source.
func (c *Categorical) Locate(v uint64) int {
	// Binary search over cumulative thresholds.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v < c.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo > c.last {
		// v == MaxUint64 (no threshold strictly exceeds it): it belongs
		// to the last positive-weight category, not a trailing zero one.
		lo = c.last
	}
	return lo
}

// Thresholds returns a copy of the internal cumulative thresholds, used by
// tests to assert exactness.
func (c *Categorical) Thresholds() []uint64 {
	out := make([]uint64, len(c.cum))
	copy(out, c.cum)
	return out
}
