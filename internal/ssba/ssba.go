package ssba

import (
	"errors"
	"fmt"

	"gameauthority/internal/bap"
	"gameauthority/internal/clocksync"
	"gameauthority/internal/sim"
)

// ErrConfig reports an invalid SSBA configuration.
var ErrConfig = errors.New("ssba: invalid configuration")

// MinModulus returns the smallest clock modulus that fits one complete
// Byzantine agreement (f+1 rounds plus start/decide slack) per wrap.
func MinModulus(f int) int { return bap.Rounds(f) + 3 }

// Msg is the combined per-pulse payload: a clock vote plus, when an
// agreement is in flight, one EIG round of pairs.
type Msg struct {
	Tick    int
	HasBA   bool
	BARound int
	Pairs   []bap.Pair
}

// Decision records one completed agreement.
type Decision struct {
	Pulse int       // pulse at which the decision was made
	Value bap.Value // the agreed value
}

// ProposeFunc supplies the value this processor proposes for the agreement
// starting at the given pulse.
type ProposeFunc func(pulse int) bap.Value

// Proc is one processor's SSBA state machine.
type Proc struct {
	id, n, f, m int
	clock       *clocksync.Clock
	propose     ProposeFunc

	ba      *bap.EIG
	baRound int

	pulseNo   int
	decisions []Decision
}

var (
	_ sim.Process     = (*Proc)(nil)
	_ sim.Corruptible = (*Proc)(nil)
)

// New creates processor id's SSBA process. m may be 0 to use MinModulus(f).
// propose must not be nil.
func New(id, n, f, m int, seed uint64, propose ProposeFunc) (*Proc, error) {
	if propose == nil {
		return nil, fmt.Errorf("%w: nil propose function", ErrConfig)
	}
	if m == 0 {
		m = MinModulus(f)
	}
	if m < MinModulus(f) {
		return nil, fmt.Errorf("%w: m=%d below MinModulus=%d", ErrConfig, m, MinModulus(f))
	}
	clock, err := clocksync.New(id, n, f, m, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return &Proc{id: id, n: n, f: f, m: m, clock: clock, propose: propose}, nil
}

// ID implements sim.Process.
func (p *Proc) ID() int { return p.id }

// ClockValue returns the current clock value (diagnostics).
func (p *Proc) ClockValue() int { return p.clock.Value() }

// M returns the clock modulus.
func (p *Proc) M() int { return p.m }

// Decisions returns the log of completed agreements (oldest first).
func (p *Proc) Decisions() []Decision {
	return append([]Decision(nil), p.decisions...)
}

// Step implements sim.Process. Per pulse: (1) feed clock votes and BA pairs
// from the inbox, (2) tick the clock, (3) progress or complete the BA in
// flight, (4) start a fresh BA when the clock reads 1, (5) broadcast the
// combined payload.
func (p *Proc) Step(pulse int, inbox []sim.Message) []sim.Message {
	p.pulseNo++

	type baIn struct {
		from  int
		pairs []bap.Pair
	}
	var baInbox []baIn
	gotVotes := false
	for _, m := range inbox {
		msg, ok := m.Payload.(Msg)
		if !ok {
			continue
		}
		p.clock.Vote(m.From, msg.Tick)
		gotVotes = true
		if msg.HasBA && p.ba != nil && msg.BARound == p.baRound-1 {
			baInbox = append(baInbox, baIn{from: m.From, pairs: msg.Pairs})
		}
	}
	_ = gotVotes
	p.clock.Tick()

	// Progress the agreement in flight with last round's pairs.
	if p.ba != nil && p.baRound > 0 && !p.ba.Decided() {
		for _, in := range baInbox {
			p.ba.Absorb(p.baRound-1, in.from, in.pairs)
		}
		p.ba.EndRound()
		if p.ba.Decided() {
			v, err := p.ba.Decision()
			if err == nil {
				p.decisions = append(p.decisions, Decision{Pulse: pulse, Value: v})
			}
			p.ba = nil
		}
	}

	// Clock reading 1 starts a fresh agreement, unconditionally discarding
	// any stale instance (self-stabilization: garbage state dies here).
	if p.clock.Value() == 1 {
		ba, err := bap.NewEIG(p.id, p.n, p.f, p.propose(pulse))
		if err == nil {
			p.ba = ba
			p.baRound = 0
		}
	}

	// Broadcast combined payload.
	out := Msg{Tick: p.clock.Value()}
	if p.ba != nil && !p.ba.Decided() {
		out.HasBA = true
		out.BARound = p.baRound
		out.Pairs = p.ba.RoundMessages(p.baRound)
		p.baRound++
	}
	msgs := make([]sim.Message, 0, p.n)
	for to := 0; to < p.n; to++ {
		msgs = append(msgs, sim.Message{From: p.id, To: to, Payload: out})
	}
	return msgs
}

// Corrupt implements sim.Corruptible: scrambles clock, BA instance, round
// counters and the decision log (the §4.1 transient-fault adversary).
func (p *Proc) Corrupt(entropy func() uint64) {
	p.clock.Corrupt(entropy)
	p.baRound = int(entropy() % uint64(p.f+3))
	if entropy()&1 == 0 {
		ba, err := bap.NewEIG(p.id, p.n, p.f, bap.Value(fmt.Sprintf("stale-%d", entropy()%7)))
		if err == nil {
			ba.Corrupt(entropy)
			p.ba = ba
		}
	} else {
		p.ba = nil
	}
	p.decisions = nil
}

// Harness drives a set of SSBA processors and checks the Theorem 1
// properties over the honest subset.
type Harness struct {
	Net    *sim.Network
	Procs  []*Proc
	Honest []int
}

// NewHarness builds n SSBA processors over a full mesh. byz maps processor
// ids to adversaries. propose receives (id, pulse).
func NewHarness(n, f, m int, seed uint64, propose func(id, pulse int) bap.Value, byz map[int]sim.Adversary) (*Harness, error) {
	procs := make([]sim.Process, n)
	raw := make([]*Proc, n)
	for i := 0; i < n; i++ {
		i := i
		p, err := New(i, n, f, m, seed, func(pulse int) bap.Value { return propose(i, pulse) })
		if err != nil {
			return nil, err
		}
		raw[i] = p
		procs[i] = p
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		return nil, err
	}
	var honest []int
	for i := 0; i < n; i++ {
		if _, bad := byz[i]; !bad {
			honest = append(honest, i)
		} else {
			nw.SetByzantine(i, byz[i])
		}
	}
	return &Harness{Net: nw, Procs: raw, Honest: honest}, nil
}

// AgreementViolation describes a Theorem 1 property violation found by
// CheckDecisions.
type AgreementViolation struct {
	Kind  string // "agreement" | "alignment"
	Pulse int
	Info  string
}

// CheckDecisions compares the last `periods` decisions of all honest
// processors: they must have decided at the same pulses on the same values.
// Returns violations (empty = Theorem 1 holds over the window).
func (h *Harness) CheckDecisions(periods int) []AgreementViolation {
	var out []AgreementViolation
	if len(h.Honest) == 0 {
		return out
	}
	ref := h.Procs[h.Honest[0]].Decisions()
	if len(ref) > periods {
		ref = ref[len(ref)-periods:]
	}
	for _, id := range h.Honest[1:] {
		d := h.Procs[id].Decisions()
		if len(d) > periods {
			d = d[len(d)-periods:]
		}
		if len(d) != len(ref) {
			out = append(out, AgreementViolation{
				Kind: "alignment",
				Info: fmt.Sprintf("proc %d has %d decisions, proc %d has %d", id, len(d), h.Honest[0], len(ref)),
			})
			continue
		}
		for k := range ref {
			if d[k].Pulse != ref[k].Pulse || d[k].Value != ref[k].Value {
				out = append(out, AgreementViolation{
					Kind:  "agreement",
					Pulse: d[k].Pulse,
					Info:  fmt.Sprintf("proc %d decided %q@%d, proc %d decided %q@%d", id, d[k].Value, d[k].Pulse, h.Honest[0], ref[k].Value, ref[k].Pulse),
				})
			}
		}
	}
	return out
}

// ConvergencePulses corrupts the system with the given entropy source, then
// runs until every honest processor has completed `stable` aligned
// agreements, returning the pulse count (or maxPulses+1 on timeout).
// This is the Lemma 2 measurement.
func (h *Harness) ConvergencePulses(entropy func() uint64, stable, maxPulses int) int {
	h.Net.Corrupt(entropy)
	baseline := make([]int, len(h.Procs))
	for pulse := 1; pulse <= maxPulses; pulse++ {
		h.Net.StepLockstep()
		// Converged when all honest have ≥ stable decisions past their
		// post-corruption baseline and the tails align.
		ready := true
		for _, id := range h.Honest {
			if len(h.Procs[id].Decisions())-baseline[id] < stable {
				ready = false
				break
			}
		}
		if ready && len(h.CheckDecisions(stable)) == 0 {
			return pulse
		}
	}
	return maxPulses + 1
}
