package ssba

import (
	"fmt"
	"testing"

	"gameauthority/internal/bap"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestAgreementWithDivergentProposals(t *testing.T) {
	// Honest processors propose different values each period; the BA
	// property required is agreement (same value everywhere), not any
	// particular winner.
	propose := func(id, pulse int) bap.Value {
		return bap.Value(fmt.Sprintf("proc%d@%d", id, pulse))
	}
	h, err := NewHarness(4, 1, 0, 71, propose, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Net.Run(8 * h.Procs[0].M())
	if v := h.CheckDecisions(6); len(v) != 0 {
		t.Fatalf("divergent-proposal agreement violations: %+v", v)
	}
	// Validity-lite: each agreed value must be one of the honest proposals
	// or the protocol default.
	for _, d := range h.Procs[0].Decisions() {
		if d.Value == "" {
			continue
		}
		var match bool
		for id := 0; id < 4; id++ {
			// The proposal pulse is not exposed; accept the right shape.
			var pid, pp int
			if _, err := fmt.Sscanf(string(d.Value), "proc%d@%d", &pid, &pp); err == nil {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("agreed value %q is not any honest proposal", d.Value)
		}
	}
}

func TestDropAdversaryOnSSBA(t *testing.T) {
	byz := map[int]sim.Adversary{3: sim.DropAdversary(5, 0.5)}
	h, err := NewHarness(4, 1, 0, 72, constPropose("drop"), byz)
	if err != nil {
		t.Fatal(err)
	}
	ent := prng.New(44)
	if p := h.ConvergencePulses(ent.Uint64, 2, 100000); p > 100000 {
		t.Fatal("no convergence with a dropping Byzantine")
	}
	h.Net.Run(10 * h.Procs[0].M())
	if v := h.CheckDecisions(8); len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
}

func TestRepeatedCorruptionAlwaysRecovers(t *testing.T) {
	// Hammer the system with corruption bursts; it must recover after
	// every one (the self-stabilization property is memoryless).
	h, err := NewHarness(4, 1, 0, 73, constPropose("again"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for burst := uint64(0); burst < 4; burst++ {
		ent := prng.New(1000 + burst*13)
		if p := h.ConvergencePulses(ent.Uint64, 2, 100000); p > 100000 {
			t.Fatalf("burst %d: no recovery", burst)
		}
	}
}

func TestMinModulusMonotone(t *testing.T) {
	prev := 0
	for f := 0; f < 5; f++ {
		m := MinModulus(f)
		if m <= prev {
			t.Fatalf("MinModulus not increasing at f=%d", f)
		}
		if m < bap.Rounds(f)+2 {
			t.Fatalf("modulus %d cannot fit a BA of %d rounds", m, bap.Rounds(f))
		}
		prev = m
	}
}
