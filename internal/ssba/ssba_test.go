package ssba

import (
	"errors"
	"fmt"
	"testing"

	"gameauthority/internal/bap"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 1, 8, 1, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil propose: err = %v", err)
	}
	if _, err := New(0, 4, 1, 2, 1, func(int) bap.Value { return "v" }); !errors.Is(err, ErrConfig) {
		t.Fatalf("tiny modulus: err = %v", err)
	}
	if _, err := New(0, 3, 1, 0, 1, func(int) bap.Value { return "v" }); !errors.Is(err, ErrConfig) {
		t.Fatalf("n=3f: err = %v", err)
	}
	p, err := New(0, 4, 1, 0, 1, func(int) bap.Value { return "v" })
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != MinModulus(1) {
		t.Fatalf("default modulus = %d, want %d", p.M(), MinModulus(1))
	}
}

func constPropose(v string) func(id, pulse int) bap.Value {
	return func(id, pulse int) bap.Value { return bap.Value(v) }
}

func TestTheorem1CleanStartProducesAlignedAgreements(t *testing.T) {
	h, err := NewHarness(4, 1, 0, 11, constPropose("motion"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Clean start: clocks are synchronized at 0, so periods come every M
	// pulses. Run long enough for several agreements.
	h.Net.Run(10 * h.Procs[0].M())
	if len(h.Procs[0].Decisions()) < 5 {
		t.Fatalf("only %d agreements over 10 periods", len(h.Procs[0].Decisions()))
	}
	if v := h.CheckDecisions(5); len(v) != 0 {
		t.Fatalf("violations on clean start: %+v", v)
	}
	// Validity: all honest proposed "motion", so decisions must be it.
	for _, d := range h.Procs[0].Decisions() {
		if d.Value != "motion" {
			t.Fatalf("validity violated: decided %q", d.Value)
		}
	}
}

func TestTheorem1ExactlyOneAgreementPerPeriod(t *testing.T) {
	// Lemma 3: during M pulses there is exactly one agreement.
	h, err := NewHarness(4, 1, 0, 12, constPropose("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := h.Procs[0].M()
	h.Net.Run(3 * m) // warm up
	before := len(h.Procs[0].Decisions())
	h.Net.Run(5 * m)
	after := len(h.Procs[0].Decisions())
	if got := after - before; got != 5 {
		t.Fatalf("agreements in 5 periods = %d, want exactly 5", got)
	}
}

func TestLemma2ConvergenceFromArbitraryConfigurations(t *testing.T) {
	for trial := uint64(0); trial < 6; trial++ {
		h, err := NewHarness(4, 1, 0, 100+trial, constPropose("v"), nil)
		if err != nil {
			t.Fatal(err)
		}
		ent := prng.New(3000 + trial)
		pulses := h.ConvergencePulses(ent.Uint64, 2, 20000)
		if pulses > 20000 {
			t.Fatalf("trial %d: no convergence", trial)
		}
	}
}

func TestLemma3ClosureLongRun(t *testing.T) {
	// After convergence, a long execution must show zero violations and
	// exactly one agreement per period.
	h, err := NewHarness(4, 1, 0, 55, constPropose("steady"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ent := prng.New(77)
	if p := h.ConvergencePulses(ent.Uint64, 2, 20000); p > 20000 {
		t.Fatal("no convergence")
	}
	m := h.Procs[0].M()
	before := len(h.Procs[0].Decisions())
	h.Net.Run(50 * m)
	if v := h.CheckDecisions(40); len(v) != 0 {
		t.Fatalf("closure violations: %+v", v)
	}
	got := len(h.Procs[0].Decisions()) - before
	if got != 50 {
		t.Fatalf("agreements over 50 periods = %d, want 50", got)
	}
}

func TestSSBAWithByzantineEquivocator(t *testing.T) {
	// A Byzantine processor equivocates on both clock votes and BA pairs.
	evil := prng.New(5)
	byz := map[int]sim.Adversary{3: sim.EquivocateAdversary(func(to int, payload any) any {
		msg, ok := payload.(Msg)
		if !ok {
			return payload
		}
		msg.Tick = int(evil.Uint64() % 8)
		forged := make([]bap.Pair, len(msg.Pairs))
		for i, pr := range msg.Pairs {
			forged[i] = bap.Pair{Label: pr.Label, Val: bap.Value(fmt.Sprintf("evil%d", to))}
		}
		msg.Pairs = forged
		return msg
	})}
	h, err := NewHarness(4, 1, 0, 66, constPropose("good"), byz)
	if err != nil {
		t.Fatal(err)
	}
	ent := prng.New(99)
	if p := h.ConvergencePulses(ent.Uint64, 2, 100000); p > 100000 {
		t.Fatal("no convergence under equivocation")
	}
	h.Net.Run(20 * h.Procs[0].M())
	if v := h.CheckDecisions(15); len(v) != 0 {
		t.Fatalf("violations with equivocator: %+v", v)
	}
	// Validity among honest: all proposed "good".
	dec := h.Procs[0].Decisions()
	for _, d := range dec[len(dec)-10:] {
		if d.Value != "good" {
			t.Fatalf("validity violated under equivocation: %q", d.Value)
		}
	}
}

func TestSSBASevenProcsTwoByzantine(t *testing.T) {
	if testing.Short() {
		t.Skip("long convergence; skipped in -short")
	}
	evil := prng.New(8)
	byz := map[int]sim.Adversary{
		5: sim.SilentAdversary(),
		6: sim.EquivocateAdversary(func(to int, payload any) any {
			msg, ok := payload.(Msg)
			if !ok {
				return payload
			}
			msg.Tick = int(evil.Uint64() % 16)
			return msg
		}),
	}
	h, err := NewHarness(7, 2, 0, 13, constPropose("seven"), byz)
	if err != nil {
		t.Fatal(err)
	}
	ent := prng.New(21)
	if p := h.ConvergencePulses(ent.Uint64, 2, 300000); p > 300000 {
		t.Fatal("n=7 f=2: no convergence")
	}
	h.Net.Run(10 * h.Procs[0].M())
	if v := h.CheckDecisions(8); len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
}

func TestDecisionLogIsolation(t *testing.T) {
	p, err := New(0, 4, 1, 0, 9, func(int) bap.Value { return "v" })
	if err != nil {
		t.Fatal(err)
	}
	d := p.Decisions()
	d = append(d, Decision{Pulse: 1, Value: "x"})
	if len(p.Decisions()) != 0 {
		t.Fatal("Decisions() exposes internal slice")
	}
}

func TestCorruptDoesNotPanicAndRecovers(t *testing.T) {
	h, err := NewHarness(4, 1, 0, 14, constPropose("v"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ent := prng.New(123)
	// Corrupt repeatedly mid-run; system must keep recovering.
	for burst := 0; burst < 3; burst++ {
		h.Net.Corrupt(ent.Uint64)
		h.Net.Run(500)
	}
	if p := h.ConvergencePulses(ent.Uint64, 2, 50000); p > 50000 {
		t.Fatal("failed to recover after repeated corruption")
	}
}
