// Package ssba implements the paper's Theorem 1: a self-stabilizing
// Byzantine agreement protocol ("SSBA") obtained by composing the
// self-stabilizing Byzantine clock synchronization of internal/clocksync
// with the Byzantine agreement protocol of internal/bap. Whenever the clock
// value reaches 1, a fresh BAP instance is invoked; the clock modulus M is
// taken large enough that exactly one agreement fits in each wrap (§4:
// "we take the clock size logM to be large enough to allow exactly one
// Byzantine agreement").
//
// Lemma 2 (convergence): from an arbitrary configuration the clocks
// synchronize within finitely many pulses; the first synchronized wrap
// reaching value 1 starts a clean BAP run, so a safe configuration is
// reached. Lemma 3 (closure): from a safe configuration, every M-pulse
// period performs exactly one Byzantine agreement satisfying termination,
// validity and agreement. The E-T1/E-L2/E-L3 experiments measure both.
package ssba
