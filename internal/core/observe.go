package core

import (
	"sync"

	"gameauthority/internal/audit"
	"gameauthority/internal/game"
)

// EventKind classifies session events for the observer stream.
type EventKind int

// Session event kinds.
const (
	// EventPlay is emitted after every completed play.
	EventPlay EventKind = iota + 1
	// EventVerdict is emitted when the judicial service issues a verdict
	// with at least one foul.
	EventVerdict
	// EventConviction is emitted when the executive service newly excludes
	// an agent.
	EventConviction
	// EventElection is emitted when the legislative service elects the
	// game. It is sticky: late subscribers receive it on subscription.
	EventElection
	// EventClockRecovery is emitted by the distributed driver when a play
	// lands after a pulse gap larger than one protocol period — the
	// self-stabilizing clock has re-converged after a transient fault.
	EventClockRecovery
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventPlay:
		return "play"
	case EventVerdict:
		return "verdict"
	case EventConviction:
		return "conviction"
	case EventElection:
		return "election"
	case EventClockRecovery:
		return "clock-recovery"
	default:
		return "unknown"
	}
}

// Event is one entry in a session's observer stream. Only the fields
// relevant to Kind are set.
type Event struct {
	Kind EventKind
	// Seq is the session-scoped sequence number stamped at emit time:
	// strictly increasing from 1 across every event the session publishes.
	// Subscribers that resume after a disconnect use it to tell replayed
	// events from new ones. (Sticky election replays keep their original
	// stamp, so a fresh subscriber may see an old seq first.)
	Seq   uint64
	Round int
	// Outcome is the published profile (EventPlay).
	Outcome game.Profile
	// Costs are the per-agent costs of the play (EventPlay, when known).
	Costs []float64
	// Fouls are the judicial findings (EventVerdict).
	Fouls []audit.Foul
	// Agent is the newly excluded agent (EventConviction).
	Agent int
	// Winner is the elected candidate index (EventElection).
	Winner int
	// Pulse is the network pulse of the play (distributed driver).
	Pulse int
	// Detail is a human-readable annotation.
	Detail string
}

// Observer receives session events. Implementations must not call back
// into the session that delivered the event.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// observerHub fans session events out to subscribers. Sticky events
// (elections) are replayed to late subscribers.
type observerHub struct {
	mu     sync.Mutex
	subs   map[int]Observer
	next   int
	seq    uint64
	sticky []Event
}

func newObserverHub() *observerHub {
	return &observerHub{subs: make(map[int]Observer)}
}

// subscribe registers o and returns a cancel function. Sticky events are
// delivered synchronously before subscribe returns.
func (h *observerHub) subscribe(o Observer) func() {
	h.mu.Lock()
	id := h.next
	h.next++
	h.subs[id] = o
	replay := append([]Event(nil), h.sticky...)
	h.mu.Unlock()
	for _, e := range replay {
		o.OnEvent(e)
	}
	return func() {
		h.mu.Lock()
		delete(h.subs, id)
		h.mu.Unlock()
	}
}

// active reports whether anyone is subscribed. Drivers use it to skip
// event assembly (and its allocations) on unobserved sessions.
func (h *observerHub) active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// emit stamps e with the next session sequence number and delivers it to
// every current subscriber (outside the hub lock).
func (h *observerHub) emit(e Event) {
	h.mu.Lock()
	h.seq++
	e.Seq = h.seq
	if e.Kind == EventElection {
		h.sticky = append(h.sticky, e)
	}
	targets := make([]Observer, 0, len(h.subs))
	for _, o := range h.subs {
		targets = append(targets, o)
	}
	h.mu.Unlock()
	for _, o := range targets {
		o.OnEvent(e)
	}
}

// emitAll delivers a batch in order.
func (h *observerHub) emitAll(events []Event) {
	for _, e := range events {
		h.emit(e)
	}
}
