package core

import (
	"fmt"

	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
)

// This file implements the paper's suggested auditing refinements beyond
// the base per-round/batched disciplines:
//
//   - AuditSampled — §1.1: "further research can improve the design and
//     allow better scalability (e.g., using auditing, rather than constant
//     monitoring)". Seeds are committed every round (cheap), but the
//     expensive reveal+verdict agreements run only on randomly spot-checked
//     rounds. Cheaters are still caught — later, with probability 1 over
//     time — for a fraction of the agreement traffic.
//
//   - AuditStatistical — §5.2's screening problem: with no seeds at all,
//     the judicial service watches each agent's empirical action frequency
//     against its declared mixed strategy over a sliding window and flags
//     deviations (audit.FrequencyCheck). Detection is probabilistic and
//     gradual (ReasonSuspiciousDistribution has low severity), trading
//     certainty for zero cryptographic overhead.

// Additional audit modes (continuing the AuditMode enumeration).
const (
	// AuditSampled audits each round only with probability SampleProb.
	AuditSampled AuditMode = iota + 4
	// AuditStatistical audits action frequencies over sliding windows.
	AuditStatistical
)

// modeString extends AuditMode.String for the extension modes; called from
// AuditMode.String.
func modeString(m AuditMode) (string, bool) {
	switch m {
	case AuditSampled:
		return "sampled", true
	case AuditStatistical:
		return "statistical", true
	default:
		return "", false
	}
}

// sampledThisRound decides (deterministically from the session seed)
// whether the judicial service spot-checks the given round.
func (s *MixedSession) sampledThisRound(round int) bool {
	src := prng.Derive(s.cfg.Seed, 0x5A3B1E, uint64(round))
	return src.Float64() < s.cfg.SampleProb
}

// playSampled handles one play under AuditSampled. Commitments are made
// every round (so evidence exists whenever a check fires); reveal and
// verdict agreements run only on sampled rounds.
func (s *MixedSession) playSampled(strategies game.MixedProfile) (game.Profile, error) {
	// Outcome agreement for the previous play.
	if s.round > 0 {
		s.addAgreement()
	}
	n := s.n
	roundSeeds := make([]uint64, n)
	roundCommits := make([]commit.Digest, n)
	roundOps := make([]commit.Opening, n)
	for i := 0; i < n; i++ {
		roundSeeds[i] = prng.Derive(s.cfg.Seed, 0x5EED, uint64(i), uint64(s.round)).Uint64()
		src := deriveAgentSource(s.cfg.Seed, i, s.round)
		roundCommits[i], roundOps[i] = commit.Commit(src, audit.EncodeSeed(roundSeeds[i]))
		s.stats.Commitments++
	}
	s.addAgreement() // commitment set (every round: binds the choice)

	outcome, err := s.selectActions(strategies, func(i int) uint64 { return roundSeeds[i] })
	if err != nil {
		return nil, err
	}
	s.addAgreement() // publish outcome

	for i := 0; i < n; i++ {
		s.cumCost[i] += s.actual.Cost(i, outcome)
	}

	if s.sampledThisRound(s.round) {
		ev := audit.MixedEvidence{
			Round:           s.round,
			Strategies:      strategies,
			SeedCommitments: roundCommits,
			SeedOpenings:    make([]commit.Opening, n),
			Revealed:        make([]bool, n),
			Actions:         outcome,
		}
		for i := 0; i < n; i++ {
			agent := s.cfg.Agents[i]
			if !s.Excluded(i) && agent != nil && agent.Withhold != nil && agent.Withhold(s.round) {
				continue
			}
			op := roundOps[i]
			if !s.Excluded(i) && agent != nil && agent.TamperSeedOpening != nil {
				op = agent.TamperSeedOpening(s.round, op.Clone())
			}
			ev.SeedOpenings[i] = op
			ev.Revealed[i] = true
			s.stats.Reveals++
		}
		s.addAgreement() // reveal set
		verdict, err := audit.MixedPerRound(s.cfg.Elected, ev)
		if err != nil {
			return nil, fmt.Errorf("core: sampled audit: %w", err)
		}
		s.applyVerdict(verdict)
	}

	s.prev = outcome
	s.round++
	return outcome, nil
}

// playStatistical handles one play under AuditStatistical: actions are
// sampled without commitments; the judicial service checks legitimacy every
// round and frequency conformance every Window rounds.
func (s *MixedSession) playStatistical(strategies game.MixedProfile) (game.Profile, error) {
	if s.round > 0 {
		s.addAgreement() // previous outcome
	}
	outcome, err := s.selectActions(strategies, func(i int) uint64 {
		return prng.Derive(s.cfg.Seed, 0x5EED, uint64(i), uint64(s.round)).Uint64()
	})
	if err != nil {
		return nil, err
	}
	s.addAgreement() // publish outcome

	for i := 0; i < s.n; i++ {
		s.cumCost[i] += s.actual.Cost(i, outcome)
	}

	// Legitimacy is checked instantly (actions are public).
	var verdict audit.Verdict
	for i := 0; i < s.n; i++ {
		if s.Excluded(i) {
			continue
		}
		if outcome[i] < 0 || outcome[i] >= s.cfg.Elected.NumActions(i) {
			verdict.Fouls = append(verdict.Fouls, audit.Foul{
				Agent: i, Reason: audit.ReasonIllegitimateAction,
				Detail: fmt.Sprintf("round %d: action %d outside Π(%d)", s.round, outcome[i], i),
			})
			continue
		}
		s.window[i] = append(s.window[i], outcome[i])
	}

	// Window full → frequency screen per agent.
	if (s.round+1)%s.cfg.Window == 0 {
		for i := 0; i < s.n; i++ {
			if s.Excluded(i) || len(s.window[i]) == 0 {
				s.window[i] = s.window[i][:0]
				continue
			}
			stat, suspicious, err := audit.FrequencyCheck(strategies[i], s.window[i], s.cfg.ChiThreshold)
			if err != nil {
				return nil, fmt.Errorf("core: frequency check: %w", err)
			}
			if suspicious {
				verdict.Fouls = append(verdict.Fouls, audit.Foul{
					Agent: i, Reason: audit.ReasonSuspiciousDistribution,
					Detail: fmt.Sprintf("rounds %d-%d: χ²=%.2f > %.2f", s.round+1-s.cfg.Window, s.round, stat, s.cfg.ChiThreshold),
				})
			}
			s.window[i] = s.window[i][:0]
		}
	}
	if len(verdict.Fouls) > 0 || (s.round+1)%s.cfg.Window == 0 {
		s.applyVerdict(verdict)
	}

	s.prev = outcome
	s.round++
	return outcome, nil
}

// selectActions draws every agent's action: excluded agents get the
// executive's sample, honest agents their own stream, cheaters whatever
// Override returns.
func (s *MixedSession) selectActions(strategies game.MixedProfile, seedOf func(i int) uint64) (game.Profile, error) {
	outcome := make(game.Profile, s.n)
	for i := 0; i < s.n; i++ {
		honest, err := audit.ExpectedAction(strategies[i], seedOf(i), i, s.round)
		if err != nil {
			return nil, fmt.Errorf("core: sample agent %d: %w", i, err)
		}
		action := honest
		agent := s.cfg.Agents[i]
		if s.Excluded(i) {
			execSeed := prng.Derive(s.cfg.Seed, 0xE8EC, uint64(i)).Uint64()
			action, err = audit.ExpectedAction(strategies[i], execSeed, i, s.round)
			if err != nil {
				return nil, fmt.Errorf("core: executive sample %d: %w", i, err)
			}
		} else if agent != nil && agent.Override != nil {
			action = agent.Override(s.round, honest)
		}
		outcome[i] = action
	}
	return outcome, nil
}
