package core

import (
	"fmt"
	"sort"

	"gameauthority/internal/game"
)

// Deviant is a player-level selfish strategy: a named behaviour one
// participant adopts to try to profit from unilateral deviation while the
// authority supervises the session. A Deviant is driver-agnostic — it
// compiles itself into the hook set each driver understands:
//
//   - PureAgent is used by the pure and distributed drivers (§3.3 plays);
//   - MixedAgentFor is used by the mixed driver (§5 committed-randomness
//     plays);
//   - RRAChooser is used by the §6 repeated-resource-allocation driver.
//
// Concrete strategies live in internal/deviate; the façade wires them into
// a session with ga.WithDeviant(player, strategy). Deviants compose with
// the existing network-level sim adversaries on the distributed driver:
// one processor can both deviate at the application layer and garble its
// traffic at the wire layer.
type Deviant interface {
	// Name identifies the strategy in reports and over HTTP.
	Name() string
	// PureAgent returns the strategy's pure-strategy behaviour for the
	// given player of g (pure and distributed drivers). seed derives any
	// strategy-private randomness.
	PureAgent(g game.Game, player int, seed uint64) *Agent
	// MixedAgentFor returns the strategy's mixed-strategy behaviour for
	// the given player of g (mixed driver).
	MixedAgentFor(g game.Game, player int, seed uint64) *MixedAgent
	// RRAChooser returns the strategy's per-round resource choice for the
	// RRA driver. The harness hands it the round index, the pre-step
	// cumulative loads, and the honest committed-stream sample it is
	// expected to play; returning anything else is an off-stream action
	// the seed audit can expose.
	RRAChooser(player int, seed uint64) func(round int, loads []int64, honest int) int
}

// applyDeviants validates the deviant map against the player count and
// returns the players in ascending order (for deterministic installation
// order and error reporting).
func deviantPlayers(deviants map[int]Deviant, n int) ([]int, error) {
	if len(deviants) == 0 {
		return nil, nil
	}
	players := make([]int, 0, len(deviants))
	for player, d := range deviants {
		if player < 0 || player >= n {
			return nil, fmt.Errorf("%w: deviant player %d out of range [0,%d)", ErrConfig, player, n)
		}
		if d == nil {
			return nil, fmt.Errorf("%w: nil deviant strategy for player %d", ErrConfig, player)
		}
		players = append(players, player)
	}
	sort.Ints(players)
	return players, nil
}

// installPureDeviants compiles the configured deviants into pure-strategy
// agents (pure and distributed drivers). The agents slice is the session's
// own copy; explicit agents and deviants on the same player conflict.
func installPureDeviants(agents []*Agent, deviants map[int]Deviant, g game.Game, seed uint64) error {
	players, err := deviantPlayers(deviants, len(agents))
	if err != nil {
		return err
	}
	for _, player := range players {
		if agents[player] != nil {
			return fmt.Errorf("%w: player %d has both an explicit agent and a deviant strategy", ErrConfig, player)
		}
		agents[player] = deviants[player].PureAgent(g, player, seed)
	}
	return nil
}

// installMixedDeviants compiles the configured deviants into mixed-strategy
// agents.
func installMixedDeviants(agents []*MixedAgent, deviants map[int]Deviant, g game.Game, seed uint64) error {
	players, err := deviantPlayers(deviants, len(agents))
	if err != nil {
		return err
	}
	for _, player := range players {
		if agents[player] != nil {
			return fmt.Errorf("%w: player %d has both an explicit mixed agent and a deviant strategy", ErrConfig, player)
		}
		agents[player] = deviants[player].MixedAgentFor(g, player, seed)
	}
	return nil
}
