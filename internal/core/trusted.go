package core

import (
	"fmt"

	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

// PureSession is the trusted driver for repeated plays under pure
// strategies (§3.3): commitments make choices private and simultaneous,
// the judicial service audits every play, and the executive applies the
// punishment scheme. The agreement steps are executed centrally — the
// distributed driver proves they can be Byzantine-agreed; this driver
// reuses the identical audit/punish logic at game-sweep speed.
type PureSession struct {
	g      game.Game
	agents []*Agent
	scheme punish.Scheme
	seed   uint64

	round   int
	prev    game.Profile
	history []RoundResult

	// cumulative per-agent cost over plays where the agent was active.
	cumCost []float64
}

// RoundResult records one audited play. It is the uniform result type of
// the Session interface: every driver (pure, mixed, RRA, distributed)
// reports completed plays in this shape; fields a driver cannot establish
// are left zero (e.g. Costs on RRA plays, Verdict details on distributed
// plays, Pulse on trusted drivers).
type RoundResult struct {
	Round int
	// Outcome is the published PSP of the play (after executive
	// substitutions for convicted/unrevealed actions).
	Outcome game.Profile
	// Verdict is the judicial service's finding.
	Verdict audit.Verdict
	// Convicted lists the agents found guilty in this play's verdict.
	Convicted []int
	// Excluded lists agents barred from this play (punished earlier);
	// their actions were chosen by the executive on their behalf.
	Excluded []int
	// Costs[i] is agent i's cost in this play.
	Costs []float64
	// Pulse is the network pulse at which the play completed (distributed
	// driver only).
	Pulse int
}

// NewPureSession builds a session over the elected game with one Agent per
// player. scheme may be nil for punish-less operation (the "no authority"
// baseline in experiments).
func NewPureSession(g game.Game, agents []*Agent, scheme punish.Scheme, seed uint64) (*PureSession, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil game", ErrConfig)
	}
	if len(agents) != g.NumPlayers() {
		return nil, fmt.Errorf("%w: %d agents for %d players", ErrConfig, len(agents), g.NumPlayers())
	}
	for i, a := range agents {
		if a == nil || a.Choose == nil {
			return nil, fmt.Errorf("%w: agent %d has no Choose", ErrConfig, i)
		}
	}
	return &PureSession{
		g:       g,
		agents:  agents,
		scheme:  scheme,
		seed:    seed,
		cumCost: make([]float64, len(agents)),
	}, nil
}

// Round returns the number of completed plays.
func (s *PureSession) Round() int { return s.round }

// History returns all round results (oldest first).
func (s *PureSession) History() []RoundResult {
	return append([]RoundResult(nil), s.history...)
}

// CumulativeCost returns agent i's total cost so far.
func (s *PureSession) CumulativeCost(i int) float64 { return s.cumCost[i] }

// CumulativePayoff returns agent i's total payoff (negated cost) so far —
// the Fig. 1 experiments report payoffs.
func (s *PureSession) CumulativePayoff(i int) float64 { return -s.cumCost[i] }

// Excluded reports whether agent i is currently excluded by the scheme.
func (s *PureSession) Excluded(i int) bool {
	return s.scheme != nil && s.scheme.Excluded(i)
}

// PlayRound executes one full play of the protocol: choice → commitment →
// reveal → audit → punish → publish.
func (s *PureSession) PlayRound() (RoundResult, error) {
	n := s.g.NumPlayers()
	ev := audit.PlayEvidence{
		Round:       s.round,
		PrevOutcome: s.prev,
		Commitments: make([]commit.Digest, n),
		Openings:    make([]commit.Opening, n),
		Revealed:    make([]bool, n),
	}
	var excluded []int

	// Choice + commitment phase. Excluded agents do not choose: the
	// executive restricts them to the authority-computed best response
	// (§3.4 "restricts the action of dishonest agents").
	chosen := make(game.Profile, n)
	for i, a := range s.agents {
		if s.Excluded(i) {
			excluded = append(excluded, i)
			chosen[i] = s.executiveAction(i)
			// The executive commits on the restricted agent's behalf.
			src := deriveAgentSource(s.seed, i, s.round)
			ev.Commitments[i], ev.Openings[i] = commit.Commit(src, audit.EncodeAction(chosen[i]))
			ev.Revealed[i] = true
			continue
		}
		chosen[i] = a.Choose(s.round, clonePrev(s.prev))
		src := deriveAgentSource(s.seed, i, s.round)
		d, op := commit.Commit(src, audit.EncodeAction(chosen[i]))
		ev.Commitments[i] = d
		// Reveal phase (after all commitments are fixed): cheating hooks
		// apply here.
		if a.Withhold != nil && a.Withhold(s.round) {
			ev.Revealed[i] = false
			continue
		}
		if a.TamperOpening != nil {
			op = a.TamperOpening(s.round, op.Clone())
		}
		ev.Openings[i] = op
		ev.Revealed[i] = true
	}

	// Judicial phase.
	verdict, actions, err := audit.PerRound(s.g, ev)
	if err != nil {
		return RoundResult{}, fmt.Errorf("core: audit: %w", err)
	}

	// Executive phase: punish the guilty, substitute actions that could
	// not be established, and publish the outcome.
	if s.scheme != nil {
		for _, f := range verdict.Fouls {
			if err := s.scheme.Punish(f.Agent, s.round, f.Reason.Severity()); err != nil {
				return RoundResult{}, fmt.Errorf("core: punish: %w", err)
			}
		}
	}
	outcome := make(game.Profile, n)
	for i := 0; i < n; i++ {
		if actions[i] >= 0 {
			outcome[i] = actions[i]
		} else {
			outcome[i] = s.executiveAction(i)
		}
	}

	costs := make([]float64, n)
	for i := 0; i < n; i++ {
		costs[i] = s.g.Cost(i, outcome)
		s.cumCost[i] += costs[i]
	}

	res := RoundResult{
		Round:     s.round,
		Outcome:   outcome,
		Verdict:   verdict,
		Convicted: verdict.Guilty(),
		Excluded:  excluded,
		Costs:     costs,
	}
	s.history = append(s.history, res)
	s.prev = outcome
	s.round++
	return res, nil
}

// Play runs the given number of rounds, returning the last result.
func (s *PureSession) Play(rounds int) (RoundResult, error) {
	var last RoundResult
	var err error
	for i := 0; i < rounds; i++ {
		last, err = s.PlayRound()
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// executiveAction is the action the executive service substitutes for a
// restricted or unestablished agent: the best response to the previous
// outcome (a legitimate, honest action), or 0 on the first play.
func (s *PureSession) executiveAction(i int) int {
	if s.prev == nil {
		return 0
	}
	return game.BestResponse(s.g, i, s.prev)
}

func clonePrev(p game.Profile) game.Profile {
	if p == nil {
		return nil
	}
	return p.Clone()
}
