package core

import (
	"fmt"

	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/punish"
)

// PureSession is the trusted driver for repeated plays under pure
// strategies (§3.3): commitments make choices private and simultaneous,
// the judicial service audits every play, and the executive applies the
// punishment scheme. The agreement steps are executed centrally — the
// distributed driver proves they can be Byzantine-agreed; this driver
// reuses the identical audit/punish logic at game-sweep speed.
//
// The play loop runs on per-session scratch buffers: an honest play of a
// compiled game allocates nothing once a bounded history ring is warm
// (the alloc_test regression pins this at 0 allocs/play).
type PureSession struct {
	g      game.Game
	agents []*Agent
	scheme punish.Scheme
	seed   uint64

	round   int
	prev    game.Profile // owned; re-filled in place every play
	history historyRing

	// cumulative per-agent cost over plays where the agent was active.
	cumCost []float64

	// Per-play scratch, reused across rounds. Slices are sized to the
	// player count at construction; enc and the opening value buffers
	// amortize to steady state after the first play.
	scratch struct {
		commitments []commit.Digest
		openings    []commit.Opening
		revealed    []bool
		chosen      game.Profile
		outcome     game.Profile
		actions     game.Profile
		costs       []float64
		excluded    []int
		prevView    game.Profile
		enc         []byte
		verdict     audit.Verdict
		result      RoundResult
	}
}

// RoundResult records one audited play. It is the uniform result type of
// the Session interface: every driver (pure, mixed, RRA, distributed)
// reports completed plays in this shape; fields a driver cannot establish
// are left zero (e.g. Costs on RRA plays, Verdict details on distributed
// plays, Pulse on trusted drivers).
//
// Results returned from sessions with a bounded history (WithHistoryLimit)
// alias session-owned buffers: they stay valid until the play is evicted
// from the ring. Use Clone (or Results, which deep-copies) to retain one
// indefinitely. Unbounded sessions never evict, so their results never go
// stale.
type RoundResult struct {
	Round int
	// Outcome is the published PSP of the play (after executive
	// substitutions for convicted/unrevealed actions).
	Outcome game.Profile
	// Verdict is the judicial service's finding.
	Verdict audit.Verdict
	// Convicted lists the agents found guilty in this play's verdict.
	Convicted []int
	// Excluded lists agents barred from this play (punished earlier);
	// their actions were chosen by the executive on their behalf.
	Excluded []int
	// Costs[i] is agent i's cost in this play.
	Costs []float64
	// Pulse is the network pulse at which the play completed (distributed
	// driver only).
	Pulse int
}

// Clone returns a deep copy of the result sharing no memory with the
// session that produced it.
func (r RoundResult) Clone() RoundResult {
	return cloneResult(&r)
}

// NewPureSession builds a session over the elected game with one Agent per
// player. scheme may be nil for punish-less operation (the "no authority"
// baseline in experiments). The game is accelerated into cost lookup
// tables when its profile space is small enough (game.Accelerate).
func NewPureSession(g game.Game, agents []*Agent, scheme punish.Scheme, seed uint64) (*PureSession, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil game", ErrConfig)
	}
	g = game.Accelerate(g)
	if len(agents) != g.NumPlayers() {
		return nil, fmt.Errorf("%w: %d agents for %d players", ErrConfig, len(agents), g.NumPlayers())
	}
	for i, a := range agents {
		if a == nil || a.Choose == nil {
			return nil, fmt.Errorf("%w: agent %d has no Choose", ErrConfig, i)
		}
	}
	n := g.NumPlayers()
	s := &PureSession{
		g:       g,
		agents:  agents,
		scheme:  scheme,
		seed:    seed,
		cumCost: make([]float64, n),
	}
	s.scratch.commitments = make([]commit.Digest, n)
	s.scratch.openings = make([]commit.Opening, n)
	s.scratch.revealed = make([]bool, n)
	s.scratch.chosen = make(game.Profile, n)
	s.scratch.outcome = make(game.Profile, n)
	s.scratch.actions = make(game.Profile, n)
	s.scratch.costs = make([]float64, n)
	s.scratch.prevView = make(game.Profile, n)
	return s, nil
}

// SetHistoryLimit bounds the retained history to the most recent limit
// plays (0 = unbounded, the default). It must be called before the first
// play.
func (s *PureSession) SetHistoryLimit(limit int) error {
	if s.round > 0 {
		return fmt.Errorf("%w: history limit must be set before the first play", ErrConfig)
	}
	if limit < 0 {
		return fmt.Errorf("%w: negative history limit %d", ErrConfig, limit)
	}
	s.history.setLimit(limit)
	return nil
}

// Round returns the number of completed plays.
func (s *PureSession) Round() int { return s.round }

// History returns deep copies of the retained round results (oldest
// first); bounded sessions retain the most recent SetHistoryLimit plays.
func (s *PureSession) History() []RoundResult {
	return s.history.snapshot()
}

// ResultAt returns the play with absolute round index round, or false when
// it was evicted from a bounded history (or not yet played). The result
// aliases session-owned buffers — see RoundResult.
func (s *PureSession) ResultAt(round int) (RoundResult, bool) {
	slot, ok := s.history.at(round)
	if !ok {
		return RoundResult{}, false
	}
	return view(slot), true
}

// CumulativeCost returns agent i's total cost so far.
func (s *PureSession) CumulativeCost(i int) float64 { return s.cumCost[i] }

// CumulativePayoff returns agent i's total payoff (negated cost) so far —
// the Fig. 1 experiments report payoffs.
func (s *PureSession) CumulativePayoff(i int) float64 { return -s.cumCost[i] }

// Excluded reports whether agent i is currently excluded by the scheme.
func (s *PureSession) Excluded(i int) bool {
	return s.scheme != nil && s.scheme.Excluded(i)
}

// agentStreamState folds (seed, agent, round) into the commitment stream
// state without allocating; it equals deriveAgentSource's stream by
// construction (prng.Mix == prng.Derive fold).
func agentStreamState(seed uint64, agent, round int) uint64 {
	return prng.Mix(prng.Mix(prng.Mix(seed, 0xA6E27), uint64(agent)), uint64(round))
}

// PlayRound executes one full play of the protocol: choice → commitment →
// reveal → audit → punish → publish. All working state lives in the
// session scratch; see PureSession.
func (s *PureSession) PlayRound() (RoundResult, error) {
	n := s.g.NumPlayers()
	ev := audit.PlayEvidence{
		Round:       s.round,
		PrevOutcome: s.prev,
		Commitments: s.scratch.commitments,
		Openings:    s.scratch.openings,
		Revealed:    s.scratch.revealed,
	}
	excluded := s.scratch.excluded[:0]

	// Choice + commitment phase. Excluded agents do not choose: the
	// executive restricts them to the authority-computed best response
	// (§3.4 "restricts the action of dishonest agents").
	chosen := s.scratch.chosen
	var src prng.Source
	for i, a := range s.agents {
		src.Seed(agentStreamState(s.seed, i, s.round))
		if s.Excluded(i) {
			excluded = append(excluded, i)
			chosen[i] = s.executiveAction(i)
			// The executive commits on the restricted agent's behalf.
			s.scratch.enc = audit.AppendAction(s.scratch.enc[:0], chosen[i])
			ev.Commitments[i] = commit.CommitInto(&src, s.scratch.enc, &ev.Openings[i])
			ev.Revealed[i] = true
			continue
		}
		chosen[i] = a.Choose(s.round, s.prevFor())
		s.scratch.enc = audit.AppendAction(s.scratch.enc[:0], chosen[i])
		ev.Commitments[i] = commit.CommitInto(&src, s.scratch.enc, &ev.Openings[i])
		// Reveal phase (after all commitments are fixed): cheating hooks
		// apply here.
		if a.Withhold != nil && a.Withhold(s.round) {
			ev.Revealed[i] = false
			continue
		}
		if a.TamperOpening != nil {
			ev.Openings[i] = a.TamperOpening(s.round, ev.Openings[i].Clone())
		}
		ev.Revealed[i] = true
	}
	s.scratch.excluded = excluded

	// Judicial phase.
	s.scratch.verdict.Fouls = s.scratch.verdict.Fouls[:0]
	if err := audit.PerRoundInto(s.g, ev, s.scratch.actions, &s.scratch.verdict); err != nil {
		return RoundResult{}, fmt.Errorf("core: audit: %w", err)
	}
	verdict := s.scratch.verdict

	// Executive phase: punish the guilty, substitute actions that could
	// not be established, and publish the outcome.
	if s.scheme != nil {
		for _, f := range verdict.Fouls {
			if err := s.scheme.Punish(f.Agent, s.round, f.Reason.Severity()); err != nil {
				return RoundResult{}, fmt.Errorf("core: punish: %w", err)
			}
		}
	}
	outcome := s.scratch.outcome
	for i := 0; i < n; i++ {
		if s.scratch.actions[i] >= 0 {
			outcome[i] = s.scratch.actions[i]
		} else {
			outcome[i] = s.executiveAction(i)
		}
	}

	costs := s.scratch.costs
	for i := 0; i < n; i++ {
		costs[i] = s.g.Cost(i, outcome)
		s.cumCost[i] += costs[i]
	}

	s.scratch.result = RoundResult{
		Round:     s.round,
		Outcome:   outcome,
		Verdict:   verdict,
		Convicted: verdict.Guilty(),
		Excluded:  excluded,
		Costs:     costs,
	}
	res := s.history.record(&s.scratch.result)
	s.prev = append(s.prev[:0], outcome...)
	s.round++
	return res, nil
}

// prevFor returns the previous outcome to hand an agent's Choose hook: a
// scratch copy so one agent's mutation cannot leak into another agent's
// view. The slice is only valid during the call.
func (s *PureSession) prevFor() game.Profile {
	if s.prev == nil {
		return nil
	}
	return append(s.scratch.prevView[:0], s.prev...)
}

// Play runs the given number of rounds, returning the last result.
func (s *PureSession) Play(rounds int) (RoundResult, error) {
	var last RoundResult
	var err error
	for i := 0; i < rounds; i++ {
		last, err = s.PlayRound()
		if err != nil {
			return last, err
		}
	}
	return last, nil
}

// executiveAction is the action the executive service substitutes for a
// restricted or unestablished agent: the best response to the previous
// outcome (a legitimate, honest action), or 0 on the first play.
func (s *PureSession) executiveAction(i int) int {
	if s.prev == nil {
		return 0
	}
	return game.BestResponse(s.g, i, s.prev)
}

func clonePrev(p game.Profile) game.Profile {
	if p == nil {
		return nil
	}
	return p.Clone()
}
