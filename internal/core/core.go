package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
)

// Common errors.
var (
	ErrConfig   = errors.New("core: invalid configuration")
	ErrNoAgents = errors.New("core: no agents")
	ErrClosed   = errors.New("core: session closed")
)

// Agent models one application-layer participant's *behaviour*. The
// authority drives the protocol; the agent only decides what to play and
// whether to cheat. The zero value plus a Choose function is an honest
// agent; the optional hooks inject the §5.1-style manipulations.
type Agent struct {
	// Choose returns the agent's action for the round given the agreed
	// previous outcome (nil on the first play). Returning an action
	// outside Πi models the Fig. 1 hidden-manipulation strategy. The prev
	// slice is only valid for the duration of the call (the session reuses
	// the buffer between agents); Clone it to retain it.
	Choose func(round int, prev game.Profile) int

	// TamperOpening, if non-nil, lets the agent replace its reveal after
	// the commitment was agreed (judicial must detect the mismatch).
	TamperOpening func(round int, op commit.Opening) commit.Opening

	// Withhold, if non-nil, makes the agent refuse to reveal this round.
	Withhold func(round int) bool
}

// HonestPure returns an honest agent for the elected game g playing id's
// best response to the previous outcome (the §3.2 notion of honesty).
// On the first play it plays action 0 (any legitimate action is honest).
func HonestPure(g game.Game, id int) *Agent {
	return &Agent{
		Choose: func(round int, prev game.Profile) int {
			if prev == nil {
				return 0
			}
			return game.BestResponse(g, id, prev)
		},
	}
}

// --- Canonical wire encodings -------------------------------------------------
//
// Everything the processors agree on via the BAP travels as a canonical
// string (bap.Value). Encoders are deliberately simple and deterministic;
// decoders treat malformed input as Byzantine garbage (error, never panic).

// EncodeProfile canonically encodes an action profile ("1,0,2"); -1 entries
// (unknown actions) are preserved.
func EncodeProfile(p game.Profile) string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = strconv.Itoa(a)
	}
	return strings.Join(parts, ",")
}

// DecodeProfile parses EncodeProfile output; n is the required arity.
func DecodeProfile(s string, n int) (game.Profile, error) {
	if s == "" {
		return nil, fmt.Errorf("%w: empty profile", ErrConfig)
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("%w: profile arity %d, want %d", ErrConfig, len(parts), n)
	}
	p := make(game.Profile, n)
	for i, part := range parts {
		a, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%w: profile entry %q", ErrConfig, part)
		}
		p[i] = a
	}
	return p, nil
}

// EncodeDigest hex-encodes a commitment digest.
func EncodeDigest(d commit.Digest) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, 2*len(d))
	for _, b := range d {
		out = append(out, hexdigits[b>>4], hexdigits[b&0xf])
	}
	return string(out)
}

// DecodeDigest parses EncodeDigest output.
func DecodeDigest(s string) (commit.Digest, error) {
	var d commit.Digest
	if len(s) != 2*len(d) {
		return d, fmt.Errorf("%w: digest hex length %d", ErrConfig, len(s))
	}
	for i := 0; i < len(d); i++ {
		hi, ok1 := unhex(s[2*i])
		lo, ok2 := unhex(s[2*i+1])
		if !ok1 || !ok2 {
			return d, fmt.Errorf("%w: digest hex at %d", ErrConfig, i)
		}
		d[i] = hi<<4 | lo
	}
	return d, nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}

// EncodeOpening canonically encodes a commitment opening as
// "<value-hex>|<nonce-hex>".
func EncodeOpening(op commit.Opening) string {
	const hexdigits = "0123456789abcdef"
	enc := func(b []byte) string {
		out := make([]byte, 0, 2*len(b))
		for _, x := range b {
			out = append(out, hexdigits[x>>4], hexdigits[x&0xf])
		}
		return string(out)
	}
	return enc(op.Value) + "|" + enc(op.Nonce[:])
}

// DecodeOpening parses EncodeOpening output.
func DecodeOpening(s string) (commit.Opening, error) {
	var op commit.Opening
	parts := strings.Split(s, "|")
	if len(parts) != 2 {
		return op, fmt.Errorf("%w: opening has %d segments", ErrConfig, len(parts))
	}
	value, err := unhexBytes(parts[0])
	if err != nil {
		return op, err
	}
	nonce, err := unhexBytes(parts[1])
	if err != nil {
		return op, err
	}
	if len(nonce) != commit.NonceSize {
		return op, fmt.Errorf("%w: nonce length %d", ErrConfig, len(nonce))
	}
	op.Value = value
	copy(op.Nonce[:], nonce)
	return op, nil
}

func unhexBytes(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("%w: odd hex length", ErrConfig)
	}
	out := make([]byte, len(s)/2)
	for i := range out {
		hi, ok1 := unhex(s[2*i])
		lo, ok2 := unhex(s[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: bad hex", ErrConfig)
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

// EncodeFoulSet canonically encodes the guilty agent ids ("1;3;4", "" for
// none) — the value the judicial service agrees on before ordering
// punishment.
func EncodeFoulSet(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ";")
}

// DecodeFoulSet parses EncodeFoulSet output.
func DecodeFoulSet(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%w: foul set entry %q", ErrConfig, p)
		}
		out = append(out, id)
	}
	return out, nil
}

// deriveAgentSource gives each (session seed, agent, round) its own
// deterministic randomness stream for commitments.
func deriveAgentSource(seed uint64, agent, round int) *prng.Source {
	return prng.Derive(seed, 0xA6E27, uint64(agent), uint64(round))
}
