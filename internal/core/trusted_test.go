package core

import (
	"errors"
	"math"
	"testing"

	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

func TestNewPureSessionValidation(t *testing.T) {
	g := game.PrisonersDilemma()
	if _, err := NewPureSession(nil, nil, nil, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil game: %v", err)
	}
	if _, err := NewPureSession(g, []*Agent{HonestPure(g, 0)}, nil, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("agent arity: %v", err)
	}
	if _, err := NewPureSession(g, []*Agent{HonestPure(g, 0), {}}, nil, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("agent without Choose: %v", err)
	}
}

func TestPureSessionHonestConvergesToNash(t *testing.T) {
	g := game.PrisonersDilemma()
	agents := []*Agent{HonestPure(g, 0), HonestPure(g, 1)}
	s, err := NewPureSession(g, agents, punish.NewDisconnect(2, 0), 7)
	if err != nil {
		t.Fatal(err)
	}
	last, err := s.Play(10)
	if err != nil {
		t.Fatal(err)
	}
	// Best-response play settles on the unique PNE (defect, defect).
	if !last.Outcome.Equal(game.Profile{1, 1}) {
		t.Fatalf("outcome = %v, want defect/defect", last.Outcome)
	}
	if len(last.Verdict.Fouls) != 0 {
		t.Fatalf("honest play fouled: %+v", last.Verdict.Fouls)
	}
	if s.Round() != 10 || len(s.History()) != 10 {
		t.Fatalf("rounds = %d, history %d", s.Round(), len(s.History()))
	}
}

func TestPureSessionDetectsAndRestrictsManipulator(t *testing.T) {
	// The elected game is matching pennies; agent B secretly plays the
	// Fig. 1 Manipulate action (index 2, illegitimate). The authority
	// must flag it on the first audited play, disconnect B, and restrict
	// its future actions.
	g := game.MatchingPennies()
	manipulator := &Agent{Choose: func(int, game.Profile) int { return game.ManipulateAction }}
	agents := []*Agent{HonestPure(g, 0), manipulator}
	scheme := punish.NewDisconnect(2, 0)
	s, err := NewPureSession(g, agents, scheme, 3)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.PlayRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Verdict.Fouls) != 1 || first.Verdict.Fouls[0].Agent != 1 ||
		first.Verdict.Fouls[0].Reason != audit.ReasonIllegitimateAction {
		t.Fatalf("first verdict = %+v, want illegitimate-action by 1", first.Verdict.Fouls)
	}
	// The published outcome must not contain the illegal action.
	if err := game.ValidateProfile(g, first.Outcome); err != nil {
		t.Fatalf("published outcome invalid: %v", err)
	}
	if !s.Excluded(1) {
		t.Fatal("manipulator not excluded after conviction")
	}
	// From now on the executive plays for B: no further fouls, outcomes
	// always legitimate.
	for i := 0; i < 5; i++ {
		res, err := s.PlayRound()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Verdict.Fouls) != 0 {
			t.Fatalf("round %d: fouls after exclusion: %+v", res.Round, res.Verdict.Fouls)
		}
		if len(res.Excluded) != 1 || res.Excluded[0] != 1 {
			t.Fatalf("round %d: excluded = %v", res.Round, res.Excluded)
		}
		if err := game.ValidateProfile(g, res.Outcome); err != nil {
			t.Fatalf("round %d outcome invalid: %v", res.Round, err)
		}
	}
}

func TestPureSessionDetectsTamperedReveal(t *testing.T) {
	g := game.PrisonersDilemma()
	cheat := &Agent{
		Choose: func(round int, prev game.Profile) int { return 0 },
		TamperOpening: func(round int, op commit.Opening) commit.Opening {
			op.Value = audit.EncodeAction(1) // claim defect after committing cooperate
			return op
		},
	}
	s, err := NewPureSession(g, []*Agent{HonestPure(g, 0), cheat}, punish.NewDisconnect(2, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.PlayRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdict.Fouls) != 1 || res.Verdict.Fouls[0].Reason != audit.ReasonCommitMismatch {
		t.Fatalf("verdict = %+v, want commit-mismatch", res.Verdict.Fouls)
	}
	if !s.Excluded(1) {
		t.Fatal("reveal tamperer not excluded")
	}
}

func TestPureSessionDetectsWithheldReveal(t *testing.T) {
	g := game.PrisonersDilemma()
	silent := &Agent{
		Choose:   func(int, game.Profile) int { return 0 },
		Withhold: func(round int) bool { return true },
	}
	s, err := NewPureSession(g, []*Agent{silent, HonestPure(g, 1)}, punish.NewDisconnect(2, 0), 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.PlayRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdict.Fouls) != 1 || res.Verdict.Fouls[0].Reason != audit.ReasonMissingReveal {
		t.Fatalf("verdict = %+v", res.Verdict.Fouls)
	}
}

func TestPureSessionDetectsNonBestResponse(t *testing.T) {
	g := game.PrisonersDilemma()
	stubborn := &Agent{Choose: func(int, game.Profile) int { return 0 }} // always cooperate
	scheme := punish.NewReputation(2, 0.5, 0.2, 0)
	s, err := NewPureSession(g, []*Agent{stubborn, HonestPure(g, 1)}, scheme, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: no prev, cooperate is legitimate → no foul.
	res, err := s.PlayRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdict.Fouls) != 0 {
		t.Fatalf("round 0 fouls: %+v", res.Verdict.Fouls)
	}
	// Round 1: prev outcome exists; cooperating is not a best response.
	res, err = s.PlayRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdict.Fouls) != 1 || res.Verdict.Fouls[0].Agent != 0 ||
		res.Verdict.Fouls[0].Reason != audit.ReasonNotBestResponse {
		t.Fatalf("round 1 verdict = %+v", res.Verdict.Fouls)
	}
	// Reputation decays geometrically but is not yet below threshold.
	if s.Excluded(0) {
		t.Fatal("single strategic foul should not yet exclude under reputation")
	}
	// Keep cooperating: reputation eventually collapses.
	for i := 0; i < 10; i++ {
		if _, err := s.PlayRound(); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Excluded(0) {
		t.Fatalf("repeat offender not excluded; reputation %v", scheme.Standing(0))
	}
}

func TestPureSessionNilSchemeNoPunishment(t *testing.T) {
	g := game.MatchingPennies()
	manipulator := &Agent{Choose: func(int, game.Profile) int { return game.ManipulateAction }}
	s, err := NewPureSession(g, []*Agent{HonestPure(g, 0), manipulator}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := s.PlayRound()
		if err != nil {
			t.Fatal(err)
		}
		// Fouls are still *detected* (the audit runs) but never punished.
		if len(res.Verdict.Fouls) == 0 {
			t.Fatal("audit silent without scheme")
		}
		if s.Excluded(1) {
			t.Fatal("exclusion without scheme")
		}
	}
}

func TestPureSessionCumulativeCostTracking(t *testing.T) {
	g := game.PrisonersDilemma()
	s, err := NewPureSession(g, []*Agent{HonestPure(g, 0), HonestPure(g, 1)}, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Play(4); err != nil {
		t.Fatal(err)
	}
	// Round 0: (0,0) costs 1+1; rounds 1..3: (1,1) costs 2+2 each.
	wantEach := 1.0 + 3*2.0
	for i := 0; i < 2; i++ {
		if got := s.CumulativeCost(i); math.Abs(got-wantEach) > 1e-12 {
			t.Fatalf("agent %d cumulative cost = %v, want %v", i, got, wantEach)
		}
		if got := s.CumulativePayoff(i); math.Abs(got+wantEach) > 1e-12 {
			t.Fatalf("agent %d payoff = %v, want %v", i, got, -wantEach)
		}
	}
}
