package core

import (
	"fmt"

	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/punish"
)

// RRASupervised runs the §6 repeated resource allocation game under the
// game authority: honest agents sample the symmetric water-filling
// equilibrium from committed seeds; Byzantine agents may play anything, but
// the seed audit exposes every off-stream action and the executive then
// restricts them. This is the harness behind Theorem 5's experiments
// (E-T5): supervision keeps the multi-round anarchy cost at 1 + O(b/k).
type RRASupervised struct {
	rra    *game.RRA
	scheme punish.Scheme
	seed   uint64
	// byzChoose[i], if set, overrides agent i's choice (e.g. the hog).
	byzChoose map[int]func(agent int, loads []int64) int
	// deviantChoose[i], if set, overrides agent i's choice with a
	// player-level selfish strategy that also sees the round index and the
	// honest committed-stream sample (see Deviant.RRAChooser).
	deviantChoose map[int]func(round int, loads []int64, honest int) int
	supervise     bool

	fouls []audit.Foul
	// lastChoices is the published profile of the most recent play (for
	// the Session adapter's round results).
	lastChoices game.Profile

	// Per-round scratch, reused so steady-state plays keep a fixed
	// allocation budget.
	scratch struct {
		seeds      []uint64
		digests    []commit.Digest
		openings   []commit.Opening
		expected   []int
		strategies []game.Mixed
		revealed   []bool
		enc        []byte
	}
}

// NewRRASupervised builds the harness. scheme nil + supervise false is the
// unsupervised baseline; supervise true requires a scheme.
func NewRRASupervised(n, b int, seed uint64, scheme punish.Scheme, supervise bool) (*RRASupervised, error) {
	if supervise && scheme == nil {
		return nil, fmt.Errorf("%w: supervision requires a punishment scheme", ErrConfig)
	}
	rra, err := game.NewRRA(n, b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	h := &RRASupervised{
		rra:           rra,
		scheme:        scheme,
		seed:          seed,
		byzChoose:     make(map[int]func(int, []int64) int),
		deviantChoose: make(map[int]func(int, []int64, int) int),
		supervise:     supervise,
	}
	h.scratch.seeds = make([]uint64, n)
	h.scratch.digests = make([]commit.Digest, n)
	h.scratch.openings = make([]commit.Opening, n)
	h.scratch.expected = make([]int, n)
	h.scratch.strategies = make([]game.Mixed, n)
	h.scratch.revealed = make([]bool, n)
	return h, nil
}

// SetByzantine installs a malicious choice function for the agent.
func (h *RRASupervised) SetByzantine(agent int, choose func(agent int, loads []int64) int) {
	h.byzChoose[agent] = choose
}

// SetDeviant installs a player-level selfish strategy for the agent: the
// chooser sees the round, the pre-step loads, and the honest
// committed-stream sample the judicial service will audit against.
// A deviant takes precedence over a SetByzantine chooser for the same
// agent.
func (h *RRASupervised) SetDeviant(agent int, choose func(round int, loads []int64, honest int) int) {
	h.deviantChoose[agent] = choose
}

// RRA exposes the underlying game state for measurements.
func (h *RRASupervised) RRA() *game.RRA { return h.rra }

// LastChoices returns the published profile of the most recent play (nil
// before the first play).
func (h *RRASupervised) LastChoices() game.Profile { return clonePrev(h.lastChoices) }

// Fouls returns every foul detected so far.
func (h *RRASupervised) Fouls() []audit.Foul {
	return append([]audit.Foul(nil), h.fouls...)
}

// Excluded reports whether agent i has been excluded.
func (h *RRASupervised) Excluded(i int) bool {
	return h.scheme != nil && h.scheme.Excluded(i)
}

// roundSeed derives agent i's committed seed for the given round without
// heap-allocating the derivation stream.
func (h *RRASupervised) roundSeed(agent, round int) uint64 {
	var src prng.Source
	src.Seed(prng.Mix(prng.Mix(prng.Mix(h.seed, 0x22A0), uint64(agent)), uint64(round)))
	return src.Uint64()
}

// ExpectedChoice returns the committed-stream sample agent i must play in
// the upcoming round — the action the executive substitutes for excluded
// agents, and the reference the judicial service audits against.
func (h *RRASupervised) ExpectedChoice(agent int) (int, error) {
	round := h.rra.Rounds()
	strategy := h.rra.EquilibriumStrategy()
	return audit.ExpectedAction(strategy, h.roundSeed(agent, round), agent, round)
}

// PlayRound executes one play: honest agents draw their committed PRG
// sample of the equilibrium strategy; Byzantine agents act out; the
// authority (when supervising) audits the round's seeds and punishes.
func (h *RRASupervised) PlayRound() error {
	n := h.rra.N()
	round := h.rra.Rounds()
	roundView := h.rra.RoundView() // strategic form of this play (pre-step loads)
	strategy := h.rra.EquilibriumStrategy()

	// Per-round seeds and Blum commitments (§5.3 per-round discipline),
	// built on the session scratch.
	seeds := h.scratch.seeds
	digests := h.scratch.digests
	openings := h.scratch.openings
	expected := h.scratch.expected
	var src prng.Source
	for i := 0; i < n; i++ {
		seeds[i] = h.roundSeed(i, round)
		src.Seed(agentStreamState(h.seed, i, round))
		h.scratch.enc = audit.AppendSeed(h.scratch.enc[:0], seeds[i])
		digests[i] = commit.CommitInto(&src, h.scratch.enc, &openings[i])
		a, err := audit.ExpectedAction(strategy, seeds[i], i, round)
		if err != nil {
			return fmt.Errorf("core: rra sample agent %d: %w", i, err)
		}
		expected[i] = a
	}

	choices, err := h.rra.Step(func(agent int, loads []int64) int {
		if h.Excluded(agent) {
			// Executive restriction: authority plays the honest
			// sample on the excluded agent's behalf.
			return expected[agent]
		}
		if choose, dev := h.deviantChoose[agent]; dev {
			return choose(round, loads, expected[agent])
		}
		if choose, bad := h.byzChoose[agent]; bad {
			return choose(agent, loads)
		}
		return expected[agent]
	})
	if err != nil {
		return fmt.Errorf("core: rra step: %w", err)
	}
	h.lastChoices = choices

	if !h.supervise {
		return nil
	}
	// Judicial: the real seed audit over the round's strategic form —
	// every published action must open against its committed stream
	// (§5.3). Excluded agents are the executive's wards and always pass.
	strategies := h.scratch.strategies
	revealed := h.scratch.revealed
	for i := 0; i < n; i++ {
		strategies[i] = strategy
		revealed[i] = true
	}
	verdict, err := audit.MixedPerRound(roundView, audit.MixedEvidence{
		Round:           round,
		Strategies:      strategies,
		SeedCommitments: digests,
		SeedOpenings:    openings,
		Revealed:        revealed,
		Actions:         choices,
	})
	if err != nil {
		return fmt.Errorf("core: rra audit: %w", err)
	}
	for _, foul := range verdict.Fouls {
		if h.Excluded(foul.Agent) {
			continue
		}
		h.fouls = append(h.fouls, foul)
		_ = h.scheme.Punish(foul.Agent, round, foul.Reason.Severity())
	}
	return nil
}

// Play runs k rounds.
func (h *RRASupervised) Play(k int) error {
	for i := 0; i < k; i++ {
		if err := h.PlayRound(); err != nil {
			return err
		}
	}
	return nil
}
