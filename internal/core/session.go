package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gameauthority/internal/audit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/punish"
	"gameauthority/internal/sim"
)

// ErrPulseBudget is returned by the distributed driver when a play did not
// complete within the configured pulse budget (e.g. while the
// self-stabilizing clock is still re-converging after a transient fault).
var ErrPulseBudget = errors.New("core: pulse budget exhausted before the play completed")

// SessionKind identifies which driver a Session runs on.
type SessionKind int

// Session kinds, inferred from the configuration: distributed if
// DistProcs is set, RRA if RRAAgents is set, mixed if Strategies is set,
// pure otherwise.
const (
	kindUnset SessionKind = iota
	KindPure
	KindMixed
	KindRRA
	KindDistributed
)

// String implements fmt.Stringer.
func (k SessionKind) String() string {
	switch k {
	case KindPure:
		return "pure"
	case KindMixed:
		return "mixed"
	case KindRRA:
		return "rra"
	case KindDistributed:
		return "distributed"
	default:
		return "unknown"
	}
}

// Session is the uniform authority-session interface implemented by all
// four drivers (pure, mixed, RRA, distributed). Implementations are safe
// for concurrent use; plays are serialized internally.
type Session interface {
	// Play executes one audited play of the §3.3 protocol.
	Play(ctx context.Context) (RoundResult, error)
	// Run executes the given number of plays and returns the last result.
	Run(ctx context.Context, rounds int) (RoundResult, error)
	// Results returns all completed plays, oldest first.
	Results() []RoundResult
	// Stats returns a snapshot of the session's counters.
	Stats() SessionStats
	// Subscribe registers an observer for session events (plays, verdicts,
	// convictions, elections, clock recoveries); the returned function
	// cancels the subscription. Sticky events (elections) are replayed to
	// late subscribers.
	Subscribe(Observer) (cancel func())
	// Close finalizes the session: a batched-audit mixed session audits
	// its trailing partial epoch. Close is idempotent.
	Close() error
}

// SessionStats is a point-in-time snapshot of a session's counters.
type SessionStats struct {
	Kind    SessionKind
	Players int
	// Rounds is the number of completed plays.
	Rounds int
	// CumulativeCost[i] is agent i's total cost over all plays (nil for
	// drivers that do not track per-agent costs: RRA, distributed).
	CumulativeCost []float64
	// Excluded[i] reports whether agent i is currently excluded by the
	// executive service.
	Excluded []bool
	// Fouls is the total number of fouls the judicial service detected.
	Fouls int
	// Protocol counts audit-protocol overhead (mixed driver).
	Protocol CostStats
	// MaxLoad is the maximum resource load so far (RRA driver, §6).
	MaxLoad int64
	// Pulses and Messages count network activity (distributed driver).
	Pulses   int64
	Messages int64
}

// ElectionSpec asks NewSession to run the legislative service first: the
// voters elect the game from the candidates via a robust commit-reveal
// election, and the winning game becomes the session's elected game.
type ElectionSpec struct {
	Candidates []Candidate
	Voters     []Voter
}

// SessionConfig is the single configuration surface behind the façade's
// functional options. Exactly one game source must be set: Game, Election,
// or (for the RRA driver) RRAAgents/RRAResources. The driver is inferred
// from the options (see inferKind).
type SessionConfig struct {
	// Game is the elected game the authority enforces.
	Game game.Game
	// Election, if set, elects the game legislatively instead.
	Election *ElectionSpec
	// Seed drives all commitments, honest sampling, and clocks.
	Seed uint64
	// Scheme is the executive's punishment policy. For the distributed
	// driver it is a prototype: each processor replica gets a Fresh copy.
	Scheme punish.Scheme

	// Agents are pure-strategy behaviours (pure and distributed drivers);
	// nil entries (or a nil slice) mean honest best-response agents.
	Agents []*Agent

	// Mixed-driver configuration (§5). Strategies is required for a mixed
	// session; MixedAgents nil entries mean honest samplers.
	MixedAgents  []*MixedAgent
	Strategies   func(round int, prev game.Profile) game.MixedProfile
	Actual       game.Game
	Mode         AuditMode
	EpochLen     int
	SampleProb   float64
	Window       int
	ChiThreshold float64

	// RRA-driver configuration (§6). RRAAgents agents share RRAResources
	// resources; RRAByz overrides per-agent choices. Supervision is on
	// exactly when Scheme is set.
	RRAAgents    int
	RRAResources int
	RRAByz       map[int]func(agent int, loads []int64) int

	// Distributed-driver configuration (§3.3 over the synchronous
	// network). DistProcs processors tolerate DistFaults Byzantine ones
	// (n > 3f); DistByz installs network-level adversaries.
	DistProcs  int
	DistFaults int
	DistByz    map[int]sim.Adversary
	// DistPulseBudget bounds how many pulses one Play may consume waiting
	// for a play to complete (0 = a generous default). Exhaustion returns
	// ErrPulseBudget, which is recoverable: the next Play keeps stepping.
	DistPulseBudget int
}

// inferKind resolves the driver from the configuration.
func (cfg *SessionConfig) inferKind() SessionKind {
	switch {
	case cfg.DistProcs > 0 || cfg.DistFaults > 0 || cfg.DistByz != nil:
		return KindDistributed
	case cfg.RRAAgents > 0 || cfg.RRAResources > 0 || cfg.RRAByz != nil:
		return KindRRA
	case cfg.Strategies != nil || cfg.MixedAgents != nil || cfg.Mode != 0:
		return KindMixed
	default:
		return KindPure
	}
}

// NewSession validates the configuration, runs the legislative service if
// requested, and builds the driver for the resolved session kind.
func NewSession(cfg SessionConfig) (Session, error) {
	hub := newObserverHub()

	if cfg.Election != nil {
		if cfg.Game != nil {
			return nil, fmt.Errorf("%w: both a game and an election were supplied", ErrConfig)
		}
		out, err := RobustElection(cfg.Election.Candidates, cfg.Election.Voters,
			prng.Derive(cfg.Seed, 0xE1EC7).Uint64())
		if err != nil {
			return nil, err
		}
		cfg.Game = cfg.Election.Candidates[out.Winner].Game
		hub.emit(Event{
			Kind:   EventElection,
			Winner: out.Winner,
			Detail: cfg.Election.Candidates[out.Winner].Description,
		})
	}

	kind := cfg.inferKind()
	switch kind {
	case KindPure:
		return newPureDriver(cfg, hub)
	case KindMixed:
		return newMixedDriver(cfg, hub)
	case KindRRA:
		return newRRADriver(cfg, hub)
	case KindDistributed:
		return newDistDriver(cfg, hub)
	default:
		return nil, fmt.Errorf("%w: unknown session kind %d", ErrConfig, kind)
	}
}

// runSession is the shared Run implementation.
func runSession(ctx context.Context, s Session, rounds int) (RoundResult, error) {
	var last RoundResult
	for i := 0; i < rounds; i++ {
		res, err := s.Play(ctx)
		if err != nil {
			return last, err
		}
		last = res
	}
	return last, nil
}

// snapshotExcluded captures the executive's current exclusion flags.
func snapshotExcluded(n int, excluded func(int) bool) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = excluded(i)
	}
	return out
}

// newlyExcluded diffs exclusion flags before and after a play.
func newlyExcluded(before []bool, excluded func(int) bool) []int {
	var out []int
	for i, was := range before {
		if !was && excluded(i) {
			out = append(out, i)
		}
	}
	return out
}

func excludedIDs(flags []bool) []int {
	var out []int
	for i, f := range flags {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// playEvents assembles the observer events for one completed play.
func playEvents(res RoundResult, convictions []int) []Event {
	evs := []Event{{
		Kind:    EventPlay,
		Round:   res.Round,
		Outcome: res.Outcome,
		Costs:   res.Costs,
		Pulse:   res.Pulse,
	}}
	if len(res.Verdict.Fouls) > 0 {
		evs = append(evs, Event{Kind: EventVerdict, Round: res.Round, Fouls: res.Verdict.Fouls})
	}
	for _, agent := range convictions {
		evs = append(evs, Event{
			Kind:   EventConviction,
			Round:  res.Round,
			Agent:  agent,
			Detail: "excluded by the executive service",
		})
	}
	return evs
}

// --- Pure driver ---------------------------------------------------------------

type pureDriver struct {
	mu    sync.Mutex
	s     *PureSession
	n     int
	hub   *observerHub
	fouls int
}

func newPureDriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("%w: nil game", ErrConfig)
	}
	if cfg.MixedAgents != nil {
		return nil, fmt.Errorf("%w: mixed agents require strategies (a mixed session)", ErrConfig)
	}
	if cfg.Actual != nil {
		return nil, fmt.Errorf("%w: an actual game applies to mixed sessions", ErrConfig)
	}
	if cfg.DistPulseBudget != 0 {
		return nil, fmt.Errorf("%w: pulse budgets apply to distributed sessions", ErrConfig)
	}
	n := cfg.Game.NumPlayers()
	agents := cfg.Agents
	if agents == nil {
		agents = make([]*Agent, n)
	}
	if len(agents) != n {
		return nil, fmt.Errorf("%w: %d agents for %d players", ErrConfig, len(agents), n)
	}
	filled := make([]*Agent, n)
	for i, a := range agents {
		if a == nil {
			a = HonestPure(cfg.Game, i)
		}
		filled[i] = a
	}
	s, err := NewPureSession(cfg.Game, filled, cfg.Scheme, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &pureDriver{s: s, n: n, hub: hub}, nil
}

// Pure exposes the wrapped driver for measurements and legacy helpers.
func (d *pureDriver) Pure() *PureSession { return d.s }

// Play emits events while still holding the play mutex so concurrent
// players cannot interleave streams out of round order (observers must not
// call back into the session — see Observer).
func (d *pureDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	before := snapshotExcluded(d.n, d.s.Excluded)
	res, err := d.s.PlayRound()
	if err != nil {
		return RoundResult{}, err
	}
	d.fouls += len(res.Verdict.Fouls)
	d.hub.emitAll(playEvents(res, newlyExcluded(before, d.s.Excluded)))
	return res, nil
}

func (d *pureDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *pureDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s.History()
}

func (d *pureDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := SessionStats{
		Kind:           KindPure,
		Players:        d.n,
		Rounds:         d.s.Round(),
		CumulativeCost: make([]float64, d.n),
		Excluded:       snapshotExcluded(d.n, d.s.Excluded),
		Fouls:          d.fouls,
	}
	for i := 0; i < d.n; i++ {
		st.CumulativeCost[i] = d.s.CumulativeCost(i)
	}
	return st
}

func (d *pureDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

func (d *pureDriver) Close() error { return nil }

// --- Mixed driver --------------------------------------------------------------

type mixedDriver struct {
	mu           sync.Mutex
	s            *MixedSession
	n            int
	hub          *observerHub
	results      []RoundResult
	seenVerdicts int
	fouls        int
	closed       bool
}

func newMixedDriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Agents != nil {
		return nil, fmt.Errorf("%w: pure-strategy agents on a mixed session (use mixed agents)", ErrConfig)
	}
	if cfg.Game == nil {
		return nil, fmt.Errorf("%w: nil elected game", ErrConfig)
	}
	if cfg.Strategies == nil {
		return nil, fmt.Errorf("%w: mixed sessions require strategies", ErrConfig)
	}
	if cfg.DistPulseBudget != 0 {
		return nil, fmt.Errorf("%w: pulse budgets apply to distributed sessions", ErrConfig)
	}
	n := cfg.Game.NumPlayers()
	agents := cfg.MixedAgents
	if agents == nil {
		agents = make([]*MixedAgent, n)
	}
	mode := cfg.Mode
	if mode == 0 {
		// Default discipline: audit per round when an executive scheme is
		// installed, otherwise the unsupervised baseline.
		if cfg.Scheme != nil {
			mode = AuditPerRound
		} else {
			mode = AuditOff
		}
	}
	s, err := NewMixedSession(MixedConfig{
		Elected:      cfg.Game,
		Actual:       cfg.Actual,
		Strategies:   cfg.Strategies,
		Agents:       agents,
		Scheme:       cfg.Scheme,
		Mode:         mode,
		EpochLen:     cfg.EpochLen,
		SampleProb:   cfg.SampleProb,
		Window:       cfg.Window,
		ChiThreshold: cfg.ChiThreshold,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &mixedDriver{s: s, n: n, hub: hub}, nil
}

// Mixed exposes the wrapped driver for measurements and legacy helpers.
func (d *mixedDriver) Mixed() *MixedSession { return d.s }

// Play emits events under the play mutex; see pureDriver.Play.
func (d *mixedDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	before := snapshotExcluded(d.n, d.s.Excluded)
	prevCost := make([]float64, d.n)
	for i := range prevCost {
		prevCost[i] = d.s.CumulativeCost(i)
	}
	outcome, err := d.s.PlayRound()
	if err != nil {
		return RoundResult{}, err
	}
	costs := make([]float64, d.n)
	for i := range costs {
		costs[i] = d.s.CumulativeCost(i) - prevCost[i]
	}
	verdict := d.drainVerdicts()
	res := RoundResult{
		Round:     d.s.Round() - 1,
		Outcome:   outcome,
		Verdict:   verdict,
		Convicted: verdict.Guilty(),
		Excluded:  excludedIDs(before),
		Costs:     costs,
	}
	d.results = append(d.results, res)
	d.hub.emitAll(playEvents(res, newlyExcluded(before, d.s.Excluded)))
	return res, nil
}

// drainVerdicts merges verdicts issued since the last play into one. In
// batched mode an epoch's verdict lands on the play that closed the epoch.
func (d *mixedDriver) drainVerdicts() audit.Verdict {
	all := d.s.Verdicts()
	var merged audit.Verdict
	for _, v := range all[d.seenVerdicts:] {
		merged.Fouls = append(merged.Fouls, v.Fouls...)
	}
	d.seenVerdicts = len(all)
	d.fouls += len(merged.Fouls)
	return merged
}

func (d *mixedDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *mixedDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]RoundResult(nil), d.results...)
}

func (d *mixedDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := SessionStats{
		Kind:           KindMixed,
		Players:        d.n,
		Rounds:         d.s.Round(),
		CumulativeCost: make([]float64, d.n),
		Excluded:       snapshotExcluded(d.n, d.s.Excluded),
		Fouls:          d.fouls,
		Protocol:       d.s.Stats(),
	}
	for i := 0; i < d.n; i++ {
		st.CumulativeCost[i] = d.s.CumulativeCost(i)
	}
	return st
}

func (d *mixedDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

// Close audits any trailing partial epoch (batched mode) and attaches the
// verdict to the last recorded play. A failed close stays open so callers
// can retry it.
func (d *mixedDriver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	before := snapshotExcluded(d.n, d.s.Excluded)
	if err := d.s.CloseEpoch(); err != nil {
		return err
	}
	d.closed = true
	verdict := d.drainVerdicts()
	if len(verdict.Fouls) > 0 && len(d.results) > 0 {
		last := &d.results[len(d.results)-1]
		last.Verdict.Fouls = append(last.Verdict.Fouls, verdict.Fouls...)
		last.Convicted = last.Verdict.Guilty()
		evs := []Event{{Kind: EventVerdict, Round: last.Round, Fouls: verdict.Fouls}}
		for _, agent := range newlyExcluded(before, d.s.Excluded) {
			evs = append(evs, Event{
				Kind:   EventConviction,
				Round:  last.Round,
				Agent:  agent,
				Detail: "excluded by the executive service",
			})
		}
		d.hub.emitAll(evs)
	}
	return nil
}

// --- RRA driver ----------------------------------------------------------------

type rraDriver struct {
	mu        sync.Mutex
	h         *RRASupervised
	n         int
	hub       *observerHub
	results   []RoundResult
	seenFouls int
}

func newRRADriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Game != nil {
		return nil, fmt.Errorf("%w: RRA sessions build their own game (drop the game argument)", ErrConfig)
	}
	if cfg.Strategies != nil || cfg.MixedAgents != nil {
		return nil, fmt.Errorf("%w: RRA sessions use the committed equilibrium strategy", ErrConfig)
	}
	if cfg.Actual != nil {
		return nil, fmt.Errorf("%w: an actual game applies to mixed sessions", ErrConfig)
	}
	if cfg.Agents != nil {
		return nil, fmt.Errorf("%w: RRA behaviours are installed with RRAByz, not agents", ErrConfig)
	}
	if cfg.Mode != 0 {
		return nil, fmt.Errorf("%w: audit disciplines apply to mixed sessions", ErrConfig)
	}
	if cfg.DistPulseBudget != 0 {
		return nil, fmt.Errorf("%w: pulse budgets apply to distributed sessions", ErrConfig)
	}
	h, err := NewRRASupervised(cfg.RRAAgents, cfg.RRAResources, cfg.Seed, cfg.Scheme, cfg.Scheme != nil)
	if err != nil {
		return nil, err
	}
	for agent, choose := range cfg.RRAByz {
		h.SetByzantine(agent, choose)
	}
	return &rraDriver{h: h, n: cfg.RRAAgents, hub: hub}, nil
}

// Harness exposes the wrapped driver for measurements and legacy helpers.
func (d *rraDriver) Harness() *RRASupervised { return d.h }

// Play emits events under the play mutex; see pureDriver.Play.
func (d *rraDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	before := snapshotExcluded(d.n, d.h.Excluded)
	if err := d.h.PlayRound(); err != nil {
		return RoundResult{}, err
	}
	all := d.h.Fouls()
	fresh := append([]audit.Foul(nil), all[d.seenFouls:]...)
	d.seenFouls = len(all)
	verdict := audit.Verdict{Fouls: fresh}
	res := RoundResult{
		Round:     d.h.RRA().Rounds() - 1,
		Outcome:   d.h.LastChoices(),
		Verdict:   verdict,
		Convicted: verdict.Guilty(),
		Excluded:  excludedIDs(before),
	}
	d.results = append(d.results, res)
	d.hub.emitAll(playEvents(res, newlyExcluded(before, d.h.Excluded)))
	return res, nil
}

func (d *rraDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *rraDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]RoundResult(nil), d.results...)
}

func (d *rraDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return SessionStats{
		Kind:     KindRRA,
		Players:  d.n,
		Rounds:   d.h.RRA().Rounds(),
		Excluded: snapshotExcluded(d.n, d.h.Excluded),
		Fouls:    d.seenFouls,
		MaxLoad:  d.h.RRA().MaxLoad(),
	}
}

func (d *rraDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

func (d *rraDriver) Close() error { return nil }

// --- Distributed driver --------------------------------------------------------

type distDriver struct {
	mu        sync.Mutex
	s         *DistSession
	n, f      int
	hub       *observerHub
	budget    int
	seen      int
	lastPulse int
	fouls     int
	results   []RoundResult
}

func newDistDriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("%w: nil game", ErrConfig)
	}
	if cfg.Strategies != nil || cfg.MixedAgents != nil {
		return nil, fmt.Errorf("%w: the distributed driver plays pure strategies", ErrConfig)
	}
	if cfg.Mode != 0 {
		return nil, fmt.Errorf("%w: audit disciplines apply to mixed sessions", ErrConfig)
	}
	if cfg.Actual != nil {
		return nil, fmt.Errorf("%w: an actual game applies to mixed sessions", ErrConfig)
	}
	if cfg.RRAAgents > 0 || cfg.RRAResources > 0 || cfg.RRAByz != nil {
		return nil, fmt.Errorf("%w: RRA options on a distributed session", ErrConfig)
	}
	n, f := cfg.DistProcs, cfg.DistFaults
	if n <= 3*f {
		return nil, fmt.Errorf("%w: need n > 3f (got n=%d f=%d)", ErrConfig, n, f)
	}
	behaviors := cfg.Agents
	if behaviors == nil {
		behaviors = make([]*Agent, n)
	}
	s, err := NewDistSessionWith(n, f, cfg.Game, behaviors, cfg.Seed, cfg.DistByz, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	budget := cfg.DistPulseBudget
	if budget <= 0 {
		budget = 50 * PulsesPerPlay(f)
	}
	return &distDriver{s: s, n: n, f: f, hub: hub, budget: budget}, nil
}

// Dist exposes the wrapped network session for fault injection and
// consistency checks.
func (d *distDriver) Dist() *DistSession { return d.s }

// Play emits events under the play mutex; see pureDriver.Play.
func (d *distDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	if len(d.s.Honest) == 0 {
		return RoundResult{}, fmt.Errorf("%w: no honest processors to observe", ErrConfig)
	}
	ref := d.s.Procs[d.s.Honest[0]]
	// A transient fault wipes processor histories; re-anchor the cursor.
	if c := ref.ResultCount(); c < d.seen {
		d.seen = c
	}
	before := snapshotExcluded(d.n, ref.Excluded)
	for steps := 0; ref.ResultCount() <= d.seen; steps++ {
		if err := ctx.Err(); err != nil {
			return RoundResult{}, err
		}
		if steps >= d.budget {
			return RoundResult{}, fmt.Errorf("%w (budget %d pulses)", ErrPulseBudget, d.budget)
		}
		d.s.Net.StepLockstep()
	}
	r := ref.ResultAt(d.seen)
	d.seen++

	var evs []Event
	if d.lastPulse > 0 && r.Pulse-d.lastPulse > PulsesPerPlay(d.f) {
		evs = append(evs, Event{
			Kind:   EventClockRecovery,
			Round:  len(d.results),
			Pulse:  r.Pulse,
			Detail: fmt.Sprintf("play completed after a %d-pulse gap (one period is %d)", r.Pulse-d.lastPulse, PulsesPerPlay(d.f)),
		})
	}
	d.lastPulse = r.Pulse

	res := RoundResult{
		Round:     len(d.results),
		Outcome:   r.Outcome,
		Convicted: append([]int(nil), r.Guilty...),
		Excluded:  excludedIDs(before),
		Pulse:     r.Pulse,
	}
	d.fouls += len(res.Convicted)
	d.results = append(d.results, res)
	evs = append(evs, playEvents(res, newlyExcluded(before, ref.Excluded))...)
	d.hub.emitAll(evs)
	return res, nil
}

func (d *distDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *distDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]RoundResult(nil), d.results...)
}

func (d *distDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := SessionStats{
		Kind:     KindDistributed,
		Players:  d.n,
		Rounds:   len(d.results),
		Fouls:    d.fouls,
		Pulses:   int64(d.s.Net.Stats.Pulses),
		Messages: d.s.Net.Stats.MessagesSent,
	}
	if len(d.s.Honest) > 0 {
		st.Excluded = snapshotExcluded(d.n, d.s.Procs[d.s.Honest[0]].Excluded)
	}
	return st
}

func (d *distDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

func (d *distDriver) Close() error { return nil }
