package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gameauthority/internal/audit"
	"gameauthority/internal/game"
	"gameauthority/internal/obs"
	"gameauthority/internal/prng"
	"gameauthority/internal/punish"
	"gameauthority/internal/sim"
)

// ErrPulseBudget is returned by the distributed driver when a play did not
// complete within the configured pulse budget (e.g. while the
// self-stabilizing clock is still re-converging after a transient fault).
var ErrPulseBudget = errors.New("core: pulse budget exhausted before the play completed")

// SessionKind identifies which driver a Session runs on.
type SessionKind int

// Session kinds, inferred from the configuration: distributed if
// DistProcs is set, RRA if RRAAgents is set, mixed if Strategies is set,
// pure otherwise.
const (
	kindUnset SessionKind = iota
	KindPure
	KindMixed
	KindRRA
	KindDistributed
)

// String implements fmt.Stringer.
func (k SessionKind) String() string {
	switch k {
	case KindPure:
		return "pure"
	case KindMixed:
		return "mixed"
	case KindRRA:
		return "rra"
	case KindDistributed:
		return "distributed"
	default:
		return "unknown"
	}
}

// Session is the uniform authority-session interface implemented by all
// four drivers (pure, mixed, RRA, distributed). Implementations are safe
// for concurrent use; plays are serialized internally.
type Session interface {
	// Play executes one audited play of the §3.3 protocol.
	Play(ctx context.Context) (RoundResult, error)
	// PlayN executes n audited plays under a single lock acquisition and
	// returns the last result. State evolution is exactly that of n
	// sequential Play calls at the same point — the batch is purely a
	// locking/journaling optimization. sink, when non-nil, observes each
	// completed round before the next play begins; results passed to it
	// may alias per-play scratch, so it must hash or copy what it keeps.
	// On a mid-batch error the completed prefix stands (and was already
	// seen by sink); the last completed result is returned with the error.
	PlayN(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error)
	// Run executes the given number of plays and returns the last result.
	Run(ctx context.Context, rounds int) (RoundResult, error)
	// Results returns deep copies of the retained plays, oldest first.
	// Sessions bounded with a history limit retain only the most recent
	// plays; Stats().Rounds still counts every play.
	Results() []RoundResult
	// ResultAt returns the play with absolute round index round without
	// copying the whole history, or false when the round was evicted from
	// a bounded history or not yet played. The result may alias
	// session-owned buffers (see RoundResult); Clone it to retain it
	// across further plays on a bounded session.
	ResultAt(round int) (RoundResult, bool)
	// Stats returns a snapshot of the session's counters.
	Stats() SessionStats
	// Subscribe registers an observer for session events (plays, verdicts,
	// convictions, elections, clock recoveries); the returned function
	// cancels the subscription. Sticky events (elections) are replayed to
	// late subscribers.
	Subscribe(Observer) (cancel func())
	// Snapshot captures the session's durable state summary — the replay
	// watermark, counters, and a canonical state digest. Restore rebuilds
	// a byte-identical session from the configuration plus a snapshot.
	// Snapshot works on open and closed sessions alike.
	Snapshot() SessionSnapshot
	// Close finalizes the session: a batched-audit mixed session audits
	// its trailing partial epoch, and a distributed session releases its
	// pulse-engine worker pool. Close is idempotent; after a successful
	// Close, Play fails with ErrClosed while Results, ResultAt and Stats
	// keep answering.
	Close() error
}

// SessionStats is a point-in-time snapshot of a session's counters.
type SessionStats struct {
	Kind    SessionKind
	Players int
	// Rounds is the number of completed plays.
	Rounds int
	// CumulativeCost[i] is agent i's total cost over all plays. Every
	// driver tracks it: the trusted drivers on the (actual) game's cost
	// function, the RRA driver as the post-step load of each chosen
	// resource (the §6 strategic-form cost), and the distributed driver on
	// the elected game over the agreed outcomes.
	CumulativeCost []float64
	// Excluded[i] reports whether agent i is currently excluded by the
	// executive service.
	Excluded []bool
	// Fouls is the total number of fouls the judicial service detected.
	Fouls int
	// Convictions counts executive conviction events: agents newly
	// excluded by a play (an agent excluded, re-admitted and excluded
	// again counts twice).
	Convictions int
	// Protocol counts audit-protocol overhead (mixed driver).
	Protocol CostStats
	// MaxLoad is the maximum resource load so far (RRA driver, §6).
	MaxLoad int64
	// Pulses and Messages count network activity (distributed driver).
	Pulses   int64
	Messages int64
}

// ElectionSpec asks NewSession to run the legislative service first: the
// voters elect the game from the candidates via a robust commit-reveal
// election, and the winning game becomes the session's elected game.
type ElectionSpec struct {
	Candidates []Candidate
	Voters     []Voter
}

// SessionConfig is the single configuration surface behind the façade's
// functional options. Exactly one game source must be set: Game, Election,
// or (for the RRA driver) RRAAgents/RRAResources. The driver is inferred
// from the options (see inferKind).
type SessionConfig struct {
	// Game is the elected game the authority enforces.
	Game game.Game
	// Election, if set, elects the game legislatively instead.
	Election *ElectionSpec
	// Seed drives all commitments, honest sampling, and clocks.
	Seed uint64
	// Scheme is the executive's punishment policy. For the distributed
	// driver it is a prototype: each processor replica gets a Fresh copy.
	Scheme punish.Scheme
	// HistoryLimit bounds the retained play history to the most recent
	// HistoryLimit plays (0 = unbounded). Bounded sessions stop growing
	// and record plays into reused ring slots — see Session.Results.
	HistoryLimit int

	// Deviants installs player-level selfish strategies: Deviants[i]
	// replaces player i's honest behaviour with the strategy's compiled
	// hooks for the resolved driver (see Deviant). A player cannot carry
	// both an explicit agent and a deviant.
	Deviants map[int]Deviant

	// Agents are pure-strategy behaviours (pure and distributed drivers);
	// nil entries (or a nil slice) mean honest best-response agents.
	Agents []*Agent

	// Mixed-driver configuration (§5). Strategies is required for a mixed
	// session; MixedAgents nil entries mean honest samplers.
	MixedAgents  []*MixedAgent
	Strategies   func(round int, prev game.Profile) game.MixedProfile
	Actual       game.Game
	Mode         AuditMode
	EpochLen     int
	SampleProb   float64
	Window       int
	ChiThreshold float64

	// RRA-driver configuration (§6). RRAAgents agents share RRAResources
	// resources; RRAByz overrides per-agent choices. Supervision is on
	// exactly when Scheme is set.
	RRAAgents    int
	RRAResources int
	RRAByz       map[int]func(agent int, loads []int64) int

	// Distributed-driver configuration (§3.3 over the synchronous
	// network). DistProcs processors tolerate DistFaults Byzantine ones
	// (n > 3f); DistByz installs network-level adversaries.
	DistProcs  int
	DistFaults int
	DistByz    map[int]sim.Adversary
	// DistPulseBudget bounds how many pulses one Play may consume waiting
	// for a play to complete (0 = a generous default). Exhaustion returns
	// ErrPulseBudget, which is recoverable: the next Play keeps stepping.
	DistPulseBudget int
	// DistWorkers selects the pulse engine: 0 = auto (parallel on
	// min(GOMAXPROCS, n) workers when more than one core is available),
	// 1 = the lockstep reference engine, w > 1 = a worker pool of that
	// width. Both engines produce identical executions.
	DistWorkers int
}

// inferKind resolves the driver from the configuration.
func (cfg *SessionConfig) inferKind() SessionKind {
	switch {
	case cfg.DistProcs > 0 || cfg.DistFaults > 0 || cfg.DistByz != nil:
		return KindDistributed
	case cfg.RRAAgents > 0 || cfg.RRAResources > 0 || cfg.RRAByz != nil:
		return KindRRA
	case cfg.Strategies != nil || cfg.MixedAgents != nil || cfg.Mode != 0:
		return KindMixed
	default:
		return KindPure
	}
}

// NewSession validates the configuration, runs the legislative service if
// requested, and builds the driver for the resolved session kind.
func NewSession(cfg SessionConfig) (Session, error) {
	hub := newObserverHub()

	if cfg.HistoryLimit < 0 {
		return nil, fmt.Errorf("%w: negative history limit %d", ErrConfig, cfg.HistoryLimit)
	}
	if cfg.Election != nil {
		if cfg.Game != nil {
			return nil, fmt.Errorf("%w: both a game and an election were supplied", ErrConfig)
		}
		out, err := RobustElection(cfg.Election.Candidates, cfg.Election.Voters,
			prng.Derive(cfg.Seed, 0xE1EC7).Uint64())
		if err != nil {
			return nil, err
		}
		cfg.Game = cfg.Election.Candidates[out.Winner].Game
		hub.emit(Event{
			Kind:   EventElection,
			Winner: out.Winner,
			Detail: cfg.Election.Candidates[out.Winner].Description,
		})
	}

	// Accelerate the elected game into cost lookup tables (when its
	// profile space is small enough) before any driver or honest agent
	// captures it, so every audit and best-response query is a lookup.
	cfg.Game = game.Accelerate(cfg.Game)
	cfg.Actual = game.Accelerate(cfg.Actual)

	kind := cfg.inferKind()
	switch kind {
	case KindPure:
		return newPureDriver(cfg, hub)
	case KindMixed:
		return newMixedDriver(cfg, hub)
	case KindRRA:
		return newRRADriver(cfg, hub)
	case KindDistributed:
		return newDistDriver(cfg, hub)
	default:
		return nil, fmt.Errorf("%w: unknown session kind %d", ErrConfig, kind)
	}
}

// runSession is the shared Run implementation.
// playLatency is the per-driver play-latency histogram family, indexed
// by SessionKind. Recording is three atomic adds, so the instrumented
// hot paths keep their pinned allocation budgets (pure play stays 0).
// Single plays record in Play; batched rounds record inside playN, so
// every audited round lands in the same series regardless of transport
// or batching.
var playLatency = [...]*obs.Histogram{
	KindPure: obs.NewHistogram("gameauthority_play_latency_seconds",
		"Latency of one audited play, by driver.", obs.Label{Key: "driver", Value: "pure"}),
	KindMixed: obs.NewHistogram("gameauthority_play_latency_seconds",
		"Latency of one audited play, by driver.", obs.Label{Key: "driver", Value: "mixed"}),
	KindRRA: obs.NewHistogram("gameauthority_play_latency_seconds",
		"Latency of one audited play, by driver.", obs.Label{Key: "driver", Value: "rra"}),
	KindDistributed: obs.NewHistogram("gameauthority_play_latency_seconds",
		"Latency of one audited play, by driver.", obs.Label{Key: "driver", Value: "distributed"}),
}

func runSession(ctx context.Context, s Session, rounds int) (RoundResult, error) {
	var last RoundResult
	for i := 0; i < rounds; i++ {
		res, err := s.Play(ctx)
		if err != nil {
			return last, err
		}
		last = res
	}
	return last, nil
}

// playN is the shared PlayN implementation: one lock acquisition, n
// sequential locked plays, sink observing each result before the next
// play reuses its scratch. Each driver's Play is lock + playLocked, so
// the batch path is structurally the same state evolution as n
// sequential Play calls.
func playN(ctx context.Context, mu *sync.Mutex, kind SessionKind,
	play func(context.Context) (RoundResult, error),
	n int, sink func(RoundResult) error) (RoundResult, error) {
	if n <= 0 {
		return RoundResult{}, fmt.Errorf("%w: non-positive batch size %d", ErrConfig, n)
	}
	hist := playLatency[kind]
	mu.Lock()
	defer mu.Unlock()
	var last RoundResult
	for i := 0; i < n; i++ {
		t0 := time.Now()
		res, err := play(ctx)
		hist.Record(time.Since(t0))
		if err != nil {
			return last, err
		}
		last = res
		if sink != nil {
			if err := sink(res); err != nil {
				return last, err
			}
		}
	}
	return last, nil
}

// snapshotExcluded captures the executive's current exclusion flags.
func snapshotExcluded(n int, excluded func(int) bool) []bool {
	out := make([]bool, n)
	snapshotExcludedInto(out, excluded)
	return out
}

// snapshotExcludedInto is snapshotExcluded over a reused scratch slice.
func snapshotExcludedInto(out []bool, excluded func(int) bool) {
	for i := range out {
		out[i] = excluded(i)
	}
}

// newlyExcluded diffs exclusion flags before and after a play.
func newlyExcluded(before []bool, excluded func(int) bool) []int {
	var out []int
	for i, was := range before {
		if !was && excluded(i) {
			out = append(out, i)
		}
	}
	return out
}

func excludedIDs(flags []bool) []int {
	var out []int
	for i, f := range flags {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// playEvents assembles the observer events for one completed play. Event
// payloads are deep-cloned: observers may hold them past the play's
// eviction from a bounded history ring.
func playEvents(res RoundResult, convictions []int) []Event {
	evs := []Event{{
		Kind:    EventPlay,
		Round:   res.Round,
		Outcome: cloneProfile(res.Outcome),
		Costs:   cloneFloats(res.Costs),
		Pulse:   res.Pulse,
	}}
	if len(res.Verdict.Fouls) > 0 {
		evs = append(evs, Event{Kind: EventVerdict, Round: res.Round, Fouls: cloneFouls(res.Verdict.Fouls)})
	}
	for _, agent := range convictions {
		evs = append(evs, Event{
			Kind:   EventConviction,
			Round:  res.Round,
			Agent:  agent,
			Detail: "excluded by the executive service",
		})
	}
	return evs
}

// --- Pure driver ---------------------------------------------------------------

type pureDriver struct {
	mu          sync.Mutex
	s           *PureSession
	n           int
	hub         *observerHub
	fouls       int
	convictions int
	closed      bool
	before      []bool // exclusion-snapshot scratch, reused per play
}

func newPureDriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("%w: nil game", ErrConfig)
	}
	if cfg.MixedAgents != nil {
		return nil, fmt.Errorf("%w: mixed agents require strategies (a mixed session)", ErrConfig)
	}
	if cfg.Actual != nil {
		return nil, fmt.Errorf("%w: an actual game applies to mixed sessions", ErrConfig)
	}
	if cfg.DistPulseBudget != 0 {
		return nil, fmt.Errorf("%w: pulse budgets apply to distributed sessions", ErrConfig)
	}
	if cfg.DistWorkers != 0 {
		return nil, fmt.Errorf("%w: pulse workers apply to distributed sessions", ErrConfig)
	}
	n := cfg.Game.NumPlayers()
	agents := cfg.Agents
	if agents == nil {
		agents = make([]*Agent, n)
	}
	if len(agents) != n {
		return nil, fmt.Errorf("%w: %d agents for %d players", ErrConfig, len(agents), n)
	}
	filled := make([]*Agent, n)
	copy(filled, agents)
	if err := installPureDeviants(filled, cfg.Deviants, cfg.Game, cfg.Seed); err != nil {
		return nil, err
	}
	for i := range filled {
		if filled[i] == nil {
			filled[i] = HonestPure(cfg.Game, i)
		}
	}
	s, err := NewPureSession(cfg.Game, filled, cfg.Scheme, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := s.SetHistoryLimit(cfg.HistoryLimit); err != nil {
		return nil, err
	}
	return &pureDriver{s: s, n: n, hub: hub, before: make([]bool, n)}, nil
}

// Pure exposes the wrapped driver for measurements and legacy helpers.
func (d *pureDriver) Pure() *PureSession { return d.s }

// Play emits events while still holding the play mutex so concurrent
// players cannot interleave streams out of round order (observers must not
// call back into the session — see Observer).
func (d *pureDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := time.Now()
	res, err := d.playLocked(ctx)
	playLatency[KindPure].Record(time.Since(t0))
	return res, err
}

// PlayN implements Session.
func (d *pureDriver) PlayN(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error) {
	return playN(ctx, &d.mu, KindPure, d.playLocked, n, sink)
}

func (d *pureDriver) playLocked(ctx context.Context) (RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	if d.closed {
		return RoundResult{}, fmt.Errorf("%w: play on a closed session", ErrClosed)
	}
	snapshotExcludedInto(d.before, d.s.Excluded)
	res, err := d.s.PlayRound()
	if err != nil {
		return RoundResult{}, err
	}
	d.fouls += len(res.Verdict.Fouls)
	newly := newlyExcluded(d.before, d.s.Excluded)
	d.convictions += len(newly)
	if d.hub.active() {
		d.hub.emitAll(playEvents(res, newly))
	}
	return res, nil
}

func (d *pureDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *pureDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s.History()
}

func (d *pureDriver) ResultAt(round int) (RoundResult, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.s.ResultAt(round)
}

func (d *pureDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := SessionStats{
		Kind:           KindPure,
		Players:        d.n,
		Rounds:         d.s.Round(),
		CumulativeCost: make([]float64, d.n),
		Excluded:       snapshotExcluded(d.n, d.s.Excluded),
		Fouls:          d.fouls,
		Convictions:    d.convictions,
	}
	for i := 0; i < d.n; i++ {
		st.CumulativeCost[i] = d.s.CumulativeCost(i)
	}
	return st
}

func (d *pureDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

// Close finalizes the session: further plays fail with ErrClosed while
// Results, ResultAt and Stats keep answering. Close is idempotent.
func (d *pureDriver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// --- Mixed driver --------------------------------------------------------------

type mixedDriver struct {
	mu           sync.Mutex
	s            *MixedSession
	n            int
	hub          *observerHub
	history      historyRing
	seenVerdicts int
	fouls        int
	convictions  int
	closed       bool

	// Per-play scratch, reused across plays.
	before   []bool
	prevCost []float64
	costs    []float64
	merged   audit.Verdict
	result   RoundResult
}

func newMixedDriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Agents != nil {
		return nil, fmt.Errorf("%w: pure-strategy agents on a mixed session (use mixed agents)", ErrConfig)
	}
	if cfg.Game == nil {
		return nil, fmt.Errorf("%w: nil elected game", ErrConfig)
	}
	if cfg.Strategies == nil {
		return nil, fmt.Errorf("%w: mixed sessions require strategies", ErrConfig)
	}
	if cfg.DistPulseBudget != 0 {
		return nil, fmt.Errorf("%w: pulse budgets apply to distributed sessions", ErrConfig)
	}
	if cfg.DistWorkers != 0 {
		return nil, fmt.Errorf("%w: pulse workers apply to distributed sessions", ErrConfig)
	}
	n := cfg.Game.NumPlayers()
	agents := make([]*MixedAgent, n)
	if cfg.MixedAgents != nil {
		if len(cfg.MixedAgents) != n {
			return nil, fmt.Errorf("%w: %d mixed agents for %d players", ErrConfig, len(cfg.MixedAgents), n)
		}
		copy(agents, cfg.MixedAgents)
	}
	if err := installMixedDeviants(agents, cfg.Deviants, cfg.Game, cfg.Seed); err != nil {
		return nil, err
	}
	mode := cfg.Mode
	if mode == 0 {
		// Default discipline: audit per round when an executive scheme is
		// installed, otherwise the unsupervised baseline.
		if cfg.Scheme != nil {
			mode = AuditPerRound
		} else {
			mode = AuditOff
		}
	}
	s, err := NewMixedSession(MixedConfig{
		Elected:      cfg.Game,
		Actual:       cfg.Actual,
		Strategies:   cfg.Strategies,
		Agents:       agents,
		Scheme:       cfg.Scheme,
		Mode:         mode,
		EpochLen:     cfg.EpochLen,
		SampleProb:   cfg.SampleProb,
		Window:       cfg.Window,
		ChiThreshold: cfg.ChiThreshold,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	d := &mixedDriver{
		s: s, n: n, hub: hub,
		before:   make([]bool, n),
		prevCost: make([]float64, n),
		costs:    make([]float64, n),
	}
	d.history.setLimit(cfg.HistoryLimit)
	return d, nil
}

// Mixed exposes the wrapped driver for measurements and legacy helpers.
func (d *mixedDriver) Mixed() *MixedSession { return d.s }

// Play emits events under the play mutex; see pureDriver.Play.
func (d *mixedDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := time.Now()
	res, err := d.playLocked(ctx)
	playLatency[KindMixed].Record(time.Since(t0))
	return res, err
}

// PlayN implements Session.
func (d *mixedDriver) PlayN(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error) {
	return playN(ctx, &d.mu, KindMixed, d.playLocked, n, sink)
}

func (d *mixedDriver) playLocked(ctx context.Context) (RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	if d.closed {
		return RoundResult{}, fmt.Errorf("%w: play on a closed session", ErrClosed)
	}
	snapshotExcludedInto(d.before, d.s.Excluded)
	for i := range d.prevCost {
		d.prevCost[i] = d.s.CumulativeCost(i)
	}
	outcome, err := d.s.PlayRound()
	if err != nil {
		return RoundResult{}, err
	}
	for i := range d.costs {
		d.costs[i] = d.s.CumulativeCost(i) - d.prevCost[i]
	}
	verdict := d.drainVerdicts()
	d.result = RoundResult{
		Round:     d.s.Round() - 1,
		Outcome:   outcome,
		Verdict:   verdict,
		Convicted: verdict.Guilty(),
		Excluded:  excludedIDs(d.before),
		Costs:     d.costs,
	}
	res := d.history.record(&d.result)
	newly := newlyExcluded(d.before, d.s.Excluded)
	d.convictions += len(newly)
	if d.hub.active() {
		d.hub.emitAll(playEvents(res, newly))
	}
	return res, nil
}

// drainVerdicts merges verdicts issued since the last play into one
// (reusing the driver's scratch). In batched mode an epoch's verdict lands
// on the play that closed the epoch.
func (d *mixedDriver) drainVerdicts() audit.Verdict {
	count := d.s.VerdictCount()
	d.merged.Fouls = d.merged.Fouls[:0]
	for i := d.seenVerdicts; i < count; i++ {
		d.merged.Fouls = append(d.merged.Fouls, d.s.VerdictAt(i).Fouls...)
	}
	d.seenVerdicts = count
	d.fouls += len(d.merged.Fouls)
	return d.merged
}

func (d *mixedDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *mixedDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.snapshot()
}

func (d *mixedDriver) ResultAt(round int) (RoundResult, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.history.at(round)
	if !ok {
		return RoundResult{}, false
	}
	return view(slot), true
}

func (d *mixedDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := SessionStats{
		Kind:           KindMixed,
		Players:        d.n,
		Rounds:         d.s.Round(),
		CumulativeCost: make([]float64, d.n),
		Excluded:       snapshotExcluded(d.n, d.s.Excluded),
		Fouls:          d.fouls,
		Convictions:    d.convictions,
		Protocol:       d.s.Stats(),
	}
	for i := 0; i < d.n; i++ {
		st.CumulativeCost[i] = d.s.CumulativeCost(i)
	}
	return st
}

func (d *mixedDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

// Close audits any trailing partial epoch (batched mode) and attaches the
// verdict to the last recorded play. A failed close stays open so callers
// can retry it.
func (d *mixedDriver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	before := snapshotExcluded(d.n, d.s.Excluded)
	if err := d.s.CloseEpoch(); err != nil {
		return err
	}
	d.closed = true
	verdict := d.drainVerdicts()
	newly := newlyExcluded(before, d.s.Excluded)
	d.convictions += len(newly)
	if last, ok := d.history.at(d.history.recorded() - 1); len(verdict.Fouls) > 0 && ok {
		last.Verdict.Fouls = append(last.Verdict.Fouls, verdict.Fouls...)
		last.Convicted = append(last.Convicted[:0], last.Verdict.Guilty()...)
		evs := []Event{{Kind: EventVerdict, Round: last.Round, Fouls: cloneFouls(verdict.Fouls)}}
		for _, agent := range newly {
			evs = append(evs, Event{
				Kind:   EventConviction,
				Round:  last.Round,
				Agent:  agent,
				Detail: "excluded by the executive service",
			})
		}
		d.hub.emitAll(evs)
	}
	return nil
}

// --- RRA driver ----------------------------------------------------------------

type rraDriver struct {
	mu          sync.Mutex
	h           *RRASupervised
	n           int
	hub         *observerHub
	history     historyRing
	seenFouls   int
	convictions int
	closed      bool
	cumCost     []float64

	// Per-play scratch, reused across plays.
	before  []bool
	verdict audit.Verdict
	costs   []float64
	result  RoundResult
}

func newRRADriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Game != nil {
		return nil, fmt.Errorf("%w: RRA sessions build their own game (drop the game argument)", ErrConfig)
	}
	if cfg.Strategies != nil || cfg.MixedAgents != nil {
		return nil, fmt.Errorf("%w: RRA sessions use the committed equilibrium strategy", ErrConfig)
	}
	if cfg.Actual != nil {
		return nil, fmt.Errorf("%w: an actual game applies to mixed sessions", ErrConfig)
	}
	if cfg.Agents != nil {
		return nil, fmt.Errorf("%w: RRA behaviours are installed with RRAByz, not agents", ErrConfig)
	}
	if cfg.Mode != 0 {
		return nil, fmt.Errorf("%w: audit disciplines apply to mixed sessions", ErrConfig)
	}
	if cfg.DistPulseBudget != 0 {
		return nil, fmt.Errorf("%w: pulse budgets apply to distributed sessions", ErrConfig)
	}
	if cfg.DistWorkers != 0 {
		return nil, fmt.Errorf("%w: pulse workers apply to distributed sessions", ErrConfig)
	}
	h, err := NewRRASupervised(cfg.RRAAgents, cfg.RRAResources, cfg.Seed, cfg.Scheme, cfg.Scheme != nil)
	if err != nil {
		return nil, err
	}
	for agent, choose := range cfg.RRAByz {
		h.SetByzantine(agent, choose)
	}
	deviants, err := deviantPlayers(cfg.Deviants, cfg.RRAAgents)
	if err != nil {
		return nil, err
	}
	for _, player := range deviants {
		if _, taken := cfg.RRAByz[player]; taken {
			return nil, fmt.Errorf("%w: RRA agent %d has both a Byzantine chooser and a deviant strategy", ErrConfig, player)
		}
		h.SetDeviant(player, cfg.Deviants[player].RRAChooser(player, cfg.Seed))
	}
	d := &rraDriver{
		h: h, n: cfg.RRAAgents, hub: hub,
		before:  make([]bool, cfg.RRAAgents),
		costs:   make([]float64, cfg.RRAAgents),
		cumCost: make([]float64, cfg.RRAAgents),
	}
	d.history.setLimit(cfg.HistoryLimit)
	return d, nil
}

// Harness exposes the wrapped driver for measurements and legacy helpers.
func (d *rraDriver) Harness() *RRASupervised { return d.h }

// Play emits events under the play mutex; see pureDriver.Play.
func (d *rraDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := time.Now()
	res, err := d.playLocked(ctx)
	playLatency[KindRRA].Record(time.Since(t0))
	return res, err
}

// PlayN implements Session.
func (d *rraDriver) PlayN(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error) {
	return playN(ctx, &d.mu, KindRRA, d.playLocked, n, sink)
}

func (d *rraDriver) playLocked(ctx context.Context) (RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	if d.closed {
		return RoundResult{}, fmt.Errorf("%w: play on a closed session", ErrClosed)
	}
	snapshotExcludedInto(d.before, d.h.Excluded)
	if err := d.h.PlayRound(); err != nil {
		return RoundResult{}, err
	}
	d.verdict.Fouls = append(d.verdict.Fouls[:0], d.h.fouls[d.seenFouls:]...)
	d.seenFouls = len(d.h.fouls)
	// Per-agent cost of the play: the post-step cumulative load of the
	// chosen resource — exactly the §6 strategic-form cost (pre-step load
	// plus this round's contention).
	for i, choice := range d.h.lastChoices {
		d.costs[i] = float64(d.h.RRA().Load(choice))
		d.cumCost[i] += d.costs[i]
	}
	d.result = RoundResult{
		Round:     d.h.RRA().Rounds() - 1,
		Outcome:   d.h.lastChoices,
		Verdict:   d.verdict,
		Convicted: d.verdict.Guilty(),
		Excluded:  excludedIDs(d.before),
		Costs:     d.costs,
	}
	res := d.history.record(&d.result)
	newly := newlyExcluded(d.before, d.h.Excluded)
	d.convictions += len(newly)
	if d.hub.active() {
		d.hub.emitAll(playEvents(res, newly))
	}
	return res, nil
}

func (d *rraDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *rraDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.snapshot()
}

func (d *rraDriver) ResultAt(round int) (RoundResult, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.history.at(round)
	if !ok {
		return RoundResult{}, false
	}
	return view(slot), true
}

func (d *rraDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return SessionStats{
		Kind:           KindRRA,
		Players:        d.n,
		Rounds:         d.h.RRA().Rounds(),
		CumulativeCost: append([]float64(nil), d.cumCost...),
		Excluded:       snapshotExcluded(d.n, d.h.Excluded),
		Fouls:          d.seenFouls,
		Convictions:    d.convictions,
		MaxLoad:        d.h.RRA().MaxLoad(),
	}
}

func (d *rraDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

// Close finalizes the session; see pureDriver.Close.
func (d *rraDriver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// --- Distributed driver --------------------------------------------------------

type distDriver struct {
	mu          sync.Mutex
	s           *DistSession
	g           game.Game
	n, f        int
	hub         *observerHub
	budget      int
	seen        int
	lastPulse   int
	fouls       int
	convictions int
	closed      bool
	cumCost     []float64
	history     historyRing

	// Per-play scratch, reused across plays.
	before []bool
	costs  []float64
	result RoundResult
}

func newDistDriver(cfg SessionConfig, hub *observerHub) (Session, error) {
	if cfg.Game == nil {
		return nil, fmt.Errorf("%w: nil game", ErrConfig)
	}
	if cfg.Strategies != nil || cfg.MixedAgents != nil {
		return nil, fmt.Errorf("%w: the distributed driver plays pure strategies", ErrConfig)
	}
	if cfg.Mode != 0 {
		return nil, fmt.Errorf("%w: audit disciplines apply to mixed sessions", ErrConfig)
	}
	if cfg.Actual != nil {
		return nil, fmt.Errorf("%w: an actual game applies to mixed sessions", ErrConfig)
	}
	if cfg.RRAAgents > 0 || cfg.RRAResources > 0 || cfg.RRAByz != nil {
		return nil, fmt.Errorf("%w: RRA options on a distributed session", ErrConfig)
	}
	n, f := cfg.DistProcs, cfg.DistFaults
	if n == 0 && cfg.DistByz != nil {
		// A network adversary alone selected this driver; name the real
		// mistake instead of failing the n > 3f arithmetic below.
		return nil, fmt.Errorf("%w: network adversaries require a distributed session (combine WithNetworkAdversary with WithDistributed)", ErrConfig)
	}
	if n <= 3*f {
		return nil, fmt.Errorf("%w: need n > 3f (got n=%d f=%d)", ErrConfig, n, f)
	}
	if cfg.Agents != nil && len(cfg.Agents) != n {
		return nil, fmt.Errorf("%w: %d agents for %d processors", ErrConfig, len(cfg.Agents), n)
	}
	behaviors := make([]*Agent, n)
	copy(behaviors, cfg.Agents)
	if err := installPureDeviants(behaviors, cfg.Deviants, cfg.Game, cfg.Seed); err != nil {
		return nil, err
	}
	s, err := NewDistSessionWith(n, f, cfg.Game, behaviors, cfg.Seed, cfg.DistByz, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	budget := cfg.DistPulseBudget
	if budget <= 0 {
		budget = 50 * PulsesPerPlay(f)
	}
	if cfg.DistWorkers < 0 {
		return nil, fmt.Errorf("%w: negative pulse workers %d", ErrConfig, cfg.DistWorkers)
	}
	workers := cfg.DistWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0) // auto: use the cores we have
	}
	s.Net.SetWorkers(workers)
	d := &distDriver{
		s: s, g: cfg.Game, n: n, f: f, hub: hub, budget: budget,
		before:  make([]bool, n),
		costs:   make([]float64, n),
		cumCost: make([]float64, n),
	}
	d.history.setLimit(cfg.HistoryLimit)
	return d, nil
}

// Dist exposes the wrapped network session for fault injection and
// consistency checks.
func (d *distDriver) Dist() *DistSession { return d.s }

// Play emits events under the play mutex; see pureDriver.Play.
func (d *distDriver) Play(ctx context.Context) (RoundResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := time.Now()
	res, err := d.playLocked(ctx)
	playLatency[KindDistributed].Record(time.Since(t0))
	return res, err
}

// PlayN implements Session.
func (d *distDriver) PlayN(ctx context.Context, n int, sink func(RoundResult) error) (RoundResult, error) {
	return playN(ctx, &d.mu, KindDistributed, d.playLocked, n, sink)
}

func (d *distDriver) playLocked(ctx context.Context) (RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	if d.closed {
		return RoundResult{}, fmt.Errorf("%w: play on a closed session", ErrClosed)
	}
	if len(d.s.Honest) == 0 {
		return RoundResult{}, fmt.Errorf("%w: no honest processors to observe", ErrConfig)
	}
	ref := d.s.Procs[d.s.Honest[0]]
	// A transient fault wipes processor histories; re-anchor the cursor.
	if c := ref.ResultCount(); c < d.seen {
		d.seen = c
	}
	snapshotExcludedInto(d.before, ref.Excluded)
	for steps := 0; ref.ResultCount() <= d.seen; steps++ {
		if err := ctx.Err(); err != nil {
			return RoundResult{}, err
		}
		if steps >= d.budget {
			return RoundResult{}, fmt.Errorf("%w (budget %d pulses)", ErrPulseBudget, d.budget)
		}
		d.s.Net.Step()
	}
	r := ref.resultRef(d.seen)
	d.seen++

	round := d.history.recorded()
	var evs []Event
	clockRecovered := d.lastPulse > 0 && r.Pulse-d.lastPulse > PulsesPerPlay(d.f)
	if clockRecovered && d.hub.active() {
		evs = append(evs, Event{
			Kind:   EventClockRecovery,
			Round:  round,
			Pulse:  r.Pulse,
			Detail: fmt.Sprintf("play completed after a %d-pulse gap (one period is %d)", r.Pulse-d.lastPulse, PulsesPerPlay(d.f)),
		})
	}
	d.lastPulse = r.Pulse

	// Per-agent cost of the agreed outcome on the elected game — the
	// value the profit auditor compares across honest/deviant twins.
	for i := 0; i < d.n; i++ {
		d.costs[i] = d.g.Cost(i, r.Outcome)
		d.cumCost[i] += d.costs[i]
	}
	d.result = RoundResult{
		Round:     round,
		Outcome:   r.Outcome,
		Convicted: r.Guilty,
		Excluded:  excludedIDs(d.before),
		Costs:     d.costs,
		Pulse:     r.Pulse,
	}
	d.fouls += len(r.Guilty)
	res := d.history.record(&d.result)
	newly := newlyExcluded(d.before, ref.Excluded)
	d.convictions += len(newly)
	if d.hub.active() {
		evs = append(evs, playEvents(res, newly)...)
		d.hub.emitAll(evs)
	}
	return res, nil
}

func (d *distDriver) Run(ctx context.Context, rounds int) (RoundResult, error) {
	return runSession(ctx, d, rounds)
}

func (d *distDriver) Results() []RoundResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.snapshot()
}

func (d *distDriver) ResultAt(round int) (RoundResult, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.history.at(round)
	if !ok {
		return RoundResult{}, false
	}
	return view(slot), true
}

func (d *distDriver) Stats() SessionStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := SessionStats{
		Kind:           KindDistributed,
		Players:        d.n,
		Rounds:         d.history.recorded(),
		CumulativeCost: append([]float64(nil), d.cumCost...),
		Fouls:          d.fouls,
		Convictions:    d.convictions,
		Pulses:         int64(d.s.Net.Stats.Pulses),
		Messages:       d.s.Net.Stats.MessagesSent,
	}
	if len(d.s.Honest) > 0 {
		st.Excluded = snapshotExcluded(d.n, d.s.Procs[d.s.Honest[0]].Excluded)
	}
	return st
}

func (d *distDriver) Subscribe(o Observer) func() { return d.hub.subscribe(o) }

// Close finalizes the session and releases the pulse engine's worker pool.
// Further plays fail with ErrClosed; Results, ResultAt and Stats keep
// answering. Close is idempotent.
func (d *distDriver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.s.Net.Close()
	return nil
}
