// Package core implements the paper's primary contribution: the game
// authority middleware (§3). It wires the three services together:
//
//   - legislative — the agents elect the game Γ (rules + cost functions)
//     democratically (robust commit-reveal voting, §3.1);
//   - judicial — every play is audited: legitimate action choice, private
//     and simultaneous choice via commitments, foul-play detection against
//     best responses or committed PRG streams (§3.2, §5);
//   - executive — outcomes are published, choices collected, and agents
//     convicted by the judicial service are punished (§3.4).
//
// Two drivers execute the play protocol of §3.3:
//
//   - the trusted driver (trusted.go) runs the same legislate/audit/punish
//     code paths centrally — used for the game-theoretic experiments where
//     tens of thousands of plays are needed;
//   - the distributed driver (distributed.go) runs the full protocol over
//     the synchronous network: a self-stabilizing Byzantine clock schedules
//     the phases and every agreement (outcome, commitment set, reveal set,
//     verdict) goes through interactive consistency on the BAP.
package core
