package core

import (
	"errors"
	"testing"

	"gameauthority/internal/game"
	"gameauthority/internal/voting"
)

func threeCandidates() []Candidate {
	return []Candidate{
		{Game: game.MatchingPennies(), Description: "matching pennies"},
		{Game: game.PrisonersDilemma(), Description: "prisoners dilemma"},
		{Game: game.CoordinationGame(), Description: "coordination"},
	}
}

func TestNaiveElectionManipulable(t *testing.T) {
	// 4 sincere voters split 2-2 between candidates 0 and 1; the
	// manipulator (prefers 1) votes last and tips the election.
	voters := []Voter{
		{Prefs: []int{0, 1, 2}}, {Prefs: []int{0, 1, 2}},
		{Prefs: []int{1, 0, 2}}, {Prefs: []int{1, 0, 2}},
		{Prefs: []int{1, 2, 0}, Manipulative: true},
	}
	out, err := NaiveElection(threeCandidates(), voters)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != 1 {
		t.Fatalf("naive winner = %d, want manipulator's pick 1", out.Winner)
	}
}

func TestNaiveVsRobustDivergeUnderManipulation(t *testing.T) {
	// A manipulator whose sincere preference is candidate 2 but who would
	// strategically vote 1 when it can see a 2-2 tie: in the robust
	// election it cannot see anything and votes sincerely (2), leaving
	// the tie to break deterministically to 0.
	voters := []Voter{
		{Prefs: []int{0, 1, 2}}, {Prefs: []int{0, 1, 2}},
		{Prefs: []int{1, 0, 2}}, {Prefs: []int{1, 0, 2}},
		{Prefs: []int{2, 1, 0}, Manipulative: true},
	}
	naive, err := NaiveElection(threeCandidates(), voters)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := RobustElection(threeCandidates(), voters, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Naive: manipulator cannot elect 2 (0 votes among others), so it
	// settles for 1 → winner 1. Robust: it votes sincerely for 2 →
	// tally 2-2-1 → tie breaks to 0.
	if naive.Winner != 1 {
		t.Fatalf("naive winner = %d, want 1", naive.Winner)
	}
	if robust.Winner != 0 {
		t.Fatalf("robust winner = %d, want 0", robust.Winner)
	}
	if len(robust.Cheaters) != 0 {
		t.Fatalf("robust cheaters = %v", robust.Cheaters)
	}
}

func TestRobustElectionAllSincere(t *testing.T) {
	voters := []Voter{
		{Prefs: []int{2, 0, 1}}, {Prefs: []int{2, 1, 0}}, {Prefs: []int{0, 1, 2}},
	}
	out, err := RobustElection(threeCandidates(), voters, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != 2 {
		t.Fatalf("winner = %d, want 2", out.Winner)
	}
	if out.Scores[2] != 2 {
		t.Fatalf("scores = %v", out.Scores)
	}
}

func TestElectionErrors(t *testing.T) {
	if _, err := NaiveElection(nil, nil); !errors.Is(err, voting.ErrNoCandidates) {
		t.Fatalf("no candidates: %v", err)
	}
	if _, err := NaiveElection(threeCandidates(), []Voter{{}}); !errors.Is(err, ErrConfig) {
		t.Fatalf("voter without prefs: %v", err)
	}
	if _, err := RobustElection(nil, nil, 1); !errors.Is(err, voting.ErrNoCandidates) {
		t.Fatalf("robust no candidates: %v", err)
	}
	if _, err := RobustElection(threeCandidates(), []Voter{{}}, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("robust voter without prefs: %v", err)
	}
}
