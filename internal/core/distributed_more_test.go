package core

import (
	"testing"

	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestDistSessionDroppingByzantine(t *testing.T) {
	// A Byzantine processor that drops half its traffic: honest replicas
	// must stay consistent (its slots resolve via the BAP defaults).
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	byz := map[int]sim.Adversary{2: sim.DropAdversary(9, 0.5)}
	s, err := NewDistSession(n, f, g, make([]*Agent, n), 30, byz)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(5)
	if err := s.ConsistentResults(4); err != nil {
		t.Fatal(err)
	}
	if len(s.Procs[0].Results()) < 4 {
		t.Fatalf("plays = %d", len(s.Procs[0].Results()))
	}
}

func TestDistSessionTamperedRevealConvicted(t *testing.T) {
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	behaviors := make([]*Agent, n)
	behaviors[3] = &Agent{
		Choose: func(int, game.Profile) int { return 1 },
		TamperOpening: func(round int, op commit.Opening) commit.Opening {
			op.Value = []byte("botched")
			return op
		},
	}
	byz := map[int]sim.Adversary{3: sim.PassthroughAdversary()}
	s, err := NewDistSession(n, f, g, behaviors, 31, byz)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(2)
	if err := s.ConsistentResults(2); err != nil {
		t.Fatal(err)
	}
	res := s.Procs[0].Results()
	if len(res) == 0 || len(res[0].Guilty) != 1 || res[0].Guilty[0] != 3 {
		t.Fatalf("results = %+v, want conviction of 3", res)
	}
}

func TestDistSessionRepeatedCorruptionBursts(t *testing.T) {
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	s, err := NewDistSession(n, f, g, make([]*Agent, n), 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for burst := uint64(0); burst < 3; burst++ {
		ent := prng.New(5000 + burst*17)
		s.Net.Corrupt(ent.Uint64)
		s.Net.Run(40 * PulsesPerPlay(f))
		if err := s.ConsistentResults(2); err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
		if len(s.Procs[s.Honest[0]].Results()) < 2 {
			t.Fatalf("burst %d: no plays resumed", burst)
		}
	}
}

func TestDistSessionSevenProcessors(t *testing.T) {
	n, f := 7, 2
	g := &nPlayerPD{n: n}
	byz := map[int]sim.Adversary{
		5: sim.SilentAdversary(),
		6: sim.DropAdversary(3, 0.8),
	}
	s, err := NewDistSession(n, f, g, make([]*Agent, n), 33, byz)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(3)
	if err := s.ConsistentResults(2); err != nil {
		t.Fatal(err)
	}
	res := s.Procs[0].Results()
	if len(res) < 2 {
		t.Fatalf("plays = %d", len(res))
	}
	for _, r := range res {
		if err := game.ValidateProfile(g, r.Outcome); err != nil {
			t.Fatalf("outcome %v invalid: %v", r.Outcome, err)
		}
	}
}
