package core

import (
	"errors"
	"testing"
	"testing/quick"

	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
)

func TestEncodeDecodeProfile(t *testing.T) {
	cases := []game.Profile{{0}, {1, 0, 2}, {-1, 3}}
	for _, p := range cases {
		got, err := DecodeProfile(EncodeProfile(p), len(p))
		if err != nil {
			t.Fatalf("decode(%v): %v", p, err)
		}
		if !got.Equal(p) {
			t.Fatalf("round trip %v → %v", p, got)
		}
	}
	if _, err := DecodeProfile("", 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := DecodeProfile("1,2", 3); !errors.Is(err, ErrConfig) {
		t.Fatalf("arity: %v", err)
	}
	if _, err := DecodeProfile("1,x", 2); !errors.Is(err, ErrConfig) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestEncodeDecodeDigest(t *testing.T) {
	src := prng.New(1)
	d, _ := commit.Commit(src, []byte("v"))
	got, err := DecodeDigest(EncodeDigest(d))
	if err != nil || got != d {
		t.Fatalf("digest round trip failed: %v", err)
	}
	if _, err := DecodeDigest("zz"); !errors.Is(err, ErrConfig) {
		t.Fatalf("short digest: %v", err)
	}
	bad := EncodeDigest(d)
	bad = "g" + bad[1:]
	if _, err := DecodeDigest(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad hex: %v", err)
	}
}

func TestEncodeDecodeOpening(t *testing.T) {
	src := prng.New(2)
	_, op := commit.Commit(src, []byte("payload"))
	got, err := DecodeOpening(EncodeOpening(op))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != "payload" || got.Nonce != op.Nonce {
		t.Fatal("opening round trip mismatch")
	}
	for _, bad := range []string{"", "a|b|c", "xx|yy", "ab|"} {
		if _, err := DecodeOpening(bad); err == nil {
			t.Fatalf("malformed opening %q accepted", bad)
		}
	}
}

func TestEncodeDecodeFoulSet(t *testing.T) {
	for _, ids := range [][]int{nil, {1}, {0, 2, 5}} {
		got, err := DecodeFoulSet(EncodeFoulSet(ids))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ids) {
			t.Fatalf("round trip %v → %v", ids, got)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("round trip %v → %v", ids, got)
			}
		}
	}
	if _, err := DecodeFoulSet("1;x"); !errors.Is(err, ErrConfig) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestQuickProfileCodecTotal(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make(game.Profile, len(raw))
		for i, r := range raw {
			p[i] = int(r)
		}
		got, err := DecodeProfile(EncodeProfile(p), len(p))
		return err == nil && got.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAgentStreamStateMatchesDerive pins the allocation-free commitment
// stream derivation to the original deriveAgentSource stream, seed for
// seed — the property the seeded-equivalence guarantees rest on.
func TestAgentStreamStateMatchesDerive(t *testing.T) {
	for _, seed := range []uint64{0, 7, 1 << 40} {
		for agent := 0; agent < 3; agent++ {
			for round := 0; round < 5; round++ {
				var src prng.Source
				src.Seed(agentStreamState(seed, agent, round))
				want := deriveAgentSource(seed, agent, round)
				for k := 0; k < 4; k++ {
					if got, exp := src.Uint64(), want.Uint64(); got != exp {
						t.Fatalf("seed=%d agent=%d round=%d draw %d: %#x != %#x",
							seed, agent, round, k, got, exp)
					}
				}
			}
		}
	}
}
