package core

import (
	"errors"
	"testing"

	"gameauthority/internal/audit"
	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

func TestSampledModeValidation(t *testing.T) {
	base := fig1Config(AuditSampled, 0, punish.NewDisconnect(2, 0), 1)
	if _, err := NewMixedSession(base); !errors.Is(err, ErrConfig) {
		t.Fatalf("SampleProb=0 accepted: %v", err)
	}
	base.SampleProb = 1.5
	if _, err := NewMixedSession(base); !errors.Is(err, ErrConfig) {
		t.Fatalf("SampleProb>1 accepted: %v", err)
	}
	base.SampleProb = 0.25
	if _, err := NewMixedSession(base); err != nil {
		t.Fatalf("valid sampled config rejected: %v", err)
	}
}

func TestStatisticalModeValidation(t *testing.T) {
	base := fig1Config(AuditStatistical, 0, punish.NewDisconnect(2, 0), 1)
	if _, err := NewMixedSession(base); !errors.Is(err, ErrConfig) {
		t.Fatalf("Window=0 accepted: %v", err)
	}
	base.Window = 50
	if _, err := NewMixedSession(base); !errors.Is(err, ErrConfig) {
		t.Fatalf("ChiThreshold=0 accepted: %v", err)
	}
	base.ChiThreshold = 6.6
	if _, err := NewMixedSession(base); err != nil {
		t.Fatalf("valid statistical config rejected: %v", err)
	}
}

func TestSampledModeEventuallyCatchesManipulator(t *testing.T) {
	// With p=0.2, the expected detection latency is 5 rounds; within 200
	// rounds detection is essentially certain.
	scheme := punish.NewDisconnect(2, 0)
	cfg := fig1Config(AuditSampled, 0, scheme, 7)
	cfg.SampleProb = 0.2
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caughtAt := -1
	for r := 1; r <= 200; r++ {
		if _, err := s.PlayRound(); err != nil {
			t.Fatal(err)
		}
		if s.Excluded(1) {
			caughtAt = r
			break
		}
	}
	if caughtAt < 0 {
		t.Fatal("sampled audit never caught the manipulator")
	}
	if caughtAt == 1 && s.Stats().Reveals == 0 {
		t.Fatal("exclusion without any audit")
	}
}

func TestSampledModeCheaperThanPerRound(t *testing.T) {
	const rounds = 200
	run := func(mode AuditMode, p float64) CostStats {
		cfg := fig1Config(mode, 0, punish.NewDisconnect(2, 0), 9)
		cfg.Agents = []*MixedAgent{nil, nil}
		cfg.Actual = nil
		cfg.SampleProb = p
		s, err := NewMixedSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Play(rounds); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	full := run(AuditPerRound, 0)
	sampled := run(AuditSampled, 0.1)
	if sampled.Agreements >= full.Agreements {
		t.Fatalf("sampled agreements %d not below per-round %d", sampled.Agreements, full.Agreements)
	}
	if sampled.Reveals >= full.Reveals/2 {
		t.Fatalf("sampled reveals %d not ≪ per-round %d", sampled.Reveals, full.Reveals)
	}
	// Commitments still happen every round (binding comes first).
	if sampled.Commitments != full.Commitments {
		t.Fatalf("sampled commitments %d != per-round %d", sampled.Commitments, full.Commitments)
	}
}

func TestSampledHonestNeverConvicted(t *testing.T) {
	cfg := fig1Config(AuditSampled, 0, punish.NewDisconnect(2, 0), 10)
	cfg.Agents = []*MixedAgent{nil, nil}
	cfg.Actual = nil
	cfg.SampleProb = 1.0 // audit every round
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(100); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Verdicts() {
		if len(v.Fouls) != 0 {
			t.Fatalf("honest agents convicted: %+v", v.Fouls)
		}
	}
}

func TestStatisticalModeCatchesBiasedPlayer(t *testing.T) {
	// Agent 1 declares uniform but always plays Heads — an off-
	// distribution deviation §5.2 worries about. The frequency screen
	// accumulates suspicion until the reputation scheme excludes it.
	scheme := punish.NewReputation(2, 0.5, 0.4, 0)
	cfg := fig1Config(AuditStatistical, 0, scheme, 11)
	cfg.Actual = nil
	cfg.Agents = []*MixedAgent{nil, {Override: func(int, int) int { return 0 }}}
	cfg.Window = 50
	cfg.ChiThreshold = 6.63 // χ²(1) at 1%
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(600); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatalf("biased player never excluded; standing %v", scheme.Standing(1))
	}
	// The honest agent survives.
	if s.Excluded(0) {
		t.Fatal("honest agent excluded by the statistical screen")
	}
	// And the fouls carry the right reason.
	foundSuspicious := false
	for _, v := range s.Verdicts() {
		for _, f := range v.Fouls {
			if f.Agent == 1 && f.Reason == audit.ReasonSuspiciousDistribution {
				foundSuspicious = true
			}
			if f.Agent == 0 {
				t.Fatalf("honest agent flagged: %+v", f)
			}
		}
	}
	if !foundSuspicious {
		t.Fatal("no suspicious-distribution foul recorded")
	}
}

func TestStatisticalModeFlagsIllegitimateInstantly(t *testing.T) {
	scheme := punish.NewDisconnect(2, 0)
	cfg := fig1Config(AuditStatistical, 0, scheme, 12)
	cfg.Window = 1000 // never reaches a frequency check
	cfg.ChiThreshold = 6.63
	s, err := NewMixedSession(cfg) // agent 1 plays ManipulateAction (out of Π)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlayRound(); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatal("illegitimate action not flagged instantly in statistical mode")
	}
}

func TestStatisticalHonestRarelyFlagged(t *testing.T) {
	scheme := punish.NewReputation(2, 0.5, 0.2, 0.01)
	cfg := fig1Config(AuditStatistical, 0, scheme, 13)
	cfg.Actual = nil
	cfg.Agents = []*MixedAgent{nil, nil}
	cfg.Window = 100
	cfg.ChiThreshold = 10.8 // χ²(1) at 0.1%
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(2000); err != nil {
		t.Fatal(err)
	}
	if s.Excluded(0) || s.Excluded(1) {
		t.Fatal("honest agents excluded by the screen at a 0.1% threshold")
	}
}

func TestExtendedModeStrings(t *testing.T) {
	if AuditSampled.String() != "sampled" {
		t.Fatalf("sampled name = %q", AuditSampled.String())
	}
	if AuditStatistical.String() != "statistical" {
		t.Fatalf("statistical name = %q", AuditStatistical.String())
	}
}

// fig1Config variants reuse mixed_test.go's helper; this test ensures the
// fields added for the new modes default correctly in old modes.
func TestLegacyModesIgnoreNewFields(t *testing.T) {
	cfg := fig1Config(AuditPerRound, 0, punish.NewDisconnect(2, 0), 14)
	cfg.SampleProb = 0.5 // ignored
	cfg.Window = 7       // ignored
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlayRound(); err != nil {
		t.Fatal(err)
	}
	_ = game.Profile{} // keep the import for clarity of evidence types
}
