package core

import (
	"context"
	"testing"

	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

// buildEquivSession constructs one distributed session with an
// equivocating network adversary on processor 3 and the given pulse
// engine width.
func buildEquivSession(t *testing.T, workers int) Session {
	t.Helper()
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	evil := prng.New(77)
	byz := map[int]sim.Adversary{3: sim.EquivocateAdversary(func(to int, payload any) any {
		msg, ok := payload.(*distMsg)
		if !ok {
			return payload
		}
		forged := *msg
		forged.Tick = int(evil.Uint64() % 18)
		if to%2 == 1 {
			forged.HasInner = false
			forged.Inner = nil
		}
		return &forged
	})}
	s, err := NewSession(SessionConfig{
		Game: g, Seed: 9, DistProcs: n, DistFaults: f, DistByz: byz,
		DistWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDistEngineEquivalence proves the worker-pool pulse engine replays
// the lockstep execution exactly through the full middleware stack:
// identical outcomes, pulses, verdicts, and traffic, play for play.
func TestDistEngineEquivalence(t *testing.T) {
	ctx := context.Background()
	const plays = 5
	lock := buildEquivSession(t, 1)
	pool := buildEquivSession(t, 4)
	defer pool.Close()
	for i := 0; i < plays; i++ {
		a, err := lock.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pool.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Outcome.Equal(b.Outcome) || a.Pulse != b.Pulse {
			t.Fatalf("play %d diverges: lockstep %v@%d, pool %v@%d",
				i, a.Outcome, a.Pulse, b.Outcome, b.Pulse)
		}
		if EncodeFoulSet(a.Convicted) != EncodeFoulSet(b.Convicted) {
			t.Fatalf("play %d verdicts diverge: %v vs %v", i, a.Convicted, b.Convicted)
		}
	}
	sa, sb := lock.Stats(), pool.Stats()
	if sa.Pulses != sb.Pulses || sa.Messages != sb.Messages {
		t.Fatalf("traffic diverges: lockstep %d pulses/%d msgs, pool %d pulses/%d msgs",
			sa.Pulses, sa.Messages, sb.Pulses, sb.Messages)
	}
}

// TestDistEngineEquivalenceUnderCorruption repeats the equivalence check
// across a transient fault injected into both executions at the same
// point, covering the §4 recovery path on the pool engine.
func TestDistEngineEquivalenceUnderCorruption(t *testing.T) {
	ctx := context.Background()
	lock := buildEquivSession(t, 1)
	pool := buildEquivSession(t, 3)
	defer pool.Close()
	play := func(s Session) RoundResult {
		t.Helper()
		r, err := s.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for i := 0; i < 2; i++ {
		play(lock)
		play(pool)
	}
	// Identical corruption entropy on both networks.
	AsDist := func(s Session) *DistSession {
		d, ok := s.(interface{ Dist() *DistSession })
		if !ok {
			t.Fatal("not a distributed session")
		}
		return d.Dist()
	}
	entA, entB := prng.New(1234), prng.New(1234)
	AsDist(lock).Net.Corrupt(entA.Uint64)
	AsDist(pool).Net.Corrupt(entB.Uint64)
	for i := 0; i < 3; i++ {
		a, b := play(lock), play(pool)
		if !a.Outcome.Equal(b.Outcome) || a.Pulse != b.Pulse {
			t.Fatalf("post-fault play %d diverges: %v@%d vs %v@%d",
				i, a.Outcome, a.Pulse, b.Outcome, b.Pulse)
		}
	}
}
