package core

import (
	"gameauthority/internal/audit"
	"gameauthority/internal/game"
)

// historyRing stores a session's completed plays. Unbounded (limit 0) it
// grows like the plain slice it replaces; bounded it becomes a ring that
// evicts the oldest play and reuses the evicted slot's slice capacity, so
// long sessions stop growing and recording a play stops allocating once
// the ring is warm.
//
// Slots are reused in place: a RoundResult obtained through slot() or at()
// aliases ring memory and is overwritten when its round is evicted.
// External callers always receive views (empty slices normalized to nil)
// or deep clones — see view, cloneResult, and snapshot.
type historyRing struct {
	limit int // 0 = unbounded
	buf   []RoundResult
	start int // index of the oldest retained play (bounded + full)
	total int // plays ever recorded
}

// setLimit configures the bound; it must be called before the first record.
func (r *historyRing) setLimit(limit int) { r.limit = limit }

// retained returns how many plays the ring currently holds.
func (r *historyRing) retained() int { return len(r.buf) }

// recorded returns how many plays were ever recorded.
func (r *historyRing) recorded() int { return r.total }

// firstRetained returns the absolute round index of the oldest retained
// play.
func (r *historyRing) firstRetained() int { return r.total - len(r.buf) }

// slot returns the slot the next play must be recorded into, evicting the
// oldest retained play when the ring is bounded and full. The caller fills
// the slot by appending into its existing slices ([:0]) so warm bounded
// rings record without allocating.
func (r *historyRing) slot() *RoundResult {
	r.total++
	if r.limit > 0 && len(r.buf) == r.limit {
		s := &r.buf[r.start]
		r.start = (r.start + 1) % r.limit
		return s
	}
	r.buf = append(r.buf, RoundResult{})
	return &r.buf[len(r.buf)-1]
}

// at returns the retained play with the absolute round index round, or
// false when it was evicted or not yet played.
func (r *historyRing) at(round int) (*RoundResult, bool) {
	first := r.firstRetained()
	if round < first || round >= r.total {
		return nil, false
	}
	idx := round - first
	if r.limit > 0 && len(r.buf) == r.limit {
		idx = (r.start + idx) % r.limit
	}
	return &r.buf[idx], true
}

// snapshot deep-clones the retained plays, oldest first. The clones share
// no memory with the ring, so callers may hold them across evictions.
func (r *historyRing) snapshot() []RoundResult {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]RoundResult, len(r.buf))
	first := r.firstRetained()
	for i := range out {
		s, _ := r.at(first + i)
		out[i] = cloneResult(s)
	}
	return out
}

// view returns a by-value copy of the slot with empty slices normalized to
// nil, matching the shapes the pre-ring implementation produced. The view
// still aliases the slot's non-empty slices; it is valid until the slot's
// round is evicted.
func view(s *RoundResult) RoundResult {
	res := *s
	if len(res.Verdict.Fouls) == 0 {
		res.Verdict.Fouls = nil
	}
	if len(res.Convicted) == 0 {
		res.Convicted = nil
	}
	if len(res.Excluded) == 0 {
		res.Excluded = nil
	}
	if len(res.Costs) == 0 {
		res.Costs = nil
	}
	if len(res.Outcome) == 0 {
		res.Outcome = nil
	}
	return res
}

// cloneResult deep-clones a slot into an independent RoundResult.
func cloneResult(s *RoundResult) RoundResult {
	res := *s
	res.Outcome = cloneProfile(s.Outcome)
	res.Verdict = audit.Verdict{Fouls: cloneFouls(s.Verdict.Fouls)}
	res.Convicted = cloneInts(s.Convicted)
	res.Excluded = cloneInts(s.Excluded)
	res.Costs = cloneFloats(s.Costs)
	return res
}

func cloneProfile(p game.Profile) game.Profile {
	if len(p) == 0 {
		return nil
	}
	return append(game.Profile(nil), p...)
}

func cloneInts(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	return append([]int(nil), s...)
}

func cloneFloats(s []float64) []float64 {
	if len(s) == 0 {
		return nil
	}
	return append([]float64(nil), s...)
}

func cloneFouls(s []audit.Foul) []audit.Foul {
	if len(s) == 0 {
		return nil
	}
	return append([]audit.Foul(nil), s...)
}

// record fills a ring slot from a finished result, reusing the slot's
// slice capacities, and returns a view of the stored play.
func (r *historyRing) record(res *RoundResult) RoundResult {
	s := r.slot()
	s.Round = res.Round
	s.Pulse = res.Pulse
	s.Outcome = append(s.Outcome[:0], res.Outcome...)
	s.Verdict.Fouls = append(s.Verdict.Fouls[:0], res.Verdict.Fouls...)
	s.Convicted = append(s.Convicted[:0], res.Convicted...)
	s.Excluded = append(s.Excluded[:0], res.Excluded...)
	s.Costs = append(s.Costs[:0], res.Costs...)
	return view(s)
}
