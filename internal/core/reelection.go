package core

import (
	"fmt"

	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

// The §3.1 design extension: "a possible design extension can follow the
// agents' changing preferences and repeatedly reelect the system's game."
// A ReelectionSeries runs one robust election per legislative term; a
// TermDriver then plays each elected game for the term's duration with
// honest best-response agents, accumulating per-term social costs so the
// society can see what its (changing) choices cost it.

// ReelectionConfig configures a repeated legislative process.
type ReelectionConfig struct {
	// Candidates are the games on the ballot (stable across terms).
	Candidates []Candidate
	// Voters is the electorate size.
	Voters int
	// Prefs returns voter v's ranking (most preferred first) in the given
	// term — preferences may drift between terms.
	Prefs func(term, voter int) []int
	// TermLength is the number of plays per legislative term.
	TermLength int
	// Seed drives ballots' commitment randomness and term play.
	Seed uint64
}

// TermResult records one legislative term.
type TermResult struct {
	Term       int
	Election   ElectionOutcome
	SocialCost float64 // total social cost of the term's plays
}

// validate checks the configuration.
func (cfg ReelectionConfig) validate() error {
	if len(cfg.Candidates) == 0 {
		return fmt.Errorf("%w: no candidates", ErrConfig)
	}
	if cfg.Voters < 1 {
		return fmt.Errorf("%w: no voters", ErrConfig)
	}
	if cfg.Prefs == nil {
		return fmt.Errorf("%w: nil preference function", ErrConfig)
	}
	if cfg.TermLength < 1 {
		return fmt.Errorf("%w: term length %d", ErrConfig, cfg.TermLength)
	}
	return nil
}

// ReelectionSeries runs `terms` robust elections with drifting preferences
// and returns each term's outcome.
func ReelectionSeries(cfg ReelectionConfig, terms int) ([]ElectionOutcome, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := make([]ElectionOutcome, 0, terms)
	for term := 0; term < terms; term++ {
		voters := make([]Voter, cfg.Voters)
		for v := range voters {
			voters[v] = Voter{Prefs: cfg.Prefs(term, v)}
		}
		res, err := RobustElection(cfg.Candidates, voters, cfg.Seed+uint64(term))
		if err != nil {
			return nil, fmt.Errorf("core: term %d election: %w", term, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// PlayTerms runs the full legislate-then-play loop: each term elects a game
// and plays it for TermLength supervised rounds with honest best-response
// agents, reporting the social cost of every term. It demonstrates the
// §3.1 extension end to end.
func PlayTerms(cfg ReelectionConfig, terms int) ([]TermResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	results := make([]TermResult, 0, terms)
	for term := 0; term < terms; term++ {
		voters := make([]Voter, cfg.Voters)
		for v := range voters {
			voters[v] = Voter{Prefs: cfg.Prefs(term, v)}
		}
		election, err := RobustElection(cfg.Candidates, voters, cfg.Seed+uint64(term))
		if err != nil {
			return nil, fmt.Errorf("core: term %d election: %w", term, err)
		}
		g := cfg.Candidates[election.Winner].Game
		agents := make([]*Agent, g.NumPlayers())
		for i := range agents {
			agents[i] = HonestPure(g, i)
		}
		session, err := NewPureSession(g, agents, punish.NewDisconnect(g.NumPlayers(), 0), cfg.Seed+uint64(1000+term))
		if err != nil {
			return nil, fmt.Errorf("core: term %d session: %w", term, err)
		}
		var total float64
		for round := 0; round < cfg.TermLength; round++ {
			res, err := session.PlayRound()
			if err != nil {
				return nil, fmt.Errorf("core: term %d round %d: %w", term, round, err)
			}
			total += game.SocialCost(g, res.Outcome, nil)
		}
		results = append(results, TermResult{Term: term, Election: election, SocialCost: total})
	}
	return results, nil
}
