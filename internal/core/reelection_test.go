package core

import (
	"errors"
	"testing"

	"gameauthority/internal/game"
)

func driftingPrefs(term, voter int) []int {
	// Terms 0-1: everyone prefers candidate 0; from term 2 the majority
	// drifts to candidate 1.
	if term < 2 || voter == 0 {
		return []int{0, 1}
	}
	return []int{1, 0}
}

func twoCandidates() []Candidate {
	return []Candidate{
		{Game: game.PrisonersDilemma(), Description: "pd"},
		{Game: game.CoordinationGame(), Description: "coord"},
	}
}

func TestReelectionSeriesFollowsPreferences(t *testing.T) {
	cfg := ReelectionConfig{
		Candidates: twoCandidates(),
		Voters:     5,
		Prefs:      driftingPrefs,
		TermLength: 3,
		Seed:       1,
	}
	outcomes, err := ReelectionSeries(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for term, out := range outcomes {
		if out.Winner != want[term] {
			t.Fatalf("term %d winner = %d, want %d", term, out.Winner, want[term])
		}
	}
}

func TestPlayTermsAccumulatesCosts(t *testing.T) {
	cfg := ReelectionConfig{
		Candidates: twoCandidates(),
		Voters:     5,
		Prefs:      driftingPrefs,
		TermLength: 5,
		Seed:       2,
	}
	results, err := PlayTerms(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("terms = %d", len(results))
	}
	for _, r := range results {
		if r.SocialCost <= 0 {
			t.Fatalf("term %d social cost = %v", r.Term, r.SocialCost)
		}
	}
	// The electorate's drift away from the prisoner's dilemma (whose
	// equilibrium is costly) should lower the per-term social cost:
	// coordination converges to the cheap (L,L) equilibrium.
	if !(results[3].SocialCost < results[0].SocialCost) {
		t.Fatalf("reelection did not lower social cost: term0=%v term3=%v",
			results[0].SocialCost, results[3].SocialCost)
	}
}

func TestReelectionValidation(t *testing.T) {
	good := ReelectionConfig{
		Candidates: twoCandidates(), Voters: 3,
		Prefs: driftingPrefs, TermLength: 1, Seed: 1,
	}
	cases := []struct {
		name   string
		mutate func(*ReelectionConfig)
	}{
		{"no candidates", func(c *ReelectionConfig) { c.Candidates = nil }},
		{"no voters", func(c *ReelectionConfig) { c.Voters = 0 }},
		{"nil prefs", func(c *ReelectionConfig) { c.Prefs = nil }},
		{"zero term", func(c *ReelectionConfig) { c.TermLength = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if _, err := ReelectionSeries(cfg, 1); !errors.Is(err, ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
			if _, err := PlayTerms(cfg, 1); !errors.Is(err, ErrConfig) {
				t.Fatalf("PlayTerms err = %v, want ErrConfig", err)
			}
		})
	}
}
