package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"

	"gameauthority/internal/audit"
	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

// snapshotConfigs builds one SessionConfig per driver (fresh on every
// call, so schemes and deviants never leak between twin sessions).
func snapshotConfigs(t *testing.T) map[string]func() SessionConfig {
	t.Helper()
	pg, err := game.PublicGoods(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	uniform := func(g game.Game) func(int, game.Profile) game.MixedProfile {
		mp := make(game.MixedProfile, g.NumPlayers())
		for i := range mp {
			mp[i] = game.Uniform(g.NumActions(i))
		}
		return func(int, game.Profile) game.MixedProfile { return mp }
	}
	return map[string]func() SessionConfig{
		"pure": func() SessionConfig {
			return SessionConfig{
				Game:   game.PrisonersDilemma(),
				Seed:   11,
				Scheme: punish.NewDisconnect(2, 0),
			}
		},
		"pure-bounded": func() SessionConfig {
			return SessionConfig{
				Game:         game.PrisonersDilemma(),
				Seed:         11,
				Scheme:       punish.NewDisconnect(2, 0),
				HistoryLimit: 3,
			}
		},
		"mixed": func() SessionConfig {
			g := game.MatchingPennies()
			return SessionConfig{
				Game:       g,
				Seed:       7,
				Strategies: uniform(g),
				Scheme:     punish.NewDisconnect(2, 0),
			}
		},
		"rra": func() SessionConfig {
			return SessionConfig{
				Seed:         5,
				RRAAgents:    6,
				RRAResources: 3,
				Scheme:       punish.NewDisconnect(6, 0),
			}
		},
		"distributed": func() SessionConfig {
			return SessionConfig{
				Game:        pg,
				Seed:        3,
				DistProcs:   4,
				DistFaults:  1,
				DistWorkers: 1,
			}
		},
	}
}

// TestSnapshotRestoreByteIdentical: for every driver, Snapshot → Restore →
// Play^k must equal uninterrupted Play^(j+k), transcript line for
// transcript line and digest for digest.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	ctx := context.Background()
	const j, k = 4, 3
	for name, build := range snapshotConfigs(t) {
		t.Run(name, func(t *testing.T) {
			orig, err := NewSession(build())
			if err != nil {
				t.Fatal(err)
			}
			defer orig.Close()
			hashes := make(map[int]string)
			for i := 0; i < j; i++ {
				res, err := orig.Play(ctx)
				if err != nil {
					t.Fatal(err)
				}
				hashes[res.Round] = HashResult(res)
			}
			snap := orig.Snapshot()
			if snap.Rounds != j {
				t.Fatalf("snapshot rounds %d, want %d", snap.Rounds, j)
			}

			restored, err := Restore(ctx, build(), RestoreTarget{
				Rounds: snap.Rounds,
				Digest: snap.Digest,
				Hashes: hashes,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if got := restored.Snapshot(); got.Digest != snap.Digest {
				t.Fatalf("restored digest %s, want %s", got.Digest, snap.Digest)
			}

			// The futures must coincide play-for-play.
			for i := 0; i < k; i++ {
				want, err := orig.Play(ctx)
				if err != nil {
					t.Fatal(err)
				}
				got, err := restored.Play(ctx)
				if err != nil {
					t.Fatal(err)
				}
				wl := string(appendResultLine(nil, &want))
				gl := string(appendResultLine(nil, &got))
				if wl != gl {
					t.Fatalf("future play %d diverged:\n original: %s restored: %s", i, wl, gl)
				}
			}
			if w, g := orig.Snapshot().Digest, restored.Snapshot().Digest; w != g {
				t.Fatalf("final digests diverged: %s vs %s", w, g)
			}
		})
	}
}

// TestSnapshotZeroRounds: a never-played session snapshots and restores.
func TestSnapshotZeroRounds(t *testing.T) {
	ctx := context.Background()
	for name, build := range snapshotConfigs(t) {
		t.Run(name, func(t *testing.T) {
			s, err := NewSession(build())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			snap := s.Snapshot()
			if snap.Rounds != 0 {
				t.Fatalf("rounds %d, want 0", snap.Rounds)
			}
			restored, err := Restore(ctx, build(), RestoreTarget{Digest: snap.Digest})
			if err != nil {
				t.Fatal(err)
			}
			restored.Close()
		})
	}
}

// TestRestoreClosed: restoring a closed session reproduces close-time
// state (the batched-audit trailing epoch) and leaves the session closed.
func TestRestoreClosed(t *testing.T) {
	ctx := context.Background()
	g := game.MatchingPennies()
	build := func() SessionConfig {
		mp := game.MixedProfile{game.Uniform(2), game.Uniform(2)}
		return SessionConfig{
			Game:        g,
			Seed:        9,
			Strategies:  func(int, game.Profile) game.MixedProfile { return mp },
			MixedAgents: []*MixedAgent{{Withhold: func(int) bool { return true }}, nil},
			Scheme:      punish.NewDisconnect(2, 0),
			Mode:        AuditBatched,
			EpochLen:    8,
		}
	}
	orig, err := NewSession(build())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // partial epoch: 3 of 8
		if _, err := orig.Play(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.Close(); err != nil {
		t.Fatal(err)
	}
	snap := orig.Snapshot()
	if !snap.Closed || snap.Fouls == 0 {
		t.Fatalf("close-time snapshot missing trailing-epoch audit: %+v", snap)
	}
	restored, err := Restore(ctx, build(), RestoreTarget{
		Rounds: snap.Rounds,
		Closed: true,
		Digest: snap.Digest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Play(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("restored-closed session still plays: %v", err)
	}
	if got := restored.Snapshot(); !got.Closed || got.Fouls != snap.Fouls {
		t.Fatalf("restored close state %+v, want %+v", got, snap)
	}
}

// TestRestoreDetectsDivergence: a wrong seed must fail both the play-hash
// check and the digest check with ErrRestore.
func TestRestoreDetectsDivergence(t *testing.T) {
	ctx := context.Background()
	build := snapshotConfigs(t)["rra"]
	orig, err := NewSession(build())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	hashes := make(map[int]string)
	for i := 0; i < 4; i++ {
		res, err := orig.Play(ctx)
		if err != nil {
			t.Fatal(err)
		}
		hashes[res.Round] = HashResult(res)
	}
	snap := orig.Snapshot()

	wrong := build()
	wrong.Seed++
	if _, err := Restore(ctx, wrong, RestoreTarget{Rounds: snap.Rounds, Hashes: hashes}); !errors.Is(err, ErrRestore) {
		t.Fatalf("hash check: err = %v, want ErrRestore", err)
	}
	if _, err := Restore(ctx, wrong, RestoreTarget{Rounds: snap.Rounds, Digest: snap.Digest}); !errors.Is(err, ErrRestore) {
		t.Fatalf("digest check: err = %v, want ErrRestore", err)
	}
}

// TestSnapshotMidPunishment: snapshot taken while an agent is excluded
// restores the punishment-scheme state (no crash amnesty).
func TestSnapshotMidPunishment(t *testing.T) {
	ctx := context.Background()
	build := func() SessionConfig {
		return SessionConfig{
			Game: game.PrisonersDilemma(),
			Seed: 2,
			Agents: []*Agent{
				{Choose: func(int, game.Profile) int { return 0 }, Withhold: func(round int) bool { return round == 1 }},
				nil,
			},
			Scheme: punish.NewDisconnect(2, 0),
		}
	}
	orig, err := NewSession(build())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for i := 0; i < 3; i++ {
		if _, err := orig.Play(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap := orig.Snapshot()
	if snap.Convictions == 0 || !snap.Excluded[0] {
		t.Fatalf("withholding agent not excluded at snapshot: %+v", snap)
	}
	restored, err := Restore(ctx, build(), RestoreTarget{Rounds: snap.Rounds, Digest: snap.Digest})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	st := restored.Stats()
	if !st.Excluded[0] || st.Convictions != snap.Convictions {
		t.Fatalf("crash amnesty: restored exclusion state %+v, snapshot %+v", st, snap)
	}
}

// TestHashResultStable pins that the canonical line renders nil and empty
// slices identically (ring slots reuse capacity; fresh results are nil).
func TestHashResultStable(t *testing.T) {
	a := RoundResult{Round: 1, Outcome: game.Profile{1, 0}, Costs: []float64{1, 2}}
	b := RoundResult{Round: 1, Outcome: game.Profile{1, 0}, Costs: []float64{1, 2},
		Convicted: []int{}, Excluded: []int{}}
	if HashResult(a) != HashResult(b) {
		t.Fatalf("nil/empty slice shapes hash differently:\n%s\n%s",
			appendResultLine(nil, &a), appendResultLine(nil, &b))
	}
	c := a
	c.Costs = []float64{1, 3}
	if HashResult(a) == HashResult(c) {
		t.Fatal("cost change did not change the hash")
	}
}

// TestResultLineCanonicalShape pins the transcript line's byte shape to
// the fmt rendering it originally used. Digests persisted in snapshots on
// disk were computed over these bytes, so any drift here silently breaks
// recovery of existing stores.
func TestResultLineCanonicalShape(t *testing.T) {
	cases := []RoundResult{
		{},
		{Round: 7, Outcome: game.Profile{1, 0, 2}, Costs: []float64{1.5, -0.25, 3}},
		{Round: 42, Outcome: game.Profile{0, 1}, Convicted: []int{1}, Excluded: []int{0, 1},
			Pulse: 9, Costs: []float64{0.1, 2e-8},
			Verdict: audit.Verdict{Fouls: []audit.Foul{
				{Agent: 1, Reason: audit.ReasonCommitMismatch},
				{Agent: 0, Reason: audit.Reason(99)},
			}}},
	}
	for _, res := range cases {
		want := fmt.Sprintf("round=%d outcome=%v convicted=%v excluded=%v pulse=%d costs=[",
			res.Round, res.Outcome, res.Convicted, res.Excluded, res.Pulse)
		for i, c := range res.Costs {
			if i > 0 {
				want += " "
			}
			want += strconv.FormatFloat(c, 'g', -1, 64)
		}
		want += "] fouls=["
		for i, f := range res.Verdict.Fouls {
			if i > 0 {
				want += " "
			}
			want += fmt.Sprintf("%d:%s", f.Agent, f.Reason)
		}
		want += "]\n"
		if got := string(appendResultLine(nil, &res)); got != want {
			t.Fatalf("canonical line drifted:\n got: %q\nwant: %q", got, want)
		}
	}
}

// TestRestoreRejectsNegativeTarget pins input validation.
func TestRestoreRejectsNegativeTarget(t *testing.T) {
	_, err := Restore(context.Background(), SessionConfig{Game: game.PrisonersDilemma()},
		RestoreTarget{Rounds: -1})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

// TestSnapshotDigestCoversHistory: two sessions with equal counters but
// different retained plays must digest differently.
func TestSnapshotDigestCoversHistory(t *testing.T) {
	ctx := context.Background()
	mk := func(seed uint64) Session {
		s, err := NewSession(SessionConfig{Game: game.MatchingPennies(), Seed: seed,
			Strategies: func(int, game.Profile) game.MixedProfile {
				return game.MixedProfile{game.Uniform(2), game.Uniform(2)}
			}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(1), mk(2)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 4; i++ {
		if _, err := a.Play(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Play(ctx); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Rounds != sb.Rounds {
		t.Fatalf("rounds %d vs %d", sa.Rounds, sb.Rounds)
	}
	if sa.Digest == sb.Digest {
		// Sanity: outcome sequences of different seeds should differ.
		t.Fatalf("different seeds digested identically: %s", sa.Digest)
	}
}

// TestSnapshotBoundedRingEviction: the digest covers only retained plays,
// so a bounded twin restored from a snapshot past eviction still matches.
func TestSnapshotBoundedRingEviction(t *testing.T) {
	ctx := context.Background()
	build := snapshotConfigs(t)["pure-bounded"]
	orig, err := NewSession(build())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for i := 0; i < 10; i++ { // well past the limit of 3
		if _, err := orig.Play(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap := orig.Snapshot()
	if len(orig.Results()) != 3 {
		t.Fatalf("ring retained %d, want 3", len(orig.Results()))
	}
	restored, err := Restore(ctx, build(), RestoreTarget{Rounds: snap.Rounds, Digest: snap.Digest})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	want := fmt.Sprintf("%v", orig.Results())
	got := fmt.Sprintf("%v", restored.Results())
	if want != got {
		t.Fatalf("retained rings diverged:\n%s\n%s", want, got)
	}
}
