package core

import (
	"errors"
	"testing"

	"gameauthority/internal/game"
	"gameauthority/internal/metrics"
	"gameauthority/internal/punish"
)

func TestNewRRASupervisedValidation(t *testing.T) {
	if _, err := NewRRASupervised(4, 2, 1, nil, true); !errors.Is(err, ErrConfig) {
		t.Fatalf("supervision without scheme: %v", err)
	}
	if _, err := NewRRASupervised(0, 2, 1, nil, false); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad n: %v", err)
	}
	if _, err := NewRRASupervised(4, 2, 1, punish.NewDisconnect(4, 0), true); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRRASupervisedHonestNoFouls(t *testing.T) {
	h, err := NewRRASupervised(6, 3, 11, punish.NewDisconnect(6, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Play(300); err != nil {
		t.Fatal(err)
	}
	if fouls := h.Fouls(); len(fouls) != 0 {
		t.Fatalf("honest RRA produced fouls: %+v", fouls[:1])
	}
	// Theorem 5 shape: ratio near 1 by k=300.
	r, err := metrics.MultiRoundAnarchyCost(float64(h.RRA().MaxLoad()), game.OptMaxLoad(6, 3, 300))
	if err != nil {
		t.Fatal(err)
	}
	if bound := metrics.Theorem5Bound(3, 300) + 0.05; r > bound {
		t.Fatalf("R(300) = %v exceeds bound %v", r, bound)
	}
}

func TestRRASupervisedCatchesHog(t *testing.T) {
	h, err := NewRRASupervised(4, 4, 12, punish.NewDisconnect(4, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	h.SetByzantine(0, game.HogChooser())
	if err := h.Play(50); err != nil {
		t.Fatal(err)
	}
	if !h.Excluded(0) {
		t.Fatal("hog never excluded")
	}
	fouls := h.Fouls()
	if len(fouls) == 0 || fouls[0].Agent != 0 {
		t.Fatalf("fouls = %+v", fouls)
	}
	// After exclusion the executive plays for the hog: spread returns to
	// the Lemma 6 regime.
	if err := h.Play(300); err != nil {
		t.Fatal(err)
	}
	if got, bound := h.RRA().Spread(), int64(2*4-1)+1; got > bound {
		t.Fatalf("post-exclusion spread %d exceeds %d", got, bound)
	}
}

func TestRRAUnsupervisedHogInflatesAnarchyCost(t *testing.T) {
	// The bin-camping attack only bites when b > n: with spare bins the
	// optimum max load nk/b falls below the camper's bin growth (1 per
	// round), so M(k) ≈ k ≈ (b/n)·OPT. With b ≤ n honest water-filling
	// absorbs the imbalance entirely — which the supervised case also
	// demonstrates.
	const (
		n = 4
		b = 8
		k = 400
	)
	run := func(supervise bool) float64 {
		var scheme punish.Scheme
		if supervise {
			scheme = punish.NewDisconnect(n, 0)
		}
		h, err := NewRRASupervised(n, b, 13, scheme, supervise)
		if err != nil {
			t.Fatal(err)
		}
		h.SetByzantine(0, game.FixedChooser(0))
		if err := h.Play(k); err != nil {
			t.Fatal(err)
		}
		r, err := metrics.MultiRoundAnarchyCost(float64(h.RRA().MaxLoad()), game.OptMaxLoad(n, b, k))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unsupervised := run(false)
	supervised := run(true)
	// Unsupervised: the camper owns bin 0 (k demands) while OPT is nk/b =
	// k/2, so R ≈ 2.
	if unsupervised < 1.5 {
		t.Fatalf("unsupervised R(k) = %v, expected ≈ 2 under camping", unsupervised)
	}
	if supervised >= unsupervised {
		t.Fatalf("supervision did not reduce anarchy cost: %v vs %v", supervised, unsupervised)
	}
	if supervised > metrics.Theorem5Bound(b, k)+0.1 {
		t.Fatalf("supervised R(k) = %v above Theorem 5 bound %v", supervised, metrics.Theorem5Bound(b, k))
	}
}

func TestRRAByzantineAccidentallyHonestNotPunished(t *testing.T) {
	// A "Byzantine" whose choices happen to match its committed stream is
	// indistinguishable from honest and must not be punished (the audit
	// judges actions, not identities).
	h, err := NewRRASupervised(3, 2, 14, punish.NewDisconnect(3, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the honest computation exactly.
	h.SetByzantine(2, func(agent int, loads []int64) int {
		a, err := h.ExpectedChoice(agent)
		if err != nil {
			return 0
		}
		return a
	})
	if err := h.Play(100); err != nil {
		t.Fatal(err)
	}
	if h.Excluded(2) {
		t.Fatal("stream-faithful agent was punished")
	}
}
