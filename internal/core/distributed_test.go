package core

import (
	"testing"

	"gameauthority/internal/bap"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestDistSessionAllHonest(t *testing.T) {
	// Four processors play prisoners' dilemma under the distributed
	// authority. All honest: outcomes must be identical at every honest
	// processor, every play legitimate, nobody convicted.
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	s, err := NewDistSession(n, f, g, make([]*Agent, n), 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(6)
	if err := s.ConsistentResults(5); err != nil {
		t.Fatal(err)
	}
	res := s.Procs[0].Results()
	if len(res) < 5 {
		t.Fatalf("only %d plays completed", len(res))
	}
	for _, r := range res {
		if err := game.ValidateProfile(g, r.Outcome); err != nil {
			t.Fatalf("outcome %v invalid: %v", r.Outcome, err)
		}
		if len(r.Guilty) != 0 {
			t.Fatalf("honest play convicted %v", r.Guilty)
		}
	}
}

// nPlayerPD is an n-player prisoners-dilemma-like game: action 1 (defect)
// dominates, and the all-defect profile is the unique PNE. Used because the
// distributed driver needs one player per processor.
type nPlayerPD struct{ n int }

var _ game.Game = (*nPlayerPD)(nil)

func (g *nPlayerPD) NumPlayers() int    { return g.n }
func (g *nPlayerPD) NumActions(int) int { return 2 }
func (g *nPlayerPD) Cost(i int, p game.Profile) float64 {
	cooperators := 0
	for _, a := range p {
		if a == 0 {
			cooperators++
		}
	}
	// Cooperating costs 2 extra; every cooperator lowers everyone's base
	// cost by 1.
	base := float64(g.n - cooperators)
	if p[i] == 0 {
		return base + 2
	}
	return base
}

func TestDistSessionConvictsIllegitimateAction(t *testing.T) {
	// Processor 2 plays action 7 (outside Π). All honest processors must
	// agree on the conviction and publish a legitimate outcome.
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	behaviors := make([]*Agent, n)
	behaviors[2] = &Agent{Choose: func(int, game.Profile) int { return 7 }}
	byz := map[int]sim.Adversary{2: sim.PassthroughAdversary()} // behavioural cheat only
	s, err := NewDistSession(n, f, g, behaviors, 22, byz)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(3)
	if err := s.ConsistentResults(3); err != nil {
		t.Fatal(err)
	}
	res := s.Procs[0].Results()
	if len(res) == 0 {
		t.Fatal("no plays completed")
	}
	first := res[0]
	if len(first.Guilty) != 1 || first.Guilty[0] != 2 {
		t.Fatalf("guilty = %v, want [2]", first.Guilty)
	}
	if err := game.ValidateProfile(g, first.Outcome); err != nil {
		t.Fatalf("published outcome invalid: %v", err)
	}
	// The conviction excluded processor 2 on every honest replica.
	for _, id := range s.Honest {
		if !s.Procs[id].Excluded(2) {
			t.Fatalf("proc %d's executive replica did not exclude 2", id)
		}
	}
}

func TestDistSessionWithholdingConvicted(t *testing.T) {
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	behaviors := make([]*Agent, n)
	behaviors[1] = &Agent{
		Choose:   func(int, game.Profile) int { return 1 },
		Withhold: func(int) bool { return true },
	}
	byz := map[int]sim.Adversary{1: sim.PassthroughAdversary()}
	s, err := NewDistSession(n, f, g, behaviors, 23, byz)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(2)
	if err := s.ConsistentResults(2); err != nil {
		t.Fatal(err)
	}
	res := s.Procs[0].Results()
	if len(res) == 0 || len(res[0].Guilty) != 1 || res[0].Guilty[0] != 1 {
		t.Fatalf("results = %+v, want conviction of 1", res)
	}
}

func TestDistSessionEquivocatingNetworkAdversary(t *testing.T) {
	// Processor 3 equivocates at the network level (different clock values
	// and inner payload dropped per destination). Honest processors must
	// still produce identical play records.
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	evil := prng.New(5)
	byz := map[int]sim.Adversary{3: sim.EquivocateAdversary(func(to int, payload any) any {
		msg, ok := payload.(*distMsg)
		if !ok {
			return payload
		}
		forged := *msg // copy: the original is slab-backed sender state
		forged.Tick = int(evil.Uint64() % 18)
		if to%2 == 0 {
			forged.HasInner = false
			forged.Inner = nil
		}
		return &forged
	})}
	s, err := NewDistSession(n, f, g, make([]*Agent, n), 24, byz)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(6)
	if err := s.ConsistentResults(4); err != nil {
		t.Fatal(err)
	}
	if len(s.Procs[0].Results()) < 3 {
		t.Fatalf("too few plays under equivocation: %d", len(s.Procs[0].Results()))
	}
}

func TestDistSessionSelfStabilizes(t *testing.T) {
	// Corrupt every processor's full state mid-run; the clock re-converges
	// and plays resume with consistent results (self(ish)-stabilization).
	n, f := 4, 1
	g := &nPlayerPD{n: n}
	s, err := NewDistSession(n, f, g, make([]*Agent, n), 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.RunPlays(3)
	ent := prng.New(77)
	s.Net.Corrupt(ent.Uint64)
	// Allow generous pulses for clock reconvergence plus several plays.
	s.Net.Run(40 * PulsesPerPlay(f))
	if err := s.ConsistentResults(3); err != nil {
		t.Fatalf("post-corruption divergence: %v", err)
	}
	minPlays := len(s.Procs[s.Honest[0]].Results())
	if minPlays < 2 {
		t.Fatalf("system did not resume playing after corruption: %d plays", minPlays)
	}
	for _, r := range tail(s.Procs[s.Honest[0]].Results(), 2) {
		if err := game.ValidateProfile(g, r.Outcome); err != nil {
			t.Fatalf("post-recovery outcome invalid: %v", err)
		}
	}
}

func TestDistModulusAndPulses(t *testing.T) {
	if DistModulus(1) <= 4 {
		t.Fatal("modulus too small")
	}
	if PulsesPerPlay(1) != DistModulus(1) {
		t.Fatal("pulses per play must equal the clock modulus")
	}
}

func TestNewDistProcessorValidation(t *testing.T) {
	g := &nPlayerPD{n: 4}
	if _, err := NewDistProcessor(0, 4, 1, nil, HonestPure(g, 0), nil, 1); err == nil {
		t.Fatal("nil game accepted")
	}
	if _, err := NewDistProcessor(0, 4, 1, g, &Agent{}, nil, 1); err == nil {
		t.Fatal("behaviour without Choose accepted")
	}
	if _, err := NewDistProcessor(0, 5, 1, g, HonestPure(g, 0), nil, 1); err == nil {
		t.Fatal("player-count mismatch accepted")
	}
}

func TestMajorityValueDeterminism(t *testing.T) {
	v := majorityValue([]bap.Value{"b", "a", "b", "a"})
	if v != "a" {
		t.Fatalf("tie should break lexicographically: got %q", v)
	}
	if got, count := majorityWithCount([]bap.Value{"x", "x", "y"}); got != "x" || count != 2 {
		t.Fatalf("majorityWithCount = %q,%d", got, count)
	}
}
