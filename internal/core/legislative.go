package core

import (
	"fmt"

	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/voting"
)

// The legislative service (§3.1): "allows agents to set up the rules of the
// game in a democratic manner". Candidates are games; voters rank them; the
// commit-reveal election of internal/voting prevents adaptive manipulation;
// the winner becomes the elected game the other services enforce.

// Candidate pairs a game with a human-readable description for ballots.
type Candidate struct {
	Game        game.Game
	Description string
}

// Voter supplies one agent's preferences over the candidates. Honest
// voters rank sincerely; a Manipulative voter gets (via the hook) the other
// ballots before choosing — which only helps in a naive election.
type Voter struct {
	// Prefs ranks candidate indices, most preferred first. Required.
	Prefs []int
	// Manipulative marks the voter as strategic: in a naive election it
	// sees all earlier ballots and best-responds (§3.1's threat model).
	Manipulative bool
}

// ElectionOutcome reports a completed legislative decision.
type ElectionOutcome struct {
	Winner   int
	Scores   []float64
	Cheaters []int
}

// NaiveElection models the unprotected baseline: voters cast plurality
// ballots in id order, and manipulative voters observe all earlier ballots
// (as on an open bulletin board) before choosing strategically.
func NaiveElection(candidates []Candidate, voters []Voter) (ElectionOutcome, error) {
	k := len(candidates)
	if k == 0 {
		return ElectionOutcome{}, voting.ErrNoCandidates
	}
	var cast []voting.Ballot
	for _, v := range voters {
		if len(v.Prefs) == 0 {
			return ElectionOutcome{}, fmt.Errorf("%w: voter without preferences", ErrConfig)
		}
		if v.Manipulative {
			cast = append(cast, voting.BestStrategicBallot(cast, v.Prefs, k))
			continue
		}
		cast = append(cast, voting.Ballot{Ranking: []int{v.Prefs[0]}})
	}
	winner, scores, _, err := voting.Tally(voting.Plurality, cast, k)
	if err != nil {
		return ElectionOutcome{}, err
	}
	return ElectionOutcome{Winner: winner, Scores: scores}, nil
}

// RobustElection runs the authority's commit-reveal election: all ballots
// are committed before any is revealed, so manipulative voters have nothing
// to condition on and are reduced to sincere voting (or abstention).
// Commitments and reveal sets are Byzantine-agreed in the distributed
// driver; this trusted version exercises the identical validation logic.
func RobustElection(candidates []Candidate, voters []Voter, seed uint64) (ElectionOutcome, error) {
	k := len(candidates)
	if k == 0 {
		return ElectionOutcome{}, voting.ErrNoCandidates
	}
	e, err := voting.NewElection(voting.Plurality, len(voters), k)
	if err != nil {
		return ElectionOutcome{}, err
	}
	src := prng.New(seed)
	openings := make([]commit.Opening, len(voters))
	for i, v := range voters {
		if len(v.Prefs) == 0 {
			return ElectionOutcome{}, fmt.Errorf("%w: voter without preferences", ErrConfig)
		}
		// With commitments up front, the manipulator's best strategy
		// degenerates to a sincere first preference: it cannot see any
		// other ballot yet.
		b := voting.Ballot{Ranking: []int{v.Prefs[0]}}
		d, op := voting.CommitBallot(src, b)
		if err := e.SubmitCommit(i, d); err != nil {
			return ElectionOutcome{}, err
		}
		openings[i] = op
	}
	e.CloseCommits()
	for i := range voters {
		if err := e.SubmitReveal(i, openings[i]); err != nil {
			return ElectionOutcome{}, err
		}
	}
	winner, scores, cheaters, err := e.Result()
	if err != nil {
		return ElectionOutcome{}, err
	}
	return ElectionOutcome{Winner: winner, Scores: scores, Cheaters: cheaters}, nil
}
