package core

import (
	"errors"
	"math"
	"testing"

	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

// fig1Config builds the E-F1 session: the elected game is plain matching
// pennies with uniform equilibrium strategies; the actual cost structure is
// the Fig. 1 manipulated game; agent B (1) plays Manipulate every round
// unless restricted.
func fig1Config(mode AuditMode, epochLen int, scheme punish.Scheme, seed uint64) MixedConfig {
	elected := game.MatchingPennies()
	actual := game.MatchingPenniesManipulated()
	manipulator := &MixedAgent{Override: func(round, honest int) int { return game.ManipulateAction }}
	return MixedConfig{
		Elected: elected,
		Actual:  actual,
		Strategies: func(int, game.Profile) game.MixedProfile {
			return game.MixedProfile{game.Uniform(2), game.Uniform(2)}
		},
		Agents:   []*MixedAgent{nil, manipulator},
		Scheme:   scheme,
		Mode:     mode,
		EpochLen: epochLen,
		Seed:     seed,
	}
}

func TestNewMixedSessionValidation(t *testing.T) {
	base := fig1Config(AuditPerRound, 0, punish.NewDisconnect(2, 0), 1)
	ok := base
	if _, err := NewMixedSession(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Elected = nil
	if _, err := NewMixedSession(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil elected: %v", err)
	}
	bad = base
	bad.Strategies = nil
	if _, err := NewMixedSession(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil strategies: %v", err)
	}
	bad = base
	bad.Agents = nil
	if _, err := NewMixedSession(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("agent arity: %v", err)
	}
	bad = base
	bad.Mode = AuditBatched
	bad.EpochLen = 0
	if _, err := NewMixedSession(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("batched without epoch: %v", err)
	}
	bad = base
	bad.Scheme = nil
	if _, err := NewMixedSession(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("audits without scheme: %v", err)
	}
	bad = base
	bad.Mode = AuditMode(0)
	if _, err := NewMixedSession(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero mode: %v", err)
	}
}

func TestFig1UnsupervisedManipulationGain(t *testing.T) {
	// §5.1: without the authority, B's expected payoff is +4 per play and
	// A's is −4 (A mixes uniformly; B always plays Manipulate).
	const rounds = 20000
	cfg := fig1Config(AuditOff, 0, nil, 42)
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(rounds); err != nil {
		t.Fatal(err)
	}
	perRoundB := s.CumulativePayoff(1) / rounds
	perRoundA := s.CumulativePayoff(0) / rounds
	if math.Abs(perRoundB-4) > 0.15 {
		t.Fatalf("B's manipulation payoff = %v per round, want ≈ +4", perRoundB)
	}
	if math.Abs(perRoundA+4) > 0.15 {
		t.Fatalf("A's payoff = %v per round, want ≈ −4", perRoundA)
	}
}

func TestFig1SupervisedManipulationNeutralized(t *testing.T) {
	// With the authority auditing per round, B's illegitimate action is
	// detected on play 0, B is excluded, and the executive samples the
	// honest strategy for it afterwards: long-run payoffs return to ≈ 0.
	const rounds = 20000
	scheme := punish.NewDisconnect(2, 0)
	cfg := fig1Config(AuditPerRound, 0, scheme, 43)
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(rounds); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatal("manipulator not excluded")
	}
	verdicts := s.Verdicts()
	if len(verdicts) == 0 || len(verdicts[0].Fouls) == 0 || verdicts[0].Fouls[0].Agent != 1 {
		t.Fatalf("first verdict = %+v, want a foul by agent 1", verdicts[0])
	}
	perRoundB := s.CumulativePayoff(1) / rounds
	perRoundA := s.CumulativePayoff(0) / rounds
	// One manipulated round among 20000: averages within noise of 0.
	if math.Abs(perRoundB) > 0.05 {
		t.Fatalf("B's supervised payoff = %v per round, want ≈ 0", perRoundB)
	}
	if math.Abs(perRoundA) > 0.05 {
		t.Fatalf("A's supervised payoff = %v per round, want ≈ 0", perRoundA)
	}
}

func TestMixedHonestSessionNoFouls(t *testing.T) {
	cfg := fig1Config(AuditPerRound, 0, punish.NewDisconnect(2, 0), 44)
	cfg.Agents = []*MixedAgent{nil, nil} // both honest
	cfg.Actual = nil                     // pure matching pennies
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(200); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Verdicts() {
		if len(v.Fouls) != 0 {
			t.Fatalf("honest session produced fouls: %+v", v.Fouls)
		}
	}
	// Expected payoffs ≈ 0 for both at equilibrium.
	for i := 0; i < 2; i++ {
		if got := s.CumulativePayoff(i) / 200; math.Abs(got) > 0.3 {
			t.Fatalf("agent %d equilibrium payoff = %v, want ≈ 0", i, got)
		}
	}
}

func TestMixedBatchedAuditDetectsAtEpochEnd(t *testing.T) {
	scheme := punish.NewDisconnect(2, 0)
	cfg := fig1Config(AuditBatched, 8, scheme, 45)
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// During the first epoch, no verdicts yet: damage accrues.
	if err := s.Play(8); err != nil {
		t.Fatal(err)
	}
	if s.Excluded(1) {
		t.Fatal("batched mode excluded mid-epoch")
	}
	// Next round triggers the epoch close and the audit.
	if _, err := s.PlayRound(); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatal("manipulator not excluded after epoch audit")
	}
}

func TestMixedCloseEpochFlushesTrailingRounds(t *testing.T) {
	scheme := punish.NewDisconnect(2, 0)
	cfg := fig1Config(AuditBatched, 16, scheme, 46)
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Play(5); err != nil { // partial epoch
		t.Fatal(err)
	}
	if s.Excluded(1) {
		t.Fatal("excluded before epoch close")
	}
	if err := s.CloseEpoch(); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(1) {
		t.Fatal("trailing epoch not audited on CloseEpoch")
	}
}

func TestMixedWithholdAndTamperDetected(t *testing.T) {
	scheme := punish.NewDisconnect(2, 0)
	cfg := fig1Config(AuditPerRound, 0, scheme, 47)
	cfg.Agents = []*MixedAgent{
		{Withhold: func(round int) bool { return true }},
		nil,
	}
	s, err := NewMixedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlayRound(); err != nil {
		t.Fatal(err)
	}
	if !s.Excluded(0) {
		t.Fatal("withholding agent not excluded")
	}
}

func TestAuditModeCostAccounting(t *testing.T) {
	// E-AUD shape: batched auditing with epoch T spends ~1 agreement per
	// round plus 3 per epoch, vs 4 per round for per-round auditing.
	const rounds = 64
	run := func(mode AuditMode, epoch int) CostStats {
		cfg := fig1Config(mode, epoch, punish.NewDisconnect(2, 0), 48)
		cfg.Agents = []*MixedAgent{nil, nil}
		cfg.Actual = nil
		s, err := NewMixedSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Play(rounds); err != nil {
			t.Fatal(err)
		}
		if err := s.CloseEpoch(); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	perRound := run(AuditPerRound, 0)
	batched := run(AuditBatched, 16)
	if perRound.Commitments != 2*rounds {
		t.Fatalf("per-round commitments = %d, want %d", perRound.Commitments, 2*rounds)
	}
	if batched.Commitments != 2*rounds/16 {
		t.Fatalf("batched commitments = %d, want %d", batched.Commitments, 2*rounds/16)
	}
	if batched.Agreements >= perRound.Agreements/2 {
		t.Fatalf("batched agreements %d not ≪ per-round %d", batched.Agreements, perRound.Agreements)
	}
	if batched.MessageEstimate >= perRound.MessageEstimate {
		t.Fatal("batched message estimate should be smaller")
	}
	if perRound.Reveals != 2*rounds || batched.Reveals != 2*rounds/16 {
		t.Fatalf("reveal counts: per-round %d, batched %d", perRound.Reveals, batched.Reveals)
	}
}

func TestAuditModeString(t *testing.T) {
	for _, m := range []AuditMode{AuditOff, AuditPerRound, AuditBatched} {
		if m.String() == "" {
			t.Fatal("empty mode name")
		}
	}
	if AuditMode(9).String() != "mode(9)" {
		t.Fatal("unknown mode name")
	}
}
