package core

import (
	"testing"

	"gameauthority/internal/game"
)

func TestHistoryRingUnbounded(t *testing.T) {
	var r historyRing
	for i := 0; i < 5; i++ {
		r.record(&RoundResult{Round: i, Outcome: game.Profile{i}})
	}
	if r.recorded() != 5 || r.retained() != 5 || r.firstRetained() != 0 {
		t.Fatalf("recorded=%d retained=%d first=%d", r.recorded(), r.retained(), r.firstRetained())
	}
	for i := 0; i < 5; i++ {
		s, ok := r.at(i)
		if !ok || s.Round != i || s.Outcome[0] != i {
			t.Fatalf("at(%d) = %+v, %v", i, s, ok)
		}
	}
}

func TestHistoryRingWraparoundOrdering(t *testing.T) {
	var r historyRing
	r.setLimit(3)
	for i := 0; i < 10; i++ {
		r.record(&RoundResult{Round: i, Outcome: game.Profile{i}, Costs: []float64{float64(i)}})
	}
	if r.recorded() != 10 || r.retained() != 3 || r.firstRetained() != 7 {
		t.Fatalf("recorded=%d retained=%d first=%d", r.recorded(), r.retained(), r.firstRetained())
	}
	// Evicted rounds are gone.
	for _, round := range []int{0, 6, 10, -1} {
		if _, ok := r.at(round); ok {
			t.Fatalf("at(%d) should be evicted/out of range", round)
		}
	}
	// Retained rounds come back in order with the right contents.
	snap := r.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for i, want := range []int{7, 8, 9} {
		s, ok := r.at(want)
		if !ok || s.Round != want || s.Outcome[0] != want {
			t.Fatalf("at(%d) = %+v, %v", want, s, ok)
		}
		if snap[i].Round != want || snap[i].Costs[0] != float64(want) {
			t.Fatalf("snapshot[%d] = %+v, want round %d", i, snap[i], want)
		}
	}
}

func TestHistoryRingSlotReuseDoesNotAllocate(t *testing.T) {
	var r historyRing
	r.setLimit(4)
	res := RoundResult{Outcome: game.Profile{1, 0}, Costs: []float64{1, 2}, Excluded: []int{1}}
	for i := 0; i < 8; i++ { // warm every slot's slice capacity
		res.Round = i
		r.record(&res)
	}
	allocs := testing.AllocsPerRun(100, func() {
		res.Round++
		r.record(&res)
	})
	if allocs != 0 {
		t.Fatalf("warm ring record allocated %v times per run", allocs)
	}
}

func TestHistoryRingSnapshotIsIndependent(t *testing.T) {
	var r historyRing
	r.setLimit(2)
	r.record(&RoundResult{Round: 0, Outcome: game.Profile{7, 7}})
	snap := r.snapshot()
	view0, _ := r.at(0)
	_ = view0
	// Overwrite the slot by wrapping around.
	r.record(&RoundResult{Round: 1, Outcome: game.Profile{1, 1}})
	r.record(&RoundResult{Round: 2, Outcome: game.Profile{2, 2}})
	if snap[0].Outcome[0] != 7 {
		t.Fatalf("snapshot mutated by wraparound: %v", snap[0].Outcome)
	}
}

func TestRoundResultCloneIndependent(t *testing.T) {
	orig := RoundResult{Round: 3, Outcome: game.Profile{1, 2}, Costs: []float64{4, 5}, Convicted: []int{1}}
	c := orig.Clone()
	orig.Outcome[0] = 99
	orig.Costs[0] = 99
	orig.Convicted[0] = 99
	if c.Outcome[0] != 1 || c.Costs[0] != 4 || c.Convicted[0] != 1 {
		t.Fatalf("clone shares memory: %+v", c)
	}
}
