package core

import (
	"fmt"

	"gameauthority/internal/audit"
	"gameauthority/internal/bap"
	"gameauthority/internal/clocksync"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/obs"
	"gameauthority/internal/punish"
	"gameauthority/internal/sim"
)

// The distributed driver runs the complete §3.3 play protocol on the
// synchronous network: a self-stabilizing Byzantine clock (§4) schedules
// four phases per play, each phase being one interactive-consistency (BAP)
// execution:
//
//	phase 0 OUTCOME — agree on the outcome of the previous play;
//	phase 1 COMMIT  — agree on the set of action commitments;
//	phase 2 REVEAL  — agree on the set of openings;
//	phase 3 VERDICT — every processor audits the agreed evidence locally
//	                  (deterministically) and the foul set is agreed, after
//	                  which each processor's executive replica punishes.
//
// Because the phase position is derived from the self-stabilizing clock
// value, the whole loop is self(ish)-stabilizing in the paper's sense: any
// transient corruption dies at the next clock wrap. The executive's punish
// ledger is reset by the fault injector and rebuilt from fresh verdicts —
// the paper's §4 remark that the executive service must be made
// self-stabilizing "on a case basis".

// debugDist enables phase-vector tracing in tests.
var debugDist = false

// distPhase identifies the protocol phase within a play.
type distPhase int

const (
	phaseOutcome distPhase = iota
	phaseCommit
	phaseReveal
	phaseVerdict
	numPhases
)

// distMsg is the combined wire payload: a clock vote plus an optional
// phase-tagged inner interactive-consistency message. It travels by
// pointer into a sender-owned slab (see DistProcessor.slabs): boxing a
// pointer in the Message's any payload does not allocate, which is what
// keeps the pulse loop's per-message cost flat.
type distMsg struct {
	Tick  int
	Phase distPhase
	// Inner carries the bap IC payloads opaquely (one per in-flight
	// agreement instance); empty when the sender has no protocol traffic
	// this pulse.
	Inner []any
	// HasInner distinguishes "no traffic" from an empty list forged by an
	// adversary.
	HasInner bool
}

// slabRounds is how many pulses a sent distMsg must stay untouched before
// its slab slot can be reused: one pulse in transit, one pulse being read,
// plus one pulse of slack for adversaries that replay a Byzantine
// processor's outbox with a delay.
const slabRounds = 3

// DistProcessor is one agent's full middleware stack: clock + phase machine
// + judicial/executive replicas + application-layer behaviour.
type DistProcessor struct {
	id, n, f int
	g        game.Game
	behavior *Agent
	scheme   punish.Scheme
	seed     uint64

	clock    *clocksync.Clock
	phaseLen int
	m        int

	// ic is the allocation-free interactive-consistency engine, built once
	// at construction and Reset at every phase start; icActive gates it
	// (replacing the old throwaway-ICProc-per-phase, where nil meant idle).
	ic        *bap.IC
	icActive  bool
	icPhase   distPhase
	icPulse   int
	completed [numPhases]bool

	// Reused per-pulse buffers (see Step): the outbox and the buffered
	// inner-payload scratch are recycled every pulse; the carrier-message
	// slab rotates over slabRounds pulses so in-flight pointers are never
	// overwritten. All destinations share one inner payload list per pulse
	// (IC broadcasts are identical to every destination).
	outBuf    []sim.Message
	innerPay  []any
	innerFrom []int
	slabs     [slabRounds][]distMsg

	// Per-play working state (agreed evidence), pre-sized at construction;
	// haveDigests/haveOpenings flag which phases have produced evidence
	// since the last play (or corruption).
	prev         game.Profile
	round        int
	myOpening    commit.Opening
	digests      []commit.Digest
	openings     []commit.Opening
	revealed     []bool
	haveDigests  bool
	haveOpenings bool
	convicted    []bool

	// phaseSpan is the open trace span covering the current interactive-
	// consistency phase (zero when the tracer is disabled or no phase is
	// in flight); per-pulse sub-spans nest inside it in the dump.
	phaseSpan obs.Ctx

	results []DistRound
}

// phaseSpanNames maps a protocol phase to its trace span name (the
// VERDICT phase is the paper's foul-set vote). Per-pulse spans inside a
// phase are "pulse.clock-sync" (vote split + self-stabilizing tick),
// "pulse.dolev-strong" (authenticated relay delivery) and
// "pulse.eig-resolve" (EIG end-of-pulse resolution). See DESIGN.md §14.
var phaseSpanNames = [numPhases]string{
	phaseOutcome: "phase.outcome",
	phaseCommit:  "phase.commit",
	phaseReveal:  "phase.reveal",
	phaseVerdict: "phase.vote",
}

// DistRound is one completed play as recorded by a processor.
type DistRound struct {
	Pulse   int
	Outcome game.Profile
	Guilty  []int
}

var (
	_ sim.Process     = (*DistProcessor)(nil)
	_ sim.Corruptible = (*DistProcessor)(nil)
)

// DistModulus returns the clock modulus used by the distributed driver:
// four interactive-consistency phases plus wrap slack.
func DistModulus(f int) int { return int(numPhases)*bap.TotalPulses(f) + 2 }

// PulsesPerPlay returns the number of network pulses one complete play
// takes in the distributed driver.
func PulsesPerPlay(f int) int { return DistModulus(f) }

// NewDistProcessor builds processor id running the authority middleware for
// the elected game g with the given behaviour and punishment scheme replica.
func NewDistProcessor(id, n, f int, g game.Game, behavior *Agent, scheme punish.Scheme, seed uint64) (*DistProcessor, error) {
	if g == nil || behavior == nil || behavior.Choose == nil {
		return nil, fmt.Errorf("%w: nil game or behaviour", ErrConfig)
	}
	if g.NumPlayers() != n {
		return nil, fmt.Errorf("%w: game has %d players for %d processors", ErrConfig, g.NumPlayers(), n)
	}
	if scheme == nil {
		return nil, fmt.Errorf("%w: nil punishment scheme", ErrConfig)
	}
	m := DistModulus(f)
	clock, err := clocksync.New(id, n, f, m, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	ic, err := bap.NewIC(id, n, f)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	p := &DistProcessor{
		id: id, n: n, f: f, g: g, behavior: behavior, scheme: scheme, seed: seed,
		clock: clock, phaseLen: bap.TotalPulses(f), m: m, ic: ic,
		outBuf:    make([]sim.Message, 0, n),
		innerPay:  make([]any, 0, n*n),
		innerFrom: make([]int, 0, n*n),
		digests:   make([]commit.Digest, n),
		openings:  make([]commit.Opening, n),
		revealed:  make([]bool, n),
		convicted: make([]bool, n),
	}
	for i := range p.slabs {
		p.slabs[i] = make([]distMsg, 0, n)
	}
	return p, nil
}

// ID implements sim.Process.
func (p *DistProcessor) ID() int { return p.id }

// ResultCount returns the number of plays this processor has completed
// since its last transient fault.
func (p *DistProcessor) ResultCount() int { return len(p.results) }

// ResultAt returns a copy of the i-th completed play.
func (p *DistProcessor) ResultAt(i int) DistRound {
	r := p.results[i]
	return DistRound{Pulse: r.Pulse, Outcome: r.Outcome.Clone(), Guilty: append([]int(nil), r.Guilty...)}
}

// resultRef returns the i-th completed play without copying; the session
// driver clones what it retains.
func (p *DistProcessor) resultRef(i int) *DistRound { return &p.results[i] }

// Results returns the plays this processor has completed (oldest first).
func (p *DistProcessor) Results() []DistRound {
	out := make([]DistRound, len(p.results))
	for i, r := range p.results {
		out[i] = DistRound{Pulse: r.Pulse, Outcome: r.Outcome.Clone(), Guilty: append([]int(nil), r.Guilty...)}
	}
	return out
}

// Excluded reports whether this processor's executive replica has excluded
// the given agent.
func (p *DistProcessor) Excluded(agent int) bool { return p.scheme.Excluded(agent) }

// Step implements sim.Process.
func (p *DistProcessor) Step(pulse int, inbox []sim.Message) []sim.Message {
	// 1. Split inbox into clock votes and phase traffic. Inner payloads
	// are buffered, not delivered: whether they count must be decided
	// against the schedule the post-Tick clock implies (a stale-phase
	// message discarded here and one absorbed after a phase restart would
	// otherwise diverge under Byzantine clock chaos).
	clockSpan := obs.DefaultTracer.Begin("pulse.clock-sync", "pulse", int64(p.id), int64(pulse))
	innerPay := p.innerPay[:0]
	innerFrom := p.innerFrom[:0]
	for _, m := range inbox {
		msg, ok := m.Payload.(*distMsg)
		if !ok {
			continue
		}
		p.clock.Vote(m.From, msg.Tick)
		if msg.HasInner && p.icActive && msg.Phase == p.icPhase {
			for _, payload := range msg.Inner {
				innerPay = append(innerPay, payload)
				innerFrom = append(innerFrom, m.From)
			}
		}
	}
	p.innerPay = innerPay
	p.innerFrom = innerFrom
	v := p.clock.Tick()
	clockSpan.End()

	// 2. Map the clock value onto (phase, relative pulse). Values 0 and
	// M-1 are the wrap slack with no protocol activity.
	phase, rel, active := p.locate(v)

	var out []any
	if active {
		if rel == 0 {
			p.startPhase(phase, pulse)
		}
		if p.icActive && p.icPhase == phase {
			dsSpan := obs.DefaultTracer.Begin("pulse.dolev-strong", "pulse", int64(p.id), int64(pulse))
			for i, payload := range innerPay {
				p.ic.Deliver(innerFrom[i], payload)
			}
			dsSpan.End()
			eigSpan := obs.DefaultTracer.Begin("pulse.eig-resolve", "pulse", int64(p.id), int64(pulse))
			var done bool
			out, done = p.ic.EndPulse(pulse)
			eigSpan.End()
			p.icPulse++
			if done {
				p.finishPhase(phase, p.ic.VectorRef(), pulse)
				p.icActive = false
				p.phaseSpan.End()
				p.phaseSpan = obs.Ctx{}
			}
		}
	}

	// 3. Broadcast combined payload: one slab-backed *distMsg per
	// destination, all sharing the engine's inner payload list for this
	// pulse. Slabs rotate over slabRounds pulses so messages still in
	// transit are never overwritten.
	slabIdx := pulse % slabRounds
	slab := p.slabs[slabIdx][:0]
	msgs := p.outBuf[:0]
	tick := p.clock.Value()
	for to := 0; to < p.n; to++ {
		dm := distMsg{Tick: tick, Phase: p.icPhase}
		if len(out) > 0 {
			dm.Inner = out
			dm.HasInner = true
		}
		slab = append(slab, dm)
		msgs = append(msgs, sim.Message{From: p.id, To: to, Payload: &slab[len(slab)-1]})
	}
	p.slabs[slabIdx] = slab
	p.outBuf = msgs
	return msgs
}

// locate maps a clock value to the protocol schedule.
func (p *DistProcessor) locate(v int) (distPhase, int, bool) {
	if v < 1 || v > int(numPhases)*p.phaseLen {
		return 0, 0, false
	}
	idx := v - 1
	return distPhase(idx / p.phaseLen), idx % p.phaseLen, true
}

// startPhase begins the interactive consistency of the given phase with
// this processor's private value.
func (p *DistProcessor) startPhase(phase distPhase, pulse int) {
	p.phaseSpan.End() // a clock restart can abandon a phase mid-flight
	p.phaseSpan = obs.DefaultTracer.Begin(phaseSpanNames[phase], "phase", int64(p.id), int64(pulse))
	private := p.privateValue(phase, pulse)
	p.ic.Reset(private)
	p.icActive = true
	p.icPhase = phase
	p.icPulse = 0
	p.completed[phase] = false
}

// privateValue computes what this processor contributes to each phase.
func (p *DistProcessor) privateValue(phase distPhase, pulse int) bap.Value {
	switch phase {
	case phaseOutcome:
		if p.prev == nil {
			return "none"
		}
		return bap.Value(EncodeProfile(p.prev))

	case phaseCommit:
		action := p.behavior.Choose(p.round, clonePrev(p.prev))
		src := deriveAgentSource(p.seed, p.id, p.round)
		digest, opening := commit.Commit(src, audit.EncodeAction(action))
		p.myOpening = opening
		return bap.Value(EncodeDigest(digest))

	case phaseReveal:
		if p.behavior.Withhold != nil && p.behavior.Withhold(p.round) {
			return ""
		}
		op := p.myOpening
		if p.behavior.TamperOpening != nil {
			op = p.behavior.TamperOpening(p.round, op.Clone())
		}
		return bap.Value(EncodeOpening(op))

	case phaseVerdict:
		verdict, _, err := p.localAudit()
		if err != nil {
			return ""
		}
		return bap.Value(EncodeFoulSet(verdict.Guilty()))
	}
	return ""
}

// finishPhase consumes an agreed vector.
func (p *DistProcessor) finishPhase(phase distPhase, vector []bap.Value, pulse int) {
	if vector == nil {
		return
	}
	p.completed[phase] = true
	if debugDist {
		fmt.Printf("DBG proc %d phase %d vector %q\n", p.id, phase, vector)
	}
	switch phase {
	case phaseOutcome:
		// Majority claim wins; the vector is identical at every honest
		// processor, so the (deterministic) choice is too.
		claim := majorityValue(vector)
		if claim == "none" {
			p.prev = nil
			return
		}
		if prof, err := DecodeProfile(string(claim), p.n); err == nil {
			p.prev = prof
		} else {
			p.prev = nil
		}

	case phaseCommit:
		for i := range p.digests {
			p.digests[i] = commit.Digest{}
		}
		for i, v := range vector {
			if d, err := DecodeDigest(string(v)); err == nil {
				p.digests[i] = d
			}
		}
		p.haveDigests = true

	case phaseReveal:
		for i := range p.openings {
			p.openings[i] = commit.Opening{}
			p.revealed[i] = false
		}
		for i, v := range vector {
			if v == "" {
				continue
			}
			if op, err := DecodeOpening(string(v)); err == nil {
				p.openings[i] = op
				p.revealed[i] = true
			}
		}
		p.haveOpenings = true

	case phaseVerdict:
		p.finishPlay(vector, pulse)
	}
}

// localAudit runs the judicial check over the agreed evidence. It is a
// pure function of Byzantine-agreed data, so every honest processor
// computes the same verdict.
func (p *DistProcessor) localAudit() (audit.Verdict, game.Profile, error) {
	if !p.haveDigests || !p.haveOpenings {
		return audit.Verdict{}, nil, fmt.Errorf("%w: no evidence", ErrConfig)
	}
	ev := audit.PlayEvidence{
		Round:       p.round,
		PrevOutcome: p.prev,
		Commitments: p.digests,
		Openings:    p.openings,
		Revealed:    p.revealed,
	}
	// A corrupted prev that fails validation would error the audit; treat
	// it as "first play" evidence instead (self-stabilization over
	// strictness — the next wrap re-agrees everything).
	if ev.PrevOutcome != nil {
		if game.ValidateProfile(p.g, ev.PrevOutcome) != nil {
			ev.PrevOutcome = nil
		}
	}
	return audit.PerRound(p.g, ev)
}

// finishPlay applies the agreed verdict, publishes the outcome, punishes,
// and advances to the next play.
func (p *DistProcessor) finishPlay(verdictVector []bap.Value, pulse int) {
	// Strong-majority foul set: during convergence chaos there is no
	// n−f support, so no one gets punished on garbage.
	foulClaim, support := majorityWithCount(verdictVector)
	var guilty []int
	if support >= p.n-p.f {
		if ids, err := DecodeFoulSet(string(foulClaim)); err == nil {
			guilty = ids
		}
	}
	// Outcome: established actions, with executive substitutions for
	// convicted or unestablished agents.
	verdict, actions, err := p.localAudit()
	if err != nil {
		return // no evidence (corruption); next wrap restarts cleanly
	}
	_ = verdict
	outcome := make(game.Profile, p.n)
	for i := range p.convicted {
		p.convicted[i] = false
	}
	for _, id := range guilty {
		if id >= 0 && id < p.n {
			p.convicted[id] = true
			_ = p.scheme.Punish(id, p.round, 1)
		}
	}
	for i := 0; i < p.n; i++ {
		if actions[i] >= 0 && !p.convicted[i] && !p.scheme.Excluded(i) {
			outcome[i] = actions[i]
			continue
		}
		// Executive restriction/substitution.
		if p.prev != nil {
			outcome[i] = game.BestResponse(p.g, i, p.prev)
		}
	}
	p.results = append(p.results, DistRound{Pulse: pulse, Outcome: outcome, Guilty: guilty})
	p.prev = outcome
	p.round++
	p.haveDigests, p.haveOpenings = false, false
}

// Corrupt implements sim.Corruptible: scrambles every piece of state the
// transient-fault adversary can reach. The punish replica is rebuilt fresh
// (see the package comment on the §4 executive remark).
func (p *DistProcessor) Corrupt(entropy func() uint64) {
	p.clock.Corrupt(entropy)
	p.icActive = false
	p.icPulse = int(entropy() % 7)
	p.icPhase = distPhase(entropy() % uint64(numPhases))
	p.round = int(entropy() % 13)
	p.haveDigests, p.haveOpenings = false, false
	if entropy()&1 == 0 {
		garbage := make(game.Profile, p.n)
		for i := range garbage {
			garbage[i] = int(entropy() % 7)
		}
		p.prev = garbage
	} else {
		p.prev = nil
	}
	p.results = nil
	p.scheme = p.scheme.Fresh()
}

// majorityValue returns the most frequent value (ties → lexicographically
// smallest), deterministic across processors given identical vectors.
func majorityValue(vector []bap.Value) bap.Value {
	v, _ := majorityWithCount(vector)
	return v
}

// majorityWithCount is mapless (vectors are n-sized, so the quadratic count
// is cheaper than a map and allocation-free on the play hot path).
func majorityWithCount(vector []bap.Value) (bap.Value, int) {
	best, bestCount := bap.Value(""), -1
	for _, v := range vector {
		c := 0
		for _, w := range vector {
			if w == v {
				c++
			}
		}
		if c > bestCount || (c == bestCount && v < best) {
			best, bestCount = v, c
		}
	}
	return best, bestCount
}

// --- Distributed session harness ---------------------------------------------

// DistSession wires n DistProcessors over a full mesh.
type DistSession struct {
	Net    *sim.Network
	Procs  []*DistProcessor
	Honest []int
}

// NewDistSession builds the distributed authority network. behaviors[i] may
// be nil for an honest best-response agent. byz installs network-level
// adversaries (message tampering) on top of behavioural cheats.
func NewDistSession(n, f int, g game.Game, behaviors []*Agent, seed uint64, byz map[int]sim.Adversary) (*DistSession, error) {
	return NewDistSessionWith(n, f, g, behaviors, seed, byz, nil)
}

// NewDistSessionWith is NewDistSession with an explicit punishment scheme
// prototype: every processor's executive replica gets its own Fresh() copy
// (a shared instance would double-count offences across replicas). A nil
// scheme defaults to one-strike disconnection.
func NewDistSessionWith(n, f int, g game.Game, behaviors []*Agent, seed uint64, byz map[int]sim.Adversary, scheme punish.Scheme) (*DistSession, error) {
	if len(behaviors) != n {
		return nil, fmt.Errorf("%w: %d behaviours for %d processors", ErrConfig, len(behaviors), n)
	}
	if scheme == nil {
		scheme = punish.NewDisconnect(n, 0)
	}
	g = game.Accelerate(g)
	procs := make([]sim.Process, n)
	raw := make([]*DistProcessor, n)
	for i := 0; i < n; i++ {
		b := behaviors[i]
		if b == nil {
			b = HonestPure(g, i)
		}
		dp, err := NewDistProcessor(i, n, f, g, b, scheme.Fresh(), seed)
		if err != nil {
			return nil, err
		}
		raw[i] = dp
		procs[i] = dp
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		return nil, err
	}
	var honest []int
	for i := 0; i < n; i++ {
		if adv, bad := byz[i]; bad {
			nw.SetByzantine(i, adv)
		} else {
			honest = append(honest, i)
		}
	}
	return &DistSession{Net: nw, Procs: raw, Honest: honest}, nil
}

// RunPlays advances the network by the given number of complete plays.
func (s *DistSession) RunPlays(plays int) {
	f := s.Procs[0].f
	s.Net.Run(plays * PulsesPerPlay(f))
}

// ConsistentResults checks that all honest processors recorded identical
// play outcomes over their last `plays` results; it returns an error
// describing the first divergence.
func (s *DistSession) ConsistentResults(plays int) error {
	if len(s.Honest) == 0 {
		return nil
	}
	ref := tail(s.Procs[s.Honest[0]].Results(), plays)
	for _, id := range s.Honest[1:] {
		got := tail(s.Procs[id].Results(), plays)
		if len(got) != len(ref) {
			return fmt.Errorf("core: proc %d recorded %d plays, proc %d recorded %d",
				id, len(got), s.Honest[0], len(ref))
		}
		for k := range ref {
			if got[k].Pulse != ref[k].Pulse || !got[k].Outcome.Equal(ref[k].Outcome) {
				return fmt.Errorf("core: play %d diverges: proc %d %v@%d vs proc %d %v@%d",
					k, id, got[k].Outcome, got[k].Pulse, s.Honest[0], ref[k].Outcome, ref[k].Pulse)
			}
			if EncodeFoulSet(got[k].Guilty) != EncodeFoulSet(ref[k].Guilty) {
				return fmt.Errorf("core: play %d verdicts diverge: %v vs %v", k, got[k].Guilty, ref[k].Guilty)
			}
		}
	}
	return nil
}

func tail(rs []DistRound, k int) []DistRound {
	if len(rs) > k {
		return rs[len(rs)-k:]
	}
	return rs
}
