package core

import (
	"fmt"

	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
	"gameauthority/internal/punish"
)

// AuditMode selects the judicial service's auditing discipline (§5.3).
type AuditMode int

// Auditing disciplines.
const (
	// AuditOff disables auditing entirely — the "no game authority"
	// baseline used to measure the price of malice.
	AuditOff AuditMode = iota + 1
	// AuditPerRound audits every play with its own seed commitment
	// (the paper's base design).
	AuditPerRound
	// AuditBatched commits one seed per epoch of EpochLen rounds and
	// audits at epoch end (the §5.3 efficiency extension).
	AuditBatched
)

// String implements fmt.Stringer.
func (m AuditMode) String() string {
	switch m {
	case AuditOff:
		return "off"
	case AuditPerRound:
		return "per-round"
	case AuditBatched:
		return "batched"
	default:
		if name, ok := modeString(m); ok {
			return name
		}
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// MixedAgent models one participant in a mixed-strategy session. The zero
// value is fully honest: it plays exactly the PRG-derived sample of the
// declared strategy.
type MixedAgent struct {
	// Override, if non-nil, replaces the honest PRG-derived action with
	// the agent's own choice (e.g. the Fig. 1 "Manipulate" strategy).
	Override func(round, honestAction int) int
	// TamperSeedOpening, if non-nil, replaces the agent's seed reveal.
	TamperSeedOpening func(round int, op commit.Opening) commit.Opening
	// Withhold, if non-nil, makes the agent refuse to reveal its seed.
	Withhold func(round int) bool
}

// MixedConfig configures a mixed-strategy session.
type MixedConfig struct {
	// Elected is the game whose rules the authority enforces (legitimacy,
	// strategies). Required.
	Elected game.Game
	// Actual is the true cost structure, which may secretly extend the
	// elected game (hidden manipulative strategies, Fig. 1). Nil means
	// the elected game is the whole truth.
	Actual game.Game
	// Strategies returns the common-knowledge equilibrium strategies for
	// the round (they may depend on the previous outcome). Required.
	Strategies func(round int, prev game.Profile) game.MixedProfile
	// Agents holds one behaviour per player; nil entries mean honest.
	Agents []*MixedAgent
	// Scheme is the executive's punishment scheme (nil with AuditOff).
	Scheme punish.Scheme
	// Mode selects the auditing discipline; EpochLen is the batch size
	// for AuditBatched (≥ 1).
	Mode     AuditMode
	EpochLen int
	// SampleProb is the per-round spot-check probability for AuditSampled
	// (0 < p ≤ 1).
	SampleProb float64
	// Window and ChiThreshold configure AuditStatistical: frequencies are
	// screened every Window rounds against the chi-square-style threshold.
	Window       int
	ChiThreshold float64
	// Seed drives all commitment nonces and honest sampling.
	Seed uint64
}

// CostStats counts the protocol overhead the E-AUD experiment reports.
type CostStats struct {
	Commitments int64 // seed commitments created
	Reveals     int64 // seed openings published
	Agreements  int64 // Byzantine agreement (IC) invocations
	// MessageEstimate approximates network messages had the agreements
	// run on the distributed driver (see ICMessageEstimate).
	MessageEstimate int64
}

// ICMessageEstimate approximates the message count of one interactive
// consistency execution over n processors with f faults: n parallel EIG
// instances, each pulse every processor sends n point-to-point messages per
// instance, over f+3 pulses.
func ICMessageEstimate(n, f int) int64 {
	return int64(n) * int64(n) * int64(n) * int64(f+3)
}

// roundSeedState reproduces prng.Derive(seed, 0x5EED, agent, round).Uint64()
// on a caller-owned Source, avoiding the per-round heap allocation.
func roundSeedState(seed uint64, agent, round int, src *prng.Source) uint64 {
	src.Seed(prng.Mix(prng.Mix(prng.Mix(seed, 0x5EED), uint64(agent)), uint64(round)))
	return src.Uint64()
}

// MixedSession is the trusted driver for repeated mixed-strategy plays.
type MixedSession struct {
	cfg    MixedConfig
	actual game.Game
	n      int
	f      int // fault bound used for message estimates

	round int
	prev  game.Profile

	cumCost []float64
	stats   CostStats

	// epoch state (AuditBatched)
	epochStart  int
	epochSeeds  []uint64
	epochCommit []commit.Digest
	epochOps    []commit.Opening
	epochHist   []game.Profile
	epochStrats [][]game.Mixed

	// window accumulates per-agent action histories for AuditStatistical.
	window [][]int

	verdicts []audit.Verdict

	// Per-round scratch for the per-round audit discipline, reused so the
	// steady-state play keeps a fixed allocation budget.
	scratch struct {
		roundSeeds   []uint64
		roundCommits []commit.Digest
		roundOps     []commit.Opening
		seedOps      []commit.Opening
		revealed     []bool
		enc          []byte
	}
}

// NewMixedSession validates the configuration and builds the session.
func NewMixedSession(cfg MixedConfig) (*MixedSession, error) {
	if cfg.Elected == nil {
		return nil, fmt.Errorf("%w: nil elected game", ErrConfig)
	}
	if cfg.Strategies == nil {
		return nil, fmt.Errorf("%w: nil strategies", ErrConfig)
	}
	n := cfg.Elected.NumPlayers()
	if len(cfg.Agents) != n {
		return nil, fmt.Errorf("%w: %d agents for %d players", ErrConfig, len(cfg.Agents), n)
	}
	switch cfg.Mode {
	case AuditOff, AuditPerRound:
	case AuditBatched:
		if cfg.EpochLen < 1 {
			return nil, fmt.Errorf("%w: batched mode needs EpochLen ≥ 1", ErrConfig)
		}
	case AuditSampled:
		if cfg.SampleProb <= 0 || cfg.SampleProb > 1 {
			return nil, fmt.Errorf("%w: sampled mode needs 0 < SampleProb ≤ 1", ErrConfig)
		}
	case AuditStatistical:
		if cfg.Window < 1 || cfg.ChiThreshold <= 0 {
			return nil, fmt.Errorf("%w: statistical mode needs Window ≥ 1 and ChiThreshold > 0", ErrConfig)
		}
	default:
		return nil, fmt.Errorf("%w: unknown audit mode %d", ErrConfig, cfg.Mode)
	}
	if cfg.Mode != AuditOff && cfg.Scheme == nil {
		return nil, fmt.Errorf("%w: auditing requires a punishment scheme", ErrConfig)
	}
	cfg.Elected = game.Accelerate(cfg.Elected)
	actual := game.Accelerate(cfg.Actual)
	if actual == nil {
		actual = cfg.Elected
	}
	if actual.NumPlayers() != n {
		return nil, fmt.Errorf("%w: actual game has %d players, elected %d", ErrConfig, actual.NumPlayers(), n)
	}
	s := &MixedSession{
		cfg:     cfg,
		actual:  actual,
		n:       n,
		f:       (n - 1) / 3,
		cumCost: make([]float64, n),
	}
	if cfg.Mode == AuditStatistical {
		s.window = make([][]int, n)
	}
	if cfg.Mode == AuditPerRound {
		s.scratch.roundSeeds = make([]uint64, n)
		s.scratch.roundCommits = make([]commit.Digest, n)
		s.scratch.roundOps = make([]commit.Opening, n)
		s.scratch.seedOps = make([]commit.Opening, n)
		s.scratch.revealed = make([]bool, n)
	}
	return s, nil
}

// Round returns the number of completed plays.
func (s *MixedSession) Round() int { return s.round }

// Stats returns the accumulated protocol overhead counters.
func (s *MixedSession) Stats() CostStats { return s.stats }

// Verdicts returns all verdicts issued so far.
func (s *MixedSession) Verdicts() []audit.Verdict {
	return append([]audit.Verdict(nil), s.verdicts...)
}

// VerdictCount returns how many verdicts were issued so far; with
// VerdictAt it lets incremental consumers avoid Verdicts' full copy on
// every play.
func (s *MixedSession) VerdictCount() int { return len(s.verdicts) }

// VerdictAt returns the i-th issued verdict (shared, do not mutate).
func (s *MixedSession) VerdictAt(i int) audit.Verdict { return s.verdicts[i] }

// CumulativeCost returns agent i's total actual cost so far.
func (s *MixedSession) CumulativeCost(i int) float64 { return s.cumCost[i] }

// CumulativePayoff returns agent i's total payoff (negated cost).
func (s *MixedSession) CumulativePayoff(i int) float64 { return -s.cumCost[i] }

// Excluded reports whether agent i is currently excluded.
func (s *MixedSession) Excluded(i int) bool {
	return s.cfg.Scheme != nil && s.cfg.Scheme.Excluded(i)
}

// PlayRound executes one play. The flow per §3.3/§5.3: (1) the outcome of
// the previous play is agreed; (2) agents commit to their randomness; (3)
// actions are played and published; (4) the judicial service audits (per
// round, or at epoch end in batched mode) and the executive punishes.
func (s *MixedSession) PlayRound() (game.Profile, error) {
	strategies := s.cfg.Strategies(s.round, clonePrev(s.prev))
	if len(strategies) != s.n {
		return nil, fmt.Errorf("%w: strategy arity %d", ErrConfig, len(strategies))
	}

	// The extension modes have their own flows (see mixed_modes.go).
	switch s.cfg.Mode {
	case AuditSampled:
		return s.playSampled(strategies)
	case AuditStatistical:
		return s.playStatistical(strategies)
	}

	// Outcome agreement for the previous play (1 IC when audits are on).
	if s.cfg.Mode != AuditOff && s.round > 0 {
		s.addAgreement()
	}

	// Epoch bootstrap: in batched mode the first round of each epoch
	// fixes the per-agent epoch seeds and their commitments.
	if s.cfg.Mode == AuditBatched && (s.round-s.epochStart >= s.cfg.EpochLen || s.epochSeeds == nil) {
		if s.epochSeeds != nil {
			if err := s.closeEpoch(); err != nil {
				return nil, err
			}
		}
		s.openEpoch()
	}

	// Seed commitments for per-round mode (session scratch, reused).
	var roundSeeds []uint64
	var roundCommits []commit.Digest
	var roundOps []commit.Opening
	if s.cfg.Mode == AuditPerRound {
		roundSeeds = s.scratch.roundSeeds
		roundCommits = s.scratch.roundCommits
		roundOps = s.scratch.roundOps
		var src prng.Source
		for i := 0; i < s.n; i++ {
			roundSeeds[i] = roundSeedState(s.cfg.Seed, i, s.round, &src)
			src.Seed(agentStreamState(s.cfg.Seed, i, s.round))
			s.scratch.enc = audit.AppendSeed(s.scratch.enc[:0], roundSeeds[i])
			roundCommits[i] = commit.CommitInto(&src, s.scratch.enc, &roundOps[i])
			s.stats.Commitments++
		}
		s.addAgreement() // agree on the commitment set
	}

	// Action selection.
	outcome := make(game.Profile, s.n)
	var seedSrc prng.Source
	for i := 0; i < s.n; i++ {
		var seed uint64
		switch s.cfg.Mode {
		case AuditPerRound:
			seed = roundSeeds[i]
		case AuditBatched:
			seed = s.epochSeeds[i]
		default:
			seed = roundSeedState(s.cfg.Seed, i, s.round, &seedSrc)
		}
		honest, err := audit.ExpectedAction(strategies[i], seed, i, s.round)
		if err != nil {
			return nil, fmt.Errorf("core: sample agent %d: %w", i, err)
		}
		action := honest
		agent := s.cfg.Agents[i]
		if s.Excluded(i) {
			// Executive restriction: the authority samples on the
			// excluded agent's behalf with its own stream.
			seedSrc.Seed(prng.Mix(prng.Mix(s.cfg.Seed, 0xE8EC), uint64(i)))
			execSeed := seedSrc.Uint64()
			action, err = audit.ExpectedAction(strategies[i], execSeed, i, s.round)
			if err != nil {
				return nil, fmt.Errorf("core: executive sample %d: %w", i, err)
			}
		} else if agent != nil && agent.Override != nil {
			action = agent.Override(s.round, honest)
		}
		outcome[i] = action
	}

	// Publish the outcome (1 IC when audits are on).
	if s.cfg.Mode != AuditOff {
		s.addAgreement()
	}

	// Costs accrue on the *actual* game — manipulation damage lands
	// before the audit can react, exactly as in §5.1.
	for i := 0; i < s.n; i++ {
		s.cumCost[i] += s.actual.Cost(i, outcome)
	}

	// Judicial phase.
	switch s.cfg.Mode {
	case AuditPerRound:
		for i := range s.scratch.seedOps {
			s.scratch.seedOps[i] = commit.Opening{}
			s.scratch.revealed[i] = false
		}
		ev := audit.MixedEvidence{
			Round:           s.round,
			Strategies:      strategies,
			SeedCommitments: roundCommits,
			SeedOpenings:    s.scratch.seedOps,
			Revealed:        s.scratch.revealed,
			Actions:         outcome,
		}
		for i := 0; i < s.n; i++ {
			agent := s.cfg.Agents[i]
			if !s.Excluded(i) && agent != nil && agent.Withhold != nil && agent.Withhold(s.round) {
				continue
			}
			op := roundOps[i]
			if !s.Excluded(i) && agent != nil && agent.TamperSeedOpening != nil {
				op = agent.TamperSeedOpening(s.round, op.Clone())
			}
			ev.SeedOpenings[i] = op
			ev.Revealed[i] = true
			s.stats.Reveals++
		}
		s.addAgreement() // agree on the reveal set
		verdict, err := audit.MixedPerRound(s.cfg.Elected, ev)
		if err != nil {
			return nil, fmt.Errorf("core: audit: %w", err)
		}
		s.applyVerdict(verdict)

	case AuditBatched:
		s.epochHist = append(s.epochHist, outcome.Clone())
		s.epochStrats = append(s.epochStrats, strategies)
	}

	s.prev = outcome
	s.round++
	return outcome, nil
}

// Play runs the given number of rounds. In batched mode, call CloseEpoch
// afterwards to audit any partial trailing epoch.
func (s *MixedSession) Play(rounds int) error {
	for i := 0; i < rounds; i++ {
		if _, err := s.PlayRound(); err != nil {
			return err
		}
	}
	return nil
}

// openEpoch starts a new batched-audit epoch.
func (s *MixedSession) openEpoch() {
	s.epochStart = s.round
	s.epochSeeds = make([]uint64, s.n)
	s.epochCommit = make([]commit.Digest, s.n)
	s.epochOps = make([]commit.Opening, s.n)
	s.epochHist = nil
	s.epochStrats = nil
	for i := 0; i < s.n; i++ {
		s.epochSeeds[i] = prng.Derive(s.cfg.Seed, 0xE60C, uint64(i), uint64(s.epochStart)).Uint64()
		src := deriveAgentSource(s.cfg.Seed, i, s.epochStart)
		s.epochCommit[i], s.epochOps[i] = commit.Commit(src, audit.EncodeSeed(s.epochSeeds[i]))
		s.stats.Commitments++
	}
	s.addAgreement() // agree on the epoch commitment set
}

// CloseEpoch audits the open epoch (batched mode). No-op otherwise.
func (s *MixedSession) CloseEpoch() error {
	if s.cfg.Mode != AuditBatched || s.epochSeeds == nil || len(s.epochHist) == 0 {
		return nil
	}
	return s.closeEpoch()
}

func (s *MixedSession) closeEpoch() error {
	ev := audit.EpochEvidence{
		StartRound:      s.epochStart,
		Strategies:      s.epochStrats,
		History:         s.epochHist,
		SeedCommitments: s.epochCommit,
		SeedOpenings:    make([]commit.Opening, s.n),
		Revealed:        make([]bool, s.n),
	}
	for i := 0; i < s.n; i++ {
		agent := s.cfg.Agents[i]
		if !s.Excluded(i) && agent != nil && agent.Withhold != nil && agent.Withhold(s.epochStart) {
			continue
		}
		op := s.epochOps[i]
		if !s.Excluded(i) && agent != nil && agent.TamperSeedOpening != nil {
			op = agent.TamperSeedOpening(s.epochStart, op.Clone())
		}
		ev.SeedOpenings[i] = op
		ev.Revealed[i] = true
		s.stats.Reveals++
	}
	s.addAgreement() // agree on the reveal set
	verdict, err := audit.Batched(s.cfg.Elected, ev)
	if err != nil {
		return fmt.Errorf("core: batched audit: %w", err)
	}
	s.applyVerdict(verdict)
	s.epochSeeds = nil
	return nil
}

// applyVerdict records the verdict, agrees on the foul set, and punishes.
func (s *MixedSession) applyVerdict(v audit.Verdict) {
	s.verdicts = append(s.verdicts, v)
	s.addAgreement() // agree on the foul set
	if s.cfg.Scheme == nil {
		return
	}
	for _, f := range v.Fouls {
		// Agents already excluded are the executive's wards; their
		// substituted actions cannot foul, but guard anyway.
		if s.cfg.Scheme.Excluded(f.Agent) {
			continue
		}
		_ = s.cfg.Scheme.Punish(f.Agent, s.round, f.Reason.Severity())
	}
}

func (s *MixedSession) addAgreement() {
	s.stats.Agreements++
	s.stats.MessageEstimate += ICMessageEstimate(s.n, s.f)
}
