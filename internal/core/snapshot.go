package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
)

// ErrRestore is returned by Restore when the replayed session does not
// match the recorded state — a play hash or the final state digest
// diverged, meaning the configuration, seed, or engine semantics changed
// since the state was journaled.
var ErrRestore = errors.New("core: restore verification failed")

// SessionSnapshot is a driver's durable state summary at a round boundary.
// It deliberately contains no engine internals: every driver is
// deterministic in (configuration, seed) — the per-round PRNG streams are
// derived from the round counter, so the round count *is* the stream
// position — and Restore rebuilds the full state (bounded history ring,
// punishment-scheme ledgers, deviant wiring, cumulative costs, network
// state) by replaying Rounds plays. The snapshot's role is verification
// and observability: Digest proves the replayed state is byte-identical,
// and the counters let a store listing describe a session without
// reviving it.
type SessionSnapshot struct {
	Kind    SessionKind `json:"kind"`
	Players int         `json:"players"`
	// Rounds is the number of completed plays — the replay watermark.
	Rounds      int `json:"rounds"`
	Fouls       int `json:"fouls"`
	Convictions int `json:"convictions"`
	// CumulativeCost and Excluded mirror SessionStats at the snapshot.
	CumulativeCost []float64 `json:"cumulative_cost,omitempty"`
	Excluded       []bool    `json:"excluded,omitempty"`
	// Closed reports whether the session was closed when snapshotted (a
	// batched-audit mixed session audits its trailing epoch on close, so
	// closed state differs from open state at the same round).
	Closed bool `json:"closed"`
	// Digest is the canonical state digest: SHA-256 over the counters
	// above plus every retained play's transcript line. Two sessions with
	// equal digests hold byte-identical retained state.
	Digest string `json:"digest"`
}

// appendResultLine renders one play canonically (the same shape for every
// driver), so transcript hashes and state digests are stable across runs
// and processes. Floats use shortest round-trip form. The rendering is
// hand-rolled strconv rather than fmt: this line is hashed once per
// journaled play, and on a saturated single core the fmt state machine was
// a measurable slice of the durable write path. The byte shape is frozen —
// digests persisted in snapshots were computed over it (see
// TestResultLineCanonicalShape).
func appendResultLine(b []byte, res *RoundResult) []byte {
	b = append(b, "round="...)
	b = strconv.AppendInt(b, int64(res.Round), 10)
	b = append(b, " outcome="...)
	b = appendIntSlice(b, res.Outcome)
	b = append(b, " convicted="...)
	b = appendIntSlice(b, res.Convicted)
	b = append(b, " excluded="...)
	b = appendIntSlice(b, res.Excluded)
	b = append(b, " pulse="...)
	b = strconv.AppendInt(b, int64(res.Pulse), 10)
	b = append(b, " costs=["...)
	for i, c := range res.Costs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendFloat(b, c, 'g', -1, 64)
	}
	b = append(b, "] fouls=["...)
	for i, f := range res.Verdict.Fouls {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(f.Agent), 10)
		b = append(b, ':')
		b = append(b, f.Reason.String()...)
	}
	b = append(b, ']', '\n')
	return b
}

// appendIntSlice renders an int slice exactly as fmt's %v would
// ("[1 2 3]", nil and empty both "[]"), keeping the transcript line
// byte-compatible with the formatting it previously used.
func appendIntSlice(b []byte, xs []int) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return append(b, ']')
}

// HashResult returns the canonical transcript hash of one play — the value
// the write-ahead log journals per play and recovery re-checks per
// replayed play.
func HashResult(res RoundResult) string {
	sum := sha256.Sum256(appendResultLine(nil, &res))
	return hex.EncodeToString(sum[:])
}

// buildSnapshot assembles the snapshot and its state digest from a
// driver's counters and history ring. The caller holds the driver mutex.
func buildSnapshot(kind SessionKind, players, rounds, fouls, convictions int,
	cum []float64, excluded []bool, closed bool, hist *historyRing) SessionSnapshot {
	snap := SessionSnapshot{
		Kind:           kind,
		Players:        players,
		Rounds:         rounds,
		Fouls:          fouls,
		Convictions:    convictions,
		CumulativeCost: append([]float64(nil), cum...),
		Excluded:       append([]bool(nil), excluded...),
		Closed:         closed,
	}
	h := sha256.New()
	b := fmt.Appendf(nil, "kind=%s players=%d rounds=%d fouls=%d convictions=%d closed=%t\ncum=[",
		kind, players, rounds, fouls, convictions, closed)
	for i, c := range snap.CumulativeCost {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendFloat(b, c, 'g', -1, 64)
	}
	b = append(b, "] excluded="...)
	b = fmt.Appendf(b, "%v\n", snap.Excluded)
	h.Write(b)
	if hist != nil {
		first := hist.firstRetained()
		var line []byte
		for i := 0; i < hist.retained(); i++ {
			slot, _ := hist.at(first + i)
			line = appendResultLine(line[:0], slot)
			h.Write(line)
		}
	}
	snap.Digest = hex.EncodeToString(h.Sum(nil))
	return snap
}

// Snapshot implements Session for the pure driver.
func (d *pureDriver) Snapshot() SessionSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return buildSnapshot(KindPure, d.n, d.s.Round(), d.fouls, d.convictions,
		d.s.cumCost, snapshotExcluded(d.n, d.s.Excluded), d.closed, &d.s.history)
}

// Snapshot implements Session for the mixed driver.
func (d *mixedDriver) Snapshot() SessionSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	cum := make([]float64, d.n)
	for i := range cum {
		cum[i] = d.s.CumulativeCost(i)
	}
	return buildSnapshot(KindMixed, d.n, d.s.Round(), d.fouls, d.convictions,
		cum, snapshotExcluded(d.n, d.s.Excluded), d.closed, &d.history)
}

// Snapshot implements Session for the RRA driver.
func (d *rraDriver) Snapshot() SessionSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return buildSnapshot(KindRRA, d.n, d.h.RRA().Rounds(), d.seenFouls, d.convictions,
		d.cumCost, snapshotExcluded(d.n, d.h.Excluded), d.closed, &d.history)
}

// Snapshot implements Session for the distributed driver.
func (d *distDriver) Snapshot() SessionSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	var excluded []bool
	if len(d.s.Honest) > 0 {
		excluded = snapshotExcluded(d.n, d.s.Procs[d.s.Honest[0]].Excluded)
	}
	return buildSnapshot(KindDistributed, d.n, d.history.recorded(), d.fouls, d.convictions,
		d.cumCost, excluded, d.closed, &d.history)
}

// RestoreTarget tells Restore how far to replay and what to verify.
type RestoreTarget struct {
	// Rounds is the number of plays to replay (the journaled round count).
	Rounds int
	// Closed closes the restored session after replay, reproducing
	// close-time state transitions (trailing-epoch audits).
	Closed bool
	// Digest, when non-empty, is the expected state digest after replay
	// (and close, when Closed): the snapshot or close-record digest.
	Digest string
	// Hashes maps absolute round indices to expected transcript hashes
	// (the WAL tail); every replayed play with an entry is verified.
	Hashes map[int]string
}

// restoreBudgetRetries bounds how many recoverable pulse-budget errors a
// single replayed play may absorb before restoration gives up on a wedged
// distributed configuration.
const restoreBudgetRetries = 1000

// Restore rebuilds a session from its configuration and deterministically
// replays it to the target round count, verifying journaled play hashes
// along the way and the final state digest at the end. On success the
// returned session's retained state is byte-identical to the one that was
// journaled — the cross-driver determinism property the goldens pin is
// exactly what makes this sound. Any verification mismatch closes the
// half-restored session and fails with ErrRestore.
func Restore(ctx context.Context, cfg SessionConfig, target RestoreTarget) (Session, error) {
	if target.Rounds < 0 {
		return nil, fmt.Errorf("%w: negative replay target %d", ErrConfig, target.Rounds)
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (Session, error) {
		_ = s.Close()
		return nil, err
	}
	retries := 0
	for played := 0; played < target.Rounds; {
		res, err := s.Play(ctx)
		if errors.Is(err, ErrPulseBudget) {
			// Documented-recoverable: the next Play keeps stepping the
			// network, and the pulse partition does not affect the state a
			// completed play leaves behind.
			if retries++; retries > restoreBudgetRetries {
				return fail(fmt.Errorf("%w: pulse budget exhausted %d times replaying round %d",
					ErrRestore, retries, played))
			}
			continue
		}
		if err != nil {
			return fail(fmt.Errorf("core: restore replay round %d: %w", played, err))
		}
		retries = 0 // the budget is per play; a long replay may absorb many
		if want, ok := target.Hashes[res.Round]; ok {
			if got := HashResult(res); got != want {
				return fail(fmt.Errorf("%w: round %d replayed with hash %s, journal has %s",
					ErrRestore, res.Round, got, want))
			}
		}
		played++
	}
	if target.Closed {
		if err := s.Close(); err != nil {
			return fail(fmt.Errorf("core: restore close: %w", err))
		}
	}
	if target.Digest != "" {
		if got := s.Snapshot().Digest; got != target.Digest {
			return fail(fmt.Errorf("%w: state digest %s after %d rounds, journal has %s",
				ErrRestore, got, target.Rounds, target.Digest))
		}
	}
	return s, nil
}
