package sim

import "fmt"

// Graph is a simple undirected communication graph over n vertices, as in
// §4.1: "there is an edge in E between every pair of processors pi and pj
// that can directly communicate".
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// NewGraph returns an edgeless graph on n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {a, b}. Self-loops are ignored.
// Panics on out-of-range vertices: topology construction is programmer
// controlled.
func (g *Graph) AddEdge(a, b int) {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("sim: edge (%d,%d) out of range for n=%d", a, b, g.n))
	}
	if a == b {
		return
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// RemoveEdge deletes the undirected edge {a, b} if present.
func (g *Graph) RemoveEdge(a, b int) {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
}

// RemoveVertexEdges disconnects vertex v entirely — the executive service's
// "disconnect from the network" punishment (§3.4).
func (g *Graph) RemoveVertexEdges(v int) {
	if v < 0 || v >= g.n {
		return
	}
	for nb := range g.adj[v] {
		delete(g.adj[nb], v)
	}
	g.adj[v] = make(map[int]struct{})
}

// HasEdge reports whether {a, b} is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		return false
	}
	_, ok := g.adj[a][b]
	return ok
}

// Neighbors returns the sorted-free neighbour list of v (iteration order is
// unspecified; callers needing determinism must sort).
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for nb := range g.adj[v] {
		out = append(out, nb)
	}
	return out
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for v, nbs := range g.adj {
		for nb := range nbs {
			if v < nb {
				c.AddEdge(v, nb)
			}
		}
	}
	return c
}

// FullMesh returns the complete graph K_n — the default topology, which
// trivially satisfies the paper's 2f+1 vertex-disjoint-paths requirement
// for f < n/2.
func FullMesh(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Ring returns the cycle C_n.
func Ring(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Line returns the path P_n.
func Line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Connected reports whether the graph is connected ("the communication
// graph is not partitioned", §4.1 / footnote 2).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for nb := range g.adj[v] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == g.n
}

// VertexDisjointPaths returns the maximum number of internally
// vertex-disjoint paths between s and t (Menger's theorem), computed by
// unit-capacity max-flow on the vertex-split digraph. Footnote 2 requires
// 2f+1 such paths between every pair for resilience against f Byzantine
// processors.
func (g *Graph) VertexDisjointPaths(s, t int) int {
	if s == t || s < 0 || t < 0 || s >= g.n || t >= g.n {
		return 0
	}
	if g.HasEdge(s, t) {
		// The direct edge contributes one path; remove it, count the
		// rest, add it back conceptually.
		h := g.Clone()
		h.RemoveEdge(s, t)
		return 1 + h.VertexDisjointPaths(s, t)
	}
	// Vertex splitting: node v becomes v_in (2v) → v_out (2v+1) with
	// capacity 1, except s and t which have infinite vertex capacity.
	// Edges get capacity 1 in each direction between out/in nodes.
	type edge struct {
		to, cap, rev int
	}
	size := 2 * g.n
	graph := make([][]edge, size)
	addArc := func(u, v, c int) {
		graph[u] = append(graph[u], edge{to: v, cap: c, rev: len(graph[v])})
		graph[v] = append(graph[v], edge{to: u, cap: 0, rev: len(graph[u]) - 1})
	}
	const infCap = 1 << 30
	for v := 0; v < g.n; v++ {
		c := 1
		if v == s || v == t {
			c = infCap
		}
		addArc(2*v, 2*v+1, c)
	}
	for v := 0; v < g.n; v++ {
		for nb := range g.adj[v] {
			addArc(2*v+1, 2*nb, 1)
		}
	}
	source, sink := 2*s+1, 2*t
	// BFS-augmenting max-flow (Edmonds–Karp); capacities are tiny.
	flow := 0
	for {
		parent := make([]int, size)
		parentEdge := make([]int, size)
		for i := range parent {
			parent[i] = -1
		}
		parent[source] = source
		queue := []int{source}
		for len(queue) > 0 && parent[sink] == -1 {
			u := queue[0]
			queue = queue[1:]
			for ei, e := range graph[u] {
				if e.cap > 0 && parent[e.to] == -1 {
					parent[e.to] = u
					parentEdge[e.to] = ei
					queue = append(queue, e.to)
				}
			}
		}
		if parent[sink] == -1 {
			return flow
		}
		// Augment by 1 (unit capacities dominate).
		v := sink
		for v != source {
			u := parent[v]
			e := &graph[u][parentEdge[v]]
			e.cap--
			graph[v][e.rev].cap++
			v = u
		}
		flow++
	}
}

// ToleratesByzantine reports whether the topology provides 2f+1 vertex
// disjoint paths between every pair of processors — the paper's stated
// connectivity requirement for tolerating f Byzantine processors.
func (g *Graph) ToleratesByzantine(f int) bool {
	need := 2*f + 1
	for s := 0; s < g.n; s++ {
		for t := s + 1; t < g.n; t++ {
			if g.VertexDisjointPaths(s, t) < need {
				return false
			}
		}
	}
	return true
}
