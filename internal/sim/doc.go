// Package sim implements the paper's §4.1 system model: a synchronous
// distributed system of communicating processors. A common pulse triggers
// each step; a step sends messages to neighbours, receives everything the
// neighbours sent on the same pulse, and updates local state. The global
// configuration is the vector of processor states, observed at pulse
// boundaries when no messages are in transit.
//
// The package provides two execution engines with identical semantics:
//
//   - Lockstep: a deterministic single-goroutine loop (the reference model;
//     all experiments use it).
//   - Concurrent: a persistent worker pool steps the processors of each
//     pulse in parallel behind a pulse barrier, using the cores the host
//     has. A property test asserts both engines produce identical
//     executions, pulse for pulse and message for message.
//
// Both engines recycle the per-destination inbox buffers between pulses,
// so a steady-state pulse allocates only what the processes themselves
// allocate. Two contracts make that sound: a Process must not retain its
// inbox slice (nor an Adversary its honestOutbox) beyond the call that
// received it, and outbox slices are owned by the producing process again
// as soon as the pulse completes.
//
// Byzantine processors are modelled by wrapping an honest process with an
// adversary that may replace its outbox arbitrarily (including equivocating
// — sending different values to different neighbours). Transient faults are
// modelled by corrupting processor state between pulses, which is exactly
// the self-stabilization adversary of §4.1.
package sim
