package sim

import (
	"errors"
	"testing"

	"gameauthority/internal/prng"
)

// echoProc broadcasts its current counter every pulse and sums everything
// it hears. Deterministic, Corruptible — a minimal protocol for engine
// tests.
type echoProc struct {
	id      int
	counter int
	heard   []int // sum of payloads heard per pulse
}

func (p *echoProc) ID() int { return p.id }

func (p *echoProc) Step(pulse int, inbox []Message) []Message {
	sum := 0
	for _, m := range inbox {
		sum += m.Payload.(int)
	}
	p.heard = append(p.heard, sum)
	p.counter++
	out := make([]Message, 0, 4)
	for to := 0; to < 4; to++ {
		out = append(out, Message{To: to, Payload: p.counter})
	}
	return out
}

func (p *echoProc) Corrupt(entropy func() uint64) {
	p.counter = int(entropy() % 1000)
	p.heard = nil
}

func newEchoNet(t *testing.T, topo *Graph) (*Network, []*echoProc) {
	t.Helper()
	procs := make([]Process, 4)
	raw := make([]*echoProc, 4)
	for i := range procs {
		raw[i] = &echoProc{id: i}
		procs[i] = raw[i]
	}
	nw, err := NewNetwork(procs, topo)
	if err != nil {
		t.Fatal(err)
	}
	return nw, raw
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, nil); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := NewNetwork([]Process{nil}, nil); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("nil proc: err = %v", err)
	}
	// Wrong ID.
	if _, err := NewNetwork([]Process{&echoProc{id: 5}}, nil); !errors.Is(err, ErrBadProcess) {
		t.Fatalf("wrong id: err = %v", err)
	}
	// Topology size mismatch.
	if _, err := NewNetwork([]Process{&echoProc{id: 0}}, FullMesh(3)); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("topo mismatch: err = %v", err)
	}
}

func TestLockstepDelaysDeliveryOnePulse(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	nw.StepLockstep()
	// Pulse 0: inbox empty everywhere.
	for i, p := range raw {
		if p.heard[0] != 0 {
			t.Fatalf("proc %d heard %d at pulse 0, want 0", i, p.heard[0])
		}
	}
	nw.StepLockstep()
	// Pulse 1: everyone hears 4 × counter=1 (incl. self-delivery).
	for i, p := range raw {
		if p.heard[1] != 4 {
			t.Fatalf("proc %d heard %d at pulse 1, want 4", i, p.heard[1])
		}
	}
	if nw.Pulse() != 2 {
		t.Fatalf("pulse = %d, want 2", nw.Pulse())
	}
}

func TestTopologyFiltersMessages(t *testing.T) {
	// Line topology: processor 0 and 3 are not adjacent; messages between
	// them are dropped.
	nw, raw := newEchoNet(t, Line(4))
	nw.Run(2)
	// At pulse 1, proc 0 hears: itself (1) + neighbour 1 (1) = 2.
	if raw[0].heard[1] != 2 {
		t.Fatalf("proc 0 heard %d, want 2 (self + one neighbour)", raw[0].heard[1])
	}
	// Middle proc 1 hears: self + procs 0 and 2 = 3.
	if raw[1].heard[1] != 3 {
		t.Fatalf("proc 1 heard %d, want 3", raw[1].heard[1])
	}
	if nw.Stats.MessagesDropped == 0 {
		t.Fatal("expected drops on non-adjacent sends")
	}
}

func TestByzantineInterception(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	// Processor 3 lies: doubles its payload to even destinations, silent
	// to odd ones (equivocation).
	nw.SetByzantine(3, EquivocateAdversary(func(to int, payload any) any {
		if to%2 == 0 {
			return payload.(int) * 100
		}
		return payload
	}))
	nw.Run(2)
	// Pulse 1: even procs hear 3 honest (3) + 100; odd hear 4.
	if raw[0].heard[1] != 3+100 {
		t.Fatalf("proc 0 heard %d, want 103", raw[0].heard[1])
	}
	if raw[1].heard[1] != 4 {
		t.Fatalf("proc 1 heard %d, want 4", raw[1].heard[1])
	}
	ids := nw.ByzantineIDs()
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("ByzantineIDs = %v", ids)
	}
	if h := nw.HonestIDs(); len(h) != 3 {
		t.Fatalf("HonestIDs = %v", h)
	}
	nw.SetByzantine(3, nil)
	if len(nw.ByzantineIDs()) != 0 {
		t.Fatal("SetByzantine(nil) did not clear")
	}
}

func TestSilentAdversary(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	nw.SetByzantine(2, SilentAdversary())
	nw.Run(2)
	// Everyone hears only 3 counters (silent proc 2 dropped).
	for i, p := range raw {
		if p.heard[1] != 3 {
			t.Fatalf("proc %d heard %d, want 3", i, p.heard[1])
		}
	}
}

func TestCorruptScramblesStateAndWipesTransit(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	nw.Run(3)
	src := prng.New(7)
	nw.Corrupt(src.Uint64)
	for i, p := range raw {
		if len(p.heard) != 0 {
			t.Fatalf("proc %d heard not reset", i)
		}
	}
	// After corruption, pulse 3's inboxes must be empty (no in-transit).
	nw.StepLockstep()
	for i, p := range raw {
		if p.heard[0] != 0 {
			t.Fatalf("proc %d heard %d right after corruption, want 0", i, p.heard[0])
		}
	}
}

func TestConcurrentMatchesLockstep(t *testing.T) {
	mk := func() (*Network, []*echoProc) {
		procs := make([]Process, 4)
		raw := make([]*echoProc, 4)
		for i := range procs {
			raw[i] = &echoProc{id: i}
			procs[i] = raw[i]
		}
		nw, err := NewNetwork(procs, Ring(4))
		if err != nil {
			t.Fatal(err)
		}
		return nw, raw
	}
	a, rawA := mk()
	b, rawB := mk()
	a.Run(10)
	b.RunConcurrent(10)
	for i := range rawA {
		if len(rawA[i].heard) != len(rawB[i].heard) {
			t.Fatalf("proc %d: history lengths differ", i)
		}
		for p := range rawA[i].heard {
			if rawA[i].heard[p] != rawB[i].heard[p] {
				t.Fatalf("proc %d pulse %d: lockstep %d != concurrent %d",
					i, p, rawA[i].heard[p], rawB[i].heard[p])
			}
		}
	}
}

func TestBroadcastHelper(t *testing.T) {
	topo := Line(3)
	out := Broadcast(topo, 1, "x")
	// Proc 1 on a line broadcasts to 0, itself, and 2.
	if len(out) != 3 {
		t.Fatalf("broadcast fan-out = %d, want 3", len(out))
	}
	out = Broadcast(topo, 0, "x")
	if len(out) != 2 { // self + neighbour 1
		t.Fatalf("endpoint fan-out = %d, want 2", len(out))
	}
}

func TestStatsCount(t *testing.T) {
	nw, _ := newEchoNet(t, nil)
	nw.Run(2)
	// 4 procs × 4 destinations × 2 pulses, all delivered on full mesh.
	if nw.Stats.MessagesSent != 32 {
		t.Fatalf("MessagesSent = %d, want 32", nw.Stats.MessagesSent)
	}
	if nw.Stats.Pulses != 2 {
		t.Fatalf("Pulses = %d, want 2", nw.Stats.Pulses)
	}
}

func TestDropAdversary(t *testing.T) {
	adv := DropAdversary(3, 1.0) // drop everything
	out := adv.Intercept(0, 0, []Message{{To: 1, Payload: 1}, {To: 2, Payload: 2}})
	if len(out) != 0 {
		t.Fatalf("p=1.0 kept %d messages", len(out))
	}
	adv = DropAdversary(3, 0.0)
	out = adv.Intercept(0, 0, []Message{{To: 1, Payload: 1}})
	if len(out) != 1 {
		t.Fatalf("p=0.0 dropped messages")
	}
}

func TestReplayAdversary(t *testing.T) {
	adv := ReplayAdversary()
	first := adv.Intercept(0, 0, []Message{{To: 1, Payload: "a"}})
	if len(first) != 0 {
		t.Fatalf("first pulse should replay nothing, got %d", len(first))
	}
	second := adv.Intercept(1, 0, []Message{{To: 1, Payload: "b"}})
	if len(second) != 1 || second[0].Payload.(string) != "a" {
		t.Fatalf("second pulse should replay 'a', got %v", second)
	}
}

func TestCorruptPayloadAdversary(t *testing.T) {
	adv := CorruptPayloadAdversary(1, 1.0, func(to int, p any) any { return -1 })
	out := adv.Intercept(0, 0, []Message{{To: 1, Payload: 5}})
	if out[0].Payload.(int) != -1 {
		t.Fatal("payload not rewritten at p=1.0")
	}
}

// runEngines builds two identical echo networks, drives one per engine
// configuration, and asserts identical executions (state histories and
// traffic stats).
func assertEnginesAgree(t *testing.T, topo func() *Graph, byz func(nw *Network), pulses int, workers int) {
	t.Helper()
	mk := func() (*Network, []*echoProc) {
		procs := make([]Process, 4)
		raw := make([]*echoProc, 4)
		for i := range procs {
			raw[i] = &echoProc{id: i}
			procs[i] = raw[i]
		}
		nw, err := NewNetwork(procs, topo())
		if err != nil {
			t.Fatal(err)
		}
		if byz != nil {
			byz(nw)
		}
		return nw, raw
	}
	a, rawA := mk()
	b, rawB := mk()
	a.Run(pulses) // lockstep reference
	b.SetWorkers(workers)
	defer b.Close()
	b.Run(pulses)
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: lockstep %+v, pool(%d) %+v", a.Stats, workers, b.Stats)
	}
	for i := range rawA {
		if len(rawA[i].heard) != len(rawB[i].heard) {
			t.Fatalf("proc %d: history lengths differ", i)
		}
		for p := range rawA[i].heard {
			if rawA[i].heard[p] != rawB[i].heard[p] {
				t.Fatalf("proc %d pulse %d: lockstep %d != pool(%d) %d",
					i, p, rawA[i].heard[p], workers, rawB[i].heard[p])
			}
		}
	}
}

// TestWorkerPoolMatchesLockstep is the lockstep-equivalence property test
// over the worker-pool engine: every topology × adversary × pool-width
// combination must replay the lockstep execution exactly.
func TestWorkerPoolMatchesLockstep(t *testing.T) {
	topos := map[string]func() *Graph{
		"mesh": func() *Graph { return FullMesh(4) },
		"ring": func() *Graph { return Ring(4) },
		"line": func() *Graph { return Line(4) },
	}
	advs := map[string]func(nw *Network){
		"honest": nil,
		"equivocate": func(nw *Network) {
			nw.SetByzantine(3, EquivocateAdversary(func(to int, payload any) any {
				if to%2 == 0 {
					return payload.(int) * 100
				}
				return payload
			}))
		},
		"silent": func(nw *Network) { nw.SetByzantine(2, SilentAdversary()) },
	}
	for tn, topo := range topos {
		for an, adv := range advs {
			for _, workers := range []int{2, 3, 8} {
				t.Run(tn+"/"+an, func(t *testing.T) {
					assertEnginesAgree(t, topo, adv, 25, workers)
				})
			}
		}
	}
}

func TestStepDispatchAndClose(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	nw.SetWorkers(3)
	nw.Step() // pool engine
	nw.Close()
	nw.Step() // pool recreated on demand
	nw.Close()
	nw.Close() // idempotent
	nw.SetWorkers(1)
	nw.Step() // lockstep again
	if nw.Pulse() != 3 {
		t.Fatalf("pulse = %d, want 3", nw.Pulse())
	}
	for i, p := range raw {
		if len(p.heard) != 3 {
			t.Fatalf("proc %d stepped %d times, want 3", i, len(p.heard))
		}
	}
}

func TestRecycledBuffersSurviveCorrupt(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	nw.Run(5)
	src := prng.New(11)
	nw.Corrupt(src.Uint64)
	nw.Run(2)
	// Pulse right after corruption: empty inboxes (in-transit wiped).
	for i, p := range raw {
		if p.heard[0] != 0 {
			t.Fatalf("proc %d heard %d right after corruption, want 0", i, p.heard[0])
		}
	}
	// Next pulse: full mesh of 4 counters again.
	for i, p := range raw {
		if p.heard[1] == 0 {
			t.Fatalf("proc %d heard nothing one pulse after corruption", i)
		}
	}
}

// TestSteadyStatePulseAllocations pins the engine-level allocation
// behaviour the message-arena work bought: a steady-state echo pulse
// allocates only the processes' own outbox/heard appends, not fresh
// network buffers. The bound is loose (amortized slice growth) but fails
// loudly if per-pulse make() calls return to the engine.
func TestSteadyStatePulseAllocations(t *testing.T) {
	nw, _ := newEchoNet(t, nil)
	nw.Run(50) // warm buffers and process state
	allocs := testing.AllocsPerRun(200, func() { nw.StepLockstep() })
	// echoProc itself appends to heard and rebuilds its outbox each pulse
	// (4 procs × ~2 allocs amortized); the engine must add ~nothing.
	if allocs > 12 {
		t.Fatalf("steady-state pulse allocates %v times; engine buffers are not being recycled", allocs)
	}
}

func TestProcessAccessor(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	for i, want := range raw {
		if got := nw.Process(i); got != Process(want) {
			t.Fatalf("Process(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSetWorkersClampsAndReconfigures(t *testing.T) {
	nw, raw := newEchoNet(t, nil)
	nw.SetWorkers(-3) // negative clamps to auto (0)
	nw.Step()         // lockstep: auto engages only via StepConcurrent
	nw.SetWorkers(0)  // same effective value: no pool churn
	nw.SetWorkers(2)
	nw.SetWorkers(2) // reconfiguring to the current width is a no-op
	nw.Step()        // pool engine
	if nw.Pulse() != 2 {
		t.Fatalf("pulse = %d, want 2", nw.Pulse())
	}
	for i, p := range raw {
		if len(p.heard) != 2 {
			t.Fatalf("proc %d stepped %d times, want 2", i, len(p.heard))
		}
	}
}
