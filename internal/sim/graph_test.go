package sim

import "testing"

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree = %d, want 2", g.Degree(1))
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
	// Self loops ignored.
	g.AddEdge(2, 2)
	if g.HasEdge(2, 2) {
		t.Fatal("self loop stored")
	}
	// Out-of-range HasEdge is false, not a panic.
	if g.HasEdge(-1, 0) || g.HasEdge(0, 9) {
		t.Fatal("out-of-range edge reported true")
	}
}

func TestRemoveVertexEdges(t *testing.T) {
	g := FullMesh(4)
	g.RemoveVertexEdges(2)
	if g.Degree(2) != 0 {
		t.Fatal("vertex still has edges")
	}
	for v := 0; v < 4; v++ {
		if g.HasEdge(v, 2) {
			t.Fatalf("edge (%d,2) survived", v)
		}
	}
	// Rest of the mesh intact.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 3) {
		t.Fatal("unrelated edges removed")
	}
}

func TestConnected(t *testing.T) {
	if !FullMesh(5).Connected() {
		t.Fatal("K5 not connected")
	}
	if !Ring(5).Connected() {
		t.Fatal("C5 not connected")
	}
	g := NewGraph(3)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !NewGraph(0).Connected() {
		t.Fatal("empty graph should be trivially connected")
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		s, t int
		want int
	}{
		{"K4", FullMesh(4), 0, 3, 3},
		{"K5", FullMesh(5), 1, 4, 4},
		{"ring5", Ring(5), 0, 2, 2},
		{"line4", Line(4), 0, 3, 1},
		{"same vertex", FullMesh(3), 1, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.VertexDisjointPaths(tc.s, tc.t); got != tc.want {
				t.Fatalf("paths(%d,%d) = %d, want %d", tc.s, tc.t, got, tc.want)
			}
		})
	}
}

func TestVertexDisjointPathsBottleneck(t *testing.T) {
	// Two K3 "lobes" joined through a single cut vertex 3:
	// 0-1-2 fully connected, 4-5-6 fully connected, both lobes attach to 3.
	g := NewGraph(7)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {4, 5}, {4, 6}, {5, 6},
		{0, 3}, {1, 3}, {2, 3}, {4, 3}, {5, 3}, {6, 3}} {
		g.AddEdge(e[0], e[1])
	}
	if got := g.VertexDisjointPaths(0, 6); got != 1 {
		t.Fatalf("through cut vertex: paths = %d, want 1", got)
	}
}

func TestToleratesByzantine(t *testing.T) {
	// K_n gives n−1 disjoint paths; 2f+1 ≤ n−1 ⟺ f ≤ (n−2)/2.
	if !FullMesh(7).ToleratesByzantine(2) { // need 5 ≤ 6
		t.Fatal("K7 should tolerate f=2")
	}
	if FullMesh(4).ToleratesByzantine(2) { // need 5 > 3
		t.Fatal("K4 cannot tolerate f=2")
	}
	if !Ring(5).ToleratesByzantine(0) { // need 1 path
		t.Fatal("C5 should tolerate f=0")
	}
	if Ring(5).ToleratesByzantine(1) { // need 3 > 2
		t.Fatal("C5 cannot tolerate f=1")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Ring(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.N() != g.N() {
		t.Fatal("clone size mismatch")
	}
}

func TestNeighbors(t *testing.T) {
	g := Line(3)
	nbs := g.Neighbors(1)
	if len(nbs) != 2 {
		t.Fatalf("neighbors(1) = %v, want 2 entries", nbs)
	}
}

func TestGraphRangeGuards(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	// Mutating queries degrade gracefully out of range: topology edits from
	// sanctions target vertices that may already be excluded.
	g.RemoveEdge(-1, 5)
	g.RemoveEdge(0, 9)
	g.RemoveVertexEdges(-2)
	g.RemoveVertexEdges(7)
	if !g.HasEdge(0, 1) {
		t.Fatal("in-range edge lost to out-of-range mutations")
	}
	// Construction is programmer-controlled: out-of-range AddEdge panics.
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge must panic")
		}
	}()
	g.AddEdge(0, 9)
}
