package sim

import "gameauthority/internal/prng"

// Standard adversaries used across experiments. All are deterministic given
// their seed so every run is replayable.

// SilentAdversary drops all outgoing traffic (a crashed/muted processor —
// the weakest Byzantine behaviour).
func SilentAdversary() Adversary {
	return AdversaryFunc(func(int, int, []Message) []Message { return nil })
}

// PassthroughAdversary forwards honest traffic unchanged; useful as a
// control in experiments and for "selfish but protocol-following" nodes.
func PassthroughAdversary() Adversary {
	return AdversaryFunc(func(_ int, _ int, out []Message) []Message { return out })
}

// DropAdversary drops each message independently with probability p.
func DropAdversary(seed uint64, p float64) Adversary {
	src := prng.New(seed)
	return AdversaryFunc(func(_ int, _ int, out []Message) []Message {
		kept := out[:0:0]
		for _, m := range out {
			if src.Float64() >= p {
				kept = append(kept, m)
			}
		}
		return kept
	})
}

// CorruptPayloadAdversary replaces each outgoing payload using rewrite with
// probability p (rewrite receives the destination so it can equivocate).
func CorruptPayloadAdversary(seed uint64, p float64, rewrite func(to int, payload any) any) Adversary {
	src := prng.New(seed)
	return AdversaryFunc(func(_ int, _ int, out []Message) []Message {
		res := make([]Message, len(out))
		for i, m := range out {
			if src.Float64() < p {
				m.Payload = rewrite(m.To, m.Payload)
			}
			res[i] = m
		}
		return res
	})
}

// EquivocateAdversary rewrites every outgoing payload as a function of the
// destination — the classic two-faced Byzantine behaviour that Byzantine
// agreement must defeat.
func EquivocateAdversary(rewrite func(to int, payload any) any) Adversary {
	return AdversaryFunc(func(_ int, _ int, out []Message) []Message {
		res := make([]Message, len(out))
		for i, m := range out {
			m.Payload = rewrite(m.To, m.Payload)
			res[i] = m
		}
		return res
	})
}

// ReplayAdversary buffers the previous pulse's outbox and sends it instead
// of the current one (stale state attack against self-stabilization).
func ReplayAdversary() Adversary {
	var prev []Message
	return AdversaryFunc(func(_ int, _ int, out []Message) []Message {
		res := prev
		prev = append([]Message(nil), out...)
		return res
	})
}
