package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Common errors.
var (
	ErrBadTopology = errors.New("sim: invalid topology")
	ErrBadProcess  = errors.New("sim: invalid process configuration")
)

// Message is a point-to-point payload delivered on the pulse after it was
// sent. Payload types are protocol-defined; processes type-switch on them.
type Message struct {
	From, To int
	Payload  any
}

// Process is a synchronous protocol participant. Step is called once per
// pulse with all messages addressed to it from the previous pulse, and
// returns the messages to deliver on the next pulse.
//
// Step must not retain the inbox slice beyond the call (its backing array
// is recycled for a later pulse); payload values may be retained freely.
// The returned outbox is owned by the network until the pulse completes,
// after which the process may reuse its backing array.
type Process interface {
	// ID returns the processor's identifier (its index in the network).
	ID() int
	// Step executes one synchronous step.
	Step(pulse int, inbox []Message) (outbox []Message)
}

// Corruptible is implemented by processes whose state the transient-fault
// injector can scramble (§4.1's arbitrary starting configuration).
type Corruptible interface {
	// Corrupt sets the process state to arbitrary values derived from the
	// given 64-bit entropy source values.
	Corrupt(entropy func() uint64)
}

// Adversary intercepts a Byzantine processor's traffic. Given the honest
// outbox it may return anything: drop, forge, equivocate.
type Adversary interface {
	// Intercept rewrites the outbox of processor id at the given pulse.
	Intercept(pulse int, id int, honestOutbox []Message) []Message
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(pulse int, id int, honestOutbox []Message) []Message

// Intercept implements Adversary.
func (f AdversaryFunc) Intercept(pulse int, id int, honestOutbox []Message) []Message {
	return f(pulse, id, honestOutbox)
}

// Network is a synchronous network of processes. The zero value is not
// usable; construct with NewNetwork.
type Network struct {
	procs     []Process
	topo      *Graph
	byz       map[int]Adversary
	pulse     int
	inTransit [][]Message // messages to deliver at the next pulse, per destination
	spare     [][]Message // recycled inbox buffers from the previous pulse
	outboxes  [][]Message // per-pulse outbox headers, reused

	// Concurrent-engine state: workers is the configured pool width
	// (0 = auto, ≤1 = lockstep semantics on the caller's goroutine);
	// pool is created lazily and released by Close. stepFn is the
	// persistent per-processor job closure (reading the current pulse's
	// inboxes through stepInboxes), so a concurrent pulse allocates
	// nothing on the scheduling path.
	workers     int
	pool        *workerPool
	stepFn      func(i int)
	stepInboxes [][]Message

	// Stats counts traffic for the E-AUD overhead experiments.
	Stats Stats
}

// Stats accumulates message-level accounting.
type Stats struct {
	MessagesSent    int64
	MessagesDropped int64
	Pulses          int64
}

// NewNetwork builds a network over the given processes. topo may be nil for
// a full mesh. Process IDs must equal their index.
func NewNetwork(procs []Process, topo *Graph) (*Network, error) {
	n := len(procs)
	if n == 0 {
		return nil, fmt.Errorf("%w: no processes", ErrBadProcess)
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("%w: nil process at %d", ErrBadProcess, i)
		}
		if p.ID() != i {
			return nil, fmt.Errorf("%w: process at index %d reports ID %d", ErrBadProcess, i, p.ID())
		}
	}
	if topo == nil {
		topo = FullMesh(n)
	}
	if topo.N() != n {
		return nil, fmt.Errorf("%w: graph has %d vertices for %d processes", ErrBadTopology, topo.N(), n)
	}
	return &Network{
		procs:     procs,
		topo:      topo,
		byz:       make(map[int]Adversary),
		inTransit: make([][]Message, n),
		outboxes:  make([][]Message, n),
	}, nil
}

// N returns the number of processors.
func (nw *Network) N() int { return len(nw.procs) }

// Pulse returns the number of completed pulses.
func (nw *Network) Pulse() int { return nw.pulse }

// Process returns the i-th process (for state inspection by experiments).
func (nw *Network) Process(i int) Process { return nw.procs[i] }

// SetByzantine installs an adversary on processor id. Passing nil removes
// it. Byzantine membership is fixed per experiment run, matching the static
// Byzantine model of the paper.
func (nw *Network) SetByzantine(id int, adv Adversary) {
	if adv == nil {
		delete(nw.byz, id)
		return
	}
	nw.byz[id] = adv
}

// ByzantineIDs returns the sorted identifiers of Byzantine processors.
func (nw *Network) ByzantineIDs() []int {
	ids := make([]int, 0, len(nw.byz))
	for id := range nw.byz {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// HonestIDs returns the sorted identifiers of honest processors.
func (nw *Network) HonestIDs() []int {
	ids := make([]int, 0, nw.N())
	for i := range nw.procs {
		if _, bad := nw.byz[i]; !bad {
			ids = append(ids, i)
		}
	}
	return ids
}

// Corrupt invokes the transient-fault injector on every Corruptible process
// (honest and Byzantine alike) and wipes in-transit messages — producing an
// arbitrary configuration as in §4.1.
func (nw *Network) Corrupt(entropy func() uint64) {
	for _, p := range nw.procs {
		if c, ok := p.(Corruptible); ok {
			c.Corrupt(entropy)
		}
	}
	for i := range nw.inTransit {
		nw.inTransit[i] = nil
	}
}

// StepLockstep advances the system by one pulse deterministically:
// every process receives its pending inbox, produces an outbox (possibly
// rewritten by its adversary), and messages are filtered by the topology.
func (nw *Network) StepLockstep() {
	inboxes := nw.beginPulse()
	for i, p := range nw.procs {
		nw.outboxes[i] = nw.stepOne(i, p, inboxes[i])
	}
	nw.finishPulse(inboxes)
}

// beginPulse swaps the pending in-transit buffers out as this pulse's
// inboxes and installs recycled (or fresh) empty buffers for the next
// pulse's traffic.
func (nw *Network) beginPulse() [][]Message {
	inboxes := nw.inTransit
	next := nw.spare
	if next == nil {
		next = make([][]Message, nw.N())
	}
	for i := range next {
		next[i] = next[i][:0]
	}
	nw.inTransit = next
	nw.spare = nil
	return inboxes
}

// stepOne runs one processor's step, applying its adversary if Byzantine.
func (nw *Network) stepOne(i int, p Process, inbox []Message) []Message {
	out := p.Step(nw.pulse, inbox)
	if adv, bad := nw.byz[i]; bad {
		out = adv.Intercept(nw.pulse, i, out)
	}
	return out
}

// finishPulse routes the pulse's outboxes, recycles the consumed inbox
// buffers, and advances the pulse counter.
func (nw *Network) finishPulse(inboxes [][]Message) {
	nw.route(nw.outboxes)
	for i := range nw.outboxes {
		nw.outboxes[i] = nil // outbox ownership returns to the process
	}
	nw.spare = inboxes
	nw.pulse++
	nw.Stats.Pulses++
}

// route validates and enqueues outgoing messages for next-pulse delivery.
func (nw *Network) route(outboxes [][]Message) {
	for from, out := range outboxes {
		for _, m := range out {
			m.From = from // processes cannot spoof the source: links are authenticated per §4.1
			// Self-delivery is always permitted (a processor hears its
			// own broadcast); other destinations need a topology edge.
			if m.To < 0 || m.To >= nw.N() || (m.To != from && !nw.topo.HasEdge(from, m.To)) {
				nw.Stats.MessagesDropped++
				continue
			}
			nw.inTransit[m.To] = append(nw.inTransit[m.To], m)
			nw.Stats.MessagesSent++
		}
	}
}

// Run advances the system by pulses pulses using the configured engine
// (lockstep unless SetWorkers enabled the pool).
func (nw *Network) Run(pulses int) {
	for i := 0; i < pulses; i++ {
		nw.Step()
	}
}

// Step advances the system by one pulse on the configured engine. Both
// engines produce identical executions; SetWorkers only chooses how the
// processors of a pulse are scheduled onto OS threads.
func (nw *Network) Step() {
	if nw.effectiveWorkers() > 1 {
		nw.StepConcurrent()
	} else {
		nw.StepLockstep()
	}
}

// SetWorkers configures the concurrent pulse engine: w > 1 steps each
// pulse's processors on a persistent pool of min(w, n) workers; w == 1
// pins the lockstep engine; w == 0 (the default) picks lockstep for Step
// but lets StepConcurrent/RunConcurrent auto-size the pool to
// min(GOMAXPROCS, n). Call before running; reconfiguring releases any
// existing pool.
func (nw *Network) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	if w == nw.workers {
		return
	}
	nw.workers = w
	nw.Close()
}

// effectiveWorkers resolves the pool width Step would use.
func (nw *Network) effectiveWorkers() int {
	w := nw.workers
	if w == 0 {
		return 1 // auto engages only via StepConcurrent/RunConcurrent
	}
	if w > nw.N() {
		w = nw.N()
	}
	return w
}

// autoWorkers resolves the pool width for explicit concurrent runs.
func (nw *Network) autoWorkers() int {
	w := nw.workers
	if w <= 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nw.N() {
		w = nw.N()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// StepConcurrent advances the system by one pulse with the worker pool,
// creating it on first use. Execution is identical to StepLockstep: the
// pool only parallelizes the independent per-processor Step calls; routing
// stays sequential and deterministic.
func (nw *Network) StepConcurrent() {
	w := nw.autoWorkers()
	if nw.pool == nil || nw.pool.workers != w {
		nw.Close()
		nw.pool = newWorkerPool(w)
	}
	if nw.stepFn == nil {
		nw.stepFn = func(i int) {
			nw.outboxes[i] = nw.stepOne(i, nw.procs[i], nw.stepInboxes[i])
		}
	}
	inboxes := nw.beginPulse()
	nw.stepInboxes = inboxes
	nw.pool.run(nw.N(), nw.stepFn)
	nw.stepInboxes = nil
	nw.finishPulse(inboxes)
}

// RunConcurrent advances the system by pulses pulses on the worker pool.
// Semantics are identical to Run. The pool persists for later steps;
// Close releases it.
func (nw *Network) RunConcurrent(pulses int) {
	for i := 0; i < pulses; i++ {
		nw.StepConcurrent()
	}
}

// Close releases the worker pool's goroutines. It is idempotent and the
// network remains usable afterwards (a fresh pool is created on demand).
func (nw *Network) Close() {
	if nw.pool != nil {
		nw.pool.close()
		nw.pool = nil
	}
}

// workerPool is a fixed set of goroutines that execute one pulse's
// per-processor steps. Work is distributed by an atomic cursor so uneven
// step costs (e.g. one processor running a heavy audit) balance across
// workers. The job state lives on the pool itself — publishing it through
// the signal-token channel sends (which order-before the receives) keeps
// per-pulse dispatch allocation-free.
type workerPool struct {
	workers int
	jobs    chan struct{} // one wake token per worker per pulse
	n       int
	next    atomic.Int64
	fn      func(i int)
	wg      sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{workers: workers, jobs: make(chan struct{}, workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for range p.jobs {
				for {
					i := int(p.next.Add(1) - 1)
					if i >= p.n {
						break
					}
					p.fn(i)
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn(0..n-1) across the pool and blocks until all complete —
// the pulse barrier. The field writes below happen-before every worker's
// token receive; wg.Wait happens-after their last read, so reusing the
// fields on the next pulse is race-free.
func (p *workerPool) run(n int, fn func(i int)) {
	p.n = n
	p.fn = fn
	p.next.Store(0)
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
}

func (p *workerPool) close() { close(p.jobs) }

// Broadcast builds one message per neighbour of from in the topology,
// carrying payload. Helper used by most protocols (includes self-loop
// delivery so a processor hears itself, which simplifies quorum counting).
func Broadcast(topo *Graph, from int, payload any) []Message {
	out := make([]Message, 0, topo.N())
	for to := 0; to < topo.N(); to++ {
		if to == from || topo.HasEdge(from, to) {
			out = append(out, Message{From: from, To: to, Payload: payload})
		}
	}
	return out
}
