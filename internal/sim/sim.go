// Package sim implements the paper's §4.1 system model: a synchronous
// distributed system of communicating processors. A common pulse triggers
// each step; a step sends messages to neighbours, receives everything the
// neighbours sent on the same pulse, and updates local state. The global
// configuration is the vector of processor states, observed at pulse
// boundaries when no messages are in transit.
//
// The package provides two execution engines with identical semantics:
//
//   - Lockstep: a deterministic single-goroutine loop (the reference model;
//     all experiments use it).
//   - Concurrent: one goroutine per processor with a pulse barrier,
//     demonstrating the same protocols running on real concurrency. A
//     property test asserts both engines produce identical executions.
//
// Byzantine processors are modelled by wrapping an honest process with an
// adversary that may replace its outbox arbitrarily (including equivocating
// — sending different values to different neighbours). Transient faults are
// modelled by corrupting processor state between pulses, which is exactly
// the self-stabilization adversary of §4.1.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	ErrBadTopology = errors.New("sim: invalid topology")
	ErrBadProcess  = errors.New("sim: invalid process configuration")
)

// Message is a point-to-point payload delivered on the pulse after it was
// sent. Payload types are protocol-defined; processes type-switch on them.
type Message struct {
	From, To int
	Payload  any
}

// Process is a synchronous protocol participant. Step is called once per
// pulse with all messages addressed to it from the previous pulse, and
// returns the messages to deliver on the next pulse.
type Process interface {
	// ID returns the processor's identifier (its index in the network).
	ID() int
	// Step executes one synchronous step.
	Step(pulse int, inbox []Message) (outbox []Message)
}

// Corruptible is implemented by processes whose state the transient-fault
// injector can scramble (§4.1's arbitrary starting configuration).
type Corruptible interface {
	// Corrupt sets the process state to arbitrary values derived from the
	// given 64-bit entropy source values.
	Corrupt(entropy func() uint64)
}

// Adversary intercepts a Byzantine processor's traffic. Given the honest
// outbox it may return anything: drop, forge, equivocate.
type Adversary interface {
	// Intercept rewrites the outbox of processor id at the given pulse.
	Intercept(pulse int, id int, honestOutbox []Message) []Message
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(pulse int, id int, honestOutbox []Message) []Message

// Intercept implements Adversary.
func (f AdversaryFunc) Intercept(pulse int, id int, honestOutbox []Message) []Message {
	return f(pulse, id, honestOutbox)
}

// Network is a synchronous network of processes. The zero value is not
// usable; construct with NewNetwork.
type Network struct {
	procs     []Process
	topo      *Graph
	byz       map[int]Adversary
	pulse     int
	inTransit [][]Message // messages to deliver at the next pulse, per destination

	// Stats counts traffic for the E-AUD overhead experiments.
	Stats Stats
}

// Stats accumulates message-level accounting.
type Stats struct {
	MessagesSent    int64
	MessagesDropped int64
	Pulses          int64
}

// NewNetwork builds a network over the given processes. topo may be nil for
// a full mesh. Process IDs must equal their index.
func NewNetwork(procs []Process, topo *Graph) (*Network, error) {
	n := len(procs)
	if n == 0 {
		return nil, fmt.Errorf("%w: no processes", ErrBadProcess)
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("%w: nil process at %d", ErrBadProcess, i)
		}
		if p.ID() != i {
			return nil, fmt.Errorf("%w: process at index %d reports ID %d", ErrBadProcess, i, p.ID())
		}
	}
	if topo == nil {
		topo = FullMesh(n)
	}
	if topo.N() != n {
		return nil, fmt.Errorf("%w: graph has %d vertices for %d processes", ErrBadTopology, topo.N(), n)
	}
	return &Network{
		procs:     procs,
		topo:      topo,
		byz:       make(map[int]Adversary),
		inTransit: make([][]Message, n),
	}, nil
}

// N returns the number of processors.
func (nw *Network) N() int { return len(nw.procs) }

// Pulse returns the number of completed pulses.
func (nw *Network) Pulse() int { return nw.pulse }

// Process returns the i-th process (for state inspection by experiments).
func (nw *Network) Process(i int) Process { return nw.procs[i] }

// SetByzantine installs an adversary on processor id. Passing nil removes
// it. Byzantine membership is fixed per experiment run, matching the static
// Byzantine model of the paper.
func (nw *Network) SetByzantine(id int, adv Adversary) {
	if adv == nil {
		delete(nw.byz, id)
		return
	}
	nw.byz[id] = adv
}

// ByzantineIDs returns the sorted identifiers of Byzantine processors.
func (nw *Network) ByzantineIDs() []int {
	ids := make([]int, 0, len(nw.byz))
	for id := range nw.byz {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// HonestIDs returns the sorted identifiers of honest processors.
func (nw *Network) HonestIDs() []int {
	ids := make([]int, 0, nw.N())
	for i := range nw.procs {
		if _, bad := nw.byz[i]; !bad {
			ids = append(ids, i)
		}
	}
	return ids
}

// Corrupt invokes the transient-fault injector on every Corruptible process
// (honest and Byzantine alike) and wipes in-transit messages — producing an
// arbitrary configuration as in §4.1.
func (nw *Network) Corrupt(entropy func() uint64) {
	for _, p := range nw.procs {
		if c, ok := p.(Corruptible); ok {
			c.Corrupt(entropy)
		}
	}
	for i := range nw.inTransit {
		nw.inTransit[i] = nil
	}
}

// StepLockstep advances the system by one pulse deterministically:
// every process receives its pending inbox, produces an outbox (possibly
// rewritten by its adversary), and messages are filtered by the topology.
func (nw *Network) StepLockstep() {
	n := nw.N()
	inboxes := nw.inTransit
	nw.inTransit = make([][]Message, n)

	outboxes := make([][]Message, n)
	for i, p := range nw.procs {
		out := p.Step(nw.pulse, inboxes[i])
		if adv, bad := nw.byz[i]; bad {
			out = adv.Intercept(nw.pulse, i, out)
		}
		outboxes[i] = out
	}
	nw.route(outboxes)
	nw.pulse++
	nw.Stats.Pulses++
}

// route validates and enqueues outgoing messages for next-pulse delivery.
func (nw *Network) route(outboxes [][]Message) {
	for from, out := range outboxes {
		for _, m := range out {
			m.From = from // processes cannot spoof the source: links are authenticated per §4.1
			// Self-delivery is always permitted (a processor hears its
			// own broadcast); other destinations need a topology edge.
			if m.To < 0 || m.To >= nw.N() || (m.To != from && !nw.topo.HasEdge(from, m.To)) {
				nw.Stats.MessagesDropped++
				continue
			}
			nw.inTransit[m.To] = append(nw.inTransit[m.To], m)
			nw.Stats.MessagesSent++
		}
	}
}

// Run advances the system by pulses pulses using the lockstep engine.
func (nw *Network) Run(pulses int) {
	for i := 0; i < pulses; i++ {
		nw.StepLockstep()
	}
}

// RunConcurrent advances the system by pulses pulses using one goroutine
// per processor with a barrier at every pulse. Semantics are identical to
// Run; the goroutines exist to demonstrate/stress the same protocols under
// real scheduling. All goroutines are joined before return.
func (nw *Network) RunConcurrent(pulses int) {
	n := nw.N()
	for i := 0; i < pulses; i++ {
		inboxes := nw.inTransit
		nw.inTransit = make([][]Message, n)
		outboxes := make([][]Message, n)

		var wg sync.WaitGroup
		for id, p := range nw.procs {
			wg.Add(1)
			go func(id int, p Process) {
				defer wg.Done()
				out := p.Step(nw.pulse, inboxes[id])
				if adv, bad := nw.byz[id]; bad {
					out = adv.Intercept(nw.pulse, id, out)
				}
				outboxes[id] = out
			}(id, p)
		}
		wg.Wait()

		nw.route(outboxes)
		nw.pulse++
		nw.Stats.Pulses++
	}
}

// Broadcast builds one message per neighbour of from in the topology,
// carrying payload. Helper used by most protocols (includes self-loop
// delivery so a processor hears itself, which simplifies quorum counting).
func Broadcast(topo *Graph, from int, payload any) []Message {
	out := make([]Message, 0, topo.N())
	for to := 0; to < topo.N(); to++ {
		if to == from || topo.HasEdge(from, to) {
			out = append(out, Message{From: from, To: to, Payload: payload})
		}
	}
	return out
}
