package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds the exported metric series. Histograms and gauges are
// get-or-create by name+labels: a second registration with the same
// identity returns the existing series, so package-level instrumentation
// and repeated Authority construction in tests accumulate into one
// series instead of failing or forking. GaugeFuncs replace by identity
// (the newest owner of a name+labels wins — the natural semantics when a
// fresh Authority supersedes a closed one).
type Registry struct {
	mu     sync.Mutex
	hists  map[string]*Histogram
	gauges map[string]*Gauge
	funcs  map[string]*gaugeFunc
	helps  map[string]string // metric name → help (first registration wins)
	types  map[string]string // metric name → prometheus type
}

// Default is the process-wide registry every package-level constructor
// registers into; GET /metrics renders it after the Authority counters.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]*Gauge),
		funcs:  make(map[string]*gaugeFunc),
		helps:  make(map[string]string),
		types:  make(map[string]string),
	}
}

// seriesKey is the registry identity: metric name plus the canonical
// rendering of its constant labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(renderLabels(labels, "", ""))
	b.WriteByte('}')
	return b.String()
}

// renderLabels renders `k1="v1",k2="v2"` with an optional extra pair
// appended (the histogram `le` bound).
func renderLabels(labels []Label, extraKey, extraVal string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	return b.String()
}

// registerName records a metric name's help and type, rejecting a type
// clash (one name cannot be both a gauge and a histogram).
func (r *Registry) registerName(name, help, typ string) {
	if existing, ok := r.types[name]; ok && existing != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, existing, typ))
	}
	r.types[name] = typ
	if _, ok := r.helps[name]; !ok {
		r.helps[name] = help
	}
}

// Histogram returns the histogram series for name+labels, creating and
// registering it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	r.registerName(name, help, "histogram")
	h := &Histogram{name: name, help: help, labels: labels, key: key}
	r.hists[key] = h
	return h
}

// Gauge returns the integer gauge series for name+labels, creating and
// registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	r.registerName(name, help, "gauge")
	g := &Gauge{name: name, help: help, labels: labels, key: key}
	r.gauges[key] = g
	return g
}

// GaugeFunc registers a scrape-time sampled gauge, replacing any
// previous function registered under the same name+labels.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerName(name, help, "gauge")
	r.funcs[key] = &gaugeFunc{name: name, help: help, labels: labels, key: key, fn: fn}
}

// HistogramQuantile estimates the q-quantile in nanoseconds over ALL
// series sharing a metric name (e.g. the four per-driver play-latency
// histograms merged), plus the merged sample count. Harnesses use it to
// report server-side percentiles next to their client-side numbers.
func (r *Registry) HistogramQuantile(name string, q float64) (ns float64, count uint64) {
	r.mu.Lock()
	var hists []*Histogram
	for _, h := range r.hists {
		if h.name == name {
			hists = append(hists, h)
		}
	}
	r.mu.Unlock()
	var merged [numBuckets + 1]uint64
	for _, h := range hists {
		for i := range merged {
			merged[i] += h.counts[i].Load()
		}
		count += h.count.Load()
	}
	return quantileOf(merged, q), count
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format 0.0.4, grouped by metric name (one HELP/TYPE block
// per name), names and series in sorted order for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	funcs := make([]*gaugeFunc, 0, len(r.funcs))
	for _, f := range r.funcs {
		funcs = append(funcs, f)
	}
	helps := make(map[string]string, len(r.helps))
	for k, v := range r.helps {
		helps[k] = v
	}
	types := make(map[string]string, len(r.types))
	for k, v := range r.types {
		types[k] = v
	}
	r.mu.Unlock()

	// Group series lines under their metric name.
	lines := make(map[string][]string)
	add := func(name, line string) { lines[name] = append(lines[name], line) }
	for _, h := range hists {
		var snap [numBuckets + 1]uint64
		var cum uint64
		for i := range snap {
			snap[i] = h.counts[i].Load()
		}
		for i := 0; i <= numBuckets; i++ {
			cum += snap[i]
			le := "+Inf"
			if i < numBuckets {
				le = strconv.FormatFloat(bucketUpperNs(i)/1e9, 'g', -1, 64)
			}
			add(h.name, fmt.Sprintf("%s_bucket{%s} %d", h.name, renderLabels(h.labels, "le", le), cum))
		}
		sum := float64(h.sumNs.Load()) / 1e9
		if len(h.labels) == 0 {
			add(h.name, fmt.Sprintf("%s_sum %g", h.name, sum))
			add(h.name, fmt.Sprintf("%s_count %d", h.name, h.count.Load()))
		} else {
			lbl := renderLabels(h.labels, "", "")
			add(h.name, fmt.Sprintf("%s_sum{%s} %g", h.name, lbl, sum))
			add(h.name, fmt.Sprintf("%s_count{%s} %d", h.name, lbl, h.count.Load()))
		}
	}
	render := func(name string, labels []Label, val float64) {
		if len(labels) == 0 {
			add(name, fmt.Sprintf("%s %g", name, val))
			return
		}
		add(name, fmt.Sprintf("%s{%s} %g", name, renderLabels(labels, "", ""), val))
	}
	for _, g := range gauges {
		render(g.name, g.labels, float64(g.Value()))
	}
	for _, f := range funcs {
		render(f.name, f.labels, f.fn())
	}

	names := make([]string, 0, len(lines))
	for name := range lines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sort.Strings(lines[name])
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, helps[name], name, types[name]); err != nil {
			return err
		}
		for _, line := range lines[name] {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// Package-level conveniences over Default.

// NewHistogram get-or-creates a histogram in the Default registry.
func NewHistogram(name, help string, labels ...Label) *Histogram {
	return Default.Histogram(name, help, labels...)
}

// NewGauge get-or-creates an integer gauge in the Default registry.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return Default.Gauge(name, help, labels...)
}

// RegisterGaugeFunc registers (replacing by identity) a scrape-time
// gauge in the Default registry.
func RegisterGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	Default.GaugeFunc(name, help, fn, labels...)
}
