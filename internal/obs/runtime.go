package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeGauges registers Go runtime health gauges (goroutines,
// heap, GC) into a registry. runtime.ReadMemStats stops the world
// briefly, so its result is cached for a second and shared by the
// memory-derived gauges: one scrape pays at most one read no matter how
// many series it renders.
func RegisterRuntimeGauges(r *Registry) {
	var (
		mu   sync.Mutex
		last time.Time
		ms   runtime.MemStats
	)
	mem := func(read func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if last.IsZero() || time.Since(last) > time.Second {
				runtime.ReadMemStats(&ms)
				last = time.Now()
			}
			return read(&ms)
		}
	}
	r.GaugeFunc("gameauthority_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("gameauthority_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("gameauthority_heap_objects",
		"Number of allocated heap objects.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.GaugeFunc("gameauthority_gc_cycles",
		"Completed GC cycles.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.GaugeFunc("gameauthority_gc_pause_total_seconds",
		"Cumulative GC stop-the-world pause time.",
		mem(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
}
