package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceRing is the completed-span capacity Enable uses when the
// caller passes ringSize <= 0. Old spans are overwritten in FIFO order,
// so a dump always holds the most recent window.
const DefaultTraceRing = 8192

// span is one completed trace span in the ring. Name and Cat are static
// string constants at every instrumentation site, so recording never
// allocates.
type span struct {
	name  string
	cat   string
	tid   int64
	arg   int64
	start int64 // ns since the tracer's Enable epoch
	dur   int64 // ns
}

// Tracer is a ring-buffered, sampled span recorder. It is off by
// default: a disabled Begin is one atomic load returning the zero Ctx,
// and Ctx.End on the zero Ctx is a nil check — zero overhead and zero
// allocations on the instrumented paths (pinned by
// TestDisabledTracerZeroAlloc). When enabled, completed spans overwrite
// a fixed ring under a mutex; dumps render Chrome trace_event JSON
// loadable in chrome://tracing and Perfetto.
//
// Sampling is applied at play granularity: BeginRoot admits every
// sample-th root span, and the driver layers gate their child spans on
// the same enabled flag, so a capture of N plays costs N·spans, not
// throughput·spans.
type Tracer struct {
	enabled atomic.Bool
	sample  atomic.Int64  // admit every sample-th root span (≥1)
	rootSeq atomic.Uint64 // BeginRoot admission counter
	roots   atomic.Uint64 // completed root spans since Enable

	mu    sync.Mutex
	ring  []span
	next  int // ring write cursor
	n     int // spans held (≤ len(ring))
	epoch time.Time
}

// DefaultTracer is the process-wide tracer every instrumentation site
// records into; GET /debug/trace and gameauthd -trace-out drive it.
var DefaultTracer = NewTracer()

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enable clears the ring and starts recording. ringSize <= 0 uses
// DefaultTraceRing; sample <= 1 admits every root span, sample = n
// admits one root span in n.
func (t *Tracer) Enable(ringSize, sample int) {
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	if sample < 1 {
		sample = 1
	}
	t.mu.Lock()
	t.ring = make([]span, ringSize)
	t.next, t.n = 0, 0
	t.epoch = time.Now()
	t.mu.Unlock()
	t.rootSeq.Store(0)
	t.roots.Store(0)
	t.sample.Store(int64(sample))
	t.enabled.Store(true)
}

// Disable stops recording. The ring is retained for dumping.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// RootCount reports completed root spans since Enable — the signal
// GET /debug/trace?plays=N waits on.
func (t *Tracer) RootCount() uint64 { return t.roots.Load() }

// Ctx is an in-flight span. The zero Ctx (disabled tracer, unsampled
// root) is valid: End on it is a nil check.
type Ctx struct {
	t     *Tracer
	name  string
	cat   string
	tid   int64
	arg   int64
	start time.Time
	root  bool
}

// Begin opens a child span. name and cat should be static string
// constants (they are stored verbatim in the ring). tid groups spans
// into trace rows (processor id, shard index); arg is a free integer
// rendered into the event's args (pulse number, batch size).
func (t *Tracer) Begin(name, cat string, tid, arg int64) Ctx {
	if !t.enabled.Load() {
		return Ctx{}
	}
	return Ctx{t: t, name: name, cat: cat, tid: tid, arg: arg, start: time.Now()}
}

// BeginRoot opens a root (play-level) span, applying the sample rate.
// Its End increments RootCount.
func (t *Tracer) BeginRoot(name, cat string, tid, arg int64) Ctx {
	if !t.enabled.Load() {
		return Ctx{}
	}
	if s := t.sample.Load(); s > 1 && (t.rootSeq.Add(1)-1)%uint64(s) != 0 {
		return Ctx{}
	}
	c := t.Begin(name, cat, tid, arg)
	c.root = true
	return c
}

// End completes the span and commits it to the ring. Safe on the zero
// Ctx and after Disable (the late span is simply kept if the ring still
// exists).
func (c Ctx) End() {
	if c.t == nil {
		return
	}
	end := time.Now()
	t := c.t
	t.mu.Lock()
	if len(t.ring) > 0 {
		t.ring[t.next] = span{
			name:  c.name,
			cat:   c.cat,
			tid:   c.tid,
			arg:   c.arg,
			start: c.start.Sub(t.epoch).Nanoseconds(),
			dur:   end.Sub(c.start).Nanoseconds(),
		}
		t.next = (t.next + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
	t.mu.Unlock()
	if c.root {
		t.roots.Add(1)
	}
}

// Len reports the number of completed spans held in the ring.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// WriteJSON dumps the ring as Chrome trace_event JSON (the "X" complete
// event phase, timestamps in microseconds relative to Enable), oldest
// span first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	spans := make([]span, 0, t.n)
	if t.n == len(t.ring) {
		spans = append(spans, t.ring[t.next:]...)
		spans = append(spans, t.ring[:t.next]...)
	} else {
		spans = append(spans, t.ring[:t.n]...)
	}
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, s := range spans {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w,
			`%s{"name":%q,"cat":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"v":%d}}`,
			sep, s.name, s.cat, s.tid, float64(s.start)/1e3, float64(s.dur)/1e3, s.arg); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ns"}`)
	return err
}
