package obs

import "sync/atomic"

// Gauge is an integer gauge (current level of something: open breakers,
// live connections). Mutations are single atomic ops, safe on hot paths.
// Construct through Registry.Gauge / obs.NewGauge.
type Gauge struct {
	name   string
	help   string
	labels []Label
	key    string

	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reports the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a scrape-time sampled gauge: fn runs once per
// WritePrometheus, so the instrumented structure pays nothing between
// scrapes (used for queue depths, per-shard session counts, runtime
// stats).
type gaugeFunc struct {
	name   string
	help   string
	labels []Label
	key    string

	fn func() float64
}
