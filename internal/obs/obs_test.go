package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-spaced bucket map: each power-of-two
// upper bound is inclusive, the next nanosecond rolls into the following
// bucket, and values beyond the last finite bound land in +Inf.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0},
		{1, 0},
		{1 << minShift, 0},       // inclusive upper bound of bucket 0
		{1<<minShift + 1, 1},     // first value of bucket 1
		{1 << (minShift + 1), 1}, // inclusive upper bound of bucket 1
		{1<<(minShift+1) + 1, 2},
		{1 << (minShift + numBuckets - 1), numBuckets - 1}, // last finite bound
		{1<<(minShift+numBuckets-1) + 1, numBuckets},       // overflow → +Inf
		{^uint64(0), numBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestHistogramRecordAndRender checks count/sum bookkeeping and that the
// Prometheus rendering is cumulative and carries labels and +Inf.
func TestHistogramRecordAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gameauthority_test_seconds", "test.", Label{"driver", "pure"})
	h.Record(500 * time.Nanosecond) // bucket 0
	h.Record(2 * time.Microsecond)  // bucket 1
	h.Record(time.Hour)             // +Inf
	h.Record(-time.Second)          // clamps to 0, bucket 0
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gameauthority_test_seconds histogram",
		`gameauthority_test_seconds_bucket{driver="pure",le="1.024e-06"} 2`,
		`gameauthority_test_seconds_bucket{driver="pure",le="+Inf"} 4`,
		`gameauthority_test_seconds_count{driver="pure"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramQuantile checks the interpolated estimate stays inside
// its sample's bucket (≤2× by construction).
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gameauthority_q_seconds", "test.")
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 8192 || p50 > 16384 { // 10µs lives in the (8.192µs, 16.384µs] bucket
		t.Fatalf("p50 = %v ns, want within the 10µs bucket", p50)
	}
	if q := (&Histogram{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestGetOrCreateIdentity pins the registry semantics: same name+labels
// returns the same series; same name with different labels forks a new
// series under one HELP/TYPE block.
func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("gameauthority_id_seconds", "test.", Label{"driver", "pure"})
	b := r.Histogram("gameauthority_id_seconds", "test.", Label{"driver", "pure"})
	c := r.Histogram("gameauthority_id_seconds", "test.", Label{"driver", "rra"})
	if a != b {
		t.Fatal("same name+labels must return the same histogram")
	}
	if a == c {
		t.Fatal("different labels must fork a new series")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE gameauthority_id_seconds"); n != 1 {
		t.Fatalf("want one TYPE block for the grouped name, got %d", n)
	}
}

// TestConcurrentRecord hammers one histogram and one gauge from many
// goroutines (meaningful under -race) and checks totals.
func TestConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gameauthority_conc_seconds", "test.")
	g := r.Gauge("gameauthority_conc", "test.")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(time.Duration(w*i) * time.Nanosecond)
				g.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrape must be safe
		defer close(done)
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*each {
		t.Fatalf("count = %d, want %d", h.Count(), workers*each)
	}
	if g.Value() != workers*each {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*each)
	}
}

// TestRecordZeroAlloc pins the acceptance criterion: recording one
// histogram sample performs zero heap allocations.
func TestRecordZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("gameauthority_alloc_seconds", "test.")
	allocs := testing.AllocsPerRun(1000, func() { h.Record(3 * time.Microsecond) })
	if allocs != 0 {
		t.Fatalf("Record allocates %v times, want 0", allocs)
	}
}

// TestDisabledTracerZeroAlloc pins the other acceptance criterion: with
// the tracer off, a Begin/End span site is zero allocations (and so zero
// overhead beyond one atomic load).
func TestDisabledTracerZeroAlloc(t *testing.T) {
	tr := NewTracer()
	allocs := testing.AllocsPerRun(1000, func() {
		c := tr.Begin("x", "test", 0, 0)
		c.End()
		rc := tr.BeginRoot("y", "play", 0, 0)
		rc.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer span allocates %v times, want 0", allocs)
	}
	if tr.Len() != 0 || tr.RootCount() != 0 {
		t.Fatal("disabled tracer must record nothing")
	}
}

// TestTracerRingWraparound fills the ring past capacity and checks the
// dump holds exactly the most recent window, oldest first.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer()
	tr.Enable(4, 1)
	for i := 0; i < 10; i++ {
		c := tr.Begin("s", "test", int64(i), int64(i))
		c.End()
	}
	tr.Disable()
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TID  int64   `json:"tid"`
			Ts   float64 `json:"ts"`
			Args struct {
				V int64 `json:"v"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(dump.TraceEvents) != 4 {
		t.Fatalf("dump holds %d events, want 4", len(dump.TraceEvents))
	}
	for i, ev := range dump.TraceEvents {
		if ev.Args.V != int64(6+i) { // spans 6..9 survive spans 0..5
			t.Fatalf("event %d carries arg %d, want %d", i, ev.Args.V, 6+i)
		}
		if ev.Ph != "X" || ev.Cat != "test" {
			t.Fatalf("event %d = %+v, want complete-phase test span", i, ev)
		}
	}
}

// TestTracerSampling checks BeginRoot admits one root in sample and that
// RootCount counts only admitted roots.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer()
	tr.Enable(64, 4)
	for i := 0; i < 16; i++ {
		c := tr.BeginRoot("play", "play", 0, int64(i))
		c.End()
	}
	tr.Disable()
	if got := tr.RootCount(); got != 4 {
		t.Fatalf("RootCount = %d, want 4 (1-in-4 of 16)", got)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", tr.Len())
	}
}

// TestGaugeFuncReplace pins replace-by-identity: re-registering a
// GaugeFunc under the same name+labels supersedes the previous owner.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("gameauthority_gf", "test.", func() float64 { return 1 })
	r.GaugeFunc("gameauthority_gf", "test.", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gameauthority_gf 2") {
		t.Fatalf("replacement did not win:\n%s", buf.String())
	}
	if n := strings.Count(buf.String(), "\ngameauthority_gf "); n != 1 {
		t.Fatalf("want exactly one series line, got %d", n)
	}
}

// TestRuntimeGauges checks the runtime series render with plausible
// values.
func TestRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"gameauthority_goroutines",
		"gameauthority_heap_alloc_bytes",
		"gameauthority_gc_pause_total_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime gauges missing %q", want)
		}
	}
}

// TestMergedQuantile checks HistogramQuantile merges all series of one
// name.
func TestMergedQuantile(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("gameauthority_m_seconds", "test.", Label{"driver", "pure"})
	b := r.Histogram("gameauthority_m_seconds", "test.", Label{"driver", "rra"})
	for i := 0; i < 50; i++ {
		a.Record(2 * time.Microsecond)
		b.Record(2 * time.Microsecond)
	}
	ns, count := r.HistogramQuantile("gameauthority_m_seconds", 0.5)
	if count != 100 {
		t.Fatalf("merged count = %d, want 100", count)
	}
	if ns < 1024 || ns > 4096 {
		t.Fatalf("merged p50 = %v ns, want within the 2µs bucket", ns)
	}
}
