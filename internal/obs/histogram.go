package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: log-spaced doubling upper bounds. Bucket 0 covers
// (0, 2^minShift] ns; bucket i covers (2^(minShift+i-1), 2^(minShift+i)]
// ns; the final slot is the +Inf overflow. 26 finite buckets span
// ~1µs .. ~34s, which brackets everything from a pure in-process play
// (~µs) to a crash-recovery replay (~s) with ≤2× quantile error.
const (
	minShift   = 10 // bucket 0 upper bound: 2^10 ns ≈ 1.02 µs
	numBuckets = 26 // last finite upper bound: 2^35 ns ≈ 34.4 s
)

// Label is one constant name="value" pair attached to a series at
// registration time. Recording never touches labels.
type Label struct {
	Key   string
	Value string
}

// Histogram is a fixed-bucket latency histogram. Record is safe for
// concurrent use and performs no allocation: three atomic adds on
// preallocated slots (pinned by TestRecordZeroAlloc). Construct through
// Registry.Histogram / obs.NewHistogram so the series is exported.
type Histogram struct {
	name   string
	help   string
	labels []Label
	key    string // name + canonical label string, the registry identity

	counts [numBuckets + 1]atomic.Uint64 // last slot is +Inf
	count  atomic.Uint64
	sumNs  atomic.Uint64
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count reports the total number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Name reports the series' metric name.
func (h *Histogram) Name() string { return h.name }

// bucketIndex maps a nanosecond value to its bucket slot.
func bucketIndex(ns uint64) int {
	if ns <= 1<<minShift {
		return 0
	}
	idx := bits.Len64(ns-1) - minShift
	if idx > numBuckets {
		idx = numBuckets
	}
	return idx
}

// bucketUpperNs is bucket i's inclusive upper bound in nanoseconds
// (valid for the finite buckets 0..numBuckets-1... and used as the +Inf
// slot's notional lower bound when i == numBuckets).
func bucketUpperNs(i int) float64 {
	return float64(uint64(1) << (minShift + i))
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded samples
// in nanoseconds, interpolating linearly inside the containing bucket.
// The estimate is only as fine as the doubling buckets (≤2× error); it
// exists so harnesses can report server-side p50/p99 without shipping
// raw samples. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	var snap [numBuckets + 1]uint64
	for i := range snap {
		snap[i] = h.counts[i].Load()
	}
	return quantileOf(snap, q)
}

// quantileOf computes the interpolated quantile over one bucket-count
// snapshot (shared by Histogram.Quantile and the registry's merged-series
// quantile).
func quantileOf(counts [numBuckets + 1]uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			var lo float64
			if i > 0 {
				lo = bucketUpperNs(i - 1)
			}
			hi := bucketUpperNs(i) // for the +Inf slot: one more doubling
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	return bucketUpperNs(numBuckets)
}
