// Package obs is the dependency-free observability plane: fixed-bucket
// atomics-only latency histograms and gauges exported in Prometheus text
// format, plus a ring-buffered sampled span tracer that dumps Chrome
// trace_event JSON.
//
// The package is built for hot paths that already carry pinned
// zero-allocation budgets: recording a histogram sample is three atomic
// adds on preallocated memory (0 allocs, gated by test), and a disabled
// tracer costs one atomic load per span site. All aggregation cost —
// bucket cumulation, label rendering, runtime.MemStats — is paid at
// scrape/dump time, never on the play path.
//
// Metric series live in a Registry (package-level Default); histograms
// and gauges are get-or-create by name+labels so package-level
// instrumentation sites and repeated Authority construction in tests
// share one series instead of double-registering. Naming follows the
// repo convention enforced by cmd/metriclint: every name carries the
// gameauthority_ prefix, counters end in _total, histograms in _seconds.
//
// See DESIGN.md §14 for the metric inventory and the span taxonomy.
package obs
