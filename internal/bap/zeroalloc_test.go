package bap

import (
	"testing"

	"gameauthority/internal/auth"
)

// TestICEnginePhaseZeroAlloc is the hard per-pulse allocation gate for the
// distributed driver's agreement engine: a complete warm interactive-
// consistency phase — Reset, dissemination, every EIG round, decision — at
// n=4/f=1 must not allocate at all, across all four processors. Any heap
// traffic on this path multiplies by pulses × processors × plays, so the
// budget is exactly zero, not "small".
func TestICEnginePhaseZeroAlloc(t *testing.T) {
	n, f := 4, 1
	engines := make([]*IC, n)
	for i := range engines {
		e, err := NewIC(i, n, f)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	vals := []Value{"alpha", "bravo", "charlie", "delta"}
	lists := make([][]any, n)
	pulse := 0
	runPhase := func() {
		for i, e := range engines {
			e.Reset(vals[i])
		}
		for k := 0; k < TotalPulses(f); k++ {
			for _, e := range engines {
				for from := range engines {
					for _, payload := range lists[from] {
						e.Deliver(from, payload)
					}
				}
			}
			for i, e := range engines {
				out, _ := e.EndPulse(pulse)
				lists[i] = out
			}
			pulse++
		}
	}
	runPhase() // warm: arenas are pre-sized, but the first phase proves it
	for i, e := range engines {
		if !e.Done() {
			t.Fatalf("engine %d not done after %d pulses", i, TotalPulses(f))
		}
		for s, v := range e.VectorRef() {
			if v != vals[s] {
				t.Fatalf("engine %d vector[%d] = %q, want %q", i, s, v, vals[s])
			}
		}
	}
	if allocs := testing.AllocsPerRun(20, runPhase); allocs != 0 {
		t.Fatalf("warm IC phase allocates %v times per phase, want 0", allocs)
	}
}

// TestICEngineResetReuses pins that Reset rewinds the engine rather than
// rebuilding it: back-to-back phases on one engine set agree on fresh
// values each time.
func TestICEngineResetReuses(t *testing.T) {
	n, f := 4, 1
	engines := make([]*IC, n)
	for i := range engines {
		e, err := NewIC(i, n, f)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	lists := make([][]any, n)
	pulse := 0
	for phase := 0; phase < 3; phase++ {
		want := make([]Value, n)
		for i := range engines {
			want[i] = Value(rune('a'+phase)) + Value(rune('0'+i))
			engines[i].Reset(want[i])
		}
		for k := 0; k < TotalPulses(f); k++ {
			for _, e := range engines {
				for from := range engines {
					for _, payload := range lists[from] {
						e.Deliver(from, payload)
					}
				}
			}
			for i, e := range engines {
				out, _ := e.EndPulse(pulse)
				lists[i] = out
			}
			pulse++
		}
		for i, e := range engines {
			if !e.Done() {
				t.Fatalf("phase %d: engine %d undecided", phase, i)
			}
			for s, v := range e.VectorRef() {
				if v != want[s] {
					t.Fatalf("phase %d: engine %d vector[%d] = %q, want %q", phase, i, s, v, want[s])
				}
			}
		}
	}
}

// TestICEngineByzantineSilence pins the engine's agreement semantics under
// a silent processor: absent intro and round traffic from one source must
// resolve that source's slot to the default value at every honest engine.
func TestICEngineByzantineSilence(t *testing.T) {
	n, f := 4, 1
	silent := 3
	engines := make([]*IC, n)
	for i := range engines {
		e, err := NewIC(i, n, f)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
		e.Reset(Value(rune('a' + i)))
	}
	lists := make([][]any, n)
	for pulse := 0; pulse < TotalPulses(f); pulse++ {
		for i, e := range engines {
			if i == silent {
				continue
			}
			for from := range engines {
				if from == silent {
					continue
				}
				for _, payload := range lists[from] {
					e.Deliver(from, payload)
				}
			}
		}
		for i, e := range engines {
			out, _ := e.EndPulse(pulse)
			lists[i] = out
		}
	}
	for i, e := range engines {
		if i == silent {
			continue
		}
		if !e.Done() {
			t.Fatalf("engine %d undecided", i)
		}
		vec := e.VectorRef()
		if vec[silent] != DefaultValue {
			t.Fatalf("engine %d decided %q for the silent source, want default", i, vec[silent])
		}
		for s := 0; s < n; s++ {
			if s != silent && vec[s] != Value(rune('a'+s)) {
				t.Fatalf("engine %d vector[%d] = %q", i, s, vec[s])
			}
		}
	}
}

// TestDolevStrongStructuralRejectZeroAlloc gates the pre-verification
// reject paths of the Dolev–Strong absorber: chains with the wrong length
// or the wrong leading signer must be dropped without touching the heap,
// so a Byzantine flood of malformed chains cannot pressure the collector.
// (Chains that reach tag verification pay the HMAC's allocations — that is
// crypto cost, not round state.)
func TestDolevStrongStructuralRejectZeroAlloc(t *testing.T) {
	n, f := 4, 1
	dealer := auth.NewDealer(n, 11)
	authn, err := dealer.Authenticator(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewDSProc(1, n, f, 0, authn, "")
	if err != nil {
		t.Fatal(err)
	}
	badLen := dsPayload{Val: "x", Chain: make([]dsChainLink, 3)} // wrong length for round 1
	badHead := dsPayload{Val: "y", Chain: []dsChainLink{{Signer: 2}}}
	p.pulseNo = 1
	if allocs := testing.AllocsPerRun(50, func() {
		p.absorb(badLen, 1)
		p.absorb(badHead, 1)
	}); allocs != 0 {
		t.Fatalf("structural reject allocates %v times, want 0", allocs)
	}
	if len(p.extracted) != 0 || len(p.relayQ) != 0 {
		t.Fatal("malformed chains were absorbed")
	}
}

// TestDolevStrongBodyBufferStable pins that the reused signing-body buffer
// produces the same bytes as the original fmt-based encoding.
func TestDolevStrongBodyBufferStable(t *testing.T) {
	got := string(dsMessageBody(nil, 12, "val|ue"))
	if got != "ds|12|val|ue" {
		t.Fatalf("dsMessageBody = %q", got)
	}
	buf := make([]byte, 0, 8)
	buf = dsMessageBody(buf, 3, "abc")
	if string(buf) != "ds|3|abc" {
		t.Fatalf("reused buffer body = %q", string(buf))
	}
}
