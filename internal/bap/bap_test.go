package bap

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"gameauthority/internal/auth"
	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestNewEIGValidation(t *testing.T) {
	if _, err := NewEIG(0, 3, 1, "v"); !errors.Is(err, ErrConfig) {
		t.Fatalf("n=3f: err = %v, want ErrConfig", err)
	}
	if _, err := NewEIG(9, 4, 1, "v"); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad id: err = %v, want ErrConfig", err)
	}
	if _, err := NewEIG(0, 4, 1, "v"); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// runEIG builds an n-processor network each with its own initial value,
// marks byz processors with the given adversary, and runs to termination.
func runEIG(t *testing.T, n, f int, initial []Value, byz map[int]sim.Adversary) []Value {
	t.Helper()
	procs := make([]sim.Process, n)
	raw := make([]*Proc, n)
	for i := 0; i < n; i++ {
		p, err := NewProc(i, n, f, initial[i])
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = p
		procs[i] = p
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, adv := range byz {
		nw.SetByzantine(id, adv)
	}
	nw.Run(Rounds(f) + 2)
	out := make([]Value, n)
	for i, p := range raw {
		if !p.Decided() {
			t.Fatalf("proc %d did not decide", i)
		}
		v, err := p.Decision()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func assertHonestAgree(t *testing.T, decisions []Value, byz map[int]sim.Adversary) Value {
	t.Helper()
	var agreed Value
	first := true
	for i, v := range decisions {
		if _, bad := byz[i]; bad {
			continue
		}
		if first {
			agreed = v
			first = false
			continue
		}
		if v != agreed {
			t.Fatalf("agreement violated: proc %d decided %q, others %q", i, v, agreed)
		}
	}
	return agreed
}

func TestEIGAllHonestUnanimous(t *testing.T) {
	for _, n := range []int{4, 7} {
		f := (n - 1) / 3
		initial := make([]Value, n)
		for i := range initial {
			initial[i] = "v"
		}
		decisions := runEIG(t, n, f, initial, nil)
		if got := assertHonestAgree(t, decisions, nil); got != "v" {
			t.Fatalf("n=%d: validity violated: decided %q, want v", n, got)
		}
	}
}

func TestEIGAllHonestMixedInputsAgree(t *testing.T) {
	initial := []Value{"a", "b", "a", "b"}
	decisions := runEIG(t, 4, 1, initial, nil)
	assertHonestAgree(t, decisions, nil)
}

func TestEIGToleratesSilentByzantine(t *testing.T) {
	initial := []Value{"v", "v", "v", "junk"}
	byz := map[int]sim.Adversary{3: sim.SilentAdversary()}
	decisions := runEIG(t, 4, 1, initial, byz)
	if got := assertHonestAgree(t, decisions, byz); got != "v" {
		t.Fatalf("validity with silent byz: decided %q, want v", got)
	}
}

func TestEIGToleratesEquivocation(t *testing.T) {
	// The classic attack: processor 3 tells half the network "x" and the
	// other half "y". n=4, f=1: honest must still agree.
	initial := []Value{"v", "v", "v", "x"}
	byz := map[int]sim.Adversary{3: sim.EquivocateAdversary(func(to int, payload any) any {
		pl, ok := payload.(eigPayload)
		if !ok {
			return payload
		}
		forged := eigPayload{Instance: pl.Instance, Round: pl.Round, Pairs: make([]Pair, len(pl.Pairs))}
		for i, pr := range pl.Pairs {
			v := Value("x")
			if to%2 == 0 {
				v = "y"
			}
			forged.Pairs[i] = Pair{Label: pr.Label, Val: v}
		}
		return forged
	})}
	decisions := runEIG(t, 4, 1, initial, byz)
	if got := assertHonestAgree(t, decisions, byz); got != "v" {
		t.Fatalf("equivocation broke validity: decided %q, want v", got)
	}
}

func TestEIGSevenProcessorsTwoByzantine(t *testing.T) {
	n, f := 7, 2
	initial := make([]Value, n)
	for i := range initial {
		initial[i] = "agreed"
	}
	byz := map[int]sim.Adversary{
		2: sim.EquivocateAdversary(func(to int, payload any) any {
			pl, ok := payload.(eigPayload)
			if !ok {
				return payload
			}
			forged := pl
			forged.Pairs = make([]Pair, len(pl.Pairs))
			for i, pr := range pl.Pairs {
				forged.Pairs[i] = Pair{Label: pr.Label, Val: Value(fmt.Sprintf("evil-%d", to))}
			}
			return forged
		}),
		5: sim.SilentAdversary(),
	}
	decisions := runEIG(t, n, f, initial, byz)
	if got := assertHonestAgree(t, decisions, byz); got != "agreed" {
		t.Fatalf("n=7 f=2: decided %q, want agreed", got)
	}
}

func TestQuickEIGAgreementRandomByzantine(t *testing.T) {
	// Property: for random honest inputs and a randomly-behaving Byzantine
	// processor, all honest processors agree.
	f := func(seed uint64, inputsRaw [4]uint8, byzID uint8) bool {
		n, fy := 4, 1
		initial := make([]Value, n)
		for i := range initial {
			initial[i] = Value(fmt.Sprintf("v%d", inputsRaw[i]%3))
		}
		bid := int(byzID) % n
		src := prng.New(seed)
		byz := map[int]sim.Adversary{bid: sim.EquivocateAdversary(func(to int, payload any) any {
			pl, ok := payload.(eigPayload)
			if !ok {
				return payload
			}
			forged := pl
			forged.Pairs = make([]Pair, len(pl.Pairs))
			for i, pr := range pl.Pairs {
				forged.Pairs[i] = Pair{Label: pr.Label, Val: Value(fmt.Sprintf("r%d", src.Uint64()%5))}
			}
			return forged
		})}

		procs := make([]sim.Process, n)
		raw := make([]*Proc, n)
		for i := 0; i < n; i++ {
			p, err := NewProc(i, n, fy, initial[i])
			if err != nil {
				return false
			}
			raw[i] = p
			procs[i] = p
		}
		nw, err := sim.NewNetwork(procs, nil)
		if err != nil {
			return false
		}
		nw.SetByzantine(bid, byz[bid])
		nw.Run(Rounds(fy) + 2)
		var agreed Value
		first := true
		for i, p := range raw {
			if i == bid {
				continue
			}
			if !p.Decided() {
				return false
			}
			v, _ := p.Decision()
			if first {
				agreed, first = v, false
			} else if v != agreed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInteractiveConsistency(t *testing.T) {
	n, f := 4, 1
	procs := make([]sim.Process, n)
	raw := make([]*ICProc, n)
	for i := 0; i < n; i++ {
		p, err := NewICProc(i, n, f, Value(fmt.Sprintf("private-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = p
		procs[i] = p
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(TotalPulses(f))
	want := []Value{"private-0", "private-1", "private-2", "private-3"}
	for i, p := range raw {
		if !p.Done() {
			t.Fatalf("ic proc %d not done after %d pulses", i, TotalPulses(f))
		}
		vec := p.Vector()
		for s := range want {
			if vec[s] != want[s] {
				t.Fatalf("proc %d vector[%d] = %q, want %q", i, s, vec[s], want[s])
			}
		}
	}
}

func TestInteractiveConsistencyWithEquivocatingSource(t *testing.T) {
	// Byzantine source 0 tells different private values to different
	// processors; honest must agree on SOME common value for slot 0 and
	// exact values for honest slots.
	n, f := 4, 1
	procs := make([]sim.Process, n)
	raw := make([]*ICProc, n)
	for i := 0; i < n; i++ {
		p, err := NewICProc(i, n, f, Value(fmt.Sprintf("private-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = p
		procs[i] = p
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetByzantine(0, sim.EquivocateAdversary(func(to int, payload any) any {
		if init, ok := payload.(icInit); ok {
			_ = init
			return icInit{Val: Value(fmt.Sprintf("lie-to-%d", to))}
		}
		return payload
	}))
	nw.Run(TotalPulses(f))
	var slot0 Value
	first := true
	for i := 1; i < n; i++ {
		if !raw[i].Done() {
			t.Fatalf("proc %d not done", i)
		}
		vec := raw[i].Vector()
		for s := 1; s < n; s++ {
			want := Value(fmt.Sprintf("private-%d", s))
			if vec[s] != want {
				t.Fatalf("honest slot %d at proc %d = %q, want %q", s, i, vec[s], want)
			}
		}
		if first {
			slot0, first = vec[0], false
		} else if vec[0] != slot0 {
			t.Fatalf("slot 0 disagreement: %q vs %q", vec[0], slot0)
		}
	}
}

func TestICCorruptionRecoversViaRestart(t *testing.T) {
	// Not full self-stabilization (that is ssba's job) — but a corrupted
	// ICProc must not panic and must be restartable.
	p, err := NewICProc(0, 4, 1, "v")
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(3)
	p.Corrupt(src.Uint64)
	for pulse := 0; pulse < 10; pulse++ {
		_ = p.Step(pulse, nil) // must not panic with arbitrary state
	}
}

func TestDolevStrongHonestSender(t *testing.T) {
	n, f := 4, 1
	d := newDSNet(t, n, f, 0, "payload", nil)
	d.nw.Run(DSTotalPulses(f))
	for i, p := range d.procs {
		v, err := p.Decision()
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
		if v != "payload" {
			t.Fatalf("proc %d decided %q, want payload", i, v)
		}
	}
}

func TestDolevStrongEquivocatingSenderYieldsDefault(t *testing.T) {
	// The sender signs two different values and partitions the audience.
	// All honest receivers must converge on the same decision (default,
	// since both values carry valid chains and get cross-relayed).
	n, f := 4, 1
	var d *dsNet
	d = newDSNet(t, n, f, 0, "x", func(dealerSeed uint64) sim.Adversary {
		return sim.AdversaryFunc(func(pulse, id int, out []sim.Message) []sim.Message {
			if pulse != 0 {
				return out
			}
			// Re-sign per destination with a different value.
			forged := make([]sim.Message, 0, len(out))
			for _, m := range out {
				v := Value("x")
				if m.To%2 == 1 {
					v = "y"
				}
				body := dsMessageBody(nil, 0, v)
				chain := []dsChainLink{{Signer: 0, Tags: d.auths[0].Sign(body)}}
				m.Payload = dsPayload{Val: v, Chain: chain}
				forged = append(forged, m)
			}
			return forged
		})
	})
	d.nw.Run(DSTotalPulses(f))
	var agreed Value
	first := true
	for i := 1; i < n; i++ {
		v, err := d.procs[i].Decision()
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
		if first {
			agreed, first = v, false
		} else if v != agreed {
			t.Fatalf("honest disagreement: proc %d %q vs %q", i, v, agreed)
		}
	}
	if agreed != DefaultValue {
		t.Fatalf("equivocation should force default, got %q", agreed)
	}
}

func TestDolevStrongForgedChainRejected(t *testing.T) {
	// A Byzantine relay cannot inject a value the sender never signed.
	n, f := 4, 1
	d := newDSNet(t, n, f, 0, "honest", nil)
	d.nw.SetByzantine(2, sim.AdversaryFunc(func(pulse, id int, out []sim.Message) []sim.Message {
		if pulse != 1 {
			return out
		}
		// Forge: claim the sender signed "evil" (but sign with own key).
		body := dsMessageBody(nil, 0, "evil")
		chain := []dsChainLink{
			{Signer: 0, Tags: d.auths[2].Sign(body)}, // forged: not 0's key
			{Signer: 2, Tags: d.auths[2].Sign(body)},
		}
		forged := make([]sim.Message, 0, n)
		for to := 0; to < n; to++ {
			forged = append(forged, sim.Message{To: to, Payload: dsPayload{Val: "evil", Chain: chain}})
		}
		return append(out, forged...)
	}))
	d.nw.Run(DSTotalPulses(f))
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		v, err := d.procs[i].Decision()
		if err != nil {
			t.Fatal(err)
		}
		if v != "honest" {
			t.Fatalf("proc %d accepted forged value: %q", i, v)
		}
	}
}

type dsNet struct {
	nw    *sim.Network
	procs []*DSProc
	auths []*auth.Authenticator
}

// newDSNet builds an n-processor Dolev–Strong broadcast network with the
// given designated sender. advFor, if non-nil, is installed as the sender's
// adversary (it receives the dealer seed so it can sign with real keys).
func newDSNet(t *testing.T, n, f, sender int, initial Value, advFor func(dealerSeed uint64) sim.Adversary) *dsNet {
	t.Helper()
	const dealerSeed = 1234
	dealer := auth.NewDealer(n, dealerSeed)
	d := &dsNet{procs: make([]*DSProc, n), auths: make([]*auth.Authenticator, n)}
	procs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		a, err := dealer.Authenticator(i)
		if err != nil {
			t.Fatal(err)
		}
		d.auths[i] = a
		v := DefaultValue
		if i == sender {
			v = initial
		}
		p, err := NewDSProc(i, n, f, sender, a, v)
		if err != nil {
			t.Fatal(err)
		}
		d.procs[i] = p
		procs[i] = p
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.nw = nw
	if advFor != nil {
		nw.SetByzantine(sender, advFor(dealerSeed))
	}
	return d
}

func TestNewDSProcValidation(t *testing.T) {
	if _, err := NewDSProc(0, 1, 0, 0, nil, "v"); !errors.Is(err, ErrConfig) {
		t.Fatalf("tiny n: %v", err)
	}
}

func BenchmarkEIGRound(b *testing.B) {
	n, f := 7, 2
	for i := 0; i < b.N; i++ {
		initial := make([]Value, n)
		for j := range initial {
			initial[j] = "v"
		}
		procs := make([]sim.Process, n)
		for j := 0; j < n; j++ {
			p, err := NewProc(j, n, f, initial[j])
			if err != nil {
				b.Fatal(err)
			}
			procs[j] = p
		}
		nw, err := sim.NewNetwork(procs, nil)
		if err != nil {
			b.Fatal(err)
		}
		nw.Run(Rounds(f) + 2)
	}
}

func TestEIGTreeSizeGrowsPerRound(t *testing.T) {
	n, f := 4, 1
	e, err := NewEIG(0, n, f, "v")
	if err != nil {
		t.Fatal(err)
	}
	// Root only after construction; the flat layout for (4,1) has
	// 1 + 4 + 12 = 17 slots in total.
	if got := e.TreeSize(); got != 1 {
		t.Fatalf("TreeSize after init = %d, want 1 (root)", got)
	}
	sizes := []int{e.TreeSize()}
	procs := make([]*EIG, n)
	for i := range procs {
		if procs[i], err = NewEIG(i, n, f, Value(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < Rounds(f); round++ {
		msgs := make([][]Pair, n)
		for i, p := range procs {
			msgs[i] = p.RoundMessages(round)
		}
		for _, p := range procs {
			for from := range procs {
				p.Absorb(round, from, msgs[from])
			}
			p.EndRound()
		}
		sizes = append(sizes, procs[0].TreeSize())
	}
	// All-honest full mesh fills every level: 1, then +n, then +n(n−1).
	want := []int{1, 1 + n, 1 + n + n*(n-1)}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("tree sizes = %v, want %v", sizes, want)
		}
	}
}

func TestProcCorruptRecoversViaRestart(t *testing.T) {
	// A corrupted single-instance EIG Proc must not panic on arbitrary
	// state and must keep stepping (the ssba layer handles true
	// self-stabilization).
	p, err := NewProc(0, 4, 1, "v")
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(7)
	p.Corrupt(src.Uint64)
	for pulse := 0; pulse < 10; pulse++ {
		_ = p.Step(pulse, nil)
	}
}
