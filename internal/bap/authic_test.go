package bap

import (
	"fmt"
	"testing"

	"gameauthority/internal/auth"
	"gameauthority/internal/sim"
)

// buildAuthIC wires n authenticated-IC processors over a full mesh.
func buildAuthIC(t *testing.T, n, f int, seed uint64) (*sim.Network, []*AuthICProc, []*auth.Authenticator) {
	t.Helper()
	dealer := auth.NewDealer(n, seed)
	procs := make([]sim.Process, n)
	raw := make([]*AuthICProc, n)
	auths := make([]*auth.Authenticator, n)
	for i := 0; i < n; i++ {
		a, err := dealer.Authenticator(i)
		if err != nil {
			t.Fatal(err)
		}
		auths[i] = a
		p, err := NewAuthICProc(i, n, f, a, Value(fmt.Sprintf("private-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		raw[i] = p
		procs[i] = p
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return nw, raw, auths
}

func TestAuthICAllHonest(t *testing.T) {
	nw, procs, _ := buildAuthIC(t, 4, 1, 1)
	nw.Run(AuthICTotalPulses(1))
	for i, p := range procs {
		if !p.Done() {
			t.Fatalf("proc %d not done", i)
		}
		vec := p.Vector()
		for s := 0; s < 4; s++ {
			want := Value(fmt.Sprintf("private-%d", s))
			if vec[s] != want {
				t.Fatalf("proc %d slot %d = %q, want %q", i, s, vec[s], want)
			}
		}
	}
}

func TestAuthICHonestMajorityF2of5(t *testing.T) {
	// With authentication, f=2 of n=5 is fine (n > 2f), which EIG-based
	// IC (n > 3f) could not tolerate.
	nw, procs, _ := buildAuthIC(t, 5, 2, 2)
	nw.SetByzantine(3, sim.SilentAdversary())
	nw.SetByzantine(4, sim.SilentAdversary())
	nw.Run(AuthICTotalPulses(2))
	for i := 0; i < 3; i++ {
		if !procs[i].Done() {
			t.Fatalf("proc %d not done", i)
		}
		vec := procs[i].Vector()
		for s := 0; s < 3; s++ {
			want := Value(fmt.Sprintf("private-%d", s))
			if vec[s] != want {
				t.Fatalf("proc %d slot %d = %q, want %q", i, s, vec[s], want)
			}
		}
		// Silent sources resolve to the default value.
		if vec[3] != DefaultValue || vec[4] != DefaultValue {
			t.Fatalf("silent slots = %q %q, want defaults", vec[3], vec[4])
		}
	}
	// All honest must hold identical vectors.
	ref := procs[0].Vector()
	for i := 1; i < 3; i++ {
		vec := procs[i].Vector()
		for s := range ref {
			if vec[s] != ref[s] {
				t.Fatalf("vector disagreement at proc %d slot %d", i, s)
			}
		}
	}
}

func TestAuthICEquivocatingSource(t *testing.T) {
	// Source 0 signs different values for different destinations; honest
	// receivers cross-relay the chains and must all land on the same
	// decision for slot 0.
	nw, procs, auths := buildAuthIC(t, 4, 1, 3)
	nw.SetByzantine(0, sim.AdversaryFunc(func(pulse, id int, out []sim.Message) []sim.Message {
		if pulse != 0 {
			return out
		}
		forged := make([]sim.Message, 0, len(out))
		for _, m := range out {
			pl, ok := m.Payload.(authICPayload)
			if !ok || pl.Instance != 0 {
				forged = append(forged, m)
				continue
			}
			v := Value("x")
			if m.To%2 == 1 {
				v = "y"
			}
			body := dsMessageBody(nil, 0, v)
			pl.Inner = dsPayload{Val: v, Chain: []dsChainLink{{Signer: 0, Tags: auths[0].Sign(body)}}}
			m.Payload = pl
			forged = append(forged, m)
		}
		return forged
	}))
	nw.Run(AuthICTotalPulses(1))
	var slot0 Value
	first := true
	for i := 1; i < 4; i++ {
		if !procs[i].Done() {
			t.Fatalf("proc %d not done", i)
		}
		vec := procs[i].Vector()
		if first {
			slot0, first = vec[0], false
		} else if vec[0] != slot0 {
			t.Fatalf("slot 0 disagreement: %q vs %q", vec[0], slot0)
		}
		// Honest slots are exact.
		for s := 1; s < 4; s++ {
			if vec[s] != Value(fmt.Sprintf("private-%d", s)) {
				t.Fatalf("honest slot %d corrupted: %q", s, vec[s])
			}
		}
	}
	if slot0 != DefaultValue {
		t.Fatalf("equivocating source should resolve to default, got %q", slot0)
	}
}

func TestAuthICValidation(t *testing.T) {
	if _, err := NewAuthICProc(0, 4, 1, nil, "v"); err == nil {
		t.Fatal("nil authenticator accepted")
	}
}

func TestAuthICCorruptRecovers(t *testing.T) {
	_, procs, _ := buildAuthIC(t, 4, 1, 5)
	seedCounter := uint64(0)
	procs[0].Corrupt(func() uint64 { seedCounter++; return seedCounter * 7919 })
	for pulse := 0; pulse < 10; pulse++ {
		_ = procs[0].Step(pulse, nil) // must not panic
	}
}
