package bap

import (
	"fmt"

	"gameauthority/internal/sim"
)

// This file adapts the EIG state machine onto the synchronous network of
// internal/sim: one protocol round per pulse, plus the interactive
// consistency (vector agreement) composition used by the game authority to
// agree on per-agent payloads (outcomes, commitment sets, reveal sets, foul
// sets — §3.3).

// eigPayload is the wire format of one EIG round broadcast.
type eigPayload struct {
	Instance int // interactive-consistency instance (source id), or 0
	Round    int
	Pairs    []Pair
}

// icInit is the pre-round payload of interactive consistency: the sender's
// own private value.
type icInit struct {
	Val Value
}

// Proc runs a single EIG agreement instance over a sim.Network.
type Proc struct {
	id    int
	eig   *EIG
	round int
}

var _ sim.Process = (*Proc)(nil)
var _ sim.Corruptible = (*Proc)(nil)

// NewProc builds a sim process executing one EIG instance.
func NewProc(id, n, f int, initial Value) (*Proc, error) {
	e, err := NewEIG(id, n, f, initial)
	if err != nil {
		return nil, err
	}
	return &Proc{id: id, eig: e}, nil
}

// ID implements sim.Process.
func (p *Proc) ID() int { return p.id }

// Step implements sim.Process: absorb last round's traffic, end the round,
// then broadcast this round's tree level.
func (p *Proc) Step(pulse int, inbox []sim.Message) []sim.Message {
	if p.round > 0 {
		for _, m := range inbox {
			pl, ok := m.Payload.(eigPayload)
			if !ok || pl.Round != p.round-1 {
				continue
			}
			p.eig.Absorb(pl.Round, m.From, pl.Pairs)
		}
		p.eig.EndRound()
	}
	if p.eig.Decided() {
		return nil
	}
	pairs := p.eig.RoundMessages(p.round)
	payload := eigPayload{Round: p.round, Pairs: pairs}
	p.round++
	return broadcastAll(p.id, p.eig.n, payload)
}

// Decided and Decision expose the instance's outcome.
func (p *Proc) Decided() bool            { return p.eig.Decided() }
func (p *Proc) Decision() (Value, error) { return p.eig.Decision() }

// Corrupt implements sim.Corruptible.
func (p *Proc) Corrupt(entropy func() uint64) {
	p.round = int(entropy() % uint64(p.eig.f+2))
	p.eig.Corrupt(entropy)
}

// broadcastAll fabricates one message per destination (including self,
// which simplifies quorum counting); the network enforces topology and
// stamps From.
func broadcastAll(from, n int, payload any) []sim.Message {
	out := make([]sim.Message, 0, n)
	for to := 0; to < n; to++ {
		out = append(out, sim.Message{From: from, To: to, Payload: payload})
	}
	return out
}

// ICProc runs interactive consistency: n parallel EIG instances, one per
// source processor, so that all honest processors agree on the full vector
// of private values. Pulse 0 disseminates private values; pulses 1..f+1 run
// the EIG rounds of all instances in lock-step.
type ICProc struct {
	id, n, f int
	private  Value
	insts    []*EIG
	pulseNo  int
	done     bool
	vector   []Value
}

var _ sim.Process = (*ICProc)(nil)
var _ sim.Corruptible = (*ICProc)(nil)

// NewICProc builds processor id's interactive-consistency process carrying
// the given private value.
func NewICProc(id, n, f int, private Value) (*ICProc, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("%w: n=%d must exceed 3f=%d", ErrConfig, n, 3*f)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("%w: id=%d", ErrConfig, id)
	}
	return &ICProc{id: id, n: n, f: f, private: private}, nil
}

// ID implements sim.Process.
func (p *ICProc) ID() int { return p.id }

// TotalPulses returns the number of pulses interactive consistency needs:
// one dissemination pulse, f+1 EIG rounds, and one final absorb pulse.
func TotalPulses(f int) int { return Rounds(f) + 2 }

// Step implements sim.Process.
func (p *ICProc) Step(pulse int, inbox []sim.Message) []sim.Message {
	switch {
	case p.pulseNo == 0:
		// Dissemination pulse: broadcast the private value.
		p.pulseNo++
		return broadcastAll(p.id, p.n, icInit{Val: p.private})

	case p.pulseNo == 1:
		// Instances start: instance s's initial value is what we heard
		// from s (default if silent).
		heard := make(map[int]Value, p.n)
		for _, m := range inbox {
			if init, ok := m.Payload.(icInit); ok {
				if _, dup := heard[m.From]; !dup {
					heard[m.From] = init.Val
				}
			}
		}
		p.insts = make([]*EIG, p.n)
		for s := 0; s < p.n; s++ {
			initial, ok := heard[s]
			if !ok {
				initial = DefaultValue
			}
			inst, err := NewEIG(p.id, p.n, p.f, initial)
			if err != nil {
				// Config was validated in NewICProc; unreachable.
				panic(fmt.Sprintf("bap: ic instance: %v", err))
			}
			p.insts[s] = inst
		}
		p.pulseNo++
		return p.broadcastRound(0)

	default:
		round := p.pulseNo - 2 // EIG round completed by this pulse's inbox
		for _, m := range inbox {
			pl, ok := m.Payload.(eigPayload)
			if !ok || pl.Round != round || pl.Instance < 0 || pl.Instance >= p.n {
				continue
			}
			if p.insts == nil {
				continue // corrupted state: instances not initialized
			}
			p.insts[pl.Instance].Absorb(pl.Round, m.From, pl.Pairs)
		}
		if p.insts == nil {
			// Recover from corruption: restart as if at pulse 0.
			p.pulseNo = 0
			return nil
		}
		for _, inst := range p.insts {
			if !inst.Decided() {
				inst.EndRound()
			}
		}
		if p.insts[0].Decided() {
			if !p.done {
				p.vector = make([]Value, p.n)
				for s, inst := range p.insts {
					v, err := inst.Decision()
					if err != nil {
						v = DefaultValue
					}
					p.vector[s] = v
				}
				p.done = true
			}
			return nil
		}
		p.pulseNo++
		return p.broadcastRound(round + 1)
	}
}

// broadcastRound gathers round messages of every instance.
func (p *ICProc) broadcastRound(round int) []sim.Message {
	var out []sim.Message
	for s, inst := range p.insts {
		pairs := inst.RoundMessages(round)
		payload := eigPayload{Instance: s, Round: round, Pairs: pairs}
		out = append(out, broadcastAll(p.id, p.n, payload)...)
	}
	return out
}

// Done reports whether the vector has been decided.
func (p *ICProc) Done() bool { return p.done }

// Vector returns the agreed vector (nil before Done).
func (p *ICProc) Vector() []Value {
	if !p.done {
		return nil
	}
	return append([]Value(nil), p.vector...)
}

// Corrupt implements sim.Corruptible.
func (p *ICProc) Corrupt(entropy func() uint64) {
	p.pulseNo = int(entropy() % 5)
	p.done = false
	p.vector = nil
	p.insts = nil
	if entropy()&1 == 0 {
		p.private = Value(fmt.Sprintf("corrupt-%d", entropy()%13))
	}
}
