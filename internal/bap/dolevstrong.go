package bap

import (
	"fmt"
	"sort"

	"gameauthority/internal/auth"
	"gameauthority/internal/sim"
)

// Dolev–Strong authenticated broadcast: with transferable authentication a
// designated sender broadcasts a value; after f+1 rounds every honest
// processor accepts the same value (or the default if the sender
// equivocated/failed). This is the paper's footnote-2 regime where
// "authentication utilizes a Byzantine agreement that needs only a
// majority" — resilience is bounded by the signature scheme, not n > 3f.

// dsChainLink is one signature in a relay chain.
type dsChainLink struct {
	Signer int
	Tags   auth.TagVector
}

// dsPayload carries a value plus its signature chain.
type dsPayload struct {
	Val   Value
	Chain []dsChainLink
}

// dsMessageBody returns the byte string every chain signature covers:
// the sender id and the value (chains bind to the broadcast instance).
func dsMessageBody(sender int, v Value) []byte {
	return []byte(fmt.Sprintf("ds|%d|%s", sender, string(v)))
}

// DSProc is one processor's state in a Dolev–Strong broadcast with a fixed
// designated sender.
type DSProc struct {
	id, n, f int
	sender   int
	authn    *auth.Authenticator
	initial  Value // only used when id == sender

	extracted map[Value][]dsChainLink // accepted values → best chain seen
	relayQ    []dsPayload             // values to relay next pulse
	pulseNo   int
	done      bool
	decision  Value
}

var _ sim.Process = (*DSProc)(nil)
var _ sim.Corruptible = (*DSProc)(nil)

// NewDSProc creates processor id's state for a broadcast from sender.
// f may be any value < n (authenticated protocols tolerate more faults);
// rounds used = f+1.
func NewDSProc(id, n, f, sender int, authn *auth.Authenticator, initial Value) (*DSProc, error) {
	if n < 2 || f < 0 || f >= n {
		return nil, fmt.Errorf("%w: n=%d f=%d", ErrConfig, n, f)
	}
	if id < 0 || id >= n || sender < 0 || sender >= n {
		return nil, fmt.Errorf("%w: id=%d sender=%d", ErrConfig, id, sender)
	}
	if authn == nil {
		return nil, fmt.Errorf("%w: nil authenticator", ErrConfig)
	}
	return &DSProc{
		id: id, n: n, f: f, sender: sender, authn: authn, initial: initial,
		extracted: make(map[Value][]dsChainLink),
	}, nil
}

// ID implements sim.Process.
func (p *DSProc) ID() int { return p.id }

// DSTotalPulses returns the pulses a Dolev–Strong broadcast needs:
// rounds 1..f+1 plus the final decision pulse.
func DSTotalPulses(f int) int { return f + 2 }

// Step implements sim.Process.
func (p *DSProc) Step(pulse int, inbox []sim.Message) []sim.Message {
	defer func() { p.pulseNo++ }()

	// Absorb: validate chains of length == pulseNo (received in round
	// pulseNo, they must carry pulseNo signatures starting with sender).
	if p.pulseNo >= 1 {
		for _, m := range inbox {
			pl, ok := m.Payload.(dsPayload)
			if !ok {
				continue
			}
			p.absorb(pl, p.pulseNo)
		}
	}

	switch {
	case p.pulseNo == 0:
		if p.id != p.sender {
			return nil
		}
		// Round 1: sender signs and broadcasts.
		body := dsMessageBody(p.sender, p.initial)
		chain := []dsChainLink{{Signer: p.sender, Tags: p.authn.Sign(body)}}
		p.extracted[p.initial] = chain
		return broadcastAll(p.id, p.n, dsPayload{Val: p.initial, Chain: chain})

	case p.pulseNo < p.f+1:
		// Relay newly extracted values with our signature appended.
		out := p.flushRelays()
		return out

	case p.pulseNo == p.f+1:
		// Final relay round then decide.
		out := p.flushRelays()
		p.decide()
		return out

	default:
		if !p.done {
			p.decide()
		}
		return nil
	}
}

// absorb validates an incoming payload at the given round: the chain must
// have exactly `round` distinct signers beginning with the designated
// sender, all tags valid. Valid new values are queued for relay.
func (p *DSProc) absorb(pl dsPayload, round int) {
	if len(pl.Chain) != round || round < 1 {
		return
	}
	if pl.Chain[0].Signer != p.sender {
		return
	}
	seen := make(map[int]bool, len(pl.Chain))
	body := dsMessageBody(p.sender, pl.Val)
	for _, link := range pl.Chain {
		if seen[link.Signer] {
			return // duplicate signer
		}
		seen[link.Signer] = true
		if err := p.authn.Verify(link.Signer, body, link.Tags); err != nil {
			return
		}
	}
	if _, known := p.extracted[pl.Val]; known {
		return
	}
	p.extracted[pl.Val] = pl.Chain
	if !seen[p.id] {
		// Queue for relay with our signature.
		chain := append(append([]dsChainLink(nil), pl.Chain...),
			dsChainLink{Signer: p.id, Tags: p.authn.Sign(body)})
		p.relayQ = append(p.relayQ, dsPayload{Val: pl.Val, Chain: chain})
	}
}

// flushRelays emits queued relays to everyone.
func (p *DSProc) flushRelays() []sim.Message {
	if len(p.relayQ) == 0 {
		return nil
	}
	var out []sim.Message
	for _, pl := range p.relayQ {
		out = append(out, broadcastAll(p.id, p.n, pl)...)
	}
	p.relayQ = nil
	return out
}

// decide applies the Dolev–Strong rule: exactly one extracted value →
// accept it; zero or several (sender equivocated) → default.
func (p *DSProc) decide() {
	p.done = true
	if len(p.extracted) == 1 {
		for v := range p.extracted {
			p.decision = v
		}
		return
	}
	p.decision = DefaultValue
	// Deterministic documentation of the conflict set (sorted) could be
	// logged; the decision itself is the default value.
	if len(p.extracted) > 1 {
		vals := make([]string, 0, len(p.extracted))
		for v := range p.extracted {
			vals = append(vals, string(v))
		}
		sort.Strings(vals)
	}
}

// Done and Decision expose the outcome.
func (p *DSProc) Done() bool { return p.done }

// Decision returns the accepted value or ErrNotDecided.
func (p *DSProc) Decision() (Value, error) {
	if !p.done {
		return DefaultValue, ErrNotDecided
	}
	return p.decision, nil
}

// Corrupt implements sim.Corruptible.
func (p *DSProc) Corrupt(entropy func() uint64) {
	p.pulseNo = int(entropy() % uint64(p.f+3))
	p.done = false
	p.decision = DefaultValue
	p.extracted = make(map[Value][]dsChainLink)
	p.relayQ = nil
}
