package bap

import (
	"fmt"
	"strconv"

	"gameauthority/internal/auth"
	"gameauthority/internal/sim"
)

// Dolev–Strong authenticated broadcast: with transferable authentication a
// designated sender broadcasts a value; after f+1 rounds every honest
// processor accepts the same value (or the default if the sender
// equivocated/failed). This is the paper's footnote-2 regime where
// "authentication utilizes a Byzantine agreement that needs only a
// majority" — resilience is bounded by the signature scheme, not n > 3f.

// dsChainLink is one signature in a relay chain.
type dsChainLink struct {
	Signer int
	Tags   auth.TagVector
}

// dsPayload carries a value plus its signature chain.
type dsPayload struct {
	Val   Value
	Chain []dsChainLink
}

// dsMessageBody returns the byte string every chain signature covers:
// the sender id and the value (chains bind to the broadcast instance).
// It appends into buf so steady-state verification reuses one buffer.
func dsMessageBody(buf []byte, sender int, v Value) []byte {
	buf = append(buf[:0], "ds|"...)
	buf = strconv.AppendInt(buf, int64(sender), 10)
	buf = append(buf, '|')
	return append(buf, v...)
}

// DSProc is one processor's state in a Dolev–Strong broadcast with a fixed
// designated sender.
type DSProc struct {
	id, n, f int
	sender   int
	authn    *auth.Authenticator
	initial  Value // only used when id == sender

	extracted map[Value][]dsChainLink // accepted values → best chain seen
	relayQ    []dsPayload             // values to relay next pulse
	pulseNo   int
	done      bool
	decision  Value

	// Reused verification scratch, pre-sized at construction: quiet pulses
	// (no newly extracted value) run allocation-free, and each inbound
	// chain is validated without a per-message signer map.
	seenBuf []bool
	bodyBuf []byte
	outBuf  []sim.Message
}

var _ sim.Process = (*DSProc)(nil)
var _ sim.Corruptible = (*DSProc)(nil)

// NewDSProc creates processor id's state for a broadcast from sender.
// f may be any value < n (authenticated protocols tolerate more faults);
// rounds used = f+1.
func NewDSProc(id, n, f, sender int, authn *auth.Authenticator, initial Value) (*DSProc, error) {
	if n < 2 || f < 0 || f >= n {
		return nil, fmt.Errorf("%w: n=%d f=%d", ErrConfig, n, f)
	}
	if id < 0 || id >= n || sender < 0 || sender >= n {
		return nil, fmt.Errorf("%w: id=%d sender=%d", ErrConfig, id, sender)
	}
	if authn == nil {
		return nil, fmt.Errorf("%w: nil authenticator", ErrConfig)
	}
	return &DSProc{
		id: id, n: n, f: f, sender: sender, authn: authn, initial: initial,
		extracted: make(map[Value][]dsChainLink),
		seenBuf:   make([]bool, n),
		bodyBuf:   make([]byte, 0, 64),
	}, nil
}

// ID implements sim.Process.
func (p *DSProc) ID() int { return p.id }

// DSTotalPulses returns the pulses a Dolev–Strong broadcast needs:
// rounds 1..f+1 plus the final decision pulse.
func DSTotalPulses(f int) int { return f + 2 }

// Step implements sim.Process.
func (p *DSProc) Step(pulse int, inbox []sim.Message) []sim.Message {
	defer func() { p.pulseNo++ }()

	// Absorb: validate chains of length == pulseNo (received in round
	// pulseNo, they must carry pulseNo signatures starting with sender).
	if p.pulseNo >= 1 {
		for _, m := range inbox {
			pl, ok := m.Payload.(dsPayload)
			if !ok {
				continue
			}
			p.absorb(pl, p.pulseNo)
		}
	}

	switch {
	case p.pulseNo == 0:
		if p.id != p.sender {
			return nil
		}
		// Round 1: sender signs and broadcasts.
		body := dsMessageBody(p.bodyBuf, p.sender, p.initial)
		p.bodyBuf = body
		chain := []dsChainLink{{Signer: p.sender, Tags: p.authn.Sign(body)}}
		p.extracted[p.initial] = chain
		return broadcastAll(p.id, p.n, dsPayload{Val: p.initial, Chain: chain})

	case p.pulseNo < p.f+1:
		// Relay newly extracted values with our signature appended.
		out := p.flushRelays()
		return out

	case p.pulseNo == p.f+1:
		// Final relay round then decide.
		out := p.flushRelays()
		p.decide()
		return out

	default:
		if !p.done {
			p.decide()
		}
		return nil
	}
}

// absorb validates an incoming payload at the given round: the chain must
// have exactly `round` distinct in-range signers beginning with the
// designated sender, all tags valid. Valid new values are queued for relay.
// The signer-dedup scratch is a reused []bool, cleared link by link on the
// way out, so rejecting Byzantine floods does not allocate.
func (p *DSProc) absorb(pl dsPayload, round int) {
	if len(pl.Chain) != round || round < 1 {
		return
	}
	if pl.Chain[0].Signer != p.sender {
		return
	}
	body := dsMessageBody(p.bodyBuf, p.sender, pl.Val)
	p.bodyBuf = body
	valid := 0
	selfSigned := false
	for _, link := range pl.Chain {
		if link.Signer < 0 || link.Signer >= p.n || p.seenBuf[link.Signer] {
			break // out-of-range or duplicate signer
		}
		if err := p.authn.Verify(link.Signer, body, link.Tags); err != nil {
			break
		}
		p.seenBuf[link.Signer] = true
		if link.Signer == p.id {
			selfSigned = true
		}
		valid++
	}
	for _, link := range pl.Chain[:valid] {
		p.seenBuf[link.Signer] = false
	}
	if valid != len(pl.Chain) {
		return
	}
	if _, known := p.extracted[pl.Val]; known {
		return
	}
	p.extracted[pl.Val] = pl.Chain
	if !selfSigned {
		// Queue for relay with our signature.
		chain := append(append([]dsChainLink(nil), pl.Chain...),
			dsChainLink{Signer: p.id, Tags: p.authn.Sign(body)})
		p.relayQ = append(p.relayQ, dsPayload{Val: pl.Val, Chain: chain})
	}
}

// flushRelays emits queued relays to everyone, reusing the outbox buffer
// (the network copies messages out before the next pulse's flush).
func (p *DSProc) flushRelays() []sim.Message {
	if len(p.relayQ) == 0 {
		return nil
	}
	out := p.outBuf[:0]
	for _, pl := range p.relayQ {
		for to := 0; to < p.n; to++ {
			out = append(out, sim.Message{From: p.id, To: to, Payload: pl})
		}
	}
	p.relayQ = p.relayQ[:0]
	p.outBuf = out
	return out
}

// decide applies the Dolev–Strong rule: exactly one extracted value →
// accept it; zero or several (sender equivocated) → default.
func (p *DSProc) decide() {
	p.done = true
	if len(p.extracted) == 1 {
		for v := range p.extracted {
			p.decision = v
		}
		return
	}
	p.decision = DefaultValue
}

// Done and Decision expose the outcome.
func (p *DSProc) Done() bool { return p.done }

// Decision returns the accepted value or ErrNotDecided.
func (p *DSProc) Decision() (Value, error) {
	if !p.done {
		return DefaultValue, ErrNotDecided
	}
	return p.decision, nil
}

// Corrupt implements sim.Corruptible.
func (p *DSProc) Corrupt(entropy func() uint64) {
	p.pulseNo = int(entropy() % uint64(p.f+3))
	p.done = false
	p.decision = DefaultValue
	p.extracted = make(map[Value][]dsChainLink)
	p.relayQ = nil
}
