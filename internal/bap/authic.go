package bap

import (
	"fmt"

	"gameauthority/internal/auth"
	"gameauthority/internal/sim"
)

// AuthICProc is authenticated interactive consistency: n parallel
// Dolev–Strong broadcasts, one per source, running in lock-step. With
// transferable authentication the resilience bound improves from n > 3f to
// an honest majority — the paper's footnote 2: "authentication utilizes a
// Byzantine agreement that needs only a majority". Compared to EIG-based
// interactive consistency it also keeps messages polynomial, at the price
// of the trusted key setup (internal/auth).
type AuthICProc struct {
	id, n, f int
	procs    []*DSProc // procs[s]: broadcast with sender s
	done     bool
	vector   []Value

	// Reused per-pulse scratch: the demux lists and the multiplexed outbox
	// persist across pulses so steady-state stepping does not allocate.
	perInstance [][]sim.Message
	outBuf      []sim.Message
}

var (
	_ sim.Process     = (*AuthICProc)(nil)
	_ sim.Corruptible = (*AuthICProc)(nil)
)

// authICPayload wraps one sender-instance's Dolev–Strong payload.
type authICPayload struct {
	Instance int
	Inner    dsPayload
}

// NewAuthICProc builds processor id's authenticated IC with the given
// private value. f may be up to n−1 (signature-bounded); the usual choice
// is f < n/2 so that majority-based uses downstream remain sound.
func NewAuthICProc(id, n, f int, authn *auth.Authenticator, private Value) (*AuthICProc, error) {
	if authn == nil {
		return nil, fmt.Errorf("%w: nil authenticator", ErrConfig)
	}
	p := &AuthICProc{id: id, n: n, f: f, procs: make([]*DSProc, n),
		perInstance: make([][]sim.Message, n)}
	for s := 0; s < n; s++ {
		v := DefaultValue
		if s == id {
			v = private
		}
		ds, err := NewDSProc(id, n, f, s, authn, v)
		if err != nil {
			return nil, err
		}
		p.procs[s] = ds
	}
	return p, nil
}

// ID implements sim.Process.
func (p *AuthICProc) ID() int { return p.id }

// AuthICTotalPulses returns the pulses authenticated IC needs (all
// broadcasts run concurrently): f+2.
func AuthICTotalPulses(f int) int { return DSTotalPulses(f) }

// Step implements sim.Process: demultiplex per-instance traffic, step every
// broadcast, and multiplex the outboxes.
func (p *AuthICProc) Step(pulse int, inbox []sim.Message) []sim.Message {
	perInstance := p.perInstance
	for s := range perInstance {
		perInstance[s] = perInstance[s][:0]
	}
	for _, m := range inbox {
		pl, ok := m.Payload.(authICPayload)
		if !ok || pl.Instance < 0 || pl.Instance >= p.n {
			continue
		}
		perInstance[pl.Instance] = append(perInstance[pl.Instance],
			sim.Message{From: m.From, To: p.id, Payload: pl.Inner})
	}
	out := p.outBuf[:0]
	allDone := true
	for s, ds := range p.procs {
		msgs := ds.Step(pulse, perInstance[s])
		for _, m := range msgs {
			if inner, ok := m.Payload.(dsPayload); ok {
				m.Payload = authICPayload{Instance: s, Inner: inner}
				out = append(out, m)
			}
		}
		if !ds.Done() {
			allDone = false
		}
	}
	p.outBuf = out
	if allDone && !p.done {
		p.done = true
		p.vector = make([]Value, p.n)
		for s, ds := range p.procs {
			v, err := ds.Decision()
			if err != nil {
				v = DefaultValue
			}
			p.vector[s] = v
		}
	}
	return out
}

// Done reports whether the vector has been decided.
func (p *AuthICProc) Done() bool { return p.done }

// Vector returns the agreed vector (nil before Done).
func (p *AuthICProc) Vector() []Value {
	if !p.done {
		return nil
	}
	return append([]Value(nil), p.vector...)
}

// Corrupt implements sim.Corruptible.
func (p *AuthICProc) Corrupt(entropy func() uint64) {
	p.done = false
	p.vector = nil
	for _, ds := range p.procs {
		ds.Corrupt(entropy)
	}
}
