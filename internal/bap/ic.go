package bap

// This file is the allocation-free interactive-consistency engine used by
// the distributed driver's pulse hot path. It runs the same protocol as
// ICProc — one dissemination pulse, then all n EIG instances in lock-step —
// but as a resettable state machine over pre-sized arenas instead of a
// sim.Process that is rebuilt every phase:
//
//   - the n EIG instances are allocated once per processor and Reset per
//     phase (flat arrays over the shared (n, f) layout — see eig.go);
//   - outbound payloads are pointers into rotating slabs, so boxing them
//     into the carrier message's []any does not allocate;
//   - every destination receives the identical broadcast, so one shared
//     payload list per pulse serves all n carrier messages.
//
// The engine is message-passive: the carrier protocol (core's distMsg)
// calls Deliver for each inbound payload and then EndPulse once per
// network pulse. ICProc remains as the standalone sim adapter; its value-
// typed wire formats (eigPayload, icInit) are pinned by Byzantine tests.

// icSlabRounds is how many pulses an emitted payload must stay untouched
// before its slab slot is reused: one pulse in transit, one being read,
// one of slack for replaying adversaries (same bound as the carrier's).
const icSlabRounds = 3

// icIntro is the dissemination-pulse payload: the sender's private value.
// Pointer-typed on the wire (unlike icInit) so emitting it is heap-free.
type icIntro struct {
	Val Value
}

// icRoundMsg is one EIG round broadcast of one instance, pointer-typed on
// the wire with Pairs sub-sliced from a per-pulse arena.
type icRoundMsg struct {
	Instance int
	Round    int
	Pairs    []Pair
}

// IC is the reusable interactive-consistency engine: build once per
// processor with NewIC, then Reset(private) at the start of every phase.
// Between Reset and Done, call Deliver for each payload received from the
// network and then EndPulse exactly once per pulse; EndPulse returns the
// shared payload list to broadcast (nil once the vector is decided).
type IC struct {
	id, n, f int
	private  Value
	pulseNo  int
	done     bool
	insts    []*EIG
	heard    []Value
	heardSet []bool
	vector   []Value

	// Rotating outbound arenas, indexed by network pulse % icSlabRounds.
	intros [icSlabRounds]icIntro
	rounds [icSlabRounds][]icRoundMsg
	inner  [icSlabRounds][]any
	pairs  [icSlabRounds][]Pair
	starts []int // per-instance offsets into the pair arena being built
}

// NewIC builds the engine for processor id at shape (n, f). The returned
// engine is idle until the first Reset.
func NewIC(id, n, f int) (*IC, error) {
	ic := &IC{id: id, n: n, f: f, done: true}
	ic.insts = make([]*EIG, n)
	for s := 0; s < n; s++ {
		inst, err := NewEIG(id, n, f, DefaultValue)
		if err != nil {
			return nil, err
		}
		ic.insts[s] = inst
	}
	ic.heard = make([]Value, n)
	ic.heardSet = make([]bool, n)
	ic.vector = make([]Value, n)
	maxPairs := n * ic.insts[0].MaxRoundPairs()
	for i := 0; i < icSlabRounds; i++ {
		ic.rounds[i] = make([]icRoundMsg, 0, n)
		ic.inner[i] = make([]any, 0, n)
		ic.pairs[i] = make([]Pair, 0, maxPairs)
	}
	ic.starts = make([]int, n+1)
	return ic, nil
}

// Reset rewinds the engine to the start of a fresh agreement on private,
// reusing every backing array.
func (ic *IC) Reset(private Value) {
	ic.private = private
	ic.pulseNo = 0
	ic.done = false
	for i := range ic.heardSet {
		ic.heardSet[i] = false
		ic.heard[i] = DefaultValue
	}
}

// Deliver ingests one payload received from processor `from` this pulse.
// Payloads from the wrong pulse position (stale rounds, pre-dissemination
// traffic) are dropped, mirroring ICProc's inbox filters.
func (ic *IC) Deliver(from int, payload any) {
	if ic.done {
		return
	}
	switch ic.pulseNo {
	case 0:
		// The dissemination pulse ignores its inbox.
	case 1:
		if m, ok := payload.(*icIntro); ok {
			if from >= 0 && from < ic.n && !ic.heardSet[from] {
				ic.heardSet[from] = true
				ic.heard[from] = m.Val
			}
		}
	default:
		round := ic.pulseNo - 2
		if m, ok := payload.(*icRoundMsg); ok {
			if m.Round == round && m.Instance >= 0 && m.Instance < ic.n {
				ic.insts[m.Instance].Absorb(round, from, m.Pairs)
			}
		}
	}
}

// EndPulse completes one network pulse after all Delivers: it advances the
// protocol state machine and returns the payload list to broadcast (the
// same list goes to every destination) plus the done flag. pulse is the
// monotonic network pulse number, used only to rotate the outbound arenas.
func (ic *IC) EndPulse(pulse int) ([]any, bool) {
	slot := pulse % icSlabRounds
	switch {
	case ic.done:
		return nil, true

	case ic.pulseNo == 0:
		// Dissemination pulse: broadcast the private value.
		ic.pulseNo = 1
		ic.intros[slot] = icIntro{Val: ic.private}
		list := append(ic.inner[slot][:0], &ic.intros[slot])
		ic.inner[slot] = list
		return list, false

	case ic.pulseNo == 1:
		// Instances start: instance s's initial value is what we heard
		// from s (default if silent).
		for s := 0; s < ic.n; s++ {
			ic.insts[s].Reset(ic.heard[s])
		}
		ic.pulseNo = 2
		return ic.broadcastRound(0, slot), false

	default:
		round := ic.pulseNo - 2 // EIG round completed by this pulse's inbox
		for _, inst := range ic.insts {
			if !inst.Decided() {
				inst.EndRound()
			}
		}
		if ic.insts[0].Decided() {
			for s, inst := range ic.insts {
				v, err := inst.Decision()
				if err != nil {
					v = DefaultValue
				}
				ic.vector[s] = v
			}
			ic.done = true
			return nil, true
		}
		ic.pulseNo++
		return ic.broadcastRound(round+1, slot), false
	}
}

// broadcastRound gathers every instance's round messages into the slot's
// arenas: pairs are appended to one shared arena and sub-sliced per
// instance only once it is fully built, so arena growth (which should not
// happen — the arena is pre-sized to the widest level) can never dangle.
func (ic *IC) broadcastRound(round, slot int) []any {
	pairs := ic.pairs[slot][:0]
	for s, inst := range ic.insts {
		ic.starts[s] = len(pairs)
		pairs = inst.AppendRoundMessages(round, pairs)
	}
	ic.starts[ic.n] = len(pairs)
	msgs := ic.rounds[slot][:0]
	for s := 0; s < ic.n; s++ {
		lo, hi := ic.starts[s], ic.starts[s+1]
		msgs = append(msgs, icRoundMsg{Instance: s, Round: round, Pairs: pairs[lo:hi:hi]})
	}
	list := ic.inner[slot][:0]
	for i := range msgs {
		list = append(list, &msgs[i])
	}
	ic.pairs[slot] = pairs
	ic.rounds[slot] = msgs
	ic.inner[slot] = list
	return list
}

// Done reports whether the vector has been decided since the last Reset.
func (ic *IC) Done() bool { return ic.done }

// VectorRef returns the agreed vector without copying; it is valid only
// while Done() and until the next Reset. Callers must not retain it.
func (ic *IC) VectorRef() []Value {
	if !ic.done {
		return nil
	}
	return ic.vector
}
