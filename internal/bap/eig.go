package bap

import (
	"errors"
	"fmt"
	"sync"
)

// Value is an agreement value. Protocol payloads are canonically encoded
// strings so values are comparable and hashable.
type Value string

// DefaultValue is the fallback decision when no majority emerges.
const DefaultValue Value = ""

// Common errors.
var (
	ErrConfig     = errors.New("bap: invalid configuration")
	ErrNotDecided = errors.New("bap: protocol has not terminated")
)

// Rounds returns the number of communication rounds EIG needs: f+1.
func Rounds(f int) int { return f + 1 }

// eigLayout is the shared, immutable shape of the EIG tree for one (n, f)
// pair: every distinct-processor label up to length f+1, enumerated level
// by level in lexicographic order, with precomputed label strings, a
// label→index map (string lookups on a prebuilt map do not allocate), and
// per-node child tables. Building it costs one burst of allocations; it is
// cached process-wide so every EIG instance at the same (n, f) shares it —
// the instance state shrinks to flat value/seen arrays over these indices,
// which is what makes the per-pulse protocol work allocation-free.
type eigLayout struct {
	n, f       int
	labels     []string         // node index → label path
	index      map[string]int32 // label → node index
	levelStart []int32          // level L occupies [levelStart[L], levelStart[L+1])
	child      [][]int32        // node index → per-processor child index (-1: none)
}

var layoutCache sync.Map // [2]int{n, f} → *eigLayout

// layoutFor returns the cached layout for (n, f), building it on first use.
func layoutFor(n, f int) *eigLayout {
	key := [2]int{n, f}
	if v, ok := layoutCache.Load(key); ok {
		return v.(*eigLayout)
	}
	lay := buildLayout(n, f)
	actual, _ := layoutCache.LoadOrStore(key, lay)
	return actual.(*eigLayout)
}

// buildLayout enumerates the distinct-id labels level by level. Within a
// level, parents are visited in index (= lexicographic) order and children
// appended in processor order, so same-length labels are lexicographically
// sorted by construction — RoundMessages inherits sortedness for free.
func buildLayout(n, f int) *eigLayout {
	lay := &eigLayout{n: n, f: f, index: make(map[string]int32)}
	lay.labels = append(lay.labels, "")
	lay.index[""] = 0
	lay.levelStart = append(lay.levelStart, 0, 1)
	for level := 0; level <= f; level++ {
		for i := lay.levelStart[level]; i < lay.levelStart[level+1]; i++ {
			label := lay.labels[i]
			for j := 0; j < n; j++ {
				if labelContains(label, j) {
					continue
				}
				child := label + string(byte(j))
				lay.index[child] = int32(len(lay.labels))
				lay.labels = append(lay.labels, child)
			}
		}
		lay.levelStart = append(lay.levelStart, int32(len(lay.labels)))
	}
	lay.child = make([][]int32, len(lay.labels))
	flat := make([]int32, len(lay.labels)*n)
	for i := range flat {
		flat[i] = -1
	}
	for i, label := range lay.labels {
		lay.child[i] = flat[i*n : (i+1)*n]
		if len(label) > f {
			continue // leaves have no children
		}
		for j := 0; j < n; j++ {
			if labelContains(label, j) {
				continue
			}
			lay.child[i][j] = lay.index[label+string(byte(j))]
		}
	}
	return lay
}

// nodes returns the total node count.
func (l *eigLayout) nodes() int { return len(l.labels) }

// level returns the [start, end) node range of one tree level.
func (l *eigLayout) level(lv int) (int32, int32) {
	return l.levelStart[lv], l.levelStart[lv+1]
}

// EIG is one processor's state in a single EIG agreement instance.
// It is a pure state machine: the caller moves messages between instances
// (the sim adapter in process.go does this over a Network).
//
// State is a pair of flat arrays indexed by the shared layout — no maps,
// no per-round allocation: Absorb, RoundMessages (via AppendRoundMessages)
// and EndRound run allocation-free once the instance exists.
type EIG struct {
	id, n, f int
	round    int // completed rounds
	lay      *eigLayout
	vals     []Value // node index → stored value
	set      []bool  // node index → value present
	res      []Value // resolve scratch (bottom-up majorities)
	decided  bool
	decision Value
}

// Pair is one EIG tree entry in transit: the label path and the value the
// sender stores for it.
type Pair struct {
	Label string
	Val   Value
}

// NewEIG creates processor id's state for one agreement on initial.
// Requires n > 3f (the LSP bound) and 0 ≤ id < n.
func NewEIG(id, n, f int, initial Value) (*EIG, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("%w: n=%d must exceed 3f=%d", ErrConfig, n, 3*f)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("%w: id=%d out of range", ErrConfig, id)
	}
	e := &EIG{id: id, n: n, f: f, lay: layoutFor(n, f)}
	nodes := e.lay.nodes()
	e.vals = make([]Value, nodes)
	e.set = make([]bool, nodes)
	e.res = make([]Value, nodes)
	e.Reset(initial)
	return e, nil
}

// Reset rewinds the instance to a fresh agreement on initial, reusing all
// backing arrays (no allocation). Composition layers that run one agreement
// per phase (the distributed driver's IC) reset instead of reallocating.
func (e *EIG) Reset(initial Value) {
	for i := range e.set {
		e.set[i] = false
	}
	for i := range e.vals {
		e.vals[i] = DefaultValue
	}
	e.round = 0
	e.decided = false
	e.decision = DefaultValue
	e.vals[0] = initial
	e.set[0] = true
}

// labelContains reports whether the label path includes processor j.
func labelContains(label string, j int) bool {
	for i := 0; i < len(label); i++ {
		if int(label[i]) == j {
			return true
		}
	}
	return false
}

// RoundMessages returns the pairs processor id must broadcast in the given
// round (0-based): all tree nodes at level == round whose label does not
// contain id, in label order. Every processor receives the same pairs
// (honest behaviour).
func (e *EIG) RoundMessages(round int) []Pair {
	return e.AppendRoundMessages(round, nil)
}

// AppendRoundMessages is RoundMessages into a caller-owned buffer: pairs
// are appended to dst and the extended slice returned. With a pre-sized
// buffer the call does not allocate.
func (e *EIG) AppendRoundMessages(round int, dst []Pair) []Pair {
	if round < 0 || round > e.f+1 {
		return dst
	}
	start, end := e.lay.level(round)
	for i := start; i < end; i++ {
		if !e.set[i] || labelContains(e.lay.labels[i], e.id) {
			continue
		}
		dst = append(dst, Pair{Label: e.lay.labels[i], Val: e.vals[i]})
	}
	return dst
}

// MaxRoundPairs returns an upper bound on the pairs AppendRoundMessages
// can produce in any single round — the widest tree level. Callers size
// their reusable buffers with it.
func (e *EIG) MaxRoundPairs() int {
	max := 0
	for lv := 0; lv < len(e.lay.levelStart)-1; lv++ {
		if w := int(e.lay.levelStart[lv+1] - e.lay.levelStart[lv]); w > max {
			max = w
		}
	}
	return max
}

// Absorb ingests the pairs received from processor `from` in the given
// round: pair (L, v) becomes node L·from provided the label has the right
// level and does not already contain `from`. First writer wins; labels
// outside the distinct-processor tree (Byzantine garbage) are dropped.
func (e *EIG) Absorb(round, from int, pairs []Pair) {
	if from < 0 || from >= e.n {
		return
	}
	for _, p := range pairs {
		if len(p.Label) != round || labelContains(p.Label, from) {
			continue
		}
		idx, ok := e.lay.index[p.Label]
		if !ok {
			continue
		}
		child := e.lay.child[idx][from]
		if child < 0 || e.set[child] {
			continue // leaf level, or first writer already won
		}
		e.vals[child] = p.Val
		e.set[child] = true
	}
}

// EndRound marks a communication round complete. After Rounds(f) rounds the
// instance resolves and decides.
func (e *EIG) EndRound() {
	e.round++
	if e.round >= Rounds(e.f) && !e.decided {
		e.decision = e.resolve()
		e.decided = true
	}
}

// Decided reports termination, and Decision returns the agreed value.
func (e *EIG) Decided() bool { return e.decided }

// Decision returns the decided value or ErrNotDecided.
func (e *EIG) Decision() (Value, error) {
	if !e.decided {
		return DefaultValue, ErrNotDecided
	}
	return e.decision, nil
}

// resolve computes the recursive majority ("resolve") of the EIG tree,
// bottom-up over the flat layout: leaves resolve to their stored value (or
// the default), inner nodes to the strict majority of their children's
// resolutions. A strict majority is unique, so the pairwise count below is
// order-independent and needs no map.
func (e *EIG) resolve() Value {
	start, end := e.lay.level(e.f + 1)
	for i := start; i < end; i++ {
		if e.set[i] {
			e.res[i] = e.vals[i]
		} else {
			e.res[i] = DefaultValue
		}
	}
	for lv := e.f; lv >= 0; lv-- {
		start, end := e.lay.level(lv)
		for i := start; i < end; i++ {
			children := e.lay.child[i]
			total := 0
			for j := 0; j < e.n; j++ {
				if children[j] >= 0 {
					total++
				}
			}
			if total == 0 {
				if e.set[i] {
					e.res[i] = e.vals[i]
				} else {
					e.res[i] = DefaultValue
				}
				continue
			}
			e.res[i] = DefaultValue
			for j := 0; j < e.n; j++ {
				if children[j] < 0 {
					continue
				}
				v := e.res[children[j]]
				count := 0
				for k := 0; k < e.n; k++ {
					if children[k] >= 0 && e.res[children[k]] == v {
						count++
					}
				}
				if 2*count > total {
					e.res[i] = v
					break
				}
			}
		}
	}
	return e.res[0]
}

// TreeSize returns the number of stored tree nodes (for overhead metrics).
func (e *EIG) TreeSize() int {
	size := 0
	for _, s := range e.set {
		if s {
			size++
		}
	}
	return size
}

// Corrupt scrambles the instance's internal state (transient fault model):
// random round counter, garbage values, arbitrary decision flag.
func (e *EIG) Corrupt(entropy func() uint64) {
	e.round = int(entropy() % uint64(e.f+2))
	e.decided = entropy()&1 == 0
	e.decision = Value(fmt.Sprintf("garbage-%d", entropy()%97))
	for i := range e.set {
		e.set[i] = false
	}
	e.vals[0] = e.decision
	e.set[0] = true
	// A few arbitrary nodes.
	for i := uint64(0); i < entropy()%5; i++ {
		j := byte(entropy() % uint64(e.n))
		if idx, ok := e.lay.index[string(j)]; ok {
			e.vals[idx] = Value(fmt.Sprintf("junk-%d", entropy()%31))
			e.set[idx] = true
		}
	}
}
