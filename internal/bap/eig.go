package bap

import (
	"errors"
	"fmt"
	"sort"
)

// Value is an agreement value. Protocol payloads are canonically encoded
// strings so values are comparable and hashable.
type Value string

// DefaultValue is the fallback decision when no majority emerges.
const DefaultValue Value = ""

// Common errors.
var (
	ErrConfig     = errors.New("bap: invalid configuration")
	ErrNotDecided = errors.New("bap: protocol has not terminated")
)

// Rounds returns the number of communication rounds EIG needs: f+1.
func Rounds(f int) int { return f + 1 }

// EIG is one processor's state in a single EIG agreement instance.
// It is a pure state machine: the caller moves messages between instances
// (the sim adapter in process.go does this over a Network).
type EIG struct {
	id, n, f int
	round    int // completed rounds
	tree     map[string]Value
	decided  bool
	decision Value
}

// Pair is one EIG tree entry in transit: the label path and the value the
// sender stores for it.
type Pair struct {
	Label string
	Val   Value
}

// NewEIG creates processor id's state for one agreement on initial.
// Requires n > 3f (the LSP bound) and 0 ≤ id < n.
func NewEIG(id, n, f int, initial Value) (*EIG, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("%w: n=%d must exceed 3f=%d", ErrConfig, n, 3*f)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("%w: id=%d out of range", ErrConfig, id)
	}
	e := &EIG{id: id, n: n, f: f, tree: map[string]Value{"": initial}}
	return e, nil
}

// labelContains reports whether the label path includes processor j.
func labelContains(label string, j int) bool {
	for i := 0; i < len(label); i++ {
		if int(label[i]) == j {
			return true
		}
	}
	return false
}

// RoundMessages returns the pairs processor id must broadcast in the given
// round (0-based): all tree nodes at level == round whose label does not
// contain id. Every processor receives the same pairs (honest behaviour).
func (e *EIG) RoundMessages(round int) []Pair {
	var out []Pair
	for label, val := range e.tree {
		if len(label) != round || labelContains(label, e.id) {
			continue
		}
		out = append(out, Pair{Label: label, Val: val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Absorb ingests the pairs received from processor `from` in the given
// round: pair (L, v) becomes tree[L·from] provided the label has the right
// level, does not already contain `from`, and does not contain this
// processor (nodes through own id are redundant).
func (e *EIG) Absorb(round, from int, pairs []Pair) {
	if from < 0 || from >= e.n {
		return
	}
	for _, p := range pairs {
		if len(p.Label) != round || labelContains(p.Label, from) {
			continue
		}
		child := p.Label + string(byte(from))
		if len(child) > e.f+1 {
			continue
		}
		if _, exists := e.tree[child]; exists {
			continue // first writer wins; duplicates from a liar are ignored
		}
		e.tree[child] = p.Val
	}
}

// EndRound marks a communication round complete. After Rounds(f) rounds the
// instance resolves and decides.
func (e *EIG) EndRound() {
	e.round++
	if e.round >= Rounds(e.f) && !e.decided {
		e.decision = e.resolve("")
		e.decided = true
	}
}

// Decided reports termination, and Decision returns the agreed value.
func (e *EIG) Decided() bool { return e.decided }

// Decision returns the decided value or ErrNotDecided.
func (e *EIG) Decision() (Value, error) {
	if !e.decided {
		return DefaultValue, ErrNotDecided
	}
	return e.decision, nil
}

// resolve computes the recursive majority ("resolve") of the EIG tree.
func (e *EIG) resolve(label string) Value {
	if len(label) == e.f+1 {
		if v, ok := e.tree[label]; ok {
			return v
		}
		return DefaultValue
	}
	counts := make(map[Value]int)
	children := 0
	for j := 0; j < e.n; j++ {
		if labelContains(label, j) {
			continue
		}
		children++
		counts[e.resolve(label+string(byte(j)))]++
	}
	if children == 0 {
		if v, ok := e.tree[label]; ok {
			return v
		}
		return DefaultValue
	}
	// Strict majority, with deterministic tie handling (default).
	for v, c := range counts {
		if 2*c > children {
			return v
		}
	}
	return DefaultValue
}

// TreeSize returns the number of stored tree nodes (for overhead metrics).
func (e *EIG) TreeSize() int { return len(e.tree) }

// Corrupt scrambles the instance's internal state (transient fault model):
// random round counter, garbage tree entries, arbitrary decision flag.
func (e *EIG) Corrupt(entropy func() uint64) {
	e.round = int(entropy() % uint64(e.f+2))
	e.decided = entropy()&1 == 0
	e.decision = Value(fmt.Sprintf("garbage-%d", entropy()%97))
	e.tree = map[string]Value{"": e.decision}
	// A few arbitrary nodes.
	for i := uint64(0); i < entropy()%5; i++ {
		j := byte(entropy() % uint64(e.n))
		e.tree[string(j)] = Value(fmt.Sprintf("junk-%d", entropy()%31))
	}
}
