// Package bap implements the Byzantine agreement protocols ("BAP") the game
// authority is built on (paper §3.3): the exponential-information-gathering
// (EIG) protocol of Lamport, Shostak and Pease [19] for n > 3f without
// authentication, a Dolev–Strong style authenticated broadcast (the paper's
// footnote 2 variant that "needs only a majority" given authentication), and
// interactive consistency (vector agreement) built from parallel instances.
//
// EIG message size is exponential in f; the paper cites Garay–Moses [16] as
// the polynomial alternative. At the simulated scales (n ≤ 13, f ≤ 4) EIG is
// simpler and behaviourally identical, which is what matters for the
// middleware (see DESIGN.md §4, substitutions).
package bap
