package punish

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownAgent is returned for out-of-range agent ids.
var ErrUnknownAgent = errors.New("punish: unknown agent")

// Event records one punishment application.
type Event struct {
	Agent    int
	Round    int
	Severity float64
}

// Scheme is a punishment policy. Implementations must be deterministic.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Punish applies a sanction of the given severity (in [0,1], see
	// audit.Reason.Severity) to agent at round.
	Punish(agent, round int, severity float64) error
	// Excluded reports whether the agent is currently barred from play
	// (the "restricts the action of dishonest agents" outcome, §3.4).
	Excluded(agent int) bool
	// Standing returns a scheme-specific score (reputation, balance,
	// offence count) for reporting; higher is better.
	Standing(agent int) float64
	// History returns all punishment events in application order.
	History() []Event
	// Fresh returns an empty replica with the same parameters — the
	// distributed driver gives every processor's executive its own
	// replica, and the §4 transient-fault recovery rebuilds ledgers
	// from fresh state.
	Fresh() Scheme
}

// --- Disconnect --------------------------------------------------------------

// Disconnect bars an agent permanently after its offences reach a strike
// budget (default 1 — the paper's "only effective option is to disconnect
// Byzantine agents from the network").
type Disconnect struct {
	n       int
	strikes []float64
	budget  float64
	events  []Event
}

var _ Scheme = (*Disconnect)(nil)

// NewDisconnect creates the scheme for n agents; budget ≤ 0 defaults to 1
// (first proven foul disconnects).
func NewDisconnect(n int, budget float64) *Disconnect {
	if budget <= 0 {
		budget = 1
	}
	return &Disconnect{n: n, strikes: make([]float64, n), budget: budget}
}

// Name implements Scheme.
func (d *Disconnect) Name() string { return "disconnect" }

// Punish implements Scheme.
func (d *Disconnect) Punish(agent, round int, severity float64) error {
	if agent < 0 || agent >= d.n {
		return fmt.Errorf("%w: %d", ErrUnknownAgent, agent)
	}
	d.strikes[agent] += severity
	d.events = append(d.events, Event{Agent: agent, Round: round, Severity: severity})
	return nil
}

// Excluded implements Scheme.
func (d *Disconnect) Excluded(agent int) bool {
	return agent >= 0 && agent < d.n && d.strikes[agent] >= d.budget
}

// Standing implements Scheme: remaining strike budget.
func (d *Disconnect) Standing(agent int) float64 {
	if agent < 0 || agent >= d.n {
		return 0
	}
	s := d.budget - d.strikes[agent]
	if s < 0 {
		return 0
	}
	return s
}

// History implements Scheme.
func (d *Disconnect) History() []Event { return append([]Event(nil), d.events...) }

// Fresh implements Scheme.
func (d *Disconnect) Fresh() Scheme { return NewDisconnect(d.n, d.budget) }

// --- Reputation ---------------------------------------------------------------

// Reputation multiplies an agent's score by a decay factor per offence
// (weighted by severity) and excludes agents below a threshold. Honest
// rounds slowly regenerate reputation toward 1, so one-off suspicions
// (e.g. statistical flags) wash out while repeat offenders fall.
type Reputation struct {
	n         int
	score     []float64
	decay     float64 // per-unit-severity multiplicative decay, e.g. 0.5
	threshold float64
	regen     float64 // additive per honest round, e.g. 0.01
	events    []Event
}

var _ Scheme = (*Reputation)(nil)

// NewReputation creates the scheme. Sensible defaults are substituted for
// out-of-range parameters: decay 0.5, threshold 0.2, regen 0.01.
func NewReputation(n int, decay, threshold, regen float64) *Reputation {
	if decay <= 0 || decay >= 1 {
		decay = 0.5
	}
	if threshold <= 0 || threshold >= 1 {
		threshold = 0.2
	}
	if regen < 0 || regen >= 1 {
		regen = 0.01
	}
	r := &Reputation{n: n, score: make([]float64, n), decay: decay, threshold: threshold, regen: regen}
	for i := range r.score {
		r.score[i] = 1
	}
	return r
}

// Name implements Scheme.
func (r *Reputation) Name() string { return "reputation" }

// Punish implements Scheme.
func (r *Reputation) Punish(agent, round int, severity float64) error {
	if agent < 0 || agent >= r.n {
		return fmt.Errorf("%w: %d", ErrUnknownAgent, agent)
	}
	// Severity 1 → full decay; severity 0.5 → half-way (geometric
	// interpolation keeps repeated small offences compounding).
	factor := 1 - (1-r.decay)*severity
	r.score[agent] *= factor
	r.events = append(r.events, Event{Agent: agent, Round: round, Severity: severity})
	return nil
}

// Credit rewards an honest round, regenerating reputation toward 1.
func (r *Reputation) Credit(agent int) {
	if agent < 0 || agent >= r.n {
		return
	}
	if r.score[agent] < r.threshold {
		return // excluded agents do not regenerate
	}
	r.score[agent] += r.regen
	if r.score[agent] > 1 {
		r.score[agent] = 1
	}
}

// Excluded implements Scheme.
func (r *Reputation) Excluded(agent int) bool {
	return agent >= 0 && agent < r.n && r.score[agent] < r.threshold
}

// Standing implements Scheme.
func (r *Reputation) Standing(agent int) float64 {
	if agent < 0 || agent >= r.n {
		return 0
	}
	return r.score[agent]
}

// History implements Scheme.
func (r *Reputation) History() []Event { return append([]Event(nil), r.events...) }

// Fresh implements Scheme.
func (r *Reputation) Fresh() Scheme { return NewReputation(r.n, r.decay, r.threshold, r.regen) }

// --- Deposit -------------------------------------------------------------------

// Deposit holds a real-money escrow per agent; offences are fined
// proportionally to severity, and an empty escrow excludes the agent (the
// paper's "punishment schemes based on ... real money deposits").
type Deposit struct {
	n       int
	balance []float64
	escrow  float64
	fine    float64
	events  []Event
}

var _ Scheme = (*Deposit)(nil)

// NewDeposit creates the scheme with the given initial escrow and the fine
// charged per unit severity. Non-positive parameters default to escrow 3,
// fine 1.
func NewDeposit(n int, escrow, fine float64) *Deposit {
	if escrow <= 0 {
		escrow = 3
	}
	if fine <= 0 {
		fine = 1
	}
	d := &Deposit{n: n, balance: make([]float64, n), escrow: escrow, fine: fine}
	for i := range d.balance {
		d.balance[i] = escrow
	}
	return d
}

// Name implements Scheme.
func (d *Deposit) Name() string { return "deposit" }

// Punish implements Scheme.
func (d *Deposit) Punish(agent, round int, severity float64) error {
	if agent < 0 || agent >= d.n {
		return fmt.Errorf("%w: %d", ErrUnknownAgent, agent)
	}
	d.balance[agent] -= d.fine * severity
	d.events = append(d.events, Event{Agent: agent, Round: round, Severity: severity})
	return nil
}

// Excluded implements Scheme.
func (d *Deposit) Excluded(agent int) bool {
	return agent >= 0 && agent < d.n && d.balance[agent] <= 0
}

// Standing implements Scheme.
func (d *Deposit) Standing(agent int) float64 {
	if agent < 0 || agent >= d.n {
		return 0
	}
	if d.balance[agent] < 0 {
		return 0
	}
	return d.balance[agent]
}

// History implements Scheme.
func (d *Deposit) History() []Event { return append([]Event(nil), d.events...) }

// Fresh implements Scheme.
func (d *Deposit) Fresh() Scheme { return NewDeposit(d.n, d.escrow, d.fine) }

// Tally sums the severity the scheme has applied to each of the n agents
// over its history — the per-agent punishment cost a profit audit charges
// against a deviation.
func Tally(s Scheme, n int) []float64 {
	out := make([]float64, n)
	for _, e := range s.History() {
		if e.Agent >= 0 && e.Agent < n {
			out[e.Agent] += e.Severity
		}
	}
	return out
}

// ExcludedSet returns the sorted ids currently excluded under the scheme.
func ExcludedSet(s Scheme, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if s.Excluded(i) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
