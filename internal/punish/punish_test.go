package punish

import (
	"errors"
	"testing"
)

func TestDisconnectFirstStrike(t *testing.T) {
	d := NewDisconnect(3, 0) // default budget 1
	if d.Excluded(1) {
		t.Fatal("fresh agent excluded")
	}
	if err := d.Punish(1, 5, 1.0); err != nil {
		t.Fatal(err)
	}
	if !d.Excluded(1) {
		t.Fatal("full-severity strike did not disconnect")
	}
	if d.Excluded(0) || d.Excluded(2) {
		t.Fatal("collateral exclusion")
	}
	if got := d.Standing(1); got != 0 {
		t.Fatalf("standing after exclusion = %v", got)
	}
}

func TestDisconnectPartialSeverityAccumulates(t *testing.T) {
	d := NewDisconnect(2, 1)
	if err := d.Punish(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if d.Excluded(0) {
		t.Fatal("half-severity strike should not disconnect yet")
	}
	if err := d.Punish(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if !d.Excluded(0) {
		t.Fatal("accumulated severity 1.0 should disconnect")
	}
	if len(d.History()) != 2 {
		t.Fatalf("history = %v", d.History())
	}
}

func TestDisconnectUnknownAgent(t *testing.T) {
	d := NewDisconnect(2, 1)
	if err := d.Punish(9, 0, 1); !errors.Is(err, ErrUnknownAgent) {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
	if d.Excluded(-1) {
		t.Fatal("out of range agent excluded")
	}
}

func TestReputationDecayAndThreshold(t *testing.T) {
	r := NewReputation(2, 0.5, 0.2, 0.01)
	if r.Excluded(0) {
		t.Fatal("fresh agent excluded")
	}
	// Repeated full-severity offences: 1 → 0.5 → 0.25 → 0.125 < 0.2.
	for i := 0; i < 2; i++ {
		if err := r.Punish(0, i, 1); err != nil {
			t.Fatal(err)
		}
		if r.Excluded(0) {
			t.Fatalf("excluded after only %d offences", i+1)
		}
	}
	if err := r.Punish(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !r.Excluded(0) {
		t.Fatalf("score %v should be below threshold", r.Standing(0))
	}
}

func TestReputationRegeneration(t *testing.T) {
	r := NewReputation(1, 0.5, 0.2, 0.1)
	if err := r.Punish(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	before := r.Standing(0)
	r.Credit(0)
	if r.Standing(0) <= before {
		t.Fatal("credit did not regenerate reputation")
	}
	// Regeneration caps at 1.
	for i := 0; i < 100; i++ {
		r.Credit(0)
	}
	if got := r.Standing(0); got > 1 {
		t.Fatalf("reputation exceeded 1: %v", got)
	}
}

func TestReputationNoRegenerationWhenExcluded(t *testing.T) {
	r := NewReputation(1, 0.5, 0.2, 0.1)
	for i := 0; i < 5; i++ {
		if err := r.Punish(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Excluded(0) {
		t.Fatal("not excluded after 5 strikes")
	}
	s := r.Standing(0)
	r.Credit(0)
	if r.Standing(0) != s {
		t.Fatal("excluded agent regenerated")
	}
}

func TestReputationDefaults(t *testing.T) {
	r := NewReputation(1, -1, 2, -5) // all invalid → defaults
	if err := r.Punish(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.Standing(0); got != 0.5 {
		t.Fatalf("default decay: standing = %v, want 0.5", got)
	}
}

func TestDepositFinesAndExclusion(t *testing.T) {
	d := NewDeposit(2, 2, 1)
	if err := d.Punish(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if d.Excluded(0) {
		t.Fatalf("balance %v should still be positive", d.Standing(0))
	}
	if err := d.Punish(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !d.Excluded(0) {
		t.Fatal("empty escrow should exclude")
	}
	if got := d.Standing(0); got != 0 {
		t.Fatalf("standing clamped at 0, got %v", got)
	}
}

func TestDepositPartialSeverity(t *testing.T) {
	d := NewDeposit(1, 1, 1)
	if err := d.Punish(0, 0, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := d.Standing(0); got != 0.75 {
		t.Fatalf("balance = %v, want 0.75", got)
	}
}

func TestDepositDefaults(t *testing.T) {
	d := NewDeposit(1, 0, 0)
	if got := d.Standing(0); got != 3 {
		t.Fatalf("default escrow = %v, want 3", got)
	}
}

func TestSchemeNames(t *testing.T) {
	schemes := []Scheme{NewDisconnect(1, 1), NewReputation(1, 0.5, 0.2, 0), NewDeposit(1, 1, 1)}
	seen := map[string]bool{}
	for _, s := range schemes {
		name := s.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate scheme name %q", name)
		}
		seen[name] = true
	}
}

func TestExcludedSet(t *testing.T) {
	d := NewDisconnect(4, 1)
	if err := d.Punish(3, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Punish(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	got := ExcludedSet(d, 4)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ExcludedSet = %v, want [1 3]", got)
	}
}

func TestHistoryIsolation(t *testing.T) {
	d := NewDisconnect(1, 1)
	if err := d.Punish(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	h := d.History()
	h[0].Agent = 99
	if d.History()[0].Agent == 99 {
		t.Fatal("History exposes internal slice")
	}
}
