// Package punish implements the executive service's punishment schemes
// (paper §3.4): disconnection (cf. the BAR-games discussion [6]), reputation
// decay, and monetary deposits. All schemes share one interface so the
// E-PUN experiment can compare how quickly each neutralizes a manipulator
// and how much damage accrues meanwhile.
package punish
