package clocksync

import (
	"testing"

	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestConvergenceUnderMessageDrops(t *testing.T) {
	// A Byzantine clock that randomly drops 70% of its traffic: honest
	// clocks must converge anyway (the quorum needs only n−f votes, which
	// the honest provide by themselves).
	for trial := uint64(0); trial < 4; trial++ {
		nw, clocks := buildNet(t, 4, 1, 8, 400+trial)
		nw.SetByzantine(3, sim.DropAdversary(trial, 0.7))
		ent := prng.New(800 + trial)
		nw.Corrupt(ent.Uint64)
		honest := []int{0, 1, 2}
		if p := ConvergencePulses(nw, clocks, honest, 3, 50000); p > 50000 {
			t.Fatalf("trial %d: no convergence under drops", trial)
		}
	}
}

func TestConcurrentEngineMatchesLockstep(t *testing.T) {
	// The protocols must behave identically under the goroutine engine:
	// same seeds, same pulse count, same final clock values.
	build := func() (*sim.Network, []*Clock) {
		return buildNet(t, 4, 1, 8, 123)
	}
	a, clocksA := build()
	b, clocksB := build()
	a.Run(50)
	b.RunConcurrent(50)
	for i := range clocksA {
		if clocksA[i].Value() != clocksB[i].Value() {
			t.Fatalf("clock %d: lockstep %d != concurrent %d",
				i, clocksA[i].Value(), clocksB[i].Value())
		}
	}
}

func TestReplayAdversaryDoesNotBreakClosure(t *testing.T) {
	// A stale-state attacker replays last pulse's ticks; with f=1 the
	// other three clocks still form quorums and stay synchronized.
	nw, clocks := buildNet(t, 4, 1, 8, 321)
	nw.SetByzantine(3, sim.ReplayAdversary())
	nw.Run(5) // settle
	honest := []int{0, 1, 2}
	for pulse := 0; pulse < 60; pulse++ {
		nw.StepLockstep()
		if !Synchronized(clocks, honest) {
			t.Fatalf("replay attack desynchronized honest clocks at pulse %d", pulse)
		}
	}
}

func TestVoteDeduplicatesSenders(t *testing.T) {
	c, err := New(0, 4, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sender 2 votes twice for different values; only the first counts.
	c.Vote(1, 3)
	c.Vote(2, 3)
	c.Vote(2, 5)
	c.Vote(3, 3)
	c.Vote(0, 3)
	c.Tick()
	// 4 distinct senders, quorum (n−f=3) on value 3 → clock = 4.
	if got := c.Value(); got != 4 {
		t.Fatalf("clock = %d, want 4 (duplicate vote must not break quorum)", got)
	}
}

func TestTickWithoutVotesKeepsValue(t *testing.T) {
	c, err := New(0, 4, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.value = 5
	c.Tick()
	if c.Value() != 5 {
		t.Fatalf("no-vote tick changed value to %d", c.Value())
	}
}
