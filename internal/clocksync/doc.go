// Package clocksync implements randomized self-stabilizing Byzantine clock
// synchronization in the style of Dolev & Welch [11] — the "Byzantine common
// pulse generator" the paper's middleware is driven by (§3.3, §4).
//
// Model: n processors, at most f < n/3 Byzantine, synchronous pulses,
// M-valued digital clocks. Every pulse each processor broadcasts its clock
// value and applies:
//
//	quorum rule:  if some value v was reported by ≥ n−f processors,
//	              set clock ← (v+1) mod M. (For n > 3f at most one value
//	              can reach quorum in any processor's view, because two
//	              quorums would need 2(n−2f) > n−f honest supporters.)
//	coin rule:    otherwise, with probability 1/2 adopt (w+1) mod M where
//	              w is the plurality value (ties toward the smallest), and
//	              with probability 1/2 reset to 0.
//
// Closure: once all honest clocks agree on v they all see an honest quorum
// forever (Byzantine votes cannot mask honest votes), so they advance in
// lock-step deterministically. Convergence: from any configuration, every
// pulse without a quorum gives the (≤ n−f) unsynchronized processors an
// independent 1/2 chance to land on a common value, so the system reaches
// agreement in expected O(2^(n−f)) pulses — exponential like the randomized
// algorithm of [11], and perfectly tractable at the paper's simulated
// scales. The E-L2 experiment measures the empirical distribution.
package clocksync
