package clocksync

import (
	"errors"
	"testing"

	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1, 8, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("n=3f: err = %v", err)
	}
	if _, err := New(5, 4, 1, 8, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad id: err = %v", err)
	}
	if _, err := New(0, 4, 1, 1, 1); !errors.Is(err, ErrConfig) {
		t.Fatalf("m=1: err = %v", err)
	}
}

// buildNet creates n clocks with modulus m and returns the network plus the
// clock handles.
func buildNet(t testing.TB, n, f, m int, seed uint64) (*sim.Network, []*Clock) {
	t.Helper()
	clocks := make([]*Clock, n)
	procs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		c, err := New(i, n, f, m, seed)
		if err != nil {
			t.Fatal(err)
		}
		clocks[i] = c
		procs[i] = c
	}
	nw, err := sim.NewNetwork(procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return nw, clocks
}

func honestIDs(n int, byz map[int]bool) []int {
	var ids []int
	for i := 0; i < n; i++ {
		if !byz[i] {
			ids = append(ids, i)
		}
	}
	return ids
}

func TestClosureFromSynchronizedState(t *testing.T) {
	// All clocks start at 0 (synchronized); they must tick in lock-step
	// forever, wrapping modulo M.
	nw, clocks := buildNet(t, 4, 1, 8, 42)
	nw.StepLockstep() // initial broadcast
	prev := clocks[0].Value()
	for pulse := 0; pulse < 40; pulse++ {
		nw.StepLockstep()
		if !Synchronized(clocks, []int{0, 1, 2, 3}) {
			t.Fatalf("pulse %d: clocks diverged: %d %d %d %d", pulse,
				clocks[0].Value(), clocks[1].Value(), clocks[2].Value(), clocks[3].Value())
		}
		got := clocks[0].Value()
		if got != (prev+1)%8 {
			t.Fatalf("pulse %d: clock jumped from %d to %d", pulse, prev, got)
		}
		prev = got
	}
}

func TestConvergenceFromArbitraryStates(t *testing.T) {
	// Lemma 2 (shape): from arbitrary clock values the system reaches a
	// synchronized configuration within a finite number of pulses.
	for trial := uint64(0); trial < 10; trial++ {
		nw, clocks := buildNet(t, 4, 1, 8, 100+trial)
		ent := prng.New(500 + trial)
		nw.Corrupt(ent.Uint64)
		honest := []int{0, 1, 2, 3}
		pulses := ConvergencePulses(nw, clocks, honest, 3, 5000)
		if pulses > 5000 {
			t.Fatalf("trial %d: no convergence within 5000 pulses", trial)
		}
	}
}

func TestConvergenceWithByzantineEquivocator(t *testing.T) {
	// A Byzantine clock reports different values to different processors
	// every pulse; honest clocks must still converge and stay converged.
	for trial := uint64(0); trial < 5; trial++ {
		nw, clocks := buildNet(t, 4, 1, 8, 200+trial)
		evil := prng.New(900 + trial)
		nw.SetByzantine(3, sim.EquivocateAdversary(func(to int, payload any) any {
			return tickMsg{Val: int(evil.Uint64() % 8)}
		}))
		ent := prng.New(700 + trial)
		nw.Corrupt(ent.Uint64)
		honest := []int{0, 1, 2}
		pulses := ConvergencePulses(nw, clocks, honest, 3, 20000)
		if pulses > 20000 {
			t.Fatalf("trial %d: no convergence under equivocation", trial)
		}
		// Closure under continued attack: 50 more pulses stay in sync.
		for p := 0; p < 50; p++ {
			nw.StepLockstep()
			if !Synchronized(clocks, honest) {
				t.Fatalf("trial %d: lost sync at post-convergence pulse %d", trial, p)
			}
		}
	}
}

func TestSevenProcessorsTwoByzantine(t *testing.T) {
	nw, clocks := buildNet(t, 7, 2, 16, 31)
	evil := prng.New(77)
	nw.SetByzantine(5, sim.EquivocateAdversary(func(to int, payload any) any {
		return tickMsg{Val: int(evil.Uint64()) % 16}
	}))
	nw.SetByzantine(6, sim.SilentAdversary())
	ent := prng.New(13)
	nw.Corrupt(ent.Uint64)
	honest := []int{0, 1, 2, 3, 4}
	pulses := ConvergencePulses(nw, clocks, honest, 3, 100000)
	if pulses > 100000 {
		t.Fatal("n=7 f=2: no convergence")
	}
}

func TestQuorumRuleUsedWhenSynchronized(t *testing.T) {
	nw, clocks := buildNet(t, 4, 1, 8, 5)
	nw.Run(5)
	for i, c := range clocks {
		if !c.LastQuorum() {
			t.Fatalf("clock %d not in quorum regime while synchronized", i)
		}
	}
}

func TestSanitizesGarbageVotes(t *testing.T) {
	// Byzantine sends wildly out-of-range values; honest must not adopt
	// an out-of-range clock.
	nw, clocks := buildNet(t, 4, 1, 8, 6)
	nw.SetByzantine(3, sim.EquivocateAdversary(func(to int, payload any) any {
		return tickMsg{Val: -999999}
	}))
	nw.Run(30)
	for i := 0; i < 3; i++ {
		v := clocks[i].Value()
		if v < 0 || v >= 8 {
			t.Fatalf("clock %d out of range: %d", i, v)
		}
	}
}

func TestCorruptPutsValueBackInRangeAfterOneUpdate(t *testing.T) {
	nw, clocks := buildNet(t, 4, 1, 8, 7)
	ent := prng.New(3)
	nw.Corrupt(ent.Uint64)
	nw.Run(2) // one broadcast + one update round
	for i, c := range clocks {
		if v := c.Value(); v < 0 || v >= 8 {
			t.Fatalf("clock %d still out of range after update: %d", i, v)
		}
	}
}

func TestSynchronizedHelper(t *testing.T) {
	_, clocks := buildNet(t, 4, 1, 8, 8)
	if !Synchronized(clocks, nil) {
		t.Fatal("empty id set should be trivially synchronized")
	}
	clocks[2].value = 5
	if Synchronized(clocks, []int{0, 1, 2}) {
		t.Fatal("divergent clocks reported synchronized")
	}
	if !Synchronized(clocks, []int{0, 1}) {
		t.Fatal("identical clocks reported divergent")
	}
}

func BenchmarkConvergenceN4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nw, clocks := buildNet(b, 4, 1, 8, uint64(i))
		ent := prng.New(uint64(i) + 999)
		nw.Corrupt(ent.Uint64)
		ConvergencePulses(nw, clocks, []int{0, 1, 2, 3}, 3, 100000)
	}
}
