package clocksync

import (
	"errors"
	"fmt"

	"gameauthority/internal/prng"
	"gameauthority/internal/sim"
)

// ErrConfig reports an invalid clock configuration.
var ErrConfig = errors.New("clocksync: invalid configuration")

// tickMsg is the per-pulse clock broadcast.
type tickMsg struct {
	Val int
}

// Clock is one processor's self-stabilizing clock.
type Clock struct {
	id, n, f, m int
	value       int
	src         *prng.Source

	// lastQuorum records whether the previous update used the quorum rule
	// (true in the synchronized regime); exposed for diagnostics.
	lastQuorum bool

	// Vote accumulators, pre-sized at construction so the per-pulse
	// Vote/Tick cycle never allocates: votes counts ballots per clock value,
	// voted marks senders already heard this pulse.
	votes  []int
	voted  []bool
	nvotes int
}

var (
	_ sim.Process     = (*Clock)(nil)
	_ sim.Corruptible = (*Clock)(nil)
)

// New creates processor id's clock with modulus m. Requires n > 3f and
// m ≥ 2. seed feeds the processor's private coin.
func New(id, n, f, m int, seed uint64) (*Clock, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("%w: n=%d must exceed 3f=%d", ErrConfig, n, 3*f)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("%w: id=%d", ErrConfig, id)
	}
	if m < 2 {
		return nil, fmt.Errorf("%w: m=%d", ErrConfig, m)
	}
	return &Clock{
		id: id, n: n, f: f, m: m,
		src:   prng.Derive(seed, 0xC10C, uint64(id)),
		votes: make([]int, m),
		voted: make([]bool, n),
	}, nil
}

// ID implements sim.Process.
func (c *Clock) ID() int { return c.id }

// Value returns the current clock value in [0, M).
func (c *Clock) Value() int { return c.value }

// M returns the clock modulus.
func (c *Clock) M() int { return c.m }

// LastQuorum reports whether the most recent update used the quorum rule.
func (c *Clock) LastQuorum() bool { return c.lastQuorum }

// Step implements sim.Process: absorb the previous pulse's clock votes,
// update, and broadcast the new value.
func (c *Clock) Step(pulse int, inbox []sim.Message) []sim.Message {
	for _, msg := range inbox {
		if tick, ok := msg.Payload.(tickMsg); ok {
			c.Vote(msg.From, tick.Val)
		}
	}
	c.Tick()
	return broadcastAll(c.id, c.n, tickMsg{Val: c.value})
}

// Vote records the clock value reported by processor from on the current
// pulse (first report per sender wins; Byzantine garbage is sanitized into
// range). Composition layers (ssba, the authority) call Vote/Tick directly
// when they multiplex clock votes into their own message types.
func (c *Clock) Vote(from, value int) {
	if from < 0 || from >= c.n || c.voted[from] {
		return
	}
	c.voted[from] = true
	v := ((value % c.m) + c.m) % c.m
	c.votes[v]++
	c.nvotes++
}

// Tick applies the quorum/coin update rule to the votes collected since the
// last Tick and resets the collection. With no votes the clock is left
// unchanged (no information to act on). It returns the new value.
func (c *Clock) Tick() int {
	if c.nvotes > 0 {
		c.update()
		for i := range c.votes {
			c.votes[i] = 0
		}
		for i := range c.voted {
			c.voted[i] = false
		}
		c.nvotes = 0
	}
	return c.value
}

// update applies the quorum/coin rule to one pulse's votes. Both rules scan
// values in ascending order, so "smallest wins" ties need no sorting.
func (c *Clock) update() {
	quorum := c.n - c.f
	// Quorum rule (unique candidate for n > 3f; take smallest for
	// determinism against malformed vote multisets).
	for v := 0; v < c.m; v++ {
		if c.votes[v] >= quorum {
			c.value = (v + 1) % c.m
			c.lastQuorum = true
			return
		}
	}
	c.lastQuorum = false
	// Coin rule: plurality (ties toward smallest value) or reset.
	w, wCount := 0, -1
	for v := 0; v < c.m; v++ {
		if c.votes[v] > 0 && c.votes[v] > wCount {
			w, wCount = v, c.votes[v]
		}
	}
	if c.src.Bool() {
		c.value = (w + 1) % c.m
	} else {
		c.value = 0
	}
}

// Corrupt implements sim.Corruptible: the transient-fault adversary sets
// the clock to an arbitrary (even out-of-range) value and scrambles the
// coin stream position.
func (c *Clock) Corrupt(entropy func() uint64) {
	c.value = int(entropy() % uint64(4*c.m)) // possibly out of range on purpose
	c.src.SetState(entropy())
	c.lastQuorum = false
}

// broadcastAll emits one message per processor, including self (so quorum
// counting includes the local vote).
func broadcastAll(from, n int, payload any) []sim.Message {
	out := make([]sim.Message, 0, n)
	for to := 0; to < n; to++ {
		out = append(out, sim.Message{From: from, To: to, Payload: payload})
	}
	return out
}

// Synchronized reports whether all the given clocks share one value.
func Synchronized(clocks []*Clock, ids []int) bool {
	if len(ids) == 0 {
		return true
	}
	want := clocks[ids[0]].Value()
	for _, id := range ids[1:] {
		if clocks[id].Value() != want {
			return false
		}
	}
	return true
}

// ConvergencePulses runs the network until the honest clocks have been
// synchronized (and advancing via the quorum rule) for `stable` consecutive
// pulses, returning the number of pulses taken, or maxPulses+1 if the bound
// was exhausted. The caller owns network construction so it can install
// adversaries and corrupt state first.
func ConvergencePulses(nw *sim.Network, clocks []*Clock, honest []int, stable, maxPulses int) int {
	run := 0
	for pulse := 1; pulse <= maxPulses; pulse++ {
		nw.StepLockstep()
		if Synchronized(clocks, honest) {
			run++
			if run >= stable {
				return pulse
			}
		} else {
			run = 0
		}
	}
	return maxPulses + 1
}
