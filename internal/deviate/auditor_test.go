package deviate

import (
	"context"
	"errors"
	"testing"

	"gameauthority/internal/core"
	"gameauthority/internal/game"
	"gameauthority/internal/punish"
)

// pureBuild builds the paired pure-driver sessions over the given game.
func pureBuild(g game.Game) BuildFunc {
	return func(seed uint64, d core.Deviant, player int) (core.Session, error) {
		cfg := core.SessionConfig{
			Game:   g,
			Seed:   seed,
			Scheme: punish.NewDisconnect(g.NumPlayers(), 0.5),
		}
		if d != nil {
			cfg.Deviants = map[int]core.Deviant{player: d}
		}
		return core.NewSession(cfg)
	}
}

// TestProfitAuditCommitmentCheat pins the sharpest case: a commitment
// cheat is detected in the very first play, the executive substitutes the
// honest action, and the twins' outcome trajectories coincide — profit
// exactly zero, conviction certain.
func TestProfitAuditCommitmentCheat(t *testing.T) {
	g, err := game.CoordinationN(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProfitAudit(context.Background(), AuditConfig{
		Strategy: CommitmentCheat(),
		Player:   1,
		Rounds:   8,
		Seeds:    []uint64{1, 2, 3},
		Build:    pureBuild(g),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanProfit != 0 {
		t.Fatalf("commitment cheat profited %v; substitution must neutralize it", rep.MeanProfit)
	}
	if rep.DetectionRate != 1 || rep.ConvictionRate != 1 {
		t.Fatalf("detection %v conviction %v, want 1/1", rep.DetectionRate, rep.ConvictionRate)
	}
	if rep.MeanDetectionLatency != 0 {
		t.Fatalf("detection latency %v, want 0 (first play)", rep.MeanDetectionLatency)
	}
	if rep.MeanPunishment <= 0 {
		t.Fatalf("no punishment cost recorded")
	}
	if rep.Measured != 7 {
		t.Fatalf("measured %d rounds, want 7 (skip the duty-free opener)", rep.Measured)
	}
	for _, out := range rep.Outcomes {
		if out.ExcludedRounds == 0 {
			t.Fatalf("seed %d: deviant never excluded", out.Seed)
		}
		if out.Fouls == 0 {
			t.Fatalf("seed %d: no fouls", out.Seed)
		}
	}
}

// TestProfitAuditAlwaysDefectUnprofitable: in the consensus game camping
// the dearest action is strictly costly and quickly punished.
func TestProfitAuditAlwaysDefectUnprofitable(t *testing.T) {
	g, err := game.CoordinationN(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProfitAudit(context.Background(), AuditConfig{
		Strategy: AlwaysDefect(),
		Player:   0,
		Rounds:   10,
		Seeds:    []uint64{4, 5},
		Build:    pureBuild(g),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanProfit > 0 {
		t.Fatalf("always-defect profited %v in the consensus game", rep.MeanProfit)
	}
	if rep.DetectionRate != 1 {
		t.Fatalf("always-defect went undetected: %+v", rep)
	}
	if rep.BaselineScale <= 0 {
		t.Fatalf("baseline scale %v, want > 0", rep.BaselineScale)
	}
}

// TestProfitAuditSkipSemantics: SkipRounds -1 measures from round 0 and
// can therefore see the duty-free first-play gain a lookahead liar grabs
// in the prisoner's dilemma.
func TestProfitAuditSkipSemantics(t *testing.T) {
	pd, err := game.PrisonersDilemmaParams(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := AuditConfig{
		Strategy: BestResponseLiar(),
		Player:   0,
		Rounds:   6,
		Seeds:    []uint64{9},
		Build:    pureBuild(pd),
	}
	withOpener := base
	withOpener.SkipRounds = -1
	full, err := ProfitAudit(context.Background(), withOpener)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := ProfitAudit(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: honest plays Cooperate, the liar defects against the
	// predicted cooperation and pockets the temptation payoff — visible
	// only when the opener is measured.
	if full.MeanProfit <= tail.MeanProfit {
		t.Fatalf("opener gain invisible: full %v vs tail %v", full.MeanProfit, tail.MeanProfit)
	}
	if tail.MeanProfit > 0 {
		t.Fatalf("liar profited %v after the opener in PD", tail.MeanProfit)
	}
	if full.Measured != 6 || tail.Measured != 5 {
		t.Fatalf("measured %d/%d, want 6/5", full.Measured, tail.Measured)
	}
}

// TestProfitAuditBatchedEpochClose: with batched auditing, a partial
// trailing epoch is only adjudicated when the session closes — the
// auditor must still see those fouls (it reads history after Close).
func TestProfitAuditBatchedEpochClose(t *testing.T) {
	g := game.MatchingPennies()
	build := func(seed uint64, d core.Deviant, player int) (core.Session, error) {
		cfg := core.SessionConfig{
			Game: g,
			Seed: seed,
			Strategies: func(int, game.Profile) game.MixedProfile {
				return game.MixedProfile{game.Uniform(2), game.Uniform(2)}
			},
			Mode:     core.AuditBatched,
			EpochLen: 16, // longer than the run: everything is a trailing partial epoch
			Scheme:   punish.NewDisconnect(2, 0),
		}
		if d != nil {
			cfg.Deviants = map[int]core.Deviant{player: d}
		}
		return core.NewSession(cfg)
	}
	rep, err := ProfitAudit(context.Background(), AuditConfig{
		Strategy: Freerider(),
		Player:   0,
		Rounds:   5,
		Seeds:    []uint64{21, 22},
		Build:    build,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectionRate != 1 {
		t.Fatalf("close-adjudicated epoch fouls invisible to the auditor: %+v", rep)
	}
	if rep.MeanPunishment <= 0 {
		t.Fatalf("no punishment recorded for the withheld epoch seed")
	}
}

// TestProfitAuditConfigErrors covers the validation paths.
func TestProfitAuditConfigErrors(t *testing.T) {
	g, _ := game.CoordinationN(3, 3)
	ok := AuditConfig{Strategy: Freerider(), Player: 0, Rounds: 4, Seeds: []uint64{1}, Build: pureBuild(g)}
	cases := []func(*AuditConfig){
		func(c *AuditConfig) { c.Strategy = nil },
		func(c *AuditConfig) { c.Build = nil },
		func(c *AuditConfig) { c.Rounds = 0 },
		func(c *AuditConfig) { c.Seeds = nil },
		func(c *AuditConfig) { c.SkipRounds = 4 },
	}
	for i, mutate := range cases {
		cfg := ok
		mutate(&cfg)
		if _, err := ProfitAudit(context.Background(), cfg); !errors.Is(err, ErrAudit) {
			t.Fatalf("case %d: got %v, want ErrAudit", i, err)
		}
	}
	// Build errors propagate.
	cfg := ok
	cfg.Build = func(uint64, core.Deviant, int) (core.Session, error) {
		return nil, errors.New("boom")
	}
	if _, err := ProfitAudit(context.Background(), cfg); err == nil {
		t.Fatalf("build error swallowed")
	}
	// A history-limited twin is rejected rather than silently mismeasured.
	cfg = ok
	cfg.Build = func(seed uint64, d core.Deviant, player int) (core.Session, error) {
		c := core.SessionConfig{Game: g, Seed: seed, Scheme: punish.NewDisconnect(3, 0.5), HistoryLimit: 2}
		if d != nil {
			c.Deviants = map[int]core.Deviant{player: d}
		}
		return core.NewSession(c)
	}
	if _, err := ProfitAudit(context.Background(), cfg); !errors.Is(err, ErrAudit) {
		t.Fatalf("history-limited twin accepted: %v", err)
	}
}
