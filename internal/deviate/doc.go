// Package deviate is the deviation-profit verification subsystem: a
// catalog of player-level selfish strategies (core.Deviant
// implementations) that can be attached to any authority session, and a
// profit auditor that measures — empirically, on paired seeded sessions —
// whether a unilateral deviation ever beats honesty under the installed
// punishment scheme.
//
// The paper's central claim is that the game authority makes selfish
// deviation unprofitable: the judicial service detects off-protocol play
// (illegitimate actions, commitment cheats, off-stream samples, withheld
// reveals) and the executive service punishes it until the deviant is
// restricted to honest play. The strategies here are the test probes for
// that claim — AlwaysDefect, BestResponseLiar, CommitmentCheat,
// DistributionSkewer and Freerider each exercise a different foul class —
// and ProfitAudit is the measurement: it runs an honest twin and a
// deviant twin of the same seeded session and reports the deviant's
// realized utility delta, detection latency, conviction, and punishment
// cost. The repo's standing robustness regression (deviation_matrix_test
// at the module root) sweeps the strategies across the whole scenario
// catalog × driver × punishment-scheme matrix and asserts the paper's
// property: once punishment engages, deviation profit stays ≤ 0 within
// tolerance, and every game has detectable, convictable deviations.
package deviate
