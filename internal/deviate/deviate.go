package deviate

import (
	"gameauthority/internal/audit"
	"gameauthority/internal/commit"
	"gameauthority/internal/core"
	"gameauthority/internal/game"
	"gameauthority/internal/prng"
)

// The strategy catalog. Every strategy implements core.Deviant, compiling
// itself into the hook set of whichever driver the session runs on:
//
//	strategy           foul class it provokes
//	AlwaysDefect       not-best-response (pure/dist), seed-mismatch (mixed/RRA)
//	BestResponseLiar   not-best-response (pure/dist), seed-mismatch (mixed/RRA)
//	CommitmentCheat    commit-mismatch (pure/dist/mixed), seed-mismatch (RRA)
//	DistributionSkewer intermittent versions of the above (audit-sampling probe)
//	Freerider          missing-reveal (pure/dist/mixed), off-stream camping (RRA)
//
// Strategies are deterministic in (session seed, player): paired honest
// and deviant twins with the same seed replay identically up to the
// deviation, which is what makes ProfitAudit's utility deltas meaningful.

// Registry returns one instance of every strategy with its default
// parameterization, ordered by name. cmd/loadgen's chaos mode draws from
// here, and the HTTP API resolves these names in POST /sessions.
func Registry() []core.Deviant {
	return []core.Deviant{
		AlwaysDefect(),
		BestResponseLiar(),
		CommitmentCheat(),
		DistributionSkewer(0.5),
		Freerider(),
	}
}

// ByName resolves a registry strategy, reporting ok=false for unknown
// names.
func ByName(name string) (core.Deviant, bool) {
	for _, d := range Registry() {
		if d.Name() == name {
			return d, true
		}
	}
	return nil, false
}

// Names returns the registry's strategy names in registry order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, d := range reg {
		out[i] = d.Name()
	}
	return out
}

// --- AlwaysDefect ---------------------------------------------------------------

type alwaysDefect struct{}

// AlwaysDefect camps the highest-index action ("defect" in the dilemma
// family) every round, ignoring the best-response duty. On drivers with a
// committed randomness stream every camped play is off-stream.
func AlwaysDefect() core.Deviant { return alwaysDefect{} }

func (alwaysDefect) Name() string { return "always-defect" }

func (alwaysDefect) PureAgent(g game.Game, player int, seed uint64) *core.Agent {
	last := g.NumActions(player) - 1
	return &core.Agent{Choose: func(int, game.Profile) int { return last }}
}

func (alwaysDefect) MixedAgentFor(g game.Game, player int, seed uint64) *core.MixedAgent {
	last := g.NumActions(player) - 1
	return &core.MixedAgent{Override: func(int, int) int { return last }}
}

func (alwaysDefect) RRAChooser(player int, seed uint64) func(int, []int64, int) int {
	return func(_ int, loads []int64, _ int) int { return len(loads) - 1 }
}

// --- BestResponseLiar -----------------------------------------------------------

type bestResponseLiar struct{}

// BestResponseLiar is the one-step-lookahead cheat: instead of
// best-responding to the previous outcome (the §3.2 honesty duty), it
// predicts what every honest opponent will play *this* round and best
// responds to the prediction — a genuinely selfish deviation that can
// strictly profit in games where the two differ. On the mixed and RRA
// drivers it abandons the committed sample for its myopically best
// action (minimum expected cost against the others' play).
func BestResponseLiar() core.Deviant { return bestResponseLiar{} }

func (bestResponseLiar) Name() string { return "best-response-liar" }

func (bestResponseLiar) PureAgent(g game.Game, player int, seed uint64) *core.Agent {
	n := g.NumPlayers()
	pred := make(game.Profile, n)
	return &core.Agent{Choose: func(round int, prev game.Profile) int {
		for j := 0; j < n; j++ {
			if prev == nil {
				pred[j] = 0 // honest agents open with action 0
			} else {
				pred[j] = game.BestResponse(g, j, prev)
			}
		}
		return game.BestResponse(g, player, pred)
	}}
}

func (bestResponseLiar) MixedAgentFor(g game.Game, player int, seed uint64) *core.MixedAgent {
	preferred := preferredAction(g, player, seed)
	return &core.MixedAgent{Override: func(int, int) int { return preferred }}
}

func (bestResponseLiar) RRAChooser(player int, seed uint64) func(int, []int64, int) int {
	return func(_ int, loads []int64, _ int) int { return argminLoad(loads) }
}

// --- CommitmentCheat ------------------------------------------------------------

type commitmentCheat struct{}

// CommitmentCheat plays the honest protocol up to the reveal, then opens
// a *different* value than it committed to — the classic equivocation the
// Blum commitments exist to catch. The judicial service convicts it with
// a commit-mismatch (severity 1) and the executive substitutes an honest
// action, so the cheat can never land. On the RRA driver (whose harness
// owns the openings) the cheat manifests as playing one resource off the
// committed stream.
func CommitmentCheat() core.Deviant { return commitmentCheat{} }

func (commitmentCheat) Name() string { return "commitment-cheat" }

func (commitmentCheat) PureAgent(g game.Game, player int, seed uint64) *core.Agent {
	honest := core.HonestPure(g, player)
	k := g.NumActions(player)
	return &core.Agent{
		Choose: honest.Choose,
		TamperOpening: func(round int, op commitOpening) commitOpening {
			if a, err := audit.DecodeAction(op.Value); err == nil {
				op.Value = audit.EncodeAction((a + 1) % k)
			}
			return op
		},
	}
}

func (commitmentCheat) MixedAgentFor(g game.Game, player int, seed uint64) *core.MixedAgent {
	return &core.MixedAgent{
		TamperSeedOpening: func(round int, op commitOpening) commitOpening {
			if s, err := audit.DecodeSeed(op.Value); err == nil {
				op.Value = audit.EncodeSeed(s + 1)
			}
			return op
		},
	}
}

func (commitmentCheat) RRAChooser(player int, seed uint64) func(int, []int64, int) int {
	return func(_ int, loads []int64, honest int) int {
		return (honest + 1) % len(loads)
	}
}

// --- DistributionSkewer ---------------------------------------------------------

type distributionSkewer struct{ prob float64 }

// DistributionSkewer plays honestly most of the time but replaces the
// honest action with its myopic favourite with the given probability —
// the adversary the sampled and statistical audit disciplines exist for:
// a per-round audit catches every skewed play, a sampled audit catches a
// fraction, and the §5.2 frequency screen catches the drift.
func DistributionSkewer(prob float64) core.Deviant {
	if prob <= 0 || prob > 1 {
		prob = 0.5
	}
	return distributionSkewer{prob: prob}
}

func (distributionSkewer) Name() string { return "distribution-skewer" }

// skews reports whether the strategy deviates this round, on a stream
// derived from (seed, player, round) so twins replay identically.
func (d distributionSkewer) skews(seed uint64, player, round int) bool {
	src := prng.Derive(seed, 0xD57E, uint64(player), uint64(round))
	return src.Float64() < d.prob
}

func (d distributionSkewer) PureAgent(g game.Game, player int, seed uint64) *core.Agent {
	honest := core.HonestPure(g, player)
	preferred := preferredAction(g, player, seed)
	return &core.Agent{Choose: func(round int, prev game.Profile) int {
		if d.skews(seed, player, round) {
			return preferred
		}
		return honest.Choose(round, prev)
	}}
}

func (d distributionSkewer) MixedAgentFor(g game.Game, player int, seed uint64) *core.MixedAgent {
	preferred := preferredAction(g, player, seed)
	return &core.MixedAgent{Override: func(round, honestAction int) int {
		if d.skews(seed, player, round) {
			return preferred
		}
		return honestAction
	}}
}

func (d distributionSkewer) RRAChooser(player int, seed uint64) func(int, []int64, int) int {
	return func(round int, loads []int64, honest int) int {
		if d.skews(seed, player, round) {
			return argminLoad(loads)
		}
		return honest
	}
}

// --- Freerider ------------------------------------------------------------------

type freerider struct{}

// Freerider shirks the protocol's duties: it plays along but never
// reveals, free-riding on everyone else's auditability. The judicial
// service charges a missing-reveal (severity 1) and the executive takes
// over its play. On the RRA driver it camps resource 0, free-riding on
// the other agents' load balancing.
func Freerider() core.Deviant { return freerider{} }

func (freerider) Name() string { return "freerider" }

func (freerider) PureAgent(g game.Game, player int, seed uint64) *core.Agent {
	honest := core.HonestPure(g, player)
	return &core.Agent{
		Choose:   honest.Choose,
		Withhold: func(int) bool { return true },
	}
}

func (freerider) MixedAgentFor(g game.Game, player int, seed uint64) *core.MixedAgent {
	return &core.MixedAgent{Withhold: func(int) bool { return true }}
}

func (freerider) RRAChooser(player int, seed uint64) func(int, []int64, int) int {
	return func(int, []int64, int) int { return 0 }
}

// --- Shared helpers -------------------------------------------------------------

// commitOpening aliases the commitment opening type the agent hooks use.
type commitOpening = commit.Opening

// argminLoad returns the least-loaded resource (ties toward the lowest
// index) — the myopically selfish RRA choice.
func argminLoad(loads []int64) int {
	best := 0
	for a := 1; a < len(loads); a++ {
		if loads[a] < loads[best] {
			best = a
		}
	}
	return best
}

// preferredAction is the action minimizing the player's expected cost
// when every opponent plays uniformly — the myopic favourite a skewing
// deviant drifts toward. Small opponent profile spaces are enumerated
// exactly; larger ones are estimated from a fixed sample of profiles
// drawn on a stream derived from seed (deterministic per session).
func preferredAction(g game.Game, player int, seed uint64) int {
	n := g.NumPlayers()
	space := 1
	exact := true
	for j := 0; j < n && exact; j++ {
		if j == player {
			continue
		}
		space *= g.NumActions(j)
		if space > 1<<14 {
			exact = false
		}
	}
	k := g.NumActions(player)
	costs := make([]float64, k)
	profile := make(game.Profile, n)
	if exact {
		var rec func(j int)
		rec = func(j int) {
			if j == n {
				for a := 0; a < k; a++ {
					profile[player] = a
					costs[a] += g.Cost(player, profile)
				}
				return
			}
			if j == player {
				rec(j + 1)
				return
			}
			for b := 0; b < g.NumActions(j); b++ {
				profile[j] = b
				rec(j + 1)
			}
		}
		rec(0)
	} else {
		src := prng.Derive(seed, 0x9EFE, uint64(player))
		const samples = 1024
		for s := 0; s < samples; s++ {
			for j := 0; j < n; j++ {
				if j != player {
					profile[j] = int(src.Uint64() % uint64(g.NumActions(j)))
				}
			}
			for a := 0; a < k; a++ {
				profile[player] = a
				costs[a] += g.Cost(player, profile)
			}
		}
	}
	best := 0
	for a := 1; a < k; a++ {
		if costs[a] < costs[best] {
			best = a
		}
	}
	return best
}
