package deviate

import (
	"context"
	"errors"
	"fmt"

	"gameauthority/internal/core"
)

// ErrAudit reports a malformed profit-audit configuration.
var ErrAudit = errors.New("deviate: invalid audit configuration")

// BuildFunc constructs one session of the pair a profit audit compares:
// with deviant == nil it must return the honest twin; otherwise the same
// configuration with the strategy attached to the given player. The
// session must retain its full history (no history limit) — the auditor
// reads per-round costs and verdicts from Results.
type BuildFunc func(seed uint64, deviant core.Deviant, player int) (core.Session, error)

// AuditConfig configures one profit audit: a strategy, the player it
// deviates as, how long to play, and the seeds to average over.
type AuditConfig struct {
	// Strategy is the deviation under audit.
	Strategy core.Deviant
	// Player is the deviating player.
	Player int
	// Rounds is how many plays each twin runs.
	Rounds int
	// SkipRounds excludes the first plays from the profit sum. The
	// default (1) skips the opening play: the §3.2 best-response duty
	// only binds from the second play on, so a first-play deviation
	// precedes any possible punishment — the paper's property is about
	// deviation profit once punishment can engage. Set -1 to measure
	// from round 0.
	SkipRounds int
	// Seeds are the session seeds to average over; at least one.
	Seeds []uint64
	// Build constructs the paired sessions (see BuildFunc).
	Build BuildFunc
}

// SeedOutcome is the audit of one seeded twin pair.
type SeedOutcome struct {
	Seed uint64
	// Profit is the deviant's utility delta versus its honest twin over
	// the measured rounds: (honest twin cost) − (deviant twin cost) for
	// the audited player. Positive profit means the deviation paid.
	Profit float64
	// BaselineCost is the audited player's summed cost in the honest
	// twin over the measured rounds (the scale Profit is relative to).
	BaselineCost float64
	// DetectionRound is the first round whose verdict charges the
	// deviant (or convicts it, on drivers that only publish guilt), −1
	// when the deviation was never detected.
	DetectionRound int
	// Convicted reports whether the executive ever excluded the deviant.
	Convicted bool
	// ExcludedRounds counts the plays the deviant sat out under
	// executive restriction.
	ExcludedRounds int
	// Fouls counts the fouls charged to the deviant.
	Fouls int
	// PunishmentSeverity sums the severity of the deviant's sanctions —
	// the punishment cost of the deviation.
	PunishmentSeverity float64
}

// Report aggregates a profit audit over its seeds — the empirical
// "honesty is a best response" measurement.
type Report struct {
	Strategy string
	Player   int
	Rounds   int
	Measured int // rounds per seed entering the profit sum
	Outcomes []SeedOutcome

	// MeanProfit is the mean utility delta over seeds; the paper's
	// property is MeanProfit ≤ 0 within tolerance.
	MeanProfit float64
	// MeanProfitPerRound is MeanProfit / Measured.
	MeanProfitPerRound float64
	// BaselineScale is the mean |per-round cost| of the player across
	// honest twins — the yardstick tolerances are stated against.
	BaselineScale float64
	// DetectionRate and ConvictionRate are the fraction of seeds where
	// the deviation was detected resp. convicted.
	DetectionRate  float64
	ConvictionRate float64
	// MeanDetectionLatency is the mean DetectionRound over detected
	// seeds (−1 when no seed detected).
	MeanDetectionLatency float64
	// MeanPunishment is the mean PunishmentSeverity over seeds.
	MeanPunishment float64
}

// ProfitAudit runs the paired honest/deviant sessions for every seed and
// aggregates the outcome. Each pair shares a seed, so the twins replay
// identically up to the deviation and every cost delta is attributable
// to it.
func ProfitAudit(ctx context.Context, cfg AuditConfig) (Report, error) {
	if cfg.Strategy == nil || cfg.Build == nil {
		return Report{}, fmt.Errorf("%w: nil strategy or build", ErrAudit)
	}
	if cfg.Rounds < 1 || len(cfg.Seeds) == 0 {
		return Report{}, fmt.Errorf("%w: need rounds ≥ 1 and at least one seed", ErrAudit)
	}
	skip := cfg.SkipRounds
	switch {
	case skip < 0:
		skip = 0
	case skip == 0:
		skip = 1
	}
	if skip >= cfg.Rounds {
		return Report{}, fmt.Errorf("%w: skip %d leaves no measured rounds of %d", ErrAudit, skip, cfg.Rounds)
	}

	rep := Report{
		Strategy: cfg.Strategy.Name(),
		Player:   cfg.Player,
		Rounds:   cfg.Rounds,
		Measured: cfg.Rounds - skip,
	}
	var detected int
	var latencySum float64
	for _, seed := range cfg.Seeds {
		out, err := auditSeed(ctx, cfg, seed, skip)
		if err != nil {
			return Report{}, err
		}
		rep.Outcomes = append(rep.Outcomes, out)
		rep.MeanProfit += out.Profit
		rep.BaselineScale += abs(out.BaselineCost)
		rep.MeanPunishment += out.PunishmentSeverity
		if out.DetectionRound >= 0 {
			detected++
			latencySum += float64(out.DetectionRound)
		}
		if out.Convicted {
			rep.ConvictionRate++
		}
	}
	seeds := float64(len(cfg.Seeds))
	rep.MeanProfit /= seeds
	rep.MeanProfitPerRound = rep.MeanProfit / float64(rep.Measured)
	rep.BaselineScale /= seeds * float64(rep.Measured)
	rep.MeanPunishment /= seeds
	rep.DetectionRate = float64(detected) / seeds
	rep.ConvictionRate /= seeds
	if detected > 0 {
		rep.MeanDetectionLatency = latencySum / float64(detected)
	} else {
		rep.MeanDetectionLatency = -1
	}
	return rep, nil
}

// auditSeed runs one honest/deviant twin pair.
func auditSeed(ctx context.Context, cfg AuditConfig, seed uint64, skip int) (SeedOutcome, error) {
	honest, err := runTwin(ctx, cfg, seed, nil)
	if err != nil {
		return SeedOutcome{}, fmt.Errorf("deviate: honest twin seed %d: %w", seed, err)
	}
	deviant, err := runTwin(ctx, cfg, seed, cfg.Strategy)
	if err != nil {
		return SeedOutcome{}, fmt.Errorf("deviate: deviant twin seed %d: %w", seed, err)
	}
	if len(honest) != cfg.Rounds || len(deviant) != cfg.Rounds {
		return SeedOutcome{}, fmt.Errorf("%w: twins retained %d/%d of %d rounds (was a history limit set?)",
			ErrAudit, len(honest), len(deviant), cfg.Rounds)
	}

	out := SeedOutcome{Seed: seed, DetectionRound: -1}
	for r := 0; r < cfg.Rounds; r++ {
		hres, dres := &honest[r], &deviant[r]
		if r >= skip {
			if len(hres.Costs) > cfg.Player && len(dres.Costs) > cfg.Player {
				out.BaselineCost += hres.Costs[cfg.Player]
				out.Profit += hres.Costs[cfg.Player] - dres.Costs[cfg.Player]
			}
		}
		fouls := dres.Verdict.FoulsFor(cfg.Player)
		out.Fouls += len(fouls)
		out.PunishmentSeverity += dres.Verdict.TotalSeverity(cfg.Player)
		charged := len(fouls) > 0
		for _, id := range dres.Convicted {
			if id == cfg.Player {
				out.Convicted = true
				if !charged {
					// Drivers that only publish guilt (distributed)
					// sanction at full severity per conviction.
					out.PunishmentSeverity++
					charged = true
				}
			}
		}
		if charged && out.DetectionRound < 0 {
			out.DetectionRound = dres.Round
		}
		for _, id := range dres.Excluded {
			if id == cfg.Player {
				out.ExcludedRounds++
			}
		}
	}
	return out, nil
}

// runTwin builds, plays and closes one session, returning its history.
// The session is closed *before* the history is read: a batched-audit
// mixed session adjudicates its trailing partial epoch on Close and
// attaches the verdict to the last retained play, and results still
// answer on a closed session.
func runTwin(ctx context.Context, cfg AuditConfig, seed uint64, d core.Deviant) ([]core.RoundResult, error) {
	s, err := cfg.Build(seed, d, cfg.Player)
	if err != nil {
		return nil, err
	}
	if _, err := s.Run(ctx, cfg.Rounds); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return s.Results(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
