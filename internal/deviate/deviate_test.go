package deviate

import (
	"context"
	"strings"
	"testing"

	"gameauthority/internal/core"
	"gameauthority/internal/game"
	"gameauthority/internal/punish"
	"gameauthority/internal/sim"
)

func TestRegistryAndByName(t *testing.T) {
	reg := Registry()
	if len(reg) != 5 {
		t.Fatalf("registry has %d strategies, want 5", len(reg))
	}
	seen := map[string]bool{}
	for _, d := range reg {
		if d.Name() == "" {
			t.Fatalf("strategy with empty name")
		}
		if seen[d.Name()] {
			t.Fatalf("duplicate strategy name %q", d.Name())
		}
		seen[d.Name()] = true
		got, ok := ByName(d.Name())
		if !ok || got.Name() != d.Name() {
			t.Fatalf("ByName(%q) = %v, %v", d.Name(), got, ok)
		}
	}
	if _, ok := ByName("no-such-strategy"); ok {
		t.Fatalf("ByName resolved an unknown name")
	}
	if names := Names(); len(names) != len(reg) || names[0] != reg[0].Name() {
		t.Fatalf("Names() = %v", names)
	}
}

// coordGame is a 3-player consensus game where honest play settles on
// action 0, so strategies that camp other actions foul visibly.
func coordGame(t *testing.T) game.Game {
	t.Helper()
	g, err := game.CoordinationN(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPureDriverDetection attaches every strategy to a pure session and
// checks the judicial service charges the deviant (round 0 is duty-free,
// so fouls can only start at round 1). Strategies whose deviation shows
// only when their selfish pick differs from the equilibrium action run on
// matching pennies (where best responses cycle); the always-deviating
// ones run on the consensus game.
func TestPureDriverDetection(t *testing.T) {
	ctx := context.Background()
	for _, d := range Registry() {
		t.Run(d.Name(), func(t *testing.T) {
			g := game.Game(coordGame(t))
			deviant := 1
			if d.Name() == "best-response-liar" || d.Name() == "distribution-skewer" {
				// In the consensus game the liar's lookahead and the
				// skewer's myopic favourite both coincide with honest
				// play — matching pennies keeps them observable.
				g = game.MatchingPennies()
			}
			n := g.NumPlayers()
			scheme := punish.NewDisconnect(n, 0.5)
			s, err := core.NewSession(core.SessionConfig{
				Game:     g,
				Seed:     7,
				Scheme:   scheme,
				Deviants: map[int]core.Deviant{deviant: d},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Run(ctx, 10); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Fouls == 0 {
				t.Fatalf("%s: no fouls detected in 10 plays", d.Name())
			}
			foulsOnDeviant := 0
			var severityOnDeviant float64
			for _, res := range s.Results() {
				foulsOnDeviant += len(res.Verdict.FoulsFor(deviant))
				severityOnDeviant += res.Verdict.TotalSeverity(deviant)
				for p := 0; p < n; p++ {
					if p != deviant && len(res.Verdict.FoulsFor(p)) > 0 {
						t.Fatalf("%s: honest player %d charged: %+v", d.Name(), p, res.Verdict)
					}
				}
			}
			if foulsOnDeviant == 0 {
				t.Fatalf("%s: fouls never charged to the deviant", d.Name())
			}
			// The executive's ledger must agree with the judicial
			// verdicts: every severity unit charged landed on the
			// deviant and nothing landed on anyone else.
			tally := punish.Tally(scheme, n)
			for p, sev := range tally {
				switch {
				case p == deviant && sev != severityOnDeviant:
					t.Fatalf("%s: executive ledger %.2f vs judicial severity %.2f", d.Name(), sev, severityOnDeviant)
				case p != deviant && sev != 0:
					t.Fatalf("%s: honest player %d sanctioned %.2f", d.Name(), p, sev)
				}
			}
			if !st.Excluded[deviant] {
				t.Fatalf("%s: deviant not excluded after 10 plays", d.Name())
			}
			if st.Convictions == 0 {
				t.Fatalf("%s: no conviction events counted", d.Name())
			}
		})
	}
}

// TestMixedDriverDetection: every strategy is caught by the per-round
// seed audit on the mixed driver.
func TestMixedDriverDetection(t *testing.T) {
	ctx := context.Background()
	g := game.MatchingPennies()
	strategies := func(int, game.Profile) game.MixedProfile {
		return game.MixedProfile{game.Uniform(2), game.Uniform(2)}
	}
	for _, d := range Registry() {
		t.Run(d.Name(), func(t *testing.T) {
			s, err := core.NewSession(core.SessionConfig{
				Game:       g,
				Seed:       11,
				Strategies: strategies,
				Mode:       core.AuditPerRound,
				Scheme:     punish.NewDisconnect(2, 0),
				Deviants:   map[int]core.Deviant{0: d},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Run(ctx, 12); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Fouls == 0 || !st.Excluded[0] {
				t.Fatalf("%s: fouls=%d excluded=%v, want detection and exclusion",
					d.Name(), st.Fouls, st.Excluded)
			}
		})
	}
}

// TestRRADriverDetection: off-stream resource choices are caught by the
// RRA seed audit for the strategies that deviate every round; the skewer
// is caught within a few rounds.
func TestRRADriverDetection(t *testing.T) {
	ctx := context.Background()
	for _, d := range Registry() {
		t.Run(d.Name(), func(t *testing.T) {
			s, err := core.NewSession(core.SessionConfig{
				Seed:         13,
				RRAAgents:    6,
				RRAResources: 3,
				Scheme:       punish.NewDisconnect(6, 0),
				Deviants:     map[int]core.Deviant{2: d},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Run(ctx, 16); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Fouls == 0 || !st.Excluded[2] {
				t.Fatalf("%s: fouls=%d excluded=%v, want detection and exclusion",
					d.Name(), st.Fouls, st.Excluded)
			}
			if st.CumulativeCost == nil {
				t.Fatalf("RRA driver reports no cumulative costs")
			}
		})
	}
}

// TestDistributedDriverDetection runs one always-on strategy through the
// full Byzantine-network driver and checks the agreed verdicts convict it.
func TestDistributedDriverDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed driver is slow in -short")
	}
	ctx := context.Background()
	for _, name := range []string{"commitment-cheat", "freerider"} {
		d, _ := ByName(name)
		t.Run(name, func(t *testing.T) {
			s, err := core.NewSession(core.SessionConfig{
				Game:       coordGame(t),
				Seed:       17,
				DistProcs:  3,
				DistFaults: 0,
				Scheme:     punish.NewDisconnect(3, 0),
				Deviants:   map[int]core.Deviant{1: d},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Run(ctx, 4); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Fouls == 0 || !st.Excluded[1] {
				t.Fatalf("%s: fouls=%d excluded=%v, want conviction over the network",
					name, st.Fouls, st.Excluded)
			}
			if st.CumulativeCost == nil {
				t.Fatalf("distributed driver reports no cumulative costs")
			}
		})
	}
}

// TestDeviantConfigValidation covers the wiring error paths.
func TestDeviantConfigValidation(t *testing.T) {
	g := coordGame(t)
	cases := []core.SessionConfig{
		{Game: g, Deviants: map[int]core.Deviant{5: AlwaysDefect()}},  // out of range
		{Game: g, Deviants: map[int]core.Deviant{-1: AlwaysDefect()}}, // negative
		{Game: g, Deviants: map[int]core.Deviant{0: nil}},             // nil strategy
		{Game: g, Agents: []*core.Agent{core.HonestPure(g, 0), nil, nil}, // agent+deviant conflict
			Deviants: map[int]core.Deviant{0: AlwaysDefect()}},
		{RRAAgents: 4, RRAResources: 2, Scheme: punish.NewDisconnect(4, 0), // rra byz+deviant conflict
			RRAByz:   map[int]func(int, []int64) int{1: game.HogChooser()},
			Deviants: map[int]core.Deviant{1: AlwaysDefect()}},
	}
	for i, cfg := range cases {
		if _, err := core.NewSession(cfg); err == nil {
			t.Fatalf("case %d: invalid deviant config accepted", i)
		}
	}
}

// TestPreferredAction pins the myopic favourite on a game where it is
// obvious, and exercises the sampling fallback on a large profile space.
func TestPreferredAction(t *testing.T) {
	// In the prisoner's dilemma (cost form) defection minimizes own cost
	// against a uniform opponent.
	pd, err := game.PrisonersDilemmaParams(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a := preferredAction(pd, 0, 1); a != 1 {
		t.Fatalf("preferredAction(pd) = %d, want 1 (defect)", a)
	}
	// 16-player minority game: opponent space 2^15 exceeds the exact
	// enumeration bound, forcing the sampled estimate.
	mg, err := game.MinorityGame(17)
	if err != nil {
		t.Fatal(err)
	}
	if a := preferredAction(mg, 0, 1); a != 0 && a != 1 {
		t.Fatalf("preferredAction(minority) = %d out of range", a)
	}
}

// TestNetworkAdversaryNeedsDistributed pins the config error a stray
// adversary (no distributed session) produces: it must name the real
// mistake, not the n > 3f arithmetic.
func TestNetworkAdversaryNeedsDistributed(t *testing.T) {
	_, err := core.NewSession(core.SessionConfig{
		Game:    game.MatchingPennies(),
		DistByz: map[int]sim.Adversary{0: sim.SilentAdversary()},
	})
	if err == nil || !strings.Contains(err.Error(), "WithDistributed") {
		t.Fatalf("err = %v, want a WithDistributed-naming config error", err)
	}
}
