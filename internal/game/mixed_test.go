package game

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixedValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Mixed
		k    int
		ok   bool
	}{
		{"uniform", Uniform(3), 3, true},
		{"degenerate", Degenerate(4, 2), 4, true},
		{"wrongLen", Uniform(3), 4, false},
		{"negative", Mixed{-0.5, 1.5}, 2, false},
		{"sumLow", Mixed{0.2, 0.2}, 2, false},
		{"nan", Mixed{math.NaN(), 1}, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate(tc.k)
			if tc.ok && err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate = nil, want error")
			}
		})
	}
}

func TestSupport(t *testing.T) {
	m := Mixed{0.5, 0, 0.5}
	s := m.Support()
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("Support = %v, want [0 2]", s)
	}
}

func TestExpectedCostMatchingPenniesEquilibrium(t *testing.T) {
	g := MatchingPennies()
	mp := MixedProfile{Uniform(2), Uniform(2)}
	// At the unique equilibrium both expected payoffs are 0.
	for i := 0; i < 2; i++ {
		if c := ExpectedCost(g, i, mp); math.Abs(c) > 1e-12 {
			t.Errorf("player %d expected cost = %v, want 0", i, c)
		}
	}
}

func TestManipulationExpectedGain(t *testing.T) {
	// §5.1: against A playing (1/2, 1/2), B's Manipulate strategy pays
	// E = 1/2·(−1) + 1/2·(+9) = +4, lifting B from 0 to +4 and pushing A
	// from 0 to −4. This is the E-F1 headline number.
	g := MatchingPenniesManipulated()
	aUniform := Uniform(2)
	bManipulate := Degenerate(3, ManipulateAction)
	mp := MixedProfile{aUniform, bManipulate}
	gainB := -ExpectedCost(g, 1, mp) // payoff = −cost
	lossA := -ExpectedCost(g, 0, mp)
	if math.Abs(gainB-4) > 1e-12 {
		t.Fatalf("B's manipulation payoff = %v, want +4", gainB)
	}
	if math.Abs(lossA-(-4)) > 1e-12 {
		t.Fatalf("A's payoff under manipulation = %v, want −4", lossA)
	}
	// And Manipulate strictly beats Heads/Tails for B against uniform A:
	best := MixedBestResponseSet(g, 1, MixedProfile{aUniform, Uniform(3)}, 1e-9)
	if len(best) != 1 || best[0] != ManipulateAction {
		t.Fatalf("B's best response vs uniform A = %v, want [Manipulate]", best)
	}
}

func TestExpectedCostOfActionMatchesDegenerate(t *testing.T) {
	g := MatchingPenniesManipulated()
	mp := MixedProfile{Uniform(2), Uniform(3)}
	for a := 0; a < 3; a++ {
		viaHelper := ExpectedCostOfAction(g, 1, a, mp)
		forced := MixedProfile{mp[0], Degenerate(3, a)}
		direct := ExpectedCost(g, 1, forced)
		if math.Abs(viaHelper-direct) > 1e-12 {
			t.Errorf("action %d: helper %v != direct %v", a, viaHelper, direct)
		}
	}
}

func TestIsMixedNash(t *testing.T) {
	g := MatchingPennies()
	if !IsMixedNash(g, MixedProfile{Uniform(2), Uniform(2)}, 1e-9) {
		t.Fatal("uniform/uniform must be the matching pennies equilibrium")
	}
	if IsMixedNash(g, MixedProfile{Mixed{0.9, 0.1}, Uniform(2)}, 1e-9) {
		t.Fatal("biased strategy wrongly accepted as equilibrium")
	}
}

func TestValidateMixedProfile(t *testing.T) {
	g := MatchingPennies()
	if err := ValidateMixedProfile(g, MixedProfile{Uniform(2), Uniform(2)}); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if err := ValidateMixedProfile(g, MixedProfile{Uniform(2)}); err == nil {
		t.Fatal("short profile accepted")
	}
	if err := ValidateMixedProfile(g, MixedProfile{Uniform(2), Uniform(3)}); err == nil {
		t.Fatal("wrong-shape strategy accepted")
	}
}

func TestExpectedSocialCostZeroSum(t *testing.T) {
	g := MatchingPennies()
	mp := MixedProfile{Mixed{0.3, 0.7}, Mixed{0.6, 0.4}}
	if sc := ExpectedSocialCost(g, mp, nil); math.Abs(sc) > 1e-12 {
		t.Fatalf("zero-sum expected social cost = %v, want 0", sc)
	}
	one := ExpectedSocialCost(g, mp, []int{0})
	if math.Abs(one-ExpectedCost(g, 0, mp)) > 1e-12 {
		t.Fatal("honest-subset social cost mismatch")
	}
}

func TestSampleProfileDeterministicAndLegitimate(t *testing.T) {
	g := MatchingPenniesManipulated()
	mp := MixedProfile{Uniform(2), Uniform(3)}
	p1, err := SampleProfile(g, mp, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SampleProfile(g, mp, 42, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Fatal("SampleProfile not replayable for fixed (seed, round)")
	}
	if err := ValidateProfile(g, p1); err != nil {
		t.Fatalf("sampled profile invalid: %v", err)
	}
	p3, err := SampleProfile(g, mp, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = p3 // different round may or may not differ; just must be valid
	if err := ValidateProfile(g, p3); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSampledFrequenciesRespectSupport(t *testing.T) {
	g := MatchingPennies()
	f := func(seed uint64) bool {
		mp := MixedProfile{Degenerate(2, 1), Uniform(2)}
		p, err := SampleProfile(g, mp, seed, 0)
		if err != nil {
			return false
		}
		return p[0] == 1 // degenerate strategy must always play action 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
