package game

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewRRAValidation(t *testing.T) {
	if _, err := NewRRA(0, 2); !errors.Is(err, ErrRRAConfig) {
		t.Fatalf("n=0: err = %v, want ErrRRAConfig", err)
	}
	if _, err := NewRRA(3, 1); !errors.Is(err, ErrRRAConfig) {
		t.Fatalf("b=1: err = %v, want ErrRRAConfig", err)
	}
	r, err := NewRRA(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 3 || r.B() != 4 || r.Rounds() != 0 {
		t.Fatalf("fresh RRA state wrong: n=%d b=%d k=%d", r.N(), r.B(), r.Rounds())
	}
}

func TestOptMaxLoad(t *testing.T) {
	cases := []struct {
		n, b, k int
		want    int64
	}{
		{4, 2, 0, 0},
		{4, 2, 1, 2}, // 4 demands on 2 bins → 2 each
		{5, 2, 1, 3}, // ⌈5/2⌉
		{3, 4, 1, 1}, // more bins than demands
		{8, 4, 10, 20},
		{7, 3, 5, 12}, // ⌈35/3⌉
	}
	for _, tc := range cases {
		if got := OptMaxLoad(tc.n, tc.b, tc.k); got != tc.want {
			t.Errorf("OptMaxLoad(%d,%d,%d) = %d, want %d", tc.n, tc.b, tc.k, got, tc.want)
		}
	}
}

func TestEquilibriumStrategyZeroLoads(t *testing.T) {
	r, _ := NewRRA(4, 3)
	m := r.EquilibriumStrategy()
	// With equal loads the symmetric equilibrium is uniform.
	for a := 0; a < 3; a++ {
		if math.Abs(m[a]-1.0/3) > 1e-9 {
			t.Fatalf("zero-load equilibrium = %v, want uniform", m)
		}
	}
}

func TestEquilibriumStrategyWaterFilling(t *testing.T) {
	r, _ := NewRRA(3, 3)
	// Force uneven loads: bin loads 0, 0, 10 — bin 2 should be off-support.
	r.loads = []int64{0, 0, 10}
	m := r.EquilibriumStrategy()
	if m[2] != 0 {
		t.Fatalf("overloaded bin still in support: %v", m)
	}
	if math.Abs(m[0]-0.5) > 1e-9 || math.Abs(m[1]-0.5) > 1e-9 {
		t.Fatalf("equilibrium = %v, want (1/2, 1/2, 0)", m)
	}
	// Indifference check: expected completion equal on support, and the
	// expected cost of the supported bins must not exceed bin 2's.
	n := 3.0
	c0 := float64(r.loads[0]) + 1 + (n-1)*m[0]
	c1 := float64(r.loads[1]) + 1 + (n-1)*m[1]
	c2 := float64(r.loads[2]) + 1
	if math.Abs(c0-c1) > 1e-9 || c0 > c2 {
		t.Fatalf("indifference violated: c=(%v,%v,%v)", c0, c1, c2)
	}
}

func TestEquilibriumStrategyPartialImbalance(t *testing.T) {
	r, _ := NewRRA(5, 3)
	r.loads = []int64{2, 3, 4}
	m := r.EquilibriumStrategy()
	var sum float64
	for _, p := range m {
		if p < -1e-12 {
			t.Fatalf("negative probability: %v", m)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Expected completion λ_a = ℓ_a + 1 + (n−1)x_a must be equal across
	// the support and no worse off-support.
	var level float64 = -1
	for a, p := range m {
		lam := float64(r.loads[a]) + 1 + 4*p
		if p > 1e-9 {
			if level < 0 {
				level = lam
			} else if math.Abs(lam-level) > 1e-6 {
				t.Fatalf("support not indifferent: λ%d=%v level=%v (m=%v)", a, lam, level, m)
			}
		} else if lam < level-1e-6 {
			t.Fatalf("off-support bin strictly better: λ%d=%v level=%v", a, lam, level)
		}
	}
}

func TestEquilibriumSingleAgent(t *testing.T) {
	r, _ := NewRRA(1, 3)
	r.loads = []int64{5, 2, 7}
	m := r.EquilibriumStrategy()
	if m[1] != 1 {
		t.Fatalf("single agent should deterministically pick min-load bin: %v", m)
	}
}

func TestStepConservation(t *testing.T) {
	r, _ := NewRRA(6, 4)
	choose := r.EquilibriumChooser(99)
	for k := 1; k <= 50; k++ {
		if _, err := r.Step(choose); err != nil {
			t.Fatal(err)
		}
		if got, want := r.TotalLoad(), int64(6*k); got != want {
			t.Fatalf("round %d: total load %d, want %d", k, got, want)
		}
	}
	if r.Rounds() != 50 {
		t.Fatalf("rounds = %d, want 50", r.Rounds())
	}
}

func TestStepRejectsOutOfRangeChoice(t *testing.T) {
	r, _ := NewRRA(2, 2)
	_, err := r.Step(func(agent int, loads []int64) int { return 7 })
	if !errors.Is(err, ErrActionRange) {
		t.Fatalf("err = %v, want ErrActionRange", err)
	}
}

func TestLemma6SpreadBoundUnderEquilibriumPlay(t *testing.T) {
	// Lemma 6: under repeated Nash play, M(k) − ℓ_a(k) ≤ 2n−1 for all a;
	// in particular the max-min spread Δ(k) ≤ 2n−1.
	for _, cfg := range []struct{ n, b int }{{4, 2}, {4, 4}, {8, 3}, {16, 8}} {
		r, err := NewRRA(cfg.n, cfg.b)
		if err != nil {
			t.Fatal(err)
		}
		choose := r.EquilibriumChooser(uint64(cfg.n*1000 + cfg.b))
		bound := int64(2*cfg.n - 1)
		for k := 0; k < 400; k++ {
			if _, err := r.Step(choose); err != nil {
				t.Fatal(err)
			}
			if d := r.Spread(); d > bound {
				t.Fatalf("n=%d b=%d round %d: spread %d exceeds Lemma 6 bound %d",
					cfg.n, cfg.b, k+1, d, bound)
			}
		}
	}
}

func TestTheorem5AnarchyCostBound(t *testing.T) {
	// Theorem 5: R(k) ≤ 1 + 2b/k for the supervised RRA game. We verify
	// the realized ratio M(k)/OPT(k) stays under the bound (up to the
	// integrality slack OPT ≥ nk/b the proof uses).
	const seeds = 5
	for _, cfg := range []struct{ n, b int }{{4, 2}, {8, 4}} {
		for seed := uint64(0); seed < seeds; seed++ {
			r, err := NewRRA(cfg.n, cfg.b)
			if err != nil {
				t.Fatal(err)
			}
			choose := r.EquilibriumChooser(seed)
			for k := 1; k <= 1000; k++ {
				if _, err := r.Step(choose); err != nil {
					t.Fatal(err)
				}
				if k < 10 {
					continue // tiny k: integrality dominates
				}
				ratio := float64(r.MaxLoad()) / float64(OptMaxLoad(cfg.n, cfg.b, k))
				bound := 1 + 2*float64(cfg.b)/float64(k) + 0.05
				if ratio > bound {
					t.Fatalf("n=%d b=%d k=%d: R(k)=%v exceeds 1+2b/k=%v",
						cfg.n, cfg.b, k, ratio, bound)
				}
			}
		}
	}
}

func TestHogChooserDamagesBalance(t *testing.T) {
	honest, _ := NewRRA(4, 4)
	attacked, _ := NewRRA(4, 4)
	honestChoose := honest.EquilibriumChooser(7)
	attackedEq := attacked.EquilibriumChooser(7)
	hog := HogChooser()
	for k := 0; k < 300; k++ {
		if _, err := honest.Step(honestChoose); err != nil {
			t.Fatal(err)
		}
		if _, err := attacked.Step(func(agent int, loads []int64) int {
			if agent == 0 {
				return hog(agent, loads)
			}
			return attackedEq(agent, loads)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if attacked.MaxLoad() <= honest.MaxLoad() {
		t.Fatalf("hog did not worsen makespan: attacked %d vs honest %d",
			attacked.MaxLoad(), honest.MaxLoad())
	}
}

func TestRoundGameIsCongestionGame(t *testing.T) {
	rg := &RoundGame{NAgents: 3, Loads: []int64{0, 2, 0}}
	// All three on bin 0: cost = 0 + 3.
	if c := rg.Cost(0, Profile{0, 0, 0}); c != 3 {
		t.Fatalf("cost = %v, want 3", c)
	}
	// Spread out: bin loads 0,2,0 → picking empty bin alone costs 1.
	if c := rg.Cost(2, Profile{0, 1, 2}); c != 1 {
		t.Fatalf("cost = %v, want 1", c)
	}
	// PNEs of the round game must be balanced assignments over bins 0,2.
	pnes, err := PureNashEquilibria(rg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) == 0 {
		t.Fatal("round game has no PNE; congestion games always do")
	}
	for _, p := range pnes {
		for _, c := range p {
			if c == 1 {
				t.Fatalf("PNE %v uses overloaded bin 1", p)
			}
		}
	}
}

func TestQuickEquilibriumStrategyIsDistribution(t *testing.T) {
	f := func(l0, l1, l2 uint8, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		loads := []int64{int64(l0), int64(l1), int64(l2)}
		m := rraEquilibrium(loads, n)
		var sum float64
		for _, p := range m {
			if p < -1e-9 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedChooser(t *testing.T) {
	choose := FixedChooser(2)
	if got := choose(5, []int64{9, 9, 0, 9}); got != 2 {
		t.Fatalf("FixedChooser(2) returned %d", got)
	}
}
