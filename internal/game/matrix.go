package game

import "fmt"

// Bimatrix is a two-player strategic-form game stored as dense cost
// matrices. CostA[i][j] is player 0's cost when player 0 plays i and player
// 1 plays j; CostB[i][j] is player 1's cost for the same profile.
type Bimatrix struct {
	GameName string
	// RowNames and ColNames are optional action labels.
	RowNames, ColNames []string
	CostA, CostB       [][]float64
}

var (
	_ Game  = (*Bimatrix)(nil)
	_ Named = (*Bimatrix)(nil)
)

// NewBimatrix constructs a bimatrix game from cost matrices, validating
// shape consistency.
func NewBimatrix(name string, costA, costB [][]float64) (*Bimatrix, error) {
	if len(costA) == 0 || len(costA) != len(costB) {
		return nil, fmt.Errorf("%w: matrices must be non-empty with equal row counts", ErrProfileShape)
	}
	cols := len(costA[0])
	if cols == 0 {
		return nil, fmt.Errorf("%w: zero columns", ErrProfileShape)
	}
	for r := range costA {
		if len(costA[r]) != cols || len(costB[r]) != cols {
			return nil, fmt.Errorf("%w: ragged matrix at row %d", ErrProfileShape, r)
		}
	}
	return &Bimatrix{GameName: name, CostA: costA, CostB: costB}, nil
}

// FromPayoffs builds a Bimatrix from *payoff* matrices (maximized), negating
// them into the package's cost convention. Fig. 1 of the paper is stated in
// payoffs; use this to enter it verbatim.
func FromPayoffs(name string, payA, payB [][]float64) (*Bimatrix, error) {
	costA := negate(payA)
	costB := negate(payB)
	return NewBimatrix(name, costA, costB)
}

func negate(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = -v
		}
	}
	return out
}

// NumPlayers implements Game.
func (b *Bimatrix) NumPlayers() int { return 2 }

// NumActions implements Game.
func (b *Bimatrix) NumActions(player int) int {
	if player == 0 {
		return len(b.CostA)
	}
	return len(b.CostA[0])
}

// Cost implements Game.
func (b *Bimatrix) Cost(player int, p Profile) float64 {
	if player == 0 {
		return b.CostA[p[0]][p[1]]
	}
	return b.CostB[p[0]][p[1]]
}

// Payoff returns the payoff (negated cost) — convenience for examples that
// present results in the paper's Fig. 1 orientation.
func (b *Bimatrix) Payoff(player int, p Profile) float64 {
	return -b.Cost(player, p)
}

// Name implements Named.
func (b *Bimatrix) Name() string { return b.GameName }

// ActionName implements Named.
func (b *Bimatrix) ActionName(player, action int) string {
	if player == 0 && action < len(b.RowNames) {
		return b.RowNames[action]
	}
	if player == 1 && action < len(b.ColNames) {
		return b.ColNames[action]
	}
	return fmt.Sprintf("a%d", action)
}

// MatchingPennies returns the classical 2×2 matching pennies game: if the
// pennies match, agent A receives 1 from agent B; otherwise B receives 1
// from A (§5). It has no PNE and a unique mixed equilibrium at (1/2, 1/2).
func MatchingPennies() *Bimatrix {
	payA := [][]float64{
		{+1, -1},
		{-1, +1},
	}
	payB := [][]float64{
		{-1, +1},
		{+1, -1},
	}
	g, err := FromPayoffs("matching-pennies", payA, payB)
	if err != nil {
		panic(err) // static tables; cannot fail
	}
	g.RowNames = []string{"Heads", "Tails"}
	g.ColNames = []string{"Heads", "Tails"}
	return g
}

// MatchingPenniesManipulated returns the Fig. 1 game: agent B gains a third,
// hidden "Manipulate" strategy that behaves like Heads except that when the
// pennies do not match (A plays Tails), A pays 9 to B instead of receiving 1.
//
//	A\B      Heads    Tails    Manipulate
//	Heads   (+1,−1)  (−1,+1)   (+1,−1)
//	Tails   (−1,+1)  (+1,−1)   (−9,+9)
func MatchingPenniesManipulated() *Bimatrix {
	payA := [][]float64{
		{+1, -1, +1},
		{-1, +1, -9},
	}
	payB := [][]float64{
		{-1, +1, -1},
		{+1, -1, +9},
	}
	g, err := FromPayoffs("matching-pennies-manipulated", payA, payB)
	if err != nil {
		panic(err) // static tables; cannot fail
	}
	g.RowNames = []string{"Heads", "Tails"}
	g.ColNames = []string{"Heads", "Tails", "Manipulate"}
	return g
}

// ManipulateAction is the index of B's hidden manipulation strategy in
// MatchingPenniesManipulated.
const ManipulateAction = 2

// PrisonersDilemma returns the classical prisoner's dilemma in cost form
// (years in prison): cooperate/defect with the standard ordering
// T<R<P<S translated to costs 0<1<2<3.
func PrisonersDilemma() *Bimatrix {
	costA := [][]float64{
		{1, 3},
		{0, 2},
	}
	costB := [][]float64{
		{1, 0},
		{3, 2},
	}
	g, err := NewBimatrix("prisoners-dilemma", costA, costB)
	if err != nil {
		panic(err) // static tables; cannot fail
	}
	g.RowNames = []string{"Cooperate", "Defect"}
	g.ColNames = []string{"Cooperate", "Defect"}
	return g
}

// CoordinationGame returns a 2×2 coordination game with two PNEs of
// different social cost — handy for exercising PoA vs PoS (the gap between
// worst and best equilibrium).
func CoordinationGame() *Bimatrix {
	costA := [][]float64{
		{1, 4},
		{4, 2},
	}
	costB := [][]float64{
		{1, 4},
		{4, 2},
	}
	g, err := NewBimatrix("coordination", costA, costB)
	if err != nil {
		panic(err) // static tables; cannot fail
	}
	g.RowNames = []string{"Left", "Right"}
	g.ColNames = []string{"Left", "Right"}
	return g
}

// Restricted wraps a game with per-player permitted action sets, modelling
// the executive service restricting the actions of punished agents (§3.4:
// "this service restricts the action of dishonest agents"). A restricted
// player's cost for a forbidden action is +Inf, and forbidden actions are
// excluded from best-response sets by construction.
type Restricted struct {
	Base Game
	// Allowed[i] lists permitted actions for player i; nil means all.
	Allowed map[int][]int
}

var _ Game = (*Restricted)(nil)

// NumPlayers implements Game.
func (r *Restricted) NumPlayers() int { return r.Base.NumPlayers() }

// NumActions implements Game. The action space keeps its original indexing
// (so profiles remain comparable); forbidden actions simply cost +Inf.
func (r *Restricted) NumActions(player int) int { return r.Base.NumActions(player) }

// Cost implements Game.
func (r *Restricted) Cost(player int, p Profile) float64 {
	if allowed, ok := r.Allowed[player]; ok && allowed != nil {
		permitted := false
		for _, a := range allowed {
			if p[player] == a {
				permitted = true
				break
			}
		}
		if !permitted {
			return inf()
		}
	}
	return r.Base.Cost(player, p)
}

func inf() float64 { return 1e18 } // large finite sentinel: keeps arithmetic (sums) well-behaved
