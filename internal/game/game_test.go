package game

import (
	"errors"
	"testing"
)

func TestValidateProfile(t *testing.T) {
	g := MatchingPennies()
	cases := []struct {
		name    string
		profile Profile
		wantErr error
	}{
		{"valid", Profile{0, 1}, nil},
		{"short", Profile{0}, ErrProfileShape},
		{"long", Profile{0, 1, 0}, ErrProfileShape},
		{"negative", Profile{-1, 0}, ErrActionRange},
		{"toolarge", Profile{0, 2}, ErrActionRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateProfile(g, tc.profile)
			if tc.wantErr == nil && err != nil {
				t.Fatalf("ValidateProfile = %v, want nil", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("ValidateProfile = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestProfileCloneEqual(t *testing.T) {
	p := Profile{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if p.Equal(Profile{1, 2}) {
		t.Fatal("profiles of different length compared equal")
	}
}

func TestSocialCost(t *testing.T) {
	g := PrisonersDilemma()
	// Both defect: cost 2 each.
	if got := SocialCost(g, Profile{1, 1}, nil); got != 4 {
		t.Fatalf("SocialCost(defect,defect) = %v, want 4", got)
	}
	// Honest subset: only player 0.
	if got := SocialCost(g, Profile{1, 1}, []int{0}); got != 2 {
		t.Fatalf("SocialCost(honest={0}) = %v, want 2", got)
	}
	if got := SocialCost(g, Profile{1, 1}, []int{}); got != 0 {
		t.Fatalf("SocialCost(honest={}) = %v, want 0", got)
	}
}

func TestForEachProfileEnumeratesAll(t *testing.T) {
	g := MatchingPenniesManipulated() // 2x3
	var seen []Profile
	ForEachProfile(g, func(p Profile) bool {
		seen = append(seen, p.Clone())
		return true
	})
	if len(seen) != 6 {
		t.Fatalf("enumerated %d profiles, want 6", len(seen))
	}
	// Lexicographic order expected.
	want := []Profile{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i := range want {
		if !seen[i].Equal(want[i]) {
			t.Fatalf("profile %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestForEachProfileEarlyStop(t *testing.T) {
	g := MatchingPennies()
	count := 0
	ForEachProfile(g, func(Profile) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestProfileSpaceSizeGuards(t *testing.T) {
	g := MatchingPenniesManipulated()
	size, err := ProfileSpaceSize(g, 100)
	if err != nil || size != 6 {
		t.Fatalf("ProfileSpaceSize = %d, %v; want 6, nil", size, err)
	}
	if _, err := ProfileSpaceSize(g, 5); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limit 5: err = %v, want ErrTooLarge", err)
	}
}

func TestBestResponseMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	// If B plays Heads(0), A's best response is Heads (payoff +1 = cost −1).
	if br := BestResponse(g, 0, Profile{0, 0}); br != 0 {
		t.Fatalf("A's BR to B=Heads is %d, want Heads(0)", br)
	}
	// If A plays Heads, B wants mismatch: Tails(1).
	if br := BestResponse(g, 1, Profile{0, 0}); br != 1 {
		t.Fatalf("B's BR to A=Heads is %d, want Tails(1)", br)
	}
}

func TestBestResponseSetTies(t *testing.T) {
	// A game where player 0 is indifferent between both actions.
	g, err := NewBimatrix("flat", [][]float64{{1, 1}, {1, 1}}, [][]float64{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	set := BestResponseSet(g, 0, Profile{0, 0})
	if len(set) != 2 {
		t.Fatalf("BestResponseSet = %v, want both actions", set)
	}
	// Deterministic tie-break in BestResponse: lowest index.
	if br := BestResponse(g, 0, Profile{1, 1}); br != 0 {
		t.Fatalf("tie-break returned %d, want 0", br)
	}
}

func TestIsBestResponseFoulDetection(t *testing.T) {
	g := MatchingPenniesManipulated()
	// Previous outcome: A=Heads, B=Heads. B's best response to A=Heads is
	// Tails (+1). Manipulate against Heads yields −1, so Manipulate is a
	// foul play here.
	prev := Profile{0, 0}
	if IsBestResponse(g, 1, ManipulateAction, prev) {
		t.Fatal("Manipulate judged a best response to A=Heads; it is not")
	}
	if !IsBestResponse(g, 1, 1, prev) {
		t.Fatal("Tails should be B's best response to A=Heads")
	}
	// Against A=Tails, Manipulate pays +9 — it IS the (greedy) best
	// response in the manipulated game; the authority's defence is that
	// Manipulate is not a legitimate action of the elected game at all.
	prev = Profile{1, 0}
	if !IsBestResponse(g, 1, ManipulateAction, prev) {
		t.Fatal("Manipulate should maximize B's payoff against A=Tails")
	}
}

func TestPureNashEquilibria(t *testing.T) {
	t.Run("matching pennies has none", func(t *testing.T) {
		pnes, err := PureNashEquilibria(MatchingPennies(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pnes) != 0 {
			t.Fatalf("matching pennies PNEs = %v, want none", pnes)
		}
	})
	t.Run("prisoners dilemma has defect-defect", func(t *testing.T) {
		pnes, err := PureNashEquilibria(PrisonersDilemma(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pnes) != 1 || !pnes[0].Equal(Profile{1, 1}) {
			t.Fatalf("PD PNEs = %v, want [[1 1]]", pnes)
		}
	})
	t.Run("coordination has two", func(t *testing.T) {
		pnes, err := PureNashEquilibria(CoordinationGame(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(pnes) != 2 {
			t.Fatalf("coordination PNEs = %v, want 2", pnes)
		}
	})
}

func TestBestResponseDynamics(t *testing.T) {
	// PD converges to defect-defect from cooperation.
	g := PrisonersDilemma()
	final, isNash := BestResponseDynamics(g, Profile{0, 0}, 100)
	if !isNash || !final.Equal(Profile{1, 1}) {
		t.Fatalf("BR dynamics on PD ended at %v (nash=%v), want [1 1] true", final, isNash)
	}
	// Matching pennies cycles: should report non-convergence.
	_, isNash = BestResponseDynamics(MatchingPennies(), Profile{0, 0}, 100)
	if isNash {
		t.Fatal("BR dynamics claimed convergence on matching pennies")
	}
}

func TestRestrictedGame(t *testing.T) {
	base := MatchingPenniesManipulated()
	// Executive service restricts B to the legitimate actions {0, 1}.
	r := &Restricted{Base: base, Allowed: map[int][]int{1: {0, 1}}}
	if got := r.Cost(1, Profile{1, ManipulateAction}); got < 1e17 {
		t.Fatalf("forbidden action cost = %v, want huge sentinel", got)
	}
	if got := r.Cost(1, Profile{1, 0}); got != base.Cost(1, Profile{1, 0}) {
		t.Fatalf("allowed action cost changed: %v", got)
	}
	// Player 0 unrestricted.
	if got := r.Cost(0, Profile{1, ManipulateAction}); got != base.Cost(0, Profile{1, ManipulateAction}) {
		t.Fatalf("unrestricted player cost changed: %v", got)
	}
	// Best response for B under restriction never picks Manipulate.
	for a0 := 0; a0 < 2; a0++ {
		if br := BestResponse(r, 1, Profile{a0, 0}); br == ManipulateAction {
			t.Fatalf("restricted best response picked forbidden action (A=%d)", a0)
		}
	}
}
