package game

import (
	"fmt"
	"math"
)

// This file implements the precomputed cost-lookup acceleration for the
// play hot path. A Compiled game materializes every player's cost function
// and best-response structure into dense tables indexed by a packed
// profile, so that the per-play judicial audit (legitimacy + best-response
// check) and the executive's action substitution become O(1) lookups with
// zero allocation. The paper assumes best responses are efficiently
// computable (§2); Compile makes them as cheap as the hardware allows for
// the finite table games every experiment uses.

// Responder is implemented by games that answer best-response queries
// without allocating. Package-level BestResponse/IsBestResponse dispatch to
// it, so wrapping a game with Compile transparently accelerates every
// audit, honest agent, and executive substitution built on it.
type Responder interface {
	Game
	// BestResponse returns player's cost-minimizing action against the
	// other entries of p (p[player] is ignored; ties break low).
	BestResponse(player int, p Profile) int
	// IsBestResponse reports whether action is within Eps of player's
	// minimum cost against p.
	IsBestResponse(player, action int, p Profile) bool
}

// CompileLimit is the default cap on table cells (profiles × players) a
// Compile call may materialize.
const CompileLimit = 1 << 20

// Compiled is a dense-table view of a finite game. It implements Responder
// (and Named, delegating to the base game when possible) and is safe for
// concurrent use after construction.
type Compiled struct {
	base    Game
	n       int
	actions []int
	stride  []int
	// costs[player][idx] is player's cost under the profile packed as idx.
	costs [][]float64
	// br[player][idx] is player's best response against the profile packed
	// as idx (the entry for player itself is ignored by construction: all
	// packings that differ only in player's own action share the answer,
	// computed per packing for O(1) lookup).
	br [][]int32
	// isbr[player][idx] reports whether the profile's own action for
	// player is within Eps of player's minimum against it.
	isbr [][]bool
}

var (
	_ Game      = (*Compiled)(nil)
	_ Responder = (*Compiled)(nil)
	_ Named     = (*Compiled)(nil)
)

// Compile precomputes cost and best-response tables for g. It returns
// ErrTooLarge when the tables would exceed limit cells (profiles ×
// players); pass 0 for the default CompileLimit.
func Compile(g Game, limit int) (*Compiled, error) {
	if limit <= 0 {
		limit = CompileLimit
	}
	n := g.NumPlayers()
	if n == 0 {
		return nil, fmt.Errorf("%w: zero players", ErrProfileShape)
	}
	space, err := ProfileSpaceSize(g, limit)
	if err != nil {
		return nil, err
	}
	if space > limit/n {
		return nil, ErrTooLarge
	}
	c := &Compiled{
		base:    g,
		n:       n,
		actions: make([]int, n),
		stride:  make([]int, n),
		costs:   make([][]float64, n),
		br:      make([][]int32, n),
		isbr:    make([][]bool, n),
	}
	stride := 1
	for i := n - 1; i >= 0; i-- {
		c.actions[i] = g.NumActions(i)
		c.stride[i] = stride
		stride *= c.actions[i]
	}
	for i := 0; i < n; i++ {
		c.costs[i] = make([]float64, space)
		c.br[i] = make([]int32, space)
		c.isbr[i] = make([]bool, space)
	}
	ForEachProfile(g, func(p Profile) bool {
		idx, _ := c.index(p) // enumeration only yields in-shape profiles
		for i := 0; i < n; i++ {
			c.costs[i][idx] = g.Cost(i, p)
		}
		return true
	})
	// Best-response structure per player: for every packing, scan the
	// player's own axis in the cost table, replicating BestResponse's
	// tie-breaking (lowest index, strict Eps improvement) exactly.
	for i := 0; i < n; i++ {
		for idx := 0; idx < space; idx++ {
			own := (idx / c.stride[i]) % c.actions[i]
			base := idx - own*c.stride[i]
			best, bestCost := 0, math.Inf(1)
			minCost := math.Inf(1)
			for a := 0; a < c.actions[i]; a++ {
				cost := c.costs[i][base+a*c.stride[i]]
				if cost < bestCost-Eps {
					best, bestCost = a, cost
				}
				if cost < minCost {
					minCost = cost
				}
			}
			c.br[i][idx] = int32(best)
			// IsBestResponse semantics: no action beats the profile's own
			// action by more than Eps.
			c.isbr[i][idx] = c.costs[i][idx] <= minCost+Eps
		}
	}
	return c, nil
}

// Accelerate returns a Responder view of g: g itself when it already
// answers best-response queries, a Compiled table when the profile space
// fits the default limit, and g unchanged otherwise. Session constructors
// call it once so every subsequent play audits against lookup tables.
func Accelerate(g Game) Game {
	if g == nil {
		return nil
	}
	if _, ok := g.(Responder); ok {
		return g
	}
	if c, err := Compile(g, 0); err == nil {
		return c
	}
	return g
}

// index packs a profile into its table offset. ok is false when the
// profile is out of shape (e.g. a corrupted previous outcome under the §4
// transient-fault adversary) — callers then fall back to the base game,
// preserving the uncompiled behaviour bit for bit.
func (c *Compiled) index(p Profile) (int, bool) {
	if len(p) != c.n {
		return 0, false
	}
	idx := 0
	for i, a := range p {
		if a < 0 || a >= c.actions[i] {
			return 0, false
		}
		idx += a * c.stride[i]
	}
	return idx, true
}

// raw is the base game stripped of any Responder acceleration, so
// fallback paths replicate the naive scans exactly.
type raw struct{ g Game }

func (r raw) NumPlayers() int                { return r.g.NumPlayers() }
func (r raw) NumActions(p int) int           { return r.g.NumActions(p) }
func (r raw) Cost(p int, pr Profile) float64 { return r.g.Cost(p, pr) }

// Base returns the game the tables were compiled from.
func (c *Compiled) Base() Game { return c.base }

// NumPlayers implements Game.
func (c *Compiled) NumPlayers() int { return c.n }

// NumActions implements Game.
func (c *Compiled) NumActions(player int) int { return c.actions[player] }

// Cost implements Game as a table lookup.
func (c *Compiled) Cost(player int, p Profile) float64 {
	if idx, ok := c.index(p); ok {
		return c.costs[player][idx]
	}
	return c.base.Cost(player, p)
}

// BestResponse implements Responder as a table lookup.
func (c *Compiled) BestResponse(player int, p Profile) int {
	if idx, ok := c.index(p); ok {
		return int(c.br[player][idx])
	}
	return BestResponse(raw{c.base}, player, p)
}

// IsBestResponse implements Responder as a table lookup.
func (c *Compiled) IsBestResponse(player, action int, p Profile) bool {
	idx, ok := c.index(p)
	if !ok || action < 0 || action >= c.actions[player] {
		return IsBestResponse(raw{c.base}, player, action, p)
	}
	own := (idx / c.stride[player]) % c.actions[player]
	return c.isbr[player][idx+(action-own)*c.stride[player]]
}

// Name implements Named, delegating to the base game.
func (c *Compiled) Name() string {
	if nm, ok := c.base.(Named); ok {
		return nm.Name()
	}
	return "compiled"
}

// ActionName implements Named, delegating to the base game.
func (c *Compiled) ActionName(player, action int) string {
	if nm, ok := c.base.(Named); ok {
		return nm.ActionName(player, action)
	}
	return fmt.Sprintf("a%d", action)
}
