package game

import (
	"math"
	"sort"
)

// MixedNashEquilibria2P computes mixed Nash equilibria of a two-player game
// by support enumeration: for every pair of equal-size supports it solves
// the indifference equations (Nash [22]) and keeps solutions that are valid
// distributions with no profitable outside deviation. Suitable for the small
// matrix games the paper analyzes (e.g. Fig. 1); action counts above ~12
// become expensive.
//
// The returned equilibria are deduplicated within tolerance and sorted by
// player 0's expected cost (best first).
func MixedNashEquilibria2P(g Game, tol float64) []MixedProfile {
	if g.NumPlayers() != 2 {
		return nil
	}
	if tol <= 0 {
		tol = 1e-7
	}
	ka, kb := g.NumActions(0), g.NumActions(1)
	var results []MixedProfile

	supportsA := enumerateSupports(ka)
	supportsB := enumerateSupports(kb)
	for _, sa := range supportsA {
		for _, sb := range supportsB {
			if len(sa) != len(sb) {
				continue
			}
			mp, ok := solveSupports(g, sa, sb, tol)
			if !ok {
				continue
			}
			if !IsMixedNash(g, mp, tol*10) {
				continue
			}
			if !containsEquilibrium(results, mp, 1e-5) {
				results = append(results, mp)
			}
		}
	}
	sort.Slice(results, func(i, j int) bool {
		return ExpectedCost(g, 0, results[i]) < ExpectedCost(g, 0, results[j])
	})
	return results
}

// enumerateSupports returns all non-empty subsets of {0..k-1} as sorted
// slices, ordered by size then lexicographically.
func enumerateSupports(k int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<k; mask++ {
		var s []int
		for a := 0; a < k; a++ {
			if mask&(1<<a) != 0 {
				s = append(s, a)
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for x := range out[i] {
			if out[i][x] != out[j][x] {
				return out[i][x] < out[j][x]
			}
		}
		return false
	})
	return out
}

// solveSupports solves the indifference system for supports (sa, sb).
// Player 1's mixed strategy y must make player 0 indifferent across sa;
// player 0's x must make player 1 indifferent across sb.
func solveSupports(g Game, sa, sb []int, tol float64) (MixedProfile, bool) {
	m := len(sa) // == len(sb)
	p := make(Profile, 2)

	costA := func(a, b int) float64 { p[0], p[1] = a, b; return g.Cost(0, p) }
	costB := func(a, b int) float64 { p[0], p[1] = a, b; return g.Cost(1, p) }

	// Solve for y over sb: rows are (cost of sa[r] − cost of sa[r+1]) · y = 0
	// for r < m−1, plus Σ y = 1.
	y, ok := solveIndifference(m, func(r, c int) float64 {
		return costA(sa[r], sb[c]) - costA(sa[r+1], sb[c])
	})
	if !ok {
		return nil, false
	}
	// Solve for x over sa symmetric: player 1 indifferent across sb.
	x, ok := solveIndifference(m, func(r, c int) float64 {
		return costB(sa[c], sb[r]) - costB(sa[c], sb[r+1])
	})
	if !ok {
		return nil, false
	}
	for i := 0; i < m; i++ {
		if x[i] < -tol || y[i] < -tol {
			return nil, false
		}
	}
	mx := make(Mixed, g.NumActions(0))
	my := make(Mixed, g.NumActions(1))
	for i, a := range sa {
		mx[a] = clampProb(x[i])
	}
	for i, b := range sb {
		my[b] = clampProb(y[i])
	}
	normalize(mx)
	normalize(my)
	return MixedProfile{mx, my}, true
}

// solveIndifference builds and solves the m×m system whose first m−1 rows
// are diff(r, ·)·z = 0 and last row is Σz = 1.
func solveIndifference(m int, diff func(r, c int) float64) ([]float64, bool) {
	a := make([][]float64, m)
	b := make([]float64, m)
	for r := 0; r < m-1; r++ {
		a[r] = make([]float64, m)
		for c := 0; c < m; c++ {
			a[r][c] = diff(r, c)
		}
	}
	a[m-1] = make([]float64, m)
	for c := 0; c < m; c++ {
		a[m-1][c] = 1
	}
	b[m-1] = 1
	z, err := solveLinear(a, b)
	if err != nil {
		return nil, false
	}
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, false
		}
	}
	return z, true
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func normalize(m Mixed) {
	var sum float64
	for _, p := range m {
		sum += p
	}
	if sum <= 0 {
		return
	}
	for i := range m {
		m[i] /= sum
	}
}

func containsEquilibrium(list []MixedProfile, mp MixedProfile, tol float64) bool {
	for _, e := range list {
		if equilibriaClose(e, mp, tol) {
			return true
		}
	}
	return false
}

func equilibriaClose(a, b MixedProfile, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}
