// Package game implements the strategic-form game model of the paper's §2:
// games Γ = ⟨N, (Πi)i∈N, (ui)i∈N⟩ with pure strategy profiles (PSPs), social
// cost, pure Nash equilibria, mixed strategies, and best responses — plus the
// concrete games the paper studies: matching pennies with a hidden
// manipulation strategy (Fig. 1), the repeated resource allocation game of
// §6, and the virus inoculation game of Moscibroda et al. [21] used for the
// price-of-malice experiments.
//
// Beyond the paper's own games, the package carries the scenario catalog
// (catalog.go): classic N-player families — congestion and Braess
// routing, public goods with punishment, minority, first/second-price
// auctions, parameterized prisoner's dilemma and coordination — each with
// a documented, test-pinned equilibrium structure, so the §3.2 audits and
// the PoA/PoS metrics stay checkable at every size the load harness
// (cmd/loadgen) generates. Catalog enumerates them by name.
//
// Convention: following §2, ui is a *cost* function and agents minimize.
// A pure Nash equilibrium is a profile π with ui(π) ≤ ui(π′i, π−i) for every
// player i and deviation π′i. Games that are naturally stated in payoffs
// (e.g. Fig. 1) are converted with FromPayoffs, which negates.
package game
