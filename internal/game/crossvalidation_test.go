package game

import (
	"math"
	"testing"
	"testing/quick"
)

// Cross-validation tests: independent computations of the same quantity
// must agree. These guard the analytical pieces the experiments lean on.

func TestRRAEquilibriumIsMixedNashOfRoundGame(t *testing.T) {
	// The water-filling strategy of §6 must be a symmetric mixed Nash
	// equilibrium of the one-shot RoundGame: no pure deviation may lower
	// expected cost (checked with the generic expected-cost machinery).
	cases := []struct {
		n     int
		loads []int64
	}{
		{2, []int64{0, 0}},
		{3, []int64{0, 0, 0}},
		{3, []int64{2, 0, 1}},
		{4, []int64{5, 5, 0}},
		{2, []int64{7, 1, 3}},
	}
	for _, tc := range cases {
		m := rraEquilibrium(tc.loads, tc.n)
		rg := &RoundGame{NAgents: tc.n, Loads: tc.loads}
		mp := make(MixedProfile, tc.n)
		for i := range mp {
			mp[i] = m
		}
		if !IsMixedNash(rg, mp, 1e-6) {
			t.Errorf("n=%d loads=%v: water-filling %v is not a mixed Nash of the round game",
				tc.n, tc.loads, m)
		}
	}
}

func TestQuickRRAEquilibriumNashProperty(t *testing.T) {
	f := func(l0, l1 uint8, nRaw uint8) bool {
		n := int(nRaw%4) + 2 // 2..5 agents (cost of exact check grows fast)
		loads := []int64{int64(l0 % 16), int64(l1 % 16)}
		m := rraEquilibrium(loads, n)
		rg := &RoundGame{NAgents: n, Loads: loads}
		mp := make(MixedProfile, n)
		for i := range mp {
			mp[i] = m
		}
		return IsMixedNash(rg, mp, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSupportEnumerationMatchesKnownFormula(t *testing.T) {
	// For a generic 2x2 game with no PNE, the mixed equilibrium has the
	// closed form: p = (d−c)/(a−b−c+d) on the opponent's costs. Verify
	// support enumeration against it for a hand-built game.
	// Player 0 costs: [[1, 4], [3, 2]]; player 1 costs: [[2, 1], [1, 3]].
	g, err := NewBimatrix("generic", [][]float64{{1, 4}, {3, 2}}, [][]float64{{2, 1}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	eqs := MixedNashEquilibria2P(g, 0)
	if len(eqs) != 1 {
		t.Fatalf("equilibria = %d, want 1", len(eqs))
	}
	// Player 0 mixes to equalize player 1's costs: x·2+(1−x)·1 = x·1+(1−x)·3
	// ⇒ x = 2/3. Player 1 mixes to equalize player 0's: y·1+(1−y)·4 =
	// y·3+(1−y)·2 ⇒ y = 1/2.
	if math.Abs(eqs[0][0][0]-2.0/3) > 1e-6 {
		t.Fatalf("x = %v, want 2/3", eqs[0][0][0])
	}
	if math.Abs(eqs[0][1][0]-0.5) > 1e-6 {
		t.Fatalf("y = %v, want 1/2", eqs[0][1][0])
	}
}

func TestInoculationSocialCostMatchesNodeCosts(t *testing.T) {
	// SocialCost must equal the sum of NodeCost over the same set.
	g, err := NewInoculation(5, 4, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	secure := make([]bool, g.N())
	for i := 0; i < g.N(); i += 3 {
		secure[i] = true
	}
	var manual float64
	for id := 0; id < g.N(); id++ {
		manual += g.NodeCost(id, secure)
	}
	total := g.SocialCost(secure, nil)
	if math.Abs(manual-total) > 1e-9 {
		t.Fatalf("SocialCost %v != Σ NodeCost %v", total, manual)
	}
}

func TestBestResponseDynamicsAgreesWithPNEEnumeration(t *testing.T) {
	// For dominant-strategy games, BR dynamics from any start must land
	// on the unique enumerated PNE.
	g, err := PublicGoods(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != 1 {
		t.Fatalf("want unique PNE, got %d", len(pnes))
	}
	starts := []Profile{{0, 0, 0, 0}, {1, 1, 1, 1}, {1, 0, 1, 0}}
	for _, start := range starts {
		final, ok := BestResponseDynamics(g, start, 200)
		if !ok || !final.Equal(pnes[0]) {
			t.Fatalf("BR dynamics from %v ended at %v (nash=%v), want %v", start, final, ok, pnes[0])
		}
	}
}

func TestExpectedCostLinearity(t *testing.T) {
	// E[cost] under a mixed profile must equal the probability-weighted
	// sum over pure profiles — computed independently here.
	g := MatchingPenniesManipulated()
	mp := MixedProfile{Mixed{0.3, 0.7}, Mixed{0.2, 0.5, 0.3}}
	for player := 0; player < 2; player++ {
		var manual float64
		ForEachProfile(g, func(p Profile) bool {
			prob := mp[0][p[0]] * mp[1][p[1]]
			manual += prob * g.Cost(player, p)
			return true
		})
		if got := ExpectedCost(g, player, mp); math.Abs(got-manual) > 1e-12 {
			t.Fatalf("player %d: ExpectedCost %v != manual %v", player, got, manual)
		}
	}
}
