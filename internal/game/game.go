package game

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the tolerance used when comparing costs. Strategic-form tables in
// this package are small rational numbers, so a fixed epsilon is safe.
const Eps = 1e-9

// Sentinel errors.
var (
	ErrPlayerRange  = errors.New("game: player index out of range")
	ErrActionRange  = errors.New("game: action index out of range")
	ErrProfileShape = errors.New("game: profile does not match game shape")
	ErrTooLarge     = errors.New("game: profile space too large to enumerate")
)

// Profile is a pure strategy profile (PSP): Profile[i] is player i's action.
type Profile []int

// Clone returns an independent copy of the profile.
func (p Profile) Clone() Profile {
	return append(Profile(nil), p...)
}

// Equal reports whether two profiles choose identical actions.
func (p Profile) Equal(q Profile) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Game is a finite strategic-form game with cost functions (minimized).
type Game interface {
	// NumPlayers returns |N|.
	NumPlayers() int
	// NumActions returns |Πi| for player i.
	NumActions(player int) int
	// Cost returns ui(profile), the cost player i pays under the profile.
	Cost(player int, profile Profile) float64
}

// Named is an optional extension games can implement for readable output.
type Named interface {
	Name() string
	ActionName(player, action int) string
}

// ValidateProfile checks that the profile matches the game's shape and all
// actions are legitimate (the judicial service's "legitimate action choice"
// requirement, §3.2).
func ValidateProfile(g Game, p Profile) error {
	if len(p) != g.NumPlayers() {
		return fmt.Errorf("%w: got %d entries, want %d", ErrProfileShape, len(p), g.NumPlayers())
	}
	for i, a := range p {
		if a < 0 || a >= g.NumActions(i) {
			return fmt.Errorf("%w: player %d action %d (|Π|=%d)", ErrActionRange, i, a, g.NumActions(i))
		}
	}
	return nil
}

// SocialCost returns the sum of individual costs over the given players
// (paper §2: "the sum of all individual costs of honest agents"). Pass nil
// to include every player.
func SocialCost(g Game, p Profile, honest []int) float64 {
	var total float64
	if honest == nil {
		for i := 0; i < g.NumPlayers(); i++ {
			total += g.Cost(i, p)
		}
		return total
	}
	for _, i := range honest {
		total += g.Cost(i, p)
	}
	return total
}

// ProfileSpaceSize returns the number of pure strategy profiles, or
// ErrTooLarge if it exceeds limit (guarding exhaustive enumeration).
func ProfileSpaceSize(g Game, limit int) (int, error) {
	size := 1
	for i := 0; i < g.NumPlayers(); i++ {
		na := g.NumActions(i)
		if na <= 0 {
			return 0, fmt.Errorf("%w: player %d has %d actions", ErrActionRange, i, na)
		}
		if size > limit/na {
			return 0, ErrTooLarge
		}
		size *= na
	}
	return size, nil
}

// ForEachProfile enumerates every pure strategy profile in lexicographic
// order, invoking fn with a reused buffer (clone it to retain). Enumeration
// stops early if fn returns false.
func ForEachProfile(g Game, fn func(Profile) bool) {
	n := g.NumPlayers()
	p := make(Profile, n)
	for {
		if !fn(p) {
			return
		}
		// Lexicographic increment.
		i := n - 1
		for i >= 0 {
			p[i]++
			if p[i] < g.NumActions(i) {
				break
			}
			p[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// BestResponse returns player i's cost-minimizing action against the other
// players' actions in profile (profile[i] is ignored). Ties break toward the
// lowest action index so audits are deterministic. The paper assumes best
// responses are efficiently computable (§2); for table games this is a scan.
func BestResponse(g Game, player int, profile Profile) int {
	if r, ok := g.(Responder); ok {
		return r.BestResponse(player, profile)
	}
	work := profile.Clone()
	best, bestCost := 0, math.Inf(1)
	for a := 0; a < g.NumActions(player); a++ {
		work[player] = a
		if c := g.Cost(player, work); c < bestCost-Eps {
			best, bestCost = a, c
		}
	}
	return best
}

// BestResponseSet returns every action whose cost is within Eps of player
// i's minimum against profile. The judicial service treats any action in
// this set as honest (§3.2 requirement 3).
func BestResponseSet(g Game, player int, profile Profile) []int {
	work := profile.Clone()
	bestCost := math.Inf(1)
	for a := 0; a < g.NumActions(player); a++ {
		work[player] = a
		if c := g.Cost(player, work); c < bestCost {
			bestCost = c
		}
	}
	var set []int
	for a := 0; a < g.NumActions(player); a++ {
		work[player] = a
		if g.Cost(player, work) <= bestCost+Eps {
			set = append(set, a)
		}
	}
	return set
}

// IsBestResponse reports whether action is within Eps of player i's best
// response cost against profile — the §3.2 foul-play test for pure
// strategies.
func IsBestResponse(g Game, player, action int, profile Profile) bool {
	if r, ok := g.(Responder); ok {
		return r.IsBestResponse(player, action, profile)
	}
	work := profile.Clone()
	work[player] = action
	cost := g.Cost(player, work)
	for a := 0; a < g.NumActions(player); a++ {
		work[player] = a
		if g.Cost(player, work) < cost-Eps {
			return false
		}
	}
	return true
}

// IsPureNash reports whether profile is a pure Nash equilibrium: no player
// can lower its cost by a unilateral deviation.
func IsPureNash(g Game, p Profile) bool {
	for i := 0; i < g.NumPlayers(); i++ {
		if !IsBestResponse(g, i, p[i], p) {
			return false
		}
	}
	return true
}

// PureNashEquilibria enumerates all PNEs. It refuses (ErrTooLarge) when the
// profile space exceeds limit; pass 0 for the default of 1<<20.
func PureNashEquilibria(g Game, limit int) ([]Profile, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	if _, err := ProfileSpaceSize(g, limit); err != nil {
		return nil, err
	}
	var out []Profile
	ForEachProfile(g, func(p Profile) bool {
		if IsPureNash(g, p) {
			out = append(out, p.Clone())
		}
		return true
	})
	return out, nil
}

// BestResponseDynamics repeatedly lets players deviate to best responses
// (round-robin) starting from start, for at most maxSteps player-updates.
// It returns the final profile and whether it is a PNE (a fixed point).
// Many games used here (congestion-style) converge; matching pennies cycles.
func BestResponseDynamics(g Game, start Profile, maxSteps int) (Profile, bool) {
	p := start.Clone()
	n := g.NumPlayers()
	stable := 0
	for step := 0; step < maxSteps; step++ {
		i := step % n
		br := BestResponse(g, i, p)
		if IsBestResponse(g, i, p[i], p) {
			stable++
			if stable >= n {
				return p, true
			}
			continue
		}
		p[i] = br
		stable = 0
	}
	return p, IsPureNash(g, p)
}
