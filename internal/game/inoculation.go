package game

import (
	"errors"
	"fmt"

	"gameauthority/internal/prng"
)

// This file re-implements the virus inoculation game of Moscibroda, Schmid
// and Wattenhofer ("When selfish meets evil: Byzantine players in a virus
// inoculation game", PODC 2006 — the paper's reference [21]), which defines
// the price of malice (PoM) the game authority is shown to reduce (§1.2,
// §5.4). n nodes sit on a grid; each chooses to inoculate (cost C) or stay
// insecure. A virus starts at one uniformly random node and infects the
// whole connected component of insecure nodes it lands in; an infected node
// loses L. An insecure node in an "attack component" of size k therefore
// bears expected cost L·k/n, and an inoculated node bears C.
//
// Byzantine nodes stay insecure while *claiming* to be inoculated, so
// oblivious selfish nodes under-protect: perceived components look smaller
// than the true ones. The game authority detects the lie by auditing
// commitments against actual actions and punishes by disconnection, which
// removes the liar as an infection conduit.

// ErrInoculationConfig reports an invalid game configuration.
var ErrInoculationConfig = errors.New("game: invalid inoculation configuration")

// Inoculation is the grid-based virus inoculation game.
type Inoculation struct {
	w, h int
	c, l float64

	// byzantine[i]: node never inoculates but claims to be inoculated.
	byzantine []bool
	// removed[i]: node was disconnected by the executive service; it is
	// neither infectable nor a conduit and pays no cost.
	removed []bool
}

// NewInoculation builds a w×h grid game with inoculation cost c and
// infection loss l.
func NewInoculation(w, h int, c, l float64) (*Inoculation, error) {
	if w < 1 || h < 1 || c <= 0 || l <= 0 {
		return nil, fmt.Errorf("%w: w=%d h=%d c=%v l=%v", ErrInoculationConfig, w, h, c, l)
	}
	n := w * h
	return &Inoculation{
		w: w, h: h, c: c, l: l,
		byzantine: make([]bool, n),
		removed:   make([]bool, n),
	}, nil
}

// N returns the number of nodes.
func (g *Inoculation) N() int { return g.w * g.h }

// C and L return the cost parameters.
func (g *Inoculation) C() float64 { return g.c }
func (g *Inoculation) L() float64 { return g.l }

// SetByzantine marks the given nodes Byzantine (insecure liars). Panics on
// out-of-range ids — configuration errors are programmer errors here.
func (g *Inoculation) SetByzantine(ids ...int) {
	for _, id := range ids {
		g.byzantine[id] = true
	}
}

// Byzantine reports whether node id is Byzantine.
func (g *Inoculation) Byzantine(id int) bool { return g.byzantine[id] }

// Disconnect removes node id from the network (the executive service's
// punishment, §3.4): it no longer spreads infection and pays no cost.
func (g *Inoculation) Disconnect(id int) { g.removed[id] = true }

// Removed reports whether node id has been disconnected.
func (g *Inoculation) Removed(id int) bool { return g.removed[id] }

// neighbors appends the 4-neighbourhood of id (excluding removed nodes) to
// buf and returns it.
func (g *Inoculation) neighbors(id int, buf []int) []int {
	x, y := id%g.w, id/g.w
	if x > 0 && !g.removed[id-1] {
		buf = append(buf, id-1)
	}
	if x < g.w-1 && !g.removed[id+1] {
		buf = append(buf, id+1)
	}
	if y > 0 && !g.removed[id-g.w] {
		buf = append(buf, id-g.w)
	}
	if y < g.h-1 && !g.removed[id+g.w] {
		buf = append(buf, id+g.w)
	}
	return buf
}

// componentSizes labels the connected components of insecure, non-removed
// nodes. insecure[i] must be the *actual or perceived* security state being
// analyzed. It returns comp (component id per node, −1 for secure/removed)
// and the size of each component.
func (g *Inoculation) componentSizes(insecure func(i int) bool) (comp []int, sizes []int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue, nbuf []int
	for start := 0; start < n; start++ {
		if comp[start] >= 0 || g.removed[start] || !insecure(start) {
			continue
		}
		id := len(sizes)
		size := 0
		queue = append(queue[:0], start)
		comp[start] = id
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			nbuf = g.neighbors(cur, nbuf[:0])
			for _, nb := range nbuf {
				if comp[nb] < 0 && !g.removed[nb] && insecure(nb) {
					comp[nb] = id
					queue = append(queue, nb)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return comp, sizes
}

// activeN returns the number of non-removed nodes — the virus's landing
// universe after punishments.
func (g *Inoculation) activeN() int {
	n := 0
	for _, r := range g.removed {
		if !r {
			n++
		}
	}
	return n
}

// NodeCost returns node id's actual expected cost when the true security
// states are secure: C if inoculated, L·k/n if insecure in a true attack
// component of size k, 0 if removed.
func (g *Inoculation) NodeCost(id int, secure []bool) float64 {
	if g.removed[id] {
		return 0
	}
	if secure[id] {
		return g.c
	}
	comp, sizes := g.componentSizes(func(i int) bool { return !secure[i] })
	an := g.activeN()
	if an == 0 {
		return 0
	}
	return g.l * float64(sizes[comp[id]]) / float64(an)
}

// SocialCost returns the total actual cost over the given nodes (nil =
// all non-removed nodes). Per §2, the PoM experiments sum costs of honest
// nodes only.
func (g *Inoculation) SocialCost(secure []bool, include []int) float64 {
	comp, sizes := g.componentSizes(func(i int) bool { return !secure[i] })
	an := g.activeN()
	cost := func(id int) float64 {
		switch {
		case g.removed[id]:
			return 0
		case secure[id]:
			return g.c
		case an == 0:
			return 0
		default:
			return g.l * float64(sizes[comp[id]]) / float64(an)
		}
	}
	var total float64
	if include == nil {
		for id := 0; id < g.N(); id++ {
			total += cost(id)
		}
		return total
	}
	for _, id := range include {
		total += cost(id)
	}
	return total
}

// HonestNodes returns the ids of non-Byzantine, non-removed nodes.
func (g *Inoculation) HonestNodes() []int {
	var out []int
	for id := 0; id < g.N(); id++ {
		if !g.byzantine[id] && !g.removed[id] {
			out = append(out, id)
		}
	}
	return out
}

// Equilibrium runs asynchronous best-response dynamics among honest nodes
// until a fixed point (a Nash equilibrium of the perceived game) or
// maxSweeps full sweeps. Honest nodes are *oblivious* ([21]): they evaluate
// risk against the perceived state in which Byzantine nodes appear
// inoculated. It returns the true security vector (secure[i] == true iff i
// actually inoculated; Byzantine nodes are never actually secure) and
// whether the dynamics converged.
func (g *Inoculation) Equilibrium(seed uint64, maxSweeps int) (secure []bool, converged bool) {
	n := g.N()
	secure = make([]bool, n)
	// Perceived security: honest follow their own action; Byzantine claim
	// inoculated.
	perceived := func(i int) bool {
		if g.byzantine[i] {
			return true
		}
		return secure[i]
	}
	src := prng.New(seed)
	order := src.Perm(n)
	threshold := g.c / g.l // insecure is stable iff k/n ≤ C/L

	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, id := range order {
			if g.byzantine[id] || g.removed[id] {
				continue
			}
			// Perceived component size if id stays/becomes insecure:
			// recompute with id forced insecure.
			comp, sizes := g.componentSizes(func(i int) bool {
				if i == id {
					return true
				}
				return !perceived(i)
			})
			an := g.activeN()
			k := sizes[comp[id]]
			wantSecure := float64(k)/float64(an) > threshold+1e-12
			if wantSecure != secure[id] {
				secure[id] = wantSecure
				changed = true
			}
		}
		if !changed {
			return secure, true
		}
	}
	return secure, false
}

// AuditByzantine returns the ids of Byzantine nodes whose claim
// ("inoculated") contradicts their actual state — exactly what the judicial
// service detects when commitments are checked against actions (§3.2, §5.4).
func (g *Inoculation) AuditByzantine(secure []bool) []int {
	var liars []int
	for id := 0; id < g.N(); id++ {
		if g.byzantine[id] && !g.removed[id] && !secure[id] {
			liars = append(liars, id)
		}
	}
	return liars
}

// StripeOptimum computes a near-optimal centralized solution by inoculating
// every s-th grid row for the best s, the standard upper-bound construction
// for grid inoculation. Returns the security vector and its social cost
// (all active nodes). Used for PoA/PoS shape reporting, not exact optima.
func (g *Inoculation) StripeOptimum() ([]bool, float64) {
	bestCost := -1.0
	var best []bool
	for s := 1; s <= g.h+1; s++ {
		secure := make([]bool, g.N())
		for y := 0; y < g.h; y++ {
			if s <= g.h && y%s == s-1 {
				for x := 0; x < g.w; x++ {
					secure[y*g.w+x] = true
				}
			}
		}
		cost := g.SocialCost(secure, nil)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = secure
		}
	}
	// Also consider the empty and full assignments.
	empty := make([]bool, g.N())
	if c := g.SocialCost(empty, nil); c < bestCost {
		bestCost, best = c, empty
	}
	full := make([]bool, g.N())
	for i := range full {
		full[i] = true
	}
	if c := g.SocialCost(full, nil); c < bestCost {
		bestCost, best = c, full
	}
	return best, bestCost
}

// InoculationForm is the strategic-form view of a (small) inoculation game:
// every node is a player with actions {0: insecure, 1: inoculate}. Used by
// tests to cross-check Equilibrium against exhaustive PNE enumeration.
type InoculationForm struct {
	G *Inoculation
}

var _ Game = (*InoculationForm)(nil)

// NumPlayers implements Game.
func (f *InoculationForm) NumPlayers() int { return f.G.N() }

// NumActions implements Game.
func (f *InoculationForm) NumActions(int) int { return 2 }

// Cost implements Game.
func (f *InoculationForm) Cost(player int, p Profile) float64 {
	secure := make([]bool, f.G.N())
	for i, a := range p {
		secure[i] = a == 1
	}
	return f.G.NodeCost(player, secure)
}
