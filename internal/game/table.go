package game

import "fmt"

// TableGame is a general n-player strategic-form game with dense cost
// tables: costs[player][profileIndex], where profileIndex enumerates pure
// profiles lexicographically (player 0 slowest). It is the workhorse for
// games that do not fit the two-player Bimatrix shape.
type TableGame struct {
	GameName string
	// Shape[i] is |Πi|.
	Shape []int
	// costs[i][idx] is player i's cost at the idx-th profile.
	costs [][]float64
	// strides[i] converts a profile into its lexicographic index.
	strides []int
	// ActionNames[i][a] optionally labels actions.
	ActionNames [][]string
}

var (
	_ Game  = (*TableGame)(nil)
	_ Named = (*TableGame)(nil)
)

// NewTableGame allocates a zero-cost table game with the given shape.
// Costs are filled in with SetCost (or Fill).
func NewTableGame(name string, shape []int) (*TableGame, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: no players", ErrProfileShape)
	}
	// Bound the *total* allocation (one dense table per player), not just
	// the per-player profile count: n tables of 2^28 entries would still
	// exhaust memory on a request-sized budget.
	const maxEntries = 1 << 24
	size := 1
	for i, k := range shape {
		if k < 1 {
			return nil, fmt.Errorf("%w: player %d has %d actions", ErrActionRange, i, k)
		}
		if size > maxEntries/(k*len(shape)) {
			return nil, fmt.Errorf("%w: table would need > 2^24 total entries", ErrTooLarge)
		}
		size *= k
	}
	strides := make([]int, len(shape))
	stride := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= shape[i]
	}
	costs := make([][]float64, len(shape))
	for i := range costs {
		costs[i] = make([]float64, size)
	}
	return &TableGame{
		GameName: name,
		Shape:    append([]int(nil), shape...),
		costs:    costs,
		strides:  strides,
	}, nil
}

// index converts a profile to its table index.
func (t *TableGame) index(p Profile) int {
	idx := 0
	for i, a := range p {
		idx += a * t.strides[i]
	}
	return idx
}

// SetCost sets player i's cost at the given profile.
func (t *TableGame) SetCost(player int, p Profile, cost float64) error {
	if player < 0 || player >= len(t.Shape) {
		return fmt.Errorf("%w: player %d", ErrPlayerRange, player)
	}
	if err := ValidateProfile(t, p); err != nil {
		return err
	}
	t.costs[player][t.index(p)] = cost
	return nil
}

// Fill computes every entry of the table from fn — convenient for games
// defined by a formula.
func (t *TableGame) Fill(fn func(player int, p Profile) float64) {
	ForEachProfile(t, func(p Profile) bool {
		idx := t.index(p)
		for i := range t.Shape {
			t.costs[i][idx] = fn(i, p)
		}
		return true
	})
}

// NumPlayers implements Game.
func (t *TableGame) NumPlayers() int { return len(t.Shape) }

// NumActions implements Game.
func (t *TableGame) NumActions(player int) int { return t.Shape[player] }

// Cost implements Game.
func (t *TableGame) Cost(player int, p Profile) float64 {
	return t.costs[player][t.index(p)]
}

// Name implements Named.
func (t *TableGame) Name() string { return t.GameName }

// ActionName implements Named.
func (t *TableGame) ActionName(player, action int) string {
	if player < len(t.ActionNames) && action < len(t.ActionNames[player]) {
		return t.ActionNames[player][action]
	}
	return fmt.Sprintf("a%d", action)
}

// FromGame materializes any Game into a TableGame (snapshotting its costs),
// useful for caching expensive cost functions before exhaustive analysis.
func FromGame(name string, g Game, limit int) (*TableGame, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	if _, err := ProfileSpaceSize(g, limit); err != nil {
		return nil, err
	}
	shape := make([]int, g.NumPlayers())
	for i := range shape {
		shape[i] = g.NumActions(i)
	}
	t, err := NewTableGame(name, shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 { return g.Cost(player, p) })
	return t, nil
}

// MinorityGame returns the classical n-player minority game (odd n): agents
// pick one of two sides; those on the minority side win (cost 0), the
// majority pays 1. A standard multi-player test game with many equilibria.
func MinorityGame(n int) (*TableGame, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("%w: minority game needs odd n ≥ 3", ErrProfileShape)
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = 2
	}
	t, err := NewTableGame("minority", shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 {
		ones := 0
		for _, a := range p {
			ones += a
		}
		minority := 1
		if ones > n/2 {
			minority = 0
		}
		if p[player] == minority {
			return 0
		}
		return 1
	})
	return t, nil
}

// PublicGoods returns an n-player public goods game in cost form: each
// contributor pays 1; every contribution lowers everyone's cost by
// benefit/n (benefit > 1 makes contributing socially optimal but free
// riding individually dominant — an n-player prisoner's dilemma).
func PublicGoods(n int, benefit float64) (*TableGame, error) {
	if n < 2 || benefit <= 0 {
		return nil, fmt.Errorf("%w: n=%d benefit=%v", ErrProfileShape, n, benefit)
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = 2
	}
	t, err := NewTableGame("public-goods", shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 {
		contributions := 0
		for _, a := range p {
			contributions += a
		}
		cost := -float64(contributions) * benefit / float64(n)
		if p[player] == 1 {
			cost += 1
		}
		return cost
	})
	return t, nil
}
