package game

import (
	"fmt"
	"math"
)

// This file is the scenario catalog: constructors for classic N-player
// game families with *known* equilibrium structure, so the judicial
// service's audits and the PoA/PoS metrics stay checkable at every size
// the load harness spins up. Each constructor documents the Nash set it
// guarantees; internal/game's catalog tests pin those claims by brute
// force at small sizes, and cmd/loadgen draws its weighted scenario mix
// from Catalog.

// CongestionGame returns a symmetric singleton congestion game: n players
// each pick one of len(rates) facilities, and a facility with per-unit
// rate a and load ℓ costs a·ℓ to each player on it (linear latency).
//
// Equilibrium structure: a profile is a PNE iff the loads are balanced up
// to the rates — no player on facility j can strictly improve by moving to
// facility k, i.e. rates[j]·ℓj ≤ rates[k]·(ℓk+1) for all j,k. With equal
// rates every PNE splits the players as evenly as possible and PoA = 1;
// unequal rates open a PoA gap (rates {1,2} with n=2 gives PoA = 4/3).
func CongestionGame(n int, rates []float64) (*TableGame, error) {
	if n < 2 || len(rates) < 2 {
		return nil, fmt.Errorf("%w: congestion game needs n ≥ 2 players and ≥ 2 facilities", ErrProfileShape)
	}
	for j, a := range rates {
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("%w: facility %d rate %v (want finite > 0)", ErrActionRange, j, a)
		}
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = len(rates)
	}
	t, err := NewTableGame("congestion", shape)
	if err != nil {
		return nil, err
	}
	loads := make([]int, len(rates))
	t.Fill(func(player int, p Profile) float64 {
		for j := range loads {
			loads[j] = 0
		}
		for _, a := range p {
			loads[a]++
		}
		return rates[p[player]] * float64(loads[p[player]])
	})
	return t, nil
}

// BraessRouting returns the n-player discrete Braess routing game: every
// player routes one unit from s to t over three paths built from edges
// s→a and b→t with latency x (the number of users) and edges a→t and s→b
// with constant latency n, plus the zero-latency shortcut a→b:
//
//	action 0 (Up):   s→a→t    cost x(s→a) + n
//	action 1 (Down): s→b→t    cost n + x(b→t)
//	action 2 (Zig):  s→a→b→t  cost x(s→a) + x(b→t)
//
// Equilibrium structure: all-Zig is always a PNE (the shortcut dominates
// weakly), with social cost 2n² — while the optimum splits the players
// over Up and Down at ~3n²/2, so PoA = 4/3 at even n: the canonical
// price-of-anarchy scenario. At n = 2 the Up/Down split is itself a PNE
// and PoS = 1; for larger n the shortcut erodes the split and PoS climbs
// toward 4/3 (13/12 at n = 4).
func BraessRouting(n int) (*TableGame, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: braess routing needs n ≥ 2 players", ErrProfileShape)
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = 3
	}
	t, err := NewTableGame("braess-routing", shape)
	if err != nil {
		return nil, err
	}
	for range shape {
		t.ActionNames = append(t.ActionNames, []string{"Up", "Down", "Zig"})
	}
	t.Fill(func(player int, p Profile) float64 {
		var sa, bt int // users of edge s→a resp. b→t
		for _, a := range p {
			if a == 0 || a == 2 {
				sa++
			}
			if a == 1 || a == 2 {
				bt++
			}
		}
		switch p[player] {
		case 0:
			return float64(sa + n)
		case 1:
			return float64(n + bt)
		default:
			return float64(sa + bt)
		}
	})
	return t, nil
}

// PublicGoodsPunish returns the public-goods game with punishment: the
// PublicGoods cost structure (contributing costs 1, every contribution
// lowers everyone's cost by benefit/n) plus a fine charged to every free
// rider — the executive service's sanction folded into the cost function.
//
// Equilibrium structure: free riding saves 1 − benefit/n, so for
// fine > 1 − benefit/n contributing is strictly dominant and the unique
// PNE is all-contribute (the socially optimal profile the unpunished game
// cannot reach); for fine < 1 − benefit/n the unique PNE stays all-defect.
func PublicGoodsPunish(n int, benefit, fine float64) (*TableGame, error) {
	if fine < 0 || math.IsNaN(fine) || math.IsInf(fine, 0) {
		return nil, fmt.Errorf("%w: fine %v (want finite ≥ 0)", ErrProfileShape, fine)
	}
	t, err := PublicGoods(n, benefit)
	if err != nil {
		return nil, err
	}
	t.GameName = "public-goods-punish"
	ForEachProfile(t, func(p Profile) bool {
		for i := range p {
			if p[i] == 0 {
				t.costs[i][t.index(p)] += fine
			}
		}
		return true
	})
	return t, nil
}

// FirstPriceAuction returns the first-price sealed-bid auction among
// len(values) bidders as a strategic-form game: each bidder chooses a bid
// level in {0, …, bids−1}, the highest bid wins (ties break toward the
// lowest index, so audits are deterministic), and the winner pays its own
// bid. Costs are maxValue − utility, a per-game constant shift that keeps
// the table non-negative without moving any equilibrium.
//
// Equilibrium structure: in every PNE the winner is indifferent to one
// step down — the standard discrete-grid equilibria where the highest-
// value bidder wins at (roughly) the second-highest value. With values
// (3,1) and bids {0..3}, profile (1,1) is a PNE: bidder 0 wins at price 1.
func FirstPriceAuction(values []float64, bids int) (*TableGame, error) {
	return auction("first-price-auction", values, bids, func(winBid, othersBest float64) float64 {
		return winBid
	})
}

// SecondPriceAuction returns the Vickrey (second-price sealed-bid)
// auction on the same discrete grid: the highest bid wins (ties toward
// the lowest index) but pays the highest *losing* bid. Costs are
// maxValue − utility, as in FirstPriceAuction.
//
// Equilibrium structure: bidding one's true value is weakly dominant, so
// the truthful profile (values rounded onto the grid) is always a PNE and
// the highest-value bidder wins at the second-highest value.
func SecondPriceAuction(values []float64, bids int) (*TableGame, error) {
	return auction("second-price-auction", values, bids, func(winBid, othersBest float64) float64 {
		return othersBest
	})
}

// auction builds a sealed-bid auction table; price maps (winning bid,
// highest other bid) to what the winner pays.
func auction(name string, values []float64, bids int, price func(winBid, othersBest float64) float64) (*TableGame, error) {
	n := len(values)
	if n < 2 {
		return nil, fmt.Errorf("%w: auction needs ≥ 2 bidders", ErrProfileShape)
	}
	if bids < 2 {
		return nil, fmt.Errorf("%w: auction needs ≥ 2 bid levels", ErrActionRange)
	}
	var maxVal float64
	for i, v := range values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: bidder %d value %v (want finite ≥ 0)", ErrProfileShape, i, v)
		}
		if v > maxVal {
			maxVal = v
		}
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = bids
	}
	t, err := NewTableGame(name, shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 {
		winner, winBid := 0, p[0]
		for i := 1; i < n; i++ {
			if p[i] > winBid {
				winner, winBid = i, p[i]
			}
		}
		if player != winner {
			return maxVal // utility 0
		}
		othersBest := 0
		for i, b := range p {
			if i != winner && b > othersBest {
				othersBest = b
			}
		}
		pay := price(float64(winBid), float64(othersBest))
		return maxVal - (values[winner] - pay)
	})
	return t, nil
}

// PrisonersDilemmaParams returns a parameterized prisoner's dilemma in
// cost form: t is the temptation cost (defecting on a cooperator), r the
// reward cost (mutual cooperation), p the punishment cost (mutual
// defection), and s the sucker cost (cooperating with a defector), with
// the dilemma ordering t < r < p < s. PrisonersDilemma() is the instance
// (0, 1, 2, 3).
//
// Equilibrium structure: defection strictly dominates, so the unique PNE
// is (Defect, Defect) at social cost 2p, while mutual cooperation costs
// 2r < 2p — PoA = PoS = p/r when r > 0.
func PrisonersDilemmaParams(t, r, p, s float64) (*Bimatrix, error) {
	for _, v := range []float64{t, r, p, s} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite cost parameter", ErrProfileShape)
		}
	}
	if !(t < r && r < p && p < s) {
		return nil, fmt.Errorf("%w: want dilemma ordering t < r < p < s, got t=%v r=%v p=%v s=%v",
			ErrProfileShape, t, r, p, s)
	}
	costA := [][]float64{
		{r, s},
		{t, p},
	}
	costB := [][]float64{
		{r, t},
		{s, p},
	}
	g, err := NewBimatrix("prisoners-dilemma-params", costA, costB)
	if err != nil {
		return nil, err
	}
	g.RowNames = []string{"Cooperate", "Defect"}
	g.ColNames = []string{"Cooperate", "Defect"}
	return g, nil
}

// CoordinationN returns an n-player, k-action coordination (consensus)
// game: action a has intrinsic quality cost 1+a, and every player also
// pays k+1 per player who chose a different action. The mismatch penalty
// dominates any quality difference, so consensus is always worth joining.
//
// Equilibrium structure: the PNEs are exactly the k consensus profiles.
// Consensus on action a costs every player 1+a, so PoA = k (worst
// consensus: the highest-index action) and PoS = 1 (best consensus:
// action 0 is also the social optimum) — the PoA/PoS gap scenario at any
// size.
func CoordinationN(n, k int) (*TableGame, error) {
	if n < 2 || k < 2 {
		return nil, fmt.Errorf("%w: coordination needs n ≥ 2 players and k ≥ 2 actions", ErrProfileShape)
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = k
	}
	t, err := NewTableGame("coordination-n", shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 {
		matches := 0
		for _, a := range p {
			if a == p[player] {
				matches++
			}
		}
		return float64(n-matches)*float64(k+1) + 1 + float64(p[player])
	})
	return t, nil
}

// MiningGame returns the longest-chain fork-choice race as an n-player
// game: each miner either extends the public head (action 0) or backs a
// competing fork (action 1). The fork wins only with a strict majority of
// hash power (ties resolve to the incumbent chain). Each miner pays unit
// mining cost; winners recoup an equal share of the block reward, so a
// winning-side miner pays 1 − 1/v where v miners share the win, and losers
// pay the full 1. A successful fork additionally charges every miner the
// reorg cost (stale confirmations, replayed state) — the externality that
// separates the two consensus outcomes.
//
// Equilibrium structure: for n ≥ 3 the PNEs are exactly all-extend and
// all-fork — any split leaves a losing miner who strictly gains by joining
// the winning side, while leaving unanimity strands the deviator on a
// losing one-miner chain. All-extend is the social optimum at cost n−1;
// all-fork adds n·reorg, so PoA = 1 + n·reorg/(n−1) and PoS = 1.
func MiningGame(n int, reorg float64) (*TableGame, error) {
	if n < 3 {
		return nil, fmt.Errorf("%w: mining needs n ≥ 3 miners (at n = 2 all-fork is not a PNE)", ErrProfileShape)
	}
	if reorg <= 0 || math.IsNaN(reorg) || math.IsInf(reorg, 0) {
		return nil, fmt.Errorf("%w: reorg cost %v (want finite > 0)", ErrProfileShape, reorg)
	}
	shape := make([]int, n)
	for i := range shape {
		shape[i] = 2
	}
	t, err := NewTableGame("mining", shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 {
		forkers := 0
		for _, a := range p {
			forkers += a
		}
		extenders := n - forkers
		forkWins := forkers > extenders
		cost := 1.0
		if (p[player] == 1) == forkWins { // winning side shares the reward
			winners := extenders
			if forkWins {
				winners = forkers
			}
			cost -= 1 / float64(winners)
		}
		if forkWins {
			cost += reorg
		}
		return cost
	})
	return t, nil
}

// ValidatorCommittee returns committee attestation voting as an n-player
// game: each validator attests to the canonical block (action 0) or a
// competing stale block (action 1). A side is finalized when it reaches
// the ⌊2n/3⌋+1 quorum — the interactive-consistency threshold, so at most
// one side can finalize. Every validator pays unit participation cost;
// attesting stale adds the intrinsic staleness cost; once a side is
// finalized every validator on the other side is slashed. If neither side
// reaches quorum, everyone pays the missed-finality penalty of 2, relieved
// by v/n where v is the size of the validator's own faction — larger
// factions are closer to finalizing, which makes every stalemate
// escapable by a single switch.
//
// Equilibrium structure: for n ≥ 2 and 0 < stale < slash the PNEs are
// exactly the two consensus profiles. Dissent under a finalized side costs
// the slash; in a stalemate one of the two switch directions always
// strictly pays (the faction-size relief terms cannot both be unprofitable
// at once). All-canonical is the social optimum at cost n; all-stale adds
// stale per validator, so PoA = 1 + stale and PoS = 1.
func ValidatorCommittee(n int, slash, stale float64) (*TableGame, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: committee needs n ≥ 2 validators", ErrProfileShape)
	}
	if math.IsNaN(slash) || math.IsInf(slash, 0) || math.IsNaN(stale) || math.IsInf(stale, 0) {
		return nil, fmt.Errorf("%w: non-finite committee parameter", ErrProfileShape)
	}
	if !(0 < stale && stale < slash) {
		return nil, fmt.Errorf("%w: want 0 < stale < slash, got stale=%v slash=%v",
			ErrProfileShape, stale, slash)
	}
	const missedFinality = 2.0
	quorum := 2*n/3 + 1
	shape := make([]int, n)
	for i := range shape {
		shape[i] = 2
	}
	t, err := NewTableGame("validator-committee", shape)
	if err != nil {
		return nil, err
	}
	t.Fill(func(player int, p Profile) float64 {
		staleVotes := 0
		for _, a := range p {
			staleVotes += a
		}
		canonVotes := n - staleVotes
		cost := 1.0
		if p[player] == 1 {
			cost += stale
		}
		switch {
		case canonVotes >= quorum:
			if p[player] == 1 {
				cost += slash
			}
		case staleVotes >= quorum:
			if p[player] == 0 {
				cost += slash
			}
		default:
			faction := canonVotes
			if p[player] == 1 {
				faction = staleVotes
			}
			cost += missedFinality - float64(faction)/float64(n)
		}
		return cost
	})
	return t, nil
}

// CatalogEntry describes one scenario family the repo can generate at any
// size: a registry name, a sizing rule, a builder, and the equilibrium
// structure the family guarantees (what the catalog tests pin down).
type CatalogEntry struct {
	// Name is the registry key (also accepted by the HTTP API's game field).
	Name string
	// Players canonicalizes a requested size to one the family supports
	// (e.g. the minority game rounds to odd n).
	Players func(n int) int
	// Build constructs the game at the canonical size.
	Build func(n int) (Game, error)
	// Equilibrium is a one-line statement of the known Nash structure.
	Equilibrium string
}

// Catalog returns the scenario catalog: every generated family with a
// default parameterization, ordered by name. cmd/loadgen draws its
// scenario mix from here, and the HTTP API resolves these names in
// POST /sessions.
func Catalog() []CatalogEntry {
	atLeast := func(min int) func(int) int {
		return func(n int) int {
			if n < min {
				return min
			}
			return n
		}
	}
	return []CatalogEntry{
		{
			Name:        "braess",
			Players:     atLeast(2),
			Build:       func(n int) (Game, error) { return BraessRouting(n) },
			Equilibrium: "all-Zig is a PNE; PoA = 4/3 at even n",
		},
		{
			Name:    "congestion",
			Players: atLeast(2),
			Build: func(n int) (Game, error) {
				// Two fast facilities and one slow one per four players keeps
				// the load-balanced equilibria non-trivial at every size.
				m := 2 + n/4
				rates := make([]float64, m)
				for j := range rates {
					rates[j] = 1 + float64(j%2)
				}
				return CongestionGame(n, rates)
			},
			Equilibrium: "PNEs are the rate-weighted load-balanced assignments",
		},
		{
			// "-n" keeps the registry key clear of the HTTP API's legacy
			// "coordination" (the fixed 2×2 CoordinationGame).
			Name:        "coordination-n",
			Players:     atLeast(2),
			Build:       func(n int) (Game, error) { return CoordinationN(n, 3) },
			Equilibrium: "PNEs are exactly the k consensus profiles; PoA = k, PoS = 1",
		},
		{
			Name:    "firstprice",
			Players: atLeast(2),
			Build: func(n int) (Game, error) {
				values := make([]float64, n)
				for i := range values {
					values[i] = float64(n - i) // distinct values, bidder 0 highest
				}
				return FirstPriceAuction(values, auctionGrid(n))
			},
			Equilibrium: "winner bids ~second-highest value on the discrete grid",
		},
		{
			Name:        "mining",
			Players:     atLeast(3),
			Build:       func(n int) (Game, error) { return MiningGame(n, 0.5) },
			Equilibrium: "PNEs are exactly all-extend and all-fork; PoA = 1 + n·reorg/(n−1), PoS = 1",
		},
		{
			Name:        "minority",
			Players:     func(n int) int { n = atLeast(3)(n); return n | 1 },
			Build:       func(n int) (Game, error) { return MinorityGame(n) },
			Equilibrium: "PNEs are the maximal-minority splits ((n−1)/2 vs (n+1)/2); PoA = 1",
		},
		{
			Name:        "pd",
			Players:     func(int) int { return 2 },
			Build:       func(int) (Game, error) { return PrisonersDilemmaParams(0, 1, 2, 3) },
			Equilibrium: "unique PNE (Defect, Defect); PoA = PoS = p/r",
		},
		{
			Name:        "publicgoods-punish",
			Players:     atLeast(2),
			Build:       func(n int) (Game, error) { return PublicGoodsPunish(n, 2, 1) },
			Equilibrium: "fine > 1 − benefit/n ⇒ unique PNE all-contribute",
		},
		{
			Name:    "secondprice",
			Players: atLeast(2),
			Build: func(n int) (Game, error) {
				values := make([]float64, n)
				for i := range values {
					values[i] = float64(n - i)
				}
				return SecondPriceAuction(values, auctionGrid(n))
			},
			Equilibrium: "truthful bidding is weakly dominant; truthful profile is a PNE",
		},
		{
			Name:        "validator-committee",
			Players:     atLeast(2),
			Build:       func(n int) (Game, error) { return ValidatorCommittee(n, 4, 0.5) },
			Equilibrium: "PNEs are exactly the two consensus attestations; PoA = 1 + stale, PoS = 1",
		},
	}
}

// auctionGrid sizes the bid grid for the catalog auctions: one level per
// value at small n, capped at 5 so the dense table (bids^n entries per
// player) stays load-harness-sized at larger player counts.
func auctionGrid(n int) int {
	if n+1 > 5 {
		return 5
	}
	return n + 1
}

// ByName resolves a catalog entry, reporting ok=false for unknown names.
func ByName(name string) (CatalogEntry, bool) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogEntry{}, false
}
