package game

import (
	"errors"
	"math"
)

// errSingular is returned by solveLinear when the system has no unique
// solution (within pivot tolerance).
var errSingular = errors.New("game: singular linear system")

// solveLinear solves A·x = b by Gaussian elimination with partial pivoting.
// A is modified in place; len(A) == len(b) == n, len(A[i]) == n. The solver
// is only used on the tiny indifference systems of support enumeration, so
// an O(n³) dense method is appropriate.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errSingular
	}
	const pivotTol = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < pivotTol {
			return nil, errSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
