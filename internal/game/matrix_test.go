package game

import (
	"errors"
	"testing"
)

func TestNewBimatrixValidation(t *testing.T) {
	cases := []struct {
		name         string
		costA, costB [][]float64
	}{
		{"empty", nil, nil},
		{"rowMismatch", [][]float64{{1}}, [][]float64{{1}, {2}}},
		{"zeroCols", [][]float64{{}}, [][]float64{{}}},
		{"ragged", [][]float64{{1, 2}, {3}}, [][]float64{{1, 2}, {3, 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewBimatrix("bad", tc.costA, tc.costB); !errors.Is(err, ErrProfileShape) {
				t.Fatalf("err = %v, want ErrProfileShape", err)
			}
		})
	}
}

func TestFromPayoffsNegates(t *testing.T) {
	g, err := FromPayoffs("t", [][]float64{{5}}, [][]float64{{-3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Cost(0, Profile{0, 0}); got != -5 {
		t.Fatalf("cost A = %v, want -5", got)
	}
	if got := g.Payoff(1, Profile{0, 0}); got != -3 {
		t.Fatalf("payoff B = %v, want -3", got)
	}
}

func TestFig1MatrixVerbatim(t *testing.T) {
	// The paper's Fig. 1 (payoffs):
	//   A\B      Heads    Tails    Manipulate
	//   Heads   (+1,−1)  (−1,+1)   (+1,−1)
	//   Tails   (−1,+1)  (+1,−1)   (−9,+9)
	g := MatchingPenniesManipulated()
	wantA := [][]float64{{+1, -1, +1}, {-1, +1, -9}}
	wantB := [][]float64{{-1, +1, -1}, {+1, -1, +9}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			p := Profile{i, j}
			if got := g.Payoff(0, p); got != wantA[i][j] {
				t.Errorf("payoff A at (%d,%d) = %v, want %v", i, j, got, wantA[i][j])
			}
			if got := g.Payoff(1, p); got != wantB[i][j] {
				t.Errorf("payoff B at (%d,%d) = %v, want %v", i, j, got, wantB[i][j])
			}
		}
	}
	if g.NumActions(0) != 2 || g.NumActions(1) != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", g.NumActions(0), g.NumActions(1))
	}
}

func TestMatchingPenniesZeroSum(t *testing.T) {
	g := MatchingPennies()
	ForEachProfile(g, func(p Profile) bool {
		if s := g.Payoff(0, p) + g.Payoff(1, p); s != 0 {
			t.Errorf("profile %v payoffs sum to %v, want 0", p, s)
		}
		return true
	})
}

func TestManipulatedGameZeroSum(t *testing.T) {
	// Fig. 1 stays zero-sum: whatever A loses, B gains (A pays B).
	g := MatchingPenniesManipulated()
	ForEachProfile(g, func(p Profile) bool {
		if s := g.Payoff(0, p) + g.Payoff(1, p); s != 0 {
			t.Errorf("profile %v payoffs sum to %v, want 0", p, s)
		}
		return true
	})
}

func TestActionNames(t *testing.T) {
	g := MatchingPenniesManipulated()
	if got := g.ActionName(1, ManipulateAction); got != "Manipulate" {
		t.Fatalf("ActionName = %q, want Manipulate", got)
	}
	if got := g.ActionName(0, 5); got != "a5" {
		t.Fatalf("fallback ActionName = %q, want a5", got)
	}
	if g.Name() == "" {
		t.Fatal("empty game name")
	}
}
