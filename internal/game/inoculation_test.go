package game

import (
	"errors"
	"math"
	"testing"
)

func TestNewInoculationValidation(t *testing.T) {
	if _, err := NewInoculation(0, 3, 1, 1); !errors.Is(err, ErrInoculationConfig) {
		t.Fatalf("w=0: err = %v", err)
	}
	if _, err := NewInoculation(3, 3, 0, 1); !errors.Is(err, ErrInoculationConfig) {
		t.Fatalf("c=0: err = %v", err)
	}
	g, err := NewInoculation(4, 5, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.C() != 1 || g.L() != 10 {
		t.Fatal("basic accessors wrong")
	}
}

func TestComponentSizesGrid(t *testing.T) {
	// 3x3 grid; secure the middle column → two insecure components of 3.
	g, _ := NewInoculation(3, 3, 1, 10)
	secure := make([]bool, 9)
	secure[1], secure[4], secure[7] = true, true, true
	comp, sizes := g.componentSizes(func(i int) bool { return !secure[i] })
	if len(sizes) != 2 {
		t.Fatalf("components = %d, want 2 (sizes %v)", len(sizes), sizes)
	}
	for _, s := range sizes {
		if s != 3 {
			t.Fatalf("component sizes = %v, want [3 3]", sizes)
		}
	}
	if comp[0] == comp[2] {
		t.Fatal("left and right columns merged across the secure wall")
	}
}

func TestNodeCost(t *testing.T) {
	g, _ := NewInoculation(3, 1, 2, 9) // 1x3 line, C=2, L=9
	secure := []bool{false, true, false}
	// Node 0 insecure in component of size 1: cost = 9·1/3 = 3.
	if c := g.NodeCost(0, secure); math.Abs(c-3) > 1e-12 {
		t.Fatalf("insecure cost = %v, want 3", c)
	}
	if c := g.NodeCost(1, secure); c != 2 {
		t.Fatalf("inoculated cost = %v, want C=2", c)
	}
}

func TestSocialCostSubsets(t *testing.T) {
	g, _ := NewInoculation(2, 2, 1, 4)
	secure := []bool{true, false, false, true}
	all := g.SocialCost(secure, nil)
	parts := g.SocialCost(secure, []int{0, 1}) + g.SocialCost(secure, []int{2, 3})
	if math.Abs(all-parts) > 1e-12 {
		t.Fatalf("social cost not additive: %v vs %v", all, parts)
	}
}

func TestEquilibriumIsNash(t *testing.T) {
	// Cross-check the dynamics against the strategic-form PNE test on a
	// small grid.
	g, _ := NewInoculation(3, 3, 1, 6)
	secure, converged := g.Equilibrium(1, 100)
	if !converged {
		t.Fatal("best-response dynamics did not converge")
	}
	form := &InoculationForm{G: g}
	p := make(Profile, g.N())
	for i, s := range secure {
		if s {
			p[i] = 1
		}
	}
	if !IsPureNash(form, p) {
		t.Fatalf("equilibrium state %v is not a PNE of the strategic form", p)
	}
}

func TestEquilibriumNoInoculationWhenCheapRisk(t *testing.T) {
	// If L·n/n ≤ C (even a full component is bearable), nobody inoculates.
	g, _ := NewInoculation(3, 3, 10, 5) // worst case loss 5 < C=10
	secure, converged := g.Equilibrium(2, 100)
	if !converged {
		t.Fatal("did not converge")
	}
	for i, s := range secure {
		if s {
			t.Fatalf("node %d inoculated although risk < cost everywhere", i)
		}
	}
}

func TestEquilibriumFullInoculationWhenRiskHuge(t *testing.T) {
	// If even a singleton component costs more than C (L/n > C), every
	// node wants inoculation.
	g, _ := NewInoculation(2, 2, 0.1, 100) // L/n = 25 > C
	secure, converged := g.Equilibrium(3, 100)
	if !converged {
		t.Fatal("did not converge")
	}
	for i, s := range secure {
		if !s {
			t.Fatalf("node %d stayed insecure although singleton risk > C", i)
		}
	}
}

func TestByzantineRaiseHonestCost(t *testing.T) {
	// The PoM effect ([21]): Byzantine liars make the honest equilibrium
	// more expensive in actuality.
	mk := func(byz []int) float64 {
		g, _ := NewInoculation(6, 6, 1, 12)
		g.SetByzantine(byz...)
		secure, conv := g.Equilibrium(5, 200)
		if !conv {
			t.Fatal("no convergence")
		}
		return g.SocialCost(secure, g.HonestNodes())
	}
	honestOnly := mk(nil)
	// Byzantine placed along a row to bridge components.
	withByz := mk([]int{14, 15, 16, 20, 21, 22})
	if withByz <= honestOnly {
		t.Fatalf("Byzantine presence did not raise honest social cost: %v vs %v",
			withByz, honestOnly)
	}
}

func TestAuditDetectsLiars(t *testing.T) {
	g, _ := NewInoculation(4, 4, 1, 10)
	g.SetByzantine(5, 10)
	secure, _ := g.Equilibrium(7, 200)
	liars := g.AuditByzantine(secure)
	if len(liars) != 2 {
		t.Fatalf("audit found %v, want the 2 planted Byzantine", liars)
	}
	// Disconnect them; audit again reports nothing.
	for _, id := range liars {
		g.Disconnect(id)
	}
	if left := g.AuditByzantine(secure); len(left) != 0 {
		t.Fatalf("after disconnection audit still reports %v", left)
	}
	if !g.Removed(5) || !g.Removed(10) {
		t.Fatal("Removed not reflecting disconnection")
	}
}

func TestDisconnectionLimitsComponents(t *testing.T) {
	// A line of 5 insecure nodes forms one component of 5. Disconnecting
	// the middle node splits it.
	g, _ := NewInoculation(5, 1, 1, 10)
	secure := make([]bool, 5)
	_, sizes := g.componentSizes(func(i int) bool { return !secure[i] })
	if len(sizes) != 1 || sizes[0] != 5 {
		t.Fatalf("before: sizes = %v, want [5]", sizes)
	}
	g.Disconnect(2)
	_, sizes = g.componentSizes(func(i int) bool { return !secure[i] })
	if len(sizes) != 2 {
		t.Fatalf("after disconnect: sizes = %v, want two components", sizes)
	}
	if g.activeN() != 4 {
		t.Fatalf("activeN = %d, want 4", g.activeN())
	}
}

func TestStripeOptimumBeatsExtremes(t *testing.T) {
	g, _ := NewInoculation(8, 8, 1, 20)
	_, optCost := g.StripeOptimum()
	empty := make([]bool, g.N())
	full := make([]bool, g.N())
	for i := range full {
		full[i] = true
	}
	if optCost > g.SocialCost(empty, nil)+1e-9 {
		t.Fatalf("stripe optimum %v worse than doing nothing %v", optCost, g.SocialCost(empty, nil))
	}
	if optCost > g.SocialCost(full, nil)+1e-9 {
		t.Fatalf("stripe optimum %v worse than full inoculation %v", optCost, g.SocialCost(full, nil))
	}
}

func TestRemovedNodesPayNothing(t *testing.T) {
	g, _ := NewInoculation(2, 2, 1, 8)
	g.Disconnect(3)
	secure := make([]bool, 4)
	if c := g.NodeCost(3, secure); c != 0 {
		t.Fatalf("removed node cost = %v, want 0", c)
	}
}
