package game

import (
	"math"
	"testing"

	// metrics would be an import cycle; PoA/PoS are recomputed inline here.
	"sort"
)

// poaPos brute-forces PoA and PoS over the full profile space.
func poaPos(t *testing.T, g Game) (poa, pos float64) {
	t.Helper()
	opt := math.Inf(1)
	ForEachProfile(g, func(p Profile) bool {
		if c := SocialCost(g, p, nil); c < opt {
			opt = c
		}
		return true
	})
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatalf("PureNashEquilibria: %v", err)
	}
	if len(pnes) == 0 {
		t.Fatalf("game %v has no PNE", g)
	}
	worst, best := math.Inf(-1), math.Inf(1)
	for _, p := range pnes {
		c := SocialCost(g, p, nil)
		if c > worst {
			worst = c
		}
		if c < best {
			best = c
		}
	}
	if opt <= 0 {
		t.Fatalf("non-positive optimum %v", opt)
	}
	return worst / opt, best / opt
}

func profileSet(ps []Profile) map[string]bool {
	set := make(map[string]bool, len(ps))
	for _, p := range ps {
		key := ""
		for _, a := range p {
			key += string(rune('0' + a))
		}
		set[key] = true
	}
	return set
}

func TestCongestionGameEqualRatesBalanced(t *testing.T) {
	g, err := CongestionGame(2, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With equal rates the PNEs are exactly the two split assignments.
	want := profileSet([]Profile{{0, 1}, {1, 0}})
	if got := profileSet(pnes); len(got) != len(want) {
		t.Fatalf("PNEs = %v, want the two splits", pnes)
	} else {
		for k := range want {
			if !got[k] {
				t.Fatalf("PNEs = %v, want the two splits", pnes)
			}
		}
	}
	poa, pos := poaPos(t, g)
	if math.Abs(poa-1) > Eps || math.Abs(pos-1) > Eps {
		t.Fatalf("equal-rate congestion PoA=%v PoS=%v, want 1, 1", poa, pos)
	}
}

func TestCongestionGameUnequalRatesPoA(t *testing.T) {
	g, err := CongestionGame(2, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) is a tie-supported PNE at social cost 4; OPT splits at cost 3.
	if !IsPureNash(g, Profile{0, 0}) {
		t.Fatal("(0,0) should be a PNE of congestion rates {1,2}")
	}
	poa, pos := poaPos(t, g)
	if math.Abs(poa-4.0/3.0) > Eps {
		t.Fatalf("PoA = %v, want 4/3", poa)
	}
	if math.Abs(pos-1) > Eps {
		t.Fatalf("PoS = %v, want 1", pos)
	}
	// Balance condition characterizes every PNE.
	pnes, _ := PureNashEquilibria(g, 0)
	for _, p := range pnes {
		loads := []float64{0, 0}
		for _, a := range p {
			loads[a]++
		}
		rates := []float64{1, 2}
		for j := 0; j < 2; j++ {
			if loads[j] == 0 {
				continue
			}
			for k := 0; k < 2; k++ {
				if j == k {
					continue
				}
				if rates[j]*loads[j] > rates[k]*(loads[k]+1)+Eps {
					t.Fatalf("PNE %v violates the balance condition", p)
				}
			}
		}
	}
}

func TestBraessRoutingPoA(t *testing.T) {
	for _, n := range []int{2, 4} {
		g, err := BraessRouting(n)
		if err != nil {
			t.Fatal(err)
		}
		allZig := make(Profile, n)
		for i := range allZig {
			allZig[i] = 2
		}
		if !IsPureNash(g, allZig) {
			t.Fatalf("n=%d: all-Zig should be a PNE", n)
		}
		// All-Zig costs 2n per player; the Up/Down split costs 3n/2 each.
		if c := g.Cost(0, allZig); math.Abs(c-float64(2*n)) > Eps {
			t.Fatalf("n=%d: all-Zig cost %v, want %d", n, c, 2*n)
		}
		poa, pos := poaPos(t, g)
		if math.Abs(poa-4.0/3.0) > Eps {
			t.Fatalf("n=%d: PoA = %v, want 4/3", n, poa)
		}
		// PoS = 1 exactly at n=2 (the Up/Down split is a PNE there); the
		// shortcut erodes the split at larger n (13/12 at n=4) but the best
		// equilibrium always beats the worst.
		want := 1.0
		if n == 4 {
			want = 13.0 / 12.0
		}
		if math.Abs(pos-want) > Eps {
			t.Fatalf("n=%d: PoS = %v, want %v", n, pos, want)
		}
	}
}

func TestPublicGoodsPunishFlipsEquilibrium(t *testing.T) {
	// fine > 1 − benefit/n: contributing becomes strictly dominant.
	g, err := PublicGoodsPunish(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != 1 || !pnes[0].Equal(Profile{1, 1, 1, 1}) {
		t.Fatalf("punished PNEs = %v, want unique all-contribute", pnes)
	}

	// fine < 1 − benefit/n: free riding still dominates.
	g, err = PublicGoodsPunish(4, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err = PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != 1 || !pnes[0].Equal(Profile{0, 0, 0, 0}) {
		t.Fatalf("weakly punished PNEs = %v, want unique all-defect", pnes)
	}
}

func TestMinorityGameEquilibria(t *testing.T) {
	g, err := MinorityGame(3)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The PNEs are exactly the six 1-vs-2 splits (all-same profiles are
	// refuted by the deviation to sole minority).
	if len(pnes) != 6 {
		t.Fatalf("minority(3) has %d PNEs (%v), want 6", len(pnes), pnes)
	}
	for _, p := range pnes {
		ones := 0
		for _, a := range p {
			ones += a
		}
		if ones == 0 || ones == 3 {
			t.Fatalf("all-same profile %v must not be a PNE", p)
		}
	}
	poa, pos := poaPos(t, g)
	if math.Abs(poa-1) > Eps || math.Abs(pos-1) > Eps {
		t.Fatalf("minority PoA=%v PoS=%v, want 1, 1", poa, pos)
	}
}

func TestFirstPriceAuctionEquilibrium(t *testing.T) {
	g, err := FirstPriceAuction([]float64{3, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Bidder 0 (value 3) wins at the second-highest value: (1,1) is a PNE
	// (ties break toward the lowest index).
	if !IsPureNash(g, Profile{1, 1}) {
		t.Fatal("(1,1) should be a PNE of the (3,1) first-price auction")
	}
	// Overbidding oneself into negative utility is never an equilibrium for
	// the winner when dropping out is available.
	if IsPureNash(g, Profile{0, 3}) {
		t.Fatal("(0,3): bidder 1 winning at 3 with value 1 must not be a PNE")
	}
	// In every PNE the high-value bidder wins.
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) == 0 {
		t.Fatal("first-price auction has no PNE on the grid")
	}
	for _, p := range pnes {
		if p[1] > p[0] {
			t.Fatalf("PNE %v lets the low-value bidder win", p)
		}
	}
}

func TestSecondPriceAuctionTruthfulIsNash(t *testing.T) {
	g, err := SecondPriceAuction([]float64{3, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	truthful := Profile{3, 1}
	if !IsPureNash(g, truthful) {
		t.Fatal("truthful bidding should be a PNE of the second-price auction")
	}
	// Winner pays the second-highest bid: utility 3−1=2, cost shift−2=1.
	if c := g.Cost(0, truthful); math.Abs(c-1) > Eps {
		t.Fatalf("winner cost %v, want 1 (= maxValue 3 − utility 2)", c)
	}
	if c := g.Cost(1, truthful); math.Abs(c-3) > Eps {
		t.Fatalf("loser cost %v, want 3 (= maxValue, utility 0)", c)
	}
}

func TestPrisonersDilemmaParams(t *testing.T) {
	g, err := PrisonersDilemmaParams(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != 1 || !pnes[0].Equal(Profile{1, 1}) {
		t.Fatalf("PNEs = %v, want unique (Defect, Defect)", pnes)
	}
	// The canonical parameters replay the fixed PrisonersDilemma table.
	fixed := PrisonersDilemma()
	ForEachProfile(g, func(p Profile) bool {
		for i := 0; i < 2; i++ {
			if math.Abs(g.Cost(i, p)-fixed.Cost(i, p)) > Eps {
				t.Fatalf("cost mismatch vs PrisonersDilemma at %v", p)
			}
		}
		return true
	})
	poa, pos := poaPos(t, g)
	if math.Abs(poa-2) > Eps || math.Abs(pos-2) > Eps {
		t.Fatalf("PoA=%v PoS=%v, want p/r = 2", poa, pos)
	}

	if _, err := PrisonersDilemmaParams(1, 0, 2, 3); err == nil {
		t.Fatal("broken ordering must be rejected")
	}
}

func TestCoordinationNEquilibria(t *testing.T) {
	const n, k = 3, 3
	g, err := CoordinationN(n, k)
	if err != nil {
		t.Fatal(err)
	}
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != k {
		t.Fatalf("coordination(%d,%d) has %d PNEs (%v), want the %d consensus profiles",
			n, k, len(pnes), pnes, k)
	}
	for _, p := range pnes {
		for _, a := range p {
			if a != p[0] {
				t.Fatalf("non-consensus PNE %v", p)
			}
		}
	}
	poa, pos := poaPos(t, g)
	if math.Abs(poa-float64(k)) > Eps {
		t.Fatalf("PoA = %v, want k = %d", poa, k)
	}
	if math.Abs(pos-1) > Eps {
		t.Fatalf("PoS = %v, want 1", pos)
	}
}

func TestMiningGameEquilibria(t *testing.T) {
	const reorg = 0.5
	for _, n := range []int{3, 4, 5} {
		g, err := MiningGame(n, reorg)
		if err != nil {
			t.Fatal(err)
		}
		pnes, err := PureNashEquilibria(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly the two unanimity profiles: every split leaves a losing
		// miner who profits by joining the winning chain.
		if len(pnes) != 2 {
			t.Fatalf("n=%d: mining has %d PNEs (%v), want all-extend and all-fork", n, len(pnes), pnes)
		}
		allExtend := make(Profile, n)
		allFork := make(Profile, n)
		for i := range allFork {
			allFork[i] = 1
		}
		if !IsPureNash(g, allExtend) || !IsPureNash(g, allFork) {
			t.Fatalf("n=%d: unanimity profiles must both be PNEs", n)
		}
		for _, p := range pnes {
			for _, a := range p {
				if a != p[0] {
					t.Fatalf("n=%d: non-unanimous PNE %v", n, p)
				}
			}
		}
		poa, pos := poaPos(t, g)
		wantPoA := 1 + float64(n)*reorg/float64(n-1)
		if math.Abs(poa-wantPoA) > Eps {
			t.Fatalf("n=%d: mining PoA = %v, want 1 + n·reorg/(n−1) = %v", n, poa, wantPoA)
		}
		if math.Abs(pos-1) > Eps {
			t.Fatalf("n=%d: mining PoS = %v, want 1", n, pos)
		}
	}
	if _, err := MiningGame(2, reorg); err == nil {
		t.Fatal("MiningGame(2) must be rejected: all-fork is not a PNE at n=2")
	}
	if _, err := MiningGame(4, 0); err == nil {
		t.Fatal("zero reorg cost must be rejected")
	}
}

func TestValidatorCommitteeEquilibria(t *testing.T) {
	const slash, stale = 4.0, 0.5
	for _, n := range []int{2, 3, 4, 5, 7} {
		g, err := ValidatorCommittee(n, slash, stale)
		if err != nil {
			t.Fatal(err)
		}
		pnes, err := PureNashEquilibria(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly the two consensus attestations: finalized dissent is
		// slashed, and every stalemate has a strictly profitable switch.
		if len(pnes) != 2 {
			t.Fatalf("n=%d: committee has %d PNEs (%v), want the two consensus profiles",
				n, len(pnes), pnes)
		}
		for _, p := range pnes {
			for _, a := range p {
				if a != p[0] {
					t.Fatalf("n=%d: non-consensus PNE %v", n, p)
				}
			}
		}
		poa, pos := poaPos(t, g)
		if math.Abs(poa-(1+stale)) > Eps {
			t.Fatalf("n=%d: committee PoA = %v, want 1 + stale = %v", n, poa, 1+stale)
		}
		if math.Abs(pos-1) > Eps {
			t.Fatalf("n=%d: committee PoS = %v, want 1", n, pos)
		}
	}
	// Slashing must strictly dominate staleness for consensus-on-stale to
	// hold; degenerate parameterizations are rejected.
	if _, err := ValidatorCommittee(4, 0.5, 0.5); err == nil {
		t.Fatal("stale ≥ slash must be rejected")
	}
	if _, err := ValidatorCommittee(4, 4, 0); err == nil {
		t.Fatal("zero staleness cost must be rejected")
	}
	if _, err := ValidatorCommittee(1, 4, 0.5); err == nil {
		t.Fatal("single-validator committee must be rejected")
	}
}

func TestCatalogBuildsEverySizeRequested(t *testing.T) {
	entries := Catalog()
	if len(entries) < 5 {
		t.Fatalf("catalog has %d entries, want ≥ 5 scenario families", len(entries))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("catalog not sorted by name: %v", names)
	}
	for _, e := range entries {
		for _, req := range []int{1, 2, 3, 5, 8} {
			n := e.Players(req)
			g, err := e.Build(n)
			if err != nil {
				t.Fatalf("%s: Build(%d): %v", e.Name, n, err)
			}
			if g.NumPlayers() != n {
				t.Fatalf("%s: Build(%d) produced %d players", e.Name, n, g.NumPlayers())
			}
			// Every catalog game must have at least one PNE at small sizes —
			// the invariant loadgen's honest agents converge to and audits
			// check against.
			if space, err := ProfileSpaceSize(g, 1<<16); err == nil && space <= 1<<16 {
				pnes, err := PureNashEquilibria(g, 1<<16)
				if err != nil {
					t.Fatalf("%s n=%d: %v", e.Name, n, err)
				}
				if len(pnes) == 0 {
					t.Fatalf("%s n=%d: no PNE", e.Name, n)
				}
			}
		}
	}
	if _, ok := ByName("congestion"); !ok {
		t.Fatal("ByName(congestion) not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should not resolve")
	}
	if ent, ok := ByName("minority"); !ok || ent.Players(4)%2 == 0 {
		t.Fatal("minority sizing must canonicalize to odd n")
	}
}
