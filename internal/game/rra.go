package game

import (
	"errors"
	"fmt"
	"sort"

	"gameauthority/internal/prng"
)

// This file implements the repeated resource allocation (RRA) game of §6:
// n agents repeatedly place a single unit demand on one of b resources
// ("bins"); the load of a resource determines service time, every agent
// wants the least-loaded resource, loads are public after every play, the
// number of plays is unknown, so selfish agents play a fresh (repeated) Nash
// equilibrium in every round. Theorem 5 shows the supervised game has
// multi-round anarchy cost R(k) ≤ 1 + 2b/k, hence R = 1 asymptotically.

// ErrRRAConfig reports an invalid RRA configuration.
var ErrRRAConfig = errors.New("game: invalid RRA configuration")

// RRA holds the evolving state of the repeated resource allocation game.
type RRA struct {
	n, b   int
	loads  []int64 // ℓ_a(k): cumulative demand placed on resource a
	rounds int     // k: number of completed plays
}

// NewRRA creates an RRA instance with n agents and b resources and the
// paper's initial zero demand on all resources.
func NewRRA(n, b int) (*RRA, error) {
	if n < 1 || b < 2 {
		return nil, fmt.Errorf("%w: n=%d b=%d (need n≥1, b≥2)", ErrRRAConfig, n, b)
	}
	return &RRA{n: n, b: b, loads: make([]int64, b)}, nil
}

// N returns the number of agents, B the number of resources, Rounds the
// number of completed plays k.
func (r *RRA) N() int      { return r.n }
func (r *RRA) B() int      { return r.b }
func (r *RRA) Rounds() int { return r.rounds }

// Loads returns a copy of the current cumulative loads ℓ_a(k).
func (r *RRA) Loads() []int64 {
	return append([]int64(nil), r.loads...)
}

// Load returns the current cumulative load of one resource without
// copying the whole vector — the play hot path's per-choice cost read.
func (r *RRA) Load(a int) int64 { return r.loads[a] }

// MaxLoad returns M(k) = max_a ℓ_a(k).
func (r *RRA) MaxLoad() int64 {
	var m int64
	for _, l := range r.loads {
		if l > m {
			m = l
		}
	}
	return m
}

// MinLoad returns m(k) = min_a ℓ_a(k).
func (r *RRA) MinLoad() int64 {
	m := r.loads[0]
	for _, l := range r.loads[1:] {
		if l < m {
			m = l
		}
	}
	return m
}

// Spread returns Δ(k) = M(k) − m(k). Lemma 6 bounds the equilibrium spread
// against any single resource by 2n−1; the max-min spread is what we track
// empirically.
func (r *RRA) Spread() int64 { return r.MaxLoad() - r.MinLoad() }

// TotalLoad returns Σ_a ℓ_a(k); the invariant TotalLoad == n·k holds when
// every agent places exactly one demand per play.
func (r *RRA) TotalLoad() int64 {
	var t int64
	for _, l := range r.loads {
		t += l
	}
	return t
}

// OptMaxLoad returns OPT(k), the optimal (centralistic) maximum load after
// k rounds: ⌈nk/b⌉ — a perfectly balanced assignment.
func OptMaxLoad(n, b, k int) int64 {
	if k <= 0 {
		return 0
	}
	total := int64(n) * int64(k)
	return (total + int64(b) - 1) / int64(b)
}

// EquilibriumStrategy returns the symmetric mixed equilibrium over resources
// for the current loads: the water-filling distribution that equalizes the
// expected completion cost λ_a = ℓ_a + 1 + (n−1)·x_a across the support
// (derivation in §6's proof of Theorem 5). All agents share this strategy
// since the game is symmetric and loads are common knowledge (complete
// information).
func (r *RRA) EquilibriumStrategy() Mixed {
	return rraEquilibrium(r.loads, r.n)
}

// rraEquilibrium computes the water-filling equilibrium for the given loads.
func rraEquilibrium(loads []int64, n int) Mixed {
	b := len(loads)
	if n == 1 {
		// Single agent: pure best response to the least-loaded bin.
		best := 0
		for a := 1; a < b; a++ {
			if loads[a] < loads[best] {
				best = a
			}
		}
		return Degenerate(b, best)
	}
	// Sort resource indices by load.
	idx := make([]int, b)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return loads[idx[i]] < loads[idx[j]] })

	// Find the water level t: support S = {a : ℓ_a < t−1}, with
	// x_a = (t − 1 − ℓ_a)/(n−1) and Σ_{a∈S} x_a = 1
	// ⇒ t = 1 + (n−1 + Σ_{a∈S} ℓ_a)/|S|.
	// Grow the support in load order while the water level covers the
	// next resource.
	var sumLoads int64
	support := 0
	t := 0.0
	for s := 1; s <= b; s++ {
		sumLoads += loads[idx[s-1]]
		cand := 1 + (float64(n-1)+float64(sumLoads))/float64(s)
		// Valid iff every member has positive mass: ℓ_a < cand−1 for
		// a in support, i.e. cand−1 > largest member load — and the
		// next (excluded) resource must not want in: cand−1 ≤ ℓ_next.
		if float64(loads[idx[s-1]]) >= cand-1+Eps {
			break // the s-th resource would get non-positive mass
		}
		t = cand
		support = s
	}
	m := make(Mixed, b)
	for s := 0; s < support; s++ {
		a := idx[s]
		m[a] = (t - 1 - float64(loads[a])) / float64(n-1)
	}
	normalize(m) // absorb FP residue so Σ=1 exactly enough for sampling
	return m
}

// Step plays one round: agents[i] must return the chosen resource for agent
// i given the public loads. Returns the per-agent choices. The caller is
// responsible for validating choices (the judicial service's job); Step
// itself accepts any in-range choice and clamps nothing.
func (r *RRA) Step(choose func(agent int, loads []int64) int) (Profile, error) {
	choices := make(Profile, r.n)
	snapshot := r.Loads()
	for i := 0; i < r.n; i++ {
		c := choose(i, snapshot)
		if c < 0 || c >= r.b {
			return nil, fmt.Errorf("%w: agent %d chose resource %d (b=%d)", ErrActionRange, i, c, r.b)
		}
		choices[i] = c
	}
	for _, c := range choices {
		r.loads[c]++
	}
	r.rounds++
	return choices, nil
}

// EquilibriumChooser returns a choose function where every agent samples the
// symmetric equilibrium strategy with its own derived stream — the honest
// behaviour the game authority enforces. Streams are derived from seed,
// agent id and round so audits can replay them.
func (r *RRA) EquilibriumChooser(seed uint64) func(agent int, loads []int64) int {
	return func(agent int, loads []int64) int {
		mixed := rraEquilibrium(loads, r.n)
		sampler, err := mixed.Sampler()
		if err != nil {
			// The equilibrium always has positive support; reaching
			// here means memory corruption, so fail loudly.
			panic(fmt.Sprintf("rra: equilibrium sampler: %v", err))
		}
		src := prng.Derive(seed, uint64(agent), uint64(r.rounds))
		return sampler.Sample(src)
	}
}

// GreedyChooser returns a choose function where agents pick the least-loaded
// resource (ties toward the lowest index) — the natural pure-strategy
// variant; used as a comparison baseline.
func (r *RRA) GreedyChooser() func(agent int, loads []int64) int {
	return func(agent int, loads []int64) int {
		best := 0
		for a := 1; a < len(loads); a++ {
			if loads[a] < loads[best] {
				best = a
			}
		}
		return best
	}
}

// HogChooser returns a choose function modelling a malicious agent that
// always dumps its demand on the currently most-loaded resource, maximizing
// the makespan (social damage) instead of its own service time.
func HogChooser() func(agent int, loads []int64) int {
	return func(agent int, loads []int64) int {
		worst := 0
		for a := 1; a < len(loads); a++ {
			if loads[a] > loads[worst] {
				worst = a
			}
		}
		return worst
	}
}

// FixedChooser returns a choose function that always picks resource a —
// another simple adversarial behaviour (herd onto one bin).
func FixedChooser(a int) func(agent int, loads []int64) int {
	return func(int, []int64) int { return a }
}

// RoundGame is the one-shot strategic-form view of the next RRA play given
// the current loads: cost_i(π) = ℓ_{π_i} + |{j : π_j = π_i}| (the backlog
// plus this round's contention). The judicial service uses it for
// legitimacy and the metrics package for equilibrium analysis.
type RoundGame struct {
	NAgents int
	Loads   []int64
}

var _ Game = (*RoundGame)(nil)

// RoundView returns the strategic-form game of the next play.
func (r *RRA) RoundView() *RoundGame {
	return &RoundGame{NAgents: r.n, Loads: r.Loads()}
}

// NumPlayers implements Game.
func (g *RoundGame) NumPlayers() int { return g.NAgents }

// NumActions implements Game.
func (g *RoundGame) NumActions(int) int { return len(g.Loads) }

// Cost implements Game.
func (g *RoundGame) Cost(player int, p Profile) float64 {
	a := p[player]
	contention := 0
	for _, c := range p {
		if c == a {
			contention++
		}
	}
	return float64(g.Loads[a]) + float64(contention)
}
