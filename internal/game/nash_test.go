package game

import (
	"math"
	"testing"
)

func TestSolveLinear(t *testing.T) {
	// 2x + y = 5; x − y = 1 ⇒ x=2, y=1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution = %v, want [2 1]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {2, 2}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Fatal("singular system solved without error")
	}
	if _, err := solveLinear(nil, nil); err == nil {
		t.Fatal("empty system solved without error")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero in the top-left forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 4}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v, want [4 3]", x)
	}
}

func TestMixedNashMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	eqs := MixedNashEquilibria2P(g, 0)
	if len(eqs) != 1 {
		t.Fatalf("found %d equilibria, want exactly 1 (the unique mixed NE)", len(eqs))
	}
	mp := eqs[0]
	for i := 0; i < 2; i++ {
		for a := 0; a < 2; a++ {
			if math.Abs(mp[i][a]-0.5) > 1e-6 {
				t.Fatalf("equilibrium = %v, want (1/2,1/2) each", mp)
			}
		}
	}
}

func TestMixedNashPrisonersDilemma(t *testing.T) {
	eqs := MixedNashEquilibria2P(PrisonersDilemma(), 0)
	if len(eqs) != 1 {
		t.Fatalf("PD equilibria = %d, want 1", len(eqs))
	}
	// The unique equilibrium is pure defect/defect.
	if math.Abs(eqs[0][0][1]-1) > 1e-6 || math.Abs(eqs[0][1][1]-1) > 1e-6 {
		t.Fatalf("PD equilibrium = %v, want pure defect", eqs[0])
	}
}

func TestMixedNashCoordinationIncludesPureAndMixed(t *testing.T) {
	eqs := MixedNashEquilibria2P(CoordinationGame(), 0)
	// Two pure equilibria plus one interior mixed equilibrium.
	if len(eqs) < 2 {
		t.Fatalf("coordination equilibria = %d, want ≥ 2", len(eqs))
	}
	for _, mp := range eqs {
		if !IsMixedNash(CoordinationGame(), mp, 1e-5) {
			t.Fatalf("returned profile %v is not an equilibrium", mp)
		}
	}
	// Sorted best-first: the first must be the (Left,Left) equilibrium
	// with cost 1 for player 0.
	if c := ExpectedCost(CoordinationGame(), 0, eqs[0]); math.Abs(c-1) > 1e-6 {
		t.Fatalf("best equilibrium cost = %v, want 1", c)
	}
}

func TestMixedNashManipulatedGame(t *testing.T) {
	// In the Fig. 1 game, B's Tails is weakly better paired against
	// Manipulate; the game still has an equilibrium and every returned
	// profile must verify.
	g := MatchingPenniesManipulated()
	eqs := MixedNashEquilibria2P(g, 0)
	if len(eqs) == 0 {
		t.Fatal("no equilibrium found for Fig. 1 game (Nash guarantees one exists)")
	}
	for _, mp := range eqs {
		if !IsMixedNash(g, mp, 1e-5) {
			t.Fatalf("non-equilibrium returned: %v", mp)
		}
	}
}

func TestMixedNashNonTwoPlayerReturnsNil(t *testing.T) {
	rg := &RoundGame{NAgents: 3, Loads: []int64{0, 0}}
	if eqs := MixedNashEquilibria2P(rg, 0); eqs != nil {
		t.Fatalf("3-player game returned %v, want nil", eqs)
	}
}

func TestEnumerateSupports(t *testing.T) {
	s := enumerateSupports(3)
	if len(s) != 7 { // 2^3 − 1 non-empty subsets
		t.Fatalf("supports = %d, want 7", len(s))
	}
	// Size-ordered: singletons first.
	if len(s[0]) != 1 || len(s[6]) != 3 {
		t.Fatalf("support ordering wrong: %v", s)
	}
}
