package game

import (
	"fmt"
	"math"

	"gameauthority/internal/prng"
)

// Mixed is a mixed strategy for one player: a probability distribution over
// its actions. Entries must be non-negative and sum to 1 (within Eps).
type Mixed []float64

// Validate checks that m is a probability distribution over k actions.
func (m Mixed) Validate(k int) error {
	if len(m) != k {
		return fmt.Errorf("%w: mixed strategy has %d entries, want %d", ErrProfileShape, len(m), k)
	}
	var sum float64
	for i, p := range m {
		if p < -Eps || math.IsNaN(p) {
			return fmt.Errorf("%w: probability %v at action %d", ErrActionRange, p, i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: probabilities sum to %v", ErrActionRange, sum)
	}
	return nil
}

// Support returns the actions played with probability > Eps.
func (m Mixed) Support() []int {
	var s []int
	for a, p := range m {
		if p > Eps {
			s = append(s, a)
		}
	}
	return s
}

// Sampler converts the mixed strategy into an exact categorical sampler
// (integer thresholds) so that committed-seed audits can replay choices
// bit-for-bit (§5.3).
func (m Mixed) Sampler() (*prng.Categorical, error) {
	return prng.NewCategorical([]float64(m))
}

// Uniform returns the uniform mixed strategy over k actions.
func Uniform(k int) Mixed {
	m := make(Mixed, k)
	for i := range m {
		m[i] = 1 / float64(k)
	}
	return m
}

// Degenerate returns the pure strategy "play action a" as a Mixed.
func Degenerate(k, a int) Mixed {
	m := make(Mixed, k)
	m[a] = 1
	return m
}

// MixedProfile assigns a mixed strategy to every player.
type MixedProfile []Mixed

// ValidateMixedProfile checks shape and normalization against g.
func ValidateMixedProfile(g Game, mp MixedProfile) error {
	if len(mp) != g.NumPlayers() {
		return fmt.Errorf("%w: %d strategies for %d players", ErrProfileShape, len(mp), g.NumPlayers())
	}
	for i, m := range mp {
		if err := m.Validate(g.NumActions(i)); err != nil {
			return fmt.Errorf("player %d: %w", i, err)
		}
	}
	return nil
}

// ExpectedCost returns player i's expected cost under the mixed profile by
// exhaustive enumeration (suitable for the small games audited here).
func ExpectedCost(g Game, player int, mp MixedProfile) float64 {
	var total float64
	n := g.NumPlayers()
	p := make(Profile, n)
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if prob == 0 {
			return
		}
		if i == n {
			total += prob * g.Cost(player, p)
			return
		}
		for a := 0; a < g.NumActions(i); a++ {
			p[i] = a
			rec(i+1, prob*mp[i][a])
		}
	}
	rec(0, 1)
	return total
}

// ExpectedCostOfAction returns player i's expected cost of playing the pure
// action a while everyone else follows mp.
func ExpectedCostOfAction(g Game, player, action int, mp MixedProfile) float64 {
	forced := make(MixedProfile, len(mp))
	copy(forced, mp)
	forced[player] = Degenerate(g.NumActions(player), action)
	return ExpectedCost(g, player, forced)
}

// MixedBestResponseSet returns the set of pure actions that minimize player
// i's expected cost against mp[-i], within tol.
func MixedBestResponseSet(g Game, player int, mp MixedProfile, tol float64) []int {
	if tol <= 0 {
		tol = 1e-6
	}
	best := math.Inf(1)
	k := g.NumActions(player)
	costs := make([]float64, k)
	for a := 0; a < k; a++ {
		costs[a] = ExpectedCostOfAction(g, player, a, mp)
		if costs[a] < best {
			best = costs[a]
		}
	}
	var set []int
	for a := 0; a < k; a++ {
		if costs[a] <= best+tol {
			set = append(set, a)
		}
	}
	return set
}

// IsMixedNash reports whether mp is a (mixed) Nash equilibrium within tol:
// every action in each player's support must be an expected-cost best
// response (Nash's indifference condition) and no pure deviation may gain.
func IsMixedNash(g Game, mp MixedProfile, tol float64) bool {
	if tol <= 0 {
		tol = 1e-6
	}
	for i := 0; i < g.NumPlayers(); i++ {
		best := math.Inf(1)
		k := g.NumActions(i)
		costs := make([]float64, k)
		for a := 0; a < k; a++ {
			costs[a] = ExpectedCostOfAction(g, i, a, mp)
			if costs[a] < best {
				best = costs[a]
			}
		}
		for a := 0; a < k; a++ {
			if mp[i][a] > Eps && costs[a] > best+tol {
				return false // plays a suboptimal action with positive probability
			}
		}
	}
	return true
}

// ExpectedSocialCost returns the expected sum of the given players' costs
// under mp (nil honest means everyone).
func ExpectedSocialCost(g Game, mp MixedProfile, honest []int) float64 {
	var total float64
	if honest == nil {
		for i := 0; i < g.NumPlayers(); i++ {
			total += ExpectedCost(g, i, mp)
		}
		return total
	}
	for _, i := range honest {
		total += ExpectedCost(g, i, mp)
	}
	return total
}

// SampleProfile draws a pure profile from the mixed profile using per-player
// streams derived from seed and round, exactly as honest agents do in the
// authority protocol — so a later audit can reproduce the same draw.
func SampleProfile(g Game, mp MixedProfile, seed uint64, round uint64) (Profile, error) {
	if err := ValidateMixedProfile(g, mp); err != nil {
		return nil, err
	}
	p := make(Profile, g.NumPlayers())
	for i := range p {
		sampler, err := mp[i].Sampler()
		if err != nil {
			return nil, fmt.Errorf("player %d: %w", i, err)
		}
		src := prng.Derive(seed, uint64(i), round)
		p[i] = sampler.Sample(src)
	}
	return p, nil
}
