package game

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewTableGameValidation(t *testing.T) {
	if _, err := NewTableGame("x", nil); !errors.Is(err, ErrProfileShape) {
		t.Fatalf("no players: %v", err)
	}
	if _, err := NewTableGame("x", []int{2, 0}); !errors.Is(err, ErrActionRange) {
		t.Fatalf("zero actions: %v", err)
	}
	if _, err := NewTableGame("x", []int{1 << 10, 1 << 10, 1 << 10}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge table: %v", err)
	}
}

func TestTableGameSetAndGet(t *testing.T) {
	g, err := NewTableGame("t", []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetCost(0, Profile{1, 2}, 7.5); err != nil {
		t.Fatal(err)
	}
	if got := g.Cost(0, Profile{1, 2}); got != 7.5 {
		t.Fatalf("cost = %v, want 7.5", got)
	}
	if got := g.Cost(1, Profile{1, 2}); got != 0 {
		t.Fatalf("untouched cost = %v, want 0", got)
	}
	if err := g.SetCost(5, Profile{0, 0}, 1); !errors.Is(err, ErrPlayerRange) {
		t.Fatalf("bad player: %v", err)
	}
	if err := g.SetCost(0, Profile{9, 0}, 1); !errors.Is(err, ErrActionRange) {
		t.Fatalf("bad profile: %v", err)
	}
}

func TestTableGameIndexingIsBijective(t *testing.T) {
	g, err := NewTableGame("t", []int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	ForEachProfile(g, func(p Profile) bool {
		idx := g.index(p)
		if seen[idx] {
			t.Fatalf("profile %v collides at index %d", p, idx)
		}
		seen[idx] = true
		return true
	})
	if len(seen) != 12 {
		t.Fatalf("indexed %d profiles, want 12", len(seen))
	}
}

func TestFromGameSnapshotsCosts(t *testing.T) {
	src := MatchingPenniesManipulated()
	snap, err := FromGame("snap", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ForEachProfile(src, func(p Profile) bool {
		for i := 0; i < 2; i++ {
			if snap.Cost(i, p) != src.Cost(i, p) {
				t.Fatalf("snapshot differs at %v player %d", p, i)
			}
		}
		return true
	})
	if _, err := FromGame("x", src, 3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limit: %v", err)
	}
}

func TestMinorityGame(t *testing.T) {
	if _, err := MinorityGame(4); err == nil {
		t.Fatal("even n accepted")
	}
	g, err := MinorityGame(3)
	if err != nil {
		t.Fatal(err)
	}
	// Profile (0,0,1): player 2 is the minority → cost 0; others pay 1.
	p := Profile{0, 0, 1}
	if g.Cost(2, p) != 0 || g.Cost(0, p) != 1 || g.Cost(1, p) != 1 {
		t.Fatalf("minority costs wrong: %v %v %v", g.Cost(0, p), g.Cost(1, p), g.Cost(2, p))
	}
	// Every 2-1 split is a PNE (the two majority members cannot gain by
	// switching — they would join a new majority of 2).
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != 6 {
		t.Fatalf("minority game PNEs = %d, want 6 (all 2-1 splits)", len(pnes))
	}
}

func TestPublicGoodsFreeRiding(t *testing.T) {
	g, err := PublicGoods(4, 2) // benefit 2 > 1: contributing is efficient
	if err != nil {
		t.Fatal(err)
	}
	// Defect (0) strictly dominates: cost difference 1 − benefit/n = 0.5.
	all1 := Profile{1, 1, 1, 1}
	dev := Profile{0, 1, 1, 1}
	if !(g.Cost(0, dev) < g.Cost(0, all1)) {
		t.Fatal("free riding does not dominate")
	}
	// Unique PNE: nobody contributes.
	pnes, err := PureNashEquilibria(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pnes) != 1 {
		t.Fatalf("public goods PNEs = %d, want 1", len(pnes))
	}
	for _, a := range pnes[0] {
		if a != 0 {
			t.Fatalf("PNE = %v, want all-defect", pnes[0])
		}
	}
	// But all-contribute has lower social cost: the PoA story.
	if !(SocialCost(g, all1, nil) < SocialCost(g, pnes[0], nil)) {
		t.Fatal("contribution is not socially better")
	}
}

func TestTableGameNames(t *testing.T) {
	g, err := NewTableGame("named", []int{2})
	if err != nil {
		t.Fatal(err)
	}
	g.ActionNames = [][]string{{"left", "right"}}
	if g.Name() != "named" || g.ActionName(0, 1) != "right" {
		t.Fatal("names wrong")
	}
	if g.ActionName(0, 5) != "a5" || g.ActionName(3, 0) != "a0" {
		t.Fatal("fallback names wrong")
	}
}

func TestQuickTableFillMatchesCost(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := NewTableGame("q", []int{2, 2})
		if err != nil {
			return false
		}
		g.Fill(func(player int, p Profile) float64 {
			return float64(player) + 2*float64(p[0]) + 4*float64(p[1])
		})
		ok := true
		ForEachProfile(g, func(p Profile) bool {
			for i := 0; i < 2; i++ {
				want := float64(i) + 2*float64(p[0]) + 4*float64(p[1])
				if math.Abs(g.Cost(i, p)-want) > 1e-12 {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
