package game

import (
	"errors"
	"testing"
)

// rawView strips a game's Responder/Named extensions so the naive
// scan-based implementations can serve as the reference.
type rawView struct{ g Game }

func (r rawView) NumPlayers() int                { return r.g.NumPlayers() }
func (r rawView) NumActions(p int) int           { return r.g.NumActions(p) }
func (r rawView) Cost(p int, pr Profile) float64 { return r.g.Cost(p, pr) }

func compiledTestGames(t *testing.T) map[string]Game {
	t.Helper()
	pg, err := PublicGoods(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := MinorityGame(3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Game{
		"matching-pennies":  MatchingPennies(),
		"mp-manipulated":    MatchingPenniesManipulated(),
		"prisoners-dilemma": PrisonersDilemma(),
		"coordination":      CoordinationGame(),
		"public-goods-4":    pg,
		"minority-3":        mg,
		"rra-round":         &RoundGame{NAgents: 3, Loads: []int64{2, 0, 5, 1}},
	}
}

// TestCompiledMatchesNaive cross-validates the lookup tables against the
// naive scan implementations over the entire profile space.
func TestCompiledMatchesNaive(t *testing.T) {
	for name, g := range compiledTestGames(t) {
		c, err := Compile(g, 0)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		raw := rawView{g}
		ForEachProfile(g, func(p Profile) bool {
			for i := 0; i < g.NumPlayers(); i++ {
				if got, want := c.Cost(i, p), g.Cost(i, p); got != want {
					t.Fatalf("%s: cost(%d, %v) = %v, want %v", name, i, p, got, want)
				}
				if got, want := c.BestResponse(i, p), BestResponse(raw, i, p); got != want {
					t.Fatalf("%s: br(%d, %v) = %d, want %d", name, i, p, got, want)
				}
				for a := 0; a < g.NumActions(i); a++ {
					if got, want := c.IsBestResponse(i, a, p), IsBestResponse(raw, i, a, p); got != want {
						t.Fatalf("%s: isbr(%d, %d, %v) = %v, want %v", name, i, a, p, got, want)
					}
				}
			}
			return true
		})
	}
}

func TestCompileRefusesHugeGames(t *testing.T) {
	// 18 players × 2 actions = 2^18 profiles × 18 players of table cells —
	// beyond the default CompileLimit.
	shape := make([]int, 18)
	for i := range shape {
		shape[i] = 2
	}
	big, err := NewTableGame("big", shape)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(big, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("compile huge game: err = %v, want ErrTooLarge", err)
	}
	// A tight explicit limit refuses even a small game.
	if _, err := Compile(PrisonersDilemma(), 4); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("compile with tiny limit: err = %v, want ErrTooLarge", err)
	}
}

func TestAccelerate(t *testing.T) {
	g := PrisonersDilemma()
	acc := Accelerate(g)
	if _, ok := acc.(*Compiled); !ok {
		t.Fatalf("Accelerate(%T) = %T, want *Compiled", g, acc)
	}
	// Idempotent: accelerating an accelerated game is a no-op.
	if again := Accelerate(acc); again != acc {
		t.Fatal("Accelerate re-wrapped a Responder")
	}
	if Accelerate(nil) != nil {
		t.Fatal("Accelerate(nil) != nil")
	}
	// Named passthrough.
	if nm, ok := acc.(Named); !ok || nm.Name() != "prisoners-dilemma" {
		t.Fatalf("compiled game lost its name")
	}
	// A too-large game comes back unchanged.
	shape := make([]int, 18)
	for i := range shape {
		shape[i] = 2
	}
	big, err := NewTableGame("big", shape)
	if err != nil {
		t.Fatal(err)
	}
	if got := Accelerate(big); got != Game(big) {
		t.Fatalf("Accelerate(huge) = %T, want the original", got)
	}
}

// TestCompiledDispatchAllocationFree asserts the package-level helpers are
// allocation-free once a game is compiled — the property the pure-driver
// 0 allocs/play budget rests on.
func TestCompiledDispatchAllocationFree(t *testing.T) {
	acc := Accelerate(PrisonersDilemma())
	p := Profile{1, 0}
	if a := testing.AllocsPerRun(100, func() {
		_ = BestResponse(acc, 0, p)
		_ = IsBestResponse(acc, 1, p[1], p)
		_ = acc.Cost(0, p)
	}); a != 0 {
		t.Fatalf("compiled dispatch allocated %v times per run", a)
	}
}
