package faults

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"gameauthority/internal/metrics"
	"gameauthority/internal/store"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if p.roll(1) {
		t.Fatal("nil plan rolled a fault")
	}
	if p.Injected() != 0 {
		t.Fatal("nil plan counted a fault")
	}
	zero := NewPlan(Config{Seed: 7})
	st := zero.Store(store.NewMem())
	if err := st.CreateSession("s", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := st.Append("s", store.Record{Type: "play", Round: i}); err != nil {
			t.Fatalf("zero-config append %d: %v", i, err)
		}
	}
	if got := zero.Injected(); got != 0 {
		t.Fatalf("zero config injected %d faults", got)
	}
}

// TestDeterministicSchedule is the plan's core contract: the same seed
// and config produce the same fault schedule, a different seed a
// different one.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed uint64) []bool {
		p := NewPlan(Config{Seed: seed, AppendFail: 0.3})
		st := p.Store(store.NewMem())
		if err := st.CreateSession("s", nil); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 300)
		for i := range out {
			out[i] = st.Append("s", store.Record{Type: "play", Round: i}) != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	faultsA := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at operation %d with the same seed", i)
		}
		if a[i] {
			faultsA++
		}
	}
	if faultsA == 0 || faultsA == len(a) {
		t.Fatalf("rate 0.3 over %d ops injected %d faults", len(a), faultsA)
	}
	other := schedule(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestAppendFailDoesNotApply(t *testing.T) {
	inner := store.NewMem()
	p := NewPlan(Config{Seed: 1, AppendFail: 1})
	st := p.Store(inner)
	if err := st.CreateSession("s", nil); err != nil {
		t.Fatal(err)
	}
	err := st.Append("s", store.Record{Type: "play", Round: 0})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append error = %v, want ErrInjected", err)
	}
	state, ok, err := inner.LoadSession("s")
	if err != nil || !ok {
		t.Fatalf("LoadSession: ok=%v err=%v", ok, err)
	}
	if len(state.Tail) != 0 {
		t.Fatalf("failed append still applied %d records", len(state.Tail))
	}
}

// TestAppendTornAppliesThenErrors is the lost-ack fault: the record must
// be durably applied even though the caller sees an error, which is what
// forces servers to deduplicate blind retries.
func TestAppendTornAppliesThenErrors(t *testing.T) {
	inner := store.NewMem()
	p := NewPlan(Config{Seed: 1, AppendTorn: 1})
	st := p.Store(inner)
	if err := st.CreateSession("s", nil); err != nil {
		t.Fatal(err)
	}
	err := st.Append("s", store.Record{Type: "play", Round: 0})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append error = %v, want ErrInjected", err)
	}
	state, _, err := inner.LoadSession("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Tail) != 1 {
		t.Fatalf("torn append applied %d records, want 1 (applied, ack lost)", len(state.Tail))
	}
}

func TestSnapshotAndSyncFaults(t *testing.T) {
	p := NewPlan(Config{Seed: 1, SnapshotFail: 1, SyncFail: 1})
	st := p.Store(store.NewMem())
	if err := st.CreateSession("s", nil); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSnapshot("s", 1, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("snapshot error = %v, want ErrInjected", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error = %v, want ErrInjected", err)
	}
}

// TestReadPathsPassThrough pins the rule that chaos aims only at the
// write paths: reads, creation, and deletion never fault even at rate 1.
func TestReadPathsPassThrough(t *testing.T) {
	inner := store.NewMem()
	p := NewPlan(Config{Seed: 1, AppendFail: 1, SnapshotFail: 1, SyncFail: 1})
	st := p.Store(inner)
	if err := st.CreateSession("s", []byte("{}")); err != nil {
		t.Fatalf("create faulted: %v", err)
	}
	if _, err := st.IDs(); err != nil {
		t.Fatalf("ids faulted: %v", err)
	}
	if _, err := st.Load(); err != nil {
		t.Fatalf("load faulted: %v", err)
	}
	if _, ok, err := st.LoadSession("s"); err != nil || !ok {
		t.Fatalf("load session: ok=%v err=%v", ok, err)
	}
	if _, err := st.Snapshots(); err != nil {
		t.Fatalf("snapshots faulted: %v", err)
	}
	if ok, err := st.(interface{ Has(string) (bool, error) }).Has("s"); err != nil || !ok {
		t.Fatalf("has: ok=%v err=%v", ok, err)
	}
	if err := st.Delete("s"); err != nil {
		t.Fatalf("delete faulted: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close faulted: %v", err)
	}
}

func TestSlowIODelays(t *testing.T) {
	p := NewPlan(Config{Seed: 1, SlowIO: 1, IODelay: 2 * time.Millisecond})
	st := p.Store(store.NewMem())
	if err := st.CreateSession("s", nil); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := st.Append("s", store.Record{Type: "play"}); err != nil {
		t.Fatalf("slow append still failed: %v", err)
	}
	if d := time.Since(t0); d < 2*time.Millisecond {
		t.Fatalf("slow append took %v, want >= 2ms", d)
	}
	if p.Injected() == 0 {
		t.Fatal("slow I/O not counted as injected")
	}
}

// pipeConn is a minimal in-memory net.Conn whose writes land in a buffer,
// so cut-mid-frame prefixes are observable without real sockets.
type pipeConn struct {
	buf    bytes.Buffer
	closed bool
}

func (c *pipeConn) Read(b []byte) (int, error)  { return c.buf.Read(b) }
func (c *pipeConn) Write(b []byte) (int, error) { return c.buf.Write(b) }
func (c *pipeConn) Close() error                { c.closed = true; return nil }
func (c *pipeConn) LocalAddr() net.Addr         { return nil }
func (c *pipeConn) RemoteAddr() net.Addr        { return nil }
func (c *pipeConn) SetDeadline(time.Time) error { return nil }
func (c *pipeConn) SetReadDeadline(time.Time) error {
	return nil
}
func (c *pipeConn) SetWriteDeadline(time.Time) error { return nil }

func TestConnDrop(t *testing.T) {
	inner := &pipeConn{}
	c := NewPlan(Config{Seed: 1, ConnDrop: 1}).Conn(inner)
	if _, err := c.Write([]byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	if !inner.closed {
		t.Fatal("dropped connection not closed")
	}
	inner2 := &pipeConn{}
	c2 := NewPlan(Config{Seed: 1, ConnDrop: 1}).Conn(inner2)
	if _, err := c2.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}
	if !inner2.closed {
		t.Fatal("dropped connection not closed on read")
	}
}

// TestConnCutMidFrame checks the half-write: a prefix reaches the wire,
// the connection dies, and the caller learns how much leaked.
func TestConnCutMidFrame(t *testing.T) {
	inner := &pipeConn{}
	c := NewPlan(Config{Seed: 1, ConnCut: 1}).Conn(inner)
	frame := []byte("0123456789")
	n, err := c.Write(frame)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write error = %v, want ErrInjected", err)
	}
	if n != len(frame)/2 || inner.buf.Len() != len(frame)/2 {
		t.Fatalf("cut wrote %d bytes (buffer %d), want %d", n, inner.buf.Len(), len(frame)/2)
	}
	if !inner.closed {
		t.Fatal("cut connection not closed")
	}
	// Single-byte writes cannot be cut (there is no shorter prefix).
	inner2 := &pipeConn{}
	c2 := NewPlan(Config{Seed: 1, ConnCut: 1}).Conn(inner2)
	if _, err := c2.Write([]byte{0xff}); err != nil {
		t.Fatalf("one-byte write should pass: %v", err)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	p := NewPlan(Config{Seed: 1, ConnDrop: 1})
	fl := p.Listener(ln)
	defer fl.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("x"))
			c.Close()
		}
	}()
	conn, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*faultConn); !ok {
		t.Fatalf("accepted conn is %T, want *faultConn", conn)
	}
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read on wrapped conn = %v, want ErrInjected", err)
	}
}

func TestCountersMirror(t *testing.T) {
	var ctrs metrics.Counters
	p := NewPlan(Config{Seed: 9, AppendFail: 1})
	p.AttachCounters(&ctrs)
	st := p.Store(store.NewMem())
	_ = st.CreateSession("s", nil)
	for i := 0; i < 5; i++ {
		_ = st.Append("s", store.Record{Type: "play", Round: i})
	}
	if got := p.Injected(); got != 5 {
		t.Fatalf("Injected() = %d, want 5", got)
	}
	if got := ctrs.FaultsInjected.Load(); got != 5 {
		t.Fatalf("counters mirror = %d, want 5", got)
	}
}

func TestStandardConfigs(t *testing.T) {
	d := DiskConfig(3, 0.2)
	if d.Seed != 3 || d.AppendFail != 0.2 || d.AppendTorn != 0.1 || d.SnapshotFail != 0.2 || d.SyncFail != 0.2 || d.SlowIO != 0.2 {
		t.Fatalf("DiskConfig mix wrong: %+v", d)
	}
	n := NetConfig(3, 0.2)
	if n.Seed != 3 || n.Latency != 0.2 || n.ConnDrop != 0.05 || n.ConnCut != 0.05 {
		t.Fatalf("NetConfig mix wrong: %+v", n)
	}
}
