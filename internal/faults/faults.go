// Package faults is the deterministic fault-injection plane: seeded,
// PRNG-driven schedules of disk and network failures for chaos testing
// the authority's durability and streaming layers.
//
// A Plan owns one SplitMix64 stream; every potential fault site draws
// from it and compares against the configured rate, so a given seed
// yields a reproducible fault schedule. (Under concurrency the
// *assignment* of draws to operations depends on goroutine interleaving;
// what is deterministic per seed is the draw sequence and therefore the
// overall fault mix, not which exact operation eats which fault.)
//
// Two decorators consume a Plan:
//
//   - Store wraps a store.Store and injects append failures, torn acks
//     (the record is durably applied but the acknowledgement is lost —
//     the failure mode that forces idempotent retries), snapshot and
//     fsync errors, and slow I/O.
//   - Conn wraps a net.Conn and injects latency, hard drops, and
//     mid-frame cuts (a prefix of the buffer hits the wire, then the
//     connection dies).
//
// Both count every injected fault on the plan (and, when attached, on
// metrics.Counters.FaultsInjected). Reads, session creation, and
// deletion pass through un-faulted so recovery and setup stay
// deterministic; chaos aims at the steady-state write paths.
package faults

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gameauthority/internal/metrics"
	"gameauthority/internal/prng"
	"gameauthority/internal/store"
)

// ErrInjected is the sentinel wrapped by every injected fault, so tests
// and harnesses can tell scheduled chaos from real failures.
var ErrInjected = errors.New("faults: injected fault")

// Config sets the per-operation fault rates of a Plan. All rates are
// probabilities in [0, 1]; a zero Config injects nothing.
type Config struct {
	// Seed seeds the plan's PRNG stream.
	Seed uint64

	// AppendFail is the rate of WAL appends that fail without applying.
	AppendFail float64
	// AppendTorn is the rate of WAL appends that apply durably but
	// report an error — a lost acknowledgement, the case that makes
	// blind client retries double-apply unless the server dedupes.
	AppendTorn float64
	// SnapshotFail is the rate of snapshot writes that fail.
	SnapshotFail float64
	// SyncFail is the rate of fsyncs that fail.
	SyncFail float64
	// SlowIO is the rate of store operations delayed by IODelay.
	SlowIO float64
	// IODelay is the injected store latency (default 200µs when a SlowIO
	// rate is set).
	IODelay time.Duration

	// ConnDrop is the rate of conn reads/writes that hard-drop the
	// connection.
	ConnDrop float64
	// ConnCut is the rate of conn writes cut mid-frame: a prefix of the
	// buffer is written, then the connection dies.
	ConnCut float64
	// Latency is the rate of conn operations delayed by NetDelay.
	Latency float64
	// NetDelay is the injected network latency (default 200µs when a
	// Latency rate is set).
	NetDelay time.Duration
}

// DiskConfig is the standard disk-chaos mix at a single base rate:
// every write-path fault fires at rate (torn acks at half rate, so
// clean failures and lost acks both occur), with slow I/O at rate.
func DiskConfig(seed uint64, rate float64) Config {
	return Config{
		Seed:         seed,
		AppendFail:   rate,
		AppendTorn:   rate / 2,
		SnapshotFail: rate,
		SyncFail:     rate,
		SlowIO:       rate,
	}
}

// NetConfig is the standard network-chaos mix at a single base rate:
// latency injections at rate, hard drops and mid-frame cuts each at a
// quarter of it (connection kills are far more expensive to recover
// from than a stall, so the mix leans on latency).
func NetConfig(seed uint64, rate float64) Config {
	return Config{
		Seed:     seed,
		Latency:  rate,
		ConnDrop: rate / 4,
		ConnCut:  rate / 4,
	}
}

// Plan is one seeded fault schedule. The zero value injects nothing;
// build real plans with NewPlan. A Plan is safe for concurrent use.
type Plan struct {
	cfg      Config
	mu       sync.Mutex
	src      prng.Source
	injected atomic.Int64
	counters atomic.Pointer[metrics.Counters]
}

// NewPlan builds a plan from cfg, applying default delays.
func NewPlan(cfg Config) *Plan {
	if cfg.IODelay <= 0 {
		cfg.IODelay = 200 * time.Microsecond
	}
	if cfg.NetDelay <= 0 {
		cfg.NetDelay = 200 * time.Microsecond
	}
	p := &Plan{cfg: cfg}
	// Domain-separation label for the plan stream ("faultpln" as bytes),
	// so a shared root seed does not correlate faults with game draws.
	p.src.Seed(prng.Mix(cfg.Seed, 0x6661756c74706c6e))
	return p
}

// AttachCounters mirrors the plan's injected-fault tally onto the
// authority's metrics.
func (p *Plan) AttachCounters(c *metrics.Counters) {
	if p != nil {
		p.counters.Store(c)
	}
}

// Injected reports how many faults the plan has injected so far.
func (p *Plan) Injected() int64 {
	if p == nil {
		return 0
	}
	return p.injected.Load()
}

// roll draws once from the plan's stream and reports whether a fault at
// the given rate fires. A nil plan or non-positive rate never fires and
// draws nothing, so disabled fault kinds do not perturb the schedule of
// enabled ones.
func (p *Plan) roll(rate float64) bool {
	if p == nil || rate <= 0 {
		return false
	}
	p.mu.Lock()
	v := p.src.Uint64()
	p.mu.Unlock()
	// Map the top 53 bits to [0, 1).
	if float64(v>>11)/(1<<53) >= rate {
		return false
	}
	p.injected.Add(1)
	if c := p.counters.Load(); c != nil {
		c.FaultsInjected.Add(1)
	}
	return true
}

// --- Store decorator -----------------------------------------------------------

// Store wraps inner so its write paths fail according to the plan.
func (p *Plan) Store(inner store.Store) store.Store {
	return &faultStore{p: p, inner: inner}
}

type faultStore struct {
	p     *Plan
	inner store.Store
}

func (s *faultStore) slow() {
	if s.p.roll(s.p.cfg.SlowIO) {
		time.Sleep(s.p.cfg.IODelay)
	}
}

func (s *faultStore) CreateSession(id string, spec []byte) error {
	return s.inner.CreateSession(id, spec)
}

// Append injects the write-path disk faults. Both fault kinds treat the
// record as a unit regardless of its type: an AppendFail drops the whole
// record (for a batch record, none of its plays reach the WAL), and an
// AppendTorn applies the whole record durably before losing the ack (for
// a batch record, every play in the batch is journaled). There is no
// partially-applied middle ground at this layer — a batch is one WAL
// line with one checksum, so torn-batch semantics are
// all-applied-ack-lost or nothing, exactly what the dedup/retry path
// assumes.
func (s *faultStore) Append(id string, rec store.Record) error {
	s.slow()
	if s.p.roll(s.p.cfg.AppendFail) {
		return fmt.Errorf("append %q: %w", id, ErrInjected)
	}
	if s.p.roll(s.p.cfg.AppendTorn) {
		if err := s.inner.Append(id, rec); err != nil {
			return err
		}
		return fmt.Errorf("append %q: ack lost: %w", id, ErrInjected)
	}
	return s.inner.Append(id, rec)
}

func (s *faultStore) PutSnapshot(id string, rounds int, payload []byte) error {
	s.slow()
	if s.p.roll(s.p.cfg.SnapshotFail) {
		return fmt.Errorf("snapshot %q: %w", id, ErrInjected)
	}
	return s.inner.PutSnapshot(id, rounds, payload)
}

func (s *faultStore) Sync() error {
	s.slow()
	if s.p.roll(s.p.cfg.SyncFail) {
		return fmt.Errorf("sync: %w", ErrInjected)
	}
	return s.inner.Sync()
}

func (s *faultStore) Delete(id string) error { return s.inner.Delete(id) }

func (s *faultStore) IDs() ([]string, error) { return s.inner.IDs() }

func (s *faultStore) Load() ([]store.SessionState, error) { return s.inner.Load() }

func (s *faultStore) LoadSession(id string) (store.SessionState, bool, error) {
	return s.inner.LoadSession(id)
}

func (s *faultStore) Snapshots() ([]store.SnapshotInfo, error) { return s.inner.Snapshots() }

func (s *faultStore) Close() error { return s.inner.Close() }

// Has forwards the optional existence probe when the inner store has one.
func (s *faultStore) Has(id string) (bool, error) {
	if h, ok := s.inner.(interface{ Has(string) (bool, error) }); ok {
		return h.Has(id)
	}
	_, ok, err := s.inner.LoadSession(id)
	return ok, err
}

// --- Conn decorator ------------------------------------------------------------

// Conn wraps inner so reads and writes fail according to the plan.
func (p *Plan) Conn(inner net.Conn) net.Conn {
	return &faultConn{p: p, Conn: inner}
}

type faultConn struct {
	p *Plan
	net.Conn
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.p.roll(c.p.cfg.Latency) {
		time.Sleep(c.p.cfg.NetDelay)
	}
	if c.p.roll(c.p.cfg.ConnDrop) {
		c.Conn.Close()
		return 0, fmt.Errorf("read: connection dropped: %w", ErrInjected)
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.p.roll(c.p.cfg.Latency) {
		time.Sleep(c.p.cfg.NetDelay)
	}
	if c.p.roll(c.p.cfg.ConnDrop) {
		c.Conn.Close()
		return 0, fmt.Errorf("write: connection dropped: %w", ErrInjected)
	}
	if len(b) > 1 && c.p.roll(c.p.cfg.ConnCut) {
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, fmt.Errorf("write: cut mid-frame after %d/%d bytes: %w", n, len(b), ErrInjected)
	}
	return c.Conn.Write(b)
}

// --- Listener decorator --------------------------------------------------------

// Listener wraps inner so every accepted connection is fault-wrapped —
// the server-side hook for network chaos (gameauthd -chaos-net).
func (p *Plan) Listener(inner net.Listener) net.Listener {
	return &faultListener{p: p, Listener: inner}
}

type faultListener struct {
	p *Plan
	net.Listener
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.Conn(conn), nil
}
